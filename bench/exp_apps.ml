(* Figures 13-16: application benchmarks. *)

open Bench_common

(* Figure 13: I/O amplification on the hashmap, TrackFM 64B vs Fastswap. *)
let fig13 () =
  let p = Hashmap.default_params ~keys:(scaled 150_000) ~lookups:(scaled 200_000) in
  let blobs = [ (0, Hashmap.trace_blob p) ] in
  let ws = Hashmap.working_set_bytes p in
  let build () = Hashmap.build p () in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 13: hashmap, TrackFM 64B objects vs Fastswap"
      ~columns:
        [ "local mem %"; "TFM time (ms)"; "FS time (ms)"; "TFM GB in"; "FS GB in" ]
  in
  let amp = ref (0.0, 0.0) in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let tf = tfm ~blobs ~object_size:64 ~budget build in
      let fs = fastswap ~blobs ~budget build in
      let tb = gb (Driver.counter tf "net.bytes_in") in
      let fb = gb (Driver.counter fs "net.bytes_in") in
      if pct = 25 then amp := (tb, fb);
      Tfm_util.Table.add_rowf t "%d | %.1f | %.1f | %.3f | %.3f" pct
        (cycles_to_seconds tf.Driver.cycles *. 1e3)
        (cycles_to_seconds fs.Driver.cycles *. 1e3)
        tb fb)
    short_sweep;
  report_table t;
  let tb, fb = !amp in
  let wsgb = gb ws in
  Printf.printf
    "amplification at 25%% local: TrackFM moves %.1fx the working set, \
     Fastswap %.1fx (paper: 2.3x vs 43x)\n"
    (tb /. wsgb) (fb /. wsgb);
  print_expectation
    ~paper:"Fastswap transfers 43x the working set; TrackFM 2.3x; ~12x speedup"
    ~ours:"orders-of-magnitude transfer gap and a consistent time win"

(* Figure 14: the analytics application across all three systems. Each
   system is normalized to its own all-local run (the paper's
   'slowdown vs local-only'). *)
let fig14 () =
  let p = Analytics.default_params ~rows:(scaled 250_000) in
  let ws = Analytics.working_set_bytes p in
  let build () = Analytics.build p () in
  let tfm_at budget = tfm ~budget build in
  let fs_at budget = fastswap ~budget build in
  let aifm_at budget =
    let ck, clock = Analytics.run_aifm ~local_budget:budget p in
    assert (ck = Analytics.checksum p);
    clock
  in
  let tfm_base = (tfm_at (2 * ws)).Driver.cycles in
  let fs_base = (fs_at (2 * ws)).Driver.cycles in
  let aifm_base = Clock.cycles (aifm_at (2 * ws)) in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 14a: analytics slowdown vs local-only"
      ~columns:[ "local mem %"; "TrackFM"; "Fastswap"; "AIFM" ]
  in
  let t2 =
    Tfm_util.Table.create
      ~title:"Figure 14b: guard checks (TrackFM) vs page faults (Fastswap)"
      ~columns:[ "local mem %"; "TFM guards"; "TFM slow"; "FS major faults" ]
  in
  let tfm_pts = ref [] and fs_pts = ref [] and aifm_pts = ref [] in
  let fs_faults = ref [] and tfm_slow_guards = ref [] in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let tf = tfm_at budget in
      let fs = fs_at budget in
      let ai = aifm_at budget in
      let tslow = float_of_int tf.Driver.cycles /. float_of_int tfm_base in
      let fslow = float_of_int fs.Driver.cycles /. float_of_int fs_base in
      let aslow = float_of_int (Clock.cycles ai) /. float_of_int aifm_base in
      tfm_pts := (float_of_int pct, tslow) :: !tfm_pts;
      fs_pts := (float_of_int pct, fslow) :: !fs_pts;
      aifm_pts := (float_of_int pct, aslow) :: !aifm_pts;
      fs_faults :=
        float_of_int (Driver.counter fs "fastswap.major_faults") :: !fs_faults;
      tfm_slow_guards :=
        float_of_int (Driver.counter tf "tfm.slow_guards") :: !tfm_slow_guards;
      Tfm_util.Table.add_rowf t "%d | %.2f | %.2f | %.2f" pct tslow fslow aslow;
      Tfm_util.Table.add_rowf t2 "%d | %d | %d | %d" pct
        (Driver.counter tf "tfm.fast_guards" + Driver.counter tf "tfm.slow_guards")
        (Driver.counter tf "tfm.slow_guards")
        (Driver.counter fs "fastswap.major_faults"))
    [ 5; 10; 25; 50; 75; 100 ];
  report_table t;
  report_table t2;
  Tfm_util.Ascii_plot.print ~x_label:"local mem %"
    ~title:"Figure 14a: slowdown vs local-only"
    [
      { Tfm_util.Ascii_plot.label = "TrackFM"; points = !tfm_pts };
      { label = "Fastswap"; points = !fs_pts };
      { label = "AIFM"; points = !aifm_pts };
    ];
  (* The paper: "both event counts strongly correlate with overall
     performance". Quantify it. *)
  let arr l = Array.of_list (List.map snd l) in
  Printf.printf
    "correlation: pearson r(FS major faults, FS slowdown) = %.3f;      r(TFM slow guards, TFM slowdown) = %.3f
"
    (Tfm_util.Stats.pearson (Array.of_list !fs_faults) (arr !fs_pts))
    (Tfm_util.Stats.pearson (Array.of_list !tfm_slow_guards) (arr !tfm_pts));
  print_expectation
    ~paper:
      "TrackFM within 10% of AIFM; Fastswap degrades to ~4.5x when memory \
       is constrained; event counts track performance"
    ~ours:"TrackFM tracks AIFM closely; Fastswap degrades fastest"

(* Figure 15: chunking variants on the analytics application. *)
let fig15 () =
  let p = Analytics.default_params ~rows:(scaled 250_000) in
  let ws = Analytics.working_set_bytes p in
  let build () = Analytics.build p () in
  let base_cycles budget mode gate =
    (tfm ~chunk_mode:mode ~profile_gate:gate ~budget build).Driver.cycles
  in
  let base_local = base_cycles (2 * ws) `Off false in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 15: analytics, chunking variants (slowdown vs local)"
      ~columns:[ "local mem %"; "baseline"; "all loops"; "high-density only" ]
  in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let f mode gate =
        float_of_int (base_cycles budget mode gate) /. float_of_int base_local
      in
      Tfm_util.Table.add_rowf t "%d | %.2f | %.2f | %.2f" pct (f `Off false)
        (f `All false) (f `Gated true))
    [ 5; 10; 25; 50; 75; 100 ];
  report_table t;
  print_expectation
    ~paper:
      "chunking the low-density aggregation loops hurts; the cost model \
       keeps only the profitable ones"
    ~ours:"gated <= all-loops everywhere; gated beats baseline"

(* Figure 16: memcached skew sweep. *)
let fig16 () =
  let skews = [ 1.0; 1.05; 1.1; 1.15; 1.2; 1.25; 1.3 ] in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 16a: memcached throughput (KOps/s) by Zipf skew"
      ~columns:[ "skew"; "TrackFM"; "Fastswap"; "All local" ]
  in
  let t2 =
    Tfm_util.Table.create
      ~title:"Figure 16b: guards (TrackFM) vs faults (Fastswap)"
      ~columns:[ "skew"; "TFM guards"; "FS major faults" ]
  in
  let t3 =
    Tfm_util.Table.create ~title:"Figure 16c: data transferred (GB)"
      ~columns:[ "skew"; "TrackFM"; "Fastswap" ]
  in
  let tfm_pts = ref [] and fs_pts = ref [] and local_pts = ref [] in
  List.iter
    (fun skew ->
      let p =
        Memcached.default_params ~keys:(scaled 150_000) ~gets:(scaled 80_000)
          ~skew
      in
      let blobs = [ (0, Memcached.trace_blob p) ] in
      let ws = Memcached.working_set_bytes p in
      let budget = budget_of ws 8 in
      let build () = Memcached.build p () in
      let tf = tfm ~blobs ~object_size:64 ~budget build in
      let fs = fastswap ~blobs ~budget build in
      let lo = local ~blobs build in
      tfm_pts := (skew, kops p.Memcached.gets tf.Driver.cycles) :: !tfm_pts;
      fs_pts := (skew, kops p.Memcached.gets fs.Driver.cycles) :: !fs_pts;
      local_pts := (skew, kops p.Memcached.gets lo.Driver.cycles) :: !local_pts;
      Tfm_util.Table.add_rowf t "%.2f | %.1f | %.1f | %.1f" skew
        (kops p.Memcached.gets tf.Driver.cycles)
        (kops p.Memcached.gets fs.Driver.cycles)
        (kops p.Memcached.gets lo.Driver.cycles);
      Tfm_util.Table.add_rowf t2 "%.2f | %d | %d" skew
        (Driver.counter tf "tfm.fast_guards" + Driver.counter tf "tfm.slow_guards")
        (Driver.counter fs "fastswap.major_faults");
      Tfm_util.Table.add_rowf t3 "%.2f | %.3f | %.3f" skew
        (gb (Driver.counter tf "net.bytes_in"))
        (gb (Driver.counter fs "net.bytes_in")))
    skews;
  report_table t;
  report_table t2;
  report_table t3;
  Tfm_util.Ascii_plot.print ~x_label:"zipf skew"
    ~title:"Figure 16a: memcached throughput (KOps/s)"
    [
      { Tfm_util.Ascii_plot.label = "TrackFM"; points = List.rev !tfm_pts };
      { label = "Fastswap"; points = List.rev !fs_pts };
      { label = "All local"; points = List.rev !local_pts };
    ];
  print_expectation
    ~paper:
      "TrackFM ~1.7x over Fastswap at low skew falling to ~1.3x; both \
       converge toward local as skew rises; Fastswap moves 66x the \
       working set vs TrackFM's 15x"
    ~ours:
      "same convergence with skew and an order-of-magnitude transfer gap"
