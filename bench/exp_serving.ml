(* Robustness: SLO vs offered load for the multi-tenant serving tier.

   The capacity-planning question the closed-loop experiments cannot ask:
   what happens when offered load exceeds capacity? An open-loop
   generator (arrivals never slow down under backlog) sweeps offered
   load across the knee for each far-memory backend, once with the
   control plane off (the hockey stick: unbounded queues, p99 diverges,
   goodput collapses because everything finishes late) and once with
   admission control + load shedding + graceful degradation on (rejects
   are cheap, completions stay near the deadline, goodput plateaus at
   capacity). A second table holds the rate just past the knee and adds
   node-crash windows on top of the fault preset: with the controls on,
   breaker-open traffic is shed at the door and previously seen keys are
   served stale, so goodput degrades instead of cliffing.

   Every run is driven by Serving.run: Poisson arrivals, Zipf keys, two
   equal tenants, costs on the simulated clock — deterministic under the
   fixed seed, so PASS/FAIL verdicts below are stable. *)

open Bench_common

let backends = [ Serving.Trackfm; Serving.Fastswap; Serving.Aifm ]
let rates = [ 10.0; 40.0; 70.0; 100.0; 130.0 ]

(* Just past every backend's knee (capacity is ~100 req/Mcyc core-bound
   minus wire queueing): where the off/on curves have visibly split. *)
let crash_rate = 110.0

let fleet_p99 r =
  match Telemetry.Histogram.percentile_opt r.Serving.fleet 99.0 with
  | Some v -> v
  | None -> 0

let tot r f = List.fold_left (fun a s -> a + f s) 0 r.Serving.stats

let refused r =
  tot r (fun s -> s.Serving.rejected + s.Serving.shed + s.Serving.throttled)

let run_one ?(budget = 1 lsl 15) ?(keys = 65_536) ?(skew = 0.99) backend
    rate controls faults =
  Serving.run
    {
      Serving.default_params with
      backend;
      rate;
      requests = scaled 8_000;
      tenants =
        List.map
          (fun t -> { t with Serving.skew })
          (Serving.default_tenants ~n:2 ~keys ~budget);
      controls;
      faults;
      fault_seed = !fault_seed;
    }

let preset name =
  match Faults.parse name with
  | Ok cfg -> cfg
  | Error e -> failwith ("exp_serving: bad fault spec " ^ name ^ ": " ^ e)

let serving_slo () =
  let deadline = Serving.default_controls.Serving.deadline in
  let faults = preset "medium" in
  let all_pass = ref true in
  List.iter
    (fun backend ->
      let t =
        Tfm_util.Table.create
          ~title:
            (Printf.sprintf
               "%s: SLO vs offered load, faults medium (deadline %s, seed %d)"
               (Serving.backend_name backend)
               (Tfm_util.Units.cycles_to_string deadline)
               !fault_seed)
          ~columns:
            [
              "offered/Mcyc"; "off goodput"; "off p99"; "on goodput";
              "on p99"; "refused"; "degraded"; "max q off/on";
            ]
      in
      let sweep =
        List.map
          (fun rate ->
            let off = run_one backend rate Serving.open_loop faults in
            let on = run_one backend rate Serving.default_controls faults in
            Tfm_util.Table.add_rowf t "%.0f | %.1f | %s | %.1f | %s | %d | %d | %d/%d"
              rate off.Serving.goodput
              (Tfm_util.Units.cycles_to_string (fleet_p99 off))
              on.Serving.goodput
              (Tfm_util.Units.cycles_to_string (fleet_p99 on))
              (refused on)
              (tot on (fun s -> s.Serving.degraded))
              off.Serving.max_queue on.Serving.max_queue;
            (rate, off, on))
          rates
      in
      report_table t;
      (* Verdicts: (1) the uncontrolled curve is a hockey stick — p99
         within the deadline at the low end, many multiples of it at the
         top; (2) with controls on, p99 stays bounded near the deadline
         at every offered load; (3) controls-on goodput at the top of
         the sweep holds within 10% of its knee (its best value). *)
      let _, off_lo, _ = List.hd sweep in
      let _, off_hi, on_hi =
        List.nth sweep (List.length sweep - 1)
      in
      let best_on =
        List.fold_left (fun a (_, _, on) -> max a on.Serving.goodput) 0.0 sweep
      in
      let stick =
        fleet_p99 off_lo <= 2 * deadline
        && fleet_p99 off_hi >= 8 * deadline
        && fleet_p99 off_hi >= 4 * fleet_p99 off_lo
      in
      let bounded =
        List.for_all (fun (_, _, on) -> fleet_p99 on <= 4 * deadline) sweep
      in
      let plateau = on_hi.Serving.goodput >= 0.9 *. best_on in
      let verdict ok name detail =
        if not ok then all_pass := false;
        Printf.printf "  %-28s %s (%s)\n" name
          (if ok then "PASS" else "FAIL")
          detail
      in
      verdict stick "hockey stick (controls off)"
        (Printf.sprintf "p99 %s at %.0f -> %s at %.0f"
           (Tfm_util.Units.cycles_to_string (fleet_p99 off_lo))
           (List.hd rates)
           (Tfm_util.Units.cycles_to_string (fleet_p99 off_hi))
           (List.nth rates (List.length rates - 1)));
      verdict bounded "bounded p99 (controls on)"
        (Printf.sprintf "worst on-p99 %s vs deadline %s"
           (Tfm_util.Units.cycles_to_string
              (List.fold_left (fun a (_, _, on) -> max a (fleet_p99 on)) 0 sweep))
           (Tfm_util.Units.cycles_to_string deadline));
      verdict plateau "goodput plateau (controls on)"
        (Printf.sprintf "%.1f at top vs best %.1f" on_hi.Serving.goodput
           best_on);
      print_newline ())
    backends;
  (* Crash on top: periodic node crashes take the (sole) remote down
     and lose whatever it held, plus a fabric outage on a staggered
     schedule. The stagger matters: when crash and outage coincide, a
     dead node makes misses observe instant loss (no wire op), so no
     retry ladder ever runs. Offset windows give both behaviors — the
     outage alone exhausts retry ladders (the wire is shared, so
     concurrent ladders consume the window jointly at one 128k
     attempt-timeout per tick) and opens the breaker, turning misses
     into stale serves; the crash alone loses data observably. A
     smaller key space at lower skew keeps real miss traffic flowing so
     there is something to degrade. *)
  let crash =
    {
      (preset "medium") with
      Faults.crash_period = 16_000_000;
      crash_downtime = 3_000_000;
      outage_period = 12_000_000;
      outage_len = 4_000_000;
    }
  in
  let t =
    Tfm_util.Table.create
      ~title:
        (Printf.sprintf
           "crash windows at %.0f req/Mcyc: medium faults + \
            crash 16M:3M + outage 12M:4M (seed %d)"
           crash_rate !fault_seed)
      ~columns:
        [
          "backend"; "ctl"; "goodput"; "p99"; "refused"; "degraded";
          "breaker opens";
        ]
  in
  List.iter
    (fun backend ->
      List.iter
        (fun (label, controls) ->
          let r =
            run_one ~budget:(1 lsl 14) ~keys:4_096 ~skew:0.6 backend
              crash_rate controls crash
          in
          Tfm_util.Table.add_rowf t "%s | %s | %.1f | %s | %d | %d | %d"
            (Serving.backend_name backend)
            label r.Serving.goodput
            (Tfm_util.Units.cycles_to_string (fleet_p99 r))
            (refused r)
            (tot r (fun s -> s.Serving.degraded))
            (Clock.get r.Serving.clock "net.breaker_opens"))
        [ ("off", Serving.open_loop); ("on", Serving.default_controls) ])
    backends;
  report_table t;
  Printf.printf "\noverall: %s\n" (if !all_pass then "PASS" else "FAIL");
  print_expectation
    ~paper:"(no overload study; closed-loop clients only)"
    ~ours:
      "without controls the open-loop sweep is a hockey stick (p99 \
       diverges past the knee, goodput collapses); with admission \
       control and shedding on, p99 stays bounded near the deadline and \
       goodput plateaus within 10% of the knee, under faults and crash \
       windows alike"
