(* Figures 6-8: the loop chunking studies. *)

open Bench_common

(* Figure 6: cost-model crossover. A fixed-size array is scanned touching
   one 8-byte field per element; element size sweeps the object density.
   Everything is local so guard costs are isolated. *)
let fig6 () =
  let array_bytes = scaled (Tfm_util.Units.mib 2) in
  let build elem_size () =
    let n = array_bytes / elem_size in
    let m = Ir.create_module () in
    let b = Builder.create m ~name:"main" ~nparams:0 in
    let p = Builder.call b "malloc" [ Ir.Const array_bytes ] in
    ignore (Builder.call b "!bench_begin" []);
    let accs =
      Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const n)
        ~accs:[ Ir.Const 0 ]
        (fun b ~iv ~accs ->
          let acc = match accs with [ a ] -> a | _ -> assert false in
          let ptr = Builder.gep b p ~index:iv ~scale:elem_size () in
          let v = Builder.load b ptr in
          [ Builder.add b acc v ])
    in
    Builder.ret b (Some (List.hd accs));
    Verifier.check_module m;
    m
  in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 6: speedup of loop chunking vs naive guards (all-local)"
      ~columns:[ "elems/object (d)"; "naive cycles"; "chunked cycles"; "speedup" ]
  in
  let crossings = ref [] in
  List.iter
    (fun elem_size ->
      let d = 4096 / elem_size in
      let budget = array_bytes * 2 in
      let naive =
        (tfm ~chunk_mode:`Off ~profile_gate:false ~budget (build elem_size))
          .Driver.cycles
      in
      let chunked =
        (tfm ~chunk_mode:`All ~profile_gate:false ~budget (build elem_size))
          .Driver.cycles
      in
      let s = speedup naive chunked in
      crossings := (d, s) :: !crossings;
      Tfm_util.Table.add_rowf t "%d | %d | %d | %.3f" d naive chunked s)
    [ 4096; 2048; 1024; 512; 256; 128; 64; 32; 16; 8; 4 ];
  report_table t;
  let c = Cost_model.default in
  let predicted =
    (* Eq. 3: (d-1) fast guards + one slow guard vs (d-1) boundary checks
       + one locality guard per object. *)
    1.0
    +. (float_of_int (c.locality_guard - c.slow_guard_read_local)
       /. float_of_int (c.fast_guard_read - c.boundary_check))
  in
  let measured =
    (* linear interpolation between the bracketing densities *)
    let sorted = List.sort compare !crossings in
    let rec find = function
      | (d1, s1) :: ((d2, s2) :: _ as rest) ->
          if s1 <= 1.0 && s2 > 1.0 then
            float_of_int d1
            +. ((1.0 -. s1) /. (s2 -. s1) *. float_of_int (d2 - d1))
          else find rest
      | _ -> nan
    in
    find sorted
  in
  Printf.printf "model-predicted crossover: d* = %.0f elements/object\n"
    predicted;
  Printf.printf "measured crossover (interpolated): d = %.1f\n" measured;
  print_expectation
    ~paper:
      "crossover at ~730 elements/object with their (much costlier) \
       locality-invariant guard; model prediction matches measurement"
    ~ours:
      "same shape and model-vs-measurement agreement; crossover lands at \
       ~18 because our locality guard is proportionally cheaper (see \
       EXPERIMENTS.md)"

(* Figure 7: loop chunking speedup on STREAM Sum/Copy across local memory. *)
let fig7 () =
  let n = scaled 400_000 in
  List.iter
    (fun kernel ->
      let ws = Stream.working_set_bytes ~n ~kernel () in
      let build () = Stream.build ~n ~kernel () in
      let t =
        Tfm_util.Table.create
          ~title:
            (Printf.sprintf "Figure 7 (%s): chunking speedup vs naive guards"
               (Stream.kernel_name kernel))
          ~columns:[ "local mem %"; "naive cycles"; "chunked cycles"; "speedup" ]
      in
      List.iter
        (fun pct ->
          let budget = budget_of ws pct in
          let naive =
            (tfm ~chunk_mode:`Off ~profile_gate:false ~budget build).Driver.cycles
          in
          let chunked =
            (tfm ~chunk_mode:`All ~profile_gate:false ~budget build).Driver.cycles
          in
          Tfm_util.Table.add_rowf t "%d | %d | %d | %.2f" pct naive chunked
            (speedup naive chunked))
        pct_sweep;
      report_table t)
    [ Stream.Sum; Stream.Copy ];
  print_expectation
    ~paper:"1.5-2.0x, rising toward the right (guard costs dominate there)"
    ~ours:"same band and inclination (prefetch is tied to chunking, so the \
           left side gains too)"

(* Figure 8: selective (profiled cost-model) chunking on k-means. *)
let fig8 () =
  let p = Kmeans.default_params ~n:(scaled 20_000) in
  let ws = Kmeans.working_set_bytes p in
  let build () = Kmeans.build p () in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 8: k-means, speedup vs no chunking"
      ~columns:[ "local mem %"; "all loops"; "high-density (gated) only" ]
  in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let base =
        (tfm ~chunk_mode:`Off ~profile_gate:false ~budget build).Driver.cycles
      in
      let all =
        (tfm ~chunk_mode:`All ~profile_gate:false ~budget build).Driver.cycles
      in
      let gated =
        (tfm ~chunk_mode:`Gated ~profile_gate:true ~budget build).Driver.cycles
      in
      Tfm_util.Table.add_rowf t "%d | %.2f | %.2f" pct (speedup base all)
        (speedup base gated))
    short_sweep;
  report_table t;
  (* also report the candidate filtering like the paper's 103 -> 27 *)
  let _, report = tfm_with_report ~chunk_mode:`Gated ~budget:ws build in
  let cands = report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.candidates in
  let selected =
    List.length (List.filter (fun c -> c.Trackfm.Chunk_pass.selected) cands)
  in
  Printf.printf "chunking candidates: %d pointers detected, %d selected by \
                 the profiled cost model (paper: 103 detected, 27 optimized)\n"
    (List.length cands) selected;
  print_expectation
    ~paper:"indiscriminate chunking ~4x slowdown; gated chunking 2.5x speedup"
    ~ours:"gated always >= all-loops; all-loops dips below 1.0 when guards \
           dominate (high local memory)"
