(* Figure 17 and Table 3: the NAS suite, plus the design-choice ablations. *)

open Bench_common

let fig17 () =
  let t =
    Tfm_util.Table.create
      ~title:"Figure 17a: NAS at 25% local memory (slowdown vs local-only)"
      ~columns:[ "kernel"; "Fastswap"; "TrackFM" ]
  in
  let fs_slows = ref [] and tfm_slows = ref [] in
  List.iter
    (fun kernel ->
      let p = { Nas.kernel; scale = 1 } in
      let ws = Nas.working_set_bytes p in
      let build () = Nas.build p () in
      let base = (local build).Driver.cycles in
      let budget = budget_of ws 25 in
      let fs = float_of_int (fastswap ~budget build).Driver.cycles /. float_of_int base in
      let tf = float_of_int (tfm ~budget build).Driver.cycles /. float_of_int base in
      fs_slows := fs :: !fs_slows;
      tfm_slows := tf :: !tfm_slows;
      Tfm_util.Table.add_rowf t "%s | %.2f | %.2f"
        (String.uppercase_ascii (Nas.kernel_name kernel))
        fs tf)
    Nas.all_kernels;
  Tfm_util.Table.add_rowf t "GeoM. | %.2f | %.2f"
    (Tfm_util.Stats.geomean (Array.of_list !fs_slows))
    (Tfm_util.Stats.geomean (Array.of_list !tfm_slows));
  report_table t;
  (* 17b: FT and SP with the O1 pre-pass. *)
  let t2 =
    Tfm_util.Table.create
      ~title:"Figure 17b: FT and SP with O1 pre-optimization"
      ~columns:[ "kernel"; "Fastswap"; "TrackFM"; "TrackFM/O1" ]
  in
  List.iter
    (fun kernel ->
      let p = { Nas.kernel; scale = 1 } in
      let ws = Nas.working_set_bytes p in
      let budget = budget_of ws 25 in
      let build () = Nas.build p () in
      let build_o1 () =
        let m = Nas.build p () in
        ignore (Tfm_opt.O1.run m);
        m
      in
      let base = (local build).Driver.cycles in
      let f x = float_of_int x /. float_of_int base in
      Tfm_util.Table.add_rowf t2 "%s | %.2f | %.2f | %.2f"
        (String.uppercase_ascii (Nas.kernel_name kernel))
        (f (fastswap ~budget build).Driver.cycles)
        (f (tfm ~budget build).Driver.cycles)
        (f (tfm ~budget build_o1).Driver.cycles))
    [ Nas.FT; Nas.SP ];
  report_table t2;
  (* guard-count reduction from O1, the paper's 6x/4x observation *)
  List.iter
    (fun kernel ->
      let p = { Nas.kernel; scale = 1 } in
      let guards build =
        let m = build () in
        let r = Trackfm.Pipeline.run Trackfm.Pipeline.default_config m in
        r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
        + r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores
        + Hashtbl.length r.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.covered
      in
      let plain = guards (fun () -> Nas.build p ()) in
      let o1 =
        guards (fun () ->
            let m = Nas.build p () in
            ignore (Tfm_opt.O1.run m);
            m)
      in
      Printf.printf
        "%s: protected accesses %d -> %d with O1 (%.1fx static reduction)\n"
        (String.uppercase_ascii (Nas.kernel_name kernel))
        plain o1
        (float_of_int plain /. float_of_int o1))
    [ Nas.FT; Nas.SP ];
  print_expectation
    ~paper:
      "TrackFM beats Fastswap on most kernels; FT is the outlier \
       (temporal reuse amortizes faults, naive code drowns in guards); \
       O1 cuts FT mem instructions ~6x and SP ~4x, recovering TrackFM"
    ~ours:"same ranking, FT outlier and O1 recovery (IS magnitudes are \
           exaggerated by the scaled-down bucket geometry; see \
           EXPERIMENTS.md)"

let table3 () =
  let t =
    Tfm_util.Table.create ~title:"Table 3: NAS benchmarks"
      ~columns:
        [ "kernel"; "paper class mem (GB)"; "paper LoC"; "our working set" ]
  in
  List.iter
    (fun kernel ->
      let p = { Nas.kernel; scale = 1 } in
      Tfm_util.Table.add_rowf t "%s | %d | %d | %s"
        (String.uppercase_ascii (Nas.kernel_name kernel))
        (Nas.paper_memory_gb kernel) (Nas.paper_loc kernel)
        (Tfm_util.Units.bytes_to_string (Nas.working_set_bytes p)))
    Nas.all_kernels;
  report_table t

(* Ablation: the object state table (Section 3.2). Disabling it forces the
   extra dependent metadata reference on every guard. *)
let ablate_state_table () =
  let n = scaled 400_000 in
  let kernel = Stream.Sum in
  let ws = Stream.working_set_bytes ~n ~kernel () in
  let build () = Stream.build ~n ~kernel () in
  let t =
    Tfm_util.Table.create
      ~title:"Ablation: object state table (naive guards, STREAM sum)"
      ~columns:[ "local mem %"; "with table"; "without table"; "overhead" ]
  in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let with_t =
        (tfm ~chunk_mode:`Off ~profile_gate:false ~use_state_table:true ~budget
           build)
          .Driver.cycles
      in
      let without =
        (tfm ~chunk_mode:`Off ~profile_gate:false ~use_state_table:false
           ~budget build)
          .Driver.cycles
      in
      Tfm_util.Table.add_rowf t "%d | %d | %d | %.1f%%" pct with_t without
        (100.0 *. (float_of_int without /. float_of_int with_t -. 1.0)))
    short_sweep;
  report_table t;
  print_expectation
    ~paper:
      "the state table replaces AIFM's two dependent metadata references \
       with one indexed lookup (Section 3.2)"
    ~ours:"removing it costs a measurable constant per guard"

(* Concurrency study (Shenango substrate): AIFM's TCP backend needs
   concurrent tasks to hide fetch latency (Section 4.1 notes Fastswap's
   RDMA wins over TCP "when there is not sufficient concurrency"). *)
let concurrency () =
  let cost = Cost_model.default in
  let requests = 2048 in
  let service = 2_000 (* CPU cycles per request *) in
  let miss_rate_pct = 30 in
  let t =
    Tfm_util.Table.create
      ~title:
        "Concurrency: KV service over the TCP far-memory backend \
         (Shenango tasking)"
      ~columns:[ "tasks"; "completion (Mcyc)"; "KOps/s"; "speedup vs 1 task" ]
  in
  let run ntasks =
    let s = Shenango.Sched.create () in
    let per_task = requests / ntasks in
    for task = 0 to ntasks - 1 do
      Shenango.Sched.spawn s (fun () ->
          for r = 1 to per_task do
            Shenango.Sched.work service;
            (* deterministic miss pattern at the configured rate *)
            if (task + (r * 7)) mod 100 < miss_rate_pct then
              Shenango.Sched.block
                (Cost_model.transfer_cycles cost ~latency:cost.tcp_latency
                   ~bytes:256)
          done)
    done;
    Shenango.Sched.run s
  in
  let base = run 1 in
  List.iter
    (fun ntasks ->
      let c = run ntasks in
      Tfm_util.Table.add_rowf t "%d | %.2f | %.0f | %.2f" ntasks
        (float_of_int c /. 1e6)
        (kops requests c) (speedup base c))
    [ 1; 2; 4; 8; 16; 32; 64 ];
  report_table t;
  print_expectation
    ~paper:
      "AIFM hides TCP fetch latency with Shenango's concurrency; without \
       it the RDMA kernel path wins (Section 4.1)"
    ~ours:
      "throughput scales with tasks until CPU-bound; single-task runs \
       expose the full fetch latency"

(* Ablation: the multi-object-size extension (the paper's Section 3.2
   future work). One size class forces a single compile-time granularity
   for the whole heap; two classes route small allocations (memcached
   values) to 64 B objects and large regions (hash table, trace) to 4 KiB
   ones. *)
let ablate_multisize () =
  let p =
    Memcached.default_params ~keys:(scaled 150_000) ~gets:(scaled 80_000)
      ~skew:1.05
  in
  let blobs = [ (0, Memcached.trace_blob p) ] in
  let ws = Memcached.working_set_bytes p in
  let build () = Memcached.build p () in
  let t =
    Tfm_util.Table.create
      ~title:"Ablation: multi-object-size heap on memcached (Zipf 1.05)"
      ~columns:[ "configuration"; "KOps/s"; "GB in"; "fetches" ]
  in
  let budget = budget_of ws 8 in
  let report label o =
    Tfm_util.Table.add_rowf t "%s | %.1f | %.4f | %d" label
      (kops p.Memcached.gets o.Driver.cycles)
      (gb (Driver.counter o "net.bytes_in"))
      (Driver.counter o "net.fetches")
  in
  report "single class, 4KiB" (tfm ~blobs ~object_size:4096 ~budget build);
  report "single class, 64B" (tfm ~blobs ~object_size:64 ~budget build);
  report "two classes (64B small / 4KiB large)"
    (tfm ~blobs
       ~size_classes:[ (2048, 64, 0.7); (max_int, 4096, 0.3) ]
       ~budget build);
  report_table t;
  print_expectation
    ~paper:
      "future work: multiple object sizes would avoid choosing one \
       granularity per application (Section 3.2); Section 5 points to \
       MaPHeA-style profile-guided placement"
    ~ours:
      "two classes beat a single 4KiB heap, but allocation-size routing \
       sends the hash table (one huge allocation, fine-grained access) to \
       the large class, so 64B-everywhere still wins here - evidence that \
       the paper is right to call for profile-guided placement rather \
       than size heuristics"

(* Ablation: the evacuator's hotness tracking (CLOCK second chance) vs a
   FIFO that ignores recency, on the hot-set-friendly memcached
   workload. *)
let ablate_eviction () =
  let p =
    Memcached.default_params ~keys:(scaled 150_000) ~gets:(scaled 80_000)
      ~skew:1.2
  in
  let blobs = [ (0, Memcached.trace_blob p) ] in
  let ws = Memcached.working_set_bytes p in
  let budget = budget_of ws 8 in
  let t =
    Tfm_util.Table.create
      ~title:"Ablation: evacuator hotness (CLOCK) vs FIFO, memcached Zipf 1.2"
      ~columns:[ "policy"; "KOps/s"; "demand fetches" ]
  in
  List.iter
    (fun (label, policy) ->
      let m = Memcached.build p () in
      let profile = Driver.profile_of ~blobs (fun () -> Memcached.build p ()) in
      let config =
        {
          Trackfm.Pipeline.default_config with
          object_size = 64;
          profile = Some profile;
        }
      in
      ignore (Trackfm.Pipeline.run config m);
      let clock = Clock.create () in
      let store = Memstore.create () in
      let rt =
        Trackfm.Runtime.create ~policy Cost_model.default clock store
          ~object_size:64 ~local_budget:budget
      in
      let backend = Backend.trackfm rt store in
      let backend =
        (* reuse the driver's blob loader by hand *)
        {
          backend with
          Backend.intrinsic =
            (fun name args ->
              match name with
              | "!load_blob" ->
                  let blob = List.assoc args.(1) blobs in
                  for k = 0 to Bytes.length blob - 1 do
                    Memstore.store store ~addr:(args.(0) + k) ~size:1
                      (Char.code (Bytes.get blob k))
                  done;
                  Some 0
              | _ -> backend.Backend.intrinsic name args);
        }
      in
      let r = Interp.run backend m ~entry:"main" in
      assert (r.Interp.ret = Memcached.checksum p);
      Tfm_util.Table.add_rowf t "%s | %.1f | %d" label
        (kops p.Memcached.gets r.Interp.cycles)
        (Clock.get clock "aifm.demand_fetches"))
    [ ("CLOCK (hotness)", Aifm.Pool.Clock_hand); ("FIFO", Aifm.Pool.Fifo) ];
  report_table t;
  print_expectation
    ~paper:
      "AIFM's evacuator tracks hotness so hot objects stay local \
       (Section 2: 'hot regions will be kept local')"
    ~ours:"ignoring recency costs throughput on a skewed key set"
