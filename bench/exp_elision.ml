(* Guard elision study: the static-analysis optimizer's effect on static
   guard sites and dynamic guard events, workload by workload.

   Each row compares a pipeline run with the optimizer off (naive guard
   injection) against one with it on (same-pointer elision, congruent
   widening, RMW upgrade, loop hoisting, loop-range elision — all
   certified by the coverage checker's witness re-verification). The
   checksum must be bit-identical either way: elision only removes
   checks the dataflow proves redundant. *)

open Bench_common

let guard_elision () =
  let t =
    Tfm_util.Table.create
      ~title:
        "guard elision: static sites and dynamic guard events, optimizer \
         off vs on"
      ~columns:
        [
          "workload";
          "static off";
          "static on";
          "dyn guards off";
          "dyn guards on";
          "dyn reduction";
          "cycles off";
          "cycles on";
        ]
  in
  let static_guards (r : Trackfm.Pipeline.report) =
    r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
    + r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores
    - Trackfm.Elide_pass.total_elided r.Trackfm.Pipeline.elision
    + r.Trackfm.Pipeline.elision.Trackfm.Elide_pass.hoisted
  in
  let dynamic_guards (o : Driver.outcome) =
    Driver.counter o "tfm.fast_guards"
    + Driver.counter o "tfm.slow_guards"
    + Driver.counter o "tfm.custody_skips"
  in
  let row name ?blobs ~chunk_mode ~ws build =
    let budget = budget_of ws 100 in
    let off, r_off =
      tfm_with_report ?blobs ~chunk_mode ~profile_gate:false ~elide:false
        ~budget build
    in
    let on, r_on =
      tfm_with_report ?blobs ~chunk_mode ~profile_gate:false ~elide:true
        ~budget build
    in
    assert (off.Driver.ret = on.Driver.ret);
    let g_off = dynamic_guards off and g_on = dynamic_guards on in
    let reduction =
      if g_off = 0 then 0.0
      else 100.0 *. float_of_int (g_off - g_on) /. float_of_int g_off
    in
    Tfm_util.Table.add_rowf t "%s | %d | %d | %d | %d | %.1f%% | %d | %d" name
      (static_guards r_off) (static_guards r_on) g_off g_on reduction
      off.Driver.cycles on.Driver.cycles;
    (g_off, g_on)
  in
  let n = scaled 50_000 in
  let stream_off =
    row "stream-sum (chunk off)" ~chunk_mode:`Off
      ~ws:(Stream.working_set_bytes ~n ~kernel:Stream.Sum ())
      (fun () -> Stream.build ~n ~kernel:Stream.Sum ())
  in
  ignore
    (row "stream-copy (chunk off)" ~chunk_mode:`Off
       ~ws:(Stream.working_set_bytes ~n ~kernel:Stream.Copy ())
       (fun () -> Stream.build ~n ~kernel:Stream.Copy ()));
  let kp = Kmeans.default_params ~n:(scaled 4_000) in
  let kmeans_gated =
    row "kmeans (gated)" ~chunk_mode:`Gated
      ~ws:(Kmeans.working_set_bytes kp)
      (fun () -> Kmeans.build kp ())
  in
  ignore
    (row "kmeans (chunk off)" ~chunk_mode:`Off
       ~ws:(Kmeans.working_set_bytes kp)
       (fun () -> Kmeans.build kp ()));
  let hp = Hashmap.default_params ~keys:(scaled 10_000) ~lookups:(scaled 15_000) in
  ignore
    (row "hashmap" ~blobs:[ (0, Hashmap.trace_blob hp) ] ~chunk_mode:`Gated
       ~ws:(Hashmap.working_set_bytes hp)
       (fun () -> Hashmap.build hp ()));
  let ap = Analytics.default_params ~rows:(scaled 10_000) in
  ignore
    (row "analytics" ~chunk_mode:`Gated
       ~ws:(Analytics.working_set_bytes ap)
       (fun () -> Analytics.build ap ()));
  report_table t;
  let stream_reduced = snd stream_off < fst stream_off in
  let kmeans_reduced = snd kmeans_gated < fst kmeans_gated in
  print_expectation
    ~paper:
      "a guard dominated by an equivalent guard is pure overhead; the \
       compiler analyses remove what they can prove redundant (Sections \
       3.1/3.3)"
    ~ours:
      (Printf.sprintf
         "dynamic guards drop on stream (%s) and kmeans (%s) with \
          bit-identical checksums; every elision carries a witness the \
          checker re-proves"
         (if stream_reduced then "yes" else "NO")
         (if kmeans_reduced then "yes" else "NO"))
