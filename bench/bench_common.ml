(* Shared plumbing for the experiment harness: system runners, sweep
   helpers, and uniform reporting. *)

let quick = ref false

(* --engine interp|compiled: execution engine for every run the harness
   performs. Results are engine-independent (the engines CI stage proves
   it), so this only moves wall-clock time — compiled makes full-size
   sweeps practical. *)
let engine = ref Engine.Interp

(* Scale factor applied to workload sizes: full size by default, quartered
   with --quick. *)
let scaled n = if !quick then max 1 (n / 4) else n

(* --faults SPEC / --fault-seed N: fabric fault injection applied to every
   far-memory run the harness performs. Each run builds a fresh injector
   from (config, seed) so the fault schedule is identical across runs and
   across repeated invocations — byte-identical metrics for a fixed
   seed. *)
let fault_cfg = ref Faults.off
let fault_seed = ref 1
let active_faults () = Faults.create ~seed:!fault_seed !fault_cfg

(* --replicas N / --ack K: size of the replicated remote tier for every
   far-memory run. The defaults (1/1) with no crash/corrupt faults keep
   the single-server code path bit for bit. *)
let replicas = ref 1
let ack = ref 1

let pct_sweep = [ 10; 20; 30; 40; 50; 60; 75; 90; 100 ]
let short_sweep = [ 10; 25; 50; 75; 100 ]

(* Budgets are page-rounded with two pages of slack so that a nominal
   100% budget really holds the working set (allocation granularity would
   otherwise leave it one page short and turn every scan into LRU
   thrash). *)
let budget_of ws pct =
  max (16 * 4096) ((((ws * pct / 100) + 4095) / 4096 * 4096) + (2 * 4096))

let cycles_to_seconds c = float_of_int c /. 2.4e9

let speedup base x = float_of_int base /. float_of_int x

let print_expectation ~paper ~ours =
  Printf.printf "paper: %s\nours:  %s\n\n" paper ours

(* Run a workload under TrackFM with given options; returns outcome. *)
let tfm ?blobs ?(object_size = 4096) ?(chunk_mode = `Gated) ?(prefetch = true)
    ?(use_state_table = true) ?(profile_gate = true) ?(elide = true)
    ?(summaries = true) ?(shapes = true) ?(route = `Off) ?(size_classes = [])
    ?faults ~budget build =
  let faults =
    match faults with Some f -> f | None -> active_faults ()
  in
  let opts =
    {
      Driver.object_size;
      local_budget = budget;
      chunk_mode;
      prefetch;
      use_state_table;
      profile_gate;
      elide_guards = elide;
      use_summaries = summaries;
      use_shapes = shapes;
      route;
      route_hotspots = [];
      size_classes;
      faults;
      replicas = !replicas;
      ack = !ack;
    }
  in
  fst (Driver.run_trackfm ~engine:!engine ?blobs build opts)

let tfm_with_report ?blobs ?(object_size = 4096) ?(chunk_mode = `Gated)
    ?(profile_gate = true) ?(elide = true) ?(summaries = true)
    ?(shapes = true) ?(route = `Off) ~budget build =
  let opts =
    {
      Driver.object_size;
      local_budget = budget;
      chunk_mode;
      prefetch = true;
      use_state_table = true;
      profile_gate;
      elide_guards = elide;
      use_summaries = summaries;
      use_shapes = shapes;
      route;
      route_hotspots = [];
      size_classes = [];
      faults = active_faults ();
      replicas = !replicas;
      ack = !ack;
    }
  in
  Driver.run_trackfm ~engine:!engine ?blobs build opts

let fastswap ?blobs ?faults ~budget build =
  let faults =
    match faults with Some f -> f | None -> active_faults ()
  in
  Driver.run_fastswap ~engine:!engine ?blobs ~faults ~replicas:!replicas
    ~ack:!ack ~local_budget:budget build

let local ?blobs build = Driver.run_local ~engine:!engine ?blobs build

let gb bytes = float_of_int bytes /. 1e9
let mops ops cycles = float_of_int ops /. (cycles_to_seconds cycles *. 1e6)
let kops ops cycles = float_of_int ops /. (cycles_to_seconds cycles *. 1e3)

(* -- JSON metrics export -------------------------------------------------

   With --metrics-dir DIR on the harness command line, every table an
   experiment prints through [report_table] is also collected and written
   as DIR/<experiment>.json when the experiment finishes, so figures can
   be re-plotted without scraping stdout. *)

let metrics_dir : string option ref = ref None
let pending_tables : Tfm_util.Table.t list ref = ref []

let report_table t =
  Tfm_util.Table.print t;
  if !metrics_dir <> None then pending_tables := t :: !pending_tables

let cell_json cell =
  let open Telemetry.Json in
  match int_of_string_opt cell with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt cell with
      | Some f -> Float f
      | None -> String cell)

let table_json t =
  let open Telemetry.Json in
  Obj
    [
      ("title", String (Tfm_util.Table.title t));
      ( "columns",
        List (List.map (fun c -> String c) (Tfm_util.Table.columns t)) );
      ( "rows",
        List
          (List.map
             (fun row -> List (List.map cell_json row))
             (Tfm_util.Table.rows t)) );
    ]

(* -- span attribution export ---------------------------------------------

   With --attribution-dir DIR, span-traced experiment runs also write one
   attribution JSON per (workload, system) pair as
   DIR/<experiment>-<label>.json — the same document `run --attribution`
   emits, so successive harness invocations produce comparable
   latency-breakdown trajectories alongside the BENCH_*.json tables. *)

let attribution_dir : string option ref = ref None

let span_sink ~op_classes =
  let sink = ref Telemetry.Sink.nop in
  let factory clock =
    let s =
      Telemetry.Sink.recording ~trace:false ~series_interval:250_000
        ~spans:true ~op_classes clock
    in
    sink := s;
    s
  in
  (sink, factory)

(* TrackFM / Fastswap runs with the causal span tracker on; the returned
   sink carries the per-class attribution for reporting/export. *)
let tfm_spans ?blobs ?(object_size = 4096) ~op_classes ~budget build =
  let opts =
    {
      Driver.object_size;
      local_budget = budget;
      chunk_mode = `Gated;
      prefetch = true;
      use_state_table = true;
      profile_gate = true;
      elide_guards = true;
      use_summaries = true;
      use_shapes = true;
      route = `Off;
      route_hotspots = [];
      size_classes = [];
      faults = active_faults ();
      replicas = !replicas;
      ack = !ack;
    }
  in
  let sink, telemetry = span_sink ~op_classes in
  let o, _ = Driver.run_trackfm ~engine:!engine ?blobs ~telemetry build opts in
  Telemetry.Sink.final_sample !sink;
  (o, !sink)

let fastswap_spans ?blobs ~op_classes ~budget build =
  let sink, telemetry = span_sink ~op_classes in
  let o =
    Driver.run_fastswap ~engine:!engine ?blobs ~faults:(active_faults ())
      ~replicas:!replicas ~ack:!ack ~telemetry ~local_budget:budget build
  in
  Telemetry.Sink.final_sample !sink;
  (o, !sink)

let write_attribution ~experiment ~label sink ~meta =
  match !attribution_dir with
  | None -> ()
  | Some dir -> (
      match Telemetry.Sink.attribution_json sink ~meta with
      | None -> ()
      | Some j ->
          let file =
            Filename.concat dir (Printf.sprintf "%s-%s.json" experiment label)
          in
          let oc = open_out file in
          Telemetry.Json.to_channel oc j;
          output_char oc '\n';
          close_out oc;
          Printf.printf "[attribution -> %s]\n" file)

let flush_metrics ~experiment ~elapsed_s =
  let tables = List.rev !pending_tables in
  pending_tables := [];
  match !metrics_dir with
  | None -> ()
  | Some dir ->
      if tables <> [] then begin
        let open Telemetry.Json in
        let j =
          Obj
            [
              ("experiment", String experiment);
              ("elapsed_s", Float elapsed_s);
              ("quick", Bool !quick);
              ("tables", List (List.map table_json tables));
            ]
        in
        let file = Filename.concat dir (experiment ^ ".json") in
        let oc = open_out file in
        to_channel oc j;
        output_char oc '\n';
        close_out oc
      end
