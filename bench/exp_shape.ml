(* Shape-aware routing: what the interprocedural shape analysis buys
   the hybrid data plane. The llist workload hides every dependent load
   of a list and a tree traversal inside one-load helpers (node_next,
   tree_left, ...), so intraprocedural classification sees no chain at
   all: without shape facts the static router routes nothing and the
   hybrid degenerates to pure guards, paying per-hop software overhead
   even when the working set is resident. With shape facts the helper
   sites classify pointer-chase (chain depth propagated through the
   calls) and route to the page path.

   Machine-checked gates:
   - at least one helper site is upgraded: with shapes the static route
     pass moves sites to the page path, without shapes it moves none
     (the without-shapes hybrid must be cycle-identical to pure guards);
   - the upgrade pays: hybrid-with-shapes beats hybrid-without-shapes
     at full local memory (the guard-bound regime);
   - checksums bit-identical across interp/compiled engines and equal
     to the host-side oracle. *)

open Bench_common

let shape_routing () =
  let nodes = scaled 40_000 and tnodes = scaled 16_000 in
  let build () = Workloads.Llist.build ~nodes ~tnodes () in
  let ws = Workloads.Llist.working_set_bytes ~nodes ~tnodes in
  let failures = ref [] in
  let gate name ok =
    if not ok then failures := name :: !failures;
    if ok then "yes" else "NO"
  in

  (* -- routed-site counts: the upgrade itself ------------------------- *)
  let budget100 = budget_of ws 100 in
  let _, rep_with = tfm_with_report ~route:`Static ~budget:budget100 build in
  let _, rep_without =
    tfm_with_report ~route:`Static ~shapes:false ~budget:budget100 build
  in
  let routed r = r.Trackfm.Pipeline.routing.Trackfm.Route_pass.routed in
  Printf.printf
    "static routes: %d with shape analysis, %d without (helper-hidden \
     sites are invisible intraprocedurally)\n\n"
    (routed rep_with) (routed rep_without);
  let upgraded =
    gate "shape facts route helper-hidden sites" (routed rep_with >= 1)
  in
  let blind =
    gate "without shapes nothing routes" (routed rep_without = 0)
  in

  (* -- cycles: shape-aware hybrid vs shape-blind vs pure planes ------- *)
  let t =
    Tfm_util.Table.create
      ~title:
        "Shape-aware routing: helper-hidden list+tree traversal (cycles, \
         lower is better)"
      ~columns:
        [ "local mem %"; "pure TrackFM"; "pure Fastswap"; "hybrid w/o shapes";
          "hybrid w/ shapes"; "shapes help" ]
  in
  let rows =
    List.map
      (fun pct ->
        let budget = budget_of ws pct in
        let tf = (tfm ~budget build).Driver.cycles in
        let fs = (fastswap ~budget build).Driver.cycles in
        let hy0 =
          (tfm ~route:`Static ~shapes:false ~budget build).Driver.cycles
        in
        let hy = (tfm ~route:`Static ~budget build).Driver.cycles in
        (pct, tf, fs, hy0, hy))
      short_sweep
  in
  List.iter
    (fun (pct, tf, fs, hy0, hy) ->
      Tfm_util.Table.add_rowf t "%d | %d | %d | %d | %d | %s" pct tf fs hy0 hy
        (if hy < hy0 then "yes" else "no"))
    rows;
  report_table t;
  (* The win lives at full residency, where the routed traversal is
     plain memory while the shape-blind hybrid still pays a guard per
     hop. Under heavy eviction both configurations are fetch-bound and
     the sweep shows that honestly. *)
  let _, tf100, _, hy0_100, hy100 =
    List.find (fun (pct, _, _, _, _) -> pct = 100) rows
  in
  let pays =
    gate "with-shapes < without-shapes @100%" (hy100 < hy0_100)
  in
  let blind_is_guards =
    gate "without-shapes hybrid == pure guards @100%" (hy0_100 = tf100)
  in

  (* -- integrity: engines agree and match the host-side oracle -------- *)
  let rets =
    List.map
      (fun eng ->
        (Driver.run_trackfm ~engine:eng build
           { (Driver.tfm_defaults ~local_budget:(budget_of ws 50)) with
             route = `Static }
         |> fst)
          .Driver.ret)
      [ Engine.Interp; Engine.Compiled ]
  in
  let oracle = Workloads.Llist.checksum ~nodes ~tnodes in
  let sums_ok = List.for_all (( = ) oracle) rets in
  let checks = gate "checksums identical across engines + oracle" sums_ok in

  Printf.printf
    "gates: upgraded=%s blind=%s pays=%s blind-is-guards=%s checksums=%s\n"
    upgraded blind pays blind_is_guards checks;
  print_expectation
    ~paper:
      "TrackFM Section 7 (futures): interprocedural analysis should let \
       the compiler see access patterns that cross function boundaries"
    ~ours:
      "bottom-up shape summaries + calling contexts classify helper-hidden \
       traversals as pointer chases; static routing then beats the \
       shape-blind hybrid on the resident traversal";
  let verdict = if !failures = [] then "PASS" else "FAIL" in
  Printf.printf "shape_routing %s%s\n" verdict
    (if !failures = [] then ""
     else ": " ^ String.concat "; " (List.rev !failures));
  if verdict = "FAIL" then exit 1
