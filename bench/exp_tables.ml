(* Tables 1 and 2: primitive guard and fault costs, measured by putting
   the runtime into each state and reading the clock. *)

open Bench_common

module R = Trackfm.Runtime

let fresh_rt ?(object_size = 4096) ?(budget_objects = 4096) () =
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    R.create Cost_model.default clock store ~object_size
      ~local_budget:(budget_objects * object_size)
  in
  (rt, clock)

(* Median cycles of [f] over [trials] runs. *)
let median_cycles clock trials f =
  let samples =
    Array.init trials (fun _ ->
        let c0 = Clock.cycles clock in
        f ();
        float_of_int (Clock.cycles clock - c0))
  in
  int_of_float (Tfm_util.Stats.median samples)

(* Fast-path guards, metadata cached: hammer one hot object. *)
let fast_guard_cached ~write =
  let rt, clock = fresh_rt () in
  let p = R.tfm_malloc rt 4096 in
  R.guard rt ~ptr:p ~size:8 ~write;
  median_cycles clock 1000 (fun () -> R.guard rt ~ptr:p ~size:8 ~write)

(* Fast-path guards, metadata uncached: cycle through more objects than
   the metadata cache holds so every state-table lookup misses. *)
let fast_guard_uncached ~write =
  let rt, clock = fresh_rt ~budget_objects:8192 () in
  let objects = 8192 in
  let p = R.tfm_malloc rt (objects * 4096) in
  for k = 0 to objects - 1 do
    R.guard rt ~ptr:(p + (k * 4096)) ~size:8 ~write
  done;
  let i = ref 0 in
  median_cycles clock 1000 (fun () ->
      (* stride by 4096 entries: same cache slot, different object *)
      i := (!i + 1) mod objects;
      R.guard rt ~ptr:(p + (!i * 4096)) ~size:8 ~write)

(* Slow-path guards with the object local-but-not-yet-safe: first touch of
   a fresh object takes the runtime call without a remote fetch. *)
let slow_guard_local ~cached ~write =
  let rt, clock = fresh_rt ~budget_objects:8192 () in
  let objects = 4000 in
  let p = R.tfm_malloc rt (objects * 4096) in
  if cached then
    (* warm the metadata cache lines first without localizing: guard a
       neighbouring object that shares the cache slot region *)
    ();
  let i = ref (-1) in
  median_cycles clock 999 (fun () ->
      incr i;
      R.guard rt ~ptr:(p + (!i * 4096)) ~size:8 ~write)

let table1 () =
  let t =
    Tfm_util.Table.create ~title:"Table 1: TrackFM guard costs (median cycles)"
      ~columns:[ "guard type"; "cached"; "uncached"; "paper cached"; "paper uncached" ]
  in
  let fc_r = fast_guard_cached ~write:false in
  let fc_w = fast_guard_cached ~write:true in
  let fu_r = fast_guard_uncached ~write:false in
  let fu_w = fast_guard_uncached ~write:true in
  let sl_r = slow_guard_local ~cached:false ~write:false in
  let sl_w = slow_guard_local ~cached:false ~write:true in
  Tfm_util.Table.add_rowf t "fast-path read guard | %d | %d | 21 | 297" fc_r fu_r;
  Tfm_util.Table.add_rowf t "fast-path write guard | %d | %d | 21 | 309" fc_w fu_w;
  (* the measurement localizes fresh objects, which adds the 50-cycle
     first-touch materialization on top of the guard itself *)
  let mat = 50 in
  Tfm_util.Table.add_rowf t "slow-path read guard | %d | %d | 144 | 453"
    (sl_r - Cost_model.default.cache_miss_penalty - mat) (sl_r - mat);
  Tfm_util.Table.add_rowf t "slow-path write guard | %d | %d | 159 | 432"
    (sl_w - Cost_model.default.cache_miss_penalty - mat) (sl_w - mat);
  report_table t;
  print_expectation
    ~paper:"fast 21 cyc cached / ~300 uncached; slow 144-159 / ~430-450"
    ~ours:"calibrated constants re-emerge from the runtime measurement path"

(* Table 2: local vs remote primitive costs for both systems. *)

let tfm_slow_guard_remote () =
  let rt, clock = fresh_rt ~budget_objects:4 () in
  let p = R.tfm_malloc rt (64 * 4096) in
  (* Create remote copies: write then force eviction by touching others. *)
  for k = 0 to 63 do
    R.guard rt ~ptr:(p + (k * 4096)) ~size:8 ~write:true
  done;
  (* Objects 0..59 are now evicted (budget 4); measure a remote touch. *)
  let c0 = Clock.cycles clock in
  R.guard rt ~ptr:p ~size:8 ~write:false;
  Clock.cycles clock - c0

let fastswap_fault ~remote ~write =
  let clock = Clock.create () in
  let swap =
    Fastswap.Swap.create Cost_model.default clock ~local_budget:(4 * 4096)
  in
  if remote then begin
    for k = 0 to 63 do
      Fastswap.Swap.access swap ~addr:(k * 4096) ~size:8 ~write:true
    done;
    let c0 = Clock.cycles clock in
    Fastswap.Swap.access swap ~addr:0 ~size:8 ~write;
    Clock.cycles clock - c0
  end
  else begin
    let c0 = Clock.cycles clock in
    Fastswap.Swap.access swap ~addr:0 ~size:8 ~write;
    Clock.cycles clock - c0
  end

let table2 () =
  let t =
    Tfm_util.Table.create
      ~title:"Table 2: primitive overheads, TrackFM vs Fastswap (cycles)"
      ~columns:[ "event"; "local"; "remote"; "paper local"; "paper remote" ]
  in
  let fs_fault_local = fastswap_fault ~remote:false ~write:false in
  let fs_fault_remote = fastswap_fault ~remote:true ~write:false in
  let fs_fault_remote_w = fastswap_fault ~remote:true ~write:true in
  let tfm_local = slow_guard_local ~cached:false ~write:false in
  let tfm_local_w = slow_guard_local ~cached:false ~write:true in
  let tfm_remote = tfm_slow_guard_remote () in
  Tfm_util.Table.add_rowf t "Fastswap read fault | %d | %d | 1.3K | 34K"
    fs_fault_local fs_fault_remote;
  Tfm_util.Table.add_rowf t "Fastswap write fault | %d | %d | 1.3K | 35K"
    fs_fault_local fs_fault_remote_w;
  Tfm_util.Table.add_rowf t "TrackFM slow-path read guard | %d | %d | 453 | 35K"
    tfm_local tfm_remote;
  Tfm_util.Table.add_rowf t "TrackFM slow-path write guard | %d | %d | 432 | 35K"
    tfm_local_w tfm_remote;
  report_table t;
  print_expectation
    ~paper:
      "kernel fault costs ~2.9x a local slow-path guard; remote costs \
       converge to the network transfer (~34-35K)"
    ~ours:"same structure: local guard ~0.4-0.7K vs fault 1.3K; remote ~32-35K"

(* Section 4.6: compilation costs across all workloads. *)
let compile_costs () =
  let t =
    Tfm_util.Table.create
      ~title:"Section 4.6: compilation costs (per workload)"
      ~columns:
        [ "workload"; "IR before"; "IR after"; "lowered growth"; "guards";
          "chunk sites"; "compile s" ]
  in
  let cases =
    [
      ("stream-sum", fun () -> Stream.build ~n:1000 ~kernel:Stream.Sum ());
      ("stream-copy", fun () -> Stream.build ~n:1000 ~kernel:Stream.Copy ());
      ("kmeans", fun () -> Kmeans.build (Kmeans.default_params ~n:500) ());
      ( "hashmap",
        fun () ->
          Hashmap.build (Hashmap.default_params ~keys:500 ~lookups:500) () );
      ( "memcached",
        fun () ->
          Memcached.build
            (Memcached.default_params ~keys:500 ~gets:500 ~skew:1.1)
            () );
      ( "analytics",
        fun () -> Analytics.build (Analytics.default_params ~rows:1000) () );
      ("nas-cg", fun () -> Nas.build { Nas.kernel = Nas.CG; scale = 1 } ());
      ("nas-ft", fun () -> Nas.build { Nas.kernel = Nas.FT; scale = 1 } ());
      ("nas-is", fun () -> Nas.build { Nas.kernel = Nas.IS; scale = 1 } ());
      ("nas-mg", fun () -> Nas.build { Nas.kernel = Nas.MG; scale = 1 } ());
      ("nas-sp", fun () -> Nas.build { Nas.kernel = Nas.SP; scale = 1 } ());
    ]
  in
  let growths =
    List.map
      (fun (name, build) ->
        let m = build () in
        let r = Trackfm.Pipeline.run Trackfm.Pipeline.default_config m in
        let g = Trackfm.Pipeline.code_growth r in
        Tfm_util.Table.add_rowf t "%s | %d | %d | %.2fx | %d | %d | %.4f" name
          r.Trackfm.Pipeline.ir_instrs_before r.Trackfm.Pipeline.ir_instrs_after g
          (r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
          + r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores)
          r.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.chunk_sites
          r.Trackfm.Pipeline.compile_time_s;
        g)
      cases
  in
  report_table t;
  Printf.printf "mean lowered code growth: %.2fx (paper: 2.4x average)\n\n"
    (Tfm_util.Stats.mean (Array.of_list growths))

(* Table 4: qualitative comparison (static, from the paper) with the rows
   this repository actually implements marked. *)
let table4 () =
  let t =
    Tfm_util.Table.create
      ~title:"Table 4: TrackFM vs prior work (qualitative, from the paper)"
      ~columns:
        [ "system"; "transparent"; "no custom hw"; "mitigates I/O amp";
          "no kernel changes"; "in this repo" ]
  in
  List.iter
    (fun row -> Tfm_util.Table.add_row t row)
    [
      [ "Project Kona"; "yes"; "no"; "yes"; "no"; "-" ];
      [ "AIFM"; "no"; "yes"; "yes"; "yes"; "lib/aifm (Remote.*)" ];
      [ "Fastswap"; "yes"; "yes"; "no"; "no"; "lib/fastswap" ];
      [ "Infiniswap"; "yes"; "yes"; "no"; "no"; "-" ];
      [ "DiLOS"; "yes"; "yes"; "yes"; "no"; "bench related_dilos" ];
      [ "TrackFM"; "yes"; "yes"; "yes"; "yes"; "lib/trackfm" ];
    ];
  report_table t

(* Related work: a DiLOS-style LibOS baseline. DiLOS keeps page
   granularity but replaces the kernel swap path with a custom unified
   page table: faults cost little software overhead and prefetching is
   aggressive, which the paper notes "can actually outperform AIFM with
   sufficient prefetching". We model it as the paging backend with a
   LibOS-grade fault path and deep readahead. *)
let related_dilos () =
  let p = Analytics.default_params ~rows:(scaled 250_000) in
  let ws = Analytics.working_set_bytes p in
  let build () = Analytics.build p () in
  let dilos_cost =
    {
      Cost_model.default with
      Cost_model.fastswap_fault_base = 150;
      fastswap_fault_local = 300;
    }
  in
  let t =
    Tfm_util.Table.create
      ~title:
        "Related work: analytics slowdown vs local-only, + DiLOS-style \
         LibOS paging"
      ~columns:[ "local mem %"; "TrackFM"; "Fastswap"; "DiLOS-style" ]
  in
  let tfm_base = (tfm ~budget:(2 * ws) build).Driver.cycles in
  let fs_base = (fastswap ~budget:(2 * ws) build).Driver.cycles in
  let dilos budget =
    Driver.run_fastswap ~cost:dilos_cost ~readahead:8 ~local_budget:budget
      build
  in
  let dl_base = (dilos (2 * ws)).Driver.cycles in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      Tfm_util.Table.add_rowf t "%d | %.2f | %.2f | %.2f" pct
        (float_of_int (tfm ~budget build).Driver.cycles
        /. float_of_int tfm_base)
        (float_of_int (fastswap ~budget build).Driver.cycles
        /. float_of_int fs_base)
        (float_of_int (dilos budget).Driver.cycles /. float_of_int dl_base))
    [ 5; 10; 25; 50; 75; 100 ];
  report_table t;
  print_expectation
    ~paper:
      "Section 6: DiLOS reduces paging software overheads enough that \
       page granularity + prefetching can rival object-granularity \
       systems, at the cost of adopting a new OS"
    ~ours:
      "the LibOS-grade fault path plus readahead closes most of \
       Fastswap's gap to TrackFM on this scan-heavy workload"

(* Section 5 (Hardware Support): a Kona-style design interposes on remote
   accesses in the cache-coherence engine, so there are no software
   guards at all and dirty tracking is cache-line granular — but the
   hardware has no compiler knowledge, so no loop chunking and no
   compiler-directed prefetch. We model it as a TrackFM runtime whose
   guard costs are (nearly) zero at 64B objects, with only the runtime's
   reactive miss prefetcher. *)
let hw_kona () =
  let kona_cost =
    {
      Cost_model.default with
      Cost_model.fast_guard_read = 0;
      fast_guard_write = 0;
      slow_guard_read_local = 40 (* hw miss vectoring *);
      slow_guard_write_local = 40;
      custody_check = 0;
      cache_miss_penalty = 0;
      boundary_check = 0;
      locality_guard = 40;
    }
  in
  let t =
    Tfm_util.Table.create
      ~title:
        "Section 5: Kona-style hardware interposition vs TrackFM \
         (cycles, 25% local)"
      ~columns:[ "workload"; "TrackFM"; "Kona-style hw"; "winner" ]
  in
  let cases =
    [
      ( "hashmap (guard-bound)",
        (fun () ->
          let p = Hashmap.default_params ~keys:(scaled 100_000) ~lookups:(scaled 150_000) in
          let blobs = [ (0, Hashmap.trace_blob p) ] in
          let ws = Hashmap.working_set_bytes p in
          let build () = Hashmap.build p () in
          let budget = budget_of ws 25 in
          let tf =
            (tfm ~blobs ~object_size:64 ~budget build).Driver.cycles
          in
          let hw =
            let opts =
              {
                Driver.object_size = 64;
                local_budget = budget;
                chunk_mode = `Off;
                prefetch = true;
                use_state_table = true;
                profile_gate = false;
                elide_guards = true;
                use_summaries = true;
                use_shapes = true;
                route = `Off;
                route_hotspots = [];
                size_classes = [];
                faults = active_faults ();
                replicas = !replicas;
                ack = !ack;
              }
            in
            (fst (Driver.run_trackfm ~cost:kona_cost ~blobs build opts))
              .Driver.cycles
          in
          (tf, hw)) );
      ( "STREAM sum (compiler knowledge pays)",
        (fun () ->
          let n = scaled 400_000 in
          let kernel = Stream.Sum in
          let ws = Stream.working_set_bytes ~n ~kernel () in
          let build () = Stream.build ~n ~kernel () in
          let budget = budget_of ws 25 in
          let tf = (tfm ~budget build).Driver.cycles in
          let hw =
            let opts =
              {
                Driver.object_size = 64;
                local_budget = budget;
                chunk_mode = `Off;
                prefetch = true;
                use_state_table = true;
                profile_gate = false;
                elide_guards = true;
                use_summaries = true;
                use_shapes = true;
                route = `Off;
                route_hotspots = [];
                size_classes = [];
                faults = active_faults ();
                replicas = !replicas;
                ack = !ack;
              }
            in
            (fst (Driver.run_trackfm ~cost:kona_cost build opts)).Driver.cycles
          in
          (tf, hw)) );
    ]
  in
  List.iter
    (fun (name, f) ->
      let tf, hw = f () in
      Tfm_util.Table.add_rowf t "%s | %d | %d | %s" name tf hw
        (if tf < hw then "TrackFM" else "Kona-style"))
    cases;
  report_table t;
  print_expectation
    ~paper:
      "hardware interposition removes guard costs but 'forgoes the \
       benefits of the high-level knowledge available to the compiler' \
       (Section 5)"
    ~ours:
      "the hardware model wins where guards dominate (hashmap); TrackFM's \
       chunking + static prefetch wins the regular scan"

(* Section 5 limitation: "information about application semantics (e.g.,
   recursive data structures) is mostly lost" at the IR level. A linked
   list traversal has no induction variable and no learnable stride, so
   TrackFM can neither chunk nor prefetch — each node costs a guard on
   top of whatever the memory system charges. *)
let limits_pointer_chase () =
  let nodes = scaled 60_000 in
  let build () = Chase.build ~nodes () in
  let ws = Chase.working_set_bytes ~nodes in
  let t =
    Tfm_util.Table.create
      ~title:
        "Section 5 limitation: linked-list traversal (no IVs, no stride)"
      ~columns:[ "local mem %"; "TrackFM cycles"; "Fastswap cycles"; "TFM/FS" ]
  in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let tf = (tfm ~budget build).Driver.cycles in
      let fs = (fastswap ~budget build).Driver.cycles in
      Tfm_util.Table.add_rowf t "%d | %d | %d | %.2f" pct tf fs
        (float_of_int tf /. float_of_int fs))
    short_sweep;
  report_table t;
  print_expectation
    ~paper:
      "Section 5: recursive data structure semantics are lost at the IR \
       level; the paper plans inter-procedural data structure analysis \
       to recover them"
    ~ours:
      "with nothing to chunk or prefetch, both systems are fetch-bound \
       at rough parity under pressure, and at full local memory TrackFM \
       pays ~2.5x in pure guard overhead - the motivation for that \
       future work"

(* Methodology check: the working sets here are MBs, not the paper's GBs.
   If the comparisons were scale artifacts, the headline ratios would
   drift with size; sweeping the STREAM size shows they are stable. *)
let robustness_scale () =
  let t =
    Tfm_util.Table.create
      ~title:
        "Robustness: Figure 12 (sum) speedup across working-set scales \
         (25% local)"
      ~columns:[ "elements"; "working set"; "TrackFM/Fastswap speedup" ]
  in
  List.iter
    (fun n ->
      let kernel = Stream.Sum in
      let ws = Stream.working_set_bytes ~n ~kernel () in
      let build () = Stream.build ~n ~kernel () in
      let budget = budget_of ws 25 in
      let tf = (tfm ~budget build).Driver.cycles in
      let fs = (fastswap ~budget build).Driver.cycles in
      Tfm_util.Table.add_rowf t "%d | %s | %.2f" n
        (Tfm_util.Units.bytes_to_string ws)
        (speedup fs tf))
    [ 50_000; 100_000; 200_000; 400_000; 800_000 ];
  report_table t;
  print_expectation
    ~paper:"(methodology) sweeps are in percent-of-working-set so shapes \
            should be scale-invariant"
    ~ours:"the speedup is flat across a 16x size range"
