(* The experiment harness: one entry per paper table/figure (DESIGN.md's
   per-experiment index). Run everything with `dune exec bench/main.exe`,
   or name experiments: `dune exec bench/main.exe -- fig7 fig12 --quick`. *)

let experiments =
  [
    ("table1", "Table 1: guard costs", Exp_tables.table1);
    ("table2", "Table 2: primitive overheads vs Fastswap", Exp_tables.table2);
    ("fig6", "Figure 6: cost-model crossover", Exp_micro.fig6);
    ("fig7", "Figure 7: chunking on STREAM", Exp_micro.fig7);
    ("fig8", "Figure 8: selective chunking on k-means", Exp_micro.fig8);
    ("fig9", "Figure 9: object size on hashmap", Exp_params.fig9);
    ("fig10", "Figure 10: object size on STREAM", Exp_params.fig10);
    ("fig11", "Figure 11: prefetching", Exp_params.fig11);
    ("fig12", "Figure 12: STREAM vs Fastswap", Exp_params.fig12);
    ("fig13", "Figure 13: I/O amplification", Exp_apps.fig13);
    ("fig14", "Figure 14: analytics application", Exp_apps.fig14);
    ("fig15", "Figure 15: analytics chunking variants", Exp_apps.fig15);
    ("fig16", "Figure 16: memcached skew sweep", Exp_apps.fig16);
    ("fig17", "Figure 17: NAS suite", Exp_nas.fig17);
    ("table3", "Table 3: NAS inventory", Exp_nas.table3);
    ("compile_costs", "Section 4.6: compilation costs", Exp_tables.compile_costs);
    ("ablate_state_table", "Ablation: object state table",
      Exp_nas.ablate_state_table);
    ("concurrency", "Concurrency: latency hiding on the TCP backend",
      Exp_nas.concurrency);
    ("ablate_multisize", "Ablation: multi-object-size heap",
      Exp_nas.ablate_multisize);
    ("ablate_eviction", "Ablation: evacuator hotness tracking",
      Exp_nas.ablate_eviction);
    ("table4", "Table 4: qualitative comparison", Exp_tables.table4);
    ("related_dilos", "Related work: DiLOS-style LibOS baseline",
      Exp_tables.related_dilos);
    ("hw_kona", "Section 5: Kona-style hardware interposition",
      Exp_tables.hw_kona);
    ("limits_pointer_chase", "Section 5 limitation: pointer chasing",
      Exp_tables.limits_pointer_chase);
    ("robustness_scale", "Methodology: scale invariance of the shapes",
      Exp_tables.robustness_scale);
    ("guard_elision", "Static analysis: redundant-guard elision",
      Exp_elision.guard_elision);
    ("interproc_elision", "Static analysis: interprocedural summaries",
      Exp_interproc.interproc_elision);
    ("faults_goodput", "Robustness: goodput under fabric faults",
      Exp_faults.faults_goodput);
    ("durability", "Robustness: replicated tier vs crash faults",
      Exp_durability.durability);
    ("attribution", "Observability: per-class latency attribution",
      Exp_attribution.attribution);
    ("serving_slo", "Robustness: SLO vs offered load per backend",
      Exp_serving.serving_slo);
    ("engine_speedup", "Infrastructure: compiled engine dispatch throughput",
      Exp_engine.engine_speedup);
    ("hybrid_routing", "Hybrid data plane: guards vs paging per site",
      Exp_hybrid.hybrid_routing);
    ("shape_routing", "Shape analysis: routing helper-hidden pointer chases",
      Exp_shape.shape_routing);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let bechamel = List.mem "--bechamel" args in
  (* --metrics-dir DIR: also write each experiment's tables as JSON. *)
  let rec extract_metrics_dir = function
    | "--metrics-dir" :: dir :: rest ->
        let rest, found = extract_metrics_dir rest in
        (rest, Some dir :: found)
    | a :: rest ->
        let rest, found = extract_metrics_dir rest in
        (a :: rest, found)
    | [] -> ([], [])
  in
  (* --faults SPEC / --fault-seed N: fault injection for every far-memory
     run (see Faults.parse for the SPEC grammar). *)
  let rec extract_opt name = function
    | flag :: v :: rest when flag = name ->
        let rest, found = extract_opt name rest in
        (rest, Some v :: found)
    | a :: rest ->
        let rest, found = extract_opt name rest in
        (a :: rest, found)
    | [] -> ([], [])
  in
  let args, fault_specs = extract_opt "--faults" args in
  (match List.filter_map Fun.id fault_specs with
  | spec :: _ -> (
      match Faults.parse spec with
      | Ok cfg -> Bench_common.fault_cfg := cfg
      | Error e ->
          Printf.eprintf "bad --faults spec: %s\n" e;
          exit 1)
  | [] -> ());
  let args, fault_seeds = extract_opt "--fault-seed" args in
  (match List.filter_map Fun.id fault_seeds with
  | s :: _ -> (
      match int_of_string_opt s with
      | Some n -> Bench_common.fault_seed := n
      | None ->
          Printf.eprintf "bad --fault-seed %s (integer expected)\n" s;
          exit 1)
  | [] -> ());
  (* --replicas N / --ack K: replicated remote tier for every far-memory
     run (1/1 = the single-server model, bit for bit). *)
  let int_opt name cell args =
    let args, vals = extract_opt name args in
    (match List.filter_map Fun.id vals with
    | s :: _ -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> cell := n
        | _ ->
            Printf.eprintf "bad %s %s (positive integer expected)\n" name s;
            exit 1)
    | [] -> ());
    args
  in
  let args = int_opt "--replicas" Bench_common.replicas args in
  let args = int_opt "--ack" Bench_common.ack args in
  (* --engine interp|compiled: execution engine for every run. *)
  let args, engines = extract_opt "--engine" args in
  (match List.filter_map Fun.id engines with
  | name :: _ -> (
      match Tfm_interp.Engine.of_string name with
      | Some e -> Bench_common.engine := e
      | None ->
          Printf.eprintf "unknown engine %s (interp|compiled)\n" name;
          exit 1)
  | [] -> ());
  if !Bench_common.ack > !Bench_common.replicas then begin
    Printf.eprintf "--ack %d exceeds --replicas %d\n" !Bench_common.ack
      !Bench_common.replicas;
    exit 1
  end;
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  let args, dirs = extract_metrics_dir args in
  (match List.filter_map Fun.id dirs with
  | dir :: _ ->
      mkdir_p dir;
      Bench_common.metrics_dir := Some dir
  | [] -> ());
  (* --attribution-dir DIR: span-traced experiments also write their
     per-run attribution JSON there. *)
  let args, attr_dirs = extract_opt "--attribution-dir" args in
  (match List.filter_map Fun.id attr_dirs with
  | dir :: _ ->
      mkdir_p dir;
      Bench_common.attribution_dir := Some dir
  | [] -> ());
  let named =
    List.filter (fun a -> a <> "--quick" && a <> "--bechamel") args
  in
  Bench_common.quick := quick;
  let selected =
    if named = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) experiments with
          | Some e -> Some e
          | None ->
              Printf.eprintf "unknown experiment %s (available: %s)\n" name
                (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
              exit 1)
        named
  in
  Printf.printf
    "TrackFM reproduction benchmark harness%s — %d experiment(s)\n\n"
    (if quick then " (quick mode)" else "")
    (List.length selected);
  List.iter
    (fun (name, title, f) ->
      Printf.printf "### %s — %s\n" name title;
      let t0 = Unix.gettimeofday () in
      f ();
      let elapsed = Unix.gettimeofday () -. t0 in
      Bench_common.flush_metrics ~experiment:name ~elapsed_s:elapsed;
      Printf.printf "[%s done in %.1fs]\n\n%!" name elapsed)
    selected;
  if bechamel then Bech.run ()
