(* Robustness: goodput under fabric faults.

   The paper evaluates TrackFM on a perfectly cooperative fabric. This
   experiment makes the fabric adversarial with the PR-2 fault injector
   and measures *goodput* — useful work per cycle relative to the
   fault-free run of the same system — for TrackFM and Fastswap at 25%
   local memory under the canned fault presets. Both systems ride the
   same retry/backoff/circuit-breaker transport, so the gap between them
   shows how much the page-granularity amplification of kernel paging
   compounds under faults (each retry moves a full 4 KiB page). *)

open Bench_common

let presets = [ "none"; "light"; "medium"; "heavy" ]

let cfg_of name =
  match Faults.parse name with
  | Ok cfg -> cfg
  | Error e -> failwith ("exp_faults: bad preset " ^ name ^ ": " ^ e)

(* One run per (system, preset); goodput = fault-free cycles / faulted
   cycles, so "none" is 1.00 by construction and lower is worse. *)
let goodput_rows ~build ~blobs ~budget ~expected =
  let run_sys system cfg =
    let faults = Faults.create ~seed:!fault_seed cfg in
    let o =
      match system with
      | `Trackfm -> tfm ?blobs ~faults ~budget build
      | `Fastswap -> fastswap ?blobs ~faults ~budget build
    in
    assert (o.Driver.ret = expected);
    o
  in
  let base_tfm = run_sys `Trackfm Faults.off in
  let base_fs = run_sys `Fastswap Faults.off in
  List.map
    (fun preset ->
      let cfg = cfg_of preset in
      let tfm_o = run_sys `Trackfm cfg in
      let fs_o = run_sys `Fastswap cfg in
      ( preset,
        speedup base_tfm.Driver.cycles tfm_o.Driver.cycles,
        Driver.counter tfm_o "net.retries",
        speedup base_fs.Driver.cycles fs_o.Driver.cycles,
        Driver.counter fs_o "net.retries" ))
    presets

let faults_goodput () =
  let cases =
    [
      ( "stream-sum",
        (fun () ->
          let n = scaled 200_000 in
          let kernel = Stream.Sum in
          ( (fun () -> Stream.build ~n ~kernel ()),
            None,
            Stream.working_set_bytes ~n ~kernel (),
            Stream.checksum ~n ~kernel () )) );
      ( "hashmap",
        (fun () ->
          let p =
            Hashmap.default_params ~keys:(scaled 80_000)
              ~lookups:(scaled 100_000)
          in
          ( (fun () -> Hashmap.build p ()),
            Some [ (0, Hashmap.trace_blob p) ],
            Hashmap.working_set_bytes p,
            Hashmap.checksum p )) );
    ]
  in
  List.iter
    (fun (name, mk) ->
      let build, blobs, ws, expected = mk () in
      let budget = budget_of ws 25 in
      let t =
        Tfm_util.Table.create
          ~title:
            (Printf.sprintf
               "%s at 25%% local memory: goodput vs fault-free (seed %d)" name
               !fault_seed)
          ~columns:
            [
              "faults"; "TrackFM goodput"; "tfm retries"; "Fastswap goodput";
              "fs retries";
            ]
      in
      List.iter
        (fun (preset, g_tfm, r_tfm, g_fs, r_fs) ->
          Tfm_util.Table.add_rowf t "%s | %.2f | %d | %.2f | %d" preset g_tfm
            r_tfm g_fs r_fs)
        (goodput_rows ~build ~blobs ~budget ~expected);
      report_table t)
    cases;
  print_expectation
    ~paper:"(no fault-injection study; cooperative fabric assumed)"
    ~ours:
      "goodput degrades gracefully with fault severity; both systems stay \
       correct, and checksums are unchanged under every preset"
