(* Latency attribution: per-operation-class critical-path breakdown for
   the request-structured workloads under both far-memory systems, via
   the causal span tracker. The table shows where each request class
   spends its wall-clock cycles; with --attribution-dir the full
   attribution JSON (same document as `run --attribution`) is written
   per (workload, system) run so successive harness invocations produce
   comparable latency-breakdown trajectories. *)

open Bench_common

let attribution () =
  let cases =
    [
      ( "hashmap",
        fun () ->
          let p =
            Hashmap.default_params ~keys:(scaled 80_000)
              ~lookups:(scaled 100_000)
          in
          ( [ (0, Hashmap.trace_blob p) ],
            Hashmap.working_set_bytes p,
            (fun () -> Hashmap.build p ()),
            Hashmap.op_classes ) );
      ( "kmeans",
        fun () ->
          let p = Kmeans.default_params ~n:(scaled 120_000) in
          ( [],
            Kmeans.working_set_bytes p,
            (fun () -> Kmeans.build p ()),
            Kmeans.op_classes ) );
      ( "memcached",
        fun () ->
          let p =
            Memcached.default_params ~keys:(scaled 100_000)
              ~gets:(scaled 60_000) ~skew:1.1
          in
          ( [ (0, Memcached.trace_blob p) ],
            Memcached.working_set_bytes p,
            (fun () -> Memcached.build p ()),
            Memcached.op_classes ) );
    ]
  in
  let t =
    Tfm_util.Table.create
      ~title:
        "latency attribution at 25% local memory (share of per-class wall \
         cycles)"
      ~columns:
        ("workload" :: "system" :: "class" :: "ops" :: "p50" :: "p99"
        :: Telemetry.Span.cat_names)
  in
  List.iter
    (fun (wname, make) ->
      let blobs, ws, build, op_classes = make () in
      let budget = budget_of ws 25 in
      let systems =
        [
          ("trackfm", fun () -> tfm_spans ~blobs ~op_classes ~budget build);
          ("fastswap", fun () -> fastswap_spans ~blobs ~op_classes ~budget build);
        ]
      in
      List.iter
        (fun (sysname, run) ->
          let (_ : Driver.outcome), sink = run () in
          (match Telemetry.Sink.spans sink with
          | None -> ()
          | Some sp ->
              (* The decomposition must sum to wall clock exactly; a
                 violation here is a tracker bug, not a workload property. *)
              assert (Telemetry.Span.violations sp = 0);
              List.iter
                (fun (cls, st) ->
                  let wall =
                    Telemetry.Histogram.total st.Telemetry.Span.wall_hist
                  in
                  let q p =
                    match
                      Telemetry.Histogram.percentile_opt
                        st.Telemetry.Span.wall_hist p
                    with
                    | Some v -> string_of_int v
                    | None -> "-"
                  in
                  let shares =
                    List.map
                      (fun c ->
                        let v =
                          st.Telemetry.Span.cat_totals.(Telemetry.Span
                                                        .cat_index c)
                        in
                        Printf.sprintf "%.1f%%"
                          (if wall = 0 then 0.0
                           else 100.0 *. float_of_int v /. float_of_int wall))
                      Telemetry.Span.categories
                  in
                  Tfm_util.Table.add_rowf t "%s | %s | %s | %d | %s | %s | %s"
                    wname sysname
                    (Telemetry.Span.class_name sp cls)
                    st.Telemetry.Span.ops (q 50.0) (q 99.0)
                    (String.concat " | " shares))
                (Telemetry.Span.classes sp));
          let meta =
            let open Telemetry.Json in
            [
              ("workload", String wname);
              ("system", String sysname);
              ("faults", String (Faults.to_string !fault_cfg));
              ("fault_seed", Int !fault_seed);
            ]
          in
          write_attribution ~experiment:"attribution"
            ~label:(wname ^ "-" ^ sysname) sink ~meta)
        systems)
    cases;
  report_table t;
  print_expectation
    ~paper:"(observability extension; no paper figure)"
    ~ours:
      "guard slow path dominates TrackFM request latency at 25% local; \
       Fastswap shifts the share toward page-granular fetch stalls"
