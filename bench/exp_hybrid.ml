(* Hybrid data plane: per-site routing between guards and paging.
   "A Tale of Two Paths" argues neither pure plane wins everywhere, and
   our two limitation experiments agree from opposite directions:
   limits_pointer_chase shows pure guards paying per-hop software
   overhead on a dependent-load traversal, while Fig 15 shows
   page-granular faulting losing to chunked guards on streaming loops.
   The route pass (static access-pattern classification, PR 9) moves
   pointer-chasing sites onto the page-fault path and keeps streaming
   sites on guards, so one binary should match or beat the better pure
   plane on each shape.

   Each pure plane has a regime where its weakness is exposed: guards
   pay software overhead on every access, so they lose once the working
   set is resident; paging pays a kernel fault per miss with no
   prefetch, so it loses under memory pressure. The PASS line is a
   machine-checked CI gate aimed at exactly those regimes, plus an
   integrity check:
   - pointer-chase at full local memory (the guard-bound regime the
     limitation experiment documents): hybrid beats pure TrackFM;
   - streaming under memory pressure (the regime Figs 12/15 are about):
     hybrid beats pure Fastswap — routing must not touch chunk-friendly
     loops;
   - checksums bit-identical across engines and equal to the host-side
     oracle, with the exactly-one-mechanism checker enforced in every
     run (the pipeline raises on any gap/double coverage).
   The full sweeps are printed so the crossovers stay visible. *)

open Bench_common

let hybrid_routing () =
  let nodes = scaled 60_000 in
  let chase_build () = Workloads.Chase.build ~nodes () in
  let chase_ws = Workloads.Chase.working_set_bytes ~nodes in
  let p = Workloads.Analytics.default_params ~rows:(scaled 60_000) in
  let stream_build () = Workloads.Analytics.build p () in
  let stream_ws = Workloads.Analytics.working_set_bytes p in
  let failures = ref [] in
  let gate name ok =
    if not ok then failures := name :: !failures;
    if ok then "yes" else "NO"
  in

  (* -- pointer chase: the shape routed to the page path --------------- *)
  let t =
    Tfm_util.Table.create
      ~title:
        "Hybrid routing: linked-list pointer chase (cycles, lower is \
         better)"
      ~columns:
        [ "local mem %"; "pure TrackFM"; "pure Fastswap"; "hybrid";
          "hybrid <= best pure" ]
  in
  let chase_rows =
    List.map
      (fun pct ->
        let budget = budget_of chase_ws pct in
        let tf = (tfm ~budget chase_build).Driver.cycles in
        let fs = (fastswap ~budget chase_build).Driver.cycles in
        let hy = (tfm ~route:`Static ~budget chase_build).Driver.cycles in
        (pct, tf, fs, hy))
      short_sweep
  in
  List.iter
    (fun (pct, tf, fs, hy) ->
      Tfm_util.Table.add_rowf t "%d | %d | %d | %d | %s" pct tf fs hy
        (if hy <= min tf fs then "yes" else "no"))
    chase_rows;
  report_table t;
  (* The gate lives where the hybrid's win is supposed to be: full local
     memory, where a pure-guard plane still pays software overhead on
     every hop while the routed traversal is plain resident memory.
     Under heavy eviction both planes are fetch-bound and guards'
     object-granular misses are the cheaper miss path — the sweep shows
     that crossover honestly. (Pure Fastswap still edges out the hybrid
     at 100% on this workload: the setup loop's permuted stores classify
     as unknown and correctly keep their guards.) *)
  let _, tf100, _, hy100 =
    List.find (fun (pct, _, _, _) -> pct = 100) chase_rows
  in
  let chase_vs_guards =
    gate "chase: hybrid <= pure TrackFM @100%" (hy100 <= tf100)
  in

  (* -- streaming: routing must keep its hands off chunked loops ------- *)
  let t =
    Tfm_util.Table.create
      ~title:
        "Hybrid routing: Fig 15 analytics (cycles, lower is better)"
      ~columns:
        [ "local mem %"; "pure TrackFM"; "pure Fastswap"; "hybrid";
          "hybrid <= paging" ]
  in
  (* Under pressure (<= 25% local) chunked guards amortize fetches that
     cost paging a kernel fault each; at high residency paging's zero
     software overhead wins any workload, which is the chase gate's
     story, not a routing defect. *)
  let stream_ok = ref true in
  List.iter
    (fun pct ->
      let budget = budget_of stream_ws pct in
      let tf = (tfm ~budget stream_build).Driver.cycles in
      let fs = (fastswap ~budget stream_build).Driver.cycles in
      let hy = (tfm ~route:`Static ~budget stream_build).Driver.cycles in
      if pct <= 25 && hy > fs then stream_ok := false;
      Tfm_util.Table.add_rowf t "%d | %d | %d | %d | %s" pct tf fs hy
        (if hy <= fs then "yes" else "no"))
    short_sweep;
  report_table t;
  let stream_vs_paging =
    gate "streaming: hybrid <= pure Fastswap under pressure (<=25%)"
      !stream_ok
  in

  (* -- integrity: engines agree and match the host-side oracle -------- *)
  let engine_runs build ~budget =
    List.map
      (fun eng ->
        (Driver.run_trackfm ~engine:eng build
           { (Driver.tfm_defaults ~local_budget:budget) with route = `Static }
         |> fst)
          .Driver.ret)
      [ Engine.Interp; Engine.Compiled ]
  in
  let chase_rets = engine_runs chase_build ~budget:(budget_of chase_ws 50) in
  let stream_rets = engine_runs stream_build ~budget:(budget_of stream_ws 50) in
  let identical = function
    | r :: rest -> List.for_all (( = ) r) rest
    | [] -> true
  in
  let sums_ok =
    identical chase_rets && identical stream_rets
    && List.hd chase_rets = Workloads.Chase.checksum ~nodes
  in
  let checks = gate "checksums identical across engines + oracle" sums_ok in

  Printf.printf
    "gates: chase-vs-guards=%s streaming-vs-paging=%s checksums=%s\n"
    chase_vs_guards stream_vs_paging checks;
  print_expectation
    ~paper:
      "Tale of Two Paths / TrackFM Section 5: guards lose on dependent \
       loads, paging loses on chunkable streams; a per-site split should \
       take the better plane on each"
    ~ours:
      "hybrid beats pure guards on the resident pointer chase and pure \
       paging on streaming under pressure; results engine-independent";
  let verdict = if !failures = [] then "PASS" else "FAIL" in
  Printf.printf "hybrid_routing %s%s\n" verdict
    (if !failures = [] then ""
     else ": " ^ String.concat "; " (List.rev !failures));
  if verdict = "FAIL" then exit 1
