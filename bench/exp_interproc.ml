(* Interprocedural elision study: what the call-graph summaries buy.

   Each row runs the full pipeline twice with the optimizer ON — once
   with interprocedural summaries disabled (every call to a non-intrinsic
   function conservatively clobbers guard custody and returns unknown
   provenance) and once with them enabled (calls proven
   custody-preserving let dataflow facts survive; wrapper allocators and
   pure helpers classify precisely). The checksum must be bit-identical
   either way: summaries only widen what the elision analyses may prove,
   and every elision still carries a witness the coverage checker
   re-verifies through its own summary-independent path. *)

open Bench_common

let interproc_elision () =
  let t =
    Tfm_util.Table.create
      ~title:
        "interprocedural elision: dynamic guard events, summaries off vs on \
         (optimizer on in both)"
      ~columns:
        [
          "workload";
          "static w/o";
          "static w/";
          "dyn guards w/o";
          "dyn guards w/";
          "dyn reduction";
          "cycles w/o";
          "cycles w/";
        ]
  in
  let static_guards (r : Trackfm.Pipeline.report) =
    r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
    + r.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores
    - Trackfm.Elide_pass.total_elided r.Trackfm.Pipeline.elision
    + r.Trackfm.Pipeline.elision.Trackfm.Elide_pass.hoisted
  in
  let dynamic_guards (o : Driver.outcome) =
    Driver.counter o "tfm.fast_guards"
    + Driver.counter o "tfm.slow_guards"
    + Driver.counter o "tfm.custody_skips"
  in
  let row name ?blobs ~chunk_mode ~ws build =
    let budget = budget_of ws 100 in
    let off, r_off =
      tfm_with_report ?blobs ~chunk_mode ~profile_gate:false ~elide:true
        ~summaries:false ~budget build
    in
    let on, r_on =
      tfm_with_report ?blobs ~chunk_mode ~profile_gate:false ~elide:true
        ~summaries:true ~budget build
    in
    assert (off.Driver.ret = on.Driver.ret);
    let g_off = dynamic_guards off and g_on = dynamic_guards on in
    let reduction =
      if g_off = 0 then 0.0
      else 100.0 *. float_of_int (g_off - g_on) /. float_of_int g_off
    in
    Tfm_util.Table.add_rowf t "%s | %d | %d | %d | %d | %.1f%% | %d | %d" name
      (static_guards r_off) (static_guards r_on) g_off g_on reduction
      off.Driver.cycles on.Driver.cycles;
    reduction
  in
  let kp = Kmeans.default_params ~n:(scaled 4_000) in
  let km_off =
    row "kmeans (chunk off)" ~chunk_mode:`Off
      ~ws:(Kmeans.working_set_bytes kp)
      (fun () -> Kmeans.build kp ())
  in
  let km_gated =
    row "kmeans (gated)" ~chunk_mode:`Gated
      ~ws:(Kmeans.working_set_bytes kp)
      (fun () -> Kmeans.build kp ())
  in
  let ap = Analytics.default_params ~rows:(scaled 10_000) in
  let an_off =
    row "analytics (chunk off)" ~chunk_mode:`Off
      ~ws:(Analytics.working_set_bytes ap)
      (fun () -> Analytics.build ap ())
  in
  let an_gated =
    row "analytics (gated)" ~chunk_mode:`Gated
      ~ws:(Analytics.working_set_bytes ap)
      (fun () -> Analytics.build ap ())
  in
  (* Contrast rows: single-function modules have no non-intrinsic calls,
     so summaries must change nothing — 0.0% by construction. *)
  let n = scaled 50_000 in
  ignore
    (row "stream-sum (chunk off)" ~chunk_mode:`Off
       ~ws:(Stream.working_set_bytes ~n ~kernel:Stream.Sum ())
       (fun () -> Stream.build ~n ~kernel:Stream.Sum ()));
  let hp =
    Hashmap.default_params ~keys:(scaled 10_000) ~lookups:(scaled 15_000)
  in
  ignore
    (row "hashmap" ~blobs:[ (0, Hashmap.trace_blob hp) ] ~chunk_mode:`Gated
       ~ws:(Hashmap.working_set_bytes hp)
       (fun () -> Hashmap.build hp ()));
  report_table t;
  let hits =
    List.length (List.filter (fun r -> r >= 5.0) [ km_off; km_gated; an_off; an_gated ])
  in
  print_expectation
    ~paper:
      "guard checks dominated across call boundaries are still pure \
       overhead; summary-based interprocedural analysis extends the \
       same elision arguments through calls (Sections 3.1/3.3)"
    ~ours:
      (Printf.sprintf
         "summaries cut dynamic guards >= 5%% on %d of 4 helper-using \
          rows (%s) with bit-identical checksums; the checker re-proves \
          every witness with its own independently derived call-clobber \
          relation"
         hits
         (if hits >= 2 then "target: >= 2 met" else "target: >= 2 MISSED"))
