(* Robustness: the replicated remote tier vs crash faults.

   A single memory server that crashes loses every object it held; the
   workload's own answer goes wrong (lost objects read back as zeros).
   This experiment runs the same workloads under a periodic per-node
   crash schedule and shows that a 3-node tier with ack=2 writebacks
   rides through the same schedule — failover reads serve surviving
   replicas, recovery resync re-protects objects, and every checksum
   stays correct. The assertions are the point: replicas=1 MUST lose
   data under this schedule, replicas=3 MUST NOT. *)

open Bench_common

(* Crash schedule: every node dies once per PERIOD for PERIOD/6 cycles,
   staggered so replicas never overlap (Cluster.window spaces nodes
   PERIOD/N apart; PERIOD/6 < PERIOD/3). Scaled alongside the workload
   sizes so --quick still sees several windows. *)
let crash_period = 1_500_000
let crash_cfg () =
  let period = scaled crash_period in
  match Faults.parse (Printf.sprintf "crash=%d:%d" period (period / 6)) with
  | Ok cfg -> cfg
  | Error e -> failwith ("exp_durability: " ^ e)

let run_one ~system ~build ~blobs ~budget ~replicas ~ack =
  let faults = Faults.create ~seed:!fault_seed (crash_cfg ()) in
  match system with
  | `Trackfm ->
      let opts =
        { (Driver.tfm_defaults ~local_budget:budget) with faults; replicas; ack }
      in
      fst (Driver.run_trackfm ?blobs build opts)
  | `Fastswap ->
      Driver.run_fastswap ?blobs ~faults ~replicas ~ack ~local_budget:budget
        build

let durability () =
  let cases =
    [
      ( "stream-sum",
        (fun () ->
          let n = scaled 200_000 in
          let kernel = Stream.Sum in
          ( (fun () -> Stream.build ~n ~kernel ()),
            None,
            Stream.working_set_bytes ~n ~kernel (),
            Stream.checksum ~n ~kernel () )) );
      (* Not hashmap here: a lost table slot reads as zero and the probe
         loop spins forever hunting a key that no longer exists — data
         loss as a hang, which a table can't show. Analytics keeps every
         loop bound a constant, so loss surfaces as a wrong answer. *)
      ( "analytics",
        (fun () ->
          let p = Analytics.default_params ~rows:(scaled 150_000) in
          ( (fun () -> Analytics.build p ()),
            None,
            Analytics.working_set_bytes p,
            Analytics.checksum p )) );
    ]
  in
  let systems = [ ("trackfm", `Trackfm); ("fastswap", `Fastswap) ] in
  let tiers = [ (1, 1); (3, 2) ] in
  List.iter
    (fun (name, mk) ->
      let build, blobs, ws, expected = mk () in
      let budget = budget_of ws 25 in
      let t =
        Tfm_util.Table.create
          ~title:
            (Printf.sprintf
               "%s at 25%% local memory under %s (seed %d)" name
               (Faults.to_string (crash_cfg ()))
               !fault_seed)
          ~columns:
            [
              "system"; "replicas"; "ack"; "checksum"; "lost"; "failovers";
              "resynced"; "crashes"; "cycles";
            ]
      in
      List.iter
        (fun (sys_name, system) ->
          List.iter
            (fun (replicas, ack) ->
              let o = run_one ~system ~build ~blobs ~budget ~replicas ~ack in
              let lost = Driver.counter o "net.lost_objects" in
              let correct = o.Driver.ret = expected in
              Tfm_util.Table.add_rowf t "%s | %d | %d | %s | %d | %d | %d | %d | %s"
                sys_name replicas ack
                (if correct then "correct" else "WRONG")
                lost
                (Driver.counter o "net.failovers")
                (Driver.counter o "net.resync_objects")
                (Driver.counter o "cluster.crashes")
                (Tfm_util.Units.cycles_to_string o.Driver.cycles);
              if replicas = 1 then begin
                (* The whole point: a single node under this schedule
                   demonstrably loses data. *)
                assert (lost > 0);
                assert (not correct)
              end
              else begin
                assert (correct);
                assert (lost = 0)
              end)
            tiers)
        systems;
      report_table t)
    cases;
  print_expectation
    ~paper:"(no crash-fault study; the memory server is assumed reliable)"
    ~ours:
      "replicas=1 loses objects and corrupts every workload answer; \
       replicas=3 ack=2 rides the identical crash schedule with correct \
       checksums via failover reads and recovery resync"
