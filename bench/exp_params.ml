(* Figures 9-12: AIFM parameter studies (object size, prefetching) and the
   STREAM comparison against Fastswap. *)

open Bench_common

let object_sizes = [ 4096; 2048; 1024; 512; 256 ]

(* Figure 9: object size on the Zipfian hashmap (throughput). *)
let fig9 () =
  let p = Hashmap.default_params ~keys:(scaled 100_000) ~lookups:(scaled 150_000) in
  let blobs = [ (0, Hashmap.trace_blob p) ] in
  let ws = Hashmap.working_set_bytes p in
  let build () = Hashmap.build p () in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 9a: hashmap throughput (MOps/s) by object size"
      ~columns:
        ("local mem %" :: List.map (fun o -> Printf.sprintf "%dB" o) object_sizes)
  in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let row =
        List.map
          (fun osz ->
            let o = tfm ~blobs ~object_size:osz ~budget build in
            Printf.sprintf "%.2f" (mops p.Hashmap.lookups o.Driver.cycles))
          object_sizes
      in
      Tfm_util.Table.add_row t (string_of_int pct :: row))
    short_sweep;
  report_table t;
  (* 9b: the fixed 25% bar chart *)
  let t2 =
    Tfm_util.Table.create ~title:"Figure 9b: hashmap at 25% local memory"
      ~columns:[ "object size"; "MOps/s" ]
  in
  List.iter
    (fun osz ->
      let o = tfm ~blobs ~object_size:osz ~budget:(budget_of ws 25) build in
      Tfm_util.Table.add_rowf t2 "%dB | %.2f" osz
        (mops p.Hashmap.lookups o.Driver.cycles))
    object_sizes;
  report_table t2;
  print_expectation
    ~paper:"fine-grained, low-spatial-locality access: smaller objects win"
    ~ours:"throughput increases monotonically toward 256B"

(* Figure 10: object size on STREAM copy (bandwidth). *)
let fig10 () =
  let n = scaled 400_000 in
  let kernel = Stream.Copy in
  let ws = Stream.working_set_bytes ~n ~kernel () in
  let build () = Stream.build ~n ~kernel () in
  let bytes_processed = 2 * n * 4 in
  let t =
    Tfm_util.Table.create
      ~title:"Figure 10a: STREAM copy bandwidth (MB/s) by object size"
      ~columns:
        ("local mem %" :: List.map (fun o -> Printf.sprintf "%dB" o) object_sizes)
  in
  List.iter
    (fun pct ->
      let budget = budget_of ws pct in
      let row =
        List.map
          (fun osz ->
            let o = tfm ~object_size:osz ~budget build in
            Printf.sprintf "%.0f"
              (float_of_int bytes_processed
              /. cycles_to_seconds o.Driver.cycles /. 1e6))
          object_sizes
      in
      Tfm_util.Table.add_row t (string_of_int pct :: row))
    short_sweep;
  report_table t;
  let t2 =
    Tfm_util.Table.create ~title:"Figure 10b: STREAM copy at 25% local memory"
      ~columns:[ "object size"; "MB/s" ]
  in
  List.iter
    (fun osz ->
      let o = tfm ~object_size:osz ~budget:(budget_of ws 25) build in
      Tfm_util.Table.add_rowf t2 "%dB | %.0f" osz
        (float_of_int bytes_processed /. cycles_to_seconds o.Driver.cycles /. 1e6))
    object_sizes;
  report_table t2;
  print_expectation
    ~paper:"high spatial locality: larger (4KB) objects win"
    ~ours:"bandwidth increases monotonically toward 4KB"

(* Figure 11: prefetching coupled with chunking vs chunking alone. *)
let fig11 () =
  let n = scaled 400_000 in
  List.iter
    (fun kernel ->
      let ws = Stream.working_set_bytes ~n ~kernel () in
      let build () = Stream.build ~n ~kernel () in
      let t =
        Tfm_util.Table.create
          ~title:
            (Printf.sprintf "Figure 11 (%s): prefetch+chunking vs chunking"
               (Stream.kernel_name kernel))
          ~columns:[ "local mem %"; "no prefetch"; "prefetch"; "speedup" ]
      in
      List.iter
        (fun pct ->
          let budget = budget_of ws pct in
          let off = (tfm ~prefetch:false ~budget build).Driver.cycles in
          let on = (tfm ~prefetch:true ~budget build).Driver.cycles in
          Tfm_util.Table.add_rowf t "%d | %d | %d | %.2f" pct off on
            (speedup off on))
        pct_sweep;
      report_table t)
    [ Stream.Sum; Stream.Copy ];
  print_expectation
    ~paper:"up to ~5x at the left (remote-bound); impact fades to the right"
    ~ours:"same shape: large speedup when remote-bound, ~1x when local"

(* Figure 12: STREAM speedup over Fastswap with chunking+prefetching. *)
let fig12 () =
  let n = scaled 400_000 in
  let plots =
    List.map
      (fun kernel ->
        let ws = Stream.working_set_bytes ~n ~kernel () in
        let build () = Stream.build ~n ~kernel () in
        let t =
          Tfm_util.Table.create
            ~title:
              (Printf.sprintf "Figure 12 (%s): TrackFM speedup vs Fastswap"
                 (Stream.kernel_name kernel))
            ~columns:
              [ "local mem %"; "TrackFM cycles"; "Fastswap cycles"; "speedup" ]
        in
        let pts =
          List.map
            (fun pct ->
              let budget = budget_of ws pct in
              let tf = (tfm ~budget build).Driver.cycles in
              let fs = (fastswap ~budget build).Driver.cycles in
              Tfm_util.Table.add_rowf t "%d | %d | %d | %.2f" pct tf fs
                (speedup fs tf);
              (float_of_int pct, speedup fs tf))
            pct_sweep
        in
        report_table t;
        { Tfm_util.Ascii_plot.label = Stream.kernel_name kernel; points = pts })
      [ Stream.Sum; Stream.Copy ]
  in
  Tfm_util.Ascii_plot.print ~x_label:"local mem %"
    ~title:"Figure 12: speedup vs Fastswap" plots;
  print_expectation
    ~paper:"~2.7x (Sum) and ~2.9x (Copy) over Fastswap"
    ~ours:"TrackFM wins across the sweep, larger margins when remote-bound"
