(* engine_speedup: instruction-dispatch throughput of the compiled
   closure engine against the tree-walking interpreter — the measurement
   behind the "compiled engine unlocks full-size sweeps" claim, tracked
   as a JSON table from this PR onward.

   Two kinds of cases run. The dispatch microkernels (alu-mix, branchy)
   are pure control/ALU loops with no heap traffic: on them almost the
   whole run is instruction dispatch, so they isolate the quantity the
   gate is about. The application workloads (stream-sum, kmeans,
   hashmap, analytics) give the end-to-end picture: there both engines
   share the identical memory-simulator work (Memstore byte accesses,
   allocator, clock sampling), so Amdahl's law caps the visible ratio
   well below the dispatch-only speedup.

   Both engines run the identical module on the identical local backend,
   so instruction counts agree exactly (asserted, along with the
   checksum); only wall-clock time differs. Each engine is timed twice
   and the faster run kept, making the ratio robust to scheduler noise.
   Throughput is reported in millions of simulated instructions per host
   second. The final PASS line is the machine-checked CI gate: at least
   two cases must clear 5x. *)

open Bench_common

let target_speedup = 5.0
let min_passing = 2

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Pure integer mixing loop: one block, ~13 instructions per iteration,
   zero loads/stores. Dispatch is the entire cost. *)
let alu_mix ~n () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let acc =
    Builder.for_loop_acc b ~hint:"mix" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Const 0x9e3779b9 ]
      (fun b ~iv ~accs ->
        let a = List.hd accs in
        let t1 = Builder.mul b a (Ir.Const 0x5851f42d4c957f2d) in
        let t2 = Builder.add b t1 iv in
        let t3 = Builder.binop b Ir.Lshr t2 (Ir.Const 29) in
        let t4 = Builder.binop b Ir.Xor t2 t3 in
        let t5 = Builder.binop b Ir.And t4 (Ir.Const 0xffff_ffff_ffff) in
        let t6 = Builder.binop b Ir.Shl t5 (Ir.Const 3) in
        let t7 = Builder.binop b Ir.Or t6 (Ir.Const 1) in
        [ Builder.add b t5 t7 ])
  in
  Builder.ret b (Some (List.hd acc));
  m

(* Data-dependent branching loop: a Collatz-flavoured walk where every
   iteration takes one of two update blocks on the low bit of the state.
   Exercises terminator dispatch and multi-arm phis with no heap
   traffic. *)
let branchy ~n () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let entry = Builder.current_label b in
  let header = Builder.add_block b "header" in
  let odd = Builder.add_block b "odd" in
  let even = Builder.add_block b "even" in
  let latch = Builder.add_block b "latch" in
  let exit = Builder.add_block b "exit" in
  Builder.br b header;
  Builder.set_block b header;
  let i = Builder.phi b [ (entry, Ir.Const 0) ] in
  let a = Builder.phi b [ (entry, Ir.Const 123456789) ] in
  let bit = Builder.binop b Ir.And a (Ir.Const 1) in
  Builder.cbr b bit odd even;
  Builder.set_block b odd;
  let o1 = Builder.mul b a (Ir.Const 3) in
  let o2 = Builder.add b o1 (Ir.Const 1) in
  Builder.br b latch;
  Builder.set_block b even;
  let e1 = Builder.binop b Ir.Lshr a (Ir.Const 1) in
  let e2 = Builder.add b e1 i in
  Builder.br b latch;
  Builder.set_block b latch;
  let a' = Builder.phi b [ (odd, o2); (even, e2) ] in
  let i' = Builder.add b i (Ir.Const 1) in
  let c = Builder.icmp b Ir.Lt i' (Ir.Const n) in
  Builder.cbr b c header exit;
  Builder.patch_phi b i latch i';
  Builder.patch_phi b a latch a';
  Builder.set_block b exit;
  Builder.ret b (Some (Builder.binop b Ir.And a' (Ir.Const 0xfffffff)));
  m

let engine_speedup () =
  print_expectation
    ~paper:"n/a (simulator infrastructure; target: >=10x dispatch throughput)"
    ~ours:"compiled engine >=5x on at least two cases (CI gate)";
  let cases =
    [
      ("alu-mix", (fun () -> alu_mix ~n:(scaled 2_000_000) ()), []);
      ("branchy", (fun () -> branchy ~n:(scaled 1_500_000) ()), []);
      ( "stream-sum",
        (fun () ->
          Workloads.Stream.build ~n:(scaled 400_000) ~kernel:Workloads.Stream.Sum ()),
        [] );
      ( "kmeans",
        (fun () ->
          Workloads.Kmeans.build
            (Workloads.Kmeans.default_params ~n:(scaled 40_000)) ()),
        [] );
      ( "hashmap",
        (let p =
           Workloads.Hashmap.default_params ~keys:(scaled 60_000)
             ~lookups:(scaled 120_000)
         in
         fun () -> Workloads.Hashmap.build p ()),
        (let p =
           Workloads.Hashmap.default_params ~keys:(scaled 60_000)
             ~lookups:(scaled 120_000)
         in
         [ (0, Workloads.Hashmap.trace_blob p) ]) );
      ( "analytics",
        (fun () ->
          Workloads.Analytics.build
            (Workloads.Analytics.default_params ~rows:(scaled 60_000)) ()),
        [] );
    ]
  in
  let t =
    Tfm_util.Table.create ~title:"Engine dispatch throughput (local backend)"
      ~columns:[ "case"; "instrs"; "interp Mi/s"; "compiled Mi/s"; "speedup" ]
  in
  let passing = ref 0 in
  List.iter
    (fun (name, build, blobs) ->
      let run eng =
        (* best of two: the gate compares a ratio of wall-clock times,
           so take the minimum over two runs of each engine to shed
           scheduler and cache-warming noise. *)
        let o, t1 =
          wall (fun () -> Driver.run_local ~engine:eng ~blobs build)
        in
        let _, t2 =
          wall (fun () -> Driver.run_local ~engine:eng ~blobs build)
        in
        (o, min t1 t2)
      in
      let oi, ti = run Engine.Interp in
      let oc, tc = run Engine.Compiled in
      if oi.Driver.ret <> oc.Driver.ret then
        failwith
          (Printf.sprintf "engine_speedup %s: checksum diverged (%d vs %d)"
             name oi.Driver.ret oc.Driver.ret);
      if oi.Driver.instrs <> oc.Driver.instrs then
        failwith
          (Printf.sprintf "engine_speedup %s: instr count diverged" name);
      let mips t = float_of_int oi.Driver.instrs /. t /. 1e6 in
      let sp = ti /. tc in
      if sp >= target_speedup then incr passing;
      Tfm_util.Table.add_rowf t "%s | %d | %.1f | %.1f | %.2f" name
        oi.Driver.instrs (mips ti) (mips tc) sp)
    cases;
  report_table t;
  let verdict = if !passing >= min_passing then "PASS" else "FAIL" in
  Printf.printf "engine_speedup %s: %d of %d cases >= %.0fx\n" verdict !passing
    (List.length cases) target_speedup;
  if verdict = "FAIL" then exit 1
