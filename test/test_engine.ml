(* Differential tests between the tree-walking interpreter (the oracle)
   and the compiled closure engine: every workload, faults on and off,
   guard elision on and off, must produce identical results, identical
   clock counters, and identical span-attribution category splits. A
   negative test proves the diff actually bites: a deliberately
   miscompiled closure (Compile.test_miscompile) must be caught. *)

open Workloads

let engines = [ (Engine.Interp, "interp"); (Engine.Compiled, "compiled") ]

let medium_faults ~seed =
  match Faults.parse "medium" with
  | Ok cfg -> Faults.create ~seed cfg
  | Error e -> Alcotest.failf "faults spec: %s" e

(* Everything observable from one run: result triple, every clock
   counter, and the per-class span category decomposition. *)
type observation = {
  ret : int;
  cycles : int;
  instrs : int;
  counters : (string * int) list;
  spans : (int * int list) list;
}

let observe_tfm ?blobs ?(op_classes = []) ~engine ~faults ~elide build
    ~local_budget =
  let sink = ref Telemetry.Sink.nop in
  let telemetry clock =
    let s =
      Telemetry.Sink.recording ~trace:false ~series_interval:0 ~spans:true
        ~op_classes clock
    in
    sink := s;
    s
  in
  let opts =
    {
      (Driver.tfm_defaults ~local_budget) with
      Driver.faults;
      elide_guards = elide;
    }
  in
  let outcome, _report = Driver.run_trackfm ~engine ?blobs ~telemetry build opts in
  let spans =
    match Telemetry.Sink.spans !sink with
    | None -> []
    | Some sp ->
        List.map
          (fun (cls, st) ->
            (cls, Array.to_list st.Telemetry.Span.cat_totals))
          (Telemetry.Span.classes sp)
  in
  {
    ret = outcome.Driver.ret;
    cycles = outcome.Driver.cycles;
    instrs = outcome.Driver.instrs;
    counters =
      List.sort compare (Clock.counters outcome.Driver.clock);
    spans;
  }

let check_equal label (a : observation) (b : observation) =
  Alcotest.(check int) (label ^ ": ret") a.ret b.ret;
  Alcotest.(check int) (label ^ ": cycles") a.cycles b.cycles;
  Alcotest.(check int) (label ^ ": instrs") a.instrs b.instrs;
  Alcotest.(check (list (pair string int)))
    (label ^ ": counters") a.counters b.counters;
  Alcotest.(check (list (pair int (list int))))
    (label ^ ": span splits") a.spans b.spans

(* The workload matrix at miniature scale. Each entry: name, builder,
   blobs, span op classes, working-set-derived local budget. *)
let matrix () =
  let stream =
    let n = 20_000 in
    ( "stream-sum",
      (fun () -> Stream.build ~n ~kernel:Stream.Sum ()),
      [],
      [],
      Stream.working_set_bytes ~n ~kernel:Stream.Sum () / 4 )
  in
  let kmeans =
    let p = Kmeans.default_params ~n:1_000 in
    ( "kmeans",
      Kmeans.build p,
      [],
      Kmeans.op_classes,
      Kmeans.working_set_bytes p / 2 )
  in
  let hashmap =
    let p = Hashmap.default_params ~keys:2_000 ~lookups:4_000 in
    ( "hashmap",
      Hashmap.build p,
      [ (0, Hashmap.trace_blob p) ],
      Hashmap.op_classes,
      Hashmap.working_set_bytes p / 4 )
  in
  let memcached =
    let p = Memcached.default_params ~keys:1_000 ~gets:1_500 ~skew:0.9 in
    ( "memcached",
      Memcached.build p,
      [ (0, Memcached.trace_blob p) ],
      Memcached.op_classes,
      Memcached.working_set_bytes p / 2 )
  in
  let analytics =
    let p = Analytics.default_params ~rows:2_000 in
    ( "analytics",
      Analytics.build p,
      [],
      [],
      Analytics.working_set_bytes p / 3 )
  in
  let nas =
    let p = { Nas.kernel = Nas.IS; scale = 1 } in
    ("nas-is", Nas.build p, [], [], Nas.working_set_bytes p / 2)
  in
  [ stream; kmeans; hashmap; memcached; analytics; nas ]

let test_trackfm_matrix () =
  List.iter
    (fun (name, build, blobs, op_classes, local_budget) ->
      List.iter
        (fun (faults, fault_tag) ->
          List.iter
            (fun elide ->
              let obs engine =
                (* a Faults.t carries PRNG state: each run needs a fresh
                   one or the second engine sees a shifted schedule *)
                observe_tfm ~blobs ~op_classes ~engine ~faults:(faults ())
                  ~elide build ~local_budget
              in
              let label =
                Printf.sprintf "%s/%s/elide=%b" name fault_tag elide
              in
              check_equal label (obs Engine.Interp) (obs Engine.Compiled))
            [ true; false ])
        [
          ((fun () -> Faults.disabled), "nofault");
          ((fun () -> medium_faults ~seed:1), "medium");
        ])
    (matrix ())

let test_local_and_fastswap () =
  let n = 20_000 in
  let build () = Stream.build ~n ~kernel:Stream.Sum () in
  let budget = Stream.working_set_bytes ~n ~kernel:Stream.Sum () / 4 in
  let local engine =
    let o = Driver.run_local ~engine build in
    (o.Driver.ret, o.Driver.cycles, o.Driver.instrs,
     List.sort compare (Clock.counters o.Driver.clock))
  in
  let fastswap engine =
    let o = Driver.run_fastswap ~engine ~local_budget:budget build in
    (o.Driver.ret, o.Driver.cycles, o.Driver.instrs,
     List.sort compare (Clock.counters o.Driver.clock))
  in
  Alcotest.(check bool) "local engines agree" true
    (local Engine.Interp = local Engine.Compiled);
  Alcotest.(check bool) "fastswap engines agree" true
    (fastswap Engine.Interp = fastswap Engine.Compiled);
  let expected = Stream.checksum ~n ~kernel:Stream.Sum () in
  let ret, _, _, _ = local Engine.Compiled in
  Alcotest.(check int) "compiled checksum" expected ret

(* The float path deserves its own direct check: kmeans is the only
   heavily-float workload, and its checksum is a bit-exact reference. *)
let test_float_checksum () =
  let p = Kmeans.default_params ~n:800 in
  let o = Driver.run_local ~engine:Engine.Compiled (Kmeans.build p) in
  Alcotest.(check int) "kmeans checksum" (Kmeans.checksum p) o.Driver.ret

let test_miscompile_is_caught () =
  let n = 5_000 in
  let build () = Stream.build ~n ~kernel:Stream.Sum () in
  let run engine = (Driver.run_local ~engine build).Driver.ret in
  let reference = run Engine.Interp in
  Fun.protect
    ~finally:(fun () -> Compile.test_miscompile := false)
    (fun () ->
      Compile.test_miscompile := true;
      let broken = run Engine.Compiled in
      Alcotest.(check bool) "diff catches the miscompiled closure" true
        (broken <> reference));
  (* and with the knob back off, equivalence is restored *)
  Alcotest.(check int) "restored" reference (run Engine.Compiled)

let test_recursion_and_traps () =
  (* Direct-call binding, recursion depth and trap parity on a tiny
     hand-built module: fib(18) recursive. *)
  let m =
    let m = Ir.create_module () in
    let b = Builder.create m ~name:"fib" ~nparams:1 in
    let n = Builder.arg 0 in
    let base = Builder.add_block b "base" in
    let recb = Builder.add_block b "rec" in
    let c = Builder.icmp b Ir.Lt n (Ir.Const 2) in
    Builder.cbr b c base recb;
    Builder.set_block b base;
    Builder.ret b (Some n);
    Builder.set_block b recb;
    let n1 = Builder.sub b n (Ir.Const 1) in
    let a = Builder.call b "fib" [ n1 ] in
    let n2 = Builder.sub b n (Ir.Const 2) in
    let bb = Builder.call b "fib" [ n2 ] in
    let s = Builder.add b a bb in
    Builder.ret b (Some s);
    let bm = Builder.create m ~name:"main" ~nparams:0 in
    let r = Builder.call bm "fib" [ Ir.Const 18 ] in
    Builder.ret bm (Some r);
    m
  in
  let clock () = Clock.create () in
  let run engine =
    Engine.run ~engine
      (Backend.local Cost_model.default (clock ()) (Memstore.create ()))
      m ~entry:"main"
  in
  let a = run Engine.Interp and b = run Engine.Compiled in
  Alcotest.(check int) "fib ret" a.Interp.ret b.Interp.ret;
  Alcotest.(check int) "fib cycles" a.Interp.cycles b.Interp.cycles;
  Alcotest.(check int) "fib instrs" a.Interp.instrs_executed
    b.Interp.instrs_executed;
  (* trap parity: division by zero surfaces identically *)
  let div_m =
    let m = Ir.create_module () in
    let b = Builder.create m ~name:"main" ~nparams:0 in
    let z = Builder.add b (Ir.Const 0) (Ir.Const 0) in
    let d = Builder.binop b Ir.Sdiv (Ir.Const 1) z in
    Builder.ret b (Some d);
    m
  in
  let trap_of engine =
    try
      ignore
        (Engine.run ~engine
           (Backend.local Cost_model.default (clock ()) (Memstore.create ()))
           div_m ~entry:"main");
      "no trap"
    with Interp.Trap msg -> msg
  in
  Alcotest.(check string) "trap parity"
    (trap_of Engine.Interp) (trap_of Engine.Compiled)

let suite =
  ( "engine",
    [
      Alcotest.test_case "trackfm matrix: engines agree" `Slow
        test_trackfm_matrix;
      Alcotest.test_case "local/fastswap: engines agree" `Quick
        test_local_and_fastswap;
      Alcotest.test_case "compiled float checksum" `Quick test_float_checksum;
      Alcotest.test_case "miscompiled closure is caught" `Quick
        test_miscompile_is_caught;
      Alcotest.test_case "recursion and trap parity" `Quick
        test_recursion_and_traps;
    ] )
