(* Tests for lib/telemetry: the log-bucketed histogram, the counter
   time-series sampler, the Chrome-trace exporter, and the guard-site
   attribution wired through the TrackFM runtime. *)

let h_of values =
  let h = Telemetry.Histogram.create () in
  List.iter (Telemetry.Histogram.record h) values;
  h

let test_histogram_small_exact () =
  (* Values 0..15 land in exact buckets, so quantiles are exact. *)
  let h = h_of [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ] in
  Alcotest.(check int) "count" 16 (Telemetry.Histogram.count h);
  Alcotest.(check int) "min" 0 (Telemetry.Histogram.min_value h);
  Alcotest.(check int) "max" 15 (Telemetry.Histogram.max_value h);
  Alcotest.(check int) "q0" 0 (Telemetry.Histogram.quantile h 0.0);
  Alcotest.(check int) "q1" 15 (Telemetry.Histogram.quantile h 1.0);
  Alcotest.(check int) "p50" 7 (Telemetry.Histogram.quantile h 0.5)

let test_histogram_quantile_error_bound () =
  (* Uniform 1..10_000: every quantile must be within the documented
     1/16 relative error of the true nearest-rank value. *)
  let h = h_of (List.init 10_000 (fun i -> i + 1)) in
  List.iter
    (fun q ->
      let est = float_of_int (Telemetry.Histogram.quantile h q) in
      let exact = q *. 10_000.0 in
      let rel = abs_float (est -. exact) /. exact in
      if rel > 1.0 /. 16.0 then
        Alcotest.failf "q=%.2f: estimate %.0f vs exact %.0f (rel %.3f)" q est
          exact rel)
    [ 0.1; 0.25; 0.5; 0.9; 0.99 ];
  Alcotest.(check int) "min exact" 1 (Telemetry.Histogram.min_value h);
  Alcotest.(check int) "max exact" 10_000 (Telemetry.Histogram.max_value h)

let test_histogram_edges () =
  let h = Telemetry.Histogram.create () in
  (try
     ignore (Telemetry.Histogram.quantile h 0.5);
     Alcotest.fail "empty histogram accepted"
   with Invalid_argument _ -> ());
  Telemetry.Histogram.record h (-5);
  Alcotest.(check int) "negative clamps to 0" 0
    (Telemetry.Histogram.quantile h 0.5);
  Telemetry.Histogram.record h max_int;
  Alcotest.(check int) "max_int survives" max_int
    (Telemetry.Histogram.max_value h);
  (try
     ignore (Telemetry.Histogram.quantile h 1.5);
     Alcotest.fail "q>1 accepted"
   with Invalid_argument _ -> ());
  Telemetry.Histogram.record_n h 7 0;
  Telemetry.Histogram.record_n h 7 (-3);
  Alcotest.(check int) "record_n n<=0 is a no-op" 2
    (Telemetry.Histogram.count h)

let test_histogram_merge () =
  let a = h_of [ 1; 2; 3 ] and b = h_of [ 100; 200 ] in
  Telemetry.Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "count" 5 (Telemetry.Histogram.count a);
  Alcotest.(check int) "min" 1 (Telemetry.Histogram.min_value a);
  Alcotest.(check int) "max" 200 (Telemetry.Histogram.max_value a);
  Alcotest.(check int) "total" (1 + 2 + 3 + 100 + 200)
    (Telemetry.Histogram.total a)

let test_histogram_merge_list () =
  (* The fleet view: merging per-tenant histograms must agree with
     having recorded every sample into a single histogram. *)
  let samples =
    [ [ 3; 17; 17; 250; 4096 ]; [ 1; 2; 900_000 ]; []; [ 12_345; 77 ] ]
  in
  let merged = Telemetry.Histogram.merge (List.map h_of samples) in
  let single = h_of (List.concat samples) in
  Alcotest.(check int) "count" (Telemetry.Histogram.count single)
    (Telemetry.Histogram.count merged);
  Alcotest.(check int) "min" (Telemetry.Histogram.min_value single)
    (Telemetry.Histogram.min_value merged);
  Alcotest.(check int) "max" (Telemetry.Histogram.max_value single)
    (Telemetry.Histogram.max_value merged);
  Alcotest.(check int) "total" (Telemetry.Histogram.total single)
    (Telemetry.Histogram.total merged);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "quantile %.3f" q)
        (Telemetry.Histogram.quantile single q)
        (Telemetry.Histogram.quantile merged q))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ];
  Alcotest.(check bool) "merge [] is empty" true
    (Telemetry.Histogram.is_empty (Telemetry.Histogram.merge []));
  (* Inputs are left untouched. *)
  let a = h_of [ 1; 2 ] in
  ignore (Telemetry.Histogram.merge [ a; h_of [ 50 ] ]);
  Alcotest.(check int) "input histogram untouched" 2
    (Telemetry.Histogram.count a)

let test_slo_parse_lines () =
  let rules =
    match
      Telemetry.Slo.parse_lines
        [
          "# fleet SLOs";
          "";
          "lookup:p99<=250k,p50<=40k";
          "get:p999<=2m;scan:max<=10m";
        ]
    with
    | Ok r -> r
    | Error e -> Alcotest.fail ("good file rejected: " ^ e)
  in
  Alcotest.(check (list string)) "all rules, in order"
    [ "lookup"; "get"; "scan" ]
    (List.map (fun r -> r.Telemetry.Slo.cls) rules)

let test_slo_parse_lines_names_bad_line () =
  match
    Telemetry.Slo.parse_lines
      [ "lookup:p99<=250k"; "# fine"; ""; "get:p50<=oops" ]
  with
  | Ok _ -> Alcotest.fail "bad file accepted"
  | Error e ->
      let has sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length e && (String.sub e i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S names the 1-based line" e)
        true (has "line 4")

let test_shed_event_fires_flight_once () =
  let clock = Memsim.Clock.create () in
  let sink =
    Telemetry.Sink.recording ~trace:false ~series_interval:0 ~spans:true
      ~op_classes:[ (0, "t0") ] clock
  in
  let path = Filename.temp_file "tfm-shed-flight" ".json" in
  Telemetry.Sink.set_flight_recorder sink ~path
    ~meta:[ ("test", Telemetry.Json.String "shed") ];
  Alcotest.(check (option string)) "armed, not yet fired" None
    (Telemetry.Sink.flight_dumped sink);
  Telemetry.Sink.shed_event sink ~kind:"reject" ~detail:"qlen=9 deadline";
  Alcotest.(check (option string)) "first shed dumps" (Some path)
    (Telemetry.Sink.flight_dumped sink);
  (* Dump-once: a later shed must not rewrite the snapshot. *)
  Sys.remove path;
  Telemetry.Sink.shed_event sink ~kind:"shed" ~detail:"breaker_open";
  Alcotest.(check bool) "second shed does not re-dump" false
    (Sys.file_exists path);
  (* And the Nop sink swallows it. *)
  Telemetry.Sink.shed_event Telemetry.Sink.nop ~kind:"reject" ~detail:"x"

let test_json_rendering () =
  let open Telemetry.Json in
  Alcotest.(check string) "escaping" "\"a\\\"b\\n\\\\\""
    (to_string (String "a\"b\n\\"));
  Alcotest.(check string) "obj"
    "{\"x\":1,\"y\":[true,null,1.5]}"
    (to_string (Obj [ ("x", Int 1); ("y", List [ Bool true; Null; Float 1.5 ]) ]))

(* -- series: sampled through the clock hook ----------------------------- *)

let test_series_sampling () =
  let clock = Clock.create () in
  let sink = Telemetry.Sink.recording ~trace:false ~series_interval:1_000 clock in
  for _ = 1 to 50 do
    Clock.count clock "evt" 2;
    Clock.tick clock 100
  done;
  Telemetry.Sink.final_sample sink;
  let r = Option.get (Telemetry.Sink.recorder sink) in
  let s = Option.get r.Telemetry.Sink.series in
  (* 5000 cycles at interval 1000 -> 5 boundary samples; the final
     sample lands on the last boundary and is deduplicated. *)
  Alcotest.(check int) "sample count" 5 (Telemetry.Series.length s);
  let csv = Telemetry.Series.to_csv s in
  let first_line = List.hd (String.split_on_char '\n' csv) in
  Alcotest.(check string) "csv header" "cycles,evt" first_line;
  (* Cumulative counter 2-per-100-cycles: at cycle 1000 it reads 20. *)
  (match Telemetry.Series.samples s with
  | { Telemetry.Series.at; counters } :: _ ->
      Alcotest.(check int) "first sample at boundary" 1_000 at;
      Alcotest.(check (list (pair string int))) "first value" [ ("evt", 20) ]
        counters
  | [] -> Alcotest.fail "no samples");
  let deltas = Telemetry.Series.deltas s "evt" in
  List.iter
    (fun (_, d) -> Alcotest.(check (float 1e-9)) "steady delta" 20.0 d)
    (List.tl deltas)

let test_series_reset_baseline () =
  (* A counter drop (clock reset at !bench_begin) restarts the delta
     baseline instead of producing a huge negative delta. *)
  let s = Telemetry.Series.create ~interval:10 in
  Telemetry.Series.record s ~at:10 [ ("c", 100) ];
  Telemetry.Series.record s ~at:20 [ ("c", 150) ];
  Telemetry.Series.record s ~at:30 [ ("c", 5) ];
  Telemetry.Series.record s ~at:40 [ ("c", 25) ];
  let ds = List.map snd (Telemetry.Series.deltas s "c") in
  Alcotest.(check bool) "no negative deltas" true
    (List.for_all (fun d -> d >= 0.0) ds)

(* -- trace: chrome trace_event export ----------------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_trace_export () =
  let tr = Telemetry.Trace.create () in
  Telemetry.Trace.complete tr ~name:"guard.slow" ~cat:"guard" ~ts:2400 ~dur:240
    ~args:[ ("site", Telemetry.Json.String "main:%3") ]
    ();
  Telemetry.Trace.instant tr ~name:"fetch" ~cat:"net" ~ts:4800 ();
  Telemetry.Trace.counter tr ~name:"tfm.guards" ~ts:4800 [ ("fast", 10) ];
  let s = Telemetry.Trace.to_string tr in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle s))
    [
      "\"traceEvents\"";
      "\"ph\":\"X\"";
      "\"ph\":\"i\"";
      "\"ph\":\"C\"";
      "\"guard.slow\"";
      (* 2400 cycles at 2.4 GHz = 1 microsecond *)
      "\"ts\":1";
      "\"dur\":0.1";
      "main:%3";
      "\"droppedEvents\":0";
    ]

let test_trace_limit () =
  let tr = Telemetry.Trace.create ~limit:2 () in
  for i = 1 to 5 do
    Telemetry.Trace.instant tr ~name:"e" ~ts:i ()
  done;
  Alcotest.(check int) "stored" 2 (Telemetry.Trace.length tr);
  Alcotest.(check int) "dropped" 3 (Telemetry.Trace.dropped tr);
  Alcotest.(check bool) "dropped reported" true
    (contains ~needle:"\"droppedEvents\":3" (Telemetry.Trace.to_string tr))

(* -- end to end: attribution on a real workload ------------------------- *)

let stream_workload () =
  let n = 4_000 in
  let build () = Workloads.Stream.build ~n ~kernel:Workloads.Stream.Sum () in
  let ws = Workloads.Stream.working_set_bytes ~n ~kernel:Workloads.Stream.Sum () in
  (build, ws)

let run_tfm_recording ?(series_interval = 50_000) () =
  let build, ws = stream_workload () in
  let sink = ref Telemetry.Sink.nop in
  let telemetry clock =
    let s = Telemetry.Sink.recording ~series_interval clock in
    sink := s;
    s
  in
  let opts = Workloads.Driver.tfm_defaults ~local_budget:(max 65536 (ws / 4)) in
  let o, _ = Workloads.Driver.run_trackfm ~telemetry build opts in
  Telemetry.Sink.final_sample !sink;
  (o, Option.get (Telemetry.Sink.recorder !sink))

let test_site_totals_match_clock () =
  let o, r = run_tfm_recording () in
  let tot = Telemetry.Site.totals r.Telemetry.Sink.sites in
  let c name = Workloads.Driver.counter o name in
  Alcotest.(check int) "fast guards" (c "tfm.fast_guards") tot.Telemetry.Site.fast;
  Alcotest.(check int) "slow guards" (c "tfm.slow_guards") tot.Telemetry.Site.slow;
  Alcotest.(check int) "locality guards" (c "tfm.locality_guards")
    tot.Telemetry.Site.locality;
  Alcotest.(check int) "custody skips" (c "tfm.custody_skips")
    tot.Telemetry.Site.custody;
  Alcotest.(check int) "bytes in" (c "net.bytes_in") tot.Telemetry.Site.bytes_in;
  (* Attribution names real IR sites, not the unknown fallback. *)
  Alcotest.(check bool) "sites are attributed" true
    (List.for_all
       (fun (k, _) -> k <> Telemetry.Sink.unknown_site)
       (Telemetry.Site.rows r.Telemetry.Sink.sites));
  (* The histogram saw every slow+locality guard. *)
  Alcotest.(check int) "latency histogram count"
    (c "tfm.slow_guards" + c "tfm.locality_guards")
    (Telemetry.Histogram.count r.Telemetry.Sink.guard_cycles);
  Alcotest.(check int) "fetch histogram count" (c "net.fetches")
    (Telemetry.Histogram.count r.Telemetry.Sink.fetch_bytes)

let test_recording_run_identical_to_disabled () =
  (* The acceptance bar for "zero-cost when disabled" read both ways:
     enabling telemetry must not change simulated time or any counter. *)
  let build, ws = stream_workload () in
  let opts = Workloads.Driver.tfm_defaults ~local_budget:(max 65536 (ws / 4)) in
  let plain, _ = Workloads.Driver.run_trackfm build opts in
  let traced, r = run_tfm_recording () in
  Alcotest.(check int) "ret" plain.Workloads.Driver.ret
    traced.Workloads.Driver.ret;
  Alcotest.(check int) "cycles" plain.Workloads.Driver.cycles
    traced.Workloads.Driver.cycles;
  Alcotest.(check (list (pair string int))) "counters"
    (Clock.counters plain.Workloads.Driver.clock)
    (Clock.counters traced.Workloads.Driver.clock);
  (* And the recording actually captured something. *)
  Alcotest.(check bool) "trace non-empty" true
    (Telemetry.Trace.length (Option.get r.Telemetry.Sink.trace) > 0);
  Alcotest.(check bool) "series non-empty" true
    (Telemetry.Series.length (Option.get r.Telemetry.Sink.series) > 0)

let test_series_final_sample_matches_totals () =
  let o, r = run_tfm_recording () in
  let s = Option.get r.Telemetry.Sink.series in
  match List.rev (Telemetry.Series.samples s) with
  | [] -> Alcotest.fail "no samples"
  | last :: _ ->
      Alcotest.(check (list (pair string int))) "last sample = final counters"
        (Clock.counters o.Workloads.Driver.clock)
        last.Telemetry.Series.counters

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "histogram small exact" `Quick
        test_histogram_small_exact;
      Alcotest.test_case "histogram quantile error" `Quick
        test_histogram_quantile_error_bound;
      Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      Alcotest.test_case "histogram merge = single" `Quick
        test_histogram_merge_list;
      Alcotest.test_case "slo parse lines" `Quick test_slo_parse_lines;
      Alcotest.test_case "slo bad line named" `Quick
        test_slo_parse_lines_names_bad_line;
      Alcotest.test_case "shed event flight dump-once" `Quick
        test_shed_event_fires_flight_once;
      Alcotest.test_case "json rendering" `Quick test_json_rendering;
      Alcotest.test_case "series sampling" `Quick test_series_sampling;
      Alcotest.test_case "series reset baseline" `Quick
        test_series_reset_baseline;
      Alcotest.test_case "trace export" `Quick test_trace_export;
      Alcotest.test_case "trace limit" `Quick test_trace_limit;
      Alcotest.test_case "site totals = clock counters" `Quick
        test_site_totals_match_clock;
      Alcotest.test_case "recording run identical to disabled" `Quick
        test_recording_run_identical_to_disabled;
      Alcotest.test_case "final sample = totals" `Quick
        test_series_final_sample_matches_totals;
    ] )
