(* Tests for the Shenango-style tasking simulator: the latency-hiding
   semantics AIFM (and therefore TrackFM's runtime) relies on. *)

let test_serial_work_adds_up () =
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () -> Shenango.Sched.work 100);
  Shenango.Sched.spawn s (fun () -> Shenango.Sched.work 200);
  Alcotest.(check int) "one core serializes work" 300 (Shenango.Sched.run s)

let test_blocking_overlaps () =
  (* Two tasks each blocking 10_000: the waits overlap, total ~10_000. *)
  let s = Shenango.Sched.create () in
  for _ = 1 to 2 do
    Shenango.Sched.spawn s (fun () ->
        Shenango.Sched.work 50;
        Shenango.Sched.block 10_000;
        Shenango.Sched.work 50)
  done;
  let t = Shenango.Sched.run s in
  Alcotest.(check bool) "waits overlap" true (t < 10_400);
  Alcotest.(check bool) "work still serial" true (t >= 10_150)

let test_single_task_no_overlap () =
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () ->
      for _ = 1 to 4 do
        Shenango.Sched.work 100;
        Shenango.Sched.block 10_000
      done);
  Alcotest.(check int) "latency fully exposed" ((4 * 100) + (4 * 10_000))
    (Shenango.Sched.run s)

let test_concurrency_hides_fetch_latency () =
  (* The AIFM claim: with enough tasks, throughput is CPU-bound, not
     fetch-latency-bound. K fetches of 31.8K cycles each with 500 cycles
     of work per fetch. *)
  let fetch = Cost_model.default.Cost_model.tcp_latency in
  let run ntasks =
    let s = Shenango.Sched.create () in
    let per_task = 64 / ntasks in
    for _ = 1 to ntasks do
      Shenango.Sched.spawn s (fun () ->
          for _ = 1 to per_task do
            Shenango.Sched.work 500;
            Shenango.Sched.block fetch
          done)
    done;
    Shenango.Sched.run s
  in
  let serial = run 1 in
  let concurrent = run 16 in
  Alcotest.(check bool) "16 tasks are far faster" true
    (serial > 5 * concurrent);
  (* with 16 tasks the critical path is ~4 sequential fetches per task *)
  Alcotest.(check bool) "but not below the per-task critical path" true
    (concurrent >= 4 * fetch)

let test_yield_interleaves_fifo () =
  let order = ref [] in
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () ->
      order := 1 :: !order;
      Shenango.Sched.yield ();
      order := 3 :: !order);
  Shenango.Sched.spawn s (fun () ->
      order := 2 :: !order;
      Shenango.Sched.yield ();
      order := 4 :: !order);
  ignore (Shenango.Sched.run s);
  Alcotest.(check (list int)) "round robin" [ 1; 2; 3; 4 ] (List.rev !order)

let test_now_advances () =
  let s = Shenango.Sched.create () in
  let seen = ref (-1) in
  Shenango.Sched.spawn s (fun () ->
      Shenango.Sched.work 123;
      Shenango.Sched.block 77;
      seen := Shenango.Sched.now ());
  ignore (Shenango.Sched.run s);
  Alcotest.(check int) "time observed inside task" 200 !seen

let test_evacuator_convergence_protocol () =
  (* Section 3.3: the evacuator waits for application tasks to reach an
     out-of-scope point (yield). Model: an evacuator task repeatedly
     yields and only proceeds once the app yields too; it must observe
     the app's scope counter at a consistent (yielded) point. *)
  let in_scope = ref false in
  let violations = ref 0 in
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () ->
      for _ = 1 to 50 do
        in_scope := true;
        Shenango.Sched.work 10;
        (* no yield while in scope: the guard protocol *)
        in_scope := false;
        Shenango.Sched.yield ()
      done);
  Shenango.Sched.spawn s (fun () ->
      for _ = 1 to 50 do
        if !in_scope then incr violations;
        Shenango.Sched.yield ()
      done);
  ignore (Shenango.Sched.run s);
  Alcotest.(check int) "evacuator never observes an open scope" 0 !violations

let test_park_unpark () =
  let s = Shenango.Sched.create () in
  let resumed_at = ref (-1) in
  Shenango.Sched.spawn s (fun () ->
      Shenango.Sched.park ();
      resumed_at := Shenango.Sched.now ();
      Shenango.Sched.work 5);
  Shenango.Sched.spawn s (fun () ->
      Shenango.Sched.work 100;
      Alcotest.(check int) "one task parked" 1
        (Shenango.Sched.parked_count s);
      Alcotest.(check int) "unpark wakes exactly one" 1
        (Shenango.Sched.unpark s 4));
  let total = Shenango.Sched.run s in
  (* Parking is free: the handler resumes only once woken, then its 5
     cycles serialize after the producer's 100. *)
  Alcotest.(check int) "woken after the producer's work" 100 !resumed_at;
  Alcotest.(check int) "parked time costs nothing" 105 total;
  Alcotest.(check int) "no one left parked" 0 (Shenango.Sched.parked_count s)

let test_unpark_all () =
  let s = Shenango.Sched.create () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Shenango.Sched.spawn s (fun () ->
        Shenango.Sched.park ();
        incr woken)
  done;
  Shenango.Sched.spawn s (fun () ->
      Shenango.Sched.work 7;
      Alcotest.(check int) "unpark_all reports the count" 3
        (Shenango.Sched.unpark_all s));
  ignore (Shenango.Sched.run s);
  Alcotest.(check int) "all handlers resumed" 3 !woken

let test_unpark_nobody () =
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () ->
      Alcotest.(check int) "unpark with nobody parked" 0
        (Shenango.Sched.unpark s 2));
  ignore (Shenango.Sched.run s)

let test_forgotten_park_is_a_deadlock () =
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () -> Shenango.Sched.park ());
  Shenango.Sched.spawn s (fun () -> Shenango.Sched.work 10);
  match Shenango.Sched.run s with
  | _ -> Alcotest.fail "run returned with a task still parked"
  | exception Failure _ -> ()

let test_runnable_and_queue_introspection () =
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () ->
      Shenango.Sched.yield ();
      Shenango.Sched.work 1);
  Shenango.Sched.spawn s (fun () ->
      (* The first task yielded onto the ready queue; the admission
         controller sees it as pending CPU backlog. *)
      Alcotest.(check int) "yielded sibling visible as runnable" 1
        (Shenango.Sched.runnable_count s);
      Shenango.Sched.work 1);
  ignore (Shenango.Sched.run s);
  Alcotest.(check int) "idle scheduler has no runnables" 0
    (Shenango.Sched.runnable_count s)

let test_empty_scheduler () =
  let s = Shenango.Sched.create () in
  Alcotest.(check int) "no tasks, zero time" 0 (Shenango.Sched.run s)

let test_reusable_after_run () =
  let s = Shenango.Sched.create () in
  Shenango.Sched.spawn s (fun () -> Shenango.Sched.work 10);
  ignore (Shenango.Sched.run s);
  Shenango.Sched.spawn s (fun () -> Shenango.Sched.work 5);
  Alcotest.(check int) "continues from prior time" 15 (Shenango.Sched.run s)

let suite =
  ( "shenango",
    [
      Alcotest.test_case "serial work" `Quick test_serial_work_adds_up;
      Alcotest.test_case "blocking overlaps" `Quick test_blocking_overlaps;
      Alcotest.test_case "single task exposed" `Quick test_single_task_no_overlap;
      Alcotest.test_case "concurrency hides latency" `Quick
        test_concurrency_hides_fetch_latency;
      Alcotest.test_case "yield fifo" `Quick test_yield_interleaves_fifo;
      Alcotest.test_case "now" `Quick test_now_advances;
      Alcotest.test_case "evacuator convergence" `Quick
        test_evacuator_convergence_protocol;
      Alcotest.test_case "park/unpark" `Quick test_park_unpark;
      Alcotest.test_case "unpark_all" `Quick test_unpark_all;
      Alcotest.test_case "unpark nobody" `Quick test_unpark_nobody;
      Alcotest.test_case "forgotten park deadlocks" `Quick
        test_forgotten_park_is_a_deadlock;
      Alcotest.test_case "runnable introspection" `Quick
        test_runnable_and_queue_introspection;
      Alcotest.test_case "empty scheduler" `Quick test_empty_scheduler;
      Alcotest.test_case "reusable scheduler" `Quick test_reusable_after_run;
    ] )
