(* Tests for the IR core: builder, verifier, printer, CFG. *)

let build_simple_loop () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let accs =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 10)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv ~accs ->
        let acc = match accs with [ a ] -> a | _ -> assert false in
        [ Builder.add b acc iv ])
  in
  Builder.ret b (Some (List.hd accs));
  m

let test_builder_loop_verifies () =
  let m = build_simple_loop () in
  Verifier.check_module m

let test_verifier_duplicate_label () =
  let f : Ir.func =
    {
      fname = "f";
      nparams = 0;
      blocks =
        [
          { label = "entry"; instrs = []; term = Ir.Ret None };
          { label = "entry"; instrs = []; term = Ir.Ret None };
        ];
      next_id = 0;
    }
  in
  Alcotest.check_raises "duplicate label"
    (Verifier.Ill_formed "f: duplicate block label entry") (fun () ->
      Verifier.check_func f)

let test_verifier_undefined_register () =
  let f : Ir.func =
    {
      fname = "f";
      nparams = 0;
      blocks =
        [
          {
            label = "entry";
            instrs =
              [ { Ir.id = 0; kind = Ir.Binop (Ir.Add, Ir.Reg 42, Ir.Const 1) } ];
            term = Ir.Ret None;
          };
        ];
      next_id = 1;
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       Verifier.check_func f;
       false
     with Verifier.Ill_formed _ -> true)

let test_verifier_bad_branch_target () =
  let f : Ir.func =
    {
      fname = "f";
      nparams = 0;
      blocks = [ { label = "entry"; instrs = []; term = Ir.Br "nowhere" } ];
      next_id = 0;
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       Verifier.check_func f;
       false
     with Verifier.Ill_formed _ -> true)

let test_verifier_phi_in_entry () =
  let f : Ir.func =
    {
      fname = "f";
      nparams = 0;
      blocks =
        [
          {
            label = "entry";
            instrs = [ { Ir.id = 0; kind = Ir.Phi [] } ];
            term = Ir.Ret None;
          };
        ];
      next_id = 1;
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       Verifier.check_func f;
       false
     with Verifier.Ill_formed _ -> true)

let test_verifier_bad_access_size () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  ignore (Builder.load b ~size:3 (Ir.Const 0));
  Builder.ret b None;
  Alcotest.(check bool) "raises" true
    (try
       Verifier.check_module m;
       false
     with Verifier.Ill_formed _ -> true)

let test_cfg_edges () =
  let m = build_simple_loop () in
  let f = Ir.find_func m "main" in
  let cfg = Cfg.build f in
  let header =
    List.find (fun l -> String.length l > 4 && String.sub l 0 4 = "loop")
      (Cfg.labels cfg)
  in
  (* the header has two predecessors: entry and the latch *)
  Alcotest.(check int) "header preds" 2
    (List.length (Cfg.predecessors cfg header))

let test_cfg_postorder_entry_last () =
  let m = build_simple_loop () in
  let f = Ir.find_func m "main" in
  let cfg = Cfg.build f in
  let po = Cfg.postorder cfg in
  Alcotest.(check string) "entry is last in postorder" "entry"
    (List.nth po (List.length po - 1));
  Alcotest.(check string) "entry first in RPO" "entry"
    (List.hd (Cfg.reachable cfg))

let test_printer_roundtrip_content () =
  let m = build_simple_loop () in
  let s = Printer.module_to_string m in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has define" true (contains s "define @main");
  Alcotest.(check bool) "has phi" true (contains s "phi");
  Alcotest.(check bool) "has ret" true (contains s "ret")

let test_instr_count_and_map_operands () =
  let m = build_simple_loop () in
  let f = Ir.find_func m "main" in
  let n = Ir.instr_count f in
  Alcotest.(check bool) "some instructions" true (n > 3);
  (* map_operands must preserve structure *)
  let kind = Ir.Binop (Ir.Add, Ir.Reg 1, Ir.Const 2) in
  let mapped = Ir.map_operands (fun _ -> Ir.Const 9) kind in
  match mapped with
  | Ir.Binop (Ir.Add, Ir.Const 9, Ir.Const 9) -> ()
  | _ -> Alcotest.fail "map_operands broke structure"

let test_while_loop_acc () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  (* compute 2^5 by doubling while < 32 *)
  let final =
    Builder.while_loop_acc b ~accs:[ Ir.Const 1 ]
      ~cond:(fun b ~accs ->
        let v = List.hd accs in
        Builder.icmp b Ir.Lt v (Ir.Const 32))
      (fun b ~accs ->
        let v = List.hd accs in
        [ Builder.mul b v (Ir.Const 2) ])
  in
  Builder.ret b (Some (List.hd final));
  Verifier.check_module m;
  let clock = Clock.create () in
  let backend =
    Backend.local Cost_model.default clock (Memstore.create ())
  in
  let r = Interp.run backend m ~entry:"main" in
  Alcotest.(check int) "while loop result" 32 r.Interp.ret

let test_nested_loops_verify () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 3) (fun b _ ->
      Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 4) (fun b _ ->
          Builder.if_then b ~cond:(Ir.Const 1) (fun _ -> ())));
  Builder.ret b None;
  Verifier.check_module m


let test_printer_golden () =
  (* Exact textual form of a small function, locked as a golden value so
     accidental printer changes are visible in review. *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let p = Builder.call b "malloc" [ Ir.Const 16 ] in
  let v = Builder.load b ~size:4 p in
  let w = Builder.add b v (Builder.arg 0) in
  Builder.store b ~size:4 w ~ptr:p;
  Builder.ret b (Some w);
  let expected =
    "define @f(1 params) {\n" ^ "entry:\n" ^ "  %0 = call @malloc(16)\n"
    ^ "  %1 = load i32, %0\n" ^ "  %2 = add %1, %arg0\n"
    ^ "  store i32 %2, %0\n" ^ "  ret %2\n" ^ "}\n"
  in
  Alcotest.(check string) "golden IR text" expected
    (Printer.func_to_string (Ir.find_func m "f"))

let test_printer_annotated_roundtrip () =
  (* annotated dump = plain dump + "  ; ..." suffixes on annotated
     lines; stripping the suffixes must round-trip exactly *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 16 ] in
  ignore (Builder.call b "helper" [ p ]);
  ignore (Builder.load b p);
  Builder.ret b None;
  let bh = Builder.create m ~name:"helper" ~nparams:1 in
  Builder.ret bh (Some (Builder.arg 0));
  let annot (i : Ir.instr) =
    match i.kind with
    | Ir.Call { callee = "helper"; _ } -> Some "!summary ret=arg0 pure"
    | _ -> None
  in
  let annotated = Printer.module_to_string_annotated annot m in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "annotation present" true
    (contains annotated "  ; !summary ret=arg0 pure");
  let strip line =
    match String.index_opt line ';' with
    | Some k when k >= 2 && String.sub line (k - 2) 2 = "  " ->
        String.sub line 0 (k - 2)
    | _ -> line
  in
  let stripped =
    String.concat "\n"
      (List.map strip (String.split_on_char '\n' annotated))
  in
  Alcotest.(check string) "stripping annotations round-trips"
    (Printer.module_to_string m) stripped

let suite =
  ( "ir",
    [
      Alcotest.test_case "builder loop verifies" `Quick test_builder_loop_verifies;
      Alcotest.test_case "duplicate label" `Quick test_verifier_duplicate_label;
      Alcotest.test_case "undefined register" `Quick test_verifier_undefined_register;
      Alcotest.test_case "bad branch target" `Quick test_verifier_bad_branch_target;
      Alcotest.test_case "phi in entry" `Quick test_verifier_phi_in_entry;
      Alcotest.test_case "bad access size" `Quick test_verifier_bad_access_size;
      Alcotest.test_case "cfg edges" `Quick test_cfg_edges;
      Alcotest.test_case "cfg postorder" `Quick test_cfg_postorder_entry_last;
      Alcotest.test_case "printer content" `Quick test_printer_roundtrip_content;
      Alcotest.test_case "printer golden" `Quick test_printer_golden;
      Alcotest.test_case "printer annotated round-trip" `Quick
        test_printer_annotated_roundtrip;
      Alcotest.test_case "instr count / map operands" `Quick
        test_instr_count_and_map_operands;
      Alcotest.test_case "while loop acc" `Quick test_while_loop_acc;
      Alcotest.test_case "nested loops verify" `Quick test_nested_loops_verify;
    ] )
