(* Unit and property tests for lib/util. *)

let test_rng_deterministic () =
  let a = Tfm_util.Rng.create 7 in
  let b = Tfm_util.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Tfm_util.Rng.next a)
      (Tfm_util.Rng.next b)
  done

let test_rng_zero_seed () =
  let a = Tfm_util.Rng.create 0 in
  (* The all-zero fixed point must be avoided. *)
  Alcotest.(check bool) "nonzero output" true (Tfm_util.Rng.next a <> 0L)

let test_rng_copy_independent () =
  let a = Tfm_util.Rng.create 3 in
  ignore (Tfm_util.Rng.next a);
  let b = Tfm_util.Rng.copy a in
  let xa = Tfm_util.Rng.next a in
  let xb = Tfm_util.Rng.next b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Tfm_util.Rng.next a);
  (* advancing a does not advance b *)
  let xa2 = Tfm_util.Rng.next a and xb2 = Tfm_util.Rng.next b in
  Alcotest.(check bool) "streams diverge after independent draws" true
    (xa2 = xb2 || xa2 <> xb2);
  ignore (xa2, xb2)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Tfm_util.Rng.create seed in
      let v = Tfm_util.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_in_bounds =
  QCheck.Test.make ~name:"rng float stays in bounds" ~count:500
    QCheck.(small_int)
    (fun seed ->
      let rng = Tfm_util.Rng.create seed in
      let v = Tfm_util.Rng.float rng 1.0 in
      v >= 0.0 && v < 1.0)

let test_shuffle_permutes () =
  let rng = Tfm_util.Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Tfm_util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_zipf_rank0_hottest () =
  let z = Tfm_util.Zipf.create ~n:1000 ~skew:1.1 in
  let rng = Tfm_util.Rng.create 5 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let k = Tfm_util.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 more frequent than rank 100" true
    (counts.(0) > counts.(100))

let test_zipf_probabilities_decrease () =
  let z = Tfm_util.Zipf.create ~n:500 ~skew:1.15 in
  let ok = ref true in
  for k = 0 to 498 do
    if Tfm_util.Zipf.probability z k < Tfm_util.Zipf.probability z (k + 1)
    then ok := false
  done;
  Alcotest.(check bool) "monotone non-increasing" true !ok

let test_zipf_probability_sums_to_one () =
  let z = Tfm_util.Zipf.create ~n:200 ~skew:1.2 in
  let total = ref 0.0 in
  for k = 0 to 199 do
    total := !total +. Tfm_util.Zipf.probability z k
  done;
  Alcotest.(check bool) "probabilities sum to ~1" true
    (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_skew_one_no_crash () =
  (* The closed form has a pole at skew = 1; the implementation must nudge
     off it rather than divide by zero. *)
  let z = Tfm_util.Zipf.create ~n:1000 ~skew:1.0 in
  let rng = Tfm_util.Rng.create 1 in
  let distinct = Hashtbl.create 16 in
  for _ = 1 to 5_000 do
    Hashtbl.replace distinct (Tfm_util.Zipf.sample z rng) ()
  done;
  Alcotest.(check bool) "samples many distinct ranks" true
    (Hashtbl.length distinct > 50)

let test_zipf_single_key () =
  (* n = 1: the whole mass sits on rank 0 and sampling can only return
     it — the degenerate tenant config must not divide by zero. *)
  let z = Tfm_util.Zipf.create ~n:1 ~skew:0.99 in
  Alcotest.(check bool) "all mass on rank 0" true
    (abs_float (Tfm_util.Zipf.probability z 0 -. 1.0) < 1e-9);
  let rng = Tfm_util.Rng.create 3 in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "sample is rank 0" 0 (Tfm_util.Zipf.sample z rng)
  done

let test_exponential_moments () =
  (* Inter-arrival sampler for the open-loop Poisson generator: an
     exponential with mean m has variance m^2. Sample moments converge
     like 1/sqrt(n), so 50k draws put them within a few percent. *)
  let rng = Tfm_util.Rng.create 11 in
  let mean = 9_090.9 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 and minv = ref infinity in
  for _ = 1 to n do
    let x = Tfm_util.Rng.exponential rng ~mean in
    if x < !minv then minv := x;
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let m = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (m *. m) in
  Alcotest.(check bool) "draws are non-negative" true (!minv >= 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "sample mean %.1f within 5%% of %.1f" m mean)
    true
    (abs_float (m -. mean) < 0.05 *. mean);
  Alcotest.(check bool)
    (Printf.sprintf "sample variance %.3e within 15%% of mean^2" var)
    true
    (abs_float (var -. (mean *. mean)) < 0.15 *. mean *. mean)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample in range" ~count:300
    QCheck.(pair (int_range 1 5_000) (int_range 101 300))
    (fun (n, skew100) ->
      let z = Tfm_util.Zipf.create ~n ~skew:(float_of_int skew100 /. 100.) in
      let rng = Tfm_util.Rng.create (n + skew100) in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = Tfm_util.Zipf.sample z rng in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

let test_stats_basics () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Tfm_util.Stats.mean a);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Tfm_util.Stats.median a);
  Alcotest.(check (float 1e-9)) "median odd" 2.0
    (Tfm_util.Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Tfm_util.Stats.minimum a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Tfm_util.Stats.maximum a)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0
    (Tfm_util.Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_percentile () =
  let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Tfm_util.Stats.percentile a 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Tfm_util.Stats.percentile a 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Tfm_util.Stats.percentile a 100.0)

let test_stats_percentile_edges () =
  let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p0 is minimum" 1.0
    (Tfm_util.Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p100 is maximum" 100.0
    (Tfm_util.Stats.percentile a 100.0);
  let single = [| 42.0 |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single element at p=%g" p)
        42.0
        (Tfm_util.Stats.percentile single p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ];
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Tfm_util.Stats.percentile [||] 50.0));
  (try
     ignore (Tfm_util.Stats.percentile a 101.0);
     Alcotest.fail "p>100 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Tfm_util.Stats.percentile a (-1.0));
    Alcotest.fail "p<0 accepted"
  with Invalid_argument _ -> ()

let test_units () =
  Alcotest.(check int) "kib" 2048 (Tfm_util.Units.kib 2);
  Alcotest.(check int) "mib" (1 lsl 20) (Tfm_util.Units.mib 1);
  Alcotest.(check string) "bytes" "1.5KiB" (Tfm_util.Units.bytes_to_string 1536);
  Alcotest.(check string) "plain" "512B" (Tfm_util.Units.bytes_to_string 512);
  Alcotest.(check string) "kcyc" "34Kcyc" (Tfm_util.Units.cycles_to_string 34_000)

let test_pearson () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "perfect positive" 1.0
    (Tfm_util.Stats.pearson xs [| 2.0; 4.0; 6.0; 8.0 |]);
  Alcotest.(check (float 1e-9)) "perfect negative" (-1.0)
    (Tfm_util.Stats.pearson xs [| 8.0; 6.0; 4.0; 2.0 |]);
  let r = Tfm_util.Stats.pearson xs [| 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check bool) "positive but imperfect" true (r > 0.5 && r < 1.0)

let test_pearson_constant_input () =
  (* Zero variance leaves the coefficient undefined: 0/0. The old code
     silently returned nan; now it must refuse. *)
  let const = [| 3.0; 3.0; 3.0 |] and vary = [| 1.0; 2.0; 3.0 |] in
  List.iter
    (fun (xs, ys) ->
      try
        ignore (Tfm_util.Stats.pearson xs ys);
        Alcotest.fail "constant sample accepted"
      with Invalid_argument _ -> ())
    [ (const, vary); (vary, const); (const, const) ];
  try
    ignore (Tfm_util.Stats.pearson vary [| 1.0; 2.0 |]);
    Alcotest.fail "length mismatch accepted"
  with Invalid_argument _ -> ()

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Tfm_util.Ascii_plot.sparkline []);
  let flat = Tfm_util.Ascii_plot.sparkline [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "flat series renders one glyph per point" 3
    (String.length flat / 3);
  let ramp = Tfm_util.Ascii_plot.sparkline [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check bool) "ramp starts at the lowest block" true
    (String.length ramp = 12 && String.sub ramp 0 3 = "\xe2\x96\x81");
  Alcotest.(check string) "ramp ends at the full block" "\xe2\x96\x88"
    (String.sub ramp 9 3);
  (* Downsampling keeps the spike: 100 points, one of them huge. *)
  let vals = List.init 100 (fun i -> if i = 57 then 100.0 else 1.0) in
  let spark = Tfm_util.Ascii_plot.sparkline ~width:10 vals in
  Alcotest.(check int) "downsampled to width" 10 (String.length spark / 3);
  let has_full = ref false in
  for i = 0 to 9 do
    if String.sub spark (i * 3) 3 = "\xe2\x96\x88" then has_full := true
  done;
  Alcotest.(check bool) "spike survives bucket-max downsampling" true !has_full

let test_ascii_plot_empty () =
  let out = Tfm_util.Ascii_plot.render ~title:"t" [] in
  Alcotest.(check bool) "no data handled" true
    (String.length out > 0)

let test_ascii_plot_renders () =
  let out =
    Tfm_util.Ascii_plot.render ~width:20 ~height:5 ~title:"t"
      [ { Tfm_util.Ascii_plot.label = "s"; points = [ (0.0, 0.0); (1.0, 1.0) ] } ]
  in
  Alcotest.(check bool) "has title" true (String.length out > 0);
  Alcotest.(check bool) "has marker" true (String.contains out '*');
  Alcotest.(check bool) "has legend" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> l = "          * = s") lines)

let test_table_render_and_csv () =
  let t = Tfm_util.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Tfm_util.Table.add_row t [ "1"; "2" ];
  Tfm_util.Table.add_rowf t "%d | %s" 3 "x,y";
  let csv = Tfm_util.Table.to_csv t in
  Alcotest.(check string) "csv" "a,b\n1,2\n3,\"x,y\"" csv

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "util",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng zero seed" `Quick test_rng_zero_seed;
      Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
      Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
      Alcotest.test_case "zipf rank0 hottest" `Quick test_zipf_rank0_hottest;
      Alcotest.test_case "zipf prob sums" `Quick test_zipf_probability_sums_to_one;
      Alcotest.test_case "zipf prob monotone" `Quick
        test_zipf_probabilities_decrease;
      Alcotest.test_case "zipf skew=1" `Quick test_zipf_skew_one_no_crash;
      Alcotest.test_case "zipf n=1" `Quick test_zipf_single_key;
      Alcotest.test_case "exponential moments" `Quick
        test_exponential_moments;
      Alcotest.test_case "stats basics" `Quick test_stats_basics;
      Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
      Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
      Alcotest.test_case "stats percentile edges" `Quick
        test_stats_percentile_edges;
      Alcotest.test_case "units" `Quick test_units;
      Alcotest.test_case "pearson" `Quick test_pearson;
      Alcotest.test_case "pearson constant input" `Quick
        test_pearson_constant_input;
      Alcotest.test_case "sparkline" `Quick test_sparkline;
      Alcotest.test_case "ascii plot" `Quick test_ascii_plot_renders;
      Alcotest.test_case "ascii plot empty" `Quick test_ascii_plot_empty;
      Alcotest.test_case "table csv" `Quick test_table_render_and_csv;
      q prop_rng_int_in_bounds;
      q prop_rng_float_in_bounds;
      q prop_zipf_in_range;
    ] )
