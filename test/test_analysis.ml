(* Tests for dominators, loops, induction variables, alias classes and
   profiles. *)

(* A diamond: entry -> (a | b) -> join -> ret *)
let diamond () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let a_l = Builder.add_block b "a" in
  let b_l = Builder.add_block b "b" in
  let join = Builder.add_block b "join" in
  Builder.cbr b (Builder.arg 0) a_l b_l;
  Builder.set_block b a_l;
  Builder.br b join;
  Builder.set_block b b_l;
  Builder.br b join;
  Builder.set_block b join;
  Builder.ret b None;
  Verifier.check_module m;
  (m, Ir.find_func m "f", a_l, b_l, join)

let test_dominators_diamond () =
  let _, f, a_l, b_l, join = diamond () in
  let cfg = Cfg.build f in
  let dom = Dominators.compute cfg in
  Alcotest.(check (option string)) "idom(a)=entry" (Some "entry")
    (Dominators.idom dom a_l);
  Alcotest.(check (option string)) "idom(join)=entry" (Some "entry")
    (Dominators.idom dom join);
  Alcotest.(check bool) "entry dominates all" true
    (Dominators.dominates dom "entry" join);
  Alcotest.(check bool) "a does not dominate join" false
    (Dominators.dominates dom a_l join);
  Alcotest.(check bool) "dominates is reflexive" true
    (Dominators.dominates dom b_l b_l)

let simple_loop_func () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 8) (fun _ _ -> ());
  Builder.ret b None;
  Ir.find_func m "f"

let test_loop_detection () =
  let f = simple_loop_func () in
  let li = Loops.analyze f in
  let loops = Loops.loops li in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "depth 1" 1 l.Loops.depth;
  Alcotest.(check bool) "has preheader" true (l.Loops.preheader <> None);
  Alcotest.(check int) "one exit" 1 (List.length l.Loops.exits)

let nested_loop_func () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  Builder.for_loop b ~hint:"outer" ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
    (fun b _ ->
      Builder.for_loop b ~hint:"inner" ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
        (fun _ _ -> ()));
  Builder.ret b None;
  Ir.find_func m "f"

let test_loop_nesting () =
  let f = nested_loop_func () in
  let li = Loops.analyze f in
  let loops = Loops.loops li in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let inner = List.find (fun l -> l.Loops.depth = 2) loops in
  let outer = List.find (fun l -> l.Loops.depth = 1) loops in
  Alcotest.(check (option string)) "inner parented by outer"
    (Some outer.Loops.header) inner.Loops.parent;
  Alcotest.(check int) "one innermost" 1 (List.length (Loops.innermost li));
  Alcotest.(check bool) "outer body contains inner header" true
    (Loops.contains outer inner.Loops.header)

let test_induction_basic () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 1024 ] in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 100) ~step:2
    (fun b iv ->
      let ptr = Builder.gep b p ~index:iv ~scale:8 () in
      ignore (Builder.load b ptr));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let loop = List.hd (Loops.loops li) in
  let ivs = Induction.ivs_of_loop ind loop in
  Alcotest.(check int) "one IV" 1 (List.length ivs);
  let iv = List.hd ivs in
  Alcotest.(check int) "step" 2 iv.Induction.step;
  Alcotest.(check bool) "bound found" true (iv.Induction.bound <> None);
  let accesses = Induction.strided_accesses ind loop in
  Alcotest.(check int) "one strided access" 1 (List.length accesses);
  let a = List.hd accesses in
  Alcotest.(check int) "byte stride = step * scale" 16 a.Induction.byte_stride;
  Alcotest.(check bool) "is load" false a.Induction.is_store

let test_induction_invariant_offset () =
  (* p[d*n + i] walked over i: stride must still be found though d*n is
     only loop-invariant, not constant. *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let p = Builder.call b "malloc" [ Ir.Const 65536 ] in
  Builder.for_loop b ~hint:"outer" ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
    (fun b d ->
      let dbase = Builder.mul b d (Builder.arg 0) in
      Builder.for_loop b ~hint:"inner" ~init:(Ir.Const 0)
        ~bound:(Ir.Const 100) (fun b i ->
          let idx = Builder.add b dbase i in
          let ptr = Builder.gep b p ~index:idx ~scale:8 () in
          ignore (Builder.load b ptr)));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let inner = List.find (fun l -> l.Loops.depth = 2) (Loops.loops li) in
  let accesses = Induction.strided_accesses ind inner in
  Alcotest.(check int) "strided access found" 1 (List.length accesses);
  Alcotest.(check int) "stride 8" 8 (List.hd accesses).Induction.byte_stride

let test_induction_rejects_nonaffine () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 65536 ] in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 50) (fun b iv ->
      (* index = iv*iv is not affine *)
      let idx = Builder.mul b iv iv in
      let ptr = Builder.gep b p ~index:idx ~scale:8 () in
      ignore (Builder.load b ptr));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let loop = List.hd (Loops.loops li) in
  Alcotest.(check int) "no strided access" 0
    (List.length (Induction.strided_accesses ind loop))

let test_induction_while_has_no_governing_iv () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let final =
    Builder.while_loop_acc b ~accs:[ Ir.Const 1 ]
      ~cond:(fun b ~accs -> Builder.icmp b Ir.Lt (List.hd accs) (Ir.Const 10))
      (fun b ~accs -> [ Builder.mul b (List.hd accs) (Ir.Const 3) ])
  in
  Builder.ret b (Some (List.hd final));
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let loop = List.hd (Loops.loops li) in
  (* the accumulator triples each iteration: not a constant-step IV *)
  Alcotest.(check int) "no IVs" 0
    (List.length (Induction.ivs_of_loop ind loop))

let test_alias_classes () =
  let m = Ir.create_module () in
  Ir.add_global m "g" 64;
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 16 in
  let hgep = Builder.gep b heap ~index:(Ir.Const 1) ~scale:8 () in
  let sgep = Builder.gep b stack ~index:(Ir.Const 0) ~scale:8 () in
  ignore (Builder.load b hgep);
  ignore (Builder.load b sgep);
  ignore (Builder.load b (Ir.Sym "g"));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let al = Alias.analyze f in
  Alcotest.(check bool) "heap needs guard" true (Alias.needs_guard al heap);
  Alcotest.(check bool) "heap gep needs guard" true (Alias.needs_guard al hgep);
  Alcotest.(check bool) "stack unguarded" false (Alias.needs_guard al stack);
  Alcotest.(check bool) "stack gep unguarded" false (Alias.needs_guard al sgep);
  Alcotest.(check bool) "global unguarded" false
    (Alias.needs_guard al (Ir.Sym "g"))

let test_alias_phi_join () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 16 in
  let then_l = Builder.add_block b "t" in
  let else_l = Builder.add_block b "e" in
  let join = Builder.add_block b "j" in
  Builder.cbr b (Ir.Const 1) then_l else_l;
  Builder.set_block b then_l;
  Builder.br b join;
  Builder.set_block b else_l;
  Builder.br b join;
  Builder.set_block b join;
  let mixed = Builder.phi b [ (then_l, heap); (else_l, stack) ] in
  ignore (Builder.load b mixed);
  Builder.ret b None;
  Verifier.check_module m;
  let f = Ir.find_func m "f" in
  let al = Alias.analyze f in
  (* heap|stack joins to Unknown, which must be guarded (custody check
     sorts it out at run time) *)
  Alcotest.(check bool) "mixed phi guarded" true (Alias.needs_guard al mixed)

let test_alias_select_join () =
  let m = Ir.create_module () in
  Ir.add_global m "g" 64;
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 16 in
  (* same-class select stays in its class; mixed select joins to Unknown *)
  let both_stack = Builder.select b (Ir.Const 1) stack stack in
  let mixed = Builder.select b (Ir.Const 1) heap stack in
  let heap_or_global = Builder.select b (Ir.Const 0) heap (Ir.Sym "g") in
  ignore (Builder.load b both_stack);
  ignore (Builder.load b mixed);
  ignore (Builder.load b heap_or_global);
  Builder.ret b None;
  Verifier.check_module m;
  let al = Alias.analyze (Ir.find_func m "f") in
  Alcotest.(check bool) "stack/stack select unguarded" false
    (Alias.needs_guard al both_stack);
  Alcotest.(check bool) "heap/stack select guarded" true
    (Alias.needs_guard al mixed);
  Alcotest.(check bool) "heap/global select guarded" true
    (Alias.needs_guard al heap_or_global)

let test_alias_loaded_pointer_chain () =
  (* a pointer loaded from memory is Unknown; gep chains off it must
     stay guarded no matter how deep *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let table = Builder.call b "malloc" [ Ir.Const 128 ] in
  let slot = Builder.gep b table ~index:(Ir.Const 2) ~scale:8 () in
  let indirect = Builder.load b slot in
  let g1 = Builder.gep b indirect ~index:(Ir.Const 1) ~scale:8 () in
  let g2 = Builder.gep b g1 ~index:(Ir.Const 3) ~scale:8 ~offset:4 () in
  ignore (Builder.load b g2);
  Builder.ret b None;
  Verifier.check_module m;
  let al = Alias.analyze (Ir.find_func m "f") in
  Alcotest.(check bool) "loaded pointer guarded" true
    (Alias.needs_guard al indirect);
  Alcotest.(check bool) "gep chain off loaded pointer guarded" true
    (Alias.needs_guard al g2)

let test_alias_needs_guard_per_class () =
  let m = Ir.create_module () in
  Ir.add_global m "g" 8;
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 8 in
  ignore (Builder.load b heap);
  ignore (Builder.load b stack);
  ignore (Builder.load b (Ir.Sym "g"));
  ignore (Builder.load b (Builder.arg 0));
  Builder.ret b None;
  Verifier.check_module m;
  let al = Alias.analyze (Ir.find_func m "f") in
  let check name v expect =
    Alcotest.(check bool) name expect (Alias.needs_guard al v)
  in
  check "Heap guarded" heap true;
  check "Stack unguarded" stack false;
  check "Global unguarded" (Ir.Sym "g") false;
  check "Arg (Unknown) guarded" (Builder.arg 0) true

let test_profile_trip_counts () =
  let p = Profile.create () in
  Profile.add_block p ~func:"f" ~block:"pre" 10;
  Profile.add_block p ~func:"f" ~block:"hdr" 510;
  (* 10 entries, 510 header executions -> 50 trips/entry *)
  match Profile.avg_trip_count p ~func:"f" ~header:"hdr" ~preheader:"pre" with
  | Some t -> Alcotest.(check (float 1e-9)) "avg trip" 50.0 t
  | None -> Alcotest.fail "expected Some"

let test_profile_never_entered () =
  let p = Profile.create () in
  Alcotest.(check bool) "no entries -> None" true
    (Profile.avg_trip_count p ~func:"f" ~header:"h" ~preheader:"p" = None)

let test_liveness_simple_loop () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let base = Builder.call b "malloc" [ Ir.Const 64 ] in
  let accs =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
      ~accs:[ Ir.Const 0 ]
      (fun bb ~iv:_ ~accs ->
        let v = Builder.load bb base in
        [ Builder.add bb (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd accs));
  let f = Ir.find_func m "f" in
  let lv = Dataflow.liveness f in
  let base_id = match base with Ir.Reg id -> id | _ -> assert false in
  (* the malloc result is live into every loop block (used by the load) *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (blk : Ir.block) ->
      Alcotest.(check bool)
        ("base live into " ^ blk.label)
        true
        (Dataflow.Int_set.mem base_id (Dataflow.live_in lv blk.label)))
    (List.filter
       (fun (blk : Ir.block) ->
         (* base is used inside the loop, so it is live into the header,
            body and latch - but not the exit *)
         String.length blk.label > 4
         && String.sub blk.label 0 4 = "loop"
         && not (contains blk.label "exit"))
       f.blocks);
  Alcotest.(check bool) "pressure positive" true (Dataflow.max_pressure f > 0)

let test_liveness_dead_value_not_live () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let dead = Builder.add b (Ir.Const 1) (Ir.Const 2) in
  let live = Builder.add b (Ir.Const 3) (Ir.Const 4) in
  let exit_l = Builder.add_block b "exit" in
  Builder.br b exit_l;
  Builder.set_block b exit_l;
  Builder.ret b (Some live);
  let f = Ir.find_func m "f" in
  let lv = Dataflow.liveness f in
  let live_id = match live with Ir.Reg id -> id | _ -> assert false in
  let dead_id = match dead with Ir.Reg id -> id | _ -> assert false in
  Alcotest.(check bool) "live value live out of entry" true
    (Dataflow.Int_set.mem live_id (Dataflow.live_out lv "entry"));
  Alcotest.(check bool) "dead value not live" false
    (Dataflow.Int_set.mem dead_id (Dataflow.live_out lv "entry"))

let test_reaching_definitions () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let x = Builder.add b (Ir.Const 1) (Ir.Const 2) in
  let exit_l = Builder.add_block b "exit" in
  Builder.br b exit_l;
  Builder.set_block b exit_l;
  let y = Builder.add b x (Ir.Const 1) in
  Builder.ret b (Some y);
  let f = Ir.find_func m "f" in
  let rd = Dataflow.reaching_definitions f in
  let x_id = match x with Ir.Reg id -> id | _ -> assert false in
  Alcotest.(check bool) "entry def reaches exit" true
    (Dataflow.Int_set.mem x_id (Dataflow.reach_in rd exit_l))


let suite =
  ( "analysis",
    [
      Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
      Alcotest.test_case "loop detection" `Quick test_loop_detection;
      Alcotest.test_case "loop nesting" `Quick test_loop_nesting;
      Alcotest.test_case "induction basic" `Quick test_induction_basic;
      Alcotest.test_case "induction invariant offset" `Quick
        test_induction_invariant_offset;
      Alcotest.test_case "induction rejects nonaffine" `Quick
        test_induction_rejects_nonaffine;
      Alcotest.test_case "while loop has no IV" `Quick
        test_induction_while_has_no_governing_iv;
      Alcotest.test_case "alias classes" `Quick test_alias_classes;
      Alcotest.test_case "alias phi join" `Quick test_alias_phi_join;
      Alcotest.test_case "alias select join" `Quick test_alias_select_join;
      Alcotest.test_case "alias loaded pointer chain" `Quick
        test_alias_loaded_pointer_chain;
      Alcotest.test_case "alias needs_guard per class" `Quick
        test_alias_needs_guard_per_class;
      Alcotest.test_case "profile trips" `Quick test_profile_trip_counts;
      Alcotest.test_case "profile empty" `Quick test_profile_never_entered;
      Alcotest.test_case "liveness loop" `Quick test_liveness_simple_loop;
      Alcotest.test_case "liveness dead value" `Quick
        test_liveness_dead_value_not_live;
      Alcotest.test_case "reaching defs" `Quick test_reaching_definitions;
    ] )
