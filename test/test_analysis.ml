(* Tests for dominators, loops, induction variables, alias classes and
   profiles. *)

(* A diamond: entry -> (a | b) -> join -> ret *)
let diamond () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let a_l = Builder.add_block b "a" in
  let b_l = Builder.add_block b "b" in
  let join = Builder.add_block b "join" in
  Builder.cbr b (Builder.arg 0) a_l b_l;
  Builder.set_block b a_l;
  Builder.br b join;
  Builder.set_block b b_l;
  Builder.br b join;
  Builder.set_block b join;
  Builder.ret b None;
  Verifier.check_module m;
  (m, Ir.find_func m "f", a_l, b_l, join)

let test_dominators_diamond () =
  let _, f, a_l, b_l, join = diamond () in
  let cfg = Cfg.build f in
  let dom = Dominators.compute cfg in
  Alcotest.(check (option string)) "idom(a)=entry" (Some "entry")
    (Dominators.idom dom a_l);
  Alcotest.(check (option string)) "idom(join)=entry" (Some "entry")
    (Dominators.idom dom join);
  Alcotest.(check bool) "entry dominates all" true
    (Dominators.dominates dom "entry" join);
  Alcotest.(check bool) "a does not dominate join" false
    (Dominators.dominates dom a_l join);
  Alcotest.(check bool) "dominates is reflexive" true
    (Dominators.dominates dom b_l b_l)

let simple_loop_func () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 8) (fun _ _ -> ());
  Builder.ret b None;
  Ir.find_func m "f"

let test_loop_detection () =
  let f = simple_loop_func () in
  let li = Loops.analyze f in
  let loops = Loops.loops li in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "depth 1" 1 l.Loops.depth;
  Alcotest.(check bool) "has preheader" true (l.Loops.preheader <> None);
  Alcotest.(check int) "one exit" 1 (List.length l.Loops.exits)

let nested_loop_func () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  Builder.for_loop b ~hint:"outer" ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
    (fun b _ ->
      Builder.for_loop b ~hint:"inner" ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
        (fun _ _ -> ()));
  Builder.ret b None;
  Ir.find_func m "f"

let test_loop_nesting () =
  let f = nested_loop_func () in
  let li = Loops.analyze f in
  let loops = Loops.loops li in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let inner = List.find (fun l -> l.Loops.depth = 2) loops in
  let outer = List.find (fun l -> l.Loops.depth = 1) loops in
  Alcotest.(check (option string)) "inner parented by outer"
    (Some outer.Loops.header) inner.Loops.parent;
  Alcotest.(check int) "one innermost" 1 (List.length (Loops.innermost li));
  Alcotest.(check bool) "outer body contains inner header" true
    (Loops.contains outer inner.Loops.header)

let test_induction_basic () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 1024 ] in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 100) ~step:2
    (fun b iv ->
      let ptr = Builder.gep b p ~index:iv ~scale:8 () in
      ignore (Builder.load b ptr));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let loop = List.hd (Loops.loops li) in
  let ivs = Induction.ivs_of_loop ind loop in
  Alcotest.(check int) "one IV" 1 (List.length ivs);
  let iv = List.hd ivs in
  Alcotest.(check int) "step" 2 iv.Induction.step;
  Alcotest.(check bool) "bound found" true (iv.Induction.bound <> None);
  let accesses = Induction.strided_accesses ind loop in
  Alcotest.(check int) "one strided access" 1 (List.length accesses);
  let a = List.hd accesses in
  Alcotest.(check int) "byte stride = step * scale" 16 a.Induction.byte_stride;
  Alcotest.(check bool) "is load" false a.Induction.is_store

let test_induction_invariant_offset () =
  (* p[d*n + i] walked over i: stride must still be found though d*n is
     only loop-invariant, not constant. *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let p = Builder.call b "malloc" [ Ir.Const 65536 ] in
  Builder.for_loop b ~hint:"outer" ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
    (fun b d ->
      let dbase = Builder.mul b d (Builder.arg 0) in
      Builder.for_loop b ~hint:"inner" ~init:(Ir.Const 0)
        ~bound:(Ir.Const 100) (fun b i ->
          let idx = Builder.add b dbase i in
          let ptr = Builder.gep b p ~index:idx ~scale:8 () in
          ignore (Builder.load b ptr)));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let inner = List.find (fun l -> l.Loops.depth = 2) (Loops.loops li) in
  let accesses = Induction.strided_accesses ind inner in
  Alcotest.(check int) "strided access found" 1 (List.length accesses);
  Alcotest.(check int) "stride 8" 8 (List.hd accesses).Induction.byte_stride

let test_induction_rejects_nonaffine () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 65536 ] in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 50) (fun b iv ->
      (* index = iv*iv is not affine *)
      let idx = Builder.mul b iv iv in
      let ptr = Builder.gep b p ~index:idx ~scale:8 () in
      ignore (Builder.load b ptr));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let loop = List.hd (Loops.loops li) in
  Alcotest.(check int) "no strided access" 0
    (List.length (Induction.strided_accesses ind loop))

let test_induction_while_has_no_governing_iv () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let final =
    Builder.while_loop_acc b ~accs:[ Ir.Const 1 ]
      ~cond:(fun b ~accs -> Builder.icmp b Ir.Lt (List.hd accs) (Ir.Const 10))
      (fun b ~accs -> [ Builder.mul b (List.hd accs) (Ir.Const 3) ])
  in
  Builder.ret b (Some (List.hd final));
  let f = Ir.find_func m "f" in
  let ind = Induction.analyze f in
  let li = Loops.analyze f in
  let loop = List.hd (Loops.loops li) in
  (* the accumulator triples each iteration: not a constant-step IV *)
  Alcotest.(check int) "no IVs" 0
    (List.length (Induction.ivs_of_loop ind loop))

let test_alias_classes () =
  let m = Ir.create_module () in
  Ir.add_global m "g" 64;
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 16 in
  let hgep = Builder.gep b heap ~index:(Ir.Const 1) ~scale:8 () in
  let sgep = Builder.gep b stack ~index:(Ir.Const 0) ~scale:8 () in
  ignore (Builder.load b hgep);
  ignore (Builder.load b sgep);
  ignore (Builder.load b (Ir.Sym "g"));
  Builder.ret b None;
  let f = Ir.find_func m "f" in
  let al = Alias.analyze f in
  Alcotest.(check bool) "heap needs guard" true (Alias.needs_guard al heap);
  Alcotest.(check bool) "heap gep needs guard" true (Alias.needs_guard al hgep);
  Alcotest.(check bool) "stack unguarded" false (Alias.needs_guard al stack);
  Alcotest.(check bool) "stack gep unguarded" false (Alias.needs_guard al sgep);
  Alcotest.(check bool) "global unguarded" false
    (Alias.needs_guard al (Ir.Sym "g"))

let test_alias_phi_join () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 16 in
  let then_l = Builder.add_block b "t" in
  let else_l = Builder.add_block b "e" in
  let join = Builder.add_block b "j" in
  Builder.cbr b (Ir.Const 1) then_l else_l;
  Builder.set_block b then_l;
  Builder.br b join;
  Builder.set_block b else_l;
  Builder.br b join;
  Builder.set_block b join;
  let mixed = Builder.phi b [ (then_l, heap); (else_l, stack) ] in
  ignore (Builder.load b mixed);
  Builder.ret b None;
  Verifier.check_module m;
  let f = Ir.find_func m "f" in
  let al = Alias.analyze f in
  (* heap|stack joins to Unknown, which must be guarded (custody check
     sorts it out at run time) *)
  Alcotest.(check bool) "mixed phi guarded" true (Alias.needs_guard al mixed)

let test_alias_select_join () =
  let m = Ir.create_module () in
  Ir.add_global m "g" 64;
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 16 in
  (* same-class select stays in its class; mixed select joins to Unknown *)
  let both_stack = Builder.select b (Ir.Const 1) stack stack in
  let mixed = Builder.select b (Ir.Const 1) heap stack in
  let heap_or_global = Builder.select b (Ir.Const 0) heap (Ir.Sym "g") in
  ignore (Builder.load b both_stack);
  ignore (Builder.load b mixed);
  ignore (Builder.load b heap_or_global);
  Builder.ret b None;
  Verifier.check_module m;
  let al = Alias.analyze (Ir.find_func m "f") in
  Alcotest.(check bool) "stack/stack select unguarded" false
    (Alias.needs_guard al both_stack);
  Alcotest.(check bool) "heap/stack select guarded" true
    (Alias.needs_guard al mixed);
  Alcotest.(check bool) "heap/global select guarded" true
    (Alias.needs_guard al heap_or_global)

let test_alias_loaded_pointer_chain () =
  (* a pointer loaded from memory is Unknown; gep chains off it must
     stay guarded no matter how deep *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let table = Builder.call b "malloc" [ Ir.Const 128 ] in
  let slot = Builder.gep b table ~index:(Ir.Const 2) ~scale:8 () in
  let indirect = Builder.load b slot in
  let g1 = Builder.gep b indirect ~index:(Ir.Const 1) ~scale:8 () in
  let g2 = Builder.gep b g1 ~index:(Ir.Const 3) ~scale:8 ~offset:4 () in
  ignore (Builder.load b g2);
  Builder.ret b None;
  Verifier.check_module m;
  let al = Alias.analyze (Ir.find_func m "f") in
  Alcotest.(check bool) "loaded pointer guarded" true
    (Alias.needs_guard al indirect);
  Alcotest.(check bool) "gep chain off loaded pointer guarded" true
    (Alias.needs_guard al g2)

let test_alias_needs_guard_per_class () =
  let m = Ir.create_module () in
  Ir.add_global m "g" 8;
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let heap = Builder.call b "malloc" [ Ir.Const 64 ] in
  let stack = Builder.alloca b 8 in
  ignore (Builder.load b heap);
  ignore (Builder.load b stack);
  ignore (Builder.load b (Ir.Sym "g"));
  ignore (Builder.load b (Builder.arg 0));
  Builder.ret b None;
  Verifier.check_module m;
  let al = Alias.analyze (Ir.find_func m "f") in
  let check name v expect =
    Alcotest.(check bool) name expect (Alias.needs_guard al v)
  in
  check "Heap guarded" heap true;
  check "Stack unguarded" stack false;
  check "Global unguarded" (Ir.Sym "g") false;
  check "Arg (Unknown) guarded" (Builder.arg 0) true

let test_profile_trip_counts () =
  let p = Profile.create () in
  Profile.add_block p ~func:"f" ~block:"pre" 10;
  Profile.add_block p ~func:"f" ~block:"hdr" 510;
  (* 10 entries, 510 header executions -> 50 trips/entry *)
  match Profile.avg_trip_count p ~func:"f" ~header:"hdr" ~preheader:"pre" with
  | Some t -> Alcotest.(check (float 1e-9)) "avg trip" 50.0 t
  | None -> Alcotest.fail "expected Some"

let test_profile_never_entered () =
  let p = Profile.create () in
  Alcotest.(check bool) "no entries -> None" true
    (Profile.avg_trip_count p ~func:"f" ~header:"h" ~preheader:"p" = None)

let test_liveness_simple_loop () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let base = Builder.call b "malloc" [ Ir.Const 64 ] in
  let accs =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
      ~accs:[ Ir.Const 0 ]
      (fun bb ~iv:_ ~accs ->
        let v = Builder.load bb base in
        [ Builder.add bb (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd accs));
  let f = Ir.find_func m "f" in
  let lv = Dataflow.liveness f in
  let base_id = match base with Ir.Reg id -> id | _ -> assert false in
  (* the malloc result is live into every loop block (used by the load) *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (blk : Ir.block) ->
      Alcotest.(check bool)
        ("base live into " ^ blk.label)
        true
        (Dataflow.Int_set.mem base_id (Dataflow.live_in lv blk.label)))
    (List.filter
       (fun (blk : Ir.block) ->
         (* base is used inside the loop, so it is live into the header,
            body and latch - but not the exit *)
         String.length blk.label > 4
         && String.sub blk.label 0 4 = "loop"
         && not (contains blk.label "exit"))
       f.blocks);
  Alcotest.(check bool) "pressure positive" true (Dataflow.max_pressure f > 0)

let test_liveness_dead_value_not_live () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let dead = Builder.add b (Ir.Const 1) (Ir.Const 2) in
  let live = Builder.add b (Ir.Const 3) (Ir.Const 4) in
  let exit_l = Builder.add_block b "exit" in
  Builder.br b exit_l;
  Builder.set_block b exit_l;
  Builder.ret b (Some live);
  let f = Ir.find_func m "f" in
  let lv = Dataflow.liveness f in
  let live_id = match live with Ir.Reg id -> id | _ -> assert false in
  let dead_id = match dead with Ir.Reg id -> id | _ -> assert false in
  Alcotest.(check bool) "live value live out of entry" true
    (Dataflow.Int_set.mem live_id (Dataflow.live_out lv "entry"));
  Alcotest.(check bool) "dead value not live" false
    (Dataflow.Int_set.mem dead_id (Dataflow.live_out lv "entry"))

let test_reaching_definitions () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let x = Builder.add b (Ir.Const 1) (Ir.Const 2) in
  let exit_l = Builder.add_block b "exit" in
  Builder.br b exit_l;
  Builder.set_block b exit_l;
  let y = Builder.add b x (Ir.Const 1) in
  Builder.ret b (Some y);
  let f = Ir.find_func m "f" in
  let rd = Dataflow.reaching_definitions f in
  let x_id = match x with Ir.Reg id -> id | _ -> assert false in
  Alcotest.(check bool) "entry def reaches exit" true
    (Dataflow.Int_set.mem x_id (Dataflow.reach_in rd exit_l))


(* -- interprocedural call graph and summaries ------------------------- *)

let test_callgraph_sccs_bottom_up () =
  let m = Ir.create_module () in
  let bh = Builder.create m ~name:"helper" ~nparams:1 in
  Builder.ret bh (Some (Builder.add bh (Builder.arg 0) (Ir.Const 1)));
  let bm = Builder.create m ~name:"main" ~nparams:0 in
  ignore (Builder.call bm "helper" [ Ir.Const 1 ]);
  ignore (Builder.call bm "mystery" []);
  Builder.ret bm None;
  let cg = Callgraph.build m in
  (match Callgraph.sccs cg with
  | [ [ "helper" ]; [ "main" ] ] -> ()
  | sccs ->
      Alcotest.failf "bad SCC order: %s"
        (String.concat "; " (List.map (String.concat ",") sccs)));
  Alcotest.(check bool) "helper not recursive" false
    (Callgraph.is_recursive cg "helper");
  match Callgraph.node cg "main" with
  | Some n ->
      Alcotest.(check (list string)) "defined callees" [ "helper" ] n.callees;
      Alcotest.(check (list string)) "unknown callees" [ "mystery" ]
        n.Callgraph.unknown_callees
  | None -> Alcotest.fail "main missing from call graph"

let test_summary_self_recursion_converges () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"count" ~nparams:1 in
  let base_l = Builder.add_block b "base" in
  let rec_l = Builder.add_block b "rec" in
  let c = Builder.icmp b Ir.Le (Builder.arg 0) (Ir.Const 0) in
  Builder.cbr b c base_l rec_l;
  Builder.set_block b base_l;
  Builder.ret b (Some (Ir.Const 0));
  Builder.set_block b rec_l;
  let r = Builder.call b "count" [ Builder.sub b (Builder.arg 0) (Ir.Const 1) ] in
  Builder.ret b (Some (Builder.add b r (Ir.Const 1)));
  Verifier.check_module m;
  let cg = Callgraph.build m in
  Alcotest.(check bool) "self-recursion detected" true
    (Callgraph.is_recursive cg "count");
  let env = Summary.compute m in
  match Summary.lookup env "count" with
  | Some s ->
      Alcotest.(check bool) "pure recursion is custody-safe" true
        s.Summary.custody_safe;
      Alcotest.(check bool) "not bottom" false (Summary.is_bottom s)
  | None -> Alcotest.fail "no summary for count"

let test_summary_mutual_recursion_sound () =
  (* even/odd pure pair: both custody-safe. A second pair where [g]
     stores through its pointer argument: the effect must propagate to
     [f] around the cycle. *)
  let m = Ir.create_module () in
  let mk name other =
    let b = Builder.create m ~name ~nparams:1 in
    let base_l = Builder.add_block b "base" in
    let rec_l = Builder.add_block b "rec" in
    let c = Builder.icmp b Ir.Le (Builder.arg 0) (Ir.Const 0) in
    Builder.cbr b c base_l rec_l;
    Builder.set_block b base_l;
    Builder.ret b (Some (Ir.Const 0));
    Builder.set_block b rec_l;
    let r =
      Builder.call b other [ Builder.sub b (Builder.arg 0) (Ir.Const 1) ]
    in
    Builder.ret b (Some r)
  in
  mk "even" "odd";
  mk "odd" "even";
  let bf = Builder.create m ~name:"f" ~nparams:1 in
  Builder.ret bf (Some (Builder.call bf "g" [ Builder.arg 0 ]));
  let bg = Builder.create m ~name:"g" ~nparams:1 in
  Builder.store bg (Ir.Const 7) ~ptr:(Builder.arg 0);
  Builder.ret bg (Some (Builder.call bg "f" [ Builder.arg 0 ]));
  Verifier.check_module m;
  let cg = Callgraph.build m in
  Alcotest.(check bool) "mutual recursion detected" true
    (Callgraph.is_recursive cg "even" && Callgraph.is_recursive cg "f");
  let env = Summary.compute m in
  let sum name =
    match Summary.lookup env name with
    | Some s -> s
    | None -> Alcotest.failf "no summary for %s" name
  in
  Alcotest.(check bool) "pure cycle custody-safe" true
    ((sum "even").Summary.custody_safe && (sum "odd").Summary.custody_safe);
  Alcotest.(check bool) "store in cycle poisons both" true
    ((not (sum "f").Summary.custody_safe)
    && not (sum "g").Summary.custody_safe);
  Alcotest.(check bool) "write effect propagates around the cycle" true
    (sum "f").Summary.eff.Summary.writes_heap

let test_summary_unknown_callee_bottom () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  ignore (Builder.call b "libc_mystery" [ Builder.arg 0 ]);
  Builder.ret b None;
  let env = Summary.compute m in
  match Summary.lookup env "f" with
  | Some s ->
      Alcotest.(check bool) "stuck at bottom" true (Summary.is_bottom s);
      Alcotest.(check bool) "calls_unknown recorded" true
        s.Summary.eff.Summary.calls_unknown;
      Alcotest.(check bool) "argument escapes" true s.Summary.escapes.(0);
      Alcotest.(check int) "lint reports it" 1 (List.length (Summary.lint m env))
  | None -> Alcotest.fail "no summary for f"

let test_summary_wrapper_allocator_and_passthrough () =
  let m = Ir.create_module () in
  let ba = Builder.create m ~name:"alloc8" ~nparams:1 in
  Builder.ret ba
    (Some (Builder.call ba "malloc" [ Builder.mul ba (Builder.arg 0) (Ir.Const 8) ]));
  let bi = Builder.create m ~name:"first_field" ~nparams:1 in
  Builder.ret bi
    (Some (Builder.gep bi (Builder.arg 0) ~index:(Ir.Const 0) ~scale:8 ()));
  let env = Summary.compute m in
  (match Summary.lookup env "alloc8" with
  | Some s ->
      Alcotest.(check bool) "wrapper returns heap" true (s.Summary.ret = Summary.Pheap);
      Alcotest.(check bool) "allocating, hence custody-clobbering" true
        (s.Summary.eff.Summary.allocs && not s.Summary.custody_safe)
  | None -> Alcotest.fail "no summary for alloc8");
  match Summary.lookup env "first_field" with
  | Some s ->
      Alcotest.(check bool) "returns its argument" true
        (s.Summary.ret = Summary.From_arg 0);
      Alcotest.(check bool) "pure" true s.Summary.custody_safe
  | None -> Alcotest.fail "no summary for first_field"

let test_summary_free_escapes_argument () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"dispose" ~nparams:2 in
  ignore (Builder.call b "free" [ Builder.arg 1 ]);
  Builder.ret b None;
  let env = Summary.compute m in
  match Summary.lookup env "dispose" with
  | Some s ->
      Alcotest.(check bool) "freed argument escapes" true s.Summary.escapes.(1);
      Alcotest.(check bool) "unfreed argument does not" false s.Summary.escapes.(0);
      Alcotest.(check bool) "frees + clobbers" true
        (s.Summary.eff.Summary.frees && not s.Summary.custody_safe)
  | None -> Alcotest.fail "no summary for dispose"

let test_alias_uses_summaries () =
  (* a stack pointer laundered through a returns-its-argument helper:
     precise with summaries, conservatively guarded without *)
  let m = Ir.create_module () in
  let bi = Builder.create m ~name:"first_field" ~nparams:1 in
  Builder.ret bi
    (Some (Builder.gep bi (Builder.arg 0) ~index:(Ir.Const 0) ~scale:8 ()));
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let stack = Builder.alloca b 16 in
  let q = Builder.call b "first_field" [ stack ] in
  ignore (Builder.load b q);
  let h = Builder.call b "alloc8" [ Ir.Const 4 ] in
  ignore (Builder.load b h);
  Builder.ret b None;
  let ba = Builder.create m ~name:"alloc8" ~nparams:1 in
  Builder.ret ba
    (Some (Builder.call ba "malloc" [ Builder.mul ba (Builder.arg 0) (Ir.Const 8) ]));
  Verifier.check_module m;
  let f = Ir.find_func m "f" in
  let env = Summary.compute m in
  let with_s = Alias.analyze ~summaries:env f in
  let without = Alias.analyze f in
  Alcotest.(check bool) "stack-through-helper unguarded with summaries" false
    (Alias.needs_guard with_s q);
  Alcotest.(check bool) "guarded without summaries" true
    (Alias.needs_guard without q);
  Alcotest.(check bool) "wrapper-allocator result guarded" true
    (Alias.needs_guard with_s h)

(* -- interprocedural shape analysis ---------------------------------- *)

let reg = function Ir.Reg id -> id | _ -> Alcotest.fail "expected a register"

(* One arena whose slots store pointers back into the same arena at the
   given field offsets: 1 offset = list, 2 = tree, 3 = graph. *)
let self_linked_module offsets =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arena = Builder.call b "malloc" [ Ir.Const 320 ] in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 9) (fun b k ->
      let src =
        Builder.gep b arena ~index:(Builder.add b k (Ir.Const 1)) ~scale:32 ()
      in
      List.iter
        (fun off ->
          Builder.store b src
            ~ptr:(Builder.gep b arena ~index:k ~scale:32 ~offset:off ()))
        offsets);
  Builder.ret b (Some (Ir.Const 0));
  Verifier.check_module m;
  (m, reg arena)

let test_shape_struct_kinds () =
  let kind_of offsets =
    let m, id = self_linked_module offsets in
    match Shape.site_of (Shape.analyze m) ("main", id) with
    | Some site -> (site.Shape.kind, site.Shape.link_offsets)
    | None -> Alcotest.fail "allocation site not found"
  in
  Alcotest.(check bool) "one link offset = list" true
    (kind_of [ 0 ] = (Shape.List, [ 0 ]));
  Alcotest.(check bool) "two link offsets = tree" true
    (kind_of [ 0; 8 ] = (Shape.Tree, [ 0; 8 ]));
  Alcotest.(check bool) "three link offsets = graph" true
    (kind_of [ 0; 8; 16 ] = (Shape.Graph, [ 0; 8; 16 ]));
  let m, id = self_linked_module [] in
  (* no self-referential stores at all: not a recursive structure *)
  match Shape.site_of (Shape.analyze m) ("main", id) with
  | Some site ->
      Alcotest.(check bool) "no links = scalar" false
        (Shape.kind_is_recursive site.Shape.kind)
  | None -> Alcotest.fail "allocation site not found"

(* A one-load helper plus a traversal loop in main: the helper's load
   must classify pointer-chase only when shape facts fold the caller's
   chain depth into the helper's context. *)
let helper_chase_module () =
  let m = Ir.create_module () in
  let bh = Builder.create m ~name:"node_next" ~nparams:1 in
  Builder.ret bh (Some (Builder.load bh (Builder.arg 0)));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arena = Builder.call b "malloc" [ Ir.Const 160 ] in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 9) (fun b k ->
      Builder.store b
        (Builder.gep b arena ~index:(Builder.add b k (Ir.Const 1)) ~scale:16 ())
        ~ptr:(Builder.gep b arena ~index:k ~scale:16 ()));
  let final =
    Builder.while_loop_acc b
      ~accs:[ arena; Ir.Const 0 ]
      ~cond:(fun b ~accs -> Builder.icmp b Ir.Ne (List.hd accs) (Ir.Const 0))
      (fun b ~accs ->
        let cur, n = (List.hd accs, List.nth accs 1) in
        [ Builder.call b "node_next" [ cur ]; Builder.add b n (Ir.Const 1) ])
  in
  Builder.ret b (Some (List.nth final 1));
  Verifier.check_module m;
  m

let test_shape_helper_ret_hops_and_context () =
  let m = helper_chase_module () in
  let env = Shape.analyze m in
  (match Shape.summary env "node_next" with
  | Some s ->
      Alcotest.(check bool) "ret = arg0 after one loaded hop" true
        (s.Shape.ret_hops = Some (0, 1));
      Alcotest.(check bool) "chase-through bit set" true (s.Shape.chases.(0) >= 1)
  | None -> Alcotest.fail "no shape summary for node_next");
  match Shape.context env "node_next" with
  | Some ctx ->
      Alcotest.(check bool) "caller chain depth flows into the parameter" true
        (ctx.Shape.arg_depth.(0) >= 1)
  | None -> Alcotest.fail "no calling context for node_next"

let test_shape_upgrades_helper_classification () =
  let m = helper_chase_module () in
  let summaries = Summary.compute m in
  let shapes = Shape.analyze m in
  let helper = Ir.find_func m "node_next" in
  let cls_of t =
    match Access_pattern.sites t with
    | [ s ] -> s.Access_pattern.cls
    | _ -> Alcotest.fail "expected exactly one may-heap site in node_next"
  in
  Alcotest.(check bool) "unknown without shape facts" true
    (cls_of (Access_pattern.analyze ~summaries helper) = Access_pattern.Unknown);
  let t = Access_pattern.analyze ~summaries ~shapes helper in
  Alcotest.(check bool) "pointer-chase with shape facts" true
    (cls_of t = Access_pattern.Pointer_chase);
  match Access_pattern.sites t with
  | [ s ] ->
      Alcotest.(check bool) "chain depth from the caller" true
        (s.Access_pattern.chain_depth >= 1);
      Alcotest.(check (option string)) "structure kind attached" (Some "list")
        s.Access_pattern.shape
  | _ -> Alcotest.fail "expected exactly one site"

let test_shape_recursive_scc_saturates () =
  (* walk(p) = if p then walk(load p): the chase depth through the
     recursive SCC must saturate at the cap, not oscillate — and the
     whole analysis must be deterministic across reruns. *)
  let build () =
    let m = Ir.create_module () in
    let b = Builder.create m ~name:"walk" ~nparams:1 in
    let p = Builder.arg 0 in
    let base = Builder.add_block b "base" in
    let step = Builder.add_block b "step" in
    Builder.cbr b (Builder.icmp b Ir.Eq p (Ir.Const 0)) base step;
    Builder.set_block b base;
    Builder.ret b (Some (Ir.Const 0));
    Builder.set_block b step;
    Builder.ret b (Some (Builder.call b "walk" [ Builder.load b p ]));
    Verifier.check_module m;
    m
  in
  let m = build () in
  let env = Shape.analyze m in
  (match Shape.summary env "walk" with
  | Some s ->
      Alcotest.(check int) "chase depth saturates at the cap" Shape.depth_cap
        s.Shape.chases.(0)
  | None -> Alcotest.fail "no shape summary for walk");
  Alcotest.(check string) "deterministic across reruns"
    (Shape.dump env m)
    (Shape.dump (Shape.analyze (build ())) (build ()))

let test_shape_mutual_recursion_no_oscillation () =
  let build () =
    let m = Ir.create_module () in
    let bf = Builder.create m ~name:"even_hop" ~nparams:1 in
    Builder.ret bf
      (Some (Builder.call bf "odd_hop" [ Builder.load bf (Builder.arg 0) ]));
    let bg = Builder.create m ~name:"odd_hop" ~nparams:1 in
    Builder.ret bg
      (Some (Builder.call bg "even_hop" [ Builder.load bg (Builder.arg 0) ]));
    Verifier.check_module m;
    m
  in
  let m = build () in
  let env = Shape.analyze m in
  (match (Shape.summary env "even_hop", Shape.summary env "odd_hop") with
  | Some f, Some g ->
      Alcotest.(check int) "even_hop saturated" Shape.depth_cap
        f.Shape.chases.(0);
      Alcotest.(check int) "odd_hop saturated" Shape.depth_cap
        g.Shape.chases.(0)
  | _ -> Alcotest.fail "missing shape summaries");
  Alcotest.(check string) "mutual recursion deterministic"
    (Shape.dump env m)
    (Shape.dump (Shape.analyze (build ())) (build ()))

(* -- access-pattern edge cases --------------------------------------- *)

let test_classify_zero_trip_loop () =
  (* A counted loop whose bound is 0 never runs, but its strided load
     must still classify deterministically from static evidence. *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:0 in
  let base = Builder.call b "malloc" [ Ir.Const 64 ] in
  let acc =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 0)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv ~accs ->
        [
          Builder.add b (List.hd accs)
            (Builder.load b (Builder.gep b base ~index:iv ~scale:8 ()));
        ])
  in
  Builder.ret b (Some (List.hd acc));
  Verifier.check_module m;
  let f = Ir.find_func m "f" in
  let t = Access_pattern.analyze ~shapes:(Shape.analyze m) f in
  match Access_pattern.sites t with
  | [ s ] ->
      Alcotest.(check bool) "zero-trip strided load is streaming" true
        (s.Access_pattern.cls = Access_pattern.Streaming);
      Alcotest.(check (option int)) "stride survives" (Some 8)
        s.Access_pattern.stride
  | _ -> Alcotest.fail "expected exactly one site"

let test_classify_phi_address_chain () =
  (* The chased pointer flows through a phi: both arms derive from the
     same loaded pointer, so the chain must survive the merge. *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  let h = Builder.load b (Builder.arg 0) in
  let l = Builder.add_block b "l" in
  let r = Builder.add_block b "r" in
  let join = Builder.add_block b "join" in
  Builder.cbr b (Builder.arg 0) l r;
  Builder.set_block b l;
  let p1 = Builder.gep b h ~index:(Ir.Const 0) ~scale:8 () in
  Builder.br b join;
  Builder.set_block b r;
  let p2 = Builder.gep b h ~index:(Ir.Const 0) ~scale:8 ~offset:8 () in
  Builder.br b join;
  Builder.set_block b join;
  let p = Builder.phi b [ (l, p1); (r, p2) ] in
  let v = Builder.load b p in
  Builder.ret b (Some v);
  Verifier.check_module m;
  let f = Ir.find_func m "f" in
  let t = Access_pattern.analyze f in
  match Access_pattern.site_of t (reg v) with
  | Some s ->
      Alcotest.(check int) "chain survives the phi" 1
        s.Access_pattern.chain_depth;
      Alcotest.(check bool) "classifies pointer-chase" true
        (s.Access_pattern.cls = Access_pattern.Pointer_chase)
  | None -> Alcotest.fail "phi-addressed load not classified"

(* -- summary lint causes ---------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_lint_names_direct_unknown () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"f" ~nparams:1 in
  ignore (Builder.call b "libc_mystery" [ Builder.arg 0 ]);
  Builder.ret b None;
  let env = Summary.compute m in
  match Summary.lint m env with
  | [ line ] ->
      Alcotest.(check bool) "names the unknown callee" true
        (contains ~sub:"unknown callee(s): libc_mystery" line)
  | lines -> Alcotest.fail (String.concat "; " lines)

let test_lint_names_opaque_call () =
  let m = Ir.create_module () in
  let bg = Builder.create m ~name:"g" ~nparams:1 in
  ignore (Builder.call bg "libc_mystery" [ Builder.arg 0 ]);
  Builder.ret bg None;
  let bf = Builder.create m ~name:"f" ~nparams:1 in
  ignore (Builder.call bf "g" [ Builder.arg 0 ]);
  Builder.ret bf None;
  let env = Summary.compute m in
  let lines = Summary.lint m env in
  match List.find_opt (fun l -> contains ~sub:"f:" l) lines with
  | Some line ->
      Alcotest.(check bool) "blames the opaque callee by name" true
        (contains ~sub:"opaque call(s): g reaches unknown libc_mystery" line)
  | None -> Alcotest.fail ("no lint line for f: " ^ String.concat "; " lines)

let test_lint_names_recursive_cap () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"spin" ~nparams:1 in
  Builder.ret b (Some (Builder.call b "spin" [ Builder.load b (Builder.arg 0) ]));
  (* round cap 0 forces the SCC fixpoint tripwire: the only bottom cause
     with no unknown callee anywhere in reach *)
  let env = Summary.compute ~max_rounds:0 m in
  match Summary.lint m env with
  | [ line ] ->
      Alcotest.(check bool) "blames the fixpoint round cap" true
        (contains ~sub:"recursive SCC tripped the fixpoint round cap" line)
  | lines -> Alcotest.fail (String.concat "; " lines)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
      Alcotest.test_case "loop detection" `Quick test_loop_detection;
      Alcotest.test_case "loop nesting" `Quick test_loop_nesting;
      Alcotest.test_case "induction basic" `Quick test_induction_basic;
      Alcotest.test_case "induction invariant offset" `Quick
        test_induction_invariant_offset;
      Alcotest.test_case "induction rejects nonaffine" `Quick
        test_induction_rejects_nonaffine;
      Alcotest.test_case "while loop has no IV" `Quick
        test_induction_while_has_no_governing_iv;
      Alcotest.test_case "alias classes" `Quick test_alias_classes;
      Alcotest.test_case "alias phi join" `Quick test_alias_phi_join;
      Alcotest.test_case "alias select join" `Quick test_alias_select_join;
      Alcotest.test_case "alias loaded pointer chain" `Quick
        test_alias_loaded_pointer_chain;
      Alcotest.test_case "alias needs_guard per class" `Quick
        test_alias_needs_guard_per_class;
      Alcotest.test_case "profile trips" `Quick test_profile_trip_counts;
      Alcotest.test_case "profile empty" `Quick test_profile_never_entered;
      Alcotest.test_case "liveness loop" `Quick test_liveness_simple_loop;
      Alcotest.test_case "liveness dead value" `Quick
        test_liveness_dead_value_not_live;
      Alcotest.test_case "reaching defs" `Quick test_reaching_definitions;
      Alcotest.test_case "callgraph SCCs bottom-up" `Quick
        test_callgraph_sccs_bottom_up;
      Alcotest.test_case "summary self-recursion converges" `Quick
        test_summary_self_recursion_converges;
      Alcotest.test_case "summary mutual recursion sound" `Quick
        test_summary_mutual_recursion_sound;
      Alcotest.test_case "summary unknown callee bottom" `Quick
        test_summary_unknown_callee_bottom;
      Alcotest.test_case "summary wrapper allocator and passthrough" `Quick
        test_summary_wrapper_allocator_and_passthrough;
      Alcotest.test_case "summary free escapes argument" `Quick
        test_summary_free_escapes_argument;
      Alcotest.test_case "alias uses summaries" `Quick test_alias_uses_summaries;
      Alcotest.test_case "shape struct kinds" `Quick test_shape_struct_kinds;
      Alcotest.test_case "shape helper ret-hops + context" `Quick
        test_shape_helper_ret_hops_and_context;
      Alcotest.test_case "shape upgrades helper classification" `Quick
        test_shape_upgrades_helper_classification;
      Alcotest.test_case "shape recursive SCC saturates" `Quick
        test_shape_recursive_scc_saturates;
      Alcotest.test_case "shape mutual recursion stable" `Quick
        test_shape_mutual_recursion_no_oscillation;
      Alcotest.test_case "classify zero-trip loop" `Quick
        test_classify_zero_trip_loop;
      Alcotest.test_case "classify phi address chain" `Quick
        test_classify_phi_address_chain;
      Alcotest.test_case "lint names direct unknown" `Quick
        test_lint_names_direct_unknown;
      Alcotest.test_case "lint names opaque call" `Quick
        test_lint_names_opaque_call;
      Alcotest.test_case "lint names recursive cap" `Quick
        test_lint_names_recursive_cap;
    ] )
