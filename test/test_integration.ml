(* Cross-module integration tests: the paper's qualitative claims, each
   checked as an executable assertion at miniature scale. *)

open Workloads

let test_claim_chunking_speeds_up_stream () =
  (* C1 (Fig. 7): loop chunking beats naive guards on STREAM. *)
  let n = 50_000 in
  let ws = Stream.working_set_bytes ~n ~kernel:Stream.Sum () in
  let budget = ws / 4 in
  (* elision off: the claim compares chunking against *naive* per-access
     guards, which the guard optimizer would otherwise remove itself *)
  let run mode =
    let opts =
      {
        (Driver.tfm_defaults ~local_budget:budget) with
        Driver.chunk_mode = mode;
        elide_guards = false;
      }
    in
    (fst (Driver.run_trackfm (fun () -> Stream.build ~n ~kernel:Stream.Sum ()) opts))
      .Driver.cycles
  in
  let naive = run `Off and chunked = run `All in
  Alcotest.(check bool) "chunked faster" true (chunked < naive);
  let speedup = float_of_int naive /. float_of_int chunked in
  Alcotest.(check bool) "speedup in a plausible band" true
    (speedup > 1.2 && speedup < 6.0)

let test_claim_gate_beats_indiscriminate_on_kmeans () =
  (* C2 (Fig. 8): the profiled cost-model gate beats chunking everything. *)
  let p = Kmeans.default_params ~n:4_000 in
  let ws = Kmeans.working_set_bytes p in
  let budget = ws in
  (* all-local: isolates guard costs, where indiscriminate chunking hurts *)
  let run mode gate =
    let opts =
      {
        (Driver.tfm_defaults ~local_budget:budget) with
        Driver.chunk_mode = mode;
        profile_gate = gate;
      }
    in
    (fst (Driver.run_trackfm (fun () -> Kmeans.build p ()) opts)).Driver.cycles
  in
  let all = run `All false in
  let gated = run `Gated true in
  Alcotest.(check bool) "gated beats all-loops" true (gated < all)

let test_claim_small_objects_help_hashmap () =
  (* C3 (Fig. 9): fine-grained access patterns want small objects. *)
  let p = Hashmap.default_params ~keys:20_000 ~lookups:30_000 in
  let blobs = [ (0, Hashmap.trace_blob p) ] in
  let ws = Hashmap.working_set_bytes p in
  let run osz =
    let opts =
      {
        (Driver.tfm_defaults ~local_budget:(ws / 4)) with
        Driver.object_size = osz;
      }
    in
    (fst (Driver.run_trackfm ~blobs (fun () -> Hashmap.build p ()) opts))
      .Driver.cycles
  in
  Alcotest.(check bool) "256B beats 4KiB" true (run 256 < run 4096)

let test_claim_large_objects_help_stream () =
  (* C4 (Fig. 10): spatial locality wants large objects. *)
  let n = 50_000 in
  let ws = Stream.working_set_bytes ~n ~kernel:Stream.Copy () in
  let run osz =
    let opts =
      {
        (Driver.tfm_defaults ~local_budget:(ws / 4)) with
        Driver.object_size = osz;
      }
    in
    (fst
       (Driver.run_trackfm (fun () -> Stream.build ~n ~kernel:Stream.Copy ()) opts))
      .Driver.cycles
  in
  Alcotest.(check bool) "4KiB beats 256B" true (run 4096 < run 256)

let test_claim_prefetching_helps_under_pressure () =
  (* C5 (Fig. 11): prefetch + chunking over chunking alone. *)
  let n = 50_000 in
  let ws = Stream.working_set_bytes ~n ~kernel:Stream.Sum () in
  let run prefetch =
    let opts =
      { (Driver.tfm_defaults ~local_budget:(ws / 5)) with Driver.prefetch }
    in
    (fst (Driver.run_trackfm (fun () -> Stream.build ~n ~kernel:Stream.Sum ()) opts))
      .Driver.cycles
  in
  let off = run false and on = run true in
  Alcotest.(check bool) "prefetch helps" true (on < off);
  Alcotest.(check bool) "substantially (>2x)" true (off > 2 * on)

let test_claim_trackfm_beats_fastswap_on_stream () =
  (* C6 (Fig. 12). *)
  let n = 50_000 in
  let ws = Stream.working_set_bytes ~n ~kernel:Stream.Sum () in
  let build () = Stream.build ~n ~kernel:Stream.Sum () in
  let tfm, _ = Driver.run_trackfm build (Driver.tfm_defaults ~local_budget:(ws / 4)) in
  let fs = Driver.run_fastswap ~local_budget:(ws / 4) build in
  Alcotest.(check bool) "TrackFM faster than Fastswap" true
    (tfm.Driver.cycles < fs.Driver.cycles)

let test_claim_io_amplification () =
  (* C7 (Fig. 13): Fastswap moves page-size multiples; TrackFM with small
     objects moves drastically less for fine-grained access. *)
  let p = Hashmap.default_params ~keys:20_000 ~lookups:30_000 in
  let blobs = [ (0, Hashmap.trace_blob p) ] in
  let ws = Hashmap.working_set_bytes p in
  let build () = Hashmap.build p () in
  let opts =
    { (Driver.tfm_defaults ~local_budget:(ws / 4)) with Driver.object_size = 64 }
  in
  let tfm, _ = Driver.run_trackfm ~blobs build opts in
  let fs = Driver.run_fastswap ~blobs ~local_budget:(ws / 4) build in
  let tfm_bytes = Driver.counter tfm "net.bytes_in" in
  let fs_bytes = Driver.counter fs "net.bytes_in" in
  Alcotest.(check bool) "10x+ less data moved" true (fs_bytes > 10 * tfm_bytes)

let test_claim_analytics_three_systems_agree_and_rank () =
  (* C8 (Fig. 14): under memory pressure TrackFM and AIFM stay close;
     each system is normalized to its own all-local run. *)
  let p = Analytics.default_params ~rows:30_000 in
  let ws = Analytics.working_set_bytes p in
  let build () = Analytics.build p () in
  let slowdown run_at =
    let constrained = run_at (ws / 8) and unconstrained = run_at (ws * 2) in
    float_of_int constrained /. float_of_int unconstrained
  in
  let tfm_slow =
    slowdown (fun budget ->
        (fst (Driver.run_trackfm build (Driver.tfm_defaults ~local_budget:budget)))
          .Driver.cycles)
  in
  let fs_slow =
    slowdown (fun budget ->
        (Driver.run_fastswap ~local_budget:budget build).Driver.cycles)
  in
  let aifm_slow =
    slowdown (fun budget ->
        let ck, clock = Analytics.run_aifm ~local_budget:budget p in
        Alcotest.(check int) "aifm checksum" (Analytics.checksum p) ck;
        Clock.cycles clock)
  in
  Alcotest.(check bool) "fastswap degrades most" true
    (fs_slow > tfm_slow && fs_slow > aifm_slow);
  (* The paper's "within 10%" holds at 31 GB scale; at this miniature
     scale the two systems stay within ~50% of each other (see
     EXPERIMENTS.md deviation 4), and crucially both stay far below
     Fastswap. *)
  Alcotest.(check bool) "TrackFM near AIFM" true
    (tfm_slow /. aifm_slow < 1.5 && aifm_slow /. tfm_slow < 1.5)

let test_claim_memcached_converges_with_skew () =
  (* C10 (Fig. 16): higher skew helps Fastswap amortize faults. *)
  let run skew =
    let p = Memcached.default_params ~keys:20_000 ~gets:10_000 ~skew in
    let blobs = [ (0, Memcached.trace_blob p) ] in
    let ws = Memcached.working_set_bytes p in
    let fs =
      Driver.run_fastswap ~blobs ~local_budget:(ws / 10) (fun () ->
          Memcached.build p ())
    in
    fs.Driver.cycles
  in
  Alcotest.(check bool) "skew 1.3 faster than 1.05 under fastswap" true
    (run 1.3 < run 1.05)

let test_claim_o1_reduces_guard_counts () =
  (* C11/Fig. 17b: pre-optimizing reduces injected guards. *)
  let p = { Nas.kernel = Nas.FT; scale = 1 } in
  let guards_of build =
    let m = build () in
    let report = Trackfm.Pipeline.run Trackfm.Pipeline.default_config m in
    report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
    + report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores
  in
  let plain = guards_of (fun () -> Nas.build p ()) in
  let o1 =
    guards_of (fun () ->
        let m = Nas.build p () in
        ignore (Tfm_opt.O1.run m);
        m)
  in
  Alcotest.(check bool) "O1 cuts static guards" true (o1 * 3 < plain * 2)

let test_autotune_picks_sensible_sizes () =
  (* Section 3.2's proposed autotuner: for the Zipfian hashmap it must
     prefer a small object; for STREAM a large one. *)
  let p = Hashmap.default_params ~keys:20_000 ~lookups:20_000 in
  let blobs = [ (0, Hashmap.trace_blob p) ] in
  let ws = Hashmap.working_set_bytes p in
  let best_hm, _ =
    Driver.autotune_object_size ~blobs
      (fun () -> Hashmap.build p ())
      ~local_budget:(ws / 4)
  in
  Alcotest.(check bool) "hashmap wants small objects" true (best_hm <= 512);
  let n = 40_000 in
  let ws = Stream.working_set_bytes ~n ~kernel:Stream.Copy () in
  let best_st, _ =
    Driver.autotune_object_size
      ~candidates:[ 256; 1024; 4096 ]
      (fun () -> Stream.build ~n ~kernel:Stream.Copy ())
      ~local_budget:(ws / 4)
  in
  Alcotest.(check bool) "stream wants large objects" true (best_st >= 1024)

let test_compile_costs_sane () =
  (* Section 4.6: code growth is bounded and compile time is small. *)
  let m = Stream.build ~n:1_000 ~kernel:Stream.Copy () in
  let report = Trackfm.Pipeline.run Trackfm.Pipeline.default_config m in
  let growth = Trackfm.Pipeline.code_growth report in
  Alcotest.(check bool) "growth in [1, 8]" true (growth >= 1.0 && growth < 8.0);
  Alcotest.(check bool) "compile time sub-second" true
    (report.Trackfm.Pipeline.compile_time_s < 1.0)

let test_guard_counts_scale_with_accesses () =
  (* Fig. 14b analog: guard events track the access volume. *)
  let count n =
    let ws = Stream.working_set_bytes ~n ~kernel:Stream.Sum () in
    let opts =
      {
        (Driver.tfm_defaults ~local_budget:ws) with
        Driver.chunk_mode = `Off;
        (* raw per-access guard volume; range elision would hoist the
           whole loop's custody and break the linear scaling on purpose *)
        elide_guards = false;
      }
    in
    let o, _ =
      Driver.run_trackfm (fun () -> Stream.build ~n ~kernel:Stream.Sum ()) opts
    in
    Driver.counter o "tfm.fast_guards" + Driver.counter o "tfm.slow_guards"
  in
  let c1 = count 2_000 and c2 = count 4_000 in
  Alcotest.(check bool) "roughly doubles" true
    (c2 > (2 * c1 * 9 / 10) && c2 < (2 * c1 * 11 / 10))

let suite =
  ( "integration (paper claims)",
    [
      Alcotest.test_case "C1 chunking speedup" `Slow
        test_claim_chunking_speeds_up_stream;
      Alcotest.test_case "C2 gated beats all" `Slow
        test_claim_gate_beats_indiscriminate_on_kmeans;
      Alcotest.test_case "C3 small objects hashmap" `Slow
        test_claim_small_objects_help_hashmap;
      Alcotest.test_case "C4 large objects stream" `Slow
        test_claim_large_objects_help_stream;
      Alcotest.test_case "C5 prefetch helps" `Slow
        test_claim_prefetching_helps_under_pressure;
      Alcotest.test_case "C6 beats fastswap on stream" `Slow
        test_claim_trackfm_beats_fastswap_on_stream;
      Alcotest.test_case "C7 io amplification" `Slow test_claim_io_amplification;
      Alcotest.test_case "C8 analytics three systems" `Slow
        test_claim_analytics_three_systems_agree_and_rank;
      Alcotest.test_case "C10 memcached skew" `Slow
        test_claim_memcached_converges_with_skew;
      Alcotest.test_case "C11 O1 guard reduction" `Quick
        test_claim_o1_reduces_guard_counts;
      Alcotest.test_case "autotuner picks sizes" `Slow
        test_autotune_picks_sensible_sizes;
      Alcotest.test_case "compile costs" `Quick test_compile_costs_sane;
      Alcotest.test_case "guard counts scale" `Quick
        test_guard_counts_scale_with_accesses;
    ] )
