(* Tests for the static-analysis suite: the guard-coverage verifier
   (negative cases must be flagged with the offending instruction), the
   elision-witness re-check, the verifier's intrinsic-call validation,
   and the guard optimizer's rewrites (same-pointer, congruent widening,
   RMW upgrade, hoisting, loop-range) — each checked both structurally
   and through the checker that has to re-prove it. *)

module Coverage = Tfm_checker.Coverage
module Elide = Trackfm.Elide_pass

let guard_read = Trackfm.Guard_pass.guard_read_name
let guard_write = Trackfm.Guard_pass.guard_write_name

let count_guards (m : Ir.modul) =
  List.fold_left
    (fun acc (f : Ir.func) ->
      List.fold_left
        (fun acc (b : Ir.block) ->
          List.fold_left
            (fun acc (i : Ir.instr) ->
              match i.kind with
              | Ir.Call { callee; _ }
                when callee = guard_read || callee = guard_write ->
                  acc + 1
              | _ -> acc)
            acc b.instrs)
        acc f.blocks)
    0 m.funcs

(* -- negative coverage cases: the checker must flag these ------------- *)

let test_checker_flags_missing_guard () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  let v = Builder.load b p in
  (* no guard anywhere *)
  Builder.ret b (Some v);
  Verifier.check_module m;
  let load_id = match v with Ir.Reg id -> id | _ -> assert false in
  let malloc_id = match p with Ir.Reg id -> id | _ -> assert false in
  match Coverage.check_module m with
  | [ viol ] ->
      Alcotest.(check int) "offending instruction" load_id viol.Coverage.instr;
      Alcotest.(check bool) "is a load" false viol.Coverage.is_store;
      (* the closest preceding custody clobber is the allocation itself *)
      Alcotest.(check bool) "killer is the malloc" true
        (viol.Coverage.killer = Some malloc_id)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_checker_flags_wrong_pointer_guard () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  let q = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ q; Ir.Const 8 ]);
  let v = Builder.load b p in
  (* guarded q, accessed p *)
  Builder.ret b (Some v);
  Verifier.check_module m;
  let load_id = match v with Ir.Reg id -> id | _ -> assert false in
  match Coverage.check_module m with
  | [ viol ] ->
      Alcotest.(check int) "offending instruction" load_id viol.Coverage.instr
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_checker_flags_guard_killed_by_call () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.load b p);
  (* fine: guarded *)
  let killer = Builder.call b "opaque_helper" [] in
  let v = Builder.load b p in
  (* custody died at the opaque call *)
  Builder.ret b (Some v);
  Verifier.check_module m;
  let load_id = match v with Ir.Reg id -> id | _ -> assert false in
  let killer_id = match killer with Ir.Reg id -> id | _ -> assert false in
  match Coverage.check_module m with
  | [ viol ] ->
      Alcotest.(check int) "offending instruction" load_id viol.Coverage.instr;
      Alcotest.(check bool) "killer attributed" true
        (viol.Coverage.killer = Some killer_id)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_checker_accepts_guarded_access () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  let v = Builder.load b p in
  Builder.ret b (Some v);
  Verifier.check_module m;
  Alcotest.(check int) "no violations" 0
    (List.length (Coverage.check_module m));
  Coverage.enforce m (* must not raise *)

(* -- verifier intrinsic validation ------------------------------------ *)

let expect_ill_formed name build =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  build b;
  Builder.ret b None;
  match Verifier.check_module m with
  | () -> Alcotest.failf "%s: expected Ill_formed" name
  | exception Verifier.Ill_formed _ -> ()

let test_verifier_rejects_malformed_intrinsics () =
  expect_ill_formed "guard arity" (fun b ->
      let p = Builder.call b "malloc" [ Ir.Const 64 ] in
      ignore (Builder.call b guard_read [ p ]));
  expect_ill_formed "guard float pointer" (fun b ->
      ignore (Builder.call b guard_read [ Ir.Constf 1.0; Ir.Const 8 ]));
  expect_ill_formed "guard non-positive size" (fun b ->
      let p = Builder.call b "malloc" [ Ir.Const 64 ] in
      ignore (Builder.call b guard_write [ p; Ir.Const 0 ]));
  expect_ill_formed "chunk_end non-const handle" (fun b ->
      let p = Builder.call b "malloc" [ Ir.Const 64 ] in
      ignore (Builder.call b "!tfm_chunk_end" [ p ]))

let test_verifier_accepts_wellformed_intrinsics () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.call b guard_write [ p; Ir.Const 16 ]);
  ignore (Builder.load b p);
  Builder.ret b None;
  Verifier.check_module m

(* -- elision rewrites -------------------------------------------------- *)

let test_elide_same_pointer () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.load b p);
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.load b p);
  Builder.ret b None;
  Verifier.check_module m;
  let r = Elide.run ~object_size:4096 m in
  Alcotest.(check int) "one same-pointer elision" 1 r.Elide.elided_same;
  Alcotest.(check int) "one guard left" 1 (count_guards m);
  Coverage.enforce m;
  Coverage.enforce_witnesses m r.Elide.elisions

let test_elide_rmw_upgrade () =
  (* load x; store f(x) through the same pointer: the read guard is
     promoted to a write guard and the separate write guard goes away *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  let v = Builder.load b p in
  ignore (Builder.call b guard_write [ p; Ir.Const 8 ]);
  Builder.store b (Builder.add b v (Ir.Const 1)) ~ptr:p;
  Builder.ret b None;
  Verifier.check_module m;
  let r = Elide.run ~object_size:4096 m in
  Alcotest.(check int) "upgrade happened" 1 r.Elide.upgraded;
  Alcotest.(check int) "write guard elided" 1 r.Elide.elided_same;
  Alcotest.(check int) "one guard left" 1 (count_guards m);
  let f = Ir.find_func m "main" in
  let surviving_is_write =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; _ } -> callee = guard_write
            | _ -> false)
          b.instrs)
      f.blocks
  in
  Alcotest.(check bool) "survivor is a write guard" true surviving_is_write;
  Coverage.enforce m;
  Coverage.enforce_witnesses m r.Elide.elisions

let test_elide_congruent_widening () =
  (* guards on two fields of one struct (same base, constant offsets):
     the first widens to span both, the second is deleted *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.load b p);
  let field1 = Builder.gep b p ~index:(Ir.Const 1) ~scale:8 () in
  ignore (Builder.call b guard_read [ field1; Ir.Const 8 ]);
  ignore (Builder.load b field1);
  Builder.ret b None;
  Verifier.check_module m;
  let r = Elide.run ~object_size:4096 m in
  Alcotest.(check int) "widened" 1 r.Elide.widened;
  Alcotest.(check int) "congruent elision" 1 r.Elide.elided_congruent;
  Alcotest.(check int) "one guard left" 1 (count_guards m);
  (* the surviving guard spans both fields *)
  let f = Ir.find_func m "main" in
  let sixteen =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; args = [ _; Ir.Const 16 ] } ->
                callee = guard_read
            | _ -> false)
          b.instrs)
      f.blocks
  in
  Alcotest.(check bool) "survivor widened to 16 bytes" true sixteen;
  Coverage.enforce m;
  Coverage.enforce_witnesses m r.Elide.elisions

let test_elide_hoists_invariant_guard () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  let sums =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 100)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:_ ~accs ->
        ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
        let v = Builder.load b p in
        [ Builder.add b (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd sums));
  Verifier.check_module m;
  let r = Elide.run ~object_size:4096 m in
  Alcotest.(check int) "hoisted" 1 r.Elide.hoisted;
  Alcotest.(check int) "one guard total" 1 (count_guards m);
  (* the loop body no longer contains the guard *)
  let f = Ir.find_func m "main" in
  let li = Loops.analyze f in
  let loop = List.hd (Loops.loops li) in
  let body_guards =
    List.fold_left
      (fun acc lbl ->
        let blk = Ir.find_block f lbl in
        List.fold_left
          (fun acc (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; _ } when callee = guard_read -> acc + 1
            | _ -> acc)
          acc blk.instrs)
      0 loop.Loops.body
  in
  Alcotest.(check int) "loop body guard-free" 0 body_guards;
  Coverage.enforce m;
  Coverage.enforce_witnesses m r.Elide.elisions

(* -- loop-range elision, end to end through the pipeline --------------- *)

let two_pass_program () =
  (* write arr[i] in one counted loop, read it back in a second: the
     second loop's guards are covered by the first loop's range fact *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let n = 200 in
  let arr = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  Builder.for_loop b ~hint:"fill" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b iv ->
      Builder.store b iv ~ptr:(Builder.gep b arr ~index:iv ~scale:8 ()));
  let sums =
    Builder.for_loop_acc b ~hint:"sum" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv ~accs ->
        let v = Builder.load b (Builder.gep b arr ~index:iv ~scale:8 ()) in
        [ Builder.add b (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd sums));
  Verifier.check_module m;
  m

let run_pipeline_and_interp ~elide m =
  let report =
    Trackfm.Pipeline.run
      { Trackfm.Pipeline.default_config with chunk_mode = `Off; elide }
      m
  in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:(64 * 4096)
  in
  let res = Interp.run (Backend.trackfm rt store) m ~entry:"main" in
  (res.Interp.ret, Clock.get clock "tfm.fast_guards" + Clock.get clock "tfm.slow_guards", report)

let test_elide_range_across_loops () =
  let plain_ret, plain_guards, _ =
    run_pipeline_and_interp ~elide:false (two_pass_program ())
  in
  let opt_ret, opt_guards, report =
    run_pipeline_and_interp ~elide:true (two_pass_program ())
  in
  Alcotest.(check int) "results identical" plain_ret opt_ret;
  Alcotest.(check bool) "range elision fired" true
    (report.Trackfm.Pipeline.elision.Elide.elided_range >= 1);
  Alcotest.(check bool) "dynamic guards reduced" true
    (opt_guards < plain_guards)

(* -- witness independence: tampering is caught ------------------------- *)

let test_witness_recheck_rejects_tampering () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.load b p);
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.load b p);
  Builder.ret b None;
  let r = Elide.run ~object_size:4096 m in
  Alcotest.(check int) "elided" 1 (Elide.total_elided r);
  (* now delete the surviving witness guard behind the optimizer's back *)
  let f = Ir.find_func m "main" in
  List.iter
    (fun (blk : Ir.block) ->
      blk.instrs <-
        List.filter
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; _ } -> callee <> guard_read
            | _ -> true)
          blk.instrs)
    f.blocks;
  Alcotest.(check bool) "witness re-check fails" true
    (Coverage.check_witnesses m r.Elide.elisions <> []);
  Alcotest.(check bool) "coverage fails too" true
    (Coverage.check_module m <> [])

(* -- interprocedural summaries: cross-call elision and tampering ------- *)

(* main: guard p; load p; call helper(); guard p; load p.
   [mk_helper] controls whether the helper really preserves custody. *)
let cross_call_module ~helper_stores =
  let m = Ir.create_module () in
  let bh = Builder.create m ~name:"helper" ~nparams:1 in
  if helper_stores then begin
    ignore (Builder.call bh guard_write [ Builder.arg 0; Ir.Const 8 ]);
    Builder.store bh (Ir.Const 1) ~ptr:(Builder.arg 0)
  end;
  Builder.ret bh (Some (Builder.add bh (Builder.arg 0) (Ir.Const 1)));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  ignore (Builder.load b p);
  ignore (Builder.call b "helper" [ p ]);
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  let v = Builder.load b p in
  Builder.ret b (Some v);
  Verifier.check_module m;
  m

let test_cross_call_elision_needs_summaries () =
  (* without summaries the call conservatively clobbers custody and the
     second guard must stay; with summaries the pure helper is proven
     custody-preserving and the guard is elided *)
  let m1 = cross_call_module ~helper_stores:false in
  let r1 = Elide.run ~object_size:4096 m1 in
  Alcotest.(check int) "no elision without summaries" 0 (Elide.total_elided r1);
  let m2 = cross_call_module ~helper_stores:false in
  let env = Tfm_analysis.Summary.compute m2 in
  let r2 = Elide.run ~summaries:env ~object_size:4096 m2 in
  Alcotest.(check int) "cross-call elision with summaries" 1
    (Elide.total_elided r2);
  Alcotest.(check int) "one guard left" 1 (count_guards m2);
  (* the final independent checks accept the result *)
  Coverage.enforce m2;
  Coverage.enforce_witnesses m2 r2.Elide.elisions

let test_cross_call_elision_respects_impure_helper () =
  (* the helper stores through its argument: even with summaries the
     call clobbers custody and nothing may be elided *)
  let m = cross_call_module ~helper_stores:true in
  let env = Tfm_analysis.Summary.compute m in
  let r = Elide.run ~summaries:env ~object_size:4096 m in
  Alcotest.(check int) "no elision across impure call" 0
    (Elide.total_elided r);
  Coverage.enforce m

let test_checker_catches_tampered_summary () =
  (* inject a deliberately wrong summary (the storing helper declared
     custody-safe): the elider trusts it and removes the second guard,
     but the module checker and the witness re-check — both recomputing
     the call-clobber relation independently — must refuse the result *)
  let m = cross_call_module ~helper_stores:true in
  let env = Tfm_analysis.Summary.compute m in
  Tfm_analysis.Summary.set env "helper"
    {
      Tfm_analysis.Summary.ret = Tfm_analysis.Summary.Pnone;
      escapes = [| false |];
      eff =
        {
          Tfm_analysis.Summary.reads_heap = false;
          writes_heap = false;
          allocs = false;
          frees = false;
          calls_unknown = false;
        };
      custody_safe = true;
    };
  let r = Elide.run ~summaries:env ~object_size:4096 m in
  Alcotest.(check int) "lying summary lets the elider fire" 1
    (Elide.total_elided r);
  Alcotest.(check bool) "honest coverage check refuses the module" true
    (Coverage.check_module m <> []);
  Alcotest.(check bool) "independent witness re-check refuses the elision"
    true
    (Coverage.check_witnesses m r.Elide.elisions <> []);
  Alcotest.check_raises "enforce raises Unsound"
    (Coverage.Unsound
       (List.map Coverage.violation_to_string (Coverage.check_module m)))
    (fun () -> Coverage.enforce m)

let test_coverage_diagnostics_name_function () =
  (* the violation string names the enclosing function, not just the
     block — multi-function modules are otherwise undebuggable *)
  let m = Ir.create_module () in
  let bh = Builder.create m ~name:"inner_helper" ~nparams:1 in
  ignore (Builder.load bh (Builder.arg 0));
  Builder.ret bh None;
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b "inner_helper" [ p ]);
  Builder.ret b None;
  Verifier.check_module m;
  match Coverage.check_module m with
  | [ viol ] ->
      let s = Coverage.violation_to_string viol in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "names the function" true
        (contains s "inner_helper")
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* -- hybrid routing: exactly-one-mechanism and witness tampering ------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let has_err needle errs = List.exists (fun e -> contains e needle) errs

let test_routing_double_protection_flagged () =
  (* custody from a guard AND an adjacent page call: the checker must
     refuse the double protection and name the smuggled page call *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b guard_read [ p; Ir.Const 8 ]);
  let page = Builder.call b Intrinsics.page_read [ p; Ir.Const 8 ] in
  let v = Builder.load b p in
  Builder.ret b (Some v);
  Verifier.check_module m;
  let load_id = match v with Ir.Reg id -> id | _ -> assert false in
  let page_id = match page with Ir.Reg id -> id | _ -> assert false in
  match Coverage.check_module m with
  | [ viol ] ->
      Alcotest.(check int) "offending access" load_id viol.Coverage.instr;
      Alcotest.(check bool) "flaw is Double naming the page call" true
        (viol.Coverage.flaw = Coverage.Double page_id);
      Alcotest.(check bool) "diagnostic names the site" true
        (contains (Coverage.violation_to_string viol) "main")
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_routing_neither_mechanism_flagged () =
  (* a page call on the wrong pointer is no protection at all: the
     adjacent access is covered by neither mechanism *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  let q = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.call b Intrinsics.page_read [ q; Ir.Const 8 ]);
  let v = Builder.load b p in
  Builder.ret b (Some v);
  Verifier.check_module m;
  let load_id = match v with Ir.Reg id -> id | _ -> assert false in
  match Coverage.check_module m with
  | [ viol ] ->
      Alcotest.(check int) "offending access" load_id viol.Coverage.instr;
      Alcotest.(check bool) "flaw is Gap" true
        (viol.Coverage.flaw = Coverage.Gap)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_routing_witness_recheck_rejects_tampering () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  let malloc_id = match p with Ir.Reg id -> id | _ -> assert false in
  let page = Builder.call b Intrinsics.page_read [ p; Ir.Const 8 ] in
  let v = Builder.load b p in
  Builder.ret b (Some v);
  Verifier.check_module m;
  let load_id = match v with Ir.Reg id -> id | _ -> assert false in
  let page_id = match page with Ir.Reg id -> id | _ -> assert false in
  let good =
    { Coverage.routed_access = load_id; page_call = page_id; cls = "test" }
  in
  Alcotest.(check int) "well-routed module is clean" 0
    (List.length (Coverage.check_module m));
  Alcotest.(check (list string)) "honest witness re-proves" []
    (Coverage.check_routing m [ ("main", good) ]);
  (* a page call the witness list does not own is smuggled code *)
  Alcotest.(check bool) "unowned page call rejected" true
    (has_err "stray page call" (Coverage.check_routing m []));
  (* a witness pointing at a non-page instruction is a forgery *)
  Alcotest.(check bool) "forged page-call id rejected" true
    (has_err "not a page call"
       (Coverage.check_routing m
          [ ("main", { good with Coverage.page_call = malloc_id }) ]));
  (* two witnesses cannot share one page call *)
  Alcotest.(check bool) "double-claimed page call rejected" true
    (has_err "claimed by two"
       (Coverage.check_routing m [ ("main", good); ("main", good) ]))

let test_routing_flavor_tampering_caught () =
  (* downgrading a page_write to page_read behind the pass's back must
     fail both the witness re-proof and the coverage check *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  let page = Builder.call b Intrinsics.page_write [ p; Ir.Const 8 ] in
  Builder.store b (Ir.Const 7) ~ptr:p;
  Builder.ret b None;
  Verifier.check_module m;
  let page_id = match page with Ir.Reg id -> id | _ -> assert false in
  let f = Ir.find_func m "main" in
  let store_id =
    List.concat_map (fun (blk : Ir.block) -> blk.Ir.instrs) f.Ir.blocks
    |> List.filter_map (fun (i : Ir.instr) ->
           match i.Ir.kind with Ir.Store _ -> Some i.Ir.id | _ -> None)
    |> List.hd
  in
  let w =
    { Coverage.routed_access = store_id; page_call = page_id; cls = "test" }
  in
  Alcotest.(check (list string)) "write-flavored routing re-proves" []
    (Coverage.check_routing m [ ("main", w) ]);
  (* tamper: rewrite the call to the read flavor in the IR *)
  List.iter
    (fun (blk : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Call { callee; args } when callee = Intrinsics.page_write ->
              i.Ir.kind <- Ir.Call { callee = Intrinsics.page_read; args }
          | _ -> ())
        blk.Ir.instrs)
    f.Ir.blocks;
  Alcotest.(check bool) "witness re-proof fails" true
    (has_err "cannot cover a store" (Coverage.check_routing m [ ("main", w) ]));
  Alcotest.(check bool) "coverage check fails too" true
    (Coverage.check_module m <> [])

(* -- shape-fact independence ------------------------------------------ *)

let test_lying_shape_caught_by_shadow_not_checker () =
  (* The helper loads a freshly allocated, never-chased pointer: honest
     shape facts leave its site unrouted. Inject a lying calling context
     claiming a deep chain: the route pass trusts it and moves the site
     to the page path. The structural checker and the routing-witness
     re-proof must still accept the module — they never read shape facts
     and the rewrite is mechanically sound — while the dynamic shadow
     audit observes depth 0 at the site and reports the mismatch. *)
  let m = Ir.create_module () in
  let bh = Builder.create m ~name:"peek" ~nparams:1 in
  let hload = Builder.load bh (Builder.arg 0) in
  Builder.ret bh (Some hload);
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arena = Builder.call b "malloc" [ Ir.Const 64 ] in
  Builder.store b (Ir.Const 5) ~ptr:arena;
  let acc =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:_ ~accs ->
        [ Builder.add b (List.hd accs) (Builder.call b "peek" [ arena ]) ])
  in
  Builder.ret b (Some (List.hd acc));
  Verifier.check_module m;
  let load_id = match hload with Ir.Reg id -> id | _ -> assert false in
  ignore (Trackfm.Init_pass.run m);
  ignore (Trackfm.Libc_pass.run m);
  let summaries = Tfm_analysis.Summary.compute m in
  ignore (Trackfm.Guard_pass.run ~summaries m);
  let shapes = Tfm_analysis.Shape.analyze m in
  let honest =
    Trackfm.Route_pass.run ~summaries ~shapes ~mode:`Static m
  in
  Alcotest.(check int) "honest shape facts route nothing" 0
    honest.Trackfm.Route_pass.routed;
  Tfm_analysis.Shape.set_context shapes "peek"
    { Tfm_analysis.Shape.arg_depth = [| 3 |]; arg_struct = [| Tfm_analysis.Shape.Gtop |] };
  let lied = Trackfm.Route_pass.run ~summaries ~shapes ~mode:`Static m in
  Alcotest.(check int) "the lie routes the helper site" 1
    lied.Trackfm.Route_pass.routed;
  (* checker independence: both re-proofs accept the misrouted module *)
  Coverage.enforce m;
  Alcotest.(check (list string)) "routing witnesses re-prove" []
    (Coverage.check_routing m lied.Trackfm.Route_pass.routes);
  (* the dynamic audit is what catches it *)
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:65_536
  in
  let sh = Shadow.create () in
  let r = Interp.run ~shadow:sh (Backend.trackfm rt store) m ~entry:"main" in
  Alcotest.(check int) "misrouted program still computes correctly" 20
    r.Interp.ret;
  (match
     Shadow.check sh ~func:"peek" ~instr:load_id ~cls:"pointer-chase"
   with
  | Shadow.Mismatch _ -> ()
  | Shadow.Confirmed | Shadow.Unchecked ->
      Alcotest.fail "shadow audit failed to catch the lying shape facts");
  (* and the honest class for the same record would have been accepted *)
  match Shadow.check sh ~func:"peek" ~instr:load_id ~cls:"unknown" with
  | Shadow.Unchecked | Shadow.Confirmed -> ()
  | Shadow.Mismatch e -> Alcotest.fail ("honest class rejected: " ^ e)

(* -- guard pass report invariant --------------------------------------- *)

let test_guard_report_invariant () =
  let builds =
    [
      ("stream-sum", fun () -> Workloads.Stream.build ~n:2_000 ~kernel:Workloads.Stream.Sum ());
      ("stream-copy", fun () -> Workloads.Stream.build ~n:2_000 ~kernel:Workloads.Stream.Copy ());
      ( "kmeans",
        fun () ->
          Workloads.Kmeans.build (Workloads.Kmeans.default_params ~n:500) () );
      ( "analytics",
        fun () ->
          Workloads.Analytics.build
            (Workloads.Analytics.default_params ~rows:500)
            () );
    ]
  in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun mode ->
          let m = build () in
          ignore (Trackfm.Init_pass.run m);
          let chunks =
            Trackfm.Chunk_pass.run Cost_model.default ~object_size:4096 ~mode m
          in
          let total =
            List.fold_left
              (fun acc f ->
                acc + List.length (Trackfm.Guard_pass.all_accesses f))
              0 m.Ir.funcs
          in
          let r = Trackfm.Guard_pass.run ~exclude:chunks.Trackfm.Chunk_pass.covered m in
          let sum =
            r.Trackfm.Guard_pass.guarded_loads
            + r.Trackfm.Guard_pass.guarded_stores
            + r.Trackfm.Guard_pass.skipped_non_heap
            + r.Trackfm.Guard_pass.skipped_chunked
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: report buckets partition the accesses" name)
            total sum)
        [ `Off; `Gated; `All ])
    builds

let suite =
  ( "checker",
    [
      Alcotest.test_case "flags missing guard" `Quick
        test_checker_flags_missing_guard;
      Alcotest.test_case "flags wrong-pointer guard" `Quick
        test_checker_flags_wrong_pointer_guard;
      Alcotest.test_case "flags guard killed by call" `Quick
        test_checker_flags_guard_killed_by_call;
      Alcotest.test_case "accepts guarded access" `Quick
        test_checker_accepts_guarded_access;
      Alcotest.test_case "verifier rejects malformed intrinsics" `Quick
        test_verifier_rejects_malformed_intrinsics;
      Alcotest.test_case "verifier accepts well-formed intrinsics" `Quick
        test_verifier_accepts_wellformed_intrinsics;
      Alcotest.test_case "elide same pointer" `Quick test_elide_same_pointer;
      Alcotest.test_case "elide RMW upgrade" `Quick test_elide_rmw_upgrade;
      Alcotest.test_case "elide congruent widening" `Quick
        test_elide_congruent_widening;
      Alcotest.test_case "elide hoists invariant guard" `Quick
        test_elide_hoists_invariant_guard;
      Alcotest.test_case "range elision across loops" `Quick
        test_elide_range_across_loops;
      Alcotest.test_case "witness re-check rejects tampering" `Quick
        test_witness_recheck_rejects_tampering;
      Alcotest.test_case "guard report invariant" `Quick
        test_guard_report_invariant;
      Alcotest.test_case "lying shape facts caught by shadow, not checker"
        `Quick test_lying_shape_caught_by_shadow_not_checker;
      Alcotest.test_case "cross-call elision needs summaries" `Quick
        test_cross_call_elision_needs_summaries;
      Alcotest.test_case "cross-call elision respects impure helper" `Quick
        test_cross_call_elision_respects_impure_helper;
      Alcotest.test_case "checker catches tampered summary" `Quick
        test_checker_catches_tampered_summary;
      Alcotest.test_case "coverage diagnostics name function" `Quick
        test_coverage_diagnostics_name_function;
      Alcotest.test_case "routing: double protection flagged" `Quick
        test_routing_double_protection_flagged;
      Alcotest.test_case "routing: neither mechanism flagged" `Quick
        test_routing_neither_mechanism_flagged;
      Alcotest.test_case "routing: witness tampering rejected" `Quick
        test_routing_witness_recheck_rejects_tampering;
      Alcotest.test_case "routing: flavor tampering caught" `Quick
        test_routing_flavor_tampering_caught;
    ] )
