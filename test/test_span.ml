(* Tests for the causal span tracker (PR-6): lifecycle and frame nesting
   across Shenango context switches, spans crossing the Net retry ladder
   and a cluster failover, the sums-to-wall-clock invariant, and the
   determinism of the flight-recorder dump under a fixed fault seed. *)

let cost = Cost_model.default

let counter clock name =
  match List.assoc_opt name (Clock.counters clock) with
  | Some v -> v
  | None -> 0

let cat_of st c =
  st.Telemetry.Span.cat_totals.(Telemetry.Span.cat_index c)

let sum_cats st = Array.fold_left ( + ) 0 st.Telemetry.Span.cat_totals

(* Every class's category decomposition must sum exactly to its
   wall-clock total — the tracker's core invariant, asserted wherever a
   test gets its hands on a tracker. *)
let check_invariant sp =
  Alcotest.(check int) "no violations" 0 (Telemetry.Span.violations sp);
  Alcotest.(check string) "no violation note" ""
    (Telemetry.Span.violation_note sp);
  List.iter
    (fun (cls, st) ->
      Alcotest.(check int)
        (Printf.sprintf "class %d cats sum to wall" cls)
        (Telemetry.Histogram.total st.Telemetry.Span.wall_hist)
        (sum_cats st))
    (Telemetry.Span.classes sp)

(* -- lifecycle across scheduler context switches ------------------------- *)

let test_spans_across_scheduler () =
  let sched = Shenango.Sched.create () in
  let sp =
    Telemetry.Span.create
      ~classes:[ (0, "a"); (1, "b") ]
      ~now:(fun () -> Shenango.Sched.time sched)
      ()
  in
  Shenango.Sched.set_switch_hooks sched
    (Some
       {
         Shenango.Sched.save = (fun () -> Telemetry.Span.save sp);
         restore =
           (fun ~token ~queued -> Telemetry.Span.restore sp token ~queued);
       });
  (* Single core, two tasks:
       A: work 100; [guard_slow: block 50]; work 100
       B: work 80; block 30; work 40
     Timeline: A runs 0-100, blocks to 150; B runs 100-180; A is queued
     150-180 (inside its still-open guard frame), resumes 180-280; B is
     queued 210-280, resumes 280-320. *)
  Shenango.Sched.spawn sched (fun () ->
      Telemetry.Span.op_begin sp ~cls:0;
      Shenango.Sched.work 100;
      Telemetry.Span.enter sp Telemetry.Span.Guard_slow;
      Shenango.Sched.block 50;
      Telemetry.Span.exit sp;
      Shenango.Sched.work 100;
      Telemetry.Span.op_end sp);
  Shenango.Sched.spawn sched (fun () ->
      Telemetry.Span.op_begin sp ~cls:1;
      Shenango.Sched.work 80;
      Shenango.Sched.block 30;
      Shenango.Sched.work 40;
      Telemetry.Span.op_end sp);
  let total = Shenango.Sched.run sched in
  Alcotest.(check int) "completion time" 320 total;
  Alcotest.(check int) "both spans closed" 2 (Telemetry.Span.spans_closed sp);
  check_invariant sp;
  (match List.assoc_opt 0 (Telemetry.Span.classes sp) with
  | None -> Alcotest.fail "class 0 missing"
  | Some st ->
      Alcotest.(check int) "A wall" 280
        (Telemetry.Histogram.total st.Telemetry.Span.wall_hist);
      (* The guard frame stayed open across save/restore: the block is
         its exclusive time, the ready-but-waiting stretch is queueing,
         not guard time. *)
      Alcotest.(check int) "A guard_slow = block" 50
        (cat_of st Telemetry.Span.Guard_slow);
      Alcotest.(check int) "A queueing" 30 (cat_of st Telemetry.Span.Queueing);
      Alcotest.(check int) "A compute" 200
        (cat_of st Telemetry.Span.Compute));
  match List.assoc_opt 1 (Telemetry.Span.classes sp) with
  | None -> Alcotest.fail "class 1 missing"
  | Some st ->
      Alcotest.(check int) "B wall" 220
        (Telemetry.Histogram.total st.Telemetry.Span.wall_hist);
      Alcotest.(check int) "B queueing" 70 (cat_of st Telemetry.Span.Queueing);
      (* B's block is not inside any frame: it stays compute. *)
      Alcotest.(check int) "B compute" 150 (cat_of st Telemetry.Span.Compute)

(* -- spans crossing the Net retry ladder --------------------------------- *)

let flaky = { Faults.off with Faults.drop = 0.5 }

let retry_run ~flight_path () =
  let clock = Clock.create () in
  let sink =
    Telemetry.Sink.recording ~trace:false ~series_interval:0 ~spans:true
      ~op_classes:[ (0, "fetch") ] clock
  in
  Telemetry.Sink.set_flight_recorder sink ~path:flight_path
    ~meta:[ ("workload", Telemetry.Json.String "unit") ];
  let net = Net.create ~faults:(Faults.create ~seed:11 flaky) cost clock Tcp in
  Telemetry.Sink.attach_net sink net;
  for _ = 1 to 20 do
    Telemetry.Sink.op_begin sink ~cls:0;
    Net.fetch net ~bytes:4096;
    Telemetry.Sink.op_end sink
  done;
  (clock, sink)

let test_span_crosses_retry_ladder () =
  let flight_path = Filename.temp_file "tfm-flight" ".json" in
  let clock, sink = retry_run ~flight_path () in
  Alcotest.(check bool) "fault schedule produced retries" true
    (counter clock "net.retries" > 0);
  let sp = Option.get (Telemetry.Sink.spans sink) in
  check_invariant sp;
  (match List.assoc_opt 0 (Telemetry.Span.classes sp) with
  | None -> Alcotest.fail "class 0 missing"
  | Some st ->
      Alcotest.(check int) "all fetches spanned" 20 st.Telemetry.Span.ops;
      Alcotest.(check bool) "retry cycles attributed" true
        (cat_of st Telemetry.Span.Retry > 0);
      (* Backoff is fault-path time, not fetch time: the retry share
         must not swallow the whole span. *)
      Alcotest.(check bool) "compute (wire) cycles remain" true
        (cat_of st Telemetry.Span.Compute > 0));
  (* The first retry armed and fired the flight recorder. *)
  Alcotest.(check (option string)) "flight recorder fired"
    (Some flight_path)
    (Telemetry.Sink.flight_dumped sink);
  Sys.remove flight_path

(* -- spans crossing a cluster failover ----------------------------------- *)

let test_span_crosses_failover () =
  let clock = Clock.create () in
  let store = Memstore.create () in
  let cluster =
    Cluster.create ~seed:7 ~clock ~store ~replicas:1 ~ack:1
      ~crash_period:1_000_000 ~crash_downtime:300_000 ~corrupt:0.0 ()
  in
  let sink =
    Telemetry.Sink.recording ~trace:false ~series_interval:0 ~spans:true
      ~op_classes:[ (0, "get") ] clock
  in
  let net = Net.create ~cluster cost clock Tcp in
  Telemetry.Sink.attach_net sink net;
  let key = 8192 in
  Memstore.store64 store ~addr:key 42L;
  Memstore.store64 store ~addr:(key + 8) 43L;
  Net.writeback_object net ~key ~bytes:16;
  (* Walk the clock into the sole node's first crash window: the copy is
     wiped, the replica ladder comes up empty and the loss declaration
     (a Failover-scoped round trip) lands inside the open span. *)
  (match Cluster.crash_window cluster ~node:0 0 with
  | None -> Alcotest.fail "crash schedule empty"
  | Some (start, _) ->
      Clock.tick clock (start + 1 - Clock.monotonic clock));
  Telemetry.Sink.op_begin sink ~cls:0;
  Net.fetch_object net ~key ~bytes:16;
  Telemetry.Sink.op_end sink;
  Alcotest.(check int) "object lost" 1 (counter clock "net.lost_objects");
  let sp = Option.get (Telemetry.Sink.spans sink) in
  check_invariant sp;
  match List.assoc_opt 0 (Telemetry.Span.classes sp) with
  | None -> Alcotest.fail "class 0 missing"
  | Some st ->
      Alcotest.(check bool) "failover cycles attributed" true
        (cat_of st Telemetry.Span.Failover > 0)

(* -- end to end: intrinsics through the interpreter ---------------------- *)

let test_workload_spans_end_to_end () =
  let p = Workloads.Hashmap.default_params ~keys:3_000 ~lookups:4_000 in
  let blobs = [ (0, Workloads.Hashmap.trace_blob p) ] in
  let ws = Workloads.Hashmap.working_set_bytes p in
  let sink = ref Telemetry.Sink.nop in
  let telemetry clock =
    let s =
      Telemetry.Sink.recording ~trace:false ~series_interval:0 ~spans:true
        ~op_classes:Workloads.Hashmap.op_classes clock
    in
    sink := s;
    s
  in
  let opts = Workloads.Driver.tfm_defaults ~local_budget:(max 65536 (ws / 4)) in
  let o, _ =
    Workloads.Driver.run_trackfm ~blobs ~telemetry
      (fun () -> Workloads.Hashmap.build p ())
      opts
  in
  Alcotest.(check int) "checksum" (Workloads.Hashmap.checksum p)
    o.Workloads.Driver.ret;
  let sp = Option.get (Telemetry.Sink.spans !sink) in
  check_invariant sp;
  match List.assoc_opt 0 (Telemetry.Span.classes sp) with
  | None -> Alcotest.fail "lookup class missing"
  | Some st ->
      (* One span per !op_begin/!op_end pair: exactly the lookup count. *)
      Alcotest.(check int) "one span per lookup" p.Workloads.Hashmap.lookups
        st.Telemetry.Span.ops;
      Alcotest.(check bool) "guard slow path attributed" true
        (cat_of st Telemetry.Span.Guard_slow > 0)

(* -- flight recorder determinism ----------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_flight_recorder_deterministic () =
  let dump () =
    let path = Filename.temp_file "tfm-flight" ".json" in
    let _, sink = retry_run ~flight_path:path () in
    Alcotest.(check bool) "dumped" true
      (Telemetry.Sink.flight_dumped sink <> None);
    let s = read_file path in
    Sys.remove path;
    s
  in
  let a = dump () and b = dump () in
  Alcotest.(check bool) "dump is non-trivial" true (String.length a > 100);
  Alcotest.(check bool) "byte-identical across runs" true (a = b)

let suite =
  ( "span",
    [
      Alcotest.test_case "spans across scheduler switches" `Quick
        test_spans_across_scheduler;
      Alcotest.test_case "span crosses retry ladder" `Quick
        test_span_crosses_retry_ladder;
      Alcotest.test_case "span crosses cluster failover" `Quick
        test_span_crosses_failover;
      Alcotest.test_case "workload spans end to end" `Quick
        test_workload_spans_end_to_end;
      Alcotest.test_case "flight recorder deterministic" `Quick
        test_flight_recorder_deterministic;
    ] )
