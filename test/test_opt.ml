(* Tests for the O1 pre-optimization pipeline. *)

let run_main m =
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  (Interp.run backend m ~entry:"main").Interp.ret

let test_constant_fold () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let x = Builder.add b (Ir.Const 2) (Ir.Const 3) in
  let y = Builder.mul b x (Ir.Const 4) in
  Builder.ret b (Some y);
  let f = Ir.find_func m "main" in
  let n1 = Tfm_opt.Opt.constant_fold f in
  Alcotest.(check bool) "folded something" true (n1 > 0);
  (* after one round the mul's operand is Const 5; fold again *)
  ignore (Tfm_opt.Opt.constant_fold f);
  ignore (Tfm_opt.Opt.dce f);
  Alcotest.(check int) "result preserved" 20 (run_main m)

let test_fold_select_and_cmp () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let c = Builder.icmp b Ir.Lt (Ir.Const 1) (Ir.Const 2) in
  let v = Builder.select b c (Ir.Const 10) (Ir.Const 20) in
  Builder.ret b (Some v);
  ignore (Tfm_opt.Opt.run_o1 m);
  Alcotest.(check int) "selected then" 10 (run_main m)

let test_cse_loads_same_block () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  Builder.store b (Ir.Const 7) ~ptr:p;
  let v1 = Builder.load b p in
  let v2 = Builder.load b p in
  let v3 = Builder.load b p in
  let s = Builder.add b (Builder.add b v1 v2) v3 in
  Builder.ret b (Some s);
  let f = Ir.find_func m "main" in
  let loads_before =
    List.length
      (List.concat_map
         (fun (blk : Ir.block) ->
           List.filter
             (fun (i : Ir.instr) ->
               match i.kind with Ir.Load _ -> true | _ -> false)
             blk.instrs)
         f.blocks)
  in
  Alcotest.(check int) "3 loads before" 3 loads_before;
  ignore (Tfm_opt.Opt.run_o1 m);
  let loads_after =
    List.length
      (List.concat_map
         (fun (blk : Ir.block) ->
           List.filter
             (fun (i : Ir.instr) ->
               match i.kind with Ir.Load _ -> true | _ -> false)
             blk.instrs)
         f.blocks)
  in
  Alcotest.(check int) "1 load after" 1 loads_after;
  Alcotest.(check int) "result preserved" 21 (run_main m)

let test_cse_killed_by_store () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  Builder.store b (Ir.Const 1) ~ptr:p;
  let v1 = Builder.load b p in
  Builder.store b (Ir.Const 2) ~ptr:p;
  let v2 = Builder.load b p in
  Builder.ret b (Some (Builder.add b v1 v2));
  ignore (Tfm_opt.Opt.run_o1 m);
  (* v2 must NOT be replaced by v1 across the intervening store *)
  Alcotest.(check int) "loads not merged across store" 3 (run_main m)

let test_dce_removes_dead_loads () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  ignore (Builder.load b p);
  ignore (Builder.load b (Builder.gep b p ~index:(Ir.Const 2) ~scale:8 ()));
  Builder.ret b (Some (Ir.Const 5));
  let f = Ir.find_func m "main" in
  let removed = Tfm_opt.Opt.dce f in
  Alcotest.(check bool) "dead loads and gep removed" true (removed >= 2);
  Alcotest.(check int) "result preserved" 5 (run_main m)

let test_dce_keeps_stores_and_calls () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  Builder.store b (Ir.Const 9) ~ptr:p;
  Builder.ret b (Some (Builder.load b p));
  ignore (Tfm_opt.Opt.run_o1 m);
  Alcotest.(check int) "store survives" 9 (run_main m)

let test_o1_reduces_ft_guards () =
  (* The Figure 17b experiment in miniature: O1 cuts the memory
     instructions of the redundant FT kernel substantially. *)
  let p = { Workloads.Nas.kernel = Workloads.Nas.FT; scale = 1 } in
  let count_mem m =
    List.fold_left
      (fun acc (f : Ir.func) ->
        List.fold_left
          (fun acc (b : Ir.block) ->
            List.fold_left
              (fun acc (i : Ir.instr) ->
                match i.kind with
                | Ir.Load _ | Ir.Store _ -> acc + 1
                | _ -> acc)
              acc b.instrs)
          acc f.blocks)
      0 m.Ir.funcs
  in
  let m = Workloads.Nas.build p () in
  let before = count_mem m in
  ignore (Tfm_opt.Opt.run_o1 m);
  let after = count_mem m in
  Alcotest.(check bool) "mem instrs reduced by >30%" true
    (after * 10 < before * 7);
  Alcotest.(check int) "semantics preserved" (Workloads.Nas.checksum p)
    (run_main m)

let prop_o1_preserves_stream_semantics =
  QCheck.Test.make ~name:"O1 preserves STREAM results" ~count:8
    QCheck.(pair (int_range 100 2000) (int_range 0 3))
    (fun (n, ki) ->
      let kernel =
        List.nth
          [ Workloads.Stream.Sum; Copy; Scale; Triad ]
          ki
      in
      let m = Workloads.Stream.build ~n ~kernel () in
      ignore (Tfm_opt.Opt.run_o1 m);
      run_main m = Workloads.Stream.checksum ~n ~kernel ())

let test_licm_hoists_invariant_load () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  Builder.store b (Ir.Const 5) ~ptr:p;
  let sums =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 100)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:_ ~accs ->
        (* the load address is loop-invariant and the loop has no stores *)
        let v = Builder.load b p in
        [ Builder.add b (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd sums));
  let f = Ir.find_func m "main" in
  let hoisted = Tfm_opt.Opt.licm f in
  Alcotest.(check bool) "hoisted the load" true (hoisted >= 1);
  Verifier.check_module m;
  Alcotest.(check int) "semantics preserved" 500 (run_main m);
  (* the loop body must no longer contain the load *)
  let loop_loads =
    List.concat_map
      (fun (blk : Ir.block) ->
        if blk.label = "entry" then []
        else
          List.filter
            (fun (i : Ir.instr) ->
              match i.kind with Ir.Load _ -> true | _ -> false)
            blk.instrs)
      f.blocks
  in
  Alcotest.(check int) "no loads left in loop" 0 (List.length loop_loads)

let test_licm_respects_stores () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  Builder.store b (Ir.Const 1) ~ptr:p;
  let sums =
    Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 5)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:_ ~accs ->
        (* load/store to the same invariant address: load must NOT move *)
        let v = Builder.load b p in
        Builder.store b (Builder.add b v v) ~ptr:p;
        [ Builder.add b (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd sums));
  ignore (Tfm_opt.Opt.licm (Ir.find_func m "main"));
  Verifier.check_module m;
  (* 1+2+4+8+16 = 31 *)
  Alcotest.(check int) "doubling chain preserved" 31 (run_main m)

let test_licm_reduces_guards () =
  (* the whole point: a hoisted load is a hoisted guard *)
  let build hoist () =
    let m = Ir.create_module () in
    let b = Builder.create m ~name:"main" ~nparams:0 in
    let p = Builder.call b "malloc" [ Ir.Const 64 ] in
    Builder.store b (Ir.Const 3) ~ptr:p;
    let sums =
      Builder.for_loop_acc b ~init:(Ir.Const 0) ~bound:(Ir.Const 1000)
        ~accs:[ Ir.Const 0 ]
        (fun b ~iv:_ ~accs ->
          let v = Builder.load b p in
          [ Builder.add b (List.hd accs) v ])
    in
    Builder.ret b (Some (List.hd sums));
    if hoist then ignore (Tfm_opt.Opt.run_o1 m);
    m
  in
  let guards ?(elide = false) hoist =
    let m = build hoist () in
    let r =
      Trackfm.Pipeline.run
        { Trackfm.Pipeline.default_config with chunk_mode = `Off; elide }
        m
    in
    ignore r;
    let clock = Clock.create () in
    let store = Memstore.create () in
    let rt =
      Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
        ~local_budget:65536
    in
    let res = Interp.run (Backend.trackfm rt store) m ~entry:"main" in
    Alcotest.(check int) "result" 3000 res.Interp.ret;
    Clock.get clock "tfm.fast_guards" + Clock.get clock "tfm.slow_guards"
  in
  let without = guards false and with_o1 = guards true in
  Alcotest.(check bool) "dynamic guards collapse" true (with_o1 < without / 100);
  (* guard hoisting reaches the same collapse with no O1 LICM at all: the
     in-loop guard on the invariant pointer moves to the preheader *)
  let with_elision = guards ~elide:true false in
  Alcotest.(check bool) "elision collapses guards too" true
    (with_elision < without / 100)



let test_simplify_cfg_folds_constant_branch () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let then_l = Builder.add_block b "t" in
  let else_l = Builder.add_block b "e" in
  Builder.cbr b (Ir.Const 1) then_l else_l;
  Builder.set_block b then_l;
  Builder.ret b (Some (Ir.Const 10));
  Builder.set_block b else_l;
  Builder.ret b (Some (Ir.Const 20));
  let f = Ir.find_func m "main" in
  let n = Tfm_opt.Opt.simplify_cfg f in
  Alcotest.(check bool) "changed" true (n > 0);
  Verifier.check_module m;
  Alcotest.(check int) "takes then branch" 10 (run_main m);
  (* the unreachable else block must be gone *)
  Alcotest.(check bool) "dead block removed" false
    (List.exists (fun (blk : Ir.block) -> blk.label = "e1") f.blocks
    && List.length f.blocks > 2)

let test_simplify_cfg_threads_empty_blocks () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let hop1 = Builder.add_block b "hop1" in
  let hop2 = Builder.add_block b "hop2" in
  let final_l = Builder.add_block b "final" in
  Builder.br b hop1;
  Builder.set_block b hop1;
  Builder.br b hop2;
  Builder.set_block b hop2;
  Builder.br b final_l;
  Builder.set_block b final_l;
  Builder.ret b (Some (Ir.Const 7));
  let f = Ir.find_func m "main" in
  let before = Ir.block_count f in
  (* run to fixpoint like O1 does *)
  while Tfm_opt.Opt.simplify_cfg f > 0 do
    ()
  done;
  Verifier.check_module m;
  Alcotest.(check bool) "blocks removed" true (Ir.block_count f < before);
  Alcotest.(check int) "result" 7 (run_main m)

let test_simplify_cfg_preserves_phis () =
  (* A loop's phi arms must stay consistent through simplification. *)
  let m = Workloads.Stream.build ~n:500 ~kernel:Workloads.Stream.Sum () in
  let f = Ir.find_func m "main" in
  while Tfm_opt.Opt.simplify_cfg f > 0 do
    ()
  done;
  Verifier.check_module m;
  Alcotest.(check int) "stream sum preserved"
    (Workloads.Stream.checksum ~n:500 ~kernel:Workloads.Stream.Sum ())
    (run_main m)


(* -- inlining -- *)

let helper_based_program () =
  let m = Ir.create_module () in
  (* get(ptr, i) = load ptr[i] *)
  let bg = Builder.create m ~name:"get_elem" ~nparams:2 in
  let ptr = Builder.gep bg (Builder.arg 0) ~index:(Builder.arg 1) ~scale:8 () in
  Builder.ret bg (Some (Builder.load bg ptr));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arr = Builder.call b "malloc" [ Ir.Const (1024 * 8) ] in
  Builder.for_loop b ~hint:"fill" ~init:(Ir.Const 0) ~bound:(Ir.Const 1024)
    (fun b i ->
      Builder.store b (Builder.binop b Ir.And i (Ir.Const 0xFF))
        ~ptr:(Builder.gep b arr ~index:i ~scale:8 ()));
  let sums =
    Builder.for_loop_acc b ~hint:"sum" ~init:(Ir.Const 0)
      ~bound:(Ir.Const 1024) ~accs:[ Ir.Const 0 ]
      (fun b ~iv:i ~accs ->
        let v = Builder.call b "get_elem" [ arr; i ] in
        [ Builder.binop b Ir.And
            (Builder.add b (List.hd accs) v)
            (Ir.Const 0x3FFFFFFF) ])
  in
  Builder.ret b (Some (List.hd sums));
  Verifier.check_module m;
  m

let helper_expected =
  let acc = ref 0 in
  for i = 0 to 1023 do
    acc := (!acc + (i land 0xFF)) land 0x3FFFFFFF
  done;
  !acc

let test_inline_preserves_semantics () =
  let m = helper_based_program () in
  let n = Tfm_opt.Inline.inline_calls m in
  Alcotest.(check bool) "inlined the helper call" true (n >= 1);
  Alcotest.(check int) "result preserved" helper_expected (run_main m)

let test_inline_enables_chunking () =
  (* Without inlining, the strided access hides in the callee and the
     chunk pass finds nothing; after inlining it chunks the loop — the
     whole-program-bitcode effect of the paper's WLLVM setup. *)
  let chunked inline =
    let m = helper_based_program () in
    if inline then ignore (Tfm_opt.Inline.inline_calls m);
    let report =
      Trackfm.Chunk_pass.run Cost_model.default ~object_size:4096 ~mode:`All m
    in
    List.length
      (List.filter
         (fun (c : Trackfm.Chunk_pass.candidate) ->
           c.Trackfm.Chunk_pass.func = "main" && c.Trackfm.Chunk_pass.selected
           && c.Trackfm.Chunk_pass.byte_stride = 8)
         report.Trackfm.Chunk_pass.candidates)
  in
  (* the fill loop is always chunkable; the sum loop only after inlining *)
  Alcotest.(check int) "before: only the fill loop" 1 (chunked false);
  Alcotest.(check int) "after: both loops" 2 (chunked true)

let test_inline_skips_recursive_and_alloca () =
  let m = Ir.create_module () in
  let br_ = Builder.create m ~name:"recur" ~nparams:1 in
  let r = Builder.call br_ "recur" [ Builder.arg 0 ] in
  Builder.ret br_ (Some r);
  let ba = Builder.create m ~name:"with_alloca" ~nparams:0 in
  let slot = Builder.alloca ba 8 in
  Builder.store ba (Ir.Const 3) ~ptr:slot;
  Builder.ret ba (Some (Builder.load ba slot));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let v = Builder.call b "with_alloca" [] in
  Builder.ret b (Some v);
  let n = Tfm_opt.Inline.inline_calls m in
  Alcotest.(check int) "nothing inlined" 0 n;
  Alcotest.(check int) "still correct" 3 (run_main m)

let test_inline_multiple_returns () =
  let m = Ir.create_module () in
  let bs = Builder.create m ~name:"sign" ~nparams:1 in
  let neg = Builder.add_block bs "neg" in
  let pos = Builder.add_block bs "pos" in
  Builder.cbr bs (Builder.icmp bs Ir.Lt (Builder.arg 0) (Ir.Const 0)) neg pos;
  Builder.set_block bs neg;
  Builder.ret bs (Some (Ir.Const (-1)));
  Builder.set_block bs pos;
  Builder.ret bs (Some (Ir.Const 1));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let a = Builder.call b "sign" [ Ir.Const (-5) ] in
  let c = Builder.call b "sign" [ Ir.Const 7 ] in
  Builder.ret b (Some (Builder.add b (Builder.mul b a (Ir.Const 10)) c));
  let n = Tfm_opt.Inline.inline_calls m in
  Alcotest.(check int) "both sites inlined" 2 n;
  Alcotest.(check int) "multi-return phi correct" (-9) (run_main m)


(* -- mem2reg -- *)

(* An -O0-style loop: the accumulator and IV both live in stack slots. *)
let o0_style_sum n =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arr = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  Builder.for_loop b ~hint:"fill" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      Builder.store b (Builder.binop b Ir.And i (Ir.Const 0x7F))
        ~ptr:(Builder.gep b arr ~index:i ~scale:8 ()));
  let acc_slot = Builder.alloca b 8 in
  let i_slot = Builder.alloca b 8 in
  Builder.store b (Ir.Const 0) ~ptr:acc_slot;
  Builder.store b (Ir.Const 0) ~ptr:i_slot;
  let header = Builder.add_block b "h" in
  let body = Builder.add_block b "b" in
  let exit_l = Builder.add_block b "x" in
  Builder.br b header;
  Builder.set_block b header;
  let i = Builder.load b i_slot in
  Builder.cbr b (Builder.icmp b Ir.Lt i (Ir.Const n)) body exit_l;
  Builder.set_block b body;
  let i' = Builder.load b i_slot in
  let v = Builder.load b (Builder.gep b arr ~index:i' ~scale:8 ()) in
  let acc = Builder.load b acc_slot in
  Builder.store b
    (Builder.binop b Ir.And (Builder.add b acc v) (Ir.Const 0x3FFFFFFF))
    ~ptr:acc_slot;
  Builder.store b (Builder.add b i' (Ir.Const 1)) ~ptr:i_slot;
  Builder.br b header;
  Builder.set_block b exit_l;
  Builder.ret b (Some (Builder.load b acc_slot));
  Verifier.check_module m;
  m

let o0_expected n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := (!acc + (i land 0x7F)) land 0x3FFFFFFF
  done;
  !acc

let test_mem2reg_promotes_and_preserves () =
  let n = 500 in
  let m = o0_style_sum n in
  let promoted = Tfm_opt.Mem2reg.run m in
  Alcotest.(check int) "two slots promoted" 2 promoted;
  Verifier.check_module m;
  Alcotest.(check int) "sum preserved" (o0_expected n) (run_main m);
  (* all promotable allocas must be gone *)
  let f = Ir.find_func m "main" in
  let allocas =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter
          (fun (i : Ir.instr) ->
            match i.kind with Ir.Alloca _ -> true | _ -> false)
          b.instrs)
      f.blocks
  in
  Alcotest.(check int) "no allocas left" 0 (List.length allocas)

let test_mem2reg_exposes_iv_for_chunking () =
  (* Before promotion the loop's IV is a memory cell: no induction
     variable, no chunking. After mem2reg the loop chunks. *)
  let n = 2048 in
  let candidates m =
    let report =
      Trackfm.Chunk_pass.run Cost_model.default ~object_size:4096 ~mode:`All m
    in
    List.length
      (List.filter
         (fun (c : Trackfm.Chunk_pass.candidate) -> c.Trackfm.Chunk_pass.selected)
         report.Trackfm.Chunk_pass.candidates)
  in
  let before = candidates (o0_style_sum n) in
  let m = o0_style_sum n in
  ignore (Tfm_opt.Mem2reg.run m);
  let after = candidates m in
  (* the builder-generated fill loop is always chunkable; the O0-style
     hand loop only after promotion *)
  Alcotest.(check int) "only the fill loop before" 1 before;
  Alcotest.(check int) "both loops after" 2 after

let test_mem2reg_skips_escaping_slot () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let slot = Builder.alloca b 8 in
  Builder.store b (Ir.Const 5) ~ptr:slot;
  (* the address escapes into arithmetic: not promotable *)
  let addr_plus = Builder.add b slot (Ir.Const 0) in
  let v = Builder.load b addr_plus in
  Builder.ret b (Some v);
  let promoted = Tfm_opt.Mem2reg.run m in
  Alcotest.(check int) "escaping slot kept" 0 promoted;
  Alcotest.(check int) "still correct" 5 (run_main m)

let prop_mem2reg_preserves_o0_semantics =
  QCheck.Test.make ~name:"mem2reg preserves O0-style loops" ~count:20
    QCheck.(int_range 1 1500)
    (fun n ->
      let m = o0_style_sum n in
      ignore (Tfm_opt.Mem2reg.run m);
      run_main m = o0_expected n)

let suite =
  ( "opt",
    [
      Alcotest.test_case "constant fold" `Quick test_constant_fold;
      Alcotest.test_case "fold select/cmp" `Quick test_fold_select_and_cmp;
      Alcotest.test_case "cse loads" `Quick test_cse_loads_same_block;
      Alcotest.test_case "cse killed by store" `Quick test_cse_killed_by_store;
      Alcotest.test_case "dce dead loads" `Quick test_dce_removes_dead_loads;
      Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_stores_and_calls;
      Alcotest.test_case "O1 reduces FT mem instrs" `Quick test_o1_reduces_ft_guards;
      Alcotest.test_case "licm hoists invariant load" `Quick
        test_licm_hoists_invariant_load;
      Alcotest.test_case "licm respects stores" `Quick test_licm_respects_stores;
      Alcotest.test_case "licm reduces guards" `Quick test_licm_reduces_guards;
      Alcotest.test_case "simplify-cfg constant branch" `Quick
        test_simplify_cfg_folds_constant_branch;
      Alcotest.test_case "simplify-cfg threading" `Quick
        test_simplify_cfg_threads_empty_blocks;
      Alcotest.test_case "simplify-cfg phis" `Quick
        test_simplify_cfg_preserves_phis;
      Alcotest.test_case "inline semantics" `Quick test_inline_preserves_semantics;
      Alcotest.test_case "inline enables chunking" `Quick
        test_inline_enables_chunking;
      Alcotest.test_case "inline skips recursive/alloca" `Quick
        test_inline_skips_recursive_and_alloca;
      Alcotest.test_case "inline multiple returns" `Quick
        test_inline_multiple_returns;
      Alcotest.test_case "mem2reg promotes" `Quick
        test_mem2reg_promotes_and_preserves;
      Alcotest.test_case "mem2reg exposes IVs" `Quick
        test_mem2reg_exposes_iv_for_chunking;
      Alcotest.test_case "mem2reg skips escapes" `Quick
        test_mem2reg_skips_escaping_slot;
      QCheck_alcotest.to_alcotest prop_mem2reg_preserves_o0_semantics;
      QCheck_alcotest.to_alcotest prop_o1_preserves_stream_semantics;
    ] )
