(* The serving tier's robustness control plane: determinism of the
   whole run (byte-identical result_json), admission bounding the
   accept queue, the off/on overload contrast, accounting conservation,
   graceful degradation under a staggered crash+outage schedule, and
   the flight-recorder dump on the first refused request. *)

open Workloads

let base_tenants ?(skew = 0.99) ?(keys = 4096) ?(budget = 1 lsl 14) () =
  List.map
    (fun t -> { t with Serving.skew })
    (Serving.default_tenants ~n:2 ~keys ~budget)

let base ?skew ?keys ?budget ~rate ~requests ~controls ~faults () =
  {
    Serving.default_params with
    Serving.tenants = base_tenants ?skew ?keys ?budget ();
    rate;
    requests;
    controls;
    faults;
    fault_seed = 1;
  }

let medium =
  match Faults.parse "medium" with
  | Ok f -> f
  | Error e -> failwith ("bad preset: " ^ e)

(* Crash and outage on offset schedules: when the windows coincide a
   dead node turns misses into instant loss (no wire op, no retry
   ladder), so the breaker never opens — the stagger gives both
   behaviors. Same shape as the bench crash table. *)
let crash_outage =
  {
    medium with
    Faults.crash_period = 16_000_000;
    crash_downtime = 3_000_000;
    outage_period = 12_000_000;
    outage_len = 4_000_000;
  }

let json r = Telemetry.Json.to_string (Serving.result_json r)

let test_determinism () =
  let p =
    base ~rate:120.0 ~requests:1_500 ~controls:Serving.default_controls
      ~faults:medium ()
  in
  let a = Serving.run ~spans:true p and b = Serving.run ~spans:true p in
  Alcotest.(check string) "same params, byte-identical JSON" (json a) (json b);
  let c = Serving.run { p with Serving.seed = p.Serving.seed + 1 } in
  Alcotest.(check bool) "different seed, different run" true (json a <> json c)

let test_admission_bounds_queue () =
  let cap = Serving.default_controls.Serving.queue_cap in
  let off =
    Serving.run
      (base ~rate:200.0 ~requests:2_000 ~controls:Serving.open_loop
         ~faults:Faults.off ())
  in
  let on =
    Serving.run
      (base ~rate:200.0 ~requests:2_000 ~controls:Serving.default_controls
         ~faults:Faults.off ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "open loop floods the queue past %d (got %d)" cap
       off.Serving.max_queue)
    true
    (off.Serving.max_queue > cap);
  Alcotest.(check bool)
    (Printf.sprintf "admission keeps the queue under %d (got %d)" cap
       on.Serving.max_queue)
    true
    (on.Serving.max_queue <= cap)

let fleet_p99 r =
  match Telemetry.Histogram.percentile_opt r.Serving.fleet 99.0 with
  | Some v -> v
  | None -> 0

let test_overload_contrast () =
  let deadline = Serving.default_controls.Serving.deadline in
  let off =
    Serving.run
      (base ~rate:200.0 ~requests:2_000 ~controls:Serving.open_loop
         ~faults:Faults.off ())
  in
  let on =
    Serving.run
      (base ~rate:200.0 ~requests:2_000 ~controls:Serving.default_controls
         ~faults:Faults.off ())
  in
  Alcotest.(check bool) "uncontrolled p99 diverges past the deadline" true
    (fleet_p99 off > 4 * deadline);
  Alcotest.(check bool) "controlled p99 stays near the deadline" true
    (fleet_p99 on <= 2 * deadline);
  Alcotest.(check bool) "controls win goodput under overload" true
    (on.Serving.goodput > 2.0 *. off.Serving.goodput)

let test_accounting_conserves () =
  let r =
    Serving.run
      (base ~rate:200.0 ~requests:2_000 ~controls:Serving.default_controls
         ~faults:medium ())
  in
  List.iter
    (fun s ->
      (* Degradation is on, so nothing is shed at the door: every shed
         is a queue expiry of an admitted request. *)
      Alcotest.(check int)
        (s.Serving.tenant.Serving.tn_name ^ ": every arrival decided once")
        s.Serving.offered
        (s.Serving.admitted + s.Serving.rejected + s.Serving.throttled);
      Alcotest.(check int)
        (s.Serving.tenant.Serving.tn_name ^ ": admitted end as reply or shed")
        s.Serving.admitted
        (s.Serving.completed + s.Serving.shed);
      Alcotest.(check bool) "good within completed" true
        (s.Serving.good <= s.Serving.completed))
    r.Serving.stats;
  let total f = List.fold_left (fun a s -> a + f s) 0 r.Serving.stats in
  Alcotest.(check int) "fleet histogram holds every completion"
    (total (fun s -> s.Serving.completed))
    (Telemetry.Histogram.count r.Serving.fleet)

let test_degradation_under_outage () =
  let r =
    Serving.run
      (base ~skew:0.6 ~rate:110.0 ~requests:2_000
         ~controls:Serving.default_controls ~faults:crash_outage ())
  in
  let degraded =
    List.fold_left (fun a s -> a + s.Serving.degraded) 0 r.Serving.stats
  in
  Alcotest.(check bool) "breaker opened during the outage" true
    (Clock.get r.Serving.clock "net.breaker_opens" >= 1);
  Alcotest.(check bool) "stale serves while the breaker is open" true
    (degraded > 0);
  Alcotest.(check int) "stale counter matches per-tenant degraded" degraded
    (Clock.get r.Serving.clock "serving.stale")

let test_flight_dump_on_first_refusal () =
  let path = Filename.temp_file "tfm-serving-flight" ".json" in
  let r =
    Serving.run
      ~flight:(path, [ ("test", Telemetry.Json.String "serving") ])
      (base ~rate:200.0 ~requests:1_500 ~controls:Serving.default_controls
         ~faults:Faults.off ())
  in
  Alcotest.(check bool) "overload produced refusals" true
    (List.exists (fun s -> s.Serving.rejected > 0) r.Serving.stats);
  Alcotest.(check (option string)) "first refusal fired the flight recorder"
    (Some path)
    (Telemetry.Sink.flight_dumped r.Serving.sink);
  Alcotest.(check bool) "dump is on disk" true (Sys.file_exists path);
  Sys.remove path

let test_invalid_params_rejected () =
  let check name p =
    try
      ignore (Serving.run p);
      Alcotest.fail (name ^ " accepted")
    with Invalid_argument _ -> ()
  in
  let ok =
    base ~rate:50.0 ~requests:100 ~controls:Serving.default_controls
      ~faults:Faults.off ()
  in
  check "rate 0" { ok with Serving.rate = 0.0 };
  check "no requests" { ok with Serving.requests = 0 };
  check "no connections" { ok with Serving.connections = 0 };
  check "no tenants" { ok with Serving.tenants = [] };
  check "value size not dividing the page"
    { ok with Serving.value_size = 48 }

let suite =
  ( "serving",
    [
      Alcotest.test_case "deterministic result" `Quick test_determinism;
      Alcotest.test_case "admission bounds queue" `Quick
        test_admission_bounds_queue;
      Alcotest.test_case "overload off/on contrast" `Quick
        test_overload_contrast;
      Alcotest.test_case "accounting conserves" `Quick
        test_accounting_conserves;
      Alcotest.test_case "stale serves under outage" `Quick
        test_degradation_under_outage;
      Alcotest.test_case "flight dump on first refusal" `Quick
        test_flight_dump_on_first_refusal;
      Alcotest.test_case "invalid params" `Quick test_invalid_params_rejected;
    ] )
