(* Per-workload semantic validation: every workload, every backend, same
   checksum. These are the correctness proofs that the compiler pipeline
   preserves program semantics end to end. *)

open Workloads

(* Never shrink below a handful of 4 KiB objects: chunked loops pin one
   object per stream, so a budget below ~3 objects is unusable (as a real
   AIFM deployment would also require a minimum local memory). *)
let budget_frac ws f = max (8 * 4096) (ws * f / 100)

let check_all_backends ?(blobs = []) ~name ~expected ~ws build =
  let local = Driver.run_local ~blobs build in
  Alcotest.(check int) (name ^ " local") expected local.Driver.ret;
  let opts = Driver.tfm_defaults ~local_budget:(budget_frac ws 30) in
  let tfm, _ = Driver.run_trackfm ~blobs build opts in
  Alcotest.(check int) (name ^ " trackfm") expected tfm.Driver.ret;
  let fs = Driver.run_fastswap ~blobs ~local_budget:(budget_frac ws 30) build in
  Alcotest.(check int) (name ^ " fastswap") expected fs.Driver.ret

let test_stream_kernels () =
  List.iter
    (fun kernel ->
      let n = 3_000 in
      let expected = Stream.checksum ~n ~kernel () in
      let ws = Stream.working_set_bytes ~n ~kernel () in
      check_all_backends
        ~name:("stream-" ^ Stream.kernel_name kernel)
        ~expected ~ws
        (fun () -> Stream.build ~n ~kernel ()))
    [ Stream.Sum; Stream.Copy; Stream.Scale; Stream.Triad ]

let test_stream_chunk_modes_agree () =
  let n = 5_000 in
  let kernel = Stream.Sum in
  let expected = Stream.checksum ~n ~kernel () in
  let ws = Stream.working_set_bytes ~n ~kernel () in
  List.iter
    (fun mode ->
      let opts =
        {
          (Driver.tfm_defaults ~local_budget:(budget_frac ws 25)) with
          Driver.chunk_mode = mode;
        }
      in
      let o, _ = Driver.run_trackfm (fun () -> Stream.build ~n ~kernel ()) opts in
      Alcotest.(check int) "mode-independent result" expected o.Driver.ret)
    [ `Off; `All; `Gated ]

let test_stream_object_sizes_agree () =
  let n = 5_000 in
  let kernel = Stream.Copy in
  let expected = Stream.checksum ~n ~kernel () in
  let ws = Stream.working_set_bytes ~n ~kernel () in
  List.iter
    (fun osz ->
      let opts =
        {
          (Driver.tfm_defaults ~local_budget:(budget_frac ws 25)) with
          Driver.object_size = osz;
        }
      in
      let o, _ = Driver.run_trackfm (fun () -> Stream.build ~n ~kernel ()) opts in
      Alcotest.(check int)
        (Printf.sprintf "object size %d" osz)
        expected o.Driver.ret)
    [ 64; 256; 1024; 4096 ]

let test_kmeans_all_backends () =
  let p = Kmeans.default_params ~n:2_000 in
  check_all_backends ~name:"kmeans" ~expected:(Kmeans.checksum p)
    ~ws:(Kmeans.working_set_bytes p)
    (fun () -> Kmeans.build p ())

let test_kmeans_chunk_modes_agree () =
  let p = Kmeans.default_params ~n:1_500 in
  let expected = Kmeans.checksum p in
  let ws = Kmeans.working_set_bytes p in
  List.iter
    (fun (mode, gate) ->
      let opts =
        {
          (Driver.tfm_defaults ~local_budget:(budget_frac ws 40)) with
          Driver.chunk_mode = mode;
          profile_gate = gate;
        }
      in
      let o, _ = Driver.run_trackfm (fun () -> Kmeans.build p ()) opts in
      Alcotest.(check int) "kmeans result stable" expected o.Driver.ret)
    [ (`Off, false); (`All, false); (`Gated, false); (`Gated, true) ]

let test_hashmap_all_backends () =
  let p = Hashmap.default_params ~keys:3_000 ~lookups:5_000 in
  let blobs = [ (0, Hashmap.trace_blob p) ] in
  check_all_backends ~blobs ~name:"hashmap" ~expected:(Hashmap.checksum p)
    ~ws:(Hashmap.working_set_bytes p)
    (fun () -> Hashmap.build p ())

let test_hashmap_trace_deterministic () =
  let p = Hashmap.default_params ~keys:1_000 ~lookups:2_000 in
  Alcotest.(check bytes) "same blob for same seed" (Hashmap.trace_blob p)
    (Hashmap.trace_blob p)

let test_memcached_all_backends () =
  let p = Memcached.default_params ~keys:2_000 ~gets:3_000 ~skew:1.1 in
  let blobs = [ (0, Memcached.trace_blob p) ] in
  check_all_backends ~blobs ~name:"memcached" ~expected:(Memcached.checksum p)
    ~ws:(Memcached.working_set_bytes p)
    (fun () -> Memcached.build p ())

let test_memcached_skews_valid () =
  List.iter
    (fun skew ->
      let p = Memcached.default_params ~keys:1_000 ~gets:1_000 ~skew in
      let blobs = [ (0, Memcached.trace_blob p) ] in
      let o = Driver.run_local ~blobs (fun () -> Memcached.build p ()) in
      Alcotest.(check int)
        (Printf.sprintf "skew %.2f" skew)
        (Memcached.checksum p) o.Driver.ret)
    [ 1.0; 1.05; 1.2; 1.3 ]

let test_analytics_all_backends () =
  let p = Analytics.default_params ~rows:8_000 in
  check_all_backends ~name:"analytics" ~expected:(Analytics.checksum p)
    ~ws:(Analytics.working_set_bytes p)
    (fun () -> Analytics.build p ())

let test_llist_all_backends () =
  let nodes = 600 and tnodes = 257 in
  let ws = Llist.working_set_bytes ~nodes ~tnodes in
  check_all_backends ~name:"llist"
    ~expected:(Llist.checksum ~nodes ~tnodes)
    ~ws
    (fun () -> Llist.build ~nodes ~tnodes ())

(* The whole point of the workload: its dependent loads are hidden in
   helpers, so static routing finds them only through the shape
   analysis. With shapes off the static router must route nothing. *)
let test_llist_routes_via_shapes () =
  let nodes = 400 and tnodes = 127 in
  let build () = Llist.build ~nodes ~tnodes () in
  let ws = Llist.working_set_bytes ~nodes ~tnodes in
  let opts =
    {
      (Driver.tfm_defaults ~local_budget:(budget_frac ws 30)) with
      route = `Static;
    }
  in
  let o, report = Driver.run_trackfm build opts in
  Alcotest.(check int) "llist routed checksum"
    (Llist.checksum ~nodes ~tnodes)
    o.Driver.ret;
  Alcotest.(check bool) "helper-hidden sites statically routed" true
    (report.Trackfm.Pipeline.routing.Trackfm.Route_pass.routed >= 1);
  let o_off, report_off =
    Driver.run_trackfm build { opts with use_shapes = false }
  in
  Alcotest.(check int) "llist unrouted checksum"
    (Llist.checksum ~nodes ~tnodes)
    o_off.Driver.ret;
  Alcotest.(check int) "no static routes without shape facts" 0
    report_off.Trackfm.Pipeline.routing.Trackfm.Route_pass.routed

let test_analytics_aifm_port_matches () =
  let p = Analytics.default_params ~rows:8_000 in
  let ws = Analytics.working_set_bytes p in
  let ck, clock = Analytics.run_aifm ~local_budget:(budget_frac ws 30) p in
  Alcotest.(check int) "AIFM port same checksum" (Analytics.checksum p) ck;
  Alcotest.(check bool) "AIFM port moved data" true
    (Clock.get clock "net.bytes_in" > 0)

let test_nas_kernels_all_backends () =
  (* Tiny scale-downs run the full pipeline for every kernel. *)
  List.iter
    (fun kernel ->
      let p = { Nas.kernel; scale = 1 } in
      let tiny =
        (* shrink each kernel for test speed by rebuilding with scale 1 and
           reducing via a custom working set fraction *)
        p
      in
      let expected = Nas.checksum tiny in
      let ws = Nas.working_set_bytes tiny in
      let build () = Nas.build tiny () in
      let local = Driver.run_local build in
      Alcotest.(check int)
        (Nas.kernel_name kernel ^ " local")
        expected local.Driver.ret;
      let tfm, _ =
        Driver.run_trackfm build
          (Driver.tfm_defaults ~local_budget:(budget_frac ws 30))
      in
      Alcotest.(check int)
        (Nas.kernel_name kernel ^ " trackfm")
        expected tfm.Driver.ret)
    [ Nas.CG; Nas.FT; Nas.MG; Nas.SP ]

let test_nas_table3_metadata () =
  Alcotest.(check int) "IS paper GB" 34 (Nas.paper_memory_gb Nas.IS);
  Alcotest.(check int) "SP paper LoC" 2013 (Nas.paper_loc Nas.SP);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Nas.kernel_name k ^ " ws positive")
        true
        (Nas.working_set_bytes { Nas.kernel = k; scale = 1 } > 0))
    Nas.all_kernels

let test_driver_counters_exposed () =
  let n = 2_000 in
  let ws = Stream.working_set_bytes ~n ~kernel:Stream.Sum () in
  let opts = Driver.tfm_defaults ~local_budget:(budget_frac ws 25) in
  let o, report =
    Driver.run_trackfm (fun () -> Stream.build ~n ~kernel:Stream.Sum ()) opts
  in
  Alcotest.(check bool) "guard or boundary events recorded" true
    (Driver.counter o "tfm.fast_guards" + Driver.counter o "tfm.boundary_checks"
    > 0);
  Alcotest.(check bool) "pipeline saw the libc call" true
    (report.Trackfm.Pipeline.libc_rewrites >= 1)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "stream kernels x backends" `Quick test_stream_kernels;
      Alcotest.test_case "stream chunk modes agree" `Quick
        test_stream_chunk_modes_agree;
      Alcotest.test_case "stream object sizes agree" `Quick
        test_stream_object_sizes_agree;
      Alcotest.test_case "kmeans x backends" `Quick test_kmeans_all_backends;
      Alcotest.test_case "kmeans chunk modes agree" `Quick
        test_kmeans_chunk_modes_agree;
      Alcotest.test_case "hashmap x backends" `Quick test_hashmap_all_backends;
      Alcotest.test_case "hashmap trace deterministic" `Quick
        test_hashmap_trace_deterministic;
      Alcotest.test_case "memcached x backends" `Quick test_memcached_all_backends;
      Alcotest.test_case "memcached skews" `Quick test_memcached_skews_valid;
      Alcotest.test_case "analytics x backends" `Quick test_analytics_all_backends;
      Alcotest.test_case "llist x backends" `Quick test_llist_all_backends;
      Alcotest.test_case "llist routes via shapes" `Quick
        test_llist_routes_via_shapes;
      Alcotest.test_case "analytics AIFM port" `Quick
        test_analytics_aifm_port_matches;
      Alcotest.test_case "nas x backends" `Slow test_nas_kernels_all_backends;
      Alcotest.test_case "nas table3 metadata" `Quick test_nas_table3_metadata;
      Alcotest.test_case "driver counters" `Quick test_driver_counters_exposed;
    ] )
