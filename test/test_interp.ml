(* Tests for the interpreter and backends. *)

let run ?(entry = "main") ?args m =
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  (Interp.run ?args backend m ~entry).Interp.ret

let test_arithmetic () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let v =
    Builder.binop b Ir.Sub
      (Builder.mul b (Ir.Const 6) (Ir.Const 7))
      (Ir.Const 2)
  in
  let v = Builder.binop b Ir.Sdiv v (Ir.Const 4) in
  Builder.ret b (Some v);
  Alcotest.(check int) "(6*7-2)/4" 10 (run m)

let test_float_ops () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let x = Builder.fbinop b Ir.Fmul (Ir.Constf 2.5) (Ir.Constf 4.0) in
  let y = Builder.fbinop b Ir.Fadd x (Ir.Constf 0.5) in
  Builder.ret b (Some (Builder.fp_to_si b y));
  Alcotest.(check int) "2.5*4+0.5" 10 (run m)

let test_division_by_zero_traps () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let v = Builder.binop b Ir.Sdiv (Ir.Const 1) (Ir.Const 0) in
  Builder.ret b (Some v);
  Alcotest.(check bool) "traps" true
    (try
       ignore (run m);
       false
     with Interp.Trap _ -> true)

let test_memory_roundtrip () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 64 ] in
  Builder.store b ~size:4 (Ir.Const 0xCAFE) ~ptr:p;
  Builder.ret b (Some (Builder.load b ~size:4 p));
  Alcotest.(check int) "store/load" 0xCAFE (run m)

let test_globals () =
  let m = Ir.create_module () in
  Ir.add_global m "g" 16;
  let b = Builder.create m ~name:"main" ~nparams:0 in
  Builder.store b (Ir.Const 55) ~ptr:(Ir.Sym "g");
  Builder.ret b (Some (Builder.load b (Ir.Sym "g")));
  Alcotest.(check int) "global rw" 55 (run m)

let test_alloca_frames_restored () =
  let m = Ir.create_module () in
  (* callee: allocates and writes its own slot *)
  let bc = Builder.create m ~name:"callee" ~nparams:1 in
  let slot = Builder.alloca bc 16 in
  Builder.store bc (Builder.arg 0) ~ptr:slot;
  Builder.ret bc (Some (Builder.load bc slot));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let slot0 = Builder.alloca b 16 in
  Builder.store b (Ir.Const 1) ~ptr:slot0;
  let r1 = Builder.call b "callee" [ Ir.Const 42 ] in
  let r2 = Builder.call b "callee" [ Ir.Const 58 ] in
  (* main's slot must be untouched by callee frames *)
  let own = Builder.load b slot0 in
  Builder.ret b (Some (Builder.add b own (Builder.add b r1 r2)));
  Alcotest.(check int) "frames isolated" 101 (run m)

let test_function_args_and_calls () =
  let m = Ir.create_module () in
  let badd = Builder.create m ~name:"add3" ~nparams:3 in
  Builder.ret badd
    (Some
       (Builder.add badd
          (Builder.add badd (Builder.arg 0) (Builder.arg 1))
          (Builder.arg 2)));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let r = Builder.call b "add3" [ Ir.Const 1; Ir.Const 2; Ir.Const 3 ] in
  Builder.ret b (Some r);
  Alcotest.(check int) "call with args" 6 (run m)

let test_float_arg_helper_call () =
  (* a defined IR function with float parameters must dispatch directly,
     not through the intrinsic path (whose int coercion would trap) *)
  let m = Ir.create_module () in
  let bh = Builder.create m ~name:"fmadd" ~nparams:2 in
  let prod = Builder.fbinop bh Ir.Fmul (Builder.arg 0) (Builder.arg 1) in
  Builder.ret bh (Some (Builder.fbinop bh Ir.Fadd prod (Ir.Constf 0.5)))
  ;
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let r = Builder.call b "fmadd" [ Ir.Constf 2.0; Ir.Constf 3.0 ] in
  Builder.ret b (Some (Builder.fp_to_si b (Builder.fbinop b Ir.Fmul r (Ir.Constf 10.0))));
  Alcotest.(check int) "float helper result" 65 (run m)

let test_entry_args () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:2 in
  Builder.ret b (Some (Builder.mul b (Builder.arg 0) (Builder.arg 1)));
  Alcotest.(check int) "entry args" 12 (run ~args:[ 3; 4 ] m)

let test_fuel_exhaustion () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let loop = Builder.add_block b "spin" in
  Builder.br b loop;
  Builder.set_block b loop;
  Builder.br b loop;
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  Alcotest.(check bool) "runs out of fuel" true
    (try
       ignore (Interp.run ~fuel:10_000 backend m ~entry:"main");
       false
     with Interp.Trap _ -> true)

let test_unknown_function_traps () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  ignore (Builder.call b "no_such_function" []);
  Builder.ret b None;
  Alcotest.(check bool) "traps" true
    (try
       ignore (run m);
       false
     with Interp.Trap _ -> true)

let test_cycles_monotonic_and_positive () =
  let n = 500 in
  let m = Workloads.Stream.build ~n ~kernel:Workloads.Stream.Sum () in
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  let r = Interp.run backend m ~entry:"main" in
  Alcotest.(check bool) "cycles positive" true (r.Interp.cycles > 0);
  Alcotest.(check bool) "instr count sane" true
    (r.Interp.instrs_executed > 2 * n)

let test_profile_collection () =
  let m = Workloads.Stream.build ~n:100 ~kernel:Workloads.Stream.Sum () in
  let profile = Profile.create () in
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  ignore (Interp.run ~profile backend m ~entry:"main");
  Alcotest.(check int) "entry once" 1
    (Profile.block_count profile ~func:"main" ~block:"entry");
  (* the sum loop header runs 101 times (100 iterations + exit check) *)
  let f = Ir.find_func m "main" in
  let header =
    List.find
      (fun (b : Ir.block) ->
        String.length b.label >= 3 && String.sub b.label 0 3 = "sum"
        && List.exists
             (fun (i : Ir.instr) ->
               match i.kind with Ir.Phi _ -> true | _ -> false)
             b.instrs)
      f.blocks
  in
  Alcotest.(check int) "header count" 101
    (Profile.block_count profile ~func:"main" ~block:header.label)

let test_trackfm_backend_rejects_raw_malloc () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  ignore (Builder.call b "malloc" [ Ir.Const 64 ]);
  Builder.ret b None;
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:65536
  in
  let backend = Backend.trackfm rt store in
  Alcotest.(check bool) "untransformed malloc rejected" true
    (try
       ignore (Interp.run backend m ~entry:"main");
       false
     with Failure _ -> true)

let test_bench_begin_resets () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 8192 ] in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 512) (fun b iv ->
      Builder.store b (Ir.Const 1) ~ptr:(Builder.gep b p ~index:iv ~scale:8 ()));
  ignore (Builder.call b "!bench_begin" []);
  Builder.ret b (Some (Ir.Const 0));
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  let r = Interp.run backend m ~entry:"main" in
  (* everything before bench_begin is discarded; only ret remains *)
  Alcotest.(check bool) "clock nearly zero" true (r.Interp.cycles < 10)

let test_cpu_work_intrinsic () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  ignore (Builder.call b "!cpu_work" [ Ir.Const 12345 ]);
  Builder.ret b None;
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  let r = Interp.run backend m ~entry:"main" in
  Alcotest.(check bool) "charged" true (r.Interp.cycles >= 12345)


let test_tracer_records_and_replays () =
  let n = 2_000 in
  let m = Workloads.Stream.build ~n ~kernel:Workloads.Stream.Sum () in
  let trace = Tracer.create () in
  let clock = Clock.create () in
  let backend =
    Tracer.recording trace
      (Backend.local Cost_model.default clock (Memstore.create ()))
  in
  let r = Interp.run backend m ~entry:"main" in
  Alcotest.(check int) "result unchanged under recording"
    (Workloads.Stream.checksum ~n ~kernel:Workloads.Stream.Sum ())
    r.Interp.ret;
  (* init writes n elements, sum reads n elements, plus the malloc-free
     program structure: at least 2n accesses *)
  Alcotest.(check bool) "captured accesses" true (Tracer.length trace >= 2 * n);
  Alcotest.(check bool) "reads and writes present" true
    (Tracer.reads trace >= n && Tracer.writes trace >= n);
  Alcotest.(check bool) "footprint ~ working set" true
    (Tracer.footprint_bytes trace >= n * 4);
  (* Replaying the trace against Fastswap must produce the same faults as
     running the program on Fastswap directly. *)
  let direct_clock = Clock.create () in
  let direct =
    Backend.fastswap Cost_model.default direct_clock (Memstore.create ())
      ~local_budget:(n * 2)
  in
  ignore (Interp.run direct (Workloads.Stream.build ~n ~kernel:Workloads.Stream.Sum ()) ~entry:"main");
  let replay_clock = Clock.create () in
  let replay_backend =
    Backend.fastswap Cost_model.default replay_clock (Memstore.create ())
      ~local_budget:(n * 2)
  in
  Tracer.replay trace replay_backend;
  Alcotest.(check int) "replay reproduces major faults"
    (Clock.get direct_clock "fastswap.major_faults")
    (Clock.get replay_clock "fastswap.major_faults")

let test_tracer_get_bounds () =
  let trace = Tracer.create () in
  Alcotest.(check bool) "empty get rejected" true
    (try
       ignore (Tracer.get trace 0);
       false
     with Invalid_argument _ -> true)


let test_trackfm_backend_requires_init () =
  (* A transformed program whose runtime-initialization hook was somehow
     dropped must fail loudly, like a real binary without runtime setup. *)
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  ignore (Builder.call b "tfm_malloc" [ Ir.Const 64 ]);
  Builder.ret b None;
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:65536
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Interp.run (Backend.trackfm rt store) m ~entry:"main");
       false
     with Failure _ -> true)


let test_recursion_depth_limited () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"spin" ~nparams:0 in
  let r = Builder.call b "spin" [] in
  Builder.ret b (Some r);
  let bm = Builder.create m ~name:"main" ~nparams:0 in
  Builder.ret bm (Some (Builder.call bm "spin" []));
  Alcotest.(check bool) "infinite recursion trapped" true
    (try
       ignore (run m);
       false
     with Interp.Trap _ -> true)

let suite =
  ( "interp",
    [
      Alcotest.test_case "arithmetic" `Quick test_arithmetic;
      Alcotest.test_case "float ops" `Quick test_float_ops;
      Alcotest.test_case "div by zero" `Quick test_division_by_zero_traps;
      Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
      Alcotest.test_case "globals" `Quick test_globals;
      Alcotest.test_case "alloca frames" `Quick test_alloca_frames_restored;
      Alcotest.test_case "function calls" `Quick test_function_args_and_calls;
      Alcotest.test_case "float-arg helper call" `Quick
        test_float_arg_helper_call;
      Alcotest.test_case "entry args" `Quick test_entry_args;
      Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
      Alcotest.test_case "unknown function" `Quick test_unknown_function_traps;
      Alcotest.test_case "cycles positive" `Quick test_cycles_monotonic_and_positive;
      Alcotest.test_case "profile collection" `Quick test_profile_collection;
      Alcotest.test_case "raw malloc rejected" `Quick
        test_trackfm_backend_rejects_raw_malloc;
      Alcotest.test_case "bench_begin resets" `Quick test_bench_begin_resets;
      Alcotest.test_case "cpu_work" `Quick test_cpu_work_intrinsic;
      Alcotest.test_case "tracer record/replay" `Quick
        test_tracer_records_and_replays;
      Alcotest.test_case "tracer bounds" `Quick test_tracer_get_bounds;
      Alcotest.test_case "backend requires init" `Quick
        test_trackfm_backend_requires_init;
      Alcotest.test_case "recursion depth limit" `Quick
        test_recursion_depth_limited;
    ] )
