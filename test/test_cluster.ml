(* Tests for the replicated remote-memory tier: crash-window schedules,
   ack/lag writeback semantics, observable data loss at replicas=1,
   survival via failover + resync at replicas=3, transit-corruption
   detection/repair, stale-shadow invalidation, and the zero-cost gate
   that keeps the single-server model bit-identical. *)

let cost = Cost_model.default

let mk_cluster ?(seed = 7) ?(replicas = 3) ?(ack = 2) ?(crash_period = 0)
    ?(crash_downtime = 0) ?(corrupt = 0.0) () =
  let clock = Clock.create () in
  let store = Memstore.create () in
  let c =
    Cluster.create ~seed ~clock ~store ~replicas ~ack ~crash_period
      ~crash_downtime ~corrupt ()
  in
  (clock, store, c)

(* Two 8-byte words with the top bit set: a 63-bit truncating mover or
   checksum would destroy them (the sign bit of stored doubles). *)
let key = 8192
let size = 16
let w0 = 0x8000_0000_0000_0001L
let w1 = Int64.neg 3L

let seed_object store =
  Memstore.store64 store ~addr:key w0;
  Memstore.store64 store ~addr:(key + 8) w1

let object_intact store =
  Memstore.load64 store ~addr:key = w0
  && Memstore.load64 store ~addr:(key + 8) = w1

(* -- zero-cost gate ------------------------------------------------------ *)

let test_create_opt_gate () =
  let clock = Clock.create () in
  let store = Memstore.create () in
  let opt ~replicas ~ack faults =
    Cluster.create_opt ~seed:3 ~clock ~store ~replicas ~ack ~faults ()
  in
  let crashy =
    { Faults.off with Faults.crash_period = 1_000_000; crash_downtime = 100_000 }
  in
  Alcotest.(check bool) "replicas=1, no faults: no cluster" true
    (opt ~replicas:1 ~ack:1 Faults.off = None);
  Alcotest.(check bool) "replicas=1 + outage only: still no cluster" true
    (opt ~replicas:1 ~ack:1
       { Faults.off with Faults.outage_period = 1_000_000; outage_len = 1_000 }
    = None);
  Alcotest.(check bool) "replicas=3 forces a cluster" true
    (opt ~replicas:3 ~ack:2 Faults.off <> None);
  Alcotest.(check bool) "crash faults force a cluster even at replicas=1" true
    (opt ~replicas:1 ~ack:1 crashy <> None);
  Alcotest.(check bool) "corrupt faults force a cluster" true
    (opt ~replicas:1 ~ack:1 { Faults.off with Faults.corrupt = 0.01 } <> None)

(* -- crash-window schedule ----------------------------------------------- *)

let test_crash_windows_staggered () =
  let period = 1_000_000 and downtime = 100_000 in
  let _, _, c =
    mk_cluster ~seed:7 ~crash_period:period ~crash_downtime:downtime ()
  in
  let windows =
    List.concat_map
      (fun node ->
        List.filter_map
          (fun i -> Cluster.crash_window c ~node i)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2 ]
  in
  Alcotest.(check int) "every (node, era) has a window" 12
    (List.length windows);
  List.iter
    (fun (start, stop) ->
      Alcotest.(check int) "window length = downtime" downtime (stop - start);
      Alcotest.(check bool) "window starts in the future" true (start > 0))
    windows;
  (* Stagger: sorted by start, no two windows overlap — a 3-replica
     object always has a healthy holder. *)
  let sorted = List.sort compare windows in
  let rec disjoint = function
    | (_, stop) :: ((start', _) :: _ as rest) ->
        Alcotest.(check bool) "windows pairwise disjoint" true (stop <= start');
        disjoint rest
    | _ -> ()
  in
  disjoint sorted;
  (* Pure in (seed, node, index). *)
  let _, _, c' =
    mk_cluster ~seed:7 ~crash_period:period ~crash_downtime:downtime ()
  in
  List.iter
    (fun node ->
      Alcotest.(check bool) "same seed, same windows" true
        (Cluster.crash_window c ~node 0 = Cluster.crash_window c' ~node 0))
    [ 0; 1; 2 ];
  let _, _, c'' =
    mk_cluster ~seed:8 ~crash_period:period ~crash_downtime:downtime ()
  in
  Alcotest.(check bool) "different seed moves some window" true
    (List.exists
       (fun node ->
         Cluster.crash_window c ~node 0 <> Cluster.crash_window c'' ~node 0)
       [ 0; 1; 2 ])

(* -- writeback: ack / lag / visibility ----------------------------------- *)

let test_writeback_ack_lag () =
  let clock, store, c = mk_cluster ~replicas:3 ~ack:2 () in
  seed_object store;
  let wb = Cluster.writeback c ~key ~size in
  Alcotest.(check int) "all three replicas written" 3 wb.Cluster.written;
  Alcotest.(check int) "one beyond-ack copy lags" 1 wb.Cluster.lagged;
  Alcotest.(check int) "nobody down" 0 wb.Cluster.skipped;
  Alcotest.(check bool) "directory knows the object" true
    (Cluster.has_object c ~key);
  let cands = Cluster.read_candidates c ~key in
  Alcotest.(check int) "only the ack copies are visible" 2 (List.length cands);
  Alcotest.(check bool) "primary served first" true
    (List.hd cands = Cluster.primary c ~key);
  (match Cluster.earliest_pending c ~key with
  | None -> Alcotest.fail "a lagged copy must be pending"
  | Some at ->
      Alcotest.(check bool) "pending lands in the future" true
        (at > Clock.monotonic clock);
      Clock.tick clock (at - Clock.monotonic clock));
  Alcotest.(check int) "lagged copy visible after the lag" 3
    (List.length (Cluster.read_candidates c ~key));
  Alcotest.(check bool) "nothing pending any more" true
    (Cluster.earliest_pending c ~key = None)

(* -- exact 64-bit round-trip through a replica ---------------------------- *)

let test_deliver_roundtrip_exact () =
  let _, store, c = mk_cluster ~replicas:2 ~ack:2 () in
  seed_object store;
  ignore (Cluster.writeback c ~key ~size);
  (match Cluster.deliver c ~key ~node:(Cluster.primary c ~key) with
  | `Delivered -> ()
  | `Stale | `Lost -> Alcotest.fail "fresh writeback cannot be stale or lost");
  Alcotest.(check bool)
    "bit 63 survives the copy (no 63-bit truncation)" true
    (object_intact store)

(* -- observable loss at replicas=1 ---------------------------------------- *)

let test_single_node_loss () =
  let clock, store, c =
    mk_cluster ~replicas:1 ~ack:1 ~crash_period:1_000_000
      ~crash_downtime:100_000 ()
  in
  let _, stop =
    match Cluster.crash_window c ~node:0 0 with
    | Some w -> w
    | None -> Alcotest.fail "crash schedule configured but no window"
  in
  seed_object store;
  ignore (Cluster.writeback c ~key ~size);
  Alcotest.(check int) "copy visible before the crash" 1
    (List.length (Cluster.read_candidates c ~key));
  (* Ride past the node's first downtime window: its copy is wiped. *)
  Clock.tick clock (stop + 1 - Clock.monotonic clock);
  Alcotest.(check bool) "no candidates after the crash" true
    (Cluster.read_candidates c ~key = []);
  Alcotest.(check bool) "nothing in flight" true
    (Cluster.earliest_pending c ~key = None);
  (match Cluster.declare_lost c ~key with
  | `Lost -> ()
  | `Stale -> Alcotest.fail "main still matched: this is a genuine loss");
  Alcotest.(check bool) "loss is observable: bytes zeroed" true
    (Memstore.load64 store ~addr:key = 0L
    && Memstore.load64 store ~addr:(key + 8) = 0L);
  Alcotest.(check bool) "object dropped from the directory" false
    (Cluster.has_object c ~key);
  Alcotest.(check bool) "crash was counted" true
    (Clock.get clock "cluster.crashes" > 0);
  (* Idempotent: a second declaration finds no live entry to zero. *)
  Alcotest.(check bool) "second declare is a no-op" true
    (Cluster.declare_lost c ~key = `Stale)

(* -- stale-shadow invalidation ------------------------------------------- *)

let test_stale_shadow_invalidated () =
  let _, store, c = mk_cluster ~replicas:2 ~ack:2 () in
  seed_object store;
  ignore (Cluster.writeback c ~key ~size);
  (* The allocator reuses the range behind the memory system's back
     (realloc blit / free-then-malloc): main no longer matches the
     last-writeback checksum. *)
  let fresh = 0x1234_5678_9abc_def0L in
  Memstore.store64 store ~addr:key fresh;
  (match Cluster.deliver c ~key ~node:(Cluster.primary c ~key) with
  | `Stale -> ()
  | `Delivered | `Lost ->
      Alcotest.fail "deliver must detect the stale shadow");
  Alcotest.(check bool) "live data never overwritten" true
    (Memstore.load64 store ~addr:key = fresh);
  Alcotest.(check bool) "stale entry invalidated" false
    (Cluster.has_object c ~key);
  (* And a stale entry with no replicas is not a loss: nothing zeroed. *)
  seed_object store;
  ignore (Cluster.writeback c ~key ~size);
  Memstore.store64 store ~addr:key fresh;
  Alcotest.(check bool) "stale declare_lost zeroes nothing" true
    (Cluster.declare_lost c ~key = `Stale
    && Memstore.load64 store ~addr:key = fresh)

(* -- crash / recovery / resync ------------------------------------------- *)

let test_recovery_resync () =
  let period = 1_000_000 and downtime = 100_000 in
  let clock, store, c =
    mk_cluster ~seed:5 ~replicas:3 ~ack:3 ~crash_period:period
      ~crash_downtime:downtime ()
  in
  let crashes = ref [] and recoveries = ref [] in
  Cluster.set_on_event c (fun e ->
      match e with
      | Cluster.Node_crashed { node; lost; _ } -> crashes := (node, lost) :: !crashes
      | Cluster.Node_recovered { node; missing; _ } ->
          recoveries := (node, missing) :: !recoveries);
  (* Several objects, all fully replicated (ack = replicas: no lag). *)
  let keys = List.init 5 (fun i -> key + (i * 4096)) in
  List.iter
    (fun k ->
      Memstore.store64 store ~addr:k (Int64.of_int (k * 3));
      ignore (Cluster.writeback c ~key:k ~size:8))
    keys;
  (* Find the node with the earliest window and step just past it, staying
     clear of every other node's window. *)
  let w n =
    match Cluster.crash_window c ~node:n 0 with
    | Some w -> w
    | None -> Alcotest.fail "crash schedule configured but no window"
  in
  let victim, (_, stop) =
    List.fold_left
      (fun (bn, (bs, be)) n ->
        let s, e = w n in
        if s < bs then (n, (s, e)) else (bn, (bs, be)))
      (0, w 0) [ 1; 2 ]
  in
  let probe_at = stop + 1 in
  List.iter
    (fun n ->
      if n <> victim then
        let s, _ = w n in
        Alcotest.(check bool) "stagger keeps other nodes up at probe time"
          true (probe_at < s))
    [ 0; 1; 2 ];
  Clock.tick clock (probe_at - Clock.monotonic clock);
  (* Touch the cluster so the lazy crash processing runs. *)
  List.iter (fun k -> ignore (Cluster.read_candidates c ~key:k)) keys;
  Alcotest.(check bool) "victim recovering after its window" true
    (Cluster.node_state c victim = `Recovering);
  Alcotest.(check bool) "crash event fired for the victim" true
    (List.exists (fun (n, lost) -> n = victim && lost > 0) !crashes);
  Alcotest.(check bool) "recovery event carries the missing count" true
    (List.exists (fun (n, missing) -> n = victim && missing > 0) !recoveries);
  let backlog = Cluster.resync_backlog c in
  Alcotest.(check bool) "resync backlog pending" true (backlog > 0);
  (* Every object still readable from the survivors meanwhile. *)
  List.iter
    (fun k ->
      Alcotest.(check bool) "survivors keep serving" true
        (Cluster.read_candidates c ~key:k <> []))
    keys;
  let moved = Cluster.resync_step c ~budget:1_000 in
  Alcotest.(check int) "resync drained the whole backlog" backlog moved;
  Alcotest.(check int) "nothing left to resync" 0 (Cluster.resync_backlog c);
  Alcotest.(check bool) "victim back up" true
    (Cluster.node_state c victim = `Up);
  Alcotest.(check bool) "recovery was counted" true
    (Clock.get clock "cluster.recoveries" > 0);
  (* Re-protected: the victim serves reads again. *)
  List.iter
    (fun k ->
      Alcotest.(check int) "full replica set restored" 3
        (List.length (Cluster.read_candidates c ~key:k)))
    keys

(* -- transit corruption: detect and repair through Net -------------------- *)

let test_corruption_detect_repair () =
  let cfg = { Faults.off with Faults.corrupt = 0.4 } in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let cluster =
    match
      Cluster.create_opt ~seed:11 ~clock ~store ~replicas:2 ~ack:2
        ~faults:cfg ()
    with
    | Some c -> c
    | None -> Alcotest.fail "corrupt rate must force a cluster"
  in
  let net =
    Net.create ~faults:(Faults.create ~seed:11 cfg) ~cluster cost clock Net.Tcp
  in
  seed_object store;
  Net.writeback_object net ~key ~bytes:size;
  for _ = 1 to 25 do
    Net.fetch_object net ~key ~bytes:size
  done;
  Alcotest.(check bool) "corruptions detected" true
    (Clock.get clock "net.corruptions_detected" > 0);
  Alcotest.(check bool) "every corruption repaired by a clean re-read" true
    (Clock.get clock "net.repairs" > 0);
  Alcotest.(check int) "nothing lost" 0 (Clock.get clock "net.lost_objects");
  Alcotest.(check bool) "payload intact after every repair" true
    (object_intact store)

(* -- acceptance: replication is what saves the workload ------------------- *)

let run_stream_under_crashes ~replicas ~ack =
  let open Workloads in
  let n = 20_000 in
  let budget = Stream.working_set_bytes ~n ~kernel:Stream.Sum () / 4 in
  let cfg =
    { Faults.off with Faults.crash_period = 200_000; crash_downtime = 33_000 }
  in
  let opts =
    {
      (Driver.tfm_defaults ~local_budget:budget) with
      Driver.faults = Faults.create ~seed:1 cfg;
      Driver.replicas = replicas;
      Driver.ack = ack;
    }
  in
  let o, _ =
    Driver.run_trackfm (fun () -> Stream.build ~n ~kernel:Stream.Sum ()) opts
  in
  (o.Driver.ret, Driver.counter o "net.lost_objects")

let test_replication_saves_the_workload () =
  let expected =
    Workloads.Stream.checksum ~n:20_000 ~kernel:Workloads.Stream.Sum ()
  in
  let ret1, lost1 = run_stream_under_crashes ~replicas:1 ~ack:1 in
  Alcotest.(check bool) "replicas=1 loses objects under crashes" true
    (lost1 > 0);
  Alcotest.(check bool) "replicas=1 corrupts the answer" true
    (ret1 <> expected);
  let ret3, lost3 = run_stream_under_crashes ~replicas:3 ~ack:2 in
  Alcotest.(check int) "replicas=3 ack=2 loses nothing" 0 lost3;
  Alcotest.(check int) "replicas=3 ack=2 answer correct" expected ret3

let suite =
  ( "cluster",
    [
      Alcotest.test_case "create_opt zero-cost gate" `Quick
        test_create_opt_gate;
      Alcotest.test_case "crash windows staggered" `Quick
        test_crash_windows_staggered;
      Alcotest.test_case "writeback ack/lag" `Quick test_writeback_ack_lag;
      Alcotest.test_case "deliver 64-bit exact" `Quick
        test_deliver_roundtrip_exact;
      Alcotest.test_case "single-node loss observable" `Quick
        test_single_node_loss;
      Alcotest.test_case "stale shadow invalidated" `Quick
        test_stale_shadow_invalidated;
      Alcotest.test_case "recovery resync" `Quick test_recovery_resync;
      Alcotest.test_case "corruption detect/repair" `Quick
        test_corruption_detect_repair;
      Alcotest.test_case "replication saves the workload" `Quick
        test_replication_saves_the_workload;
    ] )
