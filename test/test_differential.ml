(* Differential testing: randomly generated programs must compute the
   same result untransformed on the local backend and TrackFM-transformed
   under memory pressure, for every chunk mode and object size. This is
   the strongest semantics-preservation check in the suite: the program
   shapes are not hand-picked. *)

(* A random program over one heap array:
   - a few sequential "phases";
   - each phase is a counted loop with a random stride/offset access
     pattern, randomly reading-modifying-writing or reducing;
   - some phases nest an inner loop or wrap the access in a data-dependent
     conditional, so the transformed control flow is exercised too;
   - loop bounds, strides and constants drawn from the given rng. *)
let random_program rng =
  let n = 2048 + Tfm_util.Rng.int rng 2048 in
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arr = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let phases = 1 + Tfm_util.Rng.int rng 4 in
  let acc = ref (Ir.Const 0) in
  for _ = 1 to phases do
    let stride = 1 + Tfm_util.Rng.int rng 7 in
    let offset = Tfm_util.Rng.int rng 16 in
    let bound = (n - offset) / stride in
    let bound = max 1 (1 + Tfm_util.Rng.int rng (max 1 bound)) in
    let mode = Tfm_util.Rng.int rng 5 in
    let k1 = 1 + Tfm_util.Rng.int rng 100 in
    let prev = !acc in
    let results =
      Builder.for_loop_acc b ~hint:"ph" ~init:(Ir.Const 0)
        ~bound:(Ir.Const bound) ~step:1 ~accs:[ prev ]
        (fun b ~iv ~accs ->
          let a = match accs with [ a ] -> a | _ -> assert false in
          let idx =
            Builder.add b
              (Builder.mul b iv (Ir.Const stride))
              (Ir.Const offset)
          in
          let ptr = Builder.gep b arr ~index:idx ~scale:8 () in
          match mode with
          | 0 ->
              (* reduce *)
              let v = Builder.load b ptr in
              [ Builder.binop b Ir.And
                  (Builder.add b a (Builder.add b v (Ir.Const k1)))
                  (Ir.Const 0x3FFFFFFF) ]
          | 1 ->
              (* store a function of the IV *)
              let v =
                Builder.binop b Ir.And
                  (Builder.mul b iv (Ir.Const k1))
                  (Ir.Const 0xFFFF)
              in
              Builder.store b v ~ptr;
              [ a ]
          | 2 ->
              (* read-modify-write *)
              let v = Builder.load b ptr in
              let v' =
                Builder.binop b Ir.And
                  (Builder.add b v (Ir.Const k1))
                  (Ir.Const 0xFFFF)
              in
              Builder.store b v' ~ptr;
              [ Builder.binop b Ir.And (Builder.add b a v')
                  (Ir.Const 0x3FFFFFFF) ]
          | 3 ->
              (* conditional store on a data-dependent predicate *)
              let v = Builder.load b ptr in
              let cond = Builder.icmp b Ir.Lt v (Ir.Const (k1 * 64)) in
              Builder.if_then b ~cond (fun b ->
                  Builder.store b
                    (Builder.binop b Ir.And (Builder.add b v (Ir.Const 3))
                       (Ir.Const 0xFFFF))
                    ~ptr);
              [ a ]
          | _ ->
              (* short nested loop over a neighbourhood (the k-means /
                 Figure 15 shape) *)
              let width = 1 + Tfm_util.Rng.int rng 6 in
              let inner =
                Builder.for_loop_acc b ~hint:"nest" ~init:(Ir.Const 0)
                  ~bound:(Ir.Const width) ~accs:[ a ]
                  (fun b ~iv:w ~accs ->
                    let a' = List.hd accs in
                    let nidx =
                      Builder.binop b Ir.Srem
                        (Builder.add b idx w)
                        (Ir.Const n)
                    in
                    let nptr = Builder.gep b arr ~index:nidx ~scale:8 () in
                    let v = Builder.load b nptr in
                    [ Builder.binop b Ir.And (Builder.add b a' v)
                        (Ir.Const 0x3FFFFFFF) ])
              in
              [ List.hd inner ])
    in
    acc := (match results with [ a ] -> a | _ -> assert false)
  done;
  (* fold the whole array into the result *)
  let final =
    Builder.for_loop_acc b ~hint:"fold" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ !acc ]
      (fun b ~iv ~accs ->
        let a = match accs with [ a ] -> a | _ -> assert false in
        let v = Builder.load b (Builder.gep b arr ~index:iv ~scale:8 ()) in
        [ Builder.binop b Ir.And
            (Builder.add b (Builder.mul b a (Ir.Const 31)) v)
            (Ir.Const 0x3FFFFFFF) ])
  in
  Builder.ret b (Some (List.hd final));
  Verifier.check_module m;
  (m, n * 8)

let run_local m =
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  (Interp.run backend m ~entry:"main").Interp.ret

let run_tfm ?size_classes m ~object_size ~budget ~chunk_mode =
  let config =
    {
      Trackfm.Pipeline.object_size;
      chunk_mode;
      profile = None;
      cost = Cost_model.default;
      elide = true;
      summaries = true;
      shapes = true;
      route = `Off;
      route_hotspots = [];
      check = true;
      dump_after = None;
    }
  in
  ignore (Trackfm.Pipeline.run config m);
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create ?size_classes Cost_model.default clock store
      ~object_size ~local_budget:budget
  in
  (Interp.run (Backend.trackfm rt store) m ~entry:"main").Interp.ret

let prop_differential =
  QCheck.Test.make ~name:"random programs: local = trackfm (all configs)"
    ~count:25
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Tfm_util.Rng.create seed in
      let reference =
        let m, _ = random_program (Tfm_util.Rng.copy rng) in
        run_local m
      in
      List.for_all
        (fun (object_size, budget_frac, chunk_mode) ->
          let m, ws = random_program (Tfm_util.Rng.copy rng) in
          let budget = max (8 * object_size) (ws * budget_frac / 100) in
          run_tfm m ~object_size ~budget ~chunk_mode = reference)
        [
          (4096, 30, `Off);
          (4096, 30, `All);
          (256, 20, `Gated);
          (64, 50, `All);
        ]
      && (let m, ws = random_program (Tfm_util.Rng.copy rng) in
          run_tfm m
            ~size_classes:[ (2048, 64, 0.5); (max_int, 4096, 0.5) ]
            ~object_size:4096
            ~budget:(max 65536 (ws / 2))
            ~chunk_mode:`Gated
          = reference)
      &&
      (* O1 composed with the TrackFM transform, run under pressure *)
      let m, ws = random_program (Tfm_util.Rng.copy rng) in
      ignore (Tfm_opt.O1.run m);
      run_tfm m ~object_size:1024
        ~budget:(max 32768 (ws / 4))
        ~chunk_mode:`Gated
      = reference)

let prop_differential_fastswap =
  QCheck.Test.make ~name:"random programs: local = fastswap" ~count:15
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Tfm_util.Rng.create seed in
      let reference =
        let m, _ = random_program (Tfm_util.Rng.copy rng) in
        run_local m
      in
      let m, ws = random_program (Tfm_util.Rng.copy rng) in
      let clock = Clock.create () in
      let store = Memstore.create () in
      let backend =
        Backend.fastswap Cost_model.default clock store
          ~local_budget:(max 16384 (ws / 4))
      in
      (Interp.run backend m ~entry:"main").Interp.ret = reference)

let prop_differential_o1 =
  QCheck.Test.make ~name:"random programs: O1 preserves semantics" ~count:25
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Tfm_util.Rng.create seed in
      let reference =
        let m, _ = random_program (Tfm_util.Rng.copy rng) in
        run_local m
      in
      let m, _ = random_program (Tfm_util.Rng.copy rng) in
      ignore (Tfm_opt.Opt.run_o1 m);
      run_local m = reference)

(* Telemetry round-trip: record the access trace of a live fastswap run
   (telemetry off), then replay it through a fresh fastswap backend whose
   sink is recording. The memory system must behave identically — every
   counter total matches the live run — and the recording sink's final
   time-series sample must agree with those totals. *)
let prop_tracer_telemetry_roundtrip =
  QCheck.Test.make ~name:"trace replay under telemetry = live counters"
    ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Tfm_util.Rng.create seed in
      let m, ws = random_program rng in
      let budget = max 16384 (ws / 4) in
      let live_clock = Clock.create () in
      let trace = Tracer.create () in
      let live_backend =
        Tracer.recording trace
          (Backend.fastswap Cost_model.default live_clock (Memstore.create ())
             ~local_budget:budget)
      in
      ignore (Interp.run live_backend m ~entry:"main");
      let replay_clock = Clock.create () in
      let sink =
        Telemetry.Sink.recording ~series_interval:100_000 replay_clock
      in
      let replay_backend =
        Backend.fastswap ~telemetry:sink Cost_model.default replay_clock
          (Memstore.create ()) ~local_budget:budget
      in
      Tracer.replay trace replay_backend;
      Telemetry.Sink.final_sample sink;
      let live = Clock.counters live_clock in
      let replayed = Clock.counters replay_clock in
      let last_sample_ok =
        match Telemetry.Sink.recorder sink with
        | None -> false
        | Some r -> (
            match r.Telemetry.Sink.series with
            | None -> false
            | Some s -> (
                match List.rev (Telemetry.Series.samples s) with
                | last :: _ -> last.Telemetry.Series.counters = replayed
                | [] -> false))
      in
      live = replayed && last_sample_ok)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "differential",
    [
      q prop_differential;
      q prop_differential_fastswap;
      q prop_differential_o1;
      q prop_tracer_telemetry_roundtrip;
    ] )
