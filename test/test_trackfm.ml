(* Tests for the TrackFM core: pointer encoding, runtime guards, chunking
   support, compiler passes and the cost model. *)

module R = Trackfm.Runtime

let make_rt ?(object_size = 4096) ?(local_budget = 16 * 4096) ?use_state_table
    ?prefetch () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    R.create ?use_state_table ?prefetch cost clock store ~object_size
      ~local_budget
  in
  (rt, clock, store)

(* -- non-canonical pointers -- *)

let test_nc_ptr_encoding () =
  let p = Trackfm.Nc_ptr.tag_base + 12345 in
  Alcotest.(check bool) "tracked" true (Trackfm.Nc_ptr.is_tracked p);
  Alcotest.(check bool) "stack-range untracked" false
    (Trackfm.Nc_ptr.is_tracked (1 lsl 30));
  Alcotest.(check int) "offset" 12345 (Trackfm.Nc_ptr.offset p);
  Alcotest.(check int) "object id" 3
    (Trackfm.Nc_ptr.object_id p ~object_size_log2:12)

(* -- allocation -- *)

let test_malloc_returns_tagged () =
  let rt, _, _ = make_rt () in
  let p = R.tfm_malloc rt 100 in
  Alcotest.(check bool) "tagged" true (Trackfm.Nc_ptr.is_tracked p)

let test_malloc_distinct_and_free_reuse () =
  let rt, _, _ = make_rt () in
  let p1 = R.tfm_malloc rt 64 in
  let p2 = R.tfm_malloc rt 64 in
  Alcotest.(check bool) "distinct" true (p1 <> p2);
  R.tfm_free rt p1;
  let p3 = R.tfm_malloc rt 64 in
  Alcotest.(check int) "freed block reused" p1 p3

let test_realloc_preserves_data () =
  let rt, _, store = make_rt () in
  let p = R.tfm_malloc rt 32 in
  Memstore.store store ~addr:p ~size:8 424242;
  let q = R.tfm_realloc rt p 4096 in
  Alcotest.(check bool) "moved" true (q <> p);
  Alcotest.(check int) "data copied" 424242 (Memstore.load store ~addr:q ~size:8)

let test_state_table_size () =
  let rt, _, _ = make_rt ~object_size:4096 () in
  ignore (R.tfm_malloc rt (Tfm_util.Units.mib 1));
  (* 1 MiB / 4 KiB objects = 256 entries of 8 B *)
  Alcotest.(check int) "8B per object" (256 * 8) (R.state_table_bytes rt)

(* -- guards -- *)

let test_guard_custody_skip () =
  let rt, clock, _ = make_rt () in
  R.guard rt ~ptr:(1 lsl 30) ~size:8 ~write:false;
  Alcotest.(check int) "custody skip" 1 (Clock.get clock "tfm.custody_skips");
  Alcotest.(check int) "no guards" 0 (R.fast_guards rt + R.slow_guards rt);
  Alcotest.(check int) "only custody cycles" Cost_model.default.custody_check
    (Clock.cycles clock)

let test_guard_fast_vs_slow () =
  let rt, _, _ = make_rt () in
  let p = R.tfm_malloc rt 64 in
  R.guard rt ~ptr:p ~size:8 ~write:false;
  Alcotest.(check int) "first touch slow" 1 (R.slow_guards rt);
  R.guard rt ~ptr:p ~size:8 ~write:false;
  Alcotest.(check int) "second touch fast" 1 (R.fast_guards rt)

let test_guard_localizes_remote () =
  let rt, clock, _ = make_rt ~local_budget:4096 () in
  let p = R.tfm_malloc rt 64 in
  R.guard rt ~ptr:p ~size:8 ~write:true;
  (* Evict it by touching a different object (one-object budget). *)
  let q = R.tfm_malloc rt 8192 in
  R.guard rt ~ptr:(q + 4096) ~size:8 ~write:false;
  Alcotest.(check bool) "first object evicted" false
    (Aifm.Pool.is_local (R.pool rt) 0);
  Clock.reset clock;
  R.guard rt ~ptr:p ~size:8 ~write:false;
  Alcotest.(check bool) "remote fetch charged" true
    (Clock.get clock "net.fetches" = 1);
  Alcotest.(check bool) "fetch cost ~TCP remote" true
    (Clock.cycles clock > 30_000)

let test_guard_spanning_objects () =
  let rt, _, _ = make_rt ~object_size:4096 () in
  let p = R.tfm_malloc rt 8192 in
  (* 8-byte access straddling the object boundary localizes both. *)
  R.guard rt ~ptr:(p + 4092) ~size:8 ~write:false;
  Alcotest.(check bool) "both halves local" true
    (Aifm.Pool.is_local (R.pool rt) 0 && Aifm.Pool.is_local (R.pool rt) 1)

let test_state_table_ablation_costs_more () =
  let run ~use_state_table =
    let rt, clock, _ = make_rt ~use_state_table () in
    let p = R.tfm_malloc rt 4096 in
    R.guard rt ~ptr:p ~size:8 ~write:false;
    Clock.reset clock;
    for _ = 1 to 100 do
      R.guard rt ~ptr:p ~size:8 ~write:false
    done;
    Clock.cycles clock
  in
  Alcotest.(check bool) "without table is slower" true
    (run ~use_state_table:false > run ~use_state_table:true)

let test_metadata_cache_model () =
  let rt, clock, _ = make_rt ~object_size:4096 () in
  let p = R.tfm_malloc rt (Tfm_util.Units.mib 2) in
  (* Touch one object twice: first guard misses the metadata cache, the
     second hits. *)
  R.guard rt ~ptr:p ~size:8 ~write:false;
  let misses1 = Clock.get clock "tfm.state_table_misses" in
  R.guard rt ~ptr:p ~size:8 ~write:false;
  Alcotest.(check int) "second lookup cached" misses1
    (Clock.get clock "tfm.state_table_misses")

(* -- chunking runtime -- *)

let test_chunk_protocol () =
  let rt, clock, _ = make_rt ~object_size:4096 () in
  let p = R.tfm_malloc rt (3 * 4096) in
  R.chunk_init rt ~handle:0 ~stride_bytes:8;
  for i = 0 to ((3 * 4096 / 8) - 1) do
    R.chunk_access rt ~handle:0 ~ptr:(p + (i * 8)) ~size:8 ~write:false
  done;
  R.chunk_end rt ~handle:0;
  Alcotest.(check int) "3 locality guards (one per object)" 3
    (Clock.get clock "tfm.locality_guards");
  Alcotest.(check int) "one boundary check per access" (3 * 512)
    (Clock.get clock "tfm.boundary_checks");
  Alcotest.(check int) "no pins left" 0
    (if Aifm.Pool.pinned (R.pool rt) 0 then 1 else 0)

let test_chunk_pins_against_evacuator () =
  let rt, _, _ = make_rt ~local_budget:4096 () in
  let p = R.tfm_malloc rt 4096 in
  R.chunk_init rt ~handle:1 ~stride_bytes:8;
  R.chunk_access rt ~handle:1 ~ptr:p ~size:8 ~write:false;
  Alcotest.(check bool) "current chunk pinned" true
    (Aifm.Pool.pinned (R.pool rt) 0);
  R.chunk_end rt ~handle:1;
  Alcotest.(check bool) "unpinned at exit" false
    (Aifm.Pool.pinned (R.pool rt) 0)

let test_chunk_custody_check () =
  let rt, clock, _ = make_rt () in
  R.chunk_init rt ~handle:2 ~stride_bytes:8;
  R.chunk_access rt ~handle:2 ~ptr:(1 lsl 30) ~size:8 ~write:false;
  Alcotest.(check int) "untracked pointer skipped" 1
    (Clock.get clock "tfm.custody_skips")

(* -- cost model -- *)

let test_cost_model_equations () =
  let c = Cost_model.default in
  (* Eq. 1 and 2 at d = 512 *)
  Alcotest.(check int) "naive"
    ((511 * c.fast_guard_read) + c.slow_guard_read_local)
    (Trackfm.Cost_eq.naive_cost_per_object c ~density:512);
  Alcotest.(check int) "chunked"
    ((511 * c.boundary_check) + c.locality_guard)
    (Trackfm.Cost_eq.chunked_cost_per_object c ~density:512);
  (* Eq. 3 threshold: (cs - cl) / (cb - cf) *)
  let expected =
    float_of_int (c.slow_guard_read_local - c.locality_guard)
    /. float_of_int (c.boundary_check - c.fast_guard_read)
  in
  Alcotest.(check (float 1e-9)) "threshold" expected
    (Trackfm.Cost_eq.density_threshold c)

let test_cost_model_gating () =
  let c = Cost_model.default in
  Alcotest.(check bool) "dense loop chunked" true
    (Trackfm.Cost_eq.should_chunk_static c ~density:512);
  Alcotest.(check bool) "sparse loop not chunked" false
    (Trackfm.Cost_eq.should_chunk_static c ~density:1);
  (* Profiled gate: a dense loop with a tiny trip count cannot amortize
     the chunk entry cost. *)
  Alcotest.(check bool) "short trip rejected" false
    (Trackfm.Cost_eq.should_chunk_profiled c ~density:512 ~avg_trip:8.0);
  Alcotest.(check bool) "long trip accepted" true
    (Trackfm.Cost_eq.should_chunk_profiled c ~density:512 ~avg_trip:10_000.0)

let test_cost_model_crossover_consistent () =
  (* The break-even predicted by the equations must match where the
     per-object costs actually cross. *)
  let c = Cost_model.default in
  let d_star = Trackfm.Cost_eq.density_threshold c in
  let d_lo = int_of_float d_star and d_hi = int_of_float d_star + 2 in
  Alcotest.(check bool) "below crossover naive wins" true
    (Trackfm.Cost_eq.naive_cost_per_object c ~density:d_lo
    <= Trackfm.Cost_eq.chunked_cost_per_object c ~density:d_lo);
  Alcotest.(check bool) "above crossover chunked wins" true
    (Trackfm.Cost_eq.naive_cost_per_object c ~density:d_hi
    > Trackfm.Cost_eq.chunked_cost_per_object c ~density:d_hi)

(* -- passes -- *)

let program_with_malloc_loop () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let p = Builder.call b "malloc" [ Ir.Const 8192 ] in
  let stack = Builder.alloca b 64 in
  Builder.for_loop b ~init:(Ir.Const 0) ~bound:(Ir.Const 1024) (fun b iv ->
      let ptr = Builder.gep b p ~index:iv ~scale:8 () in
      let v = Builder.load b ptr in
      Builder.store b v ~ptr:(Builder.gep b stack ~index:(Ir.Const 0) ~scale:8 ()));
  Builder.ret b (Some (Ir.Const 0));
  m

let test_init_pass () =
  let m = program_with_malloc_loop () in
  Alcotest.(check bool) "inserted" true (Trackfm.Init_pass.run m);
  Alcotest.(check bool) "idempotent" false (Trackfm.Init_pass.run m);
  let f = Ir.find_func m "main" in
  match (Ir.entry f).instrs with
  | { kind = Ir.Call { callee; _ }; _ } :: _ ->
      Alcotest.(check string) "hook first" Trackfm.Init_pass.hook_name callee
  | _ -> Alcotest.fail "hook not at entry head"

let test_libc_pass () =
  let m = program_with_malloc_loop () in
  let n = Trackfm.Libc_pass.run m in
  Alcotest.(check int) "one rewrite" 1 n;
  let f = Ir.find_func m "main" in
  let has_tfm_malloc =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee = "tfm_malloc"; _ } -> true
            | _ -> false)
          b.instrs)
      f.blocks
  in
  Alcotest.(check bool) "malloc renamed" true has_tfm_malloc

let test_guard_pass_skips_stack () =
  let m = program_with_malloc_loop () in
  let report = Trackfm.Guard_pass.run m in
  Alcotest.(check int) "heap load guarded" 1 report.Trackfm.Guard_pass.guarded_loads;
  Alcotest.(check int) "stack store skipped" 0
    report.Trackfm.Guard_pass.guarded_stores;
  Alcotest.(check int) "one skip" 1 report.Trackfm.Guard_pass.skipped_non_heap;
  Verifier.check_module m

let test_chunk_pass_covers_accesses () =
  let m = program_with_malloc_loop () in
  let report =
    Trackfm.Chunk_pass.run Cost_model.default ~object_size:4096 ~mode:`All m
  in
  Alcotest.(check int) "one candidate" 1
    (List.length report.Trackfm.Chunk_pass.candidates);
  Alcotest.(check int) "one chunk site" 1 report.Trackfm.Chunk_pass.chunk_sites;
  Alcotest.(check int) "one covered access" 1
    (Hashtbl.length report.Trackfm.Chunk_pass.covered);
  Verifier.check_module m;
  (* Guard pass must skip the covered access. *)
  let greport = Trackfm.Guard_pass.run ~exclude:report.Trackfm.Chunk_pass.covered m in
  Alcotest.(check int) "guard pass skipped chunked" 1
    greport.Trackfm.Guard_pass.skipped_chunked

let test_pipeline_full () =
  let m = program_with_malloc_loop () in
  let report = Trackfm.Pipeline.run Trackfm.Pipeline.default_config m in
  Alcotest.(check bool) "init inserted" true report.Trackfm.Pipeline.init_inserted;
  Alcotest.(check int) "libc rewrites" 1 report.Trackfm.Pipeline.libc_rewrites;
  Alcotest.(check bool) "code grew" true
    (Trackfm.Pipeline.code_growth report > 1.0);
  Verifier.check_module m

let test_pipeline_off_mode_no_chunks () =
  let m = program_with_malloc_loop () in
  let config = { Trackfm.Pipeline.default_config with chunk_mode = `Off } in
  let report = Trackfm.Pipeline.run config m in
  Alcotest.(check int) "no chunk sites" 0
    report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.chunk_sites;
  Alcotest.(check int) "access guarded instead" 1
    report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads

let test_lowering_weights () =
  Alcotest.(check int) "guard weight" 16
    (Trackfm.Lowering.instr_weight
       (Ir.Call { callee = "tfm_guard_read"; args = [] }));
  Alcotest.(check int) "boundary weight" 3
    (Trackfm.Lowering.instr_weight
       (Ir.Call { callee = "tfm_chunk_access_read"; args = [] }));
  Alcotest.(check int) "plain weight" 1
    (Trackfm.Lowering.instr_weight (Ir.Binop (Ir.Add, Ir.Const 1, Ir.Const 2)))


(* -- multi-object-size extension -- *)

let make_multi_rt ?(local_budget = 64 * 4096) () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    R.create cost clock store ~object_size:4096 ~local_budget
      ~size_classes:[ (2048, 64, 0.5); (max_int, 4096, 0.5) ]
  in
  (rt, clock, store)

let test_multisize_routing () =
  let rt, _, _ = make_multi_rt () in
  Alcotest.(check int) "two classes" 2 (R.size_class_count rt);
  let small = R.tfm_malloc rt 64 in
  let large = R.tfm_malloc rt 100_000 in
  Alcotest.(check int) "small alloc in class 0" 0 (Trackfm.Nc_ptr.size_class small);
  Alcotest.(check int) "large alloc in class 1" 1 (Trackfm.Nc_ptr.size_class large);
  Alcotest.(check bool) "both tracked" true
    (Trackfm.Nc_ptr.is_tracked small && Trackfm.Nc_ptr.is_tracked large)

let test_multisize_guard_and_transfer_granularity () =
  let rt, clock, _ = make_multi_rt ~local_budget:(8 * 4096) () in
  (* Build remote copies in both classes. *)
  let small = Array.init 256 (fun _ -> R.tfm_malloc rt 64) in
  let large = R.tfm_malloc rt (32 * 4096) in
  Array.iter (fun p -> R.guard rt ~ptr:p ~size:8 ~write:true) small;
  for k = 0 to 31 do
    R.guard rt ~ptr:(large + (k * 4096)) ~size:8 ~write:true
  done;
  (* Flood both pools so earlier objects are evicted. *)
  let flood_small = Array.init 512 (fun _ -> R.tfm_malloc rt 64) in
  Array.iter (fun p -> R.guard rt ~ptr:p ~size:8 ~write:true) flood_small;
  let flood_large = R.tfm_malloc rt (64 * 4096) in
  for k = 0 to 63 do
    R.guard rt ~ptr:(flood_large + (k * 4096)) ~size:8 ~write:true
  done;
  (* A re-touch of a small value moves 64 bytes, of a large page 4096. *)
  Clock.reset clock;
  R.guard rt ~ptr:small.(0) ~size:8 ~write:false;
  Alcotest.(check int) "small fetch is 64B" 64 (Clock.get clock "net.bytes_in");
  Clock.reset clock;
  R.guard rt ~ptr:large ~size:8 ~write:false;
  Alcotest.(check int) "large fetch is 4KiB" 4096
    (Clock.get clock "net.bytes_in")

let test_multisize_free_realloc () =
  let rt, _, store = make_multi_rt () in
  let p = R.tfm_malloc rt 64 in
  Memstore.store store ~addr:p ~size:8 777;
  (* growing across the class boundary must migrate the data *)
  let q = R.tfm_realloc rt p 50_000 in
  Alcotest.(check int) "moved to large class" 1 (Trackfm.Nc_ptr.size_class q);
  Alcotest.(check int) "data migrated" 777 (Memstore.load store ~addr:q ~size:8);
  R.tfm_free rt q

let test_multisize_rejects_bad_config () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  let store = Memstore.create () in
  Alcotest.(check bool) "no catch-all rejected" true
    (try
       ignore
         (R.create cost clock store ~object_size:4096 ~local_budget:65536
            ~size_classes:[ (2048, 64, 1.0) ]);
       false
     with Invalid_argument _ -> true)


let test_free_releases_objects () =
  let rt, _, _ = make_rt ~object_size:4096 ~local_budget:(64 * 4096) () in
  let p = R.tfm_malloc rt (16 * 4096) in
  for k = 0 to 15 do
    R.guard rt ~ptr:(p + (k * 4096)) ~size:8 ~write:true
  done;
  let used_before = Aifm.Pool.local_used (R.pool rt) in
  R.tfm_free rt p;
  Alcotest.(check bool) "freed objects released from the budget" true
    (Aifm.Pool.local_used (R.pool rt) <= used_before - (15 * 4096))


let test_reverse_scan_chunks_and_prefetches_backward () =
  (* A downward loop over a large array: the chunk pass must pick it up
     with a negative stride, and the prefetcher must run backwards. *)
  let n = 32 * 1024 in
  let build () =
    let m = Ir.create_module () in
    let b = Builder.create m ~name:"main" ~nparams:0 in
    let p = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
    Builder.for_loop b ~hint:"init" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      (fun b i ->
        Builder.store b (Builder.binop b Ir.And i (Ir.Const 0xFF))
          ~ptr:(Builder.gep b p ~index:i ~scale:8 ()));
    ignore (Builder.call b "!bench_begin" []);
    (* acc accumulated through memory (a stack cell) so the reverse loop
       needs no accumulator phi *)
    let cell = Builder.alloca b 8 in
    Builder.store b (Ir.Const 0) ~ptr:cell;
    Builder.for_loop_down b ~init:(Ir.Const (n - 1)) ~bound:(Ir.Const (-1))
      (fun b i ->
        let v = Builder.load b (Builder.gep b p ~index:i ~scale:8 ()) in
        let acc = Builder.load b cell in
        Builder.store b
          (Builder.binop b Ir.And (Builder.add b acc v) (Ir.Const 0x3FFFFFFF))
          ~ptr:cell);
    Builder.ret b (Some (Builder.load b cell));
    Verifier.check_module m;
    m
  in
  let expected =
    let acc = ref 0 in
    for i = n - 1 downto 0 do
      acc := (!acc + (i land 0xFF)) land 0x3FFFFFFF
    done;
    !acc
  in
  let m = build () in
  let report =
    Trackfm.Pipeline.run
      { Trackfm.Pipeline.default_config with chunk_mode = `All }
      m
  in
  let reverse_candidate =
    List.exists
      (fun (c : Trackfm.Chunk_pass.candidate) ->
        c.Trackfm.Chunk_pass.byte_stride < 0 && c.Trackfm.Chunk_pass.selected)
      report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.candidates
  in
  Alcotest.(check bool) "negative-stride candidate chunked" true
    reverse_candidate;
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:(n * 2)
  in
  let r = Interp.run (Backend.trackfm rt store) m ~entry:"main" in
  Alcotest.(check int) "reverse scan result" expected r.Interp.ret;
  Alcotest.(check bool) "backward prefetch covered most fetches" true
    (Clock.get clock "net.prefetched_fetches"
    > Clock.get clock "aifm.demand_fetches")


let test_guard_debug_instrumentation () =
  (* Section 3.3's optional debug instrumentation: record which path each
     guard took, including whether the slow path went remote. *)
  let rt, _, _ = make_rt ~local_budget:4096 () in
  R.set_debug rt true;
  let p = R.tfm_malloc rt 64 in
  R.guard rt ~ptr:p ~size:8 ~write:true;        (* slow, local materialize *)
  R.guard rt ~ptr:p ~size:8 ~write:false;       (* fast *)
  R.guard rt ~ptr:(1 lsl 30) ~size:8 ~write:false; (* custody skip *)
  (* evict p by touching another object, then re-touch: slow + remote *)
  let q = R.tfm_malloc rt 8192 in
  R.guard rt ~ptr:(q + 4096) ~size:8 ~write:false;
  R.guard rt ~ptr:p ~size:8 ~write:false;
  let paths = List.map (fun (e : R.guard_event) -> e.path) (R.debug_events rt) in
  Alcotest.(check int) "five events" 5 (List.length paths);
  Alcotest.(check bool) "expected path sequence" true
    (match paths with
    | [ `Slow_local; `Fast; `Custody_skip; _; `Slow_remote ] -> true
    | _ -> false)

let test_pipeline_dump_after () =
  let m = program_with_malloc_loop () in
  let seen = ref [] in
  let config =
    {
      Trackfm.Pipeline.default_config with
      dump_after = Some (fun name _ -> seen := name :: !seen);
    }
  in
  ignore (Trackfm.Pipeline.run config m);
  Alcotest.(check (list string)) "pass order"
    [
      "runtime-init"; "loop-chunking"; "summaries"; "guard-transform";
      "guard-elision"; "libc-transform";
    ]
    (List.rev !seen)

let suite =
  ( "trackfm",
    [
      Alcotest.test_case "nc ptr encoding" `Quick test_nc_ptr_encoding;
      Alcotest.test_case "malloc tagged" `Quick test_malloc_returns_tagged;
      Alcotest.test_case "malloc reuse" `Quick test_malloc_distinct_and_free_reuse;
      Alcotest.test_case "realloc data" `Quick test_realloc_preserves_data;
      Alcotest.test_case "state table size" `Quick test_state_table_size;
      Alcotest.test_case "guard custody" `Quick test_guard_custody_skip;
      Alcotest.test_case "guard fast/slow" `Quick test_guard_fast_vs_slow;
      Alcotest.test_case "guard localizes" `Quick test_guard_localizes_remote;
      Alcotest.test_case "guard spanning" `Quick test_guard_spanning_objects;
      Alcotest.test_case "state table ablation" `Quick
        test_state_table_ablation_costs_more;
      Alcotest.test_case "metadata cache" `Quick test_metadata_cache_model;
      Alcotest.test_case "chunk protocol" `Quick test_chunk_protocol;
      Alcotest.test_case "chunk pins" `Quick test_chunk_pins_against_evacuator;
      Alcotest.test_case "chunk custody" `Quick test_chunk_custody_check;
      Alcotest.test_case "cost equations" `Quick test_cost_model_equations;
      Alcotest.test_case "cost gating" `Quick test_cost_model_gating;
      Alcotest.test_case "cost crossover" `Quick
        test_cost_model_crossover_consistent;
      Alcotest.test_case "init pass" `Quick test_init_pass;
      Alcotest.test_case "libc pass" `Quick test_libc_pass;
      Alcotest.test_case "guard pass stack skip" `Quick test_guard_pass_skips_stack;
      Alcotest.test_case "chunk pass coverage" `Quick
        test_chunk_pass_covers_accesses;
      Alcotest.test_case "full pipeline" `Quick test_pipeline_full;
      Alcotest.test_case "pipeline off mode" `Quick test_pipeline_off_mode_no_chunks;
      Alcotest.test_case "lowering weights" `Quick test_lowering_weights;
      Alcotest.test_case "multisize routing" `Quick test_multisize_routing;
      Alcotest.test_case "multisize granularity" `Quick
        test_multisize_guard_and_transfer_granularity;
      Alcotest.test_case "multisize free/realloc" `Quick
        test_multisize_free_realloc;
      Alcotest.test_case "multisize bad config" `Quick
        test_multisize_rejects_bad_config;
      Alcotest.test_case "free releases objects" `Quick
        test_free_releases_objects;
      Alcotest.test_case "reverse scan chunking" `Quick
        test_reverse_scan_chunks_and_prefetches_backward;
      Alcotest.test_case "guard debug events" `Quick
        test_guard_debug_instrumentation;
      Alcotest.test_case "pipeline dump_after" `Quick test_pipeline_dump_after;
    ] )
