(* Tests for the PR-2 fault-injection layer: spec parsing, outage
   windows, the retry/backoff/deadline ladder, the circuit breaker, and
   the graceful-degradation paths in the AIFM pool and Fastswap. *)

let cost = Cost_model.default

(* A config that fails most attempts but never outages: exercises the
   retry ladder without making blocking fetches wait out windows. *)
let flaky = { Faults.off with Faults.drop = 0.5 }

(* Pure outage config: every in-window attempt times out, everything
   outside is delivered cleanly. *)
let outage_cfg =
  { Faults.off with Faults.outage_period = 1_000_000; outage_len = 200_000 }

(* A fast policy so ladder tests stay cheap. *)
let quick_policy =
  {
    Net.max_attempts = 3;
    attempt_timeout = 1_000;
    op_deadline = 1_000_000;
    backoff_base = 100;
    backoff_cap = 400;
    fail_fast_cycles = 5;
    probe_interval = 50_000;
  }

(* -- spec grammar -------------------------------------------------------- *)

let test_parse_roundtrip () =
  List.iter
    (fun spec ->
      match Faults.parse spec with
      | Error e -> Alcotest.failf "parse %s: %s" spec e
      | Ok cfg -> (
          match Faults.parse (Faults.to_string cfg) with
          | Error e -> Alcotest.failf "reparse %s: %s" (Faults.to_string cfg) e
          | Ok cfg' ->
              Alcotest.(check bool)
                (spec ^ " round-trips") true (cfg = cfg')))
    [
      "light"; "medium"; "heavy";
      "drop=0.02,timeout=0.01,spike=0.05:40000:1.5,outage=2000000:150000";
      "drop=0.1"; "outage=500000:1000"; "spike=0.2:8000";
      "crash=1500000:250000"; "corrupt=0.01";
      "crash=1000000:50000,corrupt=0.02,drop=0.01";
    ];
  Alcotest.(check bool) "none parses to off" true
    (Faults.parse "none" = Ok Faults.off);
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %s" bad
      | Error _ -> ())
    [
      "bogus"; "drop=1.5"; "drop=x"; "outage=100"; "spike="; "drop";
      "crash=100"; "crash=100:200"; "crash=100:0"; "corrupt=1.0";
      "corrupt=0.1:2";
    ]

(* Rejections must name the offending token and the usage, not a generic
   catch-all: a typo'd key lists the valid keys, a known key with the
   wrong arity gets that key's usage line. *)
let test_parse_error_messages () =
  let expect_error spec needles =
    match Faults.parse spec with
    | Ok _ -> Alcotest.failf "accepted bad spec %s" spec
    | Error msg ->
        List.iter
          (fun needle ->
            let present =
              let nl = String.length needle and ml = String.length msg in
              let rec scan i =
                i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1))
              in
              scan 0
            in
            if not present then
              Alcotest.failf "error for %s lacks %S: %s" spec needle msg)
          needles
  in
  expect_error "timout=0.1" [ "timout"; "valid keys"; "drop" ];
  expect_error "drop=0.1:5" [ "drop needs drop=PROB" ];
  expect_error "spike=0.1" [ "spike needs spike=PROB:CYCLES" ];
  expect_error "crash=5" [ "crash needs crash=PERIOD:DOWNTIME" ];
  expect_error "corrupt=0.1:2" [ "corrupt needs corrupt=RATE" ];
  expect_error "drop" [ "not key=value"; "valid keys" ];
  expect_error "crash=abc:5" [ "bad integer"; "abc" ];
  expect_error "drop=zz" [ "bad float"; "zz" ];
  (* Range errors come from the shared validator with its own wording. *)
  expect_error "crash=100:200" [ "downtime" ];
  expect_error "corrupt=1.0" [ "corrupt" ]

let test_create_validation () =
  Alcotest.(check bool) "off collapses to disabled" false
    (Faults.enabled (Faults.create Faults.off));
  let bad label f =
    match f () with
    | (_ : Faults.t) -> Alcotest.failf "%s: accepted invalid config" label
    | exception Invalid_argument _ -> ()
  in
  bad "drop+timeout >= 1" (fun () ->
      Faults.create { Faults.off with Faults.drop = 0.6; timeout = 0.5 });
  bad "outage_len >= period" (fun () ->
      Faults.create
        { Faults.off with Faults.outage_period = 100; outage_len = 100 })

(* -- outage windows ------------------------------------------------------ *)

let test_outage_windows_deterministic () =
  let f1 = Faults.create ~seed:9 outage_cfg in
  let f2 = Faults.create ~seed:9 outage_cfg in
  for i = 0 to 7 do
    Alcotest.(check bool)
      "same seed, same windows" true
      (Faults.outage_window f1 i = Faults.outage_window f2 i)
  done;
  match Faults.outage_window f1 0 with
  | None -> Alcotest.fail "no window with outages configured"
  | Some (start, stop) ->
      Alcotest.(check int) "window length" outage_cfg.Faults.outage_len
        (stop - start);
      Alcotest.(check bool) "inside" true
        (Faults.in_outage f1 ~now:(start + 1));
      Alcotest.(check bool) "before" false
        (Faults.in_outage f1 ~now:(start - 1));
      Alcotest.(check bool) "after" false (Faults.in_outage f1 ~now:(stop + 1));
      Alcotest.(check (option int)) "outage_end" (Some stop)
        (Faults.outage_end f1 ~now:(start + 1))

(* -- zero cost when disabled --------------------------------------------- *)

let test_disabled_zero_cost () =
  let clock = Clock.create () in
  let net = Net.create cost clock Net.Tcp in
  Net.fetch net ~bytes:4096;
  Alcotest.(check int) "demand fetch = plain transfer"
    (Cost_model.transfer_cycles cost ~latency:cost.Cost_model.tcp_latency
       ~bytes:4096)
    (Clock.cycles clock);
  let before = Clock.cycles clock in
  Net.fetch_prefetched net ~bytes:4096;
  Alcotest.(check int) "prefetched fetch = residual transfer"
    (Cost_model.transfer_cycles cost ~latency:cost.Cost_model.prefetch_hit
       ~bytes:4096)
    (Clock.cycles clock - before);
  List.iter
    (fun c ->
      Alcotest.(check int) ("no fault counter " ^ c) 0 (Clock.get clock c))
    [
      "net.retries"; "net.timeouts"; "net.nacks"; "net.backoff_cycles";
      "net.stall_cycles"; "net.fail_fast"; "net.breaker_opens";
    ]

(* -- retry ladder -------------------------------------------------------- *)

let run_flaky_sequence seed =
  let clock = Clock.create () in
  let net =
    Net.create ~faults:(Faults.create ~seed flaky) ~policy:quick_policy cost
      clock Net.Tcp
  in
  for _ = 1 to 50 do
    Net.fetch net ~bytes:1024
  done;
  (Clock.cycles clock, List.sort compare (Clock.counters clock))

let test_backoff_deterministic () =
  let c1, k1 = run_flaky_sequence 42 in
  let c2, k2 = run_flaky_sequence 42 in
  Alcotest.(check int) "same seed, same cycles" c1 c2;
  Alcotest.(check bool) "same seed, same counters" true (k1 = k2);
  Alcotest.(check bool) "retries happened" true
    (List.mem_assoc "net.retries" k1 && List.assoc "net.retries" k1 > 0)

let test_backoff_bounds () =
  (* Each recorded Retry backoff must lie in [base/2, cap] with the
     doubling schedule: attempt k's backoff <= min(cap, base lsl (k-1)). *)
  let clock = Clock.create () in
  let net =
    Net.create ~faults:(Faults.create ~seed:5 flaky) ~policy:quick_policy cost
      clock Net.Tcp
  in
  let seen = ref 0 in
  Net.on_event net (fun e ->
      match e with
      | Net.Retry { attempt; backoff; _ } ->
          incr seen;
          let cap_k =
            min quick_policy.Net.backoff_cap
              (quick_policy.Net.backoff_base lsl (attempt - 1))
          in
          Alcotest.(check bool) "backoff >= half base" true
            (backoff >= quick_policy.Net.backoff_base / 2);
          Alcotest.(check bool) "backoff <= schedule cap" true
            (backoff <= cap_k)
      | _ -> ());
  for _ = 1 to 50 do
    Net.fetch net ~bytes:1024
  done;
  Alcotest.(check bool) "observed retries" true (!seen > 0)

let test_budget_exhaustion_propagates () =
  let cfg = { Faults.off with Faults.drop = 0.7; timeout = 0.25 } in
  let clock = Clock.create () in
  let net =
    Net.create ~faults:(Faults.create ~seed:3 cfg) ~policy:quick_policy cost
      clock Net.Tcp
  in
  let rec first_error budget =
    if budget = 0 then Alcotest.fail "no ladder exhaustion in 500 ops"
    else
      match Net.try_fetch net ~bytes:512 with
      | Ok () -> first_error (budget - 1)
      | Error e -> e
  in
  (match first_error 500 with
  | Net.Budget_exhausted { attempts } ->
      Alcotest.(check int) "gave up after the full budget"
        quick_policy.Net.max_attempts attempts
  | Net.Unreachable _ ->
      Alcotest.fail "breaker cannot be open before the first exhaustion");
  (* The exhausted ladder trips the breaker: next op fails fast without
     touching the wire. *)
  Alcotest.(check bool) "breaker open" false (Net.remote_available net);
  let timeouts = Clock.get clock "net.timeouts" in
  let nacks = Clock.get clock "net.nacks" in
  (match Net.try_fetch net ~bytes:512 with
  | Error (Net.Unreachable _) -> ()
  | Ok () | Error (Net.Budget_exhausted _) ->
      Alcotest.fail "expected fail-fast while breaker open");
  Alcotest.(check int) "no wire traffic when failing fast" timeouts
    (Clock.get clock "net.timeouts");
  Alcotest.(check int) "no nacks when failing fast" nacks
    (Clock.get clock "net.nacks");
  Alcotest.(check bool) "fail-fast counted" true
    (Clock.get clock "net.fail_fast" > 0)

let test_deadline_respected () =
  (* Attempts nearly always time out; the deadline must stop the ladder
     well before max_attempts. *)
  let cfg = { Faults.off with Faults.timeout = 0.99 } in
  let policy =
    {
      quick_policy with
      Net.max_attempts = 100;
      attempt_timeout = 10_000;
      op_deadline = 25_000;
      backoff_base = 10;
      backoff_cap = 20;
    }
  in
  let clock = Clock.create () in
  let net =
    Net.create ~faults:(Faults.create ~seed:11 cfg) ~policy cost clock Net.Tcp
  in
  let failed_attempts = ref None in
  Net.on_event net (fun e ->
      match e with
      | Net.Fetch_failed { attempts } when !failed_attempts = None ->
          failed_attempts := Some attempts
      | _ -> ());
  let start = Clock.cycles clock in
  (match Net.try_fetch net ~bytes:512 with
  | Error (Net.Budget_exhausted { attempts }) ->
      Alcotest.(check bool) "deadline cut the ladder short" true (attempts < 10)
  | Ok () -> Alcotest.fail "0.99 timeout rate should not deliver on op 1"
  | Error (Net.Unreachable _) -> Alcotest.fail "no outage configured");
  let spent = Clock.cycles clock - start in
  Alcotest.(check bool) "spent bounded by deadline + one attempt" true
    (spent <= policy.Net.op_deadline + policy.Net.attempt_timeout
            + policy.Net.backoff_cap)

(* -- circuit breaker ----------------------------------------------------- *)

let test_breaker_transitions () =
  let faults = Faults.create ~seed:4 outage_cfg in
  let start, stop =
    match Faults.outage_window faults 0 with
    | Some w -> w
    | None -> Alcotest.fail "expected an outage window"
  in
  let clock = Clock.create () in
  let policy = { quick_policy with Net.probe_interval = 10_000 } in
  let net = Net.create ~faults ~policy cost clock Net.Tcp in
  let opened = ref 0 and closed = ref 0 in
  Net.on_event net (fun e ->
      match e with
      | Net.Breaker_opened _ -> incr opened
      | Net.Breaker_closed { opened_at; at } ->
          incr closed;
          Alcotest.(check bool) "span is ordered" true (opened_at < at)
      | _ -> ());
  (* Clean fetch before the window: breaker stays closed. *)
  Net.fetch net ~bytes:1024;
  Alcotest.(check bool) "closed before outage" true (Net.remote_available net);
  (* Step into the window: the ladder exhausts and the breaker opens. *)
  Clock.tick clock (start + 1 - Clock.cycles clock);
  (match Net.try_fetch net ~bytes:1024 with
  | Error (Net.Unreachable _) -> ()
  | Ok () -> Alcotest.fail "fetch delivered inside an outage window"
  | Error (Net.Budget_exhausted _) ->
      Alcotest.fail "outage failures should report Unreachable");
  Alcotest.(check int) "breaker opened once" 1 !opened;
  Alcotest.(check bool) "open during outage" false (Net.remote_available net);
  (* A blocking fetch rides out the window via half-open probes, then the
     breaker closes on the first delivered probe. *)
  Net.fetch net ~bytes:1024;
  Alcotest.(check bool) "closed after recovery" true (Net.remote_available net);
  Alcotest.(check int) "recovery recorded" 1 !closed;
  Alcotest.(check bool) "clock rode out the window" true
    (Clock.cycles clock >= stop);
  Alcotest.(check bool) "probes were sent" true
    (Clock.get clock "net.breaker_probes" > 0)

(* An outage window is [start, stop): a recovery probe landing exactly on
   [stop] must deliver and close the breaker, while one cycle earlier it
   must time out and re-arm the breaker past the window. Guards the
   off-by-one at the window boundary in both Faults.in_outage and the
   half-open probe path. *)
let test_breaker_probe_at_outage_boundary () =
  let window faults =
    match Faults.outage_window faults 0 with
    | Some w -> w
    | None -> Alcotest.fail "expected an outage window"
  in
  (* The boundary itself, straight from the injector. *)
  let faults = Faults.create ~seed:4 outage_cfg in
  let start, stop = window faults in
  Alcotest.(check bool) "stop-1 inside" true
    (Faults.in_outage faults ~now:(stop - 1));
  Alcotest.(check bool) "stop outside (exclusive)" false
    (Faults.in_outage faults ~now:stop);
  Alcotest.(check (option int)) "outage_end at stop-1" (Some stop)
    (Faults.outage_end faults ~now:(stop - 1));
  (* Probe exactly at stop: delivered, breaker closes. *)
  let clock = Clock.create () in
  let net = Net.create ~faults ~policy:quick_policy cost clock Net.Tcp in
  Clock.tick clock (start + 1);
  (match Net.try_fetch net ~bytes:64 with
  | Error (Net.Unreachable { probe_at }) ->
      Alcotest.(check bool) "first probe scheduled inside the window" true
        (probe_at < stop)
  | Ok () -> Alcotest.fail "fetch delivered inside an outage window"
  | Error (Net.Budget_exhausted _) ->
      Alcotest.fail "outage failures should report Unreachable");
  Clock.tick clock (stop - Clock.cycles clock);
  Alcotest.(check int) "clock sits exactly on stop" stop (Clock.cycles clock);
  (match Net.try_fetch net ~bytes:64 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "probe at now = stop must deliver");
  Alcotest.(check bool) "breaker closed by the boundary probe" true
    (Net.remote_available net);
  Alcotest.(check bool) "probe was counted" true
    (Clock.get clock "net.breaker_probes" > 0);
  (* Probe at stop - 1: still in the window, times out, and the breaker
     re-arms with its next probe strictly past the window. *)
  let faults = Faults.create ~seed:4 outage_cfg in
  let clock = Clock.create () in
  let net = Net.create ~faults ~policy:quick_policy cost clock Net.Tcp in
  Clock.tick clock (start + 1);
  (match Net.try_fetch net ~bytes:64 with
  | Error (Net.Unreachable _) -> ()
  | _ -> Alcotest.fail "expected the ladder to open the breaker");
  Clock.tick clock (stop - 1 - Clock.cycles clock);
  (match Net.try_fetch net ~bytes:64 with
  | Error (Net.Unreachable { probe_at }) ->
      Alcotest.(check bool) "failed boundary probe re-arms past stop" true
        (probe_at > stop)
  | Ok () -> Alcotest.fail "probe one cycle before stop must still fail"
  | Error (Net.Budget_exhausted _) ->
      Alcotest.fail "probe failures should report Unreachable");
  Alcotest.(check bool) "breaker still open" false (Net.remote_available net);
  (* A blocking fetch then waits out the re-armed probe and recovers. *)
  Net.fetch net ~bytes:64;
  Alcotest.(check bool) "recovered after the window" true
    (Net.remote_available net);
  Alcotest.(check bool) "recovery happened past stop" true
    (Clock.cycles clock > stop)

(* -- prefetched fetches share the fault path ----------------------------- *)

let test_prefetched_rides_fault_path () =
  let clock = Clock.create () in
  let net =
    Net.create ~faults:(Faults.create ~seed:6 flaky) ~policy:quick_policy cost
      clock Net.Tcp
  in
  for _ = 1 to 50 do
    Net.fetch_prefetched net ~bytes:1024
  done;
  Alcotest.(check int) "all delivered as prefetched" 50
    (Clock.get clock "net.prefetched_fetches");
  Alcotest.(check bool) "prefetched fetches retried" true
    (Clock.get clock "net.retries" > 0)

(* -- graceful degradation ------------------------------------------------ *)

let open_breaker_in_outage net faults clock =
  let start, _ =
    match Faults.outage_window faults 0 with
    | Some w -> w
    | None -> Alcotest.fail "expected an outage window"
  in
  Clock.tick clock (max 0 (start + 1 - Clock.cycles clock));
  match Net.try_fetch net ~bytes:64 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fetch delivered inside an outage window"

let test_pool_defers_eviction_during_outage () =
  let faults = Faults.create ~seed:8 outage_cfg in
  let clock = Clock.create () in
  let net = Net.create ~faults ~policy:quick_policy cost clock Net.Tcp in
  let pool =
    Aifm.Pool.create cost clock ~net ~object_size:4096 ~local_budget:8192
  in
  open_breaker_in_outage net faults clock;
  Alcotest.(check bool) "breaker open" false (Net.remote_available net);
  (* Three dirty objects against a two-object budget: nothing can be
     written back, so eviction defers instead of raising. *)
  for id = 0 to 2 do
    Aifm.Pool.materialize pool id;
    Aifm.Pool.mark_dirty pool id
  done;
  Alcotest.(check bool) "eviction deferred" true
    (Clock.get clock "aifm.evictions_deferred" > 0);
  Alcotest.(check bool) "budget overshoot absorbed" true
    (Aifm.Pool.local_used pool > Aifm.Pool.local_budget pool)

let test_fastswap_defers_reclaim_during_outage () =
  (* The swap transport runs the default policy (128 Kcycle attempt
     timeouts), so the window must be deep enough that its retry ladder
     exhausts inside it. *)
  let deep_outage =
    { Faults.off with Faults.outage_period = 20_000_000; outage_len = 5_000_000 }
  in
  let faults = Faults.create ~seed:8 deep_outage in
  let clock = Clock.create () in
  let page = Fastswap.Swap.page_size in
  let swap =
    Fastswap.Swap.create ~faults cost clock ~local_budget:(2 * page)
  in
  open_breaker_in_outage (Fastswap.Swap.net swap) faults clock;
  (* Three dirty pages against a two-page budget while the remote is
     down: the kernel cannot push them out, so reclaim defers. *)
  for p = 0 to 2 do
    Fastswap.Swap.access swap ~addr:(p * page) ~size:8 ~write:true
  done;
  Alcotest.(check bool) "reclaim deferred" true
    (Clock.get clock "fastswap.reclaim_deferred" > 0);
  Alcotest.(check int) "overshoot absorbed" 3
    (Fastswap.Swap.present_pages swap);
  Alcotest.(check int) "nothing evicted while down" 0
    (Clock.get clock "fastswap.evictions")

(* -- end-to-end determinism through the runtime -------------------------- *)

let medium =
  match Faults.parse "medium" with Ok cfg -> cfg | Error e -> failwith e

let run_workload_faulted seed =
  let open Workloads in
  let n = 20_000 in
  let budget = Stream.working_set_bytes ~n ~kernel:Stream.Sum () / 4 in
  let opts =
    {
      (Driver.tfm_defaults ~local_budget:budget) with
      Driver.faults = Faults.create ~seed medium;
    }
  in
  let o, _ =
    Driver.run_trackfm (fun () -> Stream.build ~n ~kernel:Stream.Sum ()) opts
  in
  (o.Driver.ret, o.Driver.cycles, List.sort compare (Clock.counters o.Driver.clock))

let test_runtime_faulted_deterministic () =
  let r1, c1, k1 = run_workload_faulted 13 in
  let r2, c2, k2 = run_workload_faulted 13 in
  Alcotest.(check int) "checksum stable" r1 r2;
  Alcotest.(check int) "checksum correct"
    (Workloads.Stream.checksum ~n:20_000 ~kernel:Workloads.Stream.Sum ())
    r1;
  Alcotest.(check int) "cycles stable" c1 c2;
  Alcotest.(check bool) "counters stable" true (k1 = k2);
  Alcotest.(check bool) "faults actually fired" true
    (List.mem_assoc "net.retries" k1 || List.mem_assoc "net.timeouts" k1)

let suite =
  ( "faults",
    [
      Alcotest.test_case "spec round-trip" `Quick test_parse_roundtrip;
      Alcotest.test_case "parse error messages" `Quick
        test_parse_error_messages;
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "outage windows" `Quick
        test_outage_windows_deterministic;
      Alcotest.test_case "disabled zero cost" `Quick test_disabled_zero_cost;
      Alcotest.test_case "backoff deterministic" `Quick
        test_backoff_deterministic;
      Alcotest.test_case "backoff bounds" `Quick test_backoff_bounds;
      Alcotest.test_case "budget exhaustion" `Quick
        test_budget_exhaustion_propagates;
      Alcotest.test_case "deadline respected" `Quick test_deadline_respected;
      Alcotest.test_case "breaker transitions" `Quick test_breaker_transitions;
      Alcotest.test_case "breaker probe at outage boundary" `Quick
        test_breaker_probe_at_outage_boundary;
      Alcotest.test_case "prefetched fault path" `Quick
        test_prefetched_rides_fault_path;
      Alcotest.test_case "pool defers eviction" `Quick
        test_pool_defers_eviction_during_outage;
      Alcotest.test_case "fastswap defers reclaim" `Quick
        test_fastswap_defers_reclaim_during_outage;
      Alcotest.test_case "runtime determinism" `Quick
        test_runtime_faulted_deterministic;
    ] )
