let () =
  Alcotest.run "trackfm-repro"
    [
      Test_util.suite;
      Test_ir.suite;
      Test_analysis.suite;
      Test_memsim.suite;
      Test_faults.suite;
      Test_cluster.suite;
      Test_aifm.suite;
      Test_fastswap.suite;
      Test_shenango.suite;
      Test_trackfm.suite;
      Test_checker.suite;
      Test_opt.suite;
      Test_interp.suite;
      Test_workloads.suite;
      Test_serving.suite;
      Test_telemetry.suite;
      Test_span.suite;
      Test_differential.suite;
      Test_engine.suite;
      Test_integration.suite;
    ]
