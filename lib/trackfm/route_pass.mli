(** Hybrid data-plane routing: per-site choice between guards and the
    page-fault path, driven by {!Tfm_analysis.Access_pattern}.

    Pointer-chasing sites have their private guard rewritten in place
    into a page call (same instruction id and operands, so the access
    stays adjacent to its protection); streaming sites keep guards;
    Mixed/Unknown sites keep guards unless the [`Profiled] mode's
    hotspot evidence upgrades them. Every rewrite is pre-checked against
    the custody dataflow (the access must not be covered by any other
    fact — exactly-one by construction) and leaves a routing witness the
    checker re-proves independently
    ({!Tfm_checker.Coverage.check_routing}). *)

type mode = [ `Off | `Static | `Profiled ]

val mode_to_string : mode -> string

type report = {
  routed : int;  (** sites moved to the page path *)
  kept_pinned : int;  (** chasing sites kept: guard pinned by a witness *)
  kept_covered : int;  (** chasing sites kept: covered by another fact *)
  upgraded : int;  (** Mixed/Unknown sites routed by profile evidence *)
  classes : (string * Tfm_analysis.Access_pattern.site) list;
      (** full per-function classification, function order then
          ascending instruction id *)
  routes : (string * Tfm_checker.Coverage.routing) list;
      (** per-function witness records for every rewrite *)
  site_calls : ((string * int) * int) list;
      (** (function, protecting call id) -> access id for classified
          sites with an adjacent private call; bridges telemetry keys
          (which name the call) to classification keys (the access) *)
  alloc_shapes : ((string * int) * string) list;
      (** (function, allocation call id) -> structure kind for every
          allocation site the shape analysis resolved as recursive;
          placement-hint groundwork for the telemetry hotspot table *)
}

val empty : report
(** The no-op report (routing off). *)

val class_of_site :
  report -> func:string -> instr:int -> Tfm_analysis.Access_pattern.cls option
(** Static class of a site by access instruction id (callers mapping
    telemetry keys — which name the protecting call — first resolve the
    adjacent access). *)

val class_of_call :
  report -> func:string -> instr:int -> Tfm_analysis.Access_pattern.cls option
(** Static class of a site by its protecting call's instruction id (the
    key telemetry uses), via [site_calls]. *)

val shape_of_alloc : report -> func:string -> instr:int -> string option
(** Structure kind of an allocation call, via [alloc_shapes]. *)

val run :
  ?summaries:Tfm_analysis.Summary.env ->
  ?shapes:Tfm_analysis.Shape.env ->
  ?pinned:(string * int) list ->
  ?hotspots:(string * int) list ->
  mode:mode ->
  Ir.modul ->
  report
(** Transforms the module in place. [shapes] lets the classifier see
    dereference chains through helper calls (and fills [alloc_shapes]);
    the coverage checker stays independent of it. [pinned] lists
    (function, guard id) pairs that must stay guards — the elision
    witnesses. [hotspots] lists (function, instr id) pairs the profile
    shows slow-path dominated; only consulted in [`Profiled] mode, and
    only ever to upgrade Mixed/Unknown sites to the page path. *)
