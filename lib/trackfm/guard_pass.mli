(** Pointer-guard analysis and transformation (Sections 3.1 and 3.3).

    The analysis marks every load/store that may touch heap memory (via
    the {!Tfm_analysis.Alias} classification); the transform prepends the
    compiler-injected guard call that performs the custody check and the
    fast/slow path logic at run time. Accesses already covered by the
    loop chunking transform are skipped — they carry the cheaper
    boundary-check protocol instead. *)

type report = {
  guarded_loads : int;
  guarded_stores : int;
  skipped_non_heap : int;
      (** accesses proven stack/global, left unguarded *)
  skipped_chunked : int;
}

val all_accesses : Ir.func -> (int * bool) list
(** Every load/store in one function: (instruction id, is_store). Each
    lands in exactly one {!report} bucket when {!run} processes it, so
    [guarded_loads + guarded_stores + skipped_non_heap + skipped_chunked]
    over a module equals the total across its functions. *)

val analyze :
  ?summaries:Tfm_analysis.Summary.env -> Ir.func -> (int * bool) list
(** Eligible accesses in one function: (instruction id, is_store). *)

val run :
  ?summaries:Tfm_analysis.Summary.env ->
  ?exclude:(int, unit) Hashtbl.t ->
  Ir.modul ->
  report
(** Insert guards module-wide, skipping ids in [exclude]. With
    [summaries] the alias classification consults interprocedural
    summaries, so pointers proven non-heap across calls (wrapper
    results that are really stack/global, pass-through helpers) skip
    their guards. *)

val guard_read_name : string
val guard_write_name : string
