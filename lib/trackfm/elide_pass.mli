(** Redundant-guard elimination and loop-invariant guard hoisting.

    Uses the checker's must-available custody dataflow
    ({!Tfm_checker.Facts}) to delete guards whose bytes are provably
    already in custody, widen guards across congruent struct fields,
    promote read guards under read-modify-write stores, and hoist
    guards on loop-invariant pointers to preheaders. Every deleted
    guard leaves a witness record the checker independently re-verifies
    ({!Tfm_checker.Coverage.check_witnesses}). *)

type report = {
  elided_same : int;  (** deleted: dominating guard on the same pointer *)
  elided_congruent : int;  (** deleted: widened same-slot guard covers it *)
  elided_range : int;  (** deleted: counted loop guarded the interval *)
  upgraded : int;  (** read guards promoted to write guards *)
  widened : int;  (** guards whose span grew to absorb a neighbour *)
  hoisted : int;  (** guards moved to loop preheaders *)
  elisions : (string * Tfm_checker.Coverage.elision) list;
      (** per-function witness records for every deletion *)
}

val empty : report
(** The no-op report (elision disabled). *)

val total_elided : report -> int

val run :
  ?summaries:Tfm_analysis.Summary.env -> object_size:int -> Ir.modul -> report
(** Transforms the module in place. [object_size] caps congruent
    widening so a widened guard still spans at most one object. With
    [summaries], custody facts survive calls the interprocedural
    analysis proves custody-preserving, enabling cross-call redundant
    guard elimination; the pipeline's final witness re-check still runs
    through the checker's independent module-level re-derivation. *)
