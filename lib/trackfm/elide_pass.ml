(* Dataflow-driven redundant-guard elimination and loop-invariant guard
   hoisting — the first optimization the guard-coverage checker licenses
   (paper Sections 3.1/3.3: the compiler analyses are what make guarded
   far memory cheap; a guard dominated by an equivalent guard with no
   eviction point between them is pure overhead).

   Four rewrites, all justified by the same must-available custody facts
   the checker verifies with ({!Tfm_checker.Facts}):

   - Same-pointer elision: delete a guard whose bytes are already in
     custody at its program point (dominating guard on the same SSA
     pointer, no clobber between).
   - Congruent-slot widening: two guards on geps that differ only in the
     constant field offset (same base and index registers) are merged by
     widening the dominating guard's size to span both fields, then
     deleting the dominated one. The widened span is capped at the
     object size, so the runtime still localizes at most the two objects
     it already handles for straddling accesses.
   - Strength upgrade: a write guard covered by read custody promotes
     the covering read guards to write guards (the read-modify-write
     idiom: load x; store f(x) through the same pointer needs one write
     guard, not a read and a write). Upgrading marks dirty earlier,
     which is semantically conservative.
   - Loop-invariant hoisting: a guard on a loop-invariant pointer inside
     a clobber-free loop body moves to the preheader — one custody check
     per loop entry instead of one per iteration. Speculative execution
     of a guard is safe: on a pointer the runtime does not track it is a
     custody skip, otherwise it localizes an object the loop was going
     to touch anyway.

   Every deleted guard leaves a witness record (which access lost its
   private guard, under which rule, vouched for by which surviving guard
   sites); the pipeline hands those records back to the checker, which
   re-verifies them through dominators and loop structure — machinery
   independent of the dataflow that licensed the deletion. *)

module F = Tfm_checker.Facts
module C = Tfm_checker.Coverage

type report = {
  elided_same : int;
  elided_congruent : int;
  elided_range : int;
  upgraded : int;  (* read guards promoted to write guards *)
  widened : int;  (* guards whose span grew to absorb a neighbour *)
  hoisted : int;  (* guards moved to loop preheaders *)
  elisions : (string * C.elision) list;
}

let empty =
  {
    elided_same = 0;
    elided_congruent = 0;
    elided_range = 0;
    upgraded = 0;
    widened = 0;
    hoisted = 0;
    elisions = [];
  }

let total_elided r = r.elided_same + r.elided_congruent + r.elided_range

type counters = {
  mutable same : int;
  mutable congruent : int;
  mutable range : int;
  mutable ups : int;
  mutable wides : int;
  mutable hoists : int;
  mutable records : (string * C.elision) list;
}

let guard_parts (i : Ir.instr) =
  match i.kind with
  | Ir.Call { callee; args = [ ptr; Ir.Const size ] }
    when Intrinsics.is_guard callee ->
      Some (callee = Intrinsics.guard_write, ptr, size)
  | _ -> None

(* The access a guard protects: the next load/store through the same
   pointer in its block (the injector places guards immediately before
   their access, so this is the adjacent instruction in practice). *)
let find_access ptr rest ~fallback =
  match
    List.find_opt
      (fun (j : Ir.instr) ->
        match j.kind with
        | Ir.Load { ptr = p; _ } | Ir.Store { ptr = p; _ } -> p = ptr
        | _ -> false)
      rest
  with
  | Some j -> j.id
  | None -> fallback

(* -- loop-invariant hoisting -------------------------------------------- *)

let hoist_func ?summaries (cnt : counters) (f : Ir.func) =
  let loop_info = Loops.analyze f in
  let ind = Tfm_analysis.Induction.analyze f in
  let body_clobber_free (loop : Loops.loop) =
    List.for_all
      (fun lbl ->
        let b = Ir.find_block f lbl in
        List.for_all
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; _ } ->
                not (Tfm_analysis.Summary.call_clobbers ?env:summaries callee)
            | _ -> true)
          b.instrs)
      loop.body
  in
  (* Innermost first: a guard hoisted to an inner preheader can move
     again when it is invariant in the enclosing loop too. *)
  let loops =
    List.sort
      (fun (a : Loops.loop) b -> compare b.depth a.depth)
      (Loops.loops loop_info)
  in
  List.iter
    (fun (loop : Loops.loop) ->
      match loop.preheader with
      | Some ph when body_clobber_free loop ->
          (* Collect in-body guards on loop-invariant pointers, with the
             access each protects (looked up before any mutation). *)
          let candidates = ref [] in
          List.iter
            (fun lbl ->
              let b = Ir.find_block f lbl in
              let rec scan = function
                | [] -> ()
                | (i : Ir.instr) :: rest ->
                    begin
                      match guard_parts i with
                      | Some (write, ptr, size)
                        when Tfm_analysis.Induction.is_loop_invariant ind
                               loop ptr ->
                          candidates :=
                            ( ptr,
                              (i, write, size,
                               find_access ptr rest ~fallback:i.id) )
                            :: !candidates
                      | _ -> ()
                    end;
                    scan rest
              in
              scan b.instrs)
            loop.body;
          (* Group by pointer value; one hoisted guard per pointer with
             the union strength and span. *)
          let groups = Hashtbl.create 8 in
          List.iter
            (fun (ptr, g) ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt groups ptr)
              in
              Hashtbl.replace groups ptr (g :: cur))
            (List.rev !candidates);
          Hashtbl.iter
            (fun ptr group ->
              let rep, _, _, _ =
                List.hd group
              in
              let write = List.exists (fun (_, w, _, _) -> w) group in
              let size =
                List.fold_left (fun m (_, _, s, _) -> max m s) 1 group
              in
              let ids =
                List.map (fun ((i : Ir.instr), _, _, _) -> i.id) group
              in
              (* Remove every group member from the body... *)
              List.iter
                (fun lbl ->
                  let b = Ir.find_block f lbl in
                  b.instrs <-
                    List.filter
                      (fun (i : Ir.instr) -> not (List.mem i.id ids))
                      b.instrs)
                loop.body;
              (* ...and re-emit the representative in the preheader with
                 the group's combined strength and span. *)
              let hoisted =
                {
                  rep with
                  kind =
                    Ir.Call
                      {
                        callee =
                          (if write then Intrinsics.guard_write
                           else Intrinsics.guard_read);
                        args = [ ptr; Ir.Const size ];
                      };
                }
              in
              let phb = Ir.find_block f ph in
              phb.instrs <- phb.instrs @ [ hoisted ];
              cnt.hoists <- cnt.hoists + 1;
              List.iter
                (fun ((i : Ir.instr), _, _, access) ->
                  let rule = if i.id = rep.id then C.Hoist else C.Same in
                  if i.id <> rep.id then cnt.same <- cnt.same + 1;
                  cnt.records <-
                    (f.fname, { C.access; rule; witness_ids = [ rep.id ] })
                    :: cnt.records)
                group)
            groups
      | _ -> ())
    loops

(* -- dataflow-driven elision sweep -------------------------------------- *)

let rule_of t ptr size (hit : F.hit) =
  if hit.anchor = F.Val ptr && hit.delta_lo = 0 then C.Same
  else if
    List.exists
      (fun (a, d) ->
        a = hit.anchor && d = hit.delta_lo && hit.delta_hi = d + size)
      (F.anchors_of t ptr)
  then C.Congruent
  else C.Range

let sweep_func ?summaries ~object_size (cnt : counters) (f : Ir.func) =
  let t = F.analyze ?summaries f in
  (* A guard that vouches for an earlier deletion is pinned: deleting it
     too would orphan the witness record (and the re-check would rightly
     reject it). Seed from records of previous rounds and the hoist
     phase, extend as this sweep adds records. *)
  let pinned = Hashtbl.create 16 in
  List.iter
    (fun (fname, (e : C.elision)) ->
      if fname = f.fname then
        List.iter (fun wid -> Hashtbl.replace pinned wid ()) e.witness_ids)
    cnt.records;
  let instr_by_id = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) -> Hashtbl.replace instr_by_id i.id i)
        b.instrs)
    f.blocks;
  let deleted = Hashtbl.create 16 in
  let alive id = not (Hashtbl.mem deleted id) in
  let plain_guard id =
    match Hashtbl.find_opt instr_by_id id with
    | Some { Ir.kind = Ir.Call { callee; _ }; _ } -> Intrinsics.is_guard callee
    | _ -> false
  in
  let set_guard (i : Ir.instr) ~callee ~size =
    match i.kind with
    | Ir.Call { args = [ ptr; _ ]; _ } ->
        i.kind <- Ir.Call { callee; args = [ ptr; Ir.Const size ] }
    | _ -> ()
  in
  let guard_callee (i : Ir.instr) =
    match i.kind with Ir.Call { callee; _ } -> callee | _ -> ""
  in
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      let state = ref (F.in_state t b.label) in
      let rec go acc = function
        | [] -> List.rev acc
        | (i : Ir.instr) :: rest ->
            let keep = ref true in
            begin
              match guard_parts i with
              | Some (write, ptr, size) when not (Hashtbl.mem pinned i.id)
                -> begin
                  match
                    F.query ~alive t !state ~block:b.label ptr ~size ~write
                  with
                  | Some hit ->
                      (* Fully covered per the dataflow. Before deleting,
                         re-prove the witness certificate with the
                         checker's own dominator/loop machinery: a fact
                         that is must-available only through a multi-path
                         join has witnesses that cover their own paths
                         but individually dominate nothing, and the
                         final witness re-check would rightly reject
                         them. Such guards stay. *)
                      let rule = rule_of t ptr size hit in
                      let witness_ids =
                        F.Int_set.elements hit.covering.witnesses
                      in
                      let record =
                        {
                          C.access = find_access ptr rest ~fallback:i.id;
                          rule;
                          witness_ids;
                        }
                      in
                      (* Pre-validate with a predicate derived from the
                         same summaries that licensed the fact (the
                         producer trusts its own analysis here); the
                         pipeline's final re-check replaces it with the
                         checker's independent module-level
                         re-derivation. *)
                      let certificate_holds =
                        C.check_witnesses
                          ~call_clobbers:(fun callee ->
                            Tfm_analysis.Summary.call_clobbers ?env:summaries
                              callee)
                          { Ir.funcs = [ f ]; globals = [] }
                          [ (f.fname, record) ]
                        = []
                      in
                      if certificate_holds then begin
                        begin
                          match rule with
                          | C.Same -> cnt.same <- cnt.same + 1
                          | C.Congruent ->
                              cnt.congruent <- cnt.congruent + 1
                          | C.Range | C.Hoist -> cnt.range <- cnt.range + 1
                        end;
                        List.iter
                          (fun wid -> Hashtbl.replace pinned wid ())
                          witness_ids;
                        cnt.records <- (f.fname, record) :: cnt.records;
                        Hashtbl.replace deleted i.id ();
                        keep := false;
                        changed := true
                      end
                  | None ->
                      (* Not covered outright. Two witness-strengthening
                         rewrites can make it coverable on the next
                         sweep: promote read custody to write custody,
                         or widen a same-slot guard's span. *)
                      let upgraded_now =
                        if not write then false
                        else
                          match
                            F.query ~alive t !state ~block:b.label ptr ~size
                              ~write:false
                          with
                          | Some hit
                            when F.Int_set.for_all plain_guard
                                   hit.covering.witnesses ->
                              F.Int_set.iter
                                (fun wid ->
                                  let w = Hashtbl.find instr_by_id wid in
                                  if
                                    guard_callee w = Intrinsics.guard_read
                                  then begin
                                    (match w.kind with
                                    | Ir.Call { args; _ } ->
                                        w.kind <-
                                          Ir.Call
                                            {
                                              callee = Intrinsics.guard_write;
                                              args;
                                            }
                                    | _ -> ());
                                    cnt.ups <- cnt.ups + 1
                                  end)
                                hit.covering.witnesses;
                              changed := true;
                              true
                          | _ -> false
                      in
                      if not upgraded_now then begin
                        (* Widening: a single-witness guard fact on one of
                           this pointer's anchors that starts at or below
                           our bytes can grow to span them, as long as the
                           union stays within one object size. The guard
                           itself goes on the next sweep, once the fresh
                           fixpoint sees the widened witness. *)
                        let widened_now = ref false in
                        List.iter
                          (fun (anchor, delta) ->
                            List.iter
                              (fun (fact : F.fact) ->
                                if
                                  (not !widened_now)
                                  && F.Int_set.cardinal fact.witnesses = 1
                                  && fact.lo <= delta
                                  && fact.hi < delta + size
                                  && delta + size - fact.lo <= object_size
                                then
                                  let wid = F.Int_set.choose fact.witnesses in
                                  if alive wid && plain_guard wid then begin
                                    let w = Hashtbl.find instr_by_id wid in
                                    let cur_size =
                                      match w.kind with
                                      | Ir.Call
                                          { args = [ _; Ir.Const s ]; _ } ->
                                          s
                                      | _ -> 1
                                    in
                                    let callee =
                                      if
                                        write
                                        || guard_callee w
                                           = Intrinsics.guard_write
                                      then Intrinsics.guard_write
                                      else Intrinsics.guard_read
                                    in
                                    if
                                      write
                                      && guard_callee w
                                         = Intrinsics.guard_read
                                    then cnt.ups <- cnt.ups + 1;
                                    set_guard w ~callee
                                      ~size:
                                        (max cur_size
                                           (delta + size - fact.lo));
                                    cnt.wides <- cnt.wides + 1;
                                    widened_now := true;
                                    changed := true
                                  end)
                              (F.facts_at !state anchor))
                          (F.anchors_of t ptr)
                      end
                end
              | Some _ | None -> ()
            end;
            if !keep then begin
              state := F.apply_instr t !state i;
              go (i :: acc) rest
            end
            else go acc rest
      in
      b.instrs <- go [] b.instrs)
    f.blocks;
  !changed

let run ?summaries ~object_size (m : Ir.modul) =
  let cnt =
    {
      same = 0;
      congruent = 0;
      range = 0;
      ups = 0;
      wides = 0;
      hoists = 0;
      records = [];
    }
  in
  List.iter
    (fun (f : Ir.func) ->
      hoist_func ?summaries cnt f;
      (* Witness-strengthening rewrites (upgrade/widen) only pay off on
         the following sweep's fresh fixpoint, so iterate; two rounds
         settle the common patterns, the third is a safety net. *)
      let rec rounds n =
        if n > 0 && sweep_func ?summaries ~object_size cnt f then
          rounds (n - 1)
      in
      rounds 3)
    m.funcs;
  {
    elided_same = cnt.same;
    elided_congruent = cnt.congruent;
    elided_range = cnt.range;
    upgraded = cnt.ups;
    widened = cnt.wides;
    hoisted = cnt.hoists;
    elisions = List.rev cnt.records;
  }
