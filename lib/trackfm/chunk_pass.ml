type mode = [ `Off | `All | `Gated ]

type candidate = {
  func : string;
  header : string;
  base : Ir.value;
  byte_stride : int;
  density : int;
  accesses : int list;
  avg_trip : float option;
  selected : bool;
}

type report = {
  candidates : candidate list;
  covered : (int, unit) Hashtbl.t;
  chunk_sites : int;
}

let chunk_init_name = Intrinsics.chunk_init
let chunk_access_read_name = Intrinsics.chunk_access_read
let chunk_access_write_name = Intrinsics.chunk_access_write
let chunk_end_name = Intrinsics.chunk_end

(* Group the loop's strided accesses by (base pointer, stride, constant
   displacement): each group becomes one chunked stream with its own
   runtime handle and pinned object. Accesses at different constant
   offsets (stencil neighbours) must not share a stream, or the pinned
   object would thrash between them on every iteration. *)
let group_accesses accesses =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (a : Tfm_analysis.Induction.strided_access) ->
      let key = (a.base, a.byte_stride, a.gep_offset) in
      let cur = try Hashtbl.find table key with Not_found -> [] in
      Hashtbl.replace table key (a :: cur))
    accesses;
  Hashtbl.fold (fun key group acc -> (key, List.rev group) :: acc) table []
  |> List.sort compare

let decide cost ~mode ~density ~avg_trip =
  match mode with
  | `Off -> false
  | `All -> true
  | `Gated -> begin
      match avg_trip with
      | Some trip -> Cost_eq.should_chunk_profiled cost ~density ~avg_trip:trip
      | None -> Cost_eq.should_chunk_static cost ~density
    end

(* Insert [call] just before the instruction with [target_id]. *)
let insert_before (f : Ir.func) target_id make_call =
  List.iter
    (fun (b : Ir.block) ->
      if List.exists (fun (i : Ir.instr) -> i.id = target_id) b.instrs then
        b.instrs <-
          List.concat_map
            (fun (i : Ir.instr) ->
              if i.id = target_id then [ make_call (); i ] else [ i ])
            b.instrs)
    f.blocks

let append_to_block (b : Ir.block) instr = b.instrs <- b.instrs @ [ instr ]

(* Insert at the top of a block but after its phis. *)
let insert_after_phis (b : Ir.block) instr =
  let phis, rest =
    List.partition
      (fun (i : Ir.instr) ->
        match i.kind with Ir.Phi _ -> true | _ -> false)
      b.instrs
  in
  b.instrs <- phis @ (instr :: rest)

let run cost ~object_size ~mode ?profile (m : Ir.modul) =
  let covered = Hashtbl.create 64 in
  let candidates = ref [] in
  let next_handle = ref 0 in
  if mode <> `Off then
    List.iter
      (fun (f : Ir.func) ->
        let loop_info = Tfm_analysis.Loops.analyze f in
        let ind = Tfm_analysis.Induction.analyze f in
        List.iter
          (fun (loop : Tfm_analysis.Loops.loop) ->
            match loop.preheader with
            | None -> ()
            | Some preheader_label ->
                let accesses =
                  Tfm_analysis.Induction.strided_accesses ind loop
                in
                List.iter
                  (fun ((base, byte_stride, _gep_offset), group) ->
                    if byte_stride <> 0 then begin
                      let density = object_size / abs byte_stride in
                      let avg_trip =
                        match profile with
                        | Some p ->
                            Tfm_analysis.Profile.avg_trip_count p
                              ~func:f.fname ~header:loop.header
                              ~preheader:preheader_label
                        | None -> None
                      in
                      let selected = decide cost ~mode ~density ~avg_trip in
                      let access_ids =
                        List.map
                          (fun (a : Tfm_analysis.Induction.strided_access) ->
                            a.instr_id)
                          group
                      in
                      candidates :=
                        {
                          func = f.fname;
                          header = loop.header;
                          base;
                          byte_stride;
                          density;
                          accesses = access_ids;
                          avg_trip;
                          selected;
                        }
                        :: !candidates;
                      if selected then begin
                        let handle = !next_handle in
                        incr next_handle;
                        (* Preheader: initialize the chunk stream. *)
                        let preheader = Ir.find_block f preheader_label in
                        append_to_block preheader
                          {
                            Ir.id = Ir.fresh_id f;
                            kind =
                              Ir.Call
                                {
                                  callee = chunk_init_name;
                                  args =
                                    [ Ir.Const handle; Ir.Const byte_stride ];
                                };
                          };
                        (* Each access: boundary-checked chunk access. *)
                        List.iter
                          (fun (a : Tfm_analysis.Induction.strided_access) ->
                            Hashtbl.replace covered a.instr_id ();
                            let ptr_of (i : Ir.instr) =
                              match i.kind with
                              | Ir.Load { ptr; _ } | Ir.Store { ptr; _ } ->
                                  ptr
                              | _ -> assert false
                            in
                            let blk = Ir.find_block f a.block in
                            let target =
                              List.find
                                (fun (i : Ir.instr) -> i.id = a.instr_id)
                                blk.instrs
                            in
                            let callee =
                              if a.is_store then chunk_access_write_name
                              else chunk_access_read_name
                            in
                            insert_before f a.instr_id (fun () ->
                                {
                                  Ir.id = Ir.fresh_id f;
                                  kind =
                                    Ir.Call
                                      {
                                        callee;
                                        args =
                                          [
                                            Ir.Const handle;
                                            ptr_of target;
                                            Ir.Const a.access_size;
                                          ];
                                      };
                                }))
                          group;
                        (* Exits: release the pinned chunk. *)
                        List.iter
                          (fun exit_label ->
                            let exit_block = Ir.find_block f exit_label in
                            insert_after_phis exit_block
                              {
                                Ir.id = Ir.fresh_id f;
                                kind =
                                  Ir.Call
                                    {
                                      callee = chunk_end_name;
                                      args = [ Ir.Const handle ];
                                    };
                              })
                          loop.exits
                      end
                    end)
                  (group_accesses accesses))
          (Tfm_analysis.Loops.loops loop_info))
      m.funcs;
  { candidates = List.rev !candidates; covered; chunk_sites = !next_handle }
