type config = {
  object_size : int;
  chunk_mode : Chunk_pass.mode;
  profile : Profile.t option;
  cost : Cost_model.t;
  elide : bool;
  check : bool;
  dump_after : (string -> Ir.modul -> unit) option;
}

let default_config =
  {
    object_size = 4096;
    chunk_mode = `Gated;
    profile = None;
    cost = Cost_model.default;
    elide = true;
    check = true;
    dump_after = None;
  }

type report = {
  guards : Guard_pass.report;
  chunks : Chunk_pass.report;
  elision : Elide_pass.report;
  libc_rewrites : int;
  init_inserted : bool;
  ir_instrs_before : int;
  ir_instrs_after : int;
  lowered_size_before : int;
  lowered_size_after : int;
  compile_time_s : float;
}

let run config (m : Ir.modul) =
  let t0 = Sys.time () in
  let ir_instrs_before = Ir.module_instr_count m in
  let lowered_size_before = Lowering.module_size m in
  let dump name =
    match config.dump_after with Some f -> f name m | None -> ()
  in
  Verifier.check_module m;
  let init_inserted = Init_pass.run m in
  Verifier.check_module m;
  dump "runtime-init";
  let chunks =
    Chunk_pass.run config.cost ~object_size:config.object_size
      ~mode:config.chunk_mode ?profile:config.profile m
  in
  Verifier.check_module m;
  dump "loop-chunking";
  let guards = Guard_pass.run ~exclude:chunks.Chunk_pass.covered m in
  Verifier.check_module m;
  dump "guard-transform";
  let elision =
    if config.elide then begin
      let e = Elide_pass.run ~object_size:config.object_size m in
      Verifier.check_module m;
      dump "guard-elision";
      e
    end
    else Elide_pass.empty
  in
  (* The checker proves every may-heap access is still covered after the
     optimizer ran, and independently re-verifies each deletion's
     witness record. A transform bug fails compilation here instead of
     becoming a silent far-memory crash. *)
  if config.check then begin
    Tfm_checker.Coverage.enforce m;
    Tfm_checker.Coverage.enforce_witnesses m elision.Elide_pass.elisions
  end;
  let libc_rewrites = Libc_pass.run m in
  Verifier.check_module m;
  dump "libc-transform";
  if config.check then Tfm_checker.Coverage.enforce m;
  {
    guards;
    chunks;
    elision;
    libc_rewrites;
    init_inserted;
    ir_instrs_before;
    ir_instrs_after = Ir.module_instr_count m;
    lowered_size_before;
    lowered_size_after = Lowering.module_size m;
    compile_time_s = Sys.time () -. t0;
  }

let code_growth r =
  float_of_int r.lowered_size_after /. float_of_int (max 1 r.lowered_size_before)
