type config = {
  object_size : int;
  chunk_mode : Chunk_pass.mode;
  profile : Profile.t option;
  cost : Cost_model.t;
  elide : bool;
  summaries : bool;
  shapes : bool;
  route : Route_pass.mode;
  route_hotspots : (string * int) list;
  check : bool;
  dump_after : (string -> Ir.modul -> unit) option;
}

let default_config =
  {
    object_size = 4096;
    chunk_mode = `Gated;
    profile = None;
    cost = Cost_model.default;
    elide = true;
    summaries = true;
    shapes = true;
    route = `Off;
    route_hotspots = [];
    check = true;
    dump_after = None;
  }

type report = {
  guards : Guard_pass.report;
  chunks : Chunk_pass.report;
  elision : Elide_pass.report;
  routing : Route_pass.report;
  libc_rewrites : int;
  init_inserted : bool;
  ir_instrs_before : int;
  ir_instrs_after : int;
  lowered_size_before : int;
  lowered_size_after : int;
  compile_time_s : float;
}

let run config (m : Ir.modul) =
  let t0 = Sys.time () in
  let ir_instrs_before = Ir.module_instr_count m in
  let lowered_size_before = Lowering.module_size m in
  let dump name =
    match config.dump_after with Some f -> f name m | None -> ()
  in
  Verifier.check_module m;
  let init_inserted = Init_pass.run m in
  Verifier.check_module m;
  dump "runtime-init";
  let chunks =
    Chunk_pass.run config.cost ~object_size:config.object_size
      ~mode:config.chunk_mode ?profile:config.profile m
  in
  Verifier.check_module m;
  dump "loop-chunking";
  (* Interprocedural summaries are computed after chunking (so chunk
     protocol calls are in the text the analysis sees) and handed to the
     guard injector and the elision pass. The checker never reuses this
     environment: it recomputes its own. *)
  let senv =
    if config.summaries then Some (Tfm_analysis.Summary.compute m) else None
  in
  dump "summaries";
  let guards =
    Guard_pass.run ?summaries:senv ~exclude:chunks.Chunk_pass.covered m
  in
  Verifier.check_module m;
  dump "guard-transform";
  let elision =
    if config.elide then begin
      let e =
        Elide_pass.run ?summaries:senv ~object_size:config.object_size m
      in
      Verifier.check_module m;
      dump "guard-elision";
      e
    end
    else Elide_pass.empty
  in
  (* The checker proves every may-heap access is still covered after the
     optimizer ran, and independently re-verifies each deletion's
     witness record — with its own summaries and its own module-level
     custody re-derivation, so a bug in [senv] cannot vouch for itself.
     A transform bug fails compilation here instead of becoming a
     silent far-memory crash. *)
  if config.check then begin
    Tfm_checker.Coverage.enforce ~summaries:config.summaries m;
    Tfm_checker.Coverage.enforce_witnesses m elision.Elide_pass.elisions
  end;
  (* Hybrid routing runs after elision and its witness re-check: hoisting
     has already moved guards to their final places, so the dataflow the
     route pass consults matches what the checker will re-prove. Guards
     that anchor elision witnesses are pinned — rewriting one would
     orphan the record it certifies. *)
  let routing =
    if config.route = `Off then Route_pass.empty
    else begin
      let pinned =
        List.concat_map
          (fun (fname, (e : Tfm_checker.Coverage.elision)) ->
            List.map (fun w -> (fname, w)) e.Tfm_checker.Coverage.witness_ids)
          elision.Elide_pass.elisions
      in
      (* Shape facts are computed here — after elision froze the guard
         placement — and handed only to the route pass. The checker's
         re-proofs below never see them: a wrong shape verdict can
         misroute a site (both mechanisms are sound) but cannot unprove
         coverage; the interp shadow validator audits the verdicts
         dynamically instead. *)
      let shenv =
        if config.shapes then Some (Tfm_analysis.Shape.analyze m) else None
      in
      let r =
        Route_pass.run ?summaries:senv ?shapes:shenv ~pinned
          ~hotspots:config.route_hotspots ~mode:config.route m
      in
      Verifier.check_module m;
      dump "hybrid-routing";
      if config.check then begin
        Tfm_checker.Coverage.enforce ~summaries:config.summaries m;
        Tfm_checker.Coverage.enforce_witnesses m elision.Elide_pass.elisions;
        Tfm_checker.Coverage.enforce_routing m r.Route_pass.routes
      end;
      r
    end
  in
  let libc_rewrites = Libc_pass.run m in
  Verifier.check_module m;
  dump "libc-transform";
  if config.check then begin
    Tfm_checker.Coverage.enforce ~summaries:config.summaries m;
    Tfm_checker.Coverage.enforce_routing m routing.Route_pass.routes
  end;
  {
    guards;
    chunks;
    elision;
    routing;
    libc_rewrites;
    init_inserted;
    ir_instrs_before;
    ir_instrs_after = Ir.module_instr_count m;
    lowered_size_before;
    lowered_size_after = Lowering.module_size m;
    compile_time_s = Sys.time () -. t0;
  }

let code_growth r =
  float_of_int r.lowered_size_after /. float_of_int (max 1 r.lowered_size_before)
