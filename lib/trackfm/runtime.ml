let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v / 2) in
  go 0 n

(* Direct-mapped model of the data cache lines holding object state table
   entries: 4096 entries of 8 B each (32 KiB), enough that hot loops hit
   and pointer-chasing workloads miss — giving Table 1's cached/uncached
   split without a full cache simulator. *)
let meta_cache_slots = 4096

type chunk_state = {
  mutable cur : (int * int) option; (* pinned (class, object id) *)
  mutable stride_bytes : int;
}

(* One far-memory size class: its own pool (budget share), allocator range
   and object-size exponent. The default configuration has exactly one. *)
type size_class = {
  max_alloc : int; (* allocations up to this many bytes land here *)
  pool : Pool.t;
  alloc : Region_alloc.t;
  osize_log2 : int;
  miss_prefetcher : Prefetcher.t;
}

type guard_event = {
  ptr : int;
  object_id : int;
  size_class : int;
  path : [ `Custody_skip | `Fast | `Slow_local | `Slow_remote | `Paged ];
  write : bool;
}

type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  store : Memstore.t;
  classes : size_class array;
  use_state_table : bool;
  prefetch : bool;
  prefetch_depth : int;
  meta_cache : int array;
  chunks : (int, chunk_state) Hashtbl.t;
  mutable debug : bool;
  debug_ring : guard_event Queue.t;
  mutable telemetry : Telemetry.Sink.t;
  (* Hybrid data plane: accesses the route pass moved to the page path
     swap against this Fastswap-style pager instead of taking a guard.
     Created lazily on the first page access, so unrouted programs never
     construct (or pay for) it; shares the run's clock, fault injector
     and cluster with the guard plane — one machine, two mechanisms.
     The full local budget is visible to it: the unified local-memory
     model, where the checker's exactly-one guarantee (each address
     range is owned by exactly one mechanism) keeps the two planes from
     double-caching the same data. *)
  faults : Faults.t;
  cluster : Cluster.t option;
  local_budget : int;
  mutable swap : Fastswap.Swap.t option;
}

let make_class ?policy ?telemetry ?faults ?cluster cost clock backend idx
    ~max_alloc ~object_size ~budget =
  let net = Net.create ?faults ?cluster cost clock backend in
  (* Slow-path guards degrade to block-with-yield: transport stalls
     (retry backoff, open-breaker waits) release the core when the
     guard runs inside a Shenango task instead of spinning on it. *)
  Net.set_stall_handler net (fun ~cycles ->
      ignore (Shenango.Sched.try_block cycles));
  let osize_log2 = log2 object_size in
  let pool =
    Pool.create ?policy ?telemetry
      ~addr_of_id:(fun id -> Nc_ptr.class_base idx + (id lsl osize_log2))
      cost clock ~net ~object_size ~local_budget:budget
  in
  {
    max_alloc;
    pool;
    alloc = Region_alloc.create ~base:(Nc_ptr.class_base idx);
    osize_log2;
    miss_prefetcher = Prefetcher.create pool ();
  }

let create ?(backend = Net.Tcp) ?(use_state_table = true) ?(prefetch = true)
    ?size_classes ?policy ?(telemetry = Telemetry.Sink.nop)
    ?(faults = Faults.disabled) ?cluster cost clock store ~object_size
    ~local_budget =
  let specs =
    match size_classes with
    | None | Some [] -> [ (max_int, object_size, 1.0) ]
    | Some specs ->
        if List.length specs > 4 then
          invalid_arg "Runtime.create: at most 4 size classes";
        let rec last = function
          | [ (m, _, _) ] -> m
          | _ :: rest -> last rest
          | [] -> assert false
        in
        if last specs <> max_int then
          invalid_arg
            "Runtime.create: the final size class must be a catch-all \
             (max_int)";
        specs
  in
  let classes =
    Array.of_list
      (List.mapi
         (fun idx (max_alloc, osize, share) ->
           make_class ?policy ~telemetry ~faults ?cluster cost clock backend
             idx ~max_alloc
             ~object_size:osize
             ~budget:(max osize (int_of_float (float_of_int local_budget *. share))))
         specs)
  in
  {
    cost;
    clock;
    store;
    classes;
    use_state_table;
    prefetch;
    prefetch_depth = 8;
    meta_cache = Array.make meta_cache_slots (-1);
    chunks = Hashtbl.create 16;
    debug = false;
    debug_ring = Queue.create ();
    telemetry;
    faults;
    cluster;
    local_budget;
    swap = None;
  }

let debug_ring_capacity = 4096

let set_debug t on = t.debug <- on

let debug_events t = List.of_seq (Queue.to_seq t.debug_ring)

let log_event t ev =
  if t.debug then begin
    if Queue.length t.debug_ring >= debug_ring_capacity then
      ignore (Queue.pop t.debug_ring);
    Queue.push ev t.debug_ring
  end

let telemetry t = t.telemetry

let set_telemetry t sink =
  t.telemetry <- sink;
  Array.iter (fun c -> Pool.set_telemetry c.pool sink) t.classes

let pool t = t.classes.(0).pool
let pools t = Array.to_list (Array.map (fun c -> c.pool) t.classes)
let cost t = t.cost
let clock t = t.clock
let object_size t = Pool.object_size t.classes.(0).pool
let size_class_count t = Array.length t.classes

let cls_of_ptr t ptr =
  let idx = Nc_ptr.size_class ptr in
  if idx >= Array.length t.classes then
    invalid_arg "Runtime: pointer with unknown size class"
  else (idx, t.classes.(idx))

let object_id (c : size_class) ptr =
  Nc_ptr.object_id ptr ~object_size_log2:c.osize_log2

(* -- allocation ---------------------------------------------------------- *)

let malloc_cost = 60

let class_for_size t n =
  let rec go i =
    if i = Array.length t.classes - 1 then i
    else if n <= t.classes.(i).max_alloc then i
    else go (i + 1)
  in
  go 0

let tfm_malloc t n =
  (* Objects materialize lazily on first access (the pool's analogue of an
     anonymous first-touch fault), so huge allocations are cheap and fresh
     memory never crosses the network. *)
  Clock.tick t.clock malloc_cost;
  Clock.count t.clock "tfm.mallocs" 1;
  let c = t.classes.(class_for_size t n) in
  Region_alloc.alloc c.alloc n

let tfm_calloc t count size =
  (* The store reads as zero before first write, so calloc is malloc. *)
  tfm_malloc t (max 1 (count * size))

let tfm_free t ptr =
  Clock.tick t.clock malloc_cost;
  let _, c = cls_of_ptr t ptr in
  let cls_bytes = Region_alloc.size_of c.alloc ptr in
  Region_alloc.free c.alloc ptr;
  (* Objects fully covered by the dead block are released back to the
     pool: their data can never be read again, so neither the local
     budget nor a remote copy needs to be kept. Partially covered edge
     objects may still hold neighbouring allocations and stay. *)
  let osize = 1 lsl c.osize_log2 in
  let first_full = (Nc_ptr.offset ptr + osize - 1) lsr c.osize_log2 in
  let last_full = ((Nc_ptr.offset ptr + cls_bytes) lsr c.osize_log2) - 1 in
  for id = first_full to last_full do
    Pool.discard c.pool id
  done

let tfm_realloc t ptr n =
  if ptr = 0 then tfm_malloc t n
  else begin
    let _, c = cls_of_ptr t ptr in
    let old_req = Region_alloc.requested_size_of c.alloc ptr in
    let cls_size = Region_alloc.size_of c.alloc ptr in
    if n <= cls_size then ptr
    else begin
      let fresh = tfm_malloc t n in
      let len = min old_req n in
      Memstore.blit t.store ~src:ptr ~dst:fresh ~len;
      (* Copy cost: cache-line granularity moves. *)
      Clock.tick t.clock (len / 64 * 8);
      tfm_free t ptr;
      fresh
    end
  end

let state_table_bytes t =
  (* Entries cover each class's heap span at 8 B per object. *)
  Array.to_list t.classes
  |> List.mapi (fun idx (c : size_class) ->
         let span = Region_alloc.high_watermark c.alloc - Nc_ptr.class_base idx in
         (span lsr c.osize_log2) * 8)
  |> List.fold_left ( + ) 0

(* -- guards -------------------------------------------------------------- *)

(* Consult the (modelled) state table entry for an object; charges the
   cache-miss penalty on a metadata cache miss, and the extra dependent
   load when the state table optimization is ablated. Class and id are
   combined so entries from different classes do not alias. *)
let metadata_lookup t cls_idx id =
  let key = (id * 4) + cls_idx in
  let slot = key land (meta_cache_slots - 1) in
  if t.meta_cache.(slot) <> key then begin
    t.meta_cache.(slot) <- key;
    Clock.tick t.clock t.cost.Cost_model.cache_miss_penalty;
    Clock.count t.clock "tfm.state_table_misses" 1
  end;
  if not t.use_state_table then
    (* Without the table: find the object, then dereference its metadata —
       one more dependent memory reference on every guard. *)
    Clock.tick t.clock t.cost.Cost_model.metadata_indirection

let localize_for_access (c : size_class) id ~write =
  Pool.ensure_local c.pool id;
  if write then Pool.mark_dirty c.pool id

let guard t ~ptr ~size ~write =
  let tel = t.telemetry in
  let active = Telemetry.Sink.is_active tel in
  let c0 = Clock.cycles t.clock in
  let bin0 = if active then Clock.get t.clock "net.bytes_in" else 0 in
  let bout0 = if active then Clock.get t.clock "net.bytes_out" else 0 in
  if not (Nc_ptr.is_tracked ptr) then begin
    Telemetry.Sink.cat_enter tel Telemetry.Span.Guard_fast;
    Clock.tick t.clock t.cost.Cost_model.custody_check;
    Clock.count t.clock "tfm.custody_skips" 1;
    Telemetry.Sink.cat_exit tel;
    log_event t
      { ptr; object_id = -1; size_class = -1; path = `Custody_skip; write };
    if active then
      Telemetry.Sink.guard_event tel ~path:`Custody ~write
        ~cycles:(Clock.cycles t.clock - c0) ~bytes_in:0 ~bytes_out:0
  end
  else begin
    (* The guard opens as a fast-path frame and reclassifies once the
       miss is known, so metadata-lookup cycles land with the outcome
       they led to. *)
    Telemetry.Sink.cat_enter tel Telemetry.Span.Guard_fast;
    let cls_idx, c = cls_of_ptr t ptr in
    let id = object_id c ptr in
    metadata_lookup t cls_idx id;
    let fast = Pool.is_local c.pool id in
    if fast then begin
      Clock.tick t.clock
        (if write then t.cost.Cost_model.fast_guard_write
         else t.cost.Cost_model.fast_guard_read);
      Clock.count t.clock "tfm.fast_guards" 1;
      log_event t
        { ptr; object_id = id; size_class = cls_idx; path = `Fast; write }
    end
    else begin
      Telemetry.Sink.cat_reclass tel Telemetry.Span.Guard_slow;
      Clock.tick t.clock
        (if write then t.cost.Cost_model.slow_guard_write_local
         else t.cost.Cost_model.slow_guard_read_local);
      Clock.count t.clock "tfm.slow_guards" 1;
      (* The AIFM backend's runtime stride prefetcher watches the miss
         stream and runs ahead of regular strided access patterns. *)
      if t.prefetch then Prefetcher.access c.miss_prefetcher id;
      log_event t
        {
          ptr;
          object_id = id;
          size_class = cls_idx;
          path = `Slow_local;
          write;
        }
    end;
    let fetches_before = Clock.get t.clock "net.fetches" in
    localize_for_access c id ~write;
    (if t.debug && Clock.get t.clock "net.fetches" > fetches_before then
       (* upgrade the last event: the slow path went remote *)
       match
         List.rev (List.of_seq (Queue.to_seq t.debug_ring))
       with
       | last :: _ when last.path = `Slow_local ->
           (* replace tail event *)
           let all = List.of_seq (Queue.to_seq t.debug_ring) in
           Queue.clear t.debug_ring;
           List.iteri
             (fun i ev ->
               if i = List.length all - 1 then
                 Queue.push { ev with path = `Slow_remote } t.debug_ring
               else Queue.push ev t.debug_ring)
             all
       | _ -> ());
    (* An access that straddles an object boundary needs both halves. *)
    let id_last = object_id c (ptr + size - 1) in
    if id_last <> id then localize_for_access c id_last ~write;
    Telemetry.Sink.cat_exit tel;
    if active then
      Telemetry.Sink.guard_event tel
        ~path:(if fast then `Fast else `Slow)
        ~write
        ~cycles:(Clock.cycles t.clock - c0)
        ~bytes_in:(Clock.get t.clock "net.bytes_in" - bin0)
        ~bytes_out:(Clock.get t.clock "net.bytes_out" - bout0)
  end

(* -- hybrid page path ---------------------------------------------------- *)

let swap_of t =
  match t.swap with
  | Some s -> s
  | None ->
      let s =
        Fastswap.Swap.create ~faults:t.faults ?cluster:t.cluster
          ~telemetry:t.telemetry t.cost t.clock ~local_budget:t.local_budget
      in
      t.swap <- Some s;
      s

let page_access t ~ptr ~size ~write =
  let tel = t.telemetry in
  let active = Telemetry.Sink.is_active tel in
  let c0 = Clock.cycles t.clock in
  if not (Nc_ptr.is_tracked ptr) then begin
    (* Same custody filter as [guard]: page calls inherit guards' safety
       on untracked pointers (stack, globals), which is what lets the
       route pass move Mixed/Unknown sites under profile evidence. *)
    Telemetry.Sink.cat_enter tel Telemetry.Span.Guard_fast;
    Clock.tick t.clock t.cost.Cost_model.custody_check;
    Clock.count t.clock "tfm.custody_skips" 1;
    Telemetry.Sink.cat_exit tel;
    log_event t
      { ptr; object_id = -1; size_class = -1; path = `Custody_skip; write };
    if active then
      Telemetry.Sink.guard_event tel ~path:`Custody ~write
        ~cycles:(Clock.cycles t.clock - c0) ~bytes_in:0 ~bytes_out:0
  end
  else begin
    let bin0 = if active then Clock.get t.clock "net.bytes_in" else 0 in
    let bout0 = if active then Clock.get t.clock "net.bytes_out" else 0 in
    (* The custody check still runs — the compiled test is the same
       either way; only the miss mechanism differs. *)
    Clock.tick t.clock t.cost.Cost_model.custody_check;
    Clock.count t.clock "tfm.page_accesses" 1;
    Fastswap.Swap.access (swap_of t) ~addr:ptr ~size ~write;
    log_event t { ptr; object_id = -1; size_class = -1; path = `Paged; write };
    if active then
      Telemetry.Sink.guard_event tel ~path:`Paged ~write
        ~cycles:(Clock.cycles t.clock - c0)
        ~bytes_in:(Clock.get t.clock "net.bytes_in" - bin0)
        ~bytes_out:(Clock.get t.clock "net.bytes_out" - bout0)
  end

let page_accesses t = Clock.get t.clock "tfm.page_accesses"

(* -- loop chunking ------------------------------------------------------- *)

let chunk_state t handle =
  match Hashtbl.find_opt t.chunks handle with
  | Some s -> s
  | None ->
      let s = { cur = None; stride_bytes = 0 } in
      Hashtbl.replace t.chunks handle s;
      s

let unpin_cur t = function
  | Some (cls_idx, old) -> Pool.unpin t.classes.(cls_idx).pool old
  | None -> ()

let chunk_init t ~handle ~stride_bytes =
  let s = chunk_state t handle in
  (* A dangling pin can remain if a previous loop exited via an
     unstructured edge; release it. *)
  unpin_cur t s.cur;
  s.cur <- None;
  s.stride_bytes <- stride_bytes;
  (* Loop-entry runtime call; the first access then crosses into its
     object and pays the locality invariant guard, so the total entry
     cost is Cost_eq.chunk_entry_cost. *)
  Clock.tick t.clock 130;
  Clock.count t.clock "tfm.chunk_inits" 1

let issue_prefetch t (c : size_class) id stride_objects =
  if t.prefetch && stride_objects <> 0 then
    for k = 1 to t.prefetch_depth do
      let next = id + (k * stride_objects) in
      if next >= 0 then Pool.mark_prefetched c.pool next
    done

let chunk_access t ~handle ~ptr ~size ~write =
  if not (Nc_ptr.is_tracked ptr) then begin
    Telemetry.Sink.cat_enter t.telemetry Telemetry.Span.Guard_fast;
    Clock.tick t.clock t.cost.Cost_model.custody_check;
    Clock.count t.clock "tfm.custody_skips" 1;
    Telemetry.Sink.cat_exit t.telemetry;
    if Telemetry.Sink.is_active t.telemetry then
      Telemetry.Sink.guard_event t.telemetry ~path:`Custody ~write
        ~cycles:t.cost.Cost_model.custody_check ~bytes_in:0 ~bytes_out:0
  end
  else begin
    let s = chunk_state t handle in
    let cls_idx, c = cls_of_ptr t ptr in
    let id = object_id c ptr in
    (* Per-access overhead is fast-path work; a boundary crossing that
       has to pull the object reclassifies to the slow path below. *)
    Telemetry.Sink.cat_enter t.telemetry Telemetry.Span.Guard_fast;
    Clock.tick t.clock t.cost.Cost_model.boundary_check;
    Clock.count t.clock "tfm.boundary_checks" 1;
    (match s.cur with
    | Some (ci, cur) when ci = cls_idx && cur = id -> ()
    | prev ->
        (* Object boundary crossed: the locality invariant guard. Like
           any guard it resolves the new object's state-table entry, so
           it shares the metadata-cache model. *)
        let tel = t.telemetry in
        let active = Telemetry.Sink.is_active tel in
        let c0 = Clock.cycles t.clock in
        let bin0 = if active then Clock.get t.clock "net.bytes_in" else 0 in
        let bout0 = if active then Clock.get t.clock "net.bytes_out" else 0 in
        unpin_cur t prev;
        metadata_lookup t cls_idx id;
        Clock.tick t.clock t.cost.Cost_model.locality_guard;
        Clock.count t.clock "tfm.locality_guards" 1;
        if not (Pool.is_local c.pool id) then
          Telemetry.Sink.cat_reclass tel Telemetry.Span.Guard_slow;
        Pool.ensure_local c.pool id;
        Pool.pin c.pool id;
        s.cur <- Some (cls_idx, id);
        let stride_objects =
          if s.stride_bytes = 0 then 0
          else if s.stride_bytes > 0 then
            max 1 (s.stride_bytes asr c.osize_log2)
          else min (-1) (-(-s.stride_bytes asr c.osize_log2))
        in
        issue_prefetch t c id stride_objects;
        if active then
          Telemetry.Sink.guard_event tel ~path:`Locality ~write
            ~cycles:(Clock.cycles t.clock - c0)
            ~bytes_in:(Clock.get t.clock "net.bytes_in" - bin0)
            ~bytes_out:(Clock.get t.clock "net.bytes_out" - bout0));
    if write then Pool.mark_dirty c.pool id;
    let id_last = object_id c (ptr + size - 1) in
    if id_last <> id then localize_for_access c id_last ~write;
    Telemetry.Sink.cat_exit t.telemetry
  end

let chunk_end t ~handle =
  match Hashtbl.find_opt t.chunks handle with
  | Some s ->
      unpin_cur t s.cur;
      s.cur <- None
  | None -> ()

(* -- introspection ------------------------------------------------------- *)

let fast_guards t = Clock.get t.clock "tfm.fast_guards"
let slow_guards t = Clock.get t.clock "tfm.slow_guards"
