(** The TrackFM compiler pipeline (Figure 2).

    Applies, in order: runtime initialization, loop chunking analysis and
    transform (with the configured gate), guard check analysis and
    transform over the remaining accesses, redundant-guard elision and
    hoisting ({!Elide_pass}), optional hybrid routing ({!Route_pass})
    that moves pointer-chasing sites to the page-fault path, and the
    libc transformation. The module is verified after every stage — a
    pass that breaks IR well-formedness is a compiler bug and raises —
    and the guard-coverage checker ({!Tfm_checker.Coverage}) proves
    every may-heap access is covered by exactly one mechanism after the
    optimizer ran. *)

type config = {
  object_size : int;          (** compile-time AIFM object size choice *)
  chunk_mode : Chunk_pass.mode;
  profile : Profile.t option; (** enables the profiled chunking gate *)
  cost : Cost_model.t;
  elide : bool;  (** run redundant-guard elimination + hoisting *)
  summaries : bool;
      (** compute interprocedural summaries ({!Tfm_analysis.Summary})
          after chunking and hand them to the guard injector and the
          elision pass; the checker recomputes its own *)
  shapes : bool;
      (** compute the interprocedural shape analysis
          ({!Tfm_analysis.Shape}) before routing so helper-hidden
          pointer chases classify and route statically; never consulted
          by the checker *)
  route : Route_pass.mode;
      (** hybrid data plane: [`Static] routes pointer-chasing sites to
          the page-fault path, [`Profiled] additionally upgrades
          Mixed/Unknown sites named in [route_hotspots]; [`Off] keeps
          the pure guard plane *)
  route_hotspots : (string * int) list;
      (** (function, instr id) sites the telemetry hotspot table shows
          slow-path dominated; consulted only in [`Profiled] mode *)
  check : bool;
      (** run the guard-coverage checker, witness re-verification and
          routing-witness re-verification after each late stage *)
  dump_after : (string -> Ir.modul -> unit) option;
      (** compiler-debugging hook ("-print-after-all"): called with the
          pass name and the module after each stage *)
}

val default_config : config
(** 4 KiB objects, gated chunking, no profile, default cost model,
    elision, summaries and checking on. *)

type report = {
  guards : Guard_pass.report;
  chunks : Chunk_pass.report;
  elision : Elide_pass.report;
  routing : Route_pass.report;
  libc_rewrites : int;
  init_inserted : bool;
  ir_instrs_before : int;
  ir_instrs_after : int;
  lowered_size_before : int;
  lowered_size_after : int;
  compile_time_s : float;
}

val run : config -> Ir.modul -> report
(** Transforms the module in place. Raises {!Tfm_checker.Coverage.Unsound}
    when [check] is on and a may-heap access is left uncovered or
    covered twice, or an elision or routing witness fails
    re-verification. *)

val code_growth : report -> float
(** Lowered-size ratio after/before — the paper reports an average of
    2.4x. *)
