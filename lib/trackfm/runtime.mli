(** The TrackFM runtime: the thin layer the compiler injects between the
    transformed application and the AIFM object pool (Sections 3.1–3.3).

    Responsibilities:
    - a custom malloc that returns non-canonical pointers backed by
      AIFM's region allocator, chunking each allocation into pool objects;
    - the object state table that lets guards resolve object metadata
      with one indexed lookup instead of AIFM's two dependent references
      (modelled with a direct-mapped metadata-cache so the cached vs
      uncached guard costs of Table 1 emerge);
    - the guard entry points (custody check, fast path, slow path);
    - the loop-chunking support calls (locality invariant guard that pins
      the current object, boundary checks, compiler-directed prefetch).

    All costs are charged to the shared {!Memsim.Clock}; event counts are
    published as clock counters:
    [tfm.fast_guards], [tfm.slow_guards], [tfm.custody_skips],
    [tfm.boundary_checks], [tfm.locality_guards], [tfm.chunk_inits],
    [tfm.state_table_misses], [tfm.page_accesses]. *)

type t

val create :
  ?backend:Net.backend ->
  ?use_state_table:bool ->
  ?prefetch:bool ->
  ?size_classes:(int * int * float) list ->
  ?policy:Pool.policy ->
  ?telemetry:Telemetry.Sink.t ->
  ?faults:Faults.t ->
  ?cluster:Cluster.t ->
  Cost_model.t ->
  Clock.t ->
  Memstore.t ->
  object_size:int ->
  local_budget:int ->
  t
(** [cluster] routes every size class's slow-path fetches and evacuator
    writebacks through the replicated remote tier (shared across
    classes, keyed by object base address); recovery resync is driven
    from the evacuator loop.

    [use_state_table=false] ablates the Section 3.2 optimization: every
    guard then pays the extra dependent metadata reference. [prefetch]
    enables the compiler-directed stride prefetch issued from chunk
    boundaries (default true). Backend defaults to [Tcp] (AIFM's
    Shenango stack).

    [size_classes] enables the multi-object-size extension the paper
    leaves as future work (Section 3.2): each entry is
    [(max_alloc_bytes, object_size, budget_share)] — an allocation goes
    to the first class whose [max_alloc_bytes] it fits, the class's pool
    receives [budget_share] of the local budget, and the class index is
    encoded in bits 57-58 of the pointer so guards stay a few shifts. At
    most 4 classes; the last must have [max_alloc_bytes = max_int]. When
    omitted, one class of [object_size] objects is used (the paper's
    configuration). *)

val telemetry : t -> Telemetry.Sink.t
(** The runtime's telemetry sink ({!Telemetry.Sink.nop} by default).
    Guards report each outcome to it with the cycle and network-byte
    deltas they caused, attributed to the current IR site the
    interpreter tagged; the pools report fetches/writebacks/evictions.
    Recording never charges simulated cycles. *)

val set_telemetry : t -> Telemetry.Sink.t -> unit
(** Swap the sink (also on every size class's pool). *)

val pool : t -> Pool.t
(** The first size class's pool (the only one by default). *)

val pools : t -> Pool.t list

val size_class_count : t -> int
val clock : t -> Clock.t
val object_size : t -> int

(** {1 Allocation (libc replacements)} *)

val tfm_malloc : t -> int -> int
(** Returns a tagged non-canonical pointer; the covered objects
    materialize locally (fresh memory needs no fetch) and are immediately
    subject to eviction under the local budget. *)

val tfm_calloc : t -> int -> int -> int
val tfm_realloc : t -> int -> int -> int
val tfm_free : t -> int -> unit

val state_table_bytes : t -> int
(** Current size of the object state table (8 B per object over the heap
    high-watermark), the overhead computed in Section 3.2. *)

(** {1 Guards} *)

val guard : t -> ptr:int -> size:int -> write:bool -> unit
(** The compiler-injected guard: custody check; if tracked, fast path
    when the object is local, slow path (runtime call, possibly a remote
    fetch) otherwise. Also localizes the second object when the access
    spans an object boundary. *)

val page_access : t -> ptr:int -> size:int -> write:bool -> unit
(** The hybrid data plane's other mechanism: an access the route pass
    moved off the guard path ([tfm_page_read]/[tfm_page_write]). Same
    custody filter as {!guard} for untracked pointers; tracked pointers
    swap through a lazily created Fastswap-style pager sharing this
    run's clock, fault injector and cluster — page-granular faults with
    kernel-path costs instead of object-granular guards. Counter:
    [tfm.page_accesses] (plus the pager's [fastswap.*] family). *)

val page_accesses : t -> int

(** {1 Loop chunking support} *)

val chunk_init : t -> handle:int -> stride_bytes:int -> unit
(** Enter a chunked loop for one strided pointer. [handle] identifies the
    (loop, pointer) pair statically. *)

val chunk_access : t -> handle:int -> ptr:int -> size:int -> write:bool -> unit
(** Per-iteration access in a chunked loop: a 3-instruction boundary
    check in the common case; on an object-boundary crossing, the
    locality invariant guard pins the new object (and unpins the old) and
    issues stride prefetches when enabled. *)

val chunk_end : t -> handle:int -> unit
(** Leave the chunked loop: release the pinned object. *)

(** {1 Introspection} *)

val fast_guards : t -> int
val slow_guards : t -> int

(** {2 Debug instrumentation}

    Section 3.3: "we can also enable optional debug instrumentation that
    indicates when guards take the fast or slow path, and which AIFM code
    path they trigger". When enabled, the runtime keeps a bounded ring of
    the most recent guard events. *)

type guard_event = {
  ptr : int;
  object_id : int;
  size_class : int;
  path : [ `Custody_skip | `Fast | `Slow_local | `Slow_remote | `Paged ];
      (** which guard path executed, and for the slow path whether the
          AIFM dereference needed a remote fetch; [`Paged] is a routed
          access taking the page-fault mechanism *)
  write : bool;
}

val set_debug : t -> bool -> unit
(** Enable/disable guard event recording (off by default; recording has
    no simulated-cycle cost — it is tooling, not workload). *)

val debug_events : t -> guard_event list
(** Most recent events, oldest first (bounded to the last 4096). *)

val cost : t -> Cost_model.t
