type report = {
  guarded_loads : int;
  guarded_stores : int;
  skipped_non_heap : int;
  skipped_chunked : int;
}

let guard_read_name = Intrinsics.guard_read
let guard_write_name = Intrinsics.guard_write

let all_accesses (f : Ir.func) =
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter_map
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Load _ -> Some (i.id, false)
          | Ir.Store _ -> Some (i.id, true)
          | _ -> None)
        b.instrs)
    f.blocks

let analyze ?summaries (f : Ir.func) =
  let alias = Tfm_analysis.Alias.analyze ?summaries f in
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter_map
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Load { ptr; _ } when Tfm_analysis.Alias.needs_guard alias ptr
            ->
              Some (i.id, false)
          | Ir.Store { ptr; _ } when Tfm_analysis.Alias.needs_guard alias ptr
            ->
              Some (i.id, true)
          | _ -> None)
        b.instrs)
    f.blocks

let run ?summaries ?(exclude = Hashtbl.create 0) (m : Ir.modul) =
  let guarded_loads = ref 0 in
  let guarded_stores = ref 0 in
  let skipped_non_heap = ref 0 in
  let skipped_chunked = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      let alias = Tfm_analysis.Alias.analyze ?summaries f in
      List.iter
        (fun (b : Ir.block) ->
          b.instrs <-
            List.concat_map
              (fun (i : Ir.instr) ->
                let guard_call ptr size ~write =
                  {
                    Ir.id = Ir.fresh_id f;
                    kind =
                      Ir.Call
                        {
                          callee =
                            (if write then guard_write_name
                             else guard_read_name);
                          args = [ ptr; Ir.Const size ];
                        };
                  }
                in
                match i.kind with
                | Ir.Load { ptr; size; _ } ->
                    if Hashtbl.mem exclude i.id then begin
                      incr skipped_chunked;
                      [ i ]
                    end
                    else if Tfm_analysis.Alias.needs_guard alias ptr then begin
                      incr guarded_loads;
                      [ guard_call ptr size ~write:false; i ]
                    end
                    else begin
                      incr skipped_non_heap;
                      [ i ]
                    end
                | Ir.Store { ptr; size; _ } ->
                    if Hashtbl.mem exclude i.id then begin
                      incr skipped_chunked;
                      [ i ]
                    end
                    else if Tfm_analysis.Alias.needs_guard alias ptr then begin
                      incr guarded_stores;
                      [ guard_call ptr size ~write:true; i ]
                    end
                    else begin
                      incr skipped_non_heap;
                      [ i ]
                    end
                | _ -> [ i ])
              b.instrs)
        f.blocks)
    m.funcs;
  {
    guarded_loads = !guarded_loads;
    guarded_stores = !guarded_stores;
    skipped_non_heap = !skipped_non_heap;
    skipped_chunked = !skipped_chunked;
  }
