(* The hybrid data plane's routing pass: per-site choice between the
   guard path and the page-fault path, driven by the static
   access-pattern classification (and optionally refined by a telemetry
   hotspot profile).

   Pointer-chasing sites are moved to the page path: their dependent
   misses defeat chunking and prefetching, so the guard fast path is
   pure overhead there, while page-granular faulting amortizes each miss
   over whatever locality the structure has. Streaming sites keep their
   guards — chunked transfers and compiler-directed prefetch beat
   page-granular faulting on affine strides (Fig 15). Mixed/Unknown
   sites default to the guard side (always safe: the runtime custody
   check filters untracked pointers dynamically); profile refinement may
   upgrade them to the page path when the hotspot table shows the site
   is slow-path dominated, but never demotes a chasing site back.

   Mechanically a routed access's private guard call is rewritten in
   place into a page call (same instruction id, same operands), so the
   access stays adjacent to its protection and witness ids stay stable.
   Every rewrite is pre-checked against the custody dataflow — the
   access must not be covered by any *other* fact, or retiring the guard
   would double-protect (the checker would catch it, but we prove
   exactly-one by construction) — and leaves a routing witness record
   that {!Tfm_checker.Coverage.check_routing} re-proves structurally,
   independent of the classifier. *)

module C = Tfm_checker.Coverage
module F = Tfm_checker.Facts
module AP = Tfm_analysis.Access_pattern

type mode = [ `Off | `Static | `Profiled ]

let mode_to_string = function
  | `Off -> "off"
  | `Static -> "static"
  | `Profiled -> "profiled"

type report = {
  routed : int;  (** sites moved to the page path *)
  kept_pinned : int;  (** chasing sites kept: guard pinned by a witness *)
  kept_covered : int;  (** chasing sites kept: covered by another fact *)
  upgraded : int;  (** Mixed/Unknown sites routed by profile evidence *)
  classes : (string * AP.site) list;
      (** full per-function classification, function order then
          ascending instruction id — the `classify` dump and the
          hotspot `class` column both read this *)
  routes : (string * C.routing) list;
      (** per-function witness records for every rewrite *)
  site_calls : ((string * int) * int) list;
      (** (function, protecting call id) -> access id, for every
          classified site with an adjacent private guard/page call —
          telemetry keys hotspot rows by the call, the classification by
          the access; this is the bridge *)
  alloc_shapes : ((string * int) * string) list;
      (** (function, allocation call id) -> structure kind, for every
          allocation site the shape analysis resolved as recursive —
          the provenance hints the telemetry hotspot table records as
          groundwork for placement (ROADMAP item 5) *)
}

let empty =
  {
    routed = 0;
    kept_pinned = 0;
    kept_covered = 0;
    upgraded = 0;
    classes = [];
    routes = [];
    site_calls = [];
    alloc_shapes = [];
  }

(* Class of a site for the hotspot table, by access instruction id. *)
let class_of_site report ~func ~instr =
  List.find_map
    (fun (fname, (s : AP.site)) ->
      if fname = func && s.AP.instr_id = instr then Some s.AP.cls else None)
    report.classes

let class_of_call report ~func ~instr =
  match List.assoc_opt (func, instr) report.site_calls with
  | Some access -> class_of_site report ~func ~instr:access
  | None -> None

(* Structure kind of an allocation call, for the hotspot table's class
   column (alloc rows have no access-pattern class; the shape verdict is
   the provenance hint that stands in). *)
let shape_of_alloc report ~func ~instr =
  List.assoc_opt (func, instr) report.alloc_shapes

let run ?summaries ?shapes ?(pinned = []) ?(hotspots = []) ~mode
    (m : Ir.modul) =
  match mode with
  | `Off -> empty
  | (`Static | `Profiled) as mode ->
      let routed = ref 0 in
      let kept_pinned = ref 0 in
      let kept_covered = ref 0 in
      let upgraded = ref 0 in
      let classes = ref [] in
      let routes = ref [] in
      let site_calls = ref [] in
      let hot = Hashtbl.create 16 in
      List.iter (fun (f, i) -> Hashtbl.replace hot (f, i) ()) hotspots;
      (* Guards pinned as witnesses of other accesses' elisions must stay
         guards: rewriting one would orphan the elision witness it
         anchors. The pipeline hands us every witness id from the elision
         records. *)
      let pin = Hashtbl.create 16 in
      List.iter (fun (f, i) -> Hashtbl.replace pin (f, i) ()) pinned;
      List.iter
        (fun (f : Ir.func) ->
          let ap = AP.analyze ?summaries ?shapes f in
          List.iter
            (fun s -> classes := (f.Ir.fname, s) :: !classes)
            (AP.sites ap);
          let facts = F.analyze ?summaries f in
          let decisions = ref [] in
          (* One access: decide whether its private guard becomes a page
             call. [prev] is the textually preceding instruction — the
             guard-pass shape puts the private guard exactly there. *)
          let consider b state prev (i : Ir.instr) ~ptr ~size ~is_store =
            match AP.site_of ap i.Ir.id with
            | None -> ()
            | Some site ->
                let hot_here g_id =
                  Hashtbl.mem hot (f.Ir.fname, i.Ir.id)
                  || Hashtbl.mem hot (f.Ir.fname, g_id)
                in
                let private_guard =
                  match prev with
                  | Some (g : Ir.instr) -> begin
                      match g.Ir.kind with
                      | Ir.Call { callee; args = [ gptr; gsz ] }
                        when Intrinsics.is_guard callee && gptr = ptr -> begin
                          match Intrinsics.classify callee with
                          | Intrinsics.Guard { write } ->
                              Some (g, write, gptr, gsz)
                          | _ -> None
                        end
                      | _ -> None
                    end
                  | None -> None
                in
                (match private_guard with
                | Some (g, _, _, _) ->
                    (* Rewrites keep the call's instr id, so this keyed
                       mapping survives routing. *)
                    site_calls :=
                      ((f.Ir.fname, g.Ir.id), i.Ir.id) :: !site_calls
                | None -> ());
                let wants_page g_id =
                  match site.AP.cls with
                  | AP.Pointer_chase -> true
                  | AP.Mixed | AP.Unknown ->
                      mode = `Profiled && hot_here g_id
                  | AP.Streaming -> false
                in
                (match private_guard with
                | Some (g, write, gptr, gsz) when wants_page g.Ir.id ->
                    if Hashtbl.mem pin (f.Ir.fname, g.Ir.id) then
                      incr kept_pinned
                    else begin
                      (* Retiring this guard is only legal if nothing
                         else covers the access: query the dataflow with
                         the guard's own fact masked out — exactly-one
                         by construction, before the checker re-proves
                         it. *)
                      let covered_by_other =
                        F.query facts state ~block:b ptr ~size
                          ~write:is_store
                          ~alive:(fun w -> w <> g.Ir.id)
                        <> None
                      in
                      if covered_by_other then incr kept_covered
                      else
                        decisions :=
                          (g, write, gptr, gsz, i.Ir.id, site.AP.cls)
                          :: !decisions
                    end
                | _ -> ())
          in
          List.iter
            (fun (b : Ir.block) ->
              let state = ref (F.in_state facts b.Ir.label) in
              let prev = ref None in
              List.iter
                (fun (i : Ir.instr) ->
                  (match i.Ir.kind with
                  | Ir.Load { ptr; size; _ } ->
                      consider b.Ir.label !state !prev i ~ptr ~size
                        ~is_store:false
                  | Ir.Store { ptr; size; _ } ->
                      consider b.Ir.label !state !prev i ~ptr ~size
                        ~is_store:true
                  | _ -> ());
                  state := F.apply_instr facts !state i;
                  prev := Some i)
                b.Ir.instrs)
            f.Ir.blocks;
          List.iter
            (fun ((g : Ir.instr), write, gptr, gsz, access_id, cls) ->
              g.Ir.kind <-
                Ir.Call
                  {
                    callee =
                      (if write then Intrinsics.page_write
                       else Intrinsics.page_read);
                    args = [ gptr; gsz ];
                  };
              incr routed;
              (match cls with
              | AP.Mixed | AP.Unknown -> incr upgraded
              | _ -> ());
              routes :=
                ( f.Ir.fname,
                  {
                    C.routed_access = access_id;
                    page_call = g.Ir.id;
                    cls = AP.cls_to_string cls;
                  } )
                :: !routes)
            (List.rev !decisions))
        m.Ir.funcs;
      let alloc_shapes =
        match shapes with
        | None -> []
        | Some sh ->
            List.concat_map
              (fun (f : Ir.func) ->
                match Tfm_analysis.Shape.summary sh f.Ir.fname with
                | None -> []
                | Some s ->
                    List.filter_map
                      (fun (a : Tfm_analysis.Shape.alloc_site) ->
                        if Tfm_analysis.Shape.kind_is_recursive a.kind then
                          Some
                            ( (f.Ir.fname, a.alloc_id),
                              Tfm_analysis.Shape.kind_to_string a.kind )
                        else None)
                      s.Tfm_analysis.Shape.allocs)
              m.Ir.funcs
      in
      {
        routed = !routed;
        kept_pinned = !kept_pinned;
        kept_covered = !kept_covered;
        upgraded = !upgraded;
        classes = List.rev !classes;
        routes = List.rev !routes;
        site_calls = List.rev !site_calls;
        alloc_shapes;
      }
