let binop_name : Ir.binop -> string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let fbinop_name : Ir.fbinop -> string = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cmp_name : Ir.cmp -> string = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_value fmt : Ir.value -> unit = function
  | Const n -> Format.fprintf fmt "%d" n
  | Constf x -> Format.fprintf fmt "%g" x
  | Reg id -> Format.fprintf fmt "%%%d" id
  | Arg i -> Format.fprintf fmt "%%arg%d" i
  | Sym s -> Format.fprintf fmt "@%s" s

let pp_values fmt vs =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
    pp_value fmt vs

let pp_kind fmt : Ir.kind -> unit = function
  | Binop (op, a, b) ->
      Format.fprintf fmt "%s %a, %a" (binop_name op) pp_value a pp_value b
  | Fbinop (op, a, b) ->
      Format.fprintf fmt "%s %a, %a" (fbinop_name op) pp_value a pp_value b
  | Icmp (op, a, b) ->
      Format.fprintf fmt "icmp %s %a, %a" (cmp_name op) pp_value a pp_value b
  | Fcmp (op, a, b) ->
      Format.fprintf fmt "fcmp %s %a, %a" (cmp_name op) pp_value a pp_value b
  | Si_to_fp v -> Format.fprintf fmt "sitofp %a" pp_value v
  | Fp_to_si v -> Format.fprintf fmt "fptosi %a" pp_value v
  | Load { ptr; size; is_float } ->
      Format.fprintf fmt "load %s%d, %a"
        (if is_float then "f" else "i")
        (size * 8) pp_value ptr
  | Store { ptr; size; is_float; v } ->
      Format.fprintf fmt "store %s%d %a, %a"
        (if is_float then "f" else "i")
        (size * 8) pp_value v pp_value ptr
  | Gep { base; index; scale; offset } ->
      Format.fprintf fmt "gep %a, %a x %d + %d" pp_value base pp_value index
        scale offset
  | Alloca n -> Format.fprintf fmt "alloca %d" n
  | Call { callee; args } ->
      Format.fprintf fmt "call @%s(%a)" callee pp_values args
  | Phi incoming ->
      Format.fprintf fmt "phi %a"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           (fun fmt (l, v) -> Format.fprintf fmt "[%s: %a]" l pp_value v))
        incoming
  | Select (c, a, b) ->
      Format.fprintf fmt "select %a, %a, %a" pp_value c pp_value a pp_value b

let pp_instr fmt (i : Ir.instr) =
  if Ir.defines_value i.kind then
    Format.fprintf fmt "%%%d = %a" i.id pp_kind i.kind
  else Format.fprintf fmt "%a" pp_kind i.kind

let pp_terminator fmt : Ir.terminator -> unit = function
  | Br l -> Format.fprintf fmt "br %s" l
  | Cbr (c, t, e) -> Format.fprintf fmt "br %a, %s, %s" pp_value c t e
  | Ret None -> Format.fprintf fmt "ret void"
  | Ret (Some v) -> Format.fprintf fmt "ret %a" pp_value v
  | Unreachable -> Format.fprintf fmt "unreachable"

let pp_block fmt (b : Ir.block) =
  Format.fprintf fmt "%s:@." b.label;
  List.iter (fun i -> Format.fprintf fmt "  %a@." pp_instr i) b.instrs;
  Format.fprintf fmt "  %a@." pp_terminator b.term

let pp_func fmt (f : Ir.func) =
  Format.fprintf fmt "define @%s(%d params) {@." f.fname f.nparams;
  List.iter (pp_block fmt) f.blocks;
  Format.fprintf fmt "}@."

let pp_module fmt (m : Ir.modul) =
  List.iter
    (fun (name, size) -> Format.fprintf fmt "global @%s : %d bytes@." name size)
    m.globals;
  List.iter (pp_func fmt) m.funcs

let func_to_string f = Format.asprintf "%a" pp_func f
let module_to_string m = Format.asprintf "%a" pp_module m

(* Annotated variants: [annot] supplies a trailing comment per
   instruction (e.g. a call's interprocedural summary). The instruction
   text itself is rendered by the same printers, so the annotated form
   round-trips: stripping "  ; ..." suffixes yields the plain dump. *)

let pp_instr_annotated annot fmt (i : Ir.instr) =
  match annot i with
  | None -> pp_instr fmt i
  | Some note -> Format.fprintf fmt "%a  ; %s" pp_instr i note

let pp_block_annotated annot fmt (b : Ir.block) =
  Format.fprintf fmt "%s:@." b.label;
  List.iter
    (fun i -> Format.fprintf fmt "  %a@." (pp_instr_annotated annot) i)
    b.instrs;
  Format.fprintf fmt "  %a@." pp_terminator b.term

let pp_func_annotated annot fmt (f : Ir.func) =
  Format.fprintf fmt "define @%s(%d params) {@." f.fname f.nparams;
  List.iter (pp_block_annotated annot fmt) f.blocks;
  Format.fprintf fmt "}@."

let pp_module_annotated annot fmt (m : Ir.modul) =
  List.iter
    (fun (name, size) -> Format.fprintf fmt "global @%s : %d bytes@." name size)
    m.globals;
  List.iter (pp_func_annotated annot fmt) m.funcs

let module_to_string_annotated annot m =
  Format.asprintf "%a" (pp_module_annotated annot) m
