(** Canonical table of the runtime-ABI intrinsics.

    One place that knows, for every callee name the passes emit, what the
    call means for object custody: does it establish custody (guards and
    chunk accesses), release it (chunk end), destroy it (allocation,
    free, or any opaque call that may drive the evacuator), or leave it
    alone (simulator bookkeeping). The guard injector, the structural
    verifier, and the static guard-coverage checker all read this table
    so their notions of "guard" and "clobber" can never drift apart. *)

val guard_read : string
val guard_write : string
val chunk_init : string
val chunk_access_read : string
val chunk_access_write : string
val chunk_end : string
val runtime_init : string
val page_read : string
val page_write : string

type effect_ =
  | Guard of { write : bool }  (** custody check + localize *)
  | Chunk_access of { write : bool }
      (** boundary-checked access under a pinned chunk *)
  | Chunk_end  (** releases the chunk protocol's pins *)
  | Page of { write : bool }
      (** page-granular fault-in (hybrid data plane); materializes the
          page synchronously but establishes no custody *)
  | Alloc  (** may evict to make room *)
  | Free  (** invalidates and may reshuffle *)
  | Neutral  (** simulator hook; never evicts *)
  | Unknown  (** opaque call: assume the worst *)

val classify : string -> effect_

val is_guard : string -> bool
(** [true] exactly for the two plain guard intrinsics. *)

val is_page : string -> bool
(** [true] exactly for the two page-path intrinsics. *)

val is_custody_source : string -> bool
(** Guards and chunk accesses: calls that establish custody facts. *)

val custody_args : string -> (int * int) option
(** Argument positions [(ptr, size)] for custody sources. *)

val clobbers_custody : string -> bool
(** Calls after which previously established custody no longer holds. *)

val check_call : callee:string -> args:Ir.value list -> string option
(** Structural validity of an intrinsic call site; [Some msg] describes
    the malformation, [None] means well-formed (or not an intrinsic we
    check). *)
