(** A small LLVM-like intermediate representation.

    TrackFM's compiler passes operate on LLVM bitcode; this IR models the
    subset those passes need: integer/float arithmetic, loads and stores
    with byte sizes, pointer arithmetic ([Gep]), stack allocation, calls
    (including libc allocation calls that the TrackFM libc pass rewrites),
    phi nodes and structured control flow.

    Pointers and integers are plain OCaml [int]s: 63 bits is enough to
    carry TrackFM's non-canonical tag in bit 60 exactly as the paper's
    x86 encoding does.

    Functions and blocks are mutable so transformation passes can rewrite
    programs in place; analyses treat them as read-only. *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type value =
  | Const of int        (** integer (or pointer) literal *)
  | Constf of float     (** floating literal *)
  | Reg of int          (** result of the instruction with this id *)
  | Arg of int          (** function parameter by position *)
  | Sym of string       (** address of a named global *)

type kind =
  | Binop of binop * value * value
  | Fbinop of fbinop * value * value
  | Icmp of cmp * value * value
  | Fcmp of cmp * value * value
  | Si_to_fp of value
  | Fp_to_si of value
  | Load of { ptr : value; size : int; is_float : bool }
      (** [size] in bytes: 1, 2, 4 or 8. *)
  | Store of { ptr : value; size : int; is_float : bool; v : value }
  | Gep of { base : value; index : value; scale : int; offset : int }
      (** address computation: [base + index * scale + offset]. *)
  | Alloca of int       (** stack allocation of n bytes; yields a pointer *)
  | Call of { callee : string; args : value list }
  | Phi of (string * value) list
      (** one incoming value per predecessor block label. *)
  | Select of value * value * value

type terminator =
  | Br of string
  | Cbr of value * string * string  (** cond, then-label, else-label *)
  | Ret of value option
  | Unreachable

type instr = { id : int; mutable kind : kind }
(** [id] doubles as the SSA register this instruction defines; instructions
    with no result (stores, void calls) still get a unique id. *)

type block = {
  label : string;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  nparams : int;
  mutable blocks : block list;  (** entry block first *)
  mutable next_id : int;
}

type modul = {
  mutable funcs : func list;
  mutable globals : (string * int) list;  (** name, size in bytes *)
}

val create_module : unit -> modul

val add_global : modul -> string -> int -> unit
(** [add_global m name size] declares a global data region. *)

val find_func : modul -> string -> func
(** @raise Not_found if absent. *)

val find_block : func -> string -> block
(** @raise Not_found if absent. *)

val entry : func -> block
(** First block of the function. Requires at least one block. *)

val fresh_id : func -> int
(** Allocate a new instruction/register id. *)

val defines_value : kind -> bool
(** Whether an instruction kind produces a usable result. *)

val successors : terminator -> string list

val instr_operands : kind -> value list
(** All value operands (for phis, only the incoming values). *)

val map_operands : (value -> value) -> kind -> kind
(** Rewrite every operand, preserving structure. *)

val block_count : func -> int
val instr_count : func -> int
val module_instr_count : modul -> int

val is_alloc_call : string -> bool
(** Recognizes libc heap allocation entry points ([malloc], [calloc],
    [realloc]) that the TrackFM libc pass intercepts. *)

val is_free_call : string -> bool
