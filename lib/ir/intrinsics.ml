(* Canonical table of the runtime-ABI calls the passes emit and the
   interpreter backends dispatch on. Everything that needs to know what a
   callee name *means* for custody — the guard injector, the chunk
   transform, the structural verifier, and the static guard-coverage
   checker — reads this table instead of repeating string literals. *)

let guard_read = "tfm_guard_read"
let guard_write = "tfm_guard_write"
let chunk_init = "!tfm_chunk_init"
let chunk_access_read = "tfm_chunk_access_read"
let chunk_access_write = "tfm_chunk_access_write"
let chunk_end = "!tfm_chunk_end"
let runtime_init = "!tfm_init"
let page_read = "tfm_page_read"
let page_write = "tfm_page_write"

type effect_ =
  | Guard of { write : bool }
  | Chunk_access of { write : bool }
  | Chunk_end
  | Page of { write : bool }
  | Alloc
  | Free
  | Neutral
  | Unknown

(* Custody semantics of a callee name.

   [Guard]/[Chunk_access] establish custody of the bytes they name: after
   the call returns, the object(s) under [ptr .. ptr+size) are local and —
   per the AIFM dereference-scope contract the runtime mirrors (see
   lib/aifm/scope.mli) — stay resident until a release point.  [Chunk_end]
   is such a release point for the chunk protocol's pins.  [Alloc]/[Free]
   and any call we cannot see into ([Unknown]) may trigger eviction or
   invalidate pointers outright, so they end custody of everything.
   [Neutral] covers the simulator bookkeeping intrinsics that neither
   touch the evacuator nor free memory. *)
let classify = function
  | "tfm_guard_read" -> Guard { write = false }
  | "tfm_guard_write" -> Guard { write = true }
  | "tfm_chunk_access_read" -> Chunk_access { write = false }
  | "tfm_chunk_access_write" -> Chunk_access { write = true }
  | "!tfm_chunk_end" -> Chunk_end
  | "tfm_page_read" -> Page { write = false }
  | "tfm_page_write" -> Page { write = true }
  | "malloc" | "calloc" | "realloc" | "tfm_malloc" | "tfm_calloc"
  | "tfm_realloc" ->
      Alloc
  | "free" | "tfm_free" -> Free
  | name when String.length name > 0 && name.[0] = '!' ->
      (* !tfm_init, !tfm_chunk_init, !bench_begin, !cpu_work, !load_blob,
         !op_begin, !op_end: simulator/bookkeeping hooks that never
         evict. *)
      Neutral
  | _ -> Unknown

let is_guard name =
  match classify name with Guard _ -> true | _ -> false

let is_custody_source name =
  match classify name with Guard _ | Chunk_access _ -> true | _ -> false

(* Argument layout for custody sources: (ptr position, size position). *)
let custody_args name =
  match classify name with
  | Guard _ -> Some (0, 1)
  | Chunk_access _ -> Some (1, 2)
  | _ -> None

let is_page name =
  match classify name with Page _ -> true | _ -> false

(* A paged access is synchronously materialized (the fault handler
   returns with the page resident) but establishes no custody: nothing
   pins the page, so the very next access to the same bytes may fault
   again. Custody facts therefore neither start nor end here. *)
let clobbers_custody name =
  match classify name with
  | Alloc | Free | Unknown -> true
  | Guard _ | Chunk_access _ | Chunk_end | Page _ | Neutral -> false

(* Structural well-formedness of an intrinsic call site; [None] when the
   shape is valid or the callee is not one of ours. The pointer operand
   must be pointer-typed (a float constant can never be an address) and
   sizes/handles must be positive compile-time constants — the passes
   only ever emit that shape, so anything else is a malformed transform,
   caught here rather than as a runtime surprise. *)
let check_call ~callee ~args =
  let err fmt = Format.kasprintf (fun s -> Some s) fmt in
  let pointerish = function Ir.Constf _ -> false | _ -> true in
  let const_at least v =
    match v with Ir.Const n when n >= least -> true | _ -> false
  in
  match classify callee with
  | Guard _ | Page _ -> begin
      match args with
      | [ ptr; size ] ->
          if not (pointerish ptr) then
            err "%s: pointer operand is a float constant" callee
          else if not (const_at 1 size) then
            err "%s: size operand must be a positive constant" callee
          else None
      | _ -> err "%s: expected 2 arguments, got %d" callee (List.length args)
    end
  | Chunk_access _ -> begin
      match args with
      | [ handle; ptr; size ] ->
          if not (const_at 0 handle) then
            err "%s: handle operand must be a constant" callee
          else if not (pointerish ptr) then
            err "%s: pointer operand is a float constant" callee
          else if not (const_at 1 size) then
            err "%s: size operand must be a positive constant" callee
          else None
      | _ -> err "%s: expected 3 arguments, got %d" callee (List.length args)
    end
  | Chunk_end -> begin
      match args with
      | [ handle ] ->
          if const_at 0 handle then None
          else err "%s: handle operand must be a constant" callee
      | _ -> err "%s: expected 1 argument, got %d" callee (List.length args)
    end
  | Alloc | Free | Neutral | Unknown -> None
