type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type value =
  | Const of int
  | Constf of float
  | Reg of int
  | Arg of int
  | Sym of string

type kind =
  | Binop of binop * value * value
  | Fbinop of fbinop * value * value
  | Icmp of cmp * value * value
  | Fcmp of cmp * value * value
  | Si_to_fp of value
  | Fp_to_si of value
  | Load of { ptr : value; size : int; is_float : bool }
  | Store of { ptr : value; size : int; is_float : bool; v : value }
  | Gep of { base : value; index : value; scale : int; offset : int }
  | Alloca of int
  | Call of { callee : string; args : value list }
  | Phi of (string * value) list
  | Select of value * value * value

type terminator =
  | Br of string
  | Cbr of value * string * string
  | Ret of value option
  | Unreachable

type instr = { id : int; mutable kind : kind }

type block = {
  label : string;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  nparams : int;
  mutable blocks : block list;
  mutable next_id : int;
}

type modul = {
  mutable funcs : func list;
  mutable globals : (string * int) list;
}

let create_module () = { funcs = []; globals = [] }

let add_global m name size = m.globals <- (name, size) :: m.globals

let find_func m name = List.find (fun f -> f.fname = name) m.funcs

let find_block f label = List.find (fun b -> b.label = label) f.blocks

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Ir.entry: function has no blocks"

let fresh_id f =
  let id = f.next_id in
  f.next_id <- id + 1;
  id

let defines_value = function
  | Store _ -> false
  | Call { callee; _ } ->
      (* Void runtime hooks are conventionally prefixed. *)
      not (String.length callee > 0 && callee.[0] = '!')
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Si_to_fp _ | Fp_to_si _
  | Load _ | Gep _ | Alloca _ | Phi _ | Select _ ->
      true

let successors = function
  | Br l -> [ l ]
  | Cbr (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Ret _ | Unreachable -> []

let instr_operands = function
  | Binop (_, a, b) | Fbinop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) ->
      [ a; b ]
  | Si_to_fp v | Fp_to_si v -> [ v ]
  | Load { ptr; _ } -> [ ptr ]
  | Store { ptr; v; _ } -> [ ptr; v ]
  | Gep { base; index; _ } -> [ base; index ]
  | Alloca _ -> []
  | Call { args; _ } -> args
  | Phi incoming -> List.map snd incoming
  | Select (c, a, b) -> [ c; a; b ]

let map_operands g = function
  | Binop (op, a, b) -> Binop (op, g a, g b)
  | Fbinop (op, a, b) -> Fbinop (op, g a, g b)
  | Icmp (op, a, b) -> Icmp (op, g a, g b)
  | Fcmp (op, a, b) -> Fcmp (op, g a, g b)
  | Si_to_fp v -> Si_to_fp (g v)
  | Fp_to_si v -> Fp_to_si (g v)
  | Load { ptr; size; is_float } -> Load { ptr = g ptr; size; is_float }
  | Store { ptr; size; is_float; v } ->
      Store { ptr = g ptr; size; is_float; v = g v }
  | Gep { base; index; scale; offset } ->
      Gep { base = g base; index = g index; scale; offset }
  | Alloca n -> Alloca n
  | Call { callee; args } -> Call { callee; args = List.map g args }
  | Phi incoming -> Phi (List.map (fun (l, v) -> (l, g v)) incoming)
  | Select (c, a, b) -> Select (g c, g a, g b)

let block_count f = List.length f.blocks

let instr_count f =
  List.fold_left (fun acc b -> acc + List.length b.instrs) 0 f.blocks

let module_instr_count m =
  List.fold_left (fun acc f -> acc + instr_count f) 0 m.funcs

let is_alloc_call = function
  | "malloc" | "calloc" | "realloc" -> true
  | _ -> false

let is_free_call = function "free" -> true | _ -> false
