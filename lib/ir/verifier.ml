exception Ill_formed of string

let fail fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let check_func (f : Ir.func) =
  let labels = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      if Hashtbl.mem labels b.label then
        fail "%s: duplicate block label %s" f.fname b.label;
      Hashtbl.replace labels b.label ())
    f.blocks;
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          if Hashtbl.mem defs i.id then
            fail "%s: duplicate instruction id %d" f.fname i.id;
          Hashtbl.replace defs i.id (Ir.defines_value i.kind))
        b.instrs)
    f.blocks;
  let check_value where = function
    | Ir.Reg id -> begin
        match Hashtbl.find_opt defs id with
        | Some true -> ()
        | Some false -> fail "%s/%s: use of void instruction %%%d" f.fname where id
        | None -> fail "%s/%s: use of undefined register %%%d" f.fname where id
      end
    | Ir.Arg i ->
        if i < 0 || i >= f.nparams then
          fail "%s/%s: argument index %d out of range" f.fname where i
    | Ir.Const _ | Ir.Constf _ | Ir.Sym _ -> ()
  in
  let cfg = Cfg.build f in
  List.iter
    (fun (b : Ir.block) ->
      let seen_non_phi = ref false in
      List.iter
        (fun (i : Ir.instr) ->
          begin
            match i.kind with
            | Ir.Phi incoming ->
                if !seen_non_phi then
                  fail "%s/%s: phi %%%d after non-phi instruction" f.fname
                    b.label i.id;
                if b.label = (Ir.entry f).label then
                  fail "%s: phi in entry block" f.fname;
                let preds = List.sort compare (Cfg.predecessors cfg b.label) in
                let arms = List.sort compare (List.map fst incoming) in
                if preds <> arms then
                  fail "%s/%s: phi %%%d arms [%s] do not match preds [%s]"
                    f.fname b.label i.id (String.concat ";" arms)
                    (String.concat ";" preds)
            | Ir.Load { size; _ } | Ir.Store { size; _ } ->
                if not (List.mem size [ 1; 2; 4; 8 ]) then
                  fail "%s/%s: bad access size %d" f.fname b.label size;
                seen_non_phi := true
            | Ir.Call { callee; args } ->
                (* Runtime-ABI intrinsics must be structurally sound
                   (arity, pointer-typed pointer operand, constant
                   size/handle) — a malformed guard is a broken
                   transform, not a semantic edge case. *)
                begin
                  match Intrinsics.check_call ~callee ~args with
                  | Some msg ->
                      fail "%s/%s: malformed intrinsic call %%%d: %s" f.fname
                        b.label i.id msg
                  | None -> ()
                end;
                seen_non_phi := true
            | _ -> seen_non_phi := true
          end;
          List.iter (check_value b.label) (Ir.instr_operands i.kind))
        b.instrs;
      begin
        match b.term with
        | Ir.Cbr (c, _, _) -> check_value b.label c
        | Ir.Ret (Some v) -> check_value b.label v
        | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> ()
      end;
      List.iter
        (fun target ->
          if not (Hashtbl.mem labels target) then
            fail "%s/%s: branch to unknown block %s" f.fname b.label target)
        (Ir.successors b.term))
    f.blocks

let check_module (m : Ir.modul) = List.iter check_func m.funcs
