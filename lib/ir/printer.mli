(** Textual rendering of IR, LLVM-flavoured, for debugging and golden
    tests. *)

val pp_value : Format.formatter -> Ir.value -> unit
val pp_kind : Format.formatter -> Ir.kind -> unit
val pp_instr : Format.formatter -> Ir.instr -> unit
val pp_terminator : Format.formatter -> Ir.terminator -> unit
val pp_block : Format.formatter -> Ir.block -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_module : Format.formatter -> Ir.modul -> unit

val func_to_string : Ir.func -> string
val module_to_string : Ir.modul -> string

(** {1 Annotated rendering}

    [annot] supplies an optional trailing comment per instruction (the
    summaries dump uses it to tag call sites with [!summary ...]). The
    instruction text is produced by the same printers as the plain
    forms, so stripping the ["  ; ..."] suffixes round-trips to the
    unannotated dump. *)

val pp_instr_annotated :
  (Ir.instr -> string option) -> Format.formatter -> Ir.instr -> unit

val pp_module_annotated :
  (Ir.instr -> string option) -> Format.formatter -> Ir.modul -> unit

val module_to_string_annotated :
  (Ir.instr -> string option) -> Ir.modul -> string
