(** K-means clustering (Section 4.2, Figure 8).

    Dimension-major ("structure of arrays") layout like the paper's
    benchmark: the hot distance phase is long unit-stride scans over the
    point and distance arrays (high object density — chunking pays), while
    the per-point argmin and centroid-update phases run many short loops
    (a handful of iterations per entry) whose chunk setup can never be
    amortized — the loops that make indiscriminate chunking a slowdown
    and that the profile-driven cost-model gate must filter out.

    The program's float arithmetic is replicated exactly by {!checksum}'s
    OCaml reference implementation (same operation order), so all
    backends can be validated bit-for-bit. *)

type params = {
  n : int;        (** number of points *)
  dims : int;     (** coordinates per point (paper-scale: 4) *)
  clusters : int;
  iters : int;    (** fixed Lloyd iterations *)
}

val default_params : n:int -> params
(** dims = 4, clusters = 10, iters = 2. *)

val build : params -> unit -> Ir.modul

val working_set_bytes : params -> int

val op_classes : (int * string) list
(** Span operation classes: class 0 = one Lloyd iteration. *)

val checksum : params -> int
(** Expected return value (reference implementation). *)
