type params = { rows : int; groups : int; agg_repeat : int }

(* Real EDA notebooks run many group-by aggregations over the same frame;
   agg_repeat repeats the per-group phases, which is what gives the short
   low-density loops their Figure 15 weight. *)
let default_params ~rows = { rows; groups = max 16 (rows / 12); agg_repeat = 3 }

let checksum_mask = 0x3FFFFFFF

(* Synthetic trip columns; every implementation uses exactly these
   formulas (and the same float operation order) so checksums agree. *)
(* Rows are time-ordered and grouped by pickup minute, so group members
   are contiguous — the scan-dominated access pattern the paper
   describes for this application. *)
let zone_of p i = i * p.groups / p.rows
let pc_of i = 1 + (i * 31 mod 6)
let dist_of i = float_of_int (((i * 73) + 11) mod 5000) /. 10.0
let fare_of i = 2.5 +. (dist_of i *. 1.8) +. float_of_int (i mod 7)

let working_set_bytes p =
  (* zone + pc (4 B) + dist + fare (8 B) + idx (4 B) + counts/offsets/pos *)
  (p.rows * (4 + 4 + 8 + 8 + 4)) + (3 * (p.groups + 1) * 8)

let build p () =
  let n = p.rows in
  let g = p.groups in
  let m = Ir.create_module () in
  (* Pure helpers called from the hot scan loops: interprocedural
     summaries prove them custody-preserving, so guard facts survive the
     calls and cross-call elision still fires. Same float ops in the
     same order as the previous inline forms — checksums are
     bit-identical. *)
  let bh = Builder.create m ~name:"facc" ~nparams:2 in
  Builder.ret bh
    (Some (Builder.fbinop bh Ir.Fadd (Builder.arg 0) (Builder.arg 1)));
  let bm = Builder.create m ~name:"fsel_max" ~nparams:2 in
  let hgt = Builder.fcmp bm Ir.Gt (Builder.arg 0) (Builder.arg 1) in
  Builder.ret bm (Some (Builder.select bm hgt (Builder.arg 0) (Builder.arg 1)));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let zone = Builder.call b "malloc" [ Ir.Const (n * 4) ] in
  let pc = Builder.call b "malloc" [ Ir.Const (n * 4) ] in
  let dist = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let fare = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let idx = Builder.call b "malloc" [ Ir.Const (n * 4) ] in
  let counts = Builder.call b "calloc" [ Ir.Const (g + 1); Ir.Const 8 ] in
  let offsets = Builder.call b "calloc" [ Ir.Const (g + 1); Ir.Const 8 ] in
  let pos = Builder.call b "calloc" [ Ir.Const (g + 1); Ir.Const 8 ] in
  let hist = Builder.call b "calloc" [ Ir.Const 8; Ir.Const 8 ] in
  (* Build the dataframe. *)
  Builder.for_loop b ~hint:"gen" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let z = Builder.binop b Ir.Sdiv (Builder.mul b i (Ir.Const g)) (Ir.Const n) in
      Builder.store b ~size:4 z ~ptr:(Builder.gep b zone ~index:i ~scale:4 ());
      let pcv =
        Builder.add b (Ir.Const 1)
          (Builder.binop b Ir.Srem (Builder.mul b i (Ir.Const 31)) (Ir.Const 6))
      in
      Builder.store b ~size:4 pcv ~ptr:(Builder.gep b pc ~index:i ~scale:4 ());
      let draw =
        Builder.binop b Ir.Srem
          (Builder.add b (Builder.mul b i (Ir.Const 73)) (Ir.Const 11))
          (Ir.Const 5000)
      in
      let d = Builder.fbinop b Ir.Fdiv (Builder.si_to_fp b draw) (Ir.Constf 10.0) in
      Builder.store b ~is_float:true d
        ~ptr:(Builder.gep b dist ~index:i ~scale:8 ());
      let f =
        Builder.fbinop b Ir.Fadd
          (Builder.fbinop b Ir.Fadd (Ir.Constf 2.5)
             (Builder.fbinop b Ir.Fmul d (Ir.Constf 1.8)))
          (Builder.si_to_fp b (Builder.binop b Ir.Srem i (Ir.Const 7)))
      in
      Builder.store b ~is_float:true f
        ~ptr:(Builder.gep b fare ~index:i ~scale:8 ()));
  ignore (Builder.call b "!bench_begin" []);
  (* Q1: mean trip distance — a whole-column scan. *)
  let q1accs =
    Builder.for_loop_acc b ~hint:"q1" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Constf 0.0 ]
      (fun b ~iv:i ~accs ->
        let s = match accs with [ s ] -> s | _ -> assert false in
        let d = Builder.load b ~is_float:true (Builder.gep b dist ~index:i ~scale:8 ()) in
        [ Builder.call b "facc" [ s; d ] ])
  in
  let q1sum = match q1accs with [ s ] -> s | _ -> assert false in
  let mean =
    Builder.fbinop b Ir.Fdiv q1sum (Ir.Constf (float_of_int n))
  in
  let q1 = Builder.fp_to_si b (Builder.fbinop b Ir.Fmul mean (Ir.Constf 1000.0)) in
  (* Q2: passenger-count histogram. *)
  Builder.for_loop b ~hint:"q2" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let v = Builder.load b ~size:4 (Builder.gep b pc ~index:i ~scale:4 ()) in
      let hptr = Builder.gep b hist ~index:v ~scale:8 () in
      let c = Builder.load b hptr in
      Builder.store b (Builder.add b c (Ir.Const 1)) ~ptr:hptr);
  let q2accs =
    Builder.for_loop_acc b ~hint:"q2r" ~init:(Ir.Const 0) ~bound:(Ir.Const 8)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:c ~accs ->
        let s = match accs with [ s ] -> s | _ -> assert false in
        let cnt = Builder.load b (Builder.gep b hist ~index:c ~scale:8 ()) in
        [ Builder.add b s (Builder.mul b cnt c) ])
  in
  let q2 = match q2accs with [ s ] -> s | _ -> assert false in
  (* Q3: max fare — another column scan. *)
  let q3accs =
    Builder.for_loop_acc b ~hint:"q3" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Constf neg_infinity ]
      (fun b ~iv:i ~accs ->
        let mx = match accs with [ s ] -> s | _ -> assert false in
        let f = Builder.load b ~is_float:true (Builder.gep b fare ~index:i ~scale:8 ()) in
        [ Builder.call b "fsel_max" [ f; mx ] ])
  in
  let q3max = match q3accs with [ s ] -> s | _ -> assert false in
  let q3 = Builder.fp_to_si b (Builder.fbinop b Ir.Fmul q3max (Ir.Constf 100.0)) in
  (* Q5: filtered count over two columns (long trips with high fares). *)
  let q5accs =
    Builder.for_loop_acc b ~hint:"q5" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:i ~accs ->
        let c = match accs with [ s ] -> s | _ -> assert false in
        let d = Builder.load b ~is_float:true (Builder.gep b dist ~index:i ~scale:8 ()) in
        let f = Builder.load b ~is_float:true (Builder.gep b fare ~index:i ~scale:8 ()) in
        let long_trip = Builder.fcmp b Ir.Gt d (Ir.Constf 300.0) in
        let pricey = Builder.fcmp b Ir.Gt f (Ir.Constf 500.0) in
        let both = Builder.binop b Ir.And long_trip pricey in
        [ Builder.add b c both ])
  in
  let q5 = match q5accs with [ s ] -> s | _ -> assert false in
  (* Q6: fare histogram (64 buckets of width 10), then the p95 bucket —
     another full scan plus a small hot histogram. *)
  let fhist = Builder.call b "calloc" [ Ir.Const 64; Ir.Const 8 ] in
  Builder.for_loop b ~hint:"q6" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let f = Builder.load b ~is_float:true (Builder.gep b fare ~index:i ~scale:8 ()) in
      let bucket =
        Builder.fp_to_si b (Builder.fbinop b Ir.Fdiv f (Ir.Constf 10.0))
      in
      let lt = Builder.icmp b Ir.Lt bucket (Ir.Const 63) in
      let bucket = Builder.select b lt bucket (Ir.Const 63) in
      let hptr = Builder.gep b fhist ~index:bucket ~scale:8 () in
      let c = Builder.load b hptr in
      Builder.store b (Builder.add b c (Ir.Const 1)) ~ptr:hptr);
  let threshold = n * 95 / 100 in
  let q6accs =
    Builder.for_loop_acc b ~hint:"q6p" ~init:(Ir.Const 0) ~bound:(Ir.Const 64)
      ~accs:[ Ir.Const 0; Ir.Const 0 ]
      (fun b ~iv:bucket ~accs ->
        let seen, found =
          match accs with [ x; y ] -> (x, y) | _ -> assert false
        in
        let c = Builder.load b (Builder.gep b fhist ~index:bucket ~scale:8 ()) in
        let seen' = Builder.add b seen c in
        (* record the first bucket where the running count crosses 95% *)
        let crossed =
          Builder.binop b Ir.And
            (Builder.icmp b Ir.Ge seen' (Ir.Const threshold))
            (Builder.icmp b Ir.Eq found (Ir.Const 0))
        in
        let found' =
          Builder.select b crossed (Builder.add b bucket (Ir.Const 1)) found
        in
        [ seen'; found' ])
  in
  let q6 = match q6accs with [ _; f ] -> f | _ -> assert false in
  (* Q4: group-by zone, then per-group mean fare. *)
  Builder.for_loop b ~hint:"q4cnt" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let z = Builder.load b ~size:4 (Builder.gep b zone ~index:i ~scale:4 ()) in
      let cptr = Builder.gep b counts ~index:z ~scale:8 () in
      let c = Builder.load b cptr in
      Builder.store b (Builder.add b c (Ir.Const 1)) ~ptr:cptr);
  (* exclusive prefix sum into offsets (and a scratch copy in pos) *)
  let offaccs =
    Builder.for_loop_acc b ~hint:"q4off" ~init:(Ir.Const 0) ~bound:(Ir.Const g)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:z ~accs ->
        let run = match accs with [ s ] -> s | _ -> assert false in
        Builder.store b run ~ptr:(Builder.gep b offsets ~index:z ~scale:8 ());
        Builder.store b run ~ptr:(Builder.gep b pos ~index:z ~scale:8 ());
        let c = Builder.load b (Builder.gep b counts ~index:z ~scale:8 ()) in
        [ Builder.add b run c ])
  in
  let total = match offaccs with [ s ] -> s | _ -> assert false in
  Builder.store b total ~ptr:(Builder.gep b offsets ~index:(Ir.Const g) ~scale:8 ());
  (* scatter row ids into the group index *)
  Builder.for_loop b ~hint:"q4fill" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let z = Builder.load b ~size:4 (Builder.gep b zone ~index:i ~scale:4 ()) in
      let pptr = Builder.gep b pos ~index:z ~scale:8 () in
      let slot = Builder.load b pptr in
      Builder.store b ~size:4 i ~ptr:(Builder.gep b idx ~index:slot ~scale:4 ());
      Builder.store b (Builder.add b slot (Ir.Const 1)) ~ptr:pptr);
  (* per-group aggregation: the short low-density loops of Figure 15,
     repeated as a notebook re-aggregates the frame *)
  let q4accs =
    Builder.for_loop_acc b ~hint:"q4rep" ~init:(Ir.Const 0)
      ~bound:(Ir.Const p.agg_repeat) ~accs:[ Ir.Const 0 ]
      (fun b ~iv:_ ~accs ->
      let outer_acc = match accs with [ s ] -> s | _ -> assert false in
      let inner_accs =
    Builder.for_loop_acc b ~hint:"q4agg" ~init:(Ir.Const 0) ~bound:(Ir.Const g)
      ~accs:[ outer_acc ]
      (fun b ~iv:z ~accs ->
        let acc = match accs with [ s ] -> s | _ -> assert false in
        let lo = Builder.load b (Builder.gep b offsets ~index:z ~scale:8 ()) in
        let hi =
          Builder.load b
            (Builder.gep b offsets ~index:(Builder.add b z (Ir.Const 1)) ~scale:8 ())
        in
        let inner =
          Builder.for_loop_acc b ~hint:"q4grp" ~init:lo ~bound:hi
            ~accs:[ Ir.Constf 0.0 ]
            (fun b ~iv:j ~accs ->
              let s = match accs with [ s ] -> s | _ -> assert false in
              let row = Builder.load b ~size:4 (Builder.gep b idx ~index:j ~scale:4 ()) in
              let f =
                Builder.load b ~is_float:true
                  (Builder.gep b fare ~index:row ~scale:8 ())
              in
              [ Builder.call b "facc" [ s; f ] ])
        in
        let s = match inner with [ s ] -> s | _ -> assert false in
        let cnt = Builder.sub b hi lo in
        let nonempty = Builder.icmp b Ir.Gt cnt (Ir.Const 0) in
        let gmean =
          Builder.fbinop b Ir.Fdiv s (Builder.si_to_fp b (Builder.select b nonempty cnt (Ir.Const 1)))
        in
        let q = Builder.fp_to_si b (Builder.fbinop b Ir.Fmul gmean (Ir.Constf 8.0)) in
        let contrib = Builder.select b nonempty q (Ir.Const 0) in
        [ Builder.binop b Ir.And (Builder.add b acc contrib) (Ir.Const checksum_mask) ])
      in
      [ (match inner_accs with [ s ] -> s | _ -> assert false) ])
  in
  let q4 = match q4accs with [ s ] -> s | _ -> assert false in
  (* Q7: per-group max trip distance — more of the short low-density
     loops that Figure 15 is about. *)
  let q7accs =
    Builder.for_loop_acc b ~hint:"q7rep" ~init:(Ir.Const 0)
      ~bound:(Ir.Const p.agg_repeat) ~accs:[ Ir.Const 0 ]
      (fun b ~iv:_ ~accs ->
      let outer_acc = match accs with [ s ] -> s | _ -> assert false in
      let inner_accs =
    Builder.for_loop_acc b ~hint:"q7agg" ~init:(Ir.Const 0) ~bound:(Ir.Const g)
      ~accs:[ outer_acc ]
      (fun b ~iv:z ~accs ->
        let acc = match accs with [ s ] -> s | _ -> assert false in
        let lo = Builder.load b (Builder.gep b offsets ~index:z ~scale:8 ()) in
        let hi =
          Builder.load b
            (Builder.gep b offsets ~index:(Builder.add b z (Ir.Const 1)) ~scale:8 ())
        in
        let inner =
          Builder.for_loop_acc b ~hint:"q7grp" ~init:lo ~bound:hi
            ~accs:[ Ir.Constf 0.0 ]
            (fun b ~iv:j ~accs ->
              let mx = match accs with [ s ] -> s | _ -> assert false in
              let row = Builder.load b ~size:4 (Builder.gep b idx ~index:j ~scale:4 ()) in
              let d =
                Builder.load b ~is_float:true
                  (Builder.gep b dist ~index:row ~scale:8 ())
              in
              [ Builder.call b "fsel_max" [ d; mx ] ])
        in
        let mx = match inner with [ s ] -> s | _ -> assert false in
        let q = Builder.fp_to_si b (Builder.fbinop b Ir.Fmul mx (Ir.Constf 2.0)) in
        [ Builder.binop b Ir.And (Builder.add b acc q) (Ir.Const checksum_mask) ])
      in
      [ (match inner_accs with [ s ] -> s | _ -> assert false) ])
  in
  let q7 = match q7accs with [ s ] -> s | _ -> assert false in
  let ck =
    Builder.binop b Ir.And
      (Builder.add b
         (Builder.add b
            (Builder.add b (Builder.add b (Builder.add b (Builder.add b q1 q2) q3) q4) q5)
            q6)
         q7)
      (Ir.Const checksum_mask)
  in
  Builder.ret b (Some ck);
  Verifier.check_module m;
  m

(* Host reference, mirroring the IR arithmetic exactly. *)
let reference p =
  let n = p.rows and g = p.groups in
  let q1sum = ref 0.0 in
  for i = 0 to n - 1 do
    q1sum := !q1sum +. dist_of i
  done;
  let q1 = int_of_float (!q1sum /. float_of_int n *. 1000.0) in
  let hist = Array.make 8 0 in
  for i = 0 to n - 1 do
    hist.(pc_of i) <- hist.(pc_of i) + 1
  done;
  let q2 = ref 0 in
  for c = 0 to 7 do
    q2 := !q2 + (hist.(c) * c)
  done;
  let q3max = ref neg_infinity in
  for i = 0 to n - 1 do
    if fare_of i > !q3max then q3max := fare_of i
  done;
  let q3 = int_of_float (!q3max *. 100.0) in
  let q5 = ref 0 in
  for i = 0 to n - 1 do
    if dist_of i > 300.0 && fare_of i > 500.0 then incr q5
  done;
  let fhist = Array.make 64 0 in
  for i = 0 to n - 1 do
    let bucket = int_of_float (fare_of i /. 10.0) in
    let bucket = if bucket < 63 then bucket else 63 in
    fhist.(bucket) <- fhist.(bucket) + 1
  done;
  let threshold = n * 95 / 100 in
  let q6 = ref 0 in
  let seen = ref 0 in
  for bucket = 0 to 63 do
    seen := !seen + fhist.(bucket);
    if !seen >= threshold && !q6 = 0 then q6 := bucket + 1
  done;
  let counts = Array.make (g + 1) 0 in
  for i = 0 to n - 1 do
    let z = zone_of p i in
    counts.(z) <- counts.(z) + 1
  done;
  let offsets = Array.make (g + 1) 0 in
  let pos = Array.make (g + 1) 0 in
  let run = ref 0 in
  for z = 0 to g - 1 do
    offsets.(z) <- !run;
    pos.(z) <- !run;
    run := !run + counts.(z)
  done;
  offsets.(g) <- !run;
  let idx = Array.make n 0 in
  for i = 0 to n - 1 do
    let z = zone_of p i in
    idx.(pos.(z)) <- i;
    pos.(z) <- pos.(z) + 1
  done;
  let q4 = ref 0 in
  for _rep = 1 to p.agg_repeat do
    for z = 0 to g - 1 do
      let lo = offsets.(z) and hi = offsets.(z + 1) in
      let s = ref 0.0 in
      for j = lo to hi - 1 do
        s := !s +. fare_of idx.(j)
      done;
      let cnt = hi - lo in
      if cnt > 0 then begin
        let gmean = !s /. float_of_int cnt in
        q4 := (!q4 + int_of_float (gmean *. 8.0)) land checksum_mask
      end
    done
  done;
  let q7 = ref 0 in
  for _rep = 1 to p.agg_repeat do
    for z = 0 to g - 1 do
      let lo = offsets.(z) and hi = offsets.(z + 1) in
      let mx = ref 0.0 in
      for j = lo to hi - 1 do
        if dist_of idx.(j) > !mx then mx := dist_of idx.(j)
      done;
      q7 := (!q7 + int_of_float (!mx *. 2.0)) land checksum_mask
    done
  done;
  (q1 + !q2 + q3 + !q4 + !q5 + !q6 + !q7) land checksum_mask

let checksum p = reference p

(* AIFM port: the same queries, hand-written against the remote data
   structures. Loop-control compute is charged at one 4-wide-issue cycle
   per ~4 instructions, matching the interpreter's charging of the IR
   versions. *)
let loop_overhead = 3

let run_aifm ?(cost = Cost_model.default) ?(object_size = 4096) ~local_budget p
    =
  let n = p.rows and g = p.groups in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let ctx =
    Aifm.Remote.create_ctx cost clock store ~object_size ~local_budget
  in
  let module A = Aifm.Remote.Array in
  let zone = A.create ctx ~elem_size:4 ~len:n in
  let pc = A.create ctx ~elem_size:4 ~len:n in
  let dist = A.create ctx ~elem_size:8 ~len:n in
  let fare = A.create ctx ~elem_size:8 ~len:n in
  let idx = A.create ctx ~elem_size:4 ~len:n in
  let counts = A.create ctx ~elem_size:8 ~len:(g + 1) in
  let offsets = A.create ctx ~elem_size:8 ~len:(g + 1) in
  let pos = A.create ctx ~elem_size:8 ~len:(g + 1) in
  let hist = A.create ctx ~elem_size:8 ~len:8 in
  for i = 0 to n - 1 do
    A.set zone i (zone_of p i);
    A.set pc i (pc_of i);
    A.set_float dist i (dist_of i);
    A.set_float fare i (fare_of i)
  done;
  Clock.reset clock;
  (* Q1 *)
  let q1sum = ref 0.0 in
  A.iter_prefetched_float dist (fun _ d ->
      Clock.tick clock loop_overhead;
      q1sum := !q1sum +. d);
  let q1 = int_of_float (!q1sum /. float_of_int n *. 1000.0) in
  (* Q2 *)
  A.iter_prefetched pc (fun _ v ->
      Clock.tick clock loop_overhead;
      A.set hist v (A.get hist v + 1));
  let q2 = ref 0 in
  for c = 0 to 7 do
    q2 := !q2 + (A.get hist c * c)
  done;
  (* Q3 *)
  let q3max = ref neg_infinity in
  A.iter_prefetched_float fare (fun _ f ->
      Clock.tick clock loop_overhead;
      if f > !q3max then q3max := f);
  let q3 = int_of_float (!q3max *. 100.0) in
  (* Q5 *)
  let q5 = ref 0 in
  A.iter_prefetched_float dist (fun i d ->
      Clock.tick clock loop_overhead;
      if d > 300.0 then
        if A.get_float fare i > 500.0 then incr q5);
  (* Q6 *)
  let fhist = A.create ctx ~elem_size:8 ~len:64 in
  A.iter_prefetched_float fare (fun _ f ->
      Clock.tick clock loop_overhead;
      let bucket = int_of_float (f /. 10.0) in
      let bucket = if bucket < 63 then bucket else 63 in
      A.set fhist bucket (A.get fhist bucket + 1));
  let threshold = n * 95 / 100 in
  let q6 = ref 0 in
  let seen6 = ref 0 in
  for bucket = 0 to 63 do
    Clock.tick clock loop_overhead;
    seen6 := !seen6 + A.get fhist bucket;
    if !seen6 >= threshold && !q6 = 0 then q6 := bucket + 1
  done;
  (* Q4 *)
  A.iter_prefetched zone (fun _ z ->
      Clock.tick clock loop_overhead;
      A.set counts z (A.get counts z + 1));
  let run = ref 0 in
  for z = 0 to g - 1 do
    Clock.tick clock loop_overhead;
    A.set offsets z !run;
    A.set pos z !run;
    run := !run + A.get counts z
  done;
  A.set offsets g !run;
  A.iter_prefetched zone (fun i z ->
      Clock.tick clock loop_overhead;
      let slot = A.get pos z in
      A.set idx slot i;
      A.set pos z (slot + 1));
  (* The frame is time-sorted and grouped by minute, so a group's rows
     are a contiguous slice: the AIFM port aggregates them through the
     remote array's ranged iterator (per-object dereference) rather than
     a smart-pointer get per row. *)
  let q4 = ref 0 in
  for _rep = 1 to p.agg_repeat do
    for z = 0 to g - 1 do
      Clock.tick clock loop_overhead;
      let lo = A.get offsets z and hi = A.get offsets (z + 1) in
      let cnt = hi - lo in
      if cnt > 0 then begin
        let lo_row = A.get idx lo in
        let s =
          A.fold_range_float fare ~lo:lo_row ~hi:(lo_row + cnt) ~init:0.0
            (fun acc f ->
              Clock.tick clock loop_overhead;
              acc +. f)
        in
        let gmean = s /. float_of_int cnt in
        q4 := (!q4 + int_of_float (gmean *. 8.0)) land checksum_mask
      end
    done
  done;
  let q7 = ref 0 in
  for _rep = 1 to p.agg_repeat do
    for z = 0 to g - 1 do
      Clock.tick clock loop_overhead;
      let lo = A.get offsets z and hi = A.get offsets (z + 1) in
      let cnt = hi - lo in
      let mx =
        if cnt > 0 then begin
          let lo_row = A.get idx lo in
          A.fold_range_float dist ~lo:lo_row ~hi:(lo_row + cnt) ~init:0.0
            (fun acc d ->
              Clock.tick clock loop_overhead;
              if d > acc then d else acc)
        end
        else 0.0
      in
      q7 := (!q7 + int_of_float (mx *. 2.0)) land checksum_mask
    done
  done;
  let ck = (q1 + !q2 + q3 + !q4 + !q5 + !q6 + !q7) land checksum_mask in
  (ck, clock)
