type params = {
  keys : int;
  value_size : int;
  gets : int;
  skew : float;
  seed : int;
  service_cycles : int;
}

let default_params ~keys ~gets ~skew =
  { keys; value_size = 64; gets; skew; seed = 1234; service_cycles = 30_000 }

let checksum_mask = 0x3FFFFFFF

let round_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let slots p = round_pow2 (2 * p.keys)
let hash_mult = 0x2545F4914F6CDD1D land max_int

(* Word [w] of key [k]'s value; pure function so the reference needs no
   table. *)
let value_word k w = ((k * 131) + (w * 17)) land 0xFFFF

let trace_blob p =
  let rng = Tfm_util.Rng.create p.seed in
  let z = Tfm_util.Zipf.create ~n:p.keys ~skew:p.skew in
  let bytes = Bytes.create (p.gets * 4) in
  for j = 0 to p.gets - 1 do
    Bytes.set_int32_le bytes (j * 4) (Int32.of_int (Tfm_util.Zipf.sample z rng))
  done;
  bytes

let working_set_bytes p =
  (slots p * 16) + (p.keys * p.value_size) + (p.gets * 4)

let op_classes = [ (0, "get") ]

(* Table layout: 16 bytes per slot: key+1 (8B) then value pointer (8B). *)
let build p () =
  assert (p.value_size mod 8 = 0 && p.value_size > 0);
  let nslots = slots p in
  let mask = nslots - 1 in
  let words = p.value_size / 8 in
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let table = Builder.call b "calloc" [ Ir.Const nslots; Ir.Const 16 ] in
  let trace = Builder.call b "malloc" [ Ir.Const (p.gets * 4) ] in
  ignore (Builder.call b "!load_blob" [ trace; Ir.Const 0 ]);
  (* Set phase: allocate each value from the slab (size-class) allocator
     and insert into the table. *)
  Builder.for_loop b ~hint:"set" ~init:(Ir.Const 0) ~bound:(Ir.Const p.keys)
    (fun b key ->
      let vblock = Builder.call b "malloc" [ Ir.Const p.value_size ] in
      Builder.for_loop b ~hint:"fillv" ~init:(Ir.Const 0)
        ~bound:(Ir.Const words) (fun b w ->
          let v =
            Builder.binop b Ir.And
              (Builder.add b
                 (Builder.mul b key (Ir.Const 131))
                 (Builder.mul b w (Ir.Const 17)))
              (Ir.Const 0xFFFF)
          in
          let ptr = Builder.gep b vblock ~index:w ~scale:8 () in
          Builder.store b v ~ptr);
      let h =
        Builder.binop b Ir.And
          (Builder.mul b key (Ir.Const hash_mult))
          (Ir.Const mask)
      in
      let final =
        Builder.while_loop_acc b ~hint:"probe_set" ~accs:[ h ]
          ~cond:(fun b ~accs ->
            let slot = match accs with [ s ] -> s | _ -> assert false in
            let kptr = Builder.gep b table ~index:slot ~scale:16 () in
            let stored = Builder.load b kptr in
            Builder.icmp b Ir.Ne stored (Ir.Const 0))
          (fun b ~accs ->
            let slot = match accs with [ s ] -> s | _ -> assert false in
            [ Builder.binop b Ir.And
                (Builder.add b slot (Ir.Const 1))
                (Ir.Const mask) ])
      in
      let slot = match final with [ s ] -> s | _ -> assert false in
      let kptr = Builder.gep b table ~index:slot ~scale:16 () in
      Builder.store b (Builder.add b key (Ir.Const 1)) ~ptr:kptr;
      let pptr = Builder.gep b table ~index:slot ~scale:16 ~offset:8 () in
      Builder.store b vblock ~ptr:pptr);
  ignore (Builder.call b "!bench_begin" []);
  (* Get phase. *)
  let accs =
    Builder.for_loop_acc b ~hint:"gets" ~init:(Ir.Const 0)
      ~bound:(Ir.Const p.gets) ~accs:[ Ir.Const 0 ]
      (fun b ~iv:j ~accs ->
        let acc = match accs with [ a ] -> a | _ -> assert false in
        ignore (Builder.call b "!op_begin" [ Ir.Const 0 ]);
        ignore (Builder.call b "!cpu_work" [ Ir.Const p.service_cycles ]);
        let tptr = Builder.gep b trace ~index:j ~scale:4 () in
        let key = Builder.load b ~size:4 tptr in
        let probe = Builder.add b key (Ir.Const 1) in
        let h =
          Builder.binop b Ir.And
            (Builder.mul b key (Ir.Const hash_mult))
            (Ir.Const mask)
        in
        let final =
          Builder.while_loop_acc b ~hint:"probe_get" ~accs:[ h ]
            ~cond:(fun b ~accs ->
              let slot = match accs with [ s ] -> s | _ -> assert false in
              let kptr = Builder.gep b table ~index:slot ~scale:16 () in
              let stored = Builder.load b kptr in
              Builder.icmp b Ir.Ne stored probe)
            (fun b ~accs ->
              let slot = match accs with [ s ] -> s | _ -> assert false in
              [ Builder.binop b Ir.And
                  (Builder.add b slot (Ir.Const 1))
                  (Ir.Const mask) ])
        in
        let slot = match final with [ s ] -> s | _ -> assert false in
        let pptr = Builder.gep b table ~index:slot ~scale:16 ~offset:8 () in
        let vblock = Builder.load b pptr in
        (* Read the whole value, as a memcached get materializes the item. *)
        let vaccs =
          Builder.for_loop_acc b ~hint:"readv" ~init:(Ir.Const 0)
            ~bound:(Ir.Const words) ~accs:[ acc ]
            (fun b ~iv:w ~accs ->
              let acc = match accs with [ a ] -> a | _ -> assert false in
              let ptr = Builder.gep b vblock ~index:w ~scale:8 () in
              let v = Builder.load b ptr in
              [ Builder.binop b Ir.And (Builder.add b acc v)
                  (Ir.Const checksum_mask) ])
        in
        ignore (Builder.call b "!op_end" []);
        [ (match vaccs with [ a ] -> a | _ -> assert false) ])
  in
  let ck = match accs with [ a ] -> a | _ -> assert false in
  Builder.ret b (Some ck);
  Verifier.check_module m;
  m

let checksum p =
  let blob = trace_blob p in
  let words = p.value_size / 8 in
  let acc = ref 0 in
  for j = 0 to p.gets - 1 do
    let key = Int32.to_int (Bytes.get_int32_le blob (j * 4)) in
    for w = 0 to words - 1 do
      acc := (!acc + value_word key w) land checksum_mask
    done
  done;
  !acc
