(* Linked-list pointer chase: nodes threaded through one arena in a
   Lehmer-permuted order, so successive list nodes share no spatial
   locality and every hop is a dependent load. Formerly inlined in the
   bench harness's Section 5 limitation experiment; promoted to a
   bundled workload because it is the canonical pointer-chasing shape
   the hybrid data plane routes to the page-fault path. *)

let node_bytes = 16
let mult = 48271 (* Lehmer multiplier; a permutation when coprime *)
let value_mask = 0xFF
let acc_mask = 0x3FFFFFFF

let working_set_bytes ~nodes = nodes * node_bytes

let build ~nodes () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  (* One arena, nodes threaded in a shuffled order so successive nodes
     share no spatial locality: node k at slot perm(k) = k * mult mod
     nodes. *)
  let arena = Builder.call b "malloc" [ Ir.Const (nodes * node_bytes) ] in
  Builder.for_loop b ~hint:"link" ~init:(Ir.Const 0)
    ~bound:(Ir.Const (nodes - 1)) (fun b k ->
      let slot =
        Builder.binop b Ir.Srem
          (Builder.mul b k (Ir.Const mult))
          (Ir.Const nodes)
      in
      let next_slot =
        Builder.binop b Ir.Srem
          (Builder.mul b (Builder.add b k (Ir.Const 1)) (Ir.Const mult))
          (Ir.Const nodes)
      in
      let nptr = Builder.gep b arena ~index:slot ~scale:node_bytes () in
      let next_addr =
        Builder.gep b arena ~index:next_slot ~scale:node_bytes ()
      in
      Builder.store b
        (Builder.binop b Ir.And k (Ir.Const value_mask))
        ~ptr:(Builder.gep b arena ~index:slot ~scale:node_bytes ~offset:8 ());
      Builder.store b next_addr ~ptr:nptr);
  (* terminate the list *)
  let last_slot = (nodes - 1) * mult mod nodes in
  Builder.store b (Ir.Const 0)
    ~ptr:(Builder.gep b arena ~index:(Ir.Const last_slot) ~scale:node_bytes ());
  Builder.store b (Ir.Const 255)
    ~ptr:
      (Builder.gep b arena ~index:(Ir.Const last_slot) ~scale:node_bytes
         ~offset:8 ());
  ignore (Builder.call b "!bench_begin" []);
  let head = Builder.gep b arena ~index:(Ir.Const 0) ~scale:node_bytes () in
  let final =
    Builder.while_loop_acc b
      ~accs:[ head; Ir.Const 0 ]
      ~cond:(fun b ~accs ->
        let cur = List.hd accs in
        Builder.icmp b Ir.Ne cur (Ir.Const 0))
      (fun b ~accs ->
        let cur, acc =
          match accs with [ c; a ] -> (c, a) | _ -> assert false
        in
        let v =
          Builder.load b
            (Builder.gep b cur ~index:(Ir.Const 0) ~scale:1 ~offset:8 ())
        in
        let next = Builder.load b cur in
        [
          next;
          Builder.binop b Ir.And (Builder.add b acc v) (Ir.Const acc_mask);
        ])
  in
  Builder.ret b (Some (List.nth final 1));
  Verifier.check_module m;
  m

(* Host-side oracle of the traversal: node k holds k land 0xFF, except
   the terminator node (k = nodes-1) whose value is overwritten to 255;
   the program visits nodes 0..nodes-1 in list order. *)
let checksum ~nodes =
  let acc = ref 0 in
  for k = 0 to nodes - 1 do
    let v = if k = nodes - 1 then 255 else k land value_mask in
    acc := (!acc + v) land acc_mask
  done;
  !acc
