(** Memcached-style in-memory key-value store (Section 4.5, Figure 16).

    Models memcached 1.2.7 as the paper exercises it: a hash table over
    slab-allocated value blocks (the region allocator's size classes
    reproduce the slab batching the paper observed limiting TrackFM's
    I/O-amplification win), USR-like small values, and a Zipf-skewed get
    trace whose skew parameter is the Figure 16 x-axis. Each get probes
    the table, chases the value pointer and reads the whole value —
    pointer-chasing with almost no spatial locality and high sensitivity
    to the architected page size under Fastswap. *)

type params = {
  keys : int;
  value_size : int; (** bytes; multiple of 8 (USR-like default 64) *)
  gets : int;
  skew : float;
  seed : int;
  service_cycles : int;
      (** per-request CPU cost (parsing, protocol, dispatch) that touches
          no remotable memory; dominates absolute throughput exactly as
          the request-processing path does in real memcached, so the
          memory system moves throughput by the 20-80%% margins of
          Figure 16 rather than by orders of magnitude *)
}

val default_params : keys:int -> gets:int -> skew:float -> params

val trace_blob : params -> Bytes.t
(** 4 bytes per get: the key. Register as blob 0. *)

val build : params -> unit -> Ir.modul

val working_set_bytes : params -> int

val op_classes : (int * string) list
(** Span operation classes: class 0 = one get request. *)

val checksum : params -> int
