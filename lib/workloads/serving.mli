(** Overload-robust multi-tenant serving: the memcached tier behind an
    open-loop traffic generator and a robustness control plane.

    The closed-loop bench experiments ask "how fast does one request
    stream run"; this module asks the capacity-planning question: {e what
    happens when offered load exceeds what the backend can serve?} An
    open-loop generator (Poisson arrivals, Zipf key popularity per
    tenant) feeds an accept queue drained by a pool of Shenango
    connection-handler tasks; requests hit a per-tenant LRU cache of
    locally resident objects (pages, for the Fastswap backend) sized by
    that tenant's local-memory budget, and misses go to far memory over
    the real {!Memsim.Net} transport — retry ladder, circuit breaker,
    replica failover and all. Every cost is on the simulated clock, so
    the whole run is deterministic under a fixed seed.

    The control plane, each part independently switchable:

    - {b admission control}: a bounded accept queue with deterministic
      deadline-based rejection — an arrival is rejected at the door when
      the queue is full or when its predicted wait (queue depth plus the
      scheduler's runnable backlog, times an EWMA of observed service
      time) already exceeds the deadline;
    - {b load shedding}: arrivals that would need the remote while the
      circuit breaker is open are shed at the door (resident keys keep
      flowing); dequeued requests older than the deadline are dropped
      rather than served uselessly late; under queue pressure each
      tenant is throttled to its weighted share of the queue;
    - {b graceful degradation}: serve-stale-on-unreachable (a previously
      registered object is answered from its last locally known value at
      local cost instead of stalling on the dead fabric), and readahead
      shedding on the Fastswap backend while the breaker is open or the
      queue is backed up.

    Attribution: spans (one per admitted request, class = tenant) open
    at admission, travel through the accept queue and the scheduler via
    the span save/restore tokens, and decompose into the PR 6 categories
    — queue wait is [Queueing], miss handling is [Guard_slow], fault
    recovery is [Retry]/[Failover] — so shed/queued/degraded cycles show
    up in [report critical-path]. Shed/reject events feed
    {!Telemetry.Sink.shed_event}, whose first firing dumps the flight
    recorder. *)

type backend = Trackfm | Fastswap | Aifm

val backend_name : backend -> string
val backend_of_string : string -> backend option

type tenant = {
  tn_name : string;
  weight : int;  (** share of offered traffic, relative to other tenants *)
  keys : int;  (** key-space size *)
  skew : float;  (** Zipf skew of key popularity *)
  budget : int;  (** local-memory budget, bytes *)
}

val default_tenants : n:int -> keys:int -> budget:int -> tenant list
(** [n] equal-weight tenants ["t0".."t<n-1>"], skew 0.99. *)

type controls = {
  admission : bool;
  shedding : bool;
  degradation : bool;
  queue_cap : int;  (** accept-queue bound (admission) *)
  deadline : int;  (** per-request latency deadline, cycles *)
}

val default_controls : controls
(** Everything on; queue_cap 256, deadline 500k cycles. *)

val open_loop : controls
(** Everything off (the hockey-stick baseline); queue_cap/deadline kept
    for goodput accounting only. *)

type params = {
  backend : backend;
  tenants : tenant list;
  rate : float;  (** offered load, requests per Mcycle (all tenants) *)
  requests : int;  (** arrivals to generate *)
  service_cycles : int;  (** request CPU cost (parse, hash, respond) *)
  value_size : int;  (** bytes per value; must divide the page size *)
  connections : int;  (** Shenango connection-handler tasks *)
  readahead : int;  (** Fastswap readahead pages per fault *)
  seed : int;
  controls : controls;
  faults : Faults.config;
  fault_seed : int;
  replicas : int;
  ack : int;
}

val default_params : params
(** Trackfm backend, 2 tenants x 64k keys, 30 req/Mcyc, 20k requests,
    service 10k cycles, 64 connections, no faults, replicas 1. *)

type tenant_stats = {
  tenant : tenant;
  offered : int;
  admitted : int;
  completed : int;  (** responses sent (includes degraded) *)
  degraded : int;  (** stale responses among [completed] *)
  rejected : int;  (** admission: queue full or deadline-infeasible *)
  shed : int;  (** shed at the door (breaker) or on dequeue (expired) *)
  throttled : int;  (** shed by per-tenant share enforcement *)
  hits : int;
  misses : int;  (** capacity misses served from far memory *)
  cold : int;  (** first-touch origin writes (registration) *)
  evictions : int;
  good : int;  (** completions within the deadline *)
  latency : Telemetry.Histogram.t;
      (** end-to-end (arrival to response) latency of completions *)
  checksum : int;  (** running checksum over served values *)
}

type result = {
  rp : params;
  duration : int;  (** scheduler completion time, cycles *)
  stats : tenant_stats list;
  fleet : Telemetry.Histogram.t;
      (** {!Telemetry.Histogram.merge} of the per-tenant latencies *)
  goodput : float;  (** deadline-met completions per Mcycle *)
  max_queue : int;  (** high-water mark of the accept queue *)
  clock : Clock.t;
  sink : Telemetry.Sink.t;  (** read spans/attribution back from here *)
}

val run :
  ?spans:bool ->
  ?flight:(string * (string * Telemetry.Json.t) list) ->
  params ->
  result
(** Execute one serving run. [spans] (default false) turns on the causal
    span tracker (one span per admitted request, class = tenant index)
    on scheduler time; [flight] arms the flight recorder at [path, meta]
    (implies spans). Deterministic: same [params] in, byte-identical
    {!result_json} out. *)

val result_json : result -> Telemetry.Json.t
(** Deterministic machine-readable summary (params echo, per-tenant
    counts/percentiles/checksums, fleet view, goodput, net counters) —
    what [serve --serving-json] writes and the CI serving stage diffs. *)
