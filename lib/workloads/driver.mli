(** One-call execution of a workload under each of the paper's systems.

    A workload is a thunk producing a fresh IR module (the TrackFM
    pipeline transforms modules in place, so every run needs its own
    copy). The driver assembles the backend, optionally runs the TrackFM
    compiler (with an optional profiling pre-run on the local backend to
    feed the chunking gate), executes, and returns the clock so callers
    can read any counter an experiment plots. *)

type outcome = {
  ret : int;
  cycles : int;
  instrs : int;
  clock : Clock.t;
}

val counter : outcome -> string -> int

type tfm_opts = {
  object_size : int;
  local_budget : int;
  chunk_mode : Trackfm.Chunk_pass.mode;
  prefetch : bool;
  use_state_table : bool;
  profile_gate : bool;
      (** run the workload once uninstrumented on the local backend to
          collect block frequencies for the cost-model gate *)
  elide_guards : bool;
      (** run redundant-guard elimination and hoisting
          ({!Trackfm.Elide_pass}); the coverage checker runs either
          way *)
  use_summaries : bool;
      (** compute interprocedural summaries and hand them to the guard
          injector and elision pass ({!Trackfm.Pipeline.config}) *)
  use_shapes : bool;
      (** compute the interprocedural shape analysis before routing, so
          helper-hidden pointer chases classify and route statically
          ({!Trackfm.Pipeline.config}) *)
  route : Trackfm.Route_pass.mode;
      (** hybrid data plane: route pointer-chasing sites to the
          page-fault path ({!Trackfm.Route_pass}); [`Off] by default *)
  route_hotspots : (string * int) list;
      (** profile evidence for [`Profiled] routing: (function, instr id)
          sites the hotspot table shows slow-path dominated *)
  size_classes : (int * int * float) list;
      (** multi-object-size extension: forwarded to
          {!Trackfm.Runtime.create}; empty (default) = single class of
          [object_size] objects *)
  faults : Faults.t;
      (** fabric fault injector forwarded to every size class's
          transport; {!Faults.disabled} (the default) keeps the exact
          pre-fault code path *)
  replicas : int;
      (** remote-memory cluster size; [1] (the default) with no
          crash/corrupt faults keeps the single-server model bit for
          bit *)
  ack : int;  (** writeback ack count, [1 <= ack <= replicas] *)
}

val tfm_defaults : local_budget:int -> tfm_opts
(** 4 KiB objects, gated chunking with profile, prefetch and state table
    on. *)

val no_telemetry : Clock.t -> Telemetry.Sink.t
(** The default [telemetry] factory: always {!Telemetry.Sink.nop}. The
    runners create their own clock, so observability is requested as a
    factory — it is applied to the run's fresh clock and the resulting
    sink is threaded through backend, runtime and pools. Stash the sink
    from inside the factory to read the recordings afterwards. *)

val run_local :
  ?engine:Engine.t ->
  ?cost:Cost_model.t ->
  ?blobs:(int * Bytes.t) list ->
  ?telemetry:(Clock.t -> Telemetry.Sink.t) ->
  (unit -> Ir.modul) ->
  outcome

val run_trackfm :
  ?engine:Engine.t ->
  ?cost:Cost_model.t ->
  ?blobs:(int * Bytes.t) list ->
  ?telemetry:(Clock.t -> Telemetry.Sink.t) ->
  ?shadow:Shadow.t ->
  (unit -> Ir.modul) ->
  tfm_opts ->
  outcome * Trackfm.Pipeline.report
(** [shadow] threads the dynamic depth recorder through the measured
    run (interpreter engine only) — the shape analysis's audit. *)

val run_fastswap :
  ?engine:Engine.t ->
  ?cost:Cost_model.t ->
  ?readahead:int ->
  ?faults:Faults.t ->
  ?replicas:int ->
  ?ack:int ->
  ?blobs:(int * Bytes.t) list ->
  ?telemetry:(Clock.t -> Telemetry.Sink.t) ->
  local_budget:int ->
  (unit -> Ir.modul) ->
  outcome
(** [replicas]/[ack] (defaults 1/1) swap pages against a replicated
    remote tier when replication or crash/corrupt faults are configured
    (see {!Memsim.Cluster.create_opt}). *)

val profile_of :
  ?engine:Engine.t ->
  ?cost:Cost_model.t ->
  ?blobs:(int * Bytes.t) list ->
  (unit -> Ir.modul) ->
  Profile.t
(** Block-frequency profile from a local-backend run. *)

(** Workload input data ("datasets read from disk") is passed as [blobs]:
    the program copies blob [id] into simulated memory with the
    [!load_blob ptr id] intrinsic during its setup phase. *)

val autotune_object_size :
  ?cost:Cost_model.t ->
  ?blobs:(int * Bytes.t) list ->
  ?candidates:int list ->
  (unit -> Ir.modul) ->
  local_budget:int ->
  int * (int * int) list
(** The object-size autotuner the paper proposes in Section 3.2: since
    only the powers of two between the cache-line and the base page size
    are sensible, exhaustively recompile and short-run the workload at
    each candidate and keep the fastest. Returns the chosen size and the
    (size, cycles) measurements. Candidates default to 64..4096. *)
