type params = { n : int; dims : int; clusters : int; iters : int }

let default_params ~n = { n; dims = 4; clusters = 10; iters = 2 }

let checksum_mask = 0x3FFFFFFF

(* Synthetic coordinate for point [i], dimension [d]. *)
let coord i d = float_of_int (((i * 7) + (d * 13)) mod 100)

let working_set_bytes p =
  (* pts + dists dominate; cent/sums/counts are small. *)
  (p.dims * p.n * 8) + (p.clusters * p.n * 8) + (p.n * 8)
  + (2 * p.clusters * p.dims * 8)
  + (p.clusters * 8)

let op_classes = [ (0, "iteration") ]

let build p () =
  let { n; dims; clusters = k; iters } = p in
  let m = Ir.create_module () in
  (* Helper functions exercise the interprocedural summaries: [sq_diff]
     is pure (custody-preserving across the hot inner loop), and
     [alloc_f64] is a wrapper allocator whose return provenance is
     heap. *)
  let bh = Builder.create m ~name:"sq_diff" ~nparams:2 in
  let d = Builder.fbinop bh Ir.Fsub (Builder.arg 0) (Builder.arg 1) in
  Builder.ret bh (Some (Builder.fbinop bh Ir.Fmul d d));
  let ba = Builder.create m ~name:"alloc_f64" ~nparams:1 in
  let bytes = Builder.mul ba (Builder.arg 0) (Ir.Const 8) in
  Builder.ret ba (Some (Builder.call ba "malloc" [ bytes ]));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let f64 = 8 in
  let pts = Builder.call b "alloc_f64" [ Ir.Const (dims * n) ] in
  let cent = Builder.call b "alloc_f64" [ Ir.Const (k * dims) ] in
  let dists = Builder.call b "alloc_f64" [ Ir.Const (n * k) ] in
  let assign = Builder.call b "alloc_f64" [ Ir.Const n ] in
  let sums = Builder.call b "alloc_f64" [ Ir.Const (k * dims) ] in
  let counts = Builder.call b "alloc_f64" [ Ir.Const k ] in
  (* pts[d*n + i] = coord i d *)
  Builder.for_loop b ~hint:"initd" ~init:(Ir.Const 0) ~bound:(Ir.Const dims)
    (fun b d ->
      Builder.for_loop b ~hint:"initp" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
        (fun b i ->
          let raw =
            Builder.binop b Ir.Srem
              (Builder.add b
                 (Builder.mul b i (Ir.Const 7))
                 (Builder.mul b d (Ir.Const 13)))
              (Ir.Const 100)
          in
          let v = Builder.si_to_fp b raw in
          let idx = Builder.add b (Builder.mul b d (Ir.Const n)) i in
          let ptr = Builder.gep b pts ~index:idx ~scale:f64 () in
          Builder.store b ~is_float:true v ~ptr));
  (* centroid c = point c *)
  Builder.for_loop b ~hint:"initc" ~init:(Ir.Const 0) ~bound:(Ir.Const k)
    (fun b c ->
      Builder.for_loop b ~hint:"initcd" ~init:(Ir.Const 0)
        ~bound:(Ir.Const dims) (fun b d ->
          let src_idx = Builder.add b (Builder.mul b d (Ir.Const n)) c in
          let src = Builder.gep b pts ~index:src_idx ~scale:f64 () in
          let v = Builder.load b ~is_float:true src in
          let dst_idx = Builder.add b (Builder.mul b c (Ir.Const dims)) d in
          let dst = Builder.gep b cent ~index:dst_idx ~scale:f64 () in
          Builder.store b ~is_float:true v ~ptr:dst));
  ignore (Builder.call b "!bench_begin" []);
  Builder.for_loop b ~hint:"lloyd" ~init:(Ir.Const 0) ~bound:(Ir.Const iters)
    (fun b _it ->
      ignore (Builder.call b "!op_begin" [ Ir.Const 0 ]);
      (* Phase Z: clear the distance matrix (long unit-stride scan). *)
      Builder.for_loop b ~hint:"zero" ~init:(Ir.Const 0)
        ~bound:(Ir.Const (n * k)) (fun b i ->
          let ptr = Builder.gep b dists ~index:i ~scale:f64 () in
          Builder.store b ~is_float:true (Ir.Constf 0.0) ~ptr);
      (* Phase A: dists[i*k + c] += (pts[d*n+i] - cent[c*dims+d])^2,
         dimension-major: the i-loops are long and strided. *)
      Builder.for_loop b ~hint:"distc" ~init:(Ir.Const 0) ~bound:(Ir.Const k)
        (fun b c ->
          Builder.for_loop b ~hint:"distd" ~init:(Ir.Const 0)
            ~bound:(Ir.Const dims) (fun b d ->
              let cidx = Builder.add b (Builder.mul b c (Ir.Const dims)) d in
              let cptr = Builder.gep b cent ~index:cidx ~scale:f64 () in
              let cv = Builder.load b ~is_float:true cptr in
              let dbase = Builder.mul b d (Ir.Const n) in
              Builder.for_loop b ~hint:"disti" ~init:(Ir.Const 0)
                ~bound:(Ir.Const n) (fun b i ->
                  let pidx = Builder.add b dbase i in
                  let pptr = Builder.gep b pts ~index:pidx ~scale:f64 () in
                  let pv = Builder.load b ~is_float:true pptr in
                  let didx = Builder.add b (Builder.mul b i (Ir.Const k)) c in
                  let dptr = Builder.gep b dists ~index:didx ~scale:f64 () in
                  let old = Builder.load b ~is_float:true dptr in
                  (* The helper call sits between the dists load and the
                     store-back, so the read-modify-write elision on dptr
                     only holds if custody survives the call — exactly
                     what the interprocedural summary proves. Float op
                     order (fsub, fmul, fadd) matches the old inline
                     form, so checksums are unchanged. *)
                  let sq = Builder.call b "sq_diff" [ pv; cv ] in
                  let nu = Builder.fbinop b Ir.Fadd old sq in
                  Builder.store b ~is_float:true nu ~ptr:dptr)));
      (* Phase B: per-point argmin over the k candidates — a short inner
         loop (trip = k) that chunking cannot amortize. *)
      Builder.for_loop b ~hint:"argmin" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
        (fun b i ->
          let ibase = Builder.mul b i (Ir.Const k) in
          let accs =
            Builder.for_loop_acc b ~hint:"argc" ~init:(Ir.Const 0)
              ~bound:(Ir.Const k)
              ~accs:[ Ir.Constf infinity; Ir.Const 0 ]
              (fun b ~iv:c ~accs ->
                let best, besti =
                  match accs with
                  | [ x; y ] -> (x, y)
                  | _ -> assert false
                in
                let didx = Builder.add b ibase c in
                let dptr = Builder.gep b dists ~index:didx ~scale:f64 () in
                let dv = Builder.load b ~is_float:true dptr in
                let better = Builder.fcmp b Ir.Lt dv best in
                [
                  Builder.select b better dv best;
                  Builder.select b better c besti;
                ])
          in
          let besti = match accs with [ _; y ] -> y | _ -> assert false in
          let aptr = Builder.gep b assign ~index:i ~scale:8 () in
          Builder.store b besti ~ptr:aptr);
      (* Phase C: accumulate new centroids. *)
      Builder.for_loop b ~hint:"clrs" ~init:(Ir.Const 0)
        ~bound:(Ir.Const (k * dims)) (fun b i ->
          let ptr = Builder.gep b sums ~index:i ~scale:f64 () in
          Builder.store b ~is_float:true (Ir.Constf 0.0) ~ptr);
      Builder.for_loop b ~hint:"clrc" ~init:(Ir.Const 0) ~bound:(Ir.Const k)
        (fun b c ->
          let ptr = Builder.gep b counts ~index:c ~scale:8 () in
          Builder.store b (Ir.Const 0) ~ptr);
      Builder.for_loop b ~hint:"acc" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
        (fun b i ->
          let aptr = Builder.gep b assign ~index:i ~scale:8 () in
          let a = Builder.load b aptr in
          let cptr = Builder.gep b counts ~index:a ~scale:8 () in
          let cnt = Builder.load b cptr in
          Builder.store b (Builder.add b cnt (Ir.Const 1)) ~ptr:cptr;
          Builder.for_loop b ~hint:"accd" ~init:(Ir.Const 0)
            ~bound:(Ir.Const dims) (fun b d ->
              let pidx = Builder.add b (Builder.mul b d (Ir.Const n)) i in
              let pptr = Builder.gep b pts ~index:pidx ~scale:f64 () in
              let pv = Builder.load b ~is_float:true pptr in
              let sidx = Builder.add b (Builder.mul b a (Ir.Const dims)) d in
              let sptr = Builder.gep b sums ~index:sidx ~scale:f64 () in
              let sv = Builder.load b ~is_float:true sptr in
              Builder.store b ~is_float:true
                (Builder.fbinop b Ir.Fadd sv pv)
                ~ptr:sptr));
      (* Phase D: normalize. *)
      Builder.for_loop b ~hint:"norm" ~init:(Ir.Const 0) ~bound:(Ir.Const k)
        (fun b c ->
          let cptr = Builder.gep b counts ~index:c ~scale:8 () in
          let cnt = Builder.load b cptr in
          let nonzero = Builder.icmp b Ir.Gt cnt (Ir.Const 0) in
          Builder.if_then b ~cond:nonzero (fun b ->
              let cntf = Builder.si_to_fp b cnt in
              Builder.for_loop b ~hint:"normd" ~init:(Ir.Const 0)
                ~bound:(Ir.Const dims) (fun b d ->
                  let idx = Builder.add b (Builder.mul b c (Ir.Const dims)) d in
                  let sptr = Builder.gep b sums ~index:idx ~scale:f64 () in
                  let sv = Builder.load b ~is_float:true sptr in
                  let dptr = Builder.gep b cent ~index:idx ~scale:f64 () in
                  Builder.store b ~is_float:true
                    (Builder.fbinop b Ir.Fdiv sv cntf)
                    ~ptr:dptr)));
      ignore (Builder.call b "!op_end" []));
  (* Checksum: assignments plus quantized centroids. *)
  let accs =
    Builder.for_loop_acc b ~hint:"ck" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:i ~accs ->
        let acc = match accs with [ a ] -> a | _ -> assert false in
        let aptr = Builder.gep b assign ~index:i ~scale:8 () in
        let a = Builder.load b aptr in
        [
          Builder.binop b Ir.And
            (Builder.add b (Builder.mul b acc (Ir.Const 31)) a)
            (Ir.Const checksum_mask);
        ])
  in
  let ck0 = match accs with [ a ] -> a | _ -> assert false in
  let accs =
    Builder.for_loop_acc b ~hint:"ck2" ~init:(Ir.Const 0)
      ~bound:(Ir.Const (k * dims)) ~accs:[ ck0 ]
      (fun b ~iv:i ~accs ->
        let acc = match accs with [ a ] -> a | _ -> assert false in
        let cptr = Builder.gep b cent ~index:i ~scale:f64 () in
        let cv = Builder.load b ~is_float:true cptr in
        let q = Builder.fp_to_si b (Builder.fbinop b Ir.Fmul cv (Ir.Constf 16.0)) in
        [
          Builder.binop b Ir.And (Builder.add b acc q) (Ir.Const checksum_mask);
        ])
  in
  let ck = match accs with [ a ] -> a | _ -> assert false in
  Builder.ret b (Some ck);
  Verifier.check_module m;
  m

(* Reference implementation mirroring the IR's float operation order
   exactly, so results match bit-for-bit. *)
let checksum p =
  let { n; dims; clusters = k; iters } = p in
  let pts = Array.init (dims * n) (fun di -> coord (di mod n) (di / n)) in
  let cent =
    Array.init (k * dims) (fun cd -> pts.(((cd mod dims) * n) + (cd / dims)))
  in
  let dists = Array.make (n * k) 0.0 in
  let assign = Array.make n 0 in
  let sums = Array.make (k * dims) 0.0 in
  let counts = Array.make k 0 in
  for _it = 0 to iters - 1 do
    Array.fill dists 0 (n * k) 0.0;
    for c = 0 to k - 1 do
      for d = 0 to dims - 1 do
        let cv = cent.((c * dims) + d) in
        for i = 0 to n - 1 do
          let diff = pts.((d * n) + i) -. cv in
          dists.((i * k) + c) <- dists.((i * k) + c) +. (diff *. diff)
        done
      done
    done;
    for i = 0 to n - 1 do
      let best = ref infinity and besti = ref 0 in
      for c = 0 to k - 1 do
        let dv = dists.((i * k) + c) in
        if dv < !best then begin
          best := dv;
          besti := c
        end
      done;
      assign.(i) <- !besti
    done;
    Array.fill sums 0 (k * dims) 0.0;
    Array.fill counts 0 k 0;
    for i = 0 to n - 1 do
      let a = assign.(i) in
      counts.(a) <- counts.(a) + 1;
      for d = 0 to dims - 1 do
        sums.((a * dims) + d) <- sums.((a * dims) + d) +. pts.((d * n) + i)
      done
    done;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then
        for d = 0 to dims - 1 do
          cent.((c * dims) + d) <-
            sums.((c * dims) + d) /. float_of_int counts.(c)
        done
    done
  done;
  let ck = ref 0 in
  for i = 0 to n - 1 do
    ck := ((!ck * 31) + assign.(i)) land checksum_mask
  done;
  for i = 0 to (k * dims) - 1 do
    ck := (!ck + int_of_float (cent.(i) *. 16.0)) land checksum_mask
  done;
  !ck
