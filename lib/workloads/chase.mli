(** Linked-list pointer chase (the Section 5 limitation workload).

    A list of 16-byte nodes threaded through one arena in a
    Lehmer-permuted order: successive nodes share no spatial locality,
    there is no induction variable and no learnable stride, so TrackFM
    can neither chunk nor prefetch — each hop is a dependent load that
    costs a guard on top of whatever the memory system charges. This is
    the canonical pointer-chasing shape the hybrid data plane's route
    pass ({!Trackfm.Route_pass}) moves to the page-fault path. *)

val node_bytes : int

val build : nodes:int -> unit -> Ir.modul
(** The traversal sums node values masked to 30 bits; the setup loop
    links node [k] at slot [k * 48271 mod nodes]. *)

val working_set_bytes : nodes:int -> int

val checksum : nodes:int -> int
(** Expected program result, computed host-side. *)
