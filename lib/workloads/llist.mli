(** Helper-hidden pointer chase (the shape-analysis workload).

    The same Lehmer-permuted linked list as {!Chase} plus a
    pointer-threaded complete binary tree — but every dependent load is
    hidden inside a one-load helper ([node_next], [node_value],
    [tree_left], [tree_right], [tree_value]) and the tree walk is a
    recursive [subtree_sum]. Intraprocedurally each helper merely loads
    through its argument, so the access-pattern classifier sees no
    chain; only the interprocedural shape analysis
    ({!Tfm_analysis.Shape}) can prove these sites are pointer chases
    and let the route pass move them to the page-fault path. *)

val node_bytes : int
(** List node size (next at offset 0, value at offset 8). *)

val tnode_bytes : int
(** Tree node size (left at 0, right at 8, value at 16). *)

val build : nodes:int -> tnodes:int -> unit -> Ir.modul
(** [nodes >= 2] list nodes and [tnodes >= 1] tree nodes. The program
    returns the masked sum of both traversals. *)

val working_set_bytes : nodes:int -> tnodes:int -> int

val checksum : nodes:int -> tnodes:int -> int
(** Expected program result, computed host-side. *)
