(* Helper-hidden recursive-structure traversal: the same Lehmer-permuted
   linked list as {!Chase} plus a pointer-threaded binary tree, but every
   dependent load sits inside a tiny helper function (node_next,
   node_value, tree_left, ...) and the tree walk is a recursive
   subtree_sum. Intraprocedurally each helper just loads through an
   argument — no chain is visible — so this workload only classifies
   (and statically routes) as a pointer chase when the interprocedural
   shape analysis propagates depth through the calls. *)

let node_bytes = 16 (* list node: next @ 0, value @ 8 *)
let tnode_bytes = 24 (* tree node: left @ 0, right @ 8, value @ 16 *)
let mult = 48271 (* Lehmer multiplier; a permutation when coprime *)
let value_mask = 0xFF
let acc_mask = 0x3FFFFFFF

let working_set_bytes ~nodes ~tnodes =
  (nodes * node_bytes) + (tnodes * tnode_bytes)

(* One-load accessors: the only memory operations of the traversal
   phase live here, hidden from the call sites in [main]. *)
let field_helper m name offset =
  let b = Builder.create m ~name ~nparams:1 in
  Builder.ret b
    (Some
       (Builder.load b
          (Builder.gep b (Builder.arg 0) ~index:(Ir.Const 0) ~scale:1 ~offset
             ())));
  ()

let build ~nodes ~tnodes () =
  if nodes < 2 then invalid_arg "Llist.build: nodes must be >= 2";
  if tnodes < 1 then invalid_arg "Llist.build: tnodes must be >= 1";
  if tnodes mod mult = 0 then invalid_arg "Llist.build: tnodes not coprime";
  let m = Ir.create_module () in
  field_helper m "node_next" 0;
  field_helper m "node_value" 8;
  field_helper m "tree_left" 0;
  field_helper m "tree_right" 8;
  field_helper m "tree_value" 16;
  (* Recursive tree sum: value + subtree_sum(left) + subtree_sum(right),
     all through the one-load helpers. Explicit blocks because the base
     case returns a value. *)
  (let b = Builder.create m ~name:"subtree_sum" ~nparams:1 in
   let t = Builder.arg 0 in
   let base = Builder.add_block b "base" in
   let walk = Builder.add_block b "walk" in
   Builder.cbr b (Builder.icmp b Ir.Eq t (Ir.Const 0)) base walk;
   Builder.set_block b base;
   Builder.ret b (Some (Ir.Const 0));
   Builder.set_block b walk;
   let v = Builder.call b "tree_value" [ t ] in
   let l = Builder.call b "subtree_sum" [ Builder.call b "tree_left" [ t ] ] in
   let r =
     Builder.call b "subtree_sum" [ Builder.call b "tree_right" [ t ] ]
   in
   Builder.ret b (Some (Builder.add b v (Builder.add b l r))));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  (* List arena, threaded exactly like {!Chase}: node k at slot
     k * mult mod nodes. *)
  let arena = Builder.call b "malloc" [ Ir.Const (nodes * node_bytes) ] in
  Builder.for_loop b ~hint:"link" ~init:(Ir.Const 0)
    ~bound:(Ir.Const (nodes - 1)) (fun b k ->
      let slot =
        Builder.binop b Ir.Srem
          (Builder.mul b k (Ir.Const mult))
          (Ir.Const nodes)
      in
      let next_slot =
        Builder.binop b Ir.Srem
          (Builder.mul b (Builder.add b k (Ir.Const 1)) (Ir.Const mult))
          (Ir.Const nodes)
      in
      let nptr = Builder.gep b arena ~index:slot ~scale:node_bytes () in
      let next_addr =
        Builder.gep b arena ~index:next_slot ~scale:node_bytes ()
      in
      Builder.store b
        (Builder.binop b Ir.And k (Ir.Const value_mask))
        ~ptr:(Builder.gep b arena ~index:slot ~scale:node_bytes ~offset:8 ());
      Builder.store b next_addr ~ptr:nptr);
  let last_slot = (nodes - 1) * mult mod nodes in
  Builder.store b (Ir.Const 0)
    ~ptr:(Builder.gep b arena ~index:(Ir.Const last_slot) ~scale:node_bytes ());
  Builder.store b (Ir.Const 255)
    ~ptr:
      (Builder.gep b arena ~index:(Ir.Const last_slot) ~scale:node_bytes
         ~offset:8 ());
  (* Tree arena: a complete binary tree over tnodes nodes, node i at
     slot i * mult mod tnodes so parent and children share no spatial
     locality. Children 2i+1 / 2i+2; out-of-range child pointers are
     null via a branch-free select. *)
  let tarena = Builder.call b "malloc" [ Ir.Const (tnodes * tnode_bytes) ] in
  Builder.for_loop b ~hint:"tlink" ~init:(Ir.Const 0)
    ~bound:(Ir.Const tnodes) (fun b i ->
      let slot =
        Builder.binop b Ir.Srem
          (Builder.mul b i (Ir.Const mult))
          (Ir.Const tnodes)
      in
      let child off idx =
        let cslot =
          Builder.binop b Ir.Srem
            (Builder.mul b idx (Ir.Const mult))
            (Ir.Const tnodes)
        in
        let caddr = Builder.gep b tarena ~index:cslot ~scale:tnode_bytes () in
        let inb = Builder.icmp b Ir.Lt idx (Ir.Const tnodes) in
        Builder.store b
          (Builder.select b inb caddr (Ir.Const 0))
          ~ptr:
            (Builder.gep b tarena ~index:slot ~scale:tnode_bytes ~offset:off ())
      in
      child 0 (Builder.add b (Builder.mul b i (Ir.Const 2)) (Ir.Const 1));
      child 8 (Builder.add b (Builder.mul b i (Ir.Const 2)) (Ir.Const 2));
      Builder.store b
        (Builder.binop b Ir.And i (Ir.Const value_mask))
        ~ptr:
          (Builder.gep b tarena ~index:slot ~scale:tnode_bytes ~offset:16 ()));
  ignore (Builder.call b "!bench_begin" []);
  (* List traversal: every load goes through node_next / node_value. *)
  let head = Builder.gep b arena ~index:(Ir.Const 0) ~scale:node_bytes () in
  let final =
    Builder.while_loop_acc b
      ~accs:[ head; Ir.Const 0 ]
      ~cond:(fun b ~accs ->
        let cur = List.hd accs in
        Builder.icmp b Ir.Ne cur (Ir.Const 0))
      (fun b ~accs ->
        let cur, acc =
          match accs with [ c; a ] -> (c, a) | _ -> assert false
        in
        let v = Builder.call b "node_value" [ cur ] in
        let next = Builder.call b "node_next" [ cur ] in
        [
          next;
          Builder.binop b Ir.And (Builder.add b acc v) (Ir.Const acc_mask);
        ])
  in
  (* Tree traversal: root is node 0, at slot 0 * mult mod tnodes = 0. *)
  let troot = Builder.gep b tarena ~index:(Ir.Const 0) ~scale:tnode_bytes () in
  let tsum = Builder.call b "subtree_sum" [ troot ] in
  Builder.ret b
    (Some
       (Builder.binop b Ir.And
          (Builder.add b (List.nth final 1) tsum)
          (Ir.Const acc_mask)));
  Verifier.check_module m;
  m

(* Host-side oracle. List: node k holds k land 0xFF except the
   terminator (k = nodes-1) overwritten to 255, accumulated with the
   per-step mask the program applies. Tree: sum of i land 0xFF over all
   nodes (addition is order-independent and far from overflow). *)
let checksum ~nodes ~tnodes =
  let acc = ref 0 in
  for k = 0 to nodes - 1 do
    let v = if k = nodes - 1 then 255 else k land value_mask in
    acc := (!acc + v) land acc_mask
  done;
  let tsum = ref 0 in
  for i = 0 to tnodes - 1 do
    tsum := !tsum + (i land value_mask)
  done;
  (!acc + !tsum) land acc_mask
