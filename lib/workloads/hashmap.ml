type params = { keys : int; lookups : int; skew : float; seed : int }

let default_params ~keys ~lookups = { keys; lookups; skew = 1.02; seed = 42 }

let checksum_mask = 0x3FFFFFFF

let round_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let slots p = round_pow2 (2 * p.keys)

(* Multiplicative (Fibonacci) hashing; both the IR program and the
   reference use exactly this, so probe sequences are identical. The
   multiplier is reduced mod 2^62 to stay within OCaml's int while giving
   identical wrapped products in IR and host code. *)
let hash_mult = 0x2545F4914F6CDD1D land max_int

let value_of_key key = (key * 31) land 0xFFFF

let trace_blob p =
  let rng = Tfm_util.Rng.create p.seed in
  let z = Tfm_util.Zipf.create ~n:p.keys ~skew:p.skew in
  let bytes = Bytes.create (p.lookups * 4) in
  for j = 0 to p.lookups - 1 do
    let key = Tfm_util.Zipf.sample z rng in
    Bytes.set_int32_le bytes (j * 4) (Int32.of_int key)
  done;
  bytes

let working_set_bytes p = (slots p * 8) + (p.lookups * 4)
let op_classes = [ (0, "lookup") ]

(* Table layout: 8 bytes per slot: key+1 in the low 4 bytes (0 = empty),
   value in the high 4 bytes. *)
let build p () =
  let nslots = slots p in
  let mask = nslots - 1 in
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let table = Builder.call b "malloc" [ Ir.Const (nslots * 8) ] in
  let trace = Builder.call b "malloc" [ Ir.Const (p.lookups * 4) ] in
  ignore (Builder.call b "!load_blob" [ trace; Ir.Const 0 ]);
  (* Populate: insert keys 0..keys-1 with linear probing. *)
  Builder.for_loop b ~hint:"fill" ~init:(Ir.Const 0) ~bound:(Ir.Const p.keys)
    (fun b key ->
      let h =
        Builder.binop b Ir.And
          (Builder.mul b key (Ir.Const hash_mult))
          (Ir.Const mask)
      in
      (* Probe for the first empty slot. *)
      let final =
        Builder.while_loop_acc b ~hint:"probe_ins" ~accs:[ h ]
          ~cond:(fun b ~accs ->
            let slot = match accs with [ s ] -> s | _ -> assert false in
            let kptr = Builder.gep b table ~index:slot ~scale:8 () in
            let stored = Builder.load b ~size:4 kptr in
            Builder.icmp b Ir.Ne stored (Ir.Const 0))
          (fun b ~accs ->
            let slot = match accs with [ s ] -> s | _ -> assert false in
            [ Builder.binop b Ir.And
                (Builder.add b slot (Ir.Const 1))
                (Ir.Const mask) ])
      in
      let slot = match final with [ s ] -> s | _ -> assert false in
      let kptr = Builder.gep b table ~index:slot ~scale:8 () in
      Builder.store b ~size:4 (Builder.add b key (Ir.Const 1)) ~ptr:kptr;
      let vptr = Builder.gep b table ~index:slot ~scale:8 ~offset:4 () in
      let v =
        Builder.binop b Ir.And
          (Builder.mul b key (Ir.Const 31))
          (Ir.Const 0xFFFF)
      in
      Builder.store b ~size:4 v ~ptr:vptr);
  ignore (Builder.call b "!bench_begin" []);
  (* Lookup phase: the measured workload. *)
  let accs =
    Builder.for_loop_acc b ~hint:"get" ~init:(Ir.Const 0)
      ~bound:(Ir.Const p.lookups) ~accs:[ Ir.Const 0 ]
      (fun b ~iv:j ~accs ->
        let acc = match accs with [ a ] -> a | _ -> assert false in
        ignore (Builder.call b "!op_begin" [ Ir.Const 0 ]);
        let tptr = Builder.gep b trace ~index:j ~scale:4 () in
        let key = Builder.load b ~size:4 tptr in
        let probe = Builder.add b key (Ir.Const 1) in
        let h =
          Builder.binop b Ir.And
            (Builder.mul b key (Ir.Const hash_mult))
            (Ir.Const mask)
        in
        (* Probe until the key matches (all trace keys are present). *)
        let final =
          Builder.while_loop_acc b ~hint:"probe_get" ~accs:[ h ]
            ~cond:(fun b ~accs ->
              let slot = match accs with [ s ] -> s | _ -> assert false in
              let kptr = Builder.gep b table ~index:slot ~scale:8 () in
              let stored = Builder.load b ~size:4 kptr in
              Builder.icmp b Ir.Ne stored probe)
            (fun b ~accs ->
              let slot = match accs with [ s ] -> s | _ -> assert false in
              [ Builder.binop b Ir.And
                  (Builder.add b slot (Ir.Const 1))
                  (Ir.Const mask) ])
        in
        let slot = match final with [ s ] -> s | _ -> assert false in
        let vptr = Builder.gep b table ~index:slot ~scale:8 ~offset:4 () in
        let v = Builder.load b ~size:4 vptr in
        ignore (Builder.call b "!op_end" []);
        [ Builder.binop b Ir.And (Builder.add b acc v) (Ir.Const checksum_mask) ])
  in
  let ck = match accs with [ a ] -> a | _ -> assert false in
  Builder.ret b (Some ck);
  Verifier.check_module m;
  m

let checksum p =
  (* The values are a pure function of the key, so the reference needs no
     table at all — just the trace. *)
  let blob = trace_blob p in
  let acc = ref 0 in
  for j = 0 to p.lookups - 1 do
    let key = Int32.to_int (Bytes.get_int32_le blob (j * 4)) in
    acc := (!acc + value_of_key key) land checksum_mask
  done;
  !acc
