type outcome = { ret : int; cycles : int; instrs : int; clock : Clock.t }

let counter o name = Clock.get o.clock name

type tfm_opts = {
  object_size : int;
  local_budget : int;
  chunk_mode : Trackfm.Chunk_pass.mode;
  prefetch : bool;
  use_state_table : bool;
  profile_gate : bool;
  elide_guards : bool;
  use_summaries : bool;
  use_shapes : bool;
  route : Trackfm.Route_pass.mode;
  route_hotspots : (string * int) list;
  size_classes : (int * int * float) list;
  faults : Faults.t;
  replicas : int;
  ack : int;
}

let tfm_defaults ~local_budget =
  {
    object_size = 4096;
    local_budget;
    chunk_mode = `Gated;
    prefetch = true;
    use_state_table = true;
    profile_gate = true;
    elide_guards = true;
    use_summaries = true;
    use_shapes = true;
    route = `Off;
    route_hotspots = [];
    size_classes = [];
    faults = Faults.disabled;
    replicas = 1;
    ack = 1;
  }

(* A cluster exists only when replication or crash/corrupt faults are in
   play ({!Memsim.Cluster.create_opt}); otherwise the backends take the
   single-server paths bit for bit. Seeded off the fault injector so one
   [--fault-seed] reproduces the whole failure schedule. *)
let make_cluster ~clock ~store ~replicas ~ack ~faults =
  Cluster.create_opt
    ~seed:(max 1 (Faults.seed faults))
    ~clock ~store ~replicas ~ack ~faults:(Faults.config faults) ()

(* Wrap a backend so the [!load_blob ptr id] intrinsic copies registered
   input data into simulated memory (the moral equivalent of reading a
   dataset from disk during setup; no cycles are charged). *)
let with_blobs blobs (backend : Backend.t) =
  match blobs with
  | [] -> backend
  | _ ->
      let table = Hashtbl.create 4 in
      List.iter (fun (id, bytes) -> Hashtbl.replace table id bytes) blobs;
      {
        backend with
        Backend.intrinsic =
          (fun name args ->
            match name with
            | "!load_blob" -> begin
                let dst = args.(0) and id = args.(1) in
                match Hashtbl.find_opt table id with
                | Some bytes ->
                    for k = 0 to Bytes.length bytes - 1 do
                      Memstore.store backend.Backend.store ~addr:(dst + k)
                        ~size:1
                        (Char.code (Bytes.get bytes k))
                    done;
                    Some 0
                | None ->
                    failwith (Printf.sprintf "unknown blob %d" id)
              end
            | _ -> backend.Backend.intrinsic name args);
      }

let finish (clock : Clock.t) (r : Interp.result) =
  { ret = r.Interp.ret; cycles = r.Interp.cycles; instrs = r.Interp.instrs_executed; clock }

(* The driver creates the clock, so telemetry is requested as a factory:
   the caller gets a sink bound to the run's clock and keeps a reference
   for reporting. *)
let no_telemetry : Clock.t -> Telemetry.Sink.t = fun _ -> Telemetry.Sink.nop

let run_local ?(engine = Engine.Interp) ?(cost = Cost_model.default)
    ?(blobs = []) ?(telemetry = no_telemetry) build =
  let clock = Clock.create () in
  let store = Memstore.create () in
  let backend =
    with_blobs blobs (Backend.local ~telemetry:(telemetry clock) cost clock store)
  in
  finish clock (Engine.run ~engine backend (build ()) ~entry:"main")

let profile_of ?(engine = Engine.Interp) ?(cost = Cost_model.default)
    ?(blobs = []) build =
  let profile = Profile.create () in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let backend = with_blobs blobs (Backend.local cost clock store) in
  ignore (Engine.run ~engine ~profile backend (build ()) ~entry:"main");
  profile

let run_trackfm ?(engine = Engine.Interp) ?(cost = Cost_model.default)
    ?(blobs = []) ?(telemetry = no_telemetry) ?shadow build opts =
  let profile =
    if opts.profile_gate then Some (profile_of ~engine ~cost ~blobs build)
    else None
  in
  let m = build () in
  let config =
    {
      Trackfm.Pipeline.object_size = opts.object_size;
      chunk_mode = opts.chunk_mode;
      profile;
      cost;
      elide = opts.elide_guards;
      summaries = opts.use_summaries;
      shapes = opts.use_shapes;
      route = opts.route;
      route_hotspots = opts.route_hotspots;
      check = true;
      dump_after = None;
    }
  in
  let report = Trackfm.Pipeline.run config m in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let sink = telemetry clock in
  let cluster =
    make_cluster ~clock ~store ~replicas:opts.replicas ~ack:opts.ack
      ~faults:opts.faults
  in
  Option.iter (Telemetry.Sink.attach_cluster sink) cluster;
  let rt =
    Trackfm.Runtime.create ~use_state_table:opts.use_state_table
      ~prefetch:opts.prefetch
      ?size_classes:
        (match opts.size_classes with [] -> None | l -> Some l)
      ~telemetry:sink ~faults:opts.faults ?cluster cost clock store
      ~object_size:opts.object_size ~local_budget:opts.local_budget
  in
  let backend = with_blobs blobs (Backend.trackfm rt store) in
  (finish clock (Engine.run ~engine ?shadow backend m ~entry:"main"), report)

let run_fastswap ?(engine = Engine.Interp) ?(cost = Cost_model.default)
    ?readahead ?(faults = Faults.disabled) ?(replicas = 1) ?(ack = 1)
    ?(blobs = []) ?(telemetry = no_telemetry) ~local_budget build =
  let clock = Clock.create () in
  let store = Memstore.create () in
  let sink = telemetry clock in
  let cluster = make_cluster ~clock ~store ~replicas ~ack ~faults in
  Option.iter (Telemetry.Sink.attach_cluster sink) cluster;
  let backend =
    with_blobs blobs
      (Backend.fastswap ?readahead ~faults ?cluster ~telemetry:sink cost clock
         store ~local_budget)
  in
  finish clock (Engine.run ~engine backend (build ()) ~entry:"main")

let autotune_object_size ?(cost = Cost_model.default) ?(blobs = [])
    ?(candidates = [ 64; 128; 256; 512; 1024; 2048; 4096 ]) build ~local_budget
    =
  let measure object_size =
    let opts =
      {
        object_size;
        local_budget;
        chunk_mode = `Gated;
        prefetch = true;
        use_state_table = true;
        profile_gate = false;
        elide_guards = true;
        use_summaries = true;
        use_shapes = true;
        route = `Off;
        route_hotspots = [];
        size_classes = [];
        faults = Faults.disabled;
        replicas = 1;
        ack = 1;
      }
    in
    (fst (run_trackfm ~cost ~blobs build opts)).cycles
  in
  let results = List.map (fun osz -> (osz, measure osz)) candidates in
  let best =
    List.fold_left
      (fun (bo, bc) (o, c) -> if c < bc then (o, c) else (bo, bc))
      (match results with
      | r :: _ -> r
      | [] -> invalid_arg "autotune_object_size: no candidates")
      results
  in
  (fst best, results)
