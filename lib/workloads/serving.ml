(* Overload-robust multi-tenant serving: an open-loop Poisson/Zipf
   traffic generator in front of the memcached tier, with admission
   control, load shedding and graceful degradation. See serving.mli for
   the model; the short version:

   - one dispatcher task generates arrivals on an absolute timeline
     (open loop: the backlog never slows the client down) and runs the
     admission/shedding decision at the door;
   - admitted requests queue; parked connection-handler tasks are
     unparked one per admit and drain the queue;
   - a request is CPU work plus a per-tenant LRU lookup; misses go to
     far memory through the real {!Net} transport, so the retry ladder,
     circuit breaker and replica failover all happen under load.

   Time bridge: the Shenango core clock is the master timeline, and the
   memsim clock doubles as the wire/fabric timeline. Before a transport
   op the wire clock is raced forward to core time (idle wire catches
   up); the op ticks the wire clock by its full cost; afterwards the
   task blocks until the wire clock — so concurrent fetches serialize on
   the fabric (one NIC) and every retry/backoff/outage cycle lands in
   scheduler time. Backoff and breaker waits additionally release the
   core mid-op through the stall handler, which keeps the Retry span
   frames honest. *)

module Sched = Shenango.Sched
module Rng = Tfm_util.Rng
module Zipf = Tfm_util.Zipf
module H = Telemetry.Histogram
module Sink = Telemetry.Sink
module Span = Telemetry.Span
module Json = Telemetry.Json

type backend = Trackfm | Fastswap | Aifm

let backend_name = function
  | Trackfm -> "trackfm"
  | Fastswap -> "fastswap"
  | Aifm -> "aifm"

let backend_of_string = function
  | "trackfm" -> Some Trackfm
  | "fastswap" -> Some Fastswap
  | "aifm" -> Some Aifm
  | _ -> None

type tenant = {
  tn_name : string;
  weight : int;
  keys : int;
  skew : float;
  budget : int;
}

let default_tenants ~n ~keys ~budget =
  List.init n (fun i ->
      { tn_name = Printf.sprintf "t%d" i; weight = 1; keys; skew = 0.99;
        budget })

type controls = {
  admission : bool;
  shedding : bool;
  degradation : bool;
  queue_cap : int;
  deadline : int;
}

let default_controls =
  {
    admission = true;
    shedding = true;
    degradation = true;
    queue_cap = 256;
    deadline = 500_000;
  }

let open_loop = { default_controls with admission = false; shedding = false;
                  degradation = false }

type params = {
  backend : backend;
  tenants : tenant list;
  rate : float;
  requests : int;
  service_cycles : int;
  value_size : int;
  connections : int;
  readahead : int;
  seed : int;
  controls : controls;
  faults : Faults.config;
  fault_seed : int;
  replicas : int;
  ack : int;
}

let default_params =
  {
    backend = Trackfm;
    tenants = default_tenants ~n:2 ~keys:65_536 ~budget:(1 lsl 21);
    rate = 30.0;
    requests = 20_000;
    service_cycles = 10_000;
    value_size = 64;
    connections = 64;
    readahead = 2;
    seed = 42;
    controls = default_controls;
    faults = Faults.off;
    fault_seed = 1;
    replicas = 1;
    ack = 1;
  }

type tenant_stats = {
  tenant : tenant;
  offered : int;
  admitted : int;
  completed : int;
  degraded : int;
  rejected : int;
  shed : int;
  throttled : int;
  hits : int;
  misses : int;
  cold : int;
  evictions : int;
  good : int;
  latency : H.t;
  checksum : int;
}

(* Deterministic LRU: hash table into an intrusive doubly-linked list,
   so eviction order never depends on hash iteration. *)
module Lru = struct
  type node = {
    nk : int;
    mutable prev : node option;
    mutable next : node option;
  }

  type t = {
    tbl : (int, node) Hashtbl.t;
    mutable mru : node option;
    mutable lru : node option;
  }

  let create () = { tbl = Hashtbl.create 1024; mru = None; lru = None }
  let size t = Hashtbl.length t.tbl
  let mem t k = Hashtbl.mem t.tbl k

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.mru;
    n.prev <- None;
    (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
    t.mru <- Some n

  let touch t k =
    match Hashtbl.find_opt t.tbl k with
    | None -> ()
    | Some n ->
        unlink t n;
        push_front t n

  let add t k =
    if not (Hashtbl.mem t.tbl k) then begin
      let n = { nk = k; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n
    end

  let pop_lru t =
    match t.lru with
    | None -> None
    | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl n.nk;
        Some n.nk
end

(* Per-tenant run state. *)
type tstate = {
  tn : tenant;
  idx : int;
  base : int;  (* main-store base address of this tenant's key space *)
  zipf : Zipf.t;
  lru : Lru.t;
  cap : int;  (* resident grains the budget allows *)
  registered : (int, unit) Hashtbl.t;  (* grain -> written back once *)
  mutable queued : int;  (* requests of this tenant in the accept queue *)
  mutable s_offered : int;
  mutable s_admitted : int;
  mutable s_completed : int;
  mutable s_degraded : int;
  mutable s_rejected : int;
  mutable s_shed : int;
  mutable s_throttled : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_cold : int;
  mutable s_evict : int;
  mutable s_good : int;
  s_lat : H.t;
  mutable s_ck : int;
}

type request = {
  rq : tstate;
  key : int;
  arrived : int;  (* client send time (absolute arrival timeline) *)
  enq : int;  (* when the dispatcher actually queued it *)
  tok : int option;  (* saved span context *)
}

type st = {
  p : params;
  cm : Cost_model.t;
  clock : Clock.t;
  sched : Sched.t;
  net : Net.t;
  sink : Sink.t;
  sp : Span.t option;
  store : Memstore.t;
  q : request Queue.t;
  ts : tstate array;
  total_weight : int;
  arng : Rng.t;  (* arrival gaps *)
  trng : Rng.t;  (* tenant pick *)
  krng : Rng.t;  (* key pick *)
  mutable done_ : bool;
  mutable ewma : int;  (* EWMA of per-request core cycles *)
  mutable maxq : int;
}

let ck_mask = 0x3FFFFFFF

(* Same value function as the memcached workload, so values are real
   data: loss (zeroed bytes) and corruption repair are observable in the
   response checksum. *)
let value_word k w = ((k * 131) + (w * 17)) land 0xFFFF

(* Tenants get disjoint 4 GiB address windows in the shared main store;
   pages materialize lazily so only touched keys cost memory. *)
let tenant_stride = 1 lsl 32

let grain_size p =
  match p.backend with Fastswap -> Memstore.page_size | _ -> p.value_size

let grain_of st addr =
  match st.p.backend with
  | Fastswap -> addr land lnot Memstore.page_mask
  | Trackfm | Aifm -> addr

let addr_of ts p key = ts.base + (key * p.value_size)

(* The wire bridge (see the header comment). *)
let with_net st f =
  let t = Sched.now () in
  let c = Clock.cycles st.clock in
  if c < t then Clock.tick st.clock (t - c);
  f ();
  let lag = Clock.cycles st.clock - Sched.now () in
  if lag > 0 then Sched.block lag

let write_value st ts key =
  let words = st.p.value_size / 8 in
  let addr = addr_of ts st.p key in
  for w = 0 to words - 1 do
    Memstore.store st.store ~addr:(addr + (w * 8)) ~size:8 (value_word key w)
  done

(* First touch of a Fastswap page fills every value it holds, so a
   page-granular fetch later returns real neighbors. *)
let register_page st ts g =
  let vpp = Memstore.page_size / st.p.value_size in
  let first = (g - ts.base) / st.p.value_size in
  for k = first to min (first + vpp - 1) (ts.tn.keys - 1) do
    write_value st ts k
  done

let count st name = Clock.count st.clock name 1

(* Insert a grain into the tenant's resident set, evicting the LRU one
   when the budget is full. Resident objects are clean (read-mostly
   cache), so eviction is bookkeeping only. *)
let insert_resident st ts g wk =
  if Lru.mem ts.lru g then Lru.touch ts.lru g
  else begin
    if Lru.size ts.lru >= ts.cap then begin
      Sink.cat_enter st.sink Span.Evict_stall;
      (match Lru.pop_lru ts.lru with
      | Some _ ->
          ts.s_evict <- ts.s_evict + 1;
          count st "serving.evictions";
          wk
            (match st.p.backend with
            | Fastswap -> st.cm.Cost_model.evict_page
            | Trackfm | Aifm -> st.cm.Cost_model.evict_object)
      | None -> ());
      Sink.cat_exit st.sink
    end;
    Lru.add ts.lru g
  end

(* Serve one dequeued request; returns the core cycles it consumed (the
   admission controller's EWMA feed). *)
let serve st req =
  let ts = req.rq in
  let p = st.p in
  let cm = st.cm in
  let core = ref 0 in
  let wk c =
    core := !core + c;
    Sched.work c
  in
  let words = p.value_size / 8 in
  let addr = addr_of ts p req.key in
  let g = grain_of st addr in
  let gsz = grain_size p in
  (* Request CPU: parse, hash, build the response. *)
  wk p.service_cycles;
  if Lru.mem ts.lru g then begin
    Lru.touch ts.lru g;
    ts.s_hits <- ts.s_hits + 1;
    count st "serving.hits";
    match p.backend with
    | Trackfm -> wk cm.Cost_model.fast_guard_read
    | Aifm ->
        wk (cm.Cost_model.fast_guard_read + cm.Cost_model.metadata_indirection)
    | Fastswap -> ()
  end
  else begin
    Sink.cat_enter st.sink Span.Guard_slow;
    if not (Hashtbl.mem ts.registered g) then begin
      (* Cold: first touch creates the object locally (origin write) and
         replicates it to the remote tier. *)
      ts.s_cold <- ts.s_cold + 1;
      count st "serving.cold";
      (match p.backend with
      | Trackfm | Aifm ->
          wk cm.Cost_model.slow_guard_write_local;
          write_value st ts req.key
      | Fastswap ->
          wk cm.Cost_model.fastswap_fault_local;
          register_page st ts g);
      wk (words * cm.Cost_model.local_access);
      Hashtbl.replace ts.registered g ();
      with_net st (fun () -> Net.writeback_object st.net ~key:g ~bytes:gsz);
      insert_resident st ts g wk
    end
    else if p.controls.degradation && not (Net.remote_available st.net) then begin
      (* Serve-stale: the fabric is unreachable, answer from the last
         locally known bytes at local cost instead of stalling. *)
      ts.s_degraded <- ts.s_degraded + 1;
      count st "serving.stale";
      (match st.sp with
      | Some sp ->
          Span.note sp ~name:"serving.stale"
            ~detail:
              (Printf.sprintf "tenant=%s key=%d breaker_open" ts.tn.tn_name
                 req.key)
      | None -> ());
      wk cm.Cost_model.slow_guard_read_local
    end
    else begin
      (* Capacity miss: fetch from far memory. *)
      ts.s_misses <- ts.s_misses + 1;
      count st "serving.misses";
      (match p.backend with
      | Trackfm -> wk cm.Cost_model.slow_guard_read_local
      | Aifm ->
          wk
            (cm.Cost_model.slow_guard_read_local
            + cm.Cost_model.metadata_indirection)
      | Fastswap -> wk cm.Cost_model.fastswap_fault_base);
      with_net st (fun () -> Net.fetch_object st.net ~key:g ~bytes:gsz);
      insert_resident st ts g wk;
      if p.backend = Fastswap && p.readahead > 0 then begin
        (* Kernel readahead: pull the next pages at prefetched residual
           cost — unless degradation mode sheds it (breaker open or the
           accept queue is backed up: readahead spends budget and wire
           on speculation exactly when both are scarce). *)
        let backed_up = 2 * Queue.length st.q >= p.controls.queue_cap in
        if
          p.controls.degradation
          && ((not (Net.remote_available st.net)) || backed_up)
        then count st "serving.readahead_shed"
        else
          for i = 1 to p.readahead do
            let ra = g + (i * Memstore.page_size) in
            if Hashtbl.mem ts.registered ra && not (Lru.mem ts.lru ra) then begin
              with_net st (fun () ->
                  Net.fetch_object_prefetched st.net ~key:ra
                    ~bytes:Memstore.page_size);
              insert_resident st ts ra wk
            end
          done
      end
    end;
    Sink.cat_exit st.sink
  end;
  (* Materialize the response: read the value into the reply. *)
  wk (words * cm.Cost_model.local_access);
  let sum = ref ts.s_ck in
  for w = 0 to words - 1 do
    sum := (!sum + Memstore.load st.store ~addr:(addr + (w * 8)) ~size:8)
           land ck_mask
  done;
  ts.s_ck <- !sum;
  !core

(* ---- admission control and load shedding (the door) -------------------- *)

let admit_cycles = 200

let share st ts =
  max 1 (st.p.controls.queue_cap * ts.tn.weight / st.total_weight)

let pick_tenant st =
  let r = Rng.int st.trng st.total_weight in
  let n = Array.length st.ts in
  let rec go i acc =
    let ts = st.ts.(i) in
    let acc = acc + ts.tn.weight in
    if r < acc || i = n - 1 then ts else go (i + 1) acc
  in
  go 0 0

let admit st ~arrived =
  let p = st.p in
  let c = p.controls in
  (* The dispatch decision itself costs CPU: shedding is cheap, not
     free. *)
  Sched.work admit_cycles;
  let ts = pick_tenant st in
  ts.s_offered <- ts.s_offered + 1;
  count st "serving.offered";
  let key = Zipf.sample ts.zipf st.krng in
  let g = grain_of st (addr_of ts p key) in
  let qlen = Queue.length st.q in
  let detail reason =
    Printf.sprintf "tenant=%s key=%d qlen=%d %s" ts.tn.tn_name key qlen reason
  in
  if
    c.shedding
    && (not c.degradation)
    && (not (Net.remote_available st.net))
    && Hashtbl.mem ts.registered g
    && not (Lru.mem ts.lru g)
  then begin
    (* The breaker is open and this request would need the remote:
       shed it at the door. Residents keep flowing. With degradation
       enabled the request is admitted instead and served stale from
       the last locally known bytes (the better answer when one is
       available). *)
    ts.s_shed <- ts.s_shed + 1;
    count st "serving.shed";
    Sink.shed_event st.sink ~kind:"shed" ~detail:(detail "breaker_open")
  end
  else if c.shedding && 2 * qlen >= c.queue_cap && ts.queued >= share st ts
  then begin
    (* Queue pressure: hold each tenant to its weighted share. *)
    ts.s_throttled <- ts.s_throttled + 1;
    count st "serving.throttled";
    Sink.shed_event st.sink ~kind:"throttle" ~detail:(detail "over_share")
  end
  else if c.admission && qlen >= c.queue_cap then begin
    ts.s_rejected <- ts.s_rejected + 1;
    count st "serving.rejected";
    Sink.shed_event st.sink ~kind:"reject" ~detail:(detail "queue_full")
  end
  else if
    c.admission
    && ((qlen + Sched.runnable_count st.sched) * st.ewma)
       + max 0 (Clock.cycles st.clock - Sched.now ())
       > c.deadline
  then begin
    (* Deadline-infeasible: predicted wait is the CPU backlog (queue
       plus runnable tasks, times the observed per-request core cost)
       plus the wire backlog (how far the serialized fabric timeline
       runs ahead of core time) — whichever resource is the bottleneck,
       by the time this request reached the head of the line its
       deadline would already be gone. *)
    ts.s_rejected <- ts.s_rejected + 1;
    count st "serving.rejected";
    Sink.shed_event st.sink ~kind:"reject" ~detail:(detail "deadline")
  end
  else begin
    ts.s_admitted <- ts.s_admitted + 1;
    count st "serving.admitted";
    ts.queued <- ts.queued + 1;
    let tok =
      match st.sp with
      | Some sp ->
          Sink.op_begin st.sink ~cls:ts.idx;
          Some (Span.save sp)
      | None -> None
    in
    Queue.push { rq = ts; key; arrived; enq = Sched.now (); tok } st.q;
    let ql = Queue.length st.q in
    if ql > st.maxq then st.maxq <- ql;
    ignore (Sched.unpark st.sched 1)
  end

(* Open-loop generator: arrivals live on an absolute timeline — a
   saturated core delays their processing but never their generation,
   which is exactly what makes the no-controls latency curve diverge
   past the knee. *)
let dispatcher st () =
  let mean = 1_000_000.0 /. st.p.rate in
  let next = ref 0 in
  for _ = 1 to st.p.requests do
    let gap = max 1 (int_of_float (Rng.exponential st.arng ~mean)) in
    next := !next + gap;
    let now = Sched.now () in
    if !next > now then Sched.block (!next - now);
    admit st ~arrived:!next
  done;
  st.done_ <- true;
  ignore (Sched.unpark_all st.sched)

let rec worker st () =
  match Queue.take_opt st.q with
  | None -> if not st.done_ then begin Sched.park (); worker st () end
  | Some req ->
      let ts = req.rq in
      ts.queued <- ts.queued - 1;
      let now = Sched.now () in
      let c = st.p.controls in
      if c.shedding && now - req.arrived > c.deadline then begin
        (* Expired in the queue: serving it now is useless work that
           only delays everyone behind it. *)
        (match (st.sp, req.tok) with
        | Some sp, Some tok ->
            Span.restore sp tok ~queued:(now - req.enq);
            Sink.op_end st.sink
        | _ -> ());
        ts.s_shed <- ts.s_shed + 1;
        count st "serving.shed";
        Sink.shed_event st.sink ~kind:"shed"
          ~detail:
            (Printf.sprintf "tenant=%s key=%d waited=%d reason=expired"
               ts.tn.tn_name req.key (now - req.arrived));
        worker st ()
      end
      else begin
        (match (st.sp, req.tok) with
        | Some sp, Some tok -> Span.restore sp tok ~queued:(now - req.enq)
        | _ -> ());
        let core = serve st req in
        (match st.sp with Some _ -> Sink.op_end st.sink | None -> ());
        let lat = Sched.now () - req.arrived in
        H.record ts.s_lat lat;
        ts.s_completed <- ts.s_completed + 1;
        count st "serving.completed";
        if lat <= c.deadline then begin
          ts.s_good <- ts.s_good + 1;
          count st "serving.good"
        end;
        st.ewma <- ((7 * st.ewma) + core) / 8;
        worker st ()
      end

(* ---- results ------------------------------------------------------------ *)

type result = {
  rp : params;
  duration : int;
  stats : tenant_stats list;
  fleet : H.t;
  goodput : float;
  max_queue : int;
  clock : Clock.t;
  sink : Sink.t;
}

let run ?(spans = false) ?flight p =
  if p.value_size <= 0 || p.value_size mod 8 <> 0 then
    invalid_arg "Serving.run: value_size must be a positive multiple of 8";
  if Memstore.page_size mod p.value_size <> 0 then
    invalid_arg "Serving.run: value_size must divide the page size";
  if p.rate <= 0.0 then invalid_arg "Serving.run: rate must be positive";
  if p.requests < 1 then invalid_arg "Serving.run: requests < 1";
  if p.tenants = [] then invalid_arg "Serving.run: no tenants";
  if p.connections < 1 then invalid_arg "Serving.run: connections < 1";
  if p.replicas < 1 || p.ack < 1 || p.ack > p.replicas then
    invalid_arg "Serving.run: need 1 <= ack <= replicas";
  let spans = spans || flight <> None in
  let clock = Clock.create () in
  let sched = Sched.create () in
  let cm = Cost_model.default in
  let store = Memstore.create () in
  let faults = Faults.create ~seed:p.fault_seed p.faults in
  let cluster =
    Cluster.create_opt ~seed:p.fault_seed ~clock ~store ~replicas:p.replicas
      ~ack:p.ack ~faults:p.faults ()
  in
  let net =
    Net.create ~faults ?cluster cm clock
      (match p.backend with Fastswap -> Net.Rdma | Trackfm | Aifm -> Net.Tcp)
  in
  (* Backoff and outage waits release the core (block-with-yield). *)
  Net.set_stall_handler net (fun ~cycles -> ignore (Sched.try_block cycles));
  let op_classes = List.mapi (fun i t -> (i, t.tn_name)) p.tenants in
  let sink =
    if spans then
      Sink.recording ~trace:false ~series_interval:0 ~spans:true ~op_classes
        ~span_now:(fun () -> Sched.time sched)
        clock
    else Sink.nop
  in
  (match flight with
  | Some (path, meta) -> Sink.set_flight_recorder sink ~path ~meta
  | None -> ());
  Sink.attach_net sink net;
  (match cluster with Some cl -> Sink.attach_cluster sink cl | None -> ());
  let sp = Sink.spans sink in
  (match sp with
  | Some spn ->
      Sched.set_switch_hooks sched
        (Some
           {
             Sched.save = (fun () -> Span.save spn);
             restore = (fun ~token ~queued -> Span.restore spn token ~queued);
           })
  | None -> ());
  let gsz = grain_size p in
  let ts =
    Array.of_list
      (List.mapi
         (fun i tn ->
           if tn.keys <= 0 || tn.weight <= 0 || tn.budget <= 0 then
             invalid_arg "Serving.run: tenant needs keys/weight/budget > 0";
           {
             tn;
             idx = i;
             base = (i + 1) * tenant_stride;
             zipf = Zipf.create ~n:tn.keys ~skew:tn.skew;
             lru = Lru.create ();
             cap = max 1 (tn.budget / gsz);
             registered = Hashtbl.create 1024;
             queued = 0;
             s_offered = 0;
             s_admitted = 0;
             s_completed = 0;
             s_degraded = 0;
             s_rejected = 0;
             s_shed = 0;
             s_throttled = 0;
             s_hits = 0;
             s_misses = 0;
             s_cold = 0;
             s_evict = 0;
             s_good = 0;
             s_lat = H.create ();
             s_ck = 0;
           })
         p.tenants)
  in
  let st =
    {
      p;
      cm;
      clock;
      sched;
      net;
      sink;
      sp;
      store;
      q = Queue.create ();
      ts;
      total_weight =
        List.fold_left (fun a t -> a + t.weight) 0 p.tenants;
      arng = Rng.create p.seed;
      trng = Rng.create (p.seed + 7919);
      krng = Rng.create (p.seed + 104729);
      done_ = false;
      ewma = p.service_cycles;
      maxq = 0;
    }
  in
  Sched.spawn sched (dispatcher st);
  for _ = 1 to p.connections do
    Sched.spawn sched (fun () -> worker st ())
  done;
  let duration = Sched.run sched in
  Sink.final_sample sink;
  let stats =
    Array.to_list
      (Array.map
         (fun t ->
           {
             tenant = t.tn;
             offered = t.s_offered;
             admitted = t.s_admitted;
             completed = t.s_completed;
             degraded = t.s_degraded;
             rejected = t.s_rejected;
             shed = t.s_shed;
             throttled = t.s_throttled;
             hits = t.s_hits;
             misses = t.s_misses;
             cold = t.s_cold;
             evictions = t.s_evict;
             good = t.s_good;
             latency = t.s_lat;
             checksum = t.s_ck;
           })
         ts)
  in
  let fleet = H.merge (List.map (fun s -> s.latency) stats) in
  let good = List.fold_left (fun a s -> a + s.good) 0 stats in
  let goodput =
    if duration = 0 then 0.0
    else float_of_int good *. 1_000_000.0 /. float_of_int duration
  in
  { rp = p; duration; stats; fleet; goodput; max_queue = st.maxq; clock; sink }

let hist_json h =
  let pct p =
    match H.percentile_opt h p with Some v -> Json.Int v | None -> Json.Null
  in
  Json.Obj
    [
      ("count", Json.Int (H.count h));
      ("min", Json.Int (H.min_value h));
      ("p50", pct 50.0);
      ("p99", pct 99.0);
      ("p999", pct 99.9);
      ("max", Json.Int (H.max_value h));
    ]

let result_json r =
  let p = r.rp in
  let c = p.controls in
  Json.Obj
    [
      ("kind", Json.String "trackfm-serving");
      ("version", Json.Int 1);
      ("backend", Json.String (backend_name p.backend));
      ("rate_per_mcyc", Json.Float p.rate);
      ("requests", Json.Int p.requests);
      ("service_cycles", Json.Int p.service_cycles);
      ("value_size", Json.Int p.value_size);
      ("connections", Json.Int p.connections);
      ("readahead", Json.Int p.readahead);
      ("seed", Json.Int p.seed);
      ( "controls",
        Json.Obj
          [
            ("admission", Json.Bool c.admission);
            ("shedding", Json.Bool c.shedding);
            ("degradation", Json.Bool c.degradation);
            ("queue_cap", Json.Int c.queue_cap);
            ("deadline", Json.Int c.deadline);
          ] );
      ("faults", Json.String (Faults.to_string p.faults));
      ("fault_seed", Json.Int p.fault_seed);
      ("replicas", Json.Int p.replicas);
      ("ack", Json.Int p.ack);
      ("duration", Json.Int r.duration);
      (* Scaled to an integer so the golden diff never depends on float
         formatting. *)
      ( "goodput_milli_per_mcyc",
        Json.Int (int_of_float ((r.goodput *. 1000.0) +. 0.5)) );
      ("max_queue", Json.Int r.max_queue);
      ( "tenants",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.tenant.tn_name);
                   ("weight", Json.Int s.tenant.weight);
                   ("keys", Json.Int s.tenant.keys);
                   ("budget", Json.Int s.tenant.budget);
                   ("offered", Json.Int s.offered);
                   ("admitted", Json.Int s.admitted);
                   ("completed", Json.Int s.completed);
                   ("degraded", Json.Int s.degraded);
                   ("rejected", Json.Int s.rejected);
                   ("shed", Json.Int s.shed);
                   ("throttled", Json.Int s.throttled);
                   ("hits", Json.Int s.hits);
                   ("misses", Json.Int s.misses);
                   ("cold", Json.Int s.cold);
                   ("evictions", Json.Int s.evictions);
                   ("good", Json.Int s.good);
                   ("checksum", Json.Int s.checksum);
                   ("latency", hist_json s.latency);
                 ])
             r.stats) );
      ("fleet", hist_json r.fleet);
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Clock.counters r.clock))
      );
    ]
