(** Zipfian hashmap lookups (Sections 4.3 and 4.4, Figures 9 and 13).

    An open-addressing (linear probing) hash table with 4-byte keys and
    values, modelling the paper's C++ STL [unordered_map] microbenchmark:
    high temporal locality (a Zipf-skewed hot set), essentially no
    spatial locality (multiplicative hashing scatters adjacent keys), and
    very small access granularity — the workload where small TrackFM
    object sizes shine and page-granularity Fastswap suffers 43x I/O
    amplification.

    The Zipf-ordered access trace is generated host-side (see
    {!trace_blob}) and loaded into a heap array by the program, matching
    the paper's setup where the 190 MB trace array itself lives on the
    heap and contributes to memory pressure. *)

type params = {
  keys : int;      (** distinct keys (ranks 0..keys-1; rank 0 hottest) *)
  lookups : int;
  skew : float;    (** Zipf skew (paper: 1.02 for Fig 9/13) *)
  seed : int;
}

val default_params : keys:int -> lookups:int -> params
(** skew 1.02, fixed seed. *)

val trace_blob : params -> Bytes.t
(** 4 bytes per lookup: the key of each access, Zipf-sampled. Register as
    blob 0. *)

val build : params -> unit -> Ir.modul

val working_set_bytes : params -> int
(** Table plus trace array. *)

val op_classes : (int * string) list
(** Span operation classes the program marks with [!op_begin]/[!op_end]:
    class 0 = one lookup. *)

val checksum : params -> int
