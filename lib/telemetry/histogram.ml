(* HDR-style log-bucketed histogram over non-negative ints.

   Values 0..15 get exact buckets; each higher octave [2^m, 2^(m+1)) is
   split into 16 linear sub-buckets, bounding the relative quantile error
   at 1/16. The bucket array is fixed-size and [record] touches one slot,
   so recording never allocates — cheap enough to sit on the guard slow
   path of every run. *)

let sub_bits = 4
let linear_max = 1 lsl sub_bits (* 16 *)
let max_octave = 61
let nbuckets = linear_max + ((max_octave - sub_bits + 1) * linear_max)

type t = {
  counts : int array;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    counts = Array.make nbuckets 0;
    count = 0;
    total = 0;
    min_v = max_int;
    max_v = 0;
  }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.count <- 0;
  t.total <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let msb v =
  let r = ref 0 and x = ref v in
  while !x > 1 do
    incr r;
    x := !x lsr 1
  done;
  !r

let index v =
  if v < linear_max then v
  else
    let m = msb v in
    let sub = (v lsr (m - sub_bits)) land (linear_max - 1) in
    linear_max + ((m - sub_bits) * linear_max) + sub

(* Inclusive lower bound of bucket [i]. *)
let bucket_low i =
  if i < linear_max then i
  else
    let oct = ((i - linear_max) / linear_max) + sub_bits in
    let sub = (i - linear_max) mod linear_max in
    (1 lsl oct) + (sub lsl (oct - sub_bits))

let bucket_width i =
  if i < 2 * linear_max then 1
  else
    let oct = ((i - linear_max) / linear_max) + sub_bits in
    1 lsl (oct - sub_bits)

let record_n t v n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    t.counts.(index v) <- t.counts.(index v) + n;
    t.count <- t.count + n;
    t.total <- t.total + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v 1

let count t = t.count
let total t = t.total
let is_empty t = t.count = 0
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let quantile t q =
  if t.count = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Histogram.quantile: q outside [0, 1]";
  if q = 0.0 then t.min_v
  else if q = 1.0 then t.max_v
  else begin
    (* Nearest-rank over the bucket counts; report the bucket midpoint,
       clamped to the exact observed range. *)
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < nbuckets do
      seen := !seen + t.counts.(!i);
      if !seen < rank then incr i
    done;
    let mid = bucket_low !i + ((bucket_width !i - 1) / 2) in
    max t.min_v (min t.max_v mid)
  end

let percentile t p = quantile t (p /. 100.0)

let quantile_opt t q =
  if t.count = 0 || not (q >= 0.0 && q <= 1.0) then None
  else Some (quantile t q)

let percentile_opt t p = quantile_opt t (p /. 100.0)

let merge_into ~dst src =
  Array.iteri
    (fun i n -> if n > 0 then dst.counts.(i) <- dst.counts.(i) + n)
    src.counts;
  dst.count <- dst.count + src.count;
  dst.total <- dst.total + src.total;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let merge ts =
  let dst = create () in
  List.iter (fun src -> merge_into ~dst src) ts;
  dst

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      acc := (bucket_low i, bucket_low i + bucket_width i - 1, t.counts.(i))
             :: !acc
  done;
  !acc

let summary_string ?(unit_name = "") t =
  if t.count = 0 then "(empty)"
  else
    Printf.sprintf
      "n=%d mean=%.1f%s min=%d p50=%d p90=%d p99=%d max=%d%s" t.count
      (mean t) unit_name (min_value t) (percentile t 50.0)
      (percentile t 90.0) (percentile t 99.0) (max_value t) unit_name
