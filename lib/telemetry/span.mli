(** Causal request tracing: per-operation spans with exact cycle
    attribution.

    One span per workload operation; inside it, runtimes bracket their
    work in category frames. A frame's exclusive time (its window minus
    nested frames) is charged to its category; the remainder of the span
    is compute. The decomposition therefore sums to the span's
    wall-clock cycles by construction, and {!violations} counts every
    bookkeeping error that could break that invariant, so callers assert
    it rather than trust it.

    Time comes from an injected [now] function: the telemetry sink
    passes its reset-corrected clock timestamp; scheduler tests pass
    virtual core time. *)

type category =
  | Compute      (** cycles no instrumented subsystem claimed *)
  | Guard_fast   (** guard checks that stayed local (incl. custody skips) *)
  | Guard_slow   (** guard misses: metadata, fetch, materialization *)
  | Queueing     (** runnable but waiting for the scheduler *)
  | Retry        (** fault-path wire attempts, backoff, breaker waits *)
  | Failover     (** replica ladder walks, lag waits, loss declaration *)
  | Evict_stall  (** making room: eviction scans, writeback enqueue *)

val ncats : int
val cat_index : category -> int
val cat_name : category -> string
val categories : category list
val cat_names : string list

type record = {
  id : int;
  cls : int;
  opened : int;
  wall : int;
  cats : int array;  (** exclusive cycles per {!cat_index} slot *)
}

type class_stat = {
  mutable ops : int;
  wall_hist : Histogram.t;
  cat_totals : int array;
  mutable slowest : record option;
}

type event = { ets : int; ename : string; edetail : string }

type t

val create :
  ?ring:int -> ?classes:(int * string) list -> now:(unit -> int) -> unit -> t
(** [ring] bounds both the recent-span and event rings (default 256).
    [classes] names operation-class ids for reports; unknown ids render
    as ["op<k>"]. *)

val class_name : t -> int -> string

(** {1 Span lifecycle} *)

val op_begin : t -> cls:int -> unit
(** Open a span for one operation of class [cls]. If a span is already
    open it is closed first (workloads mark boundaries only). *)

val op_end : t -> unit
(** Close the open span: the unattributed remainder becomes compute and
    the record lands in the per-class aggregates and the recent ring. *)

val open_span_count : t -> int

(** {1 Category frames} *)

val enter : t -> category -> unit
val exit : t -> unit
val reclass : t -> category -> unit
(** Change the category of the innermost open frame (a guard opens as
    {!Guard_fast} and reclassifies once the miss is known). *)

val frame_depth : t -> int

val attribute : t -> category -> int -> unit
(** Charge cycles directly, without a frame (queueing on resume). *)

(** {1 Scheduler context switching} *)

val save : t -> int
(** Detach the current context (open span + frames) and return a token;
    the tracker continues with a fresh empty context. *)

val restore : t -> int -> queued:int -> unit
(** Reinstate a saved context. [queued] cycles (runnable-but-waiting
    time) are charged to {!Queueing} and excluded from the innermost
    frame's exclusive share. *)

(** {1 Events and rings} *)

val note : t -> name:string -> detail:string -> unit

val recent : t -> record list
(** Recently closed spans, oldest first, bounded by [ring]. *)

val events : t -> event list
(** Noted events, oldest first, bounded by [ring]. *)

val spans_closed : t -> int
val events_seen : t -> int

(** {1 Invariant} *)

val violations : t -> int
val violation_note : t -> string
(** First violation seen ([""] when none): unbalanced frames, restore of
    an unknown token, or attribution exceeding wall clock. *)

(** {1 Aggregates and serialization} *)

val classes : t -> (int * class_stat) list
(** Per-class aggregates, sorted by class id. *)

val background : t -> int array
(** Per-category cycles attributed outside any span (setup phases). *)

val cats_json : int array -> Json.t
val record_json : record -> Json.t
val classes_json : t -> Json.t
val invariant_json : t -> Json.t

val flight_json :
  t -> reason:string -> meta:(string * Json.t) list -> Json.t
(** The flight-recorder dump: reason, both rings, and the invariant
    state, preceded by [meta] (workload/system/seed). *)
