type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_to_string x)
  | String s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v =
  let buf = Buffer.create 65536 in
  to_buffer buf v;
  Buffer.output_buffer oc buf

(* -- parsing --------------------------------------------------------------

   Recursive-descent parser over the subset this repo emits (which is
   plain standard JSON). Errors carry the byte offset so a garbled
   metrics file produces a usable message instead of a backtrace. *)

exception Parse_failure of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_failure (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let utf8_add buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let cp =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              utf8_add buf cp
          | _ -> fail "bad escape");
          go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None ->
            pos := start;
            fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_failure (at, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg at)

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* -- schema validation ----------------------------------------------------

   A structural validator over a tiny, self-hosted schema language (the
   schema is itself a JSON value): {"type": ...} where type is one of
   "object" (with "properties" / "required"), "array" (with "items"),
   "string", "int", "number", "bool", "null", "any". Enough to pin the
   shape of the exported trace and attribution files in CI without an
   external JSON-Schema dependency. *)

let rec validate ~schema v ~path =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ty =
    match member "type" schema with Some (String t) -> t | _ -> "any"
  in
  match (ty, v) with
  | "any", _ -> Ok ()
  | "null", Null -> Ok ()
  | "bool", Bool _ -> Ok ()
  | "int", Int _ -> Ok ()
  | "number", (Int _ | Float _) -> Ok ()
  | "string", String _ -> Ok ()
  | "array", List items -> (
      match member "items" schema with
      | None -> Ok ()
      | Some ischema ->
          let rec go i = function
            | [] -> Ok ()
            | x :: rest -> (
                match
                  validate ~schema:ischema x
                    ~path:(Printf.sprintf "%s[%d]" path i)
                with
                | Ok () -> go (i + 1) rest
                | Error _ as e -> e)
          in
          go 0 items)
  | "object", Obj kvs -> (
      let required =
        match member "required" schema with
        | Some (List l) ->
            List.filter_map (function String s -> Some s | _ -> None) l
        | _ -> []
      in
      let props =
        match member "properties" schema with Some (Obj p) -> p | _ -> []
      in
      let missing =
        List.find_opt (fun k -> not (List.mem_assoc k kvs)) required
      in
      match missing with
      | Some k -> err "%s: missing required key %S" path k
      | None ->
          let rec go = function
            | [] -> Ok ()
            | (k, x) :: rest -> (
                match List.assoc_opt k props with
                | None -> go rest
                | Some pschema -> (
                    match
                      validate ~schema:pschema x ~path:(path ^ "." ^ k)
                    with
                    | Ok () -> go rest
                    | Error _ as e -> e))
          in
          go kvs)
  | ty, _ -> err "%s: expected %s" path ty

let validate ~schema v = validate ~schema v ~path:"$"
