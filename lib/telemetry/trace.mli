(** Span/event recorder with Chrome [trace_event] JSON export.

    The produced file loads in [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}: interpreter phases and slow
    guards appear as duration ('X') slices, fetches/writebacks/evictions
    as instants, and sampled counters as 'C' counter tracks. Timestamps
    are simulated cycles, exported as microseconds at the modelled
    2.4 GHz clock. *)

type t

val create : ?limit:int -> unit -> t
(** [limit] (default 1e6) bounds stored events; once reached, further
    events are counted in {!dropped} rather than stored. *)

val length : t -> int

val dropped : t -> int
(** Events discarded past the limit (reported in the export's
    [otherData]). *)

val complete :
  t ->
  name:string ->
  ?cat:string ->
  ts:int ->
  dur:int ->
  ?args:(string * Json.t) list ->
  unit ->
  unit
(** A duration slice: [ts] and [dur] in simulated cycles. *)

val instant :
  t ->
  name:string ->
  ?cat:string ->
  ts:int ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

val counter : t -> name:string -> ts:int -> (string * int) list -> unit
(** A counter ('C') event: each value becomes a stacked track in the
    trace viewer. *)

val to_json : t -> Json.t
val to_string : t -> string
val to_channel : out_channel -> t -> unit
