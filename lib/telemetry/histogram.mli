(** Log-bucketed (HDR-style) histogram of non-negative integers.

    Fixed bucket array — 16 exact buckets for 0..15, then 16 linear
    sub-buckets per power-of-two octave — so {!record} is allocation-free
    and quantiles carry at most 1/16 relative error. Used for guard
    latencies (cycles) and fetch sizes (bytes). Negative values are
    clamped to 0. *)

type t

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
val record_n : t -> int -> int -> unit
(** [record_n t v n] records [n] occurrences of value [v] ([n <= 0] is a
    no-op). *)

val count : t -> int
val total : t -> int
val is_empty : t -> bool

val min_value : t -> int
(** Exact smallest recorded value (0 when empty). *)

val max_value : t -> int
(** Exact largest recorded value (0 when empty). *)

val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 1]: nearest-rank over the buckets,
    reported as the bucket midpoint clamped to the observed min/max (so
    [quantile t 0.0 = min_value t] and [quantile t 1.0 = max_value t]
    exactly). Raises [Invalid_argument] on an empty histogram or [q]
    outside [0, 1]. *)

val percentile : t -> float -> int
(** [percentile t p = quantile t (p /. 100.)]. *)

val quantile_opt : t -> float -> int option
(** Like {!quantile} but [None] on an empty histogram or [q] outside
    [0, 1] — the form report code should use, since empty inputs are
    routine there. *)

val percentile_opt : t -> float -> int option
(** [percentile_opt t p = quantile_opt t (p /. 100.)]. *)

val merge_into : dst:t -> t -> unit

val merge : t list -> t
(** Fresh histogram holding the union of the inputs (the inputs are not
    modified). Because buckets are fixed, merging is exact: quantiles of
    the merge equal quantiles of recording every sample into one
    histogram — how per-tenant latency histograms aggregate into the
    fleet view. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(low, high_inclusive, count)], ascending. *)

val summary_string : ?unit_name:string -> t -> string
(** One-line [n/mean/min/p50/p90/p99/max] rendering for reports. *)
