(** Counter time-series: periodic snapshots of every clock counter.

    The telemetry sink installs a {!Memsim.Clock.set_sampler} hook that
    calls {!record} every [interval] simulated cycles, turning the
    end-of-run counter totals into curves — how fetches, guards and
    evictions evolve over a run (the raw material of the paper's
    event-count figures). Export as CSV ([cycles,counter,...] — one row
    per sample) or pull individual series for plotting. *)

type sample = { at : int; counters : (string * int) list }

type t

val create : interval:int -> t
(** Storage only; the caller wires the clock hook (see
    {!Sink.recording}). *)

val interval : t -> int
val length : t -> int

val record : t -> at:int -> (string * int) list -> unit
(** Append a snapshot taken at simulated time [at]. A snapshot with the
    same [at] as the previous one is dropped. *)

val samples : t -> sample list
(** Oldest first. *)

val last_opt : t -> sample option
(** Most recent sample, [None] when the series is empty. *)

val names : t -> string list
(** Sorted union of counter names across all samples. *)

val series : t -> string -> (float * float) list
(** [(at, cumulative value)] points for one counter (0 where absent). *)

val deltas : t -> string -> (float * float) list
(** Per-interval increments of a cumulative counter; a counter drop (the
    clock was reset at [!bench_begin]) restarts the baseline. *)

val to_csv : t -> string
val to_channel : out_channel -> t -> unit
