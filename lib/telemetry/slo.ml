(* Declarative latency SLOs over span operation classes.

   Spec grammar (one string, CLI-friendly):

     spec  ::= rule (';' rule)*
     rule  ::= class ':' obj (',' obj)*
     obj   ::= metric '<=' limit
     metric ::= 'p' digits | 'mean' | 'max'
     limit ::= digits ['k' | 'm' | 'g']      (cycles)

   e.g. "lookup:p99<=250k,p50<=40k;get:p999<=2m". Percentile digits read
   as two integer digits then decimals: p50 -> 50, p999 -> 99.9. *)

type metric = P of float | Mean | Max

type objective = { metric : metric; limit : int }
type rule = { cls : string; objectives : objective list }

type outcome = {
  o_cls : string;
  o_metric : metric;
  o_limit : int;
  o_actual : int option;
  o_pass : bool;
}

let metric_name = function
  | Mean -> "mean"
  | Max -> "max"
  | P p ->
      if Float.is_integer p then Printf.sprintf "p%.0f" p
      else
        (* p99.9 prints as p999, matching the input syntax. *)
        let s = Printf.sprintf "%g" p in
        "p" ^ String.concat "" (String.split_on_char '.' s)

let parse_metric s =
  match s with
  | "mean" -> Ok Mean
  | "max" -> Ok Max
  | _ ->
      let n = String.length s in
      if n >= 2 && s.[0] = 'p' && String.for_all
           (function '0' .. '9' -> true | _ -> false)
           (String.sub s 1 (n - 1))
      then begin
        let digits = String.sub s 1 (n - 1) in
        let v = float_of_string digits in
        let p =
          if String.length digits <= 2 then v
          else v /. (10.0 ** float_of_int (String.length digits - 2))
        in
        if p > 0.0 && p < 100.0 then Ok (P p)
        else Error (Printf.sprintf "percentile %s out of range" s)
      end
      else Error (Printf.sprintf "unknown metric %S (want pNN, mean, max)" s)

let parse_limit s =
  let n = String.length s in
  if n = 0 then Error "empty limit"
  else
    let scale, digits =
      match s.[n - 1] with
      | 'k' | 'K' -> (1_000, String.sub s 0 (n - 1))
      | 'm' | 'M' -> (1_000_000, String.sub s 0 (n - 1))
      | 'g' | 'G' -> (1_000_000_000, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some v when v >= 0 -> Ok (v * scale)
    | _ -> Error (Printf.sprintf "bad limit %S (want cycles, e.g. 250k)" s)

let parse_objective s =
  match String.index_opt s '<' with
  | Some i
    when i + 1 < String.length s && s.[i + 1] = '=' ->
      let m = String.trim (String.sub s 0 i) in
      let l = String.trim (String.sub s (i + 2) (String.length s - i - 2)) in
      Result.bind (parse_metric m) (fun metric ->
          Result.map (fun limit -> { metric; limit }) (parse_limit l))
  | _ -> Error (Printf.sprintf "objective %S must be metric<=limit" s)

let parse_rule s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "rule %S must be class:objectives" s)
  | Some i ->
      let cls = String.trim (String.sub s 0 i) in
      if cls = "" then Error (Printf.sprintf "rule %S has an empty class" s)
      else
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let parts =
          List.filter
            (fun p -> String.trim p <> "")
            (String.split_on_char ',' rest)
        in
        if parts = [] then
          Error (Printf.sprintf "rule %S has no objectives" s)
        else
          let rec go acc = function
            | [] -> Ok { cls; objectives = List.rev acc }
            | p :: rest -> (
                match parse_objective (String.trim p) with
                | Ok o -> go (o :: acc) rest
                | Error _ as e -> e)
          in
          go [] parts

let parse spec =
  let parts =
    List.filter
      (fun p -> String.trim p <> "")
      (String.split_on_char ';' spec)
  in
  if parts = [] then Error "empty SLO spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match parse_rule (String.trim p) with
          | Ok r -> go (r :: acc) rest
          | Error _ as e -> e)
    in
    go [] parts

(* Multi-line spec files: one (or several ';'-joined) rule(s) per line,
   '#' starts a comment, blank lines are skipped. Errors carry the
   1-based line number so a bad line in a 40-tenant SLO file is
   findable. *)
let parse_lines lines =
  let strip_comment s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let rec go acc lineno = function
    | [] ->
        if acc = [] then Error "empty SLO spec (no rules in file)"
        else Ok (List.rev acc)
    | line :: rest -> (
        let body = String.trim (strip_comment line) in
        if body = "" then go acc (lineno + 1) rest
        else
          match parse body with
          | Ok rules -> go (List.rev_append rules acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

(* Evaluation is decoupled from where the numbers come from (a live span
   tracker or a parsed attribution file) through [lookup]. A class the
   run never exercised fails its objectives: an SLO on a missing
   operation is a misconfiguration worth failing loudly on. *)
let evaluate rules ~lookup =
  List.concat_map
    (fun r ->
      List.map
        (fun o ->
          let actual = lookup ~cls:r.cls o.metric in
          {
            o_cls = r.cls;
            o_metric = o.metric;
            o_limit = o.limit;
            o_actual = actual;
            o_pass = (match actual with Some a -> a <= o.limit | None -> false);
          })
        r.objectives)
    rules

let all_pass outcomes = List.for_all (fun o -> o.o_pass) outcomes
