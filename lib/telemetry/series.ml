type sample = { at : int; counters : (string * int) list }

type t = {
  interval : int;
  mutable rev : sample list;
  mutable n : int;
}

let create ~interval =
  if interval <= 0 then invalid_arg "Series.create: interval must be > 0";
  { interval; rev = []; n = 0 }

let interval t = t.interval
let length t = t.n

let record t ~at counters =
  (* Skip exact duplicates of the previous timestamp (a forced final
     sample landing on a sampler boundary). *)
  match t.rev with
  | { at = prev; _ } :: _ when prev = at -> ()
  | _ ->
      t.rev <- { at; counters } :: t.rev;
      t.n <- t.n + 1

let samples t = List.rev t.rev
let last_opt t = match t.rev with [] -> None | s :: _ -> Some s

let names t =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s -> List.iter (fun (k, _) -> Hashtbl.replace seen k ()) s.counters)
    t.rev;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let value sample name =
  match List.assoc_opt name sample.counters with Some v -> v | None -> 0

let series t name =
  List.map
    (fun s -> (float_of_int s.at, float_of_int (value s name)))
    (samples t)

(* Per-interval increments — the shape the paper's event-count figures
   plot. Counters are cumulative; a drop (from a Clock.reset at
   !bench_begin) restarts the baseline at zero. *)
let deltas t name =
  let rec go prev = function
    | [] -> []
    | s :: rest ->
        let v = value s name in
        let d = if v >= prev then v - prev else v in
        (float_of_int s.at, float_of_int d) :: go v rest
  in
  go 0 (samples t)

let to_csv t =
  let cols = names t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "cycles";
  List.iter
    (fun c ->
      Buffer.add_char buf ',';
      Buffer.add_string buf c)
    cols;
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf (string_of_int s.at);
      List.iter
        (fun c ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int (value s c)))
        cols;
      Buffer.add_char buf '\n')
    (samples t);
  Buffer.contents buf

let to_channel oc t = output_string oc (to_csv t)
