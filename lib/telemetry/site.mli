(** Per-guard-site hotspot accounting — a "flamegraph for far memory".

    A site is the IR location (function name + instruction id of the
    injected runtime call) a guard executes from; the interpreter tags
    the sink with the current site and the runtime attributes each guard
    outcome and the bytes it moved to that site. The aggregated table
    answers the question the paper's evaluation keeps asking per program:
    which accesses take the slow path, and what do they cost? *)

type key = { func : string; instr : int }

type stat = {
  mutable fast : int;          (** fast-path guard hits *)
  mutable slow : int;          (** slow-path guard hits *)
  mutable locality : int;      (** chunked-loop locality-guard hits *)
  mutable custody : int;       (** custody-check skips (untracked ptr) *)
  mutable paged : int;         (** page-fault-path accesses (routed sites) *)
  mutable writes : int;        (** write accesses among the above *)
  mutable bytes_in : int;      (** network bytes fetched under this site *)
  mutable bytes_out : int;     (** writeback bytes enqueued under it *)
  mutable guard_cycles : int;  (** total cycles spent in its guards *)
}

type t

val create : unit -> t

val clear : t -> unit
(** Drop all accumulated stats (used when the clock's counters are reset
    at [!bench_begin], so table totals keep matching the counters). *)

val stat : t -> key -> stat
(** Find-or-create the mutable stat record for a site. *)

val is_empty : t -> bool
val site_count : t -> int

val key_to_string : key -> string
(** ["func:%id"], or just the function name for synthetic sites. *)

val rows : t -> (key * stat) list
(** All sites, hottest (most slow-path work, then most bytes) first. *)

val totals : t -> stat
(** Column sums over all sites; by construction these equal the clock's
    [tfm.*] guard counters for an attributed run. *)
