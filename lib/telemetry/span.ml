(* Causal request tracing: exclusive-time attribution per operation.

   A span is opened per workload operation (the [!op_begin]/[!op_end]
   intrinsics) and every simulated cycle inside it is charged to exactly
   one category. The runtimes bracket their work in category frames
   ({!enter}/{!exit}); a frame's exclusive time is its window minus the
   windows of the frames nested inside it, so nothing is counted twice
   no matter how deep the nesting (a guard slow path that evicts, whose
   writeback stalls on a retry ladder, ...). Whatever no frame claims is
   compute, by subtraction — which makes the decomposition sum to the
   span's wall-clock cycles by construction. {!violations} counts every
   way the books could still fail to balance (unbalanced frames,
   over-attribution from a buggy instrumentation site), so tests and
   reports can assert the invariant instead of trusting it.

   The tracker also keeps two bounded rings — recently closed spans and
   notable events — which the flight recorder serializes when a fault
   fires. Everything is driven by an injected [now : unit -> int]
   timeline, so the same code runs off the memsim clock in production
   and off a scheduler's virtual time in tests. *)

type category =
  | Compute
  | Guard_fast
  | Guard_slow
  | Queueing
  | Retry
  | Failover
  | Evict_stall

let ncats = 7

let cat_index = function
  | Compute -> 0
  | Guard_fast -> 1
  | Guard_slow -> 2
  | Queueing -> 3
  | Retry -> 4
  | Failover -> 5
  | Evict_stall -> 6

let cat_name = function
  | Compute -> "compute"
  | Guard_fast -> "guard_fast"
  | Guard_slow -> "guard_slow"
  | Queueing -> "queueing"
  | Retry -> "retry"
  | Failover -> "failover"
  | Evict_stall -> "evict_stall"

let categories =
  [ Compute; Guard_fast; Guard_slow; Queueing; Retry; Failover; Evict_stall ]

let cat_names = List.map cat_name categories

type frame = { mutable fcat : int; fentered : int; mutable fchild : int }

type open_span = { sid : int; scls : int; sopened : int; scats : int array }

(* One logical thread of execution: the span it is inside (if any) plus
   the stack of category frames currently open on it. Swapped wholesale
   at a scheduler context switch. *)
type context = { mutable span : open_span option; mutable frames : frame list }

type record = {
  id : int;
  cls : int;
  opened : int;
  wall : int;
  cats : int array;
}

type class_stat = {
  mutable ops : int;
  wall_hist : Histogram.t;
  cat_totals : int array;
  mutable slowest : record option;
}

type event = { ets : int; ename : string; edetail : string }

type t = {
  now : unit -> int;
  class_names : (int * string) list;
  stats : (int, class_stat) Hashtbl.t;
  mutable ctx : context;
  suspended : (int, context) Hashtbl.t;
  mutable next_token : int;
  mutable next_id : int;
  ring : record option array;
  mutable ring_n : int; (* total spans ever pushed *)
  evring : event option array;
  mutable ev_n : int; (* total events ever pushed *)
  background : int array; (* attribution landing outside any span *)
  mutable violations : int;
  mutable violation_note : string;
}

let default_ring = 256

let fresh_context () = { span = None; frames = [] }

let create ?(ring = default_ring) ?(classes = []) ~now () =
  {
    now;
    class_names = classes;
    stats = Hashtbl.create 8;
    ctx = fresh_context ();
    suspended = Hashtbl.create 8;
    next_token = 0;
    next_id = 0;
    ring = Array.make (max 1 ring) None;
    ring_n = 0;
    evring = Array.make (max 1 ring) None;
    ev_n = 0;
    background = Array.make ncats 0;
    violations = 0;
    violation_note = "";
  }

let class_name t cls =
  match List.assoc_opt cls t.class_names with
  | Some n -> n
  | None -> Printf.sprintf "op%d" cls

let violation t note =
  t.violations <- t.violations + 1;
  if t.violation_note = "" then t.violation_note <- note

let violations t = t.violations
let violation_note t = t.violation_note

(* -- frames --------------------------------------------------------------- *)

let attribute t cat cycles =
  if cycles > 0 then begin
    let i = cat_index cat in
    match t.ctx.span with
    | Some s -> s.scats.(i) <- s.scats.(i) + cycles
    | None -> t.background.(i) <- t.background.(i) + cycles
  end

let enter t cat =
  t.ctx.frames <-
    { fcat = cat_index cat; fentered = t.now (); fchild = 0 } :: t.ctx.frames

let reclass t cat =
  match t.ctx.frames with
  | fr :: _ -> fr.fcat <- cat_index cat
  | [] -> violation t "reclass with no open frame"

let exit t =
  match t.ctx.frames with
  | [] -> violation t "frame exit with no open frame"
  | fr :: rest ->
      let window = t.now () - fr.fentered in
      let exclusive = window - fr.fchild in
      if exclusive < 0 then violation t "frame children exceed frame window"
      else if exclusive > 0 then begin
        let i = fr.fcat in
        match t.ctx.span with
        | Some s -> s.scats.(i) <- s.scats.(i) + exclusive
        | None -> t.background.(i) <- t.background.(i) + exclusive
      end;
      (match rest with
      | parent :: _ -> parent.fchild <- parent.fchild + window
      | [] -> ());
      t.ctx.frames <- rest

let frame_depth t = List.length t.ctx.frames

(* -- scheduler context switching ----------------------------------------- *)

let save t =
  let token = t.next_token in
  t.next_token <- token + 1;
  Hashtbl.replace t.suspended token t.ctx;
  t.ctx <- fresh_context ();
  token

let restore t token ~queued =
  (match Hashtbl.find_opt t.suspended token with
  | Some ctx ->
      Hashtbl.remove t.suspended token;
      t.ctx <- ctx
  | None -> violation t "restore of unknown context token");
  if queued > 0 then begin
    attribute t Queueing queued;
    (* The wait happened while the innermost frame was open; fold it
       into the frame's child time so its exclusive share excludes it. *)
    match t.ctx.frames with
    | fr :: _ -> fr.fchild <- fr.fchild + queued
    | [] -> ()
  end

(* -- span lifecycle ------------------------------------------------------- *)

let push_record t r =
  t.ring.(t.ring_n mod Array.length t.ring) <- Some r;
  t.ring_n <- t.ring_n + 1

let class_stat t cls =
  match Hashtbl.find_opt t.stats cls with
  | Some s -> s
  | None ->
      let s =
        {
          ops = 0;
          wall_hist = Histogram.create ();
          cat_totals = Array.make ncats 0;
          slowest = None;
        }
      in
      Hashtbl.replace t.stats cls s;
      s

let close_current t =
  match t.ctx.span with
  | None -> violation t "op_end with no open span"
  | Some s ->
      if t.ctx.frames <> [] then violation t "span closed with open frames";
      let wall = t.now () - s.sopened in
      let attributed = Array.fold_left ( + ) 0 s.scats in
      let compute = wall - attributed in
      if compute < 0 then violation t "attributed cycles exceed wall clock";
      s.scats.(cat_index Compute) <- compute;
      let r =
        { id = s.sid; cls = s.scls; opened = s.sopened; wall; cats = s.scats }
      in
      let st = class_stat t s.scls in
      st.ops <- st.ops + 1;
      Histogram.record st.wall_hist (max 0 wall);
      Array.iteri (fun i c -> st.cat_totals.(i) <- st.cat_totals.(i) + c) r.cats;
      (match st.slowest with
      | Some prev when prev.wall >= wall -> ()
      | _ -> st.slowest <- Some r);
      push_record t r;
      t.ctx.span <- None

let op_begin t ~cls =
  (* A begin inside an open span implicitly ends it: workload loops mark
     only boundaries, and the close must happen at the same instant the
     next operation starts. *)
  if t.ctx.span <> None then close_current t;
  let sid = t.next_id in
  t.next_id <- sid + 1;
  t.ctx.span <-
    Some { sid; scls = cls; sopened = t.now (); scats = Array.make ncats 0 }

let op_end t = close_current t
let open_span_count t = match t.ctx.span with None -> 0 | Some _ -> 1

(* -- events --------------------------------------------------------------- *)

let note t ~name ~detail =
  t.evring.(t.ev_n mod Array.length t.evring) <-
    Some { ets = t.now (); ename = name; edetail = detail };
  t.ev_n <- t.ev_n + 1

let ring_to_list arr total =
  let cap = Array.length arr in
  let n = min total cap in
  let first = total - n in
  List.init n (fun i ->
      match arr.((first + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let recent t = ring_to_list t.ring t.ring_n
let events t = ring_to_list t.evring t.ev_n
let spans_closed t = t.ring_n
let events_seen t = t.ev_n

(* -- aggregates ----------------------------------------------------------- *)

let classes t =
  Hashtbl.fold (fun cls st acc -> (cls, st) :: acc) t.stats []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let background t = Array.copy t.background

(* -- JSON ----------------------------------------------------------------- *)

let cats_json cats =
  Json.Obj
    (List.map (fun c -> (cat_name c, Json.Int cats.(cat_index c))) categories)

let record_json r =
  Json.Obj
    [
      ("id", Json.Int r.id);
      ("class", Json.Int r.cls);
      ("opened", Json.Int r.opened);
      ("wall", Json.Int r.wall);
      ("cycles", cats_json r.cats);
    ]

let wall_json h =
  let q p =
    match Histogram.quantile_opt h p with Some v -> Json.Int v | None -> Json.Null
  in
  Json.Obj
    [
      ("total", Json.Int (Histogram.total h));
      ("mean", Json.Float (Histogram.mean h));
      ("min", Json.Int (Histogram.min_value h));
      ("p50", q 0.5);
      ("p90", q 0.9);
      ("p99", q 0.99);
      ("p999", q 0.999);
      ("max", Json.Int (Histogram.max_value h));
    ]

let class_json t (cls, st) =
  Json.Obj
    [
      ("class", Json.Int cls);
      ("name", Json.String (class_name t cls));
      ("ops", Json.Int st.ops);
      ("wall", wall_json st.wall_hist);
      ("cycles", cats_json st.cat_totals);
      ( "slowest",
        match st.slowest with None -> Json.Null | Some r -> record_json r );
    ]

let classes_json t = Json.List (List.map (class_json t) (classes t))

let invariant_json t =
  Json.Obj
    [
      ("violations", Json.Int t.violations);
      ("note", Json.String t.violation_note);
    ]

let flight_json t ~reason ~meta =
  Json.Obj
    (meta
    @ [
        ("kind", Json.String "trackfm-flight-recorder");
        ("version", Json.Int 1);
        ("reason", Json.String reason);
        ("at", Json.Int (t.now ()));
        ("invariant", invariant_json t);
        ("spans_total", Json.Int t.ring_n);
        ("events_total", Json.Int t.ev_n);
        ("spans", Json.List (List.map record_json (recent t)));
        ( "events",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [
                     ("ts", Json.Int e.ets);
                     ("name", Json.String e.ename);
                     ("detail", Json.String e.edetail);
                   ])
               (events t)) );
      ])
