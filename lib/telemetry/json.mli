(** Minimal JSON value type, serializer, parser and structural validator
    (no external dependency).

    Used by the Chrome-trace exporter, the benchmark harness's metrics
    emission, and the report/CI paths that read attribution files back
    ([report --from], trace-schema validation). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Parse a complete JSON document. Errors name the byte offset
    (["expected ':' at offset 42"]) so garbled input files produce a
    clear message rather than an exception. Numbers parse to [Int] when
    integral, [Float] otherwise. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k]; [None] on other
    constructors or a missing key. *)

val validate : schema:t -> t -> (unit, string) result
(** Structural check against a tiny self-hosted schema language (the
    schema is itself a JSON value): [{"type": T}] with [T] one of
    ["object"] (plus ["properties"]/["required"]), ["array"] (plus
    ["items"]), ["string"], ["int"], ["number"], ["bool"], ["null"],
    ["any"]. The error names the offending JSON path. *)
