(** Minimal JSON value type and serializer (no external dependency).

    Used by the Chrome-trace exporter and the benchmark harness's metrics
    emission; deliberately write-only — nothing in the repo parses JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val to_channel : out_channel -> t -> unit
