(* Chrome trace_event recorder.

   Events are kept as records and serialized once at export. Timestamps
   are simulated cycles; export converts to microseconds at the modelled
   2.4 GHz so absolute times in the UI line up with the CLI's ms
   figures. A hard event limit keeps pathological runs bounded: past it,
   events are counted as dropped instead of stored. *)

type event = {
  name : string;
  cat : string;
  ph : char; (* 'X' complete, 'i' instant, 'C' counter *)
  ts : int; (* simulated cycles *)
  dur : int; (* 'X' only *)
  args : (string * Json.t) list;
}

type t = {
  limit : int;
  mutable rev : event list;
  mutable n : int;
  mutable dropped : int;
}

let default_limit = 1_000_000

let create ?(limit = default_limit) () = { limit; rev = []; n = 0; dropped = 0 }

let length t = t.n
let dropped t = t.dropped

let push t ev =
  if t.n >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.rev <- ev :: t.rev;
    t.n <- t.n + 1
  end

let complete t ~name ?(cat = "run") ~ts ~dur ?(args = []) () =
  push t { name; cat; ph = 'X'; ts; dur = max 0 dur; args }

let instant t ~name ?(cat = "run") ~ts ?(args = []) () =
  push t { name; cat; ph = 'i'; ts; dur = 0; args }

let counter t ~name ~ts values =
  push t
    {
      name;
      cat = "counter";
      ph = 'C';
      ts;
      dur = 0;
      args = List.map (fun (k, v) -> (k, Json.Int v)) values;
    }

let cycles_per_us = 2400.0 (* the modelled 2.4 GHz core *)

let event_to_json ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ("ph", Json.String (String.make 1 ev.ph));
      ("ts", Json.Float (float_of_int ev.ts /. cycles_per_us));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let dur =
    if ev.ph = 'X' then
      [ ("dur", Json.Float (float_of_int ev.dur /. cycles_per_us)) ]
    else []
  in
  let scope = if ev.ph = 'i' then [ ("s", Json.String "t") ] else [] in
  let args = if ev.args = [] then [] else [ ("args", Json.Obj ev.args) ] in
  Json.Obj (base @ dur @ scope @ args)

let to_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev_map event_to_json t.rev));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "trackfm_repro telemetry");
            ("clock", Json.String "simulated cycles at 2.4 GHz");
            ("droppedEvents", Json.Int t.dropped);
          ] );
    ]

let to_string t = Json.to_string (to_json t)
let to_channel oc t = Json.to_channel oc (to_json t)
