(** The telemetry sink every instrumented component holds.

    A sink is either {!nop} — a constructor carrying no state, so the
    instrumentation check compiles to one pattern match and disabled runs
    pay nothing (and charge no simulated cycles either way: telemetry is
    tooling, not workload) — or a recorder aggregating four views of a
    run:

    - a per-IR-site hotspot table ({!Site});
    - log-bucketed histograms of slow-guard latency and fetch sizes
      ({!Histogram});
    - a counter time-series sampled every N simulated cycles ({!Series});
    - a Chrome-trace span/event log ({!Trace}).

    The interpreter calls {!set_site} before each load/store/call, so
    runtime events that follow are attributed to the IR location that
    caused them. *)

type path = [ `Fast | `Slow | `Locality | `Custody | `Paged ]

type epoch = { eat : int; erows : (Site.key * int array) list }
(** One closed site-profile epoch: per-site activity deltas since the
    previous sample, slots following {!epoch_fields}. *)

val epoch_fields : string array

type recorder = {
  clock : Memsim.Clock.t;
  sites : Site.t;
  guard_cycles : Histogram.t;  (** slow/locality guard latency, cycles *)
  fetch_bytes : Histogram.t;   (** network fetch sizes, bytes *)
  retry_backoff : Histogram.t; (** fault-path retry backoffs, cycles *)
  series : Series.t option;
  trace : Trace.t option;
  mutable spans : Span.t option;  (** causal span tracker, when enabled *)
  epoch_prev : (Site.key, int array) Hashtbl.t;
  mutable epochs : epoch list;    (** newest first *)
  mutable flight : (string * (string * Json.t) list) option;
  mutable flight_dumped : string option;
  mutable cur : Site.key;      (** site of the instruction executing now *)
  mutable ts_base : int;
      (** cycles folded in from clock resets, so trace time is monotone
          across [!bench_begin] *)
  mutable last_sample_at : int;
      (** dedup guard: one counter snapshot per simulated instant *)
}

type t = Nop | Rec of recorder

val nop : t

val recording :
  ?trace:bool ->
  ?trace_limit:int ->
  ?series_interval:int ->
  ?spans:bool ->
  ?op_classes:(int * string) list ->
  ?span_ring:int ->
  ?span_now:(unit -> int) ->
  Memsim.Clock.t ->
  t
(** A live recorder on [clock]. [series_interval] (simulated cycles,
    default 250k; [<= 0] disables the series) installs the clock sampler
    that snapshots counters — call {!detach} before reusing the clock
    with another sink. [trace] (default true) enables the Chrome-trace
    event log. [spans] (default false) enables the causal span tracker
    and the per-site epoch profiles; [op_classes] names its operation
    classes and [span_ring] bounds the flight-recorder rings.
    [span_now] overrides the span tracker's time source (default: the
    reset-corrected clock timestamp) — the serving simulation passes
    Shenango core time so spans measure scheduler wall clock. *)

val is_active : t -> bool
val recorder : t -> recorder option
val detach : t -> unit

val timestamp : t -> int
(** Monotone trace timestamp (cycles, reset-corrected); 0 for {!nop}. *)

val final_sample : t -> unit
(** Force one last counter snapshot (call after the run finishes, since
    the end rarely lands on a sampling boundary). *)

val unknown_site : Site.key

val set_site : t -> func:string -> instr:int -> unit
val current_site : t -> Site.key

val note_reset : t -> unit
(** Call immediately {e before} a [Clock.reset] so elapsed cycles fold
    into the trace timestamp base. Also drops the hotspot table and the
    histograms: the reset wipes the clock's counters, and the aggregate
    views must keep matching them (the trace and time-series retain the
    whole run). *)

(** {1 Events} (every one is a no-op on {!nop}) *)

val guard_event :
  t ->
  path:path ->
  write:bool ->
  cycles:int ->
  bytes_in:int ->
  bytes_out:int ->
  unit
(** One guard outcome at the current site: updates the hotspot table,
    records slow/locality latency in the histogram, and emits a trace
    slice for slow paths. [cycles]/[bytes_*] are the deltas the guard
    caused. *)

val fetch_event : t -> bytes:int -> prefetched:bool -> unit

val net_event : t -> Memsim.Net.event -> unit
(** Record a transport fault event: retries feed the [retry_backoff]
    histogram (plus a trace instant at the current site), breaker
    open/close pairs become outage spans on the trace's fault track. *)

val attach_net : t -> Memsim.Net.t -> unit
(** Install this sink as [net]'s event handler ({!Memsim.Net.on_event}),
    so fault events flow in with no per-event plumbing at call sites. *)

val cluster_event : t -> Memsim.Cluster.event -> unit
(** Record a replicated-tier event: node crashes become down-time spans
    on the trace's cluster track, recoveries become instants carrying
    the resync backlog. *)

val attach_cluster : t -> Memsim.Cluster.t -> unit
(** Install this sink as the cluster's event handler
    ({!Memsim.Cluster.set_on_event}). *)

val shed_event : t -> kind:string -> detail:string -> unit
(** One overload-control event from the serving tier ([kind] is e.g.
    ["shed"], ["reject"], ["throttle"], ["stale"]): noted as
    ["serving.<kind>"] in the span event ring, and the {e first} one
    triggers the flight-recorder dump, mirroring the first-fault
    trigger — the dump captures the moment the service first refused
    work. No-op on {!nop} or with spans disabled. *)

val writeback_event : t -> bytes:int -> unit
val evict_event : t -> unit
val prefetch_event : t -> from:int -> stride:int -> depth:int -> unit

val span : t -> name:string -> ?cat:string -> start:int -> unit -> unit
(** Close a duration slice opened at [start] (a {!timestamp} taken
    earlier) and ending now. *)

val phase_mark : t -> string -> unit
(** Instant marker on the phase track (e.g. ["bench_begin"]); also noted
    in the span event ring when spans are on. *)

(** {1 Causal spans} (all no-ops unless {!recording} had [~spans:true]) *)

val spans : t -> Span.t option

val op_begin : t -> cls:int -> unit
(** Open the span for one operation of class [cls] (the [!op_begin]
    intrinsic lands here). *)

val op_end : t -> unit

val cat_enter : t -> Span.category -> unit
(** Open a category frame: cycles until the matching {!cat_exit} that no
    nested frame claims are charged to this category. *)

val cat_exit : t -> unit

val cat_reclass : t -> Span.category -> unit
(** Recategorize the innermost open frame (a guard opens as
    {!Span.Guard_fast} and flips once the miss is known). *)

(** {1 Flight recorder} *)

val set_flight_recorder :
  t -> path:string -> meta:(string * Json.t) list -> unit
(** Arm the recorder: the first {!flight_trigger} serializes the span
    and event rings to [path] (with [meta] leading the object). *)

val flight_trigger : t -> reason:string -> unit
(** Dump now unless already dumped. Fired automatically on the first
    retry, breaker open, fetch failure, corruption, object loss or node
    crash; callable directly for triggers the sink cannot see (the
    checker raising [Unsound]). *)

val flight_dumped : t -> string option
(** The dump path, once a trigger has fired. *)

(** {1 Attribution export} *)

val epoch_count : t -> int

val attribution_json : t -> meta:(string * Json.t) list -> Json.t option
(** The machine-readable attribution summary ([run --attribution]):
    per-class wall-clock percentiles and exact category decomposition,
    the sums-to-wall-clock invariant verdict, background (out-of-span)
    attribution, and the per-site epoch profile feed. [None] when spans
    are disabled. *)
