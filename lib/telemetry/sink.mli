(** The telemetry sink every instrumented component holds.

    A sink is either {!nop} — a constructor carrying no state, so the
    instrumentation check compiles to one pattern match and disabled runs
    pay nothing (and charge no simulated cycles either way: telemetry is
    tooling, not workload) — or a recorder aggregating four views of a
    run:

    - a per-IR-site hotspot table ({!Site});
    - log-bucketed histograms of slow-guard latency and fetch sizes
      ({!Histogram});
    - a counter time-series sampled every N simulated cycles ({!Series});
    - a Chrome-trace span/event log ({!Trace}).

    The interpreter calls {!set_site} before each load/store/call, so
    runtime events that follow are attributed to the IR location that
    caused them. *)

type path = [ `Fast | `Slow | `Locality | `Custody ]

type recorder = {
  clock : Memsim.Clock.t;
  sites : Site.t;
  guard_cycles : Histogram.t;  (** slow/locality guard latency, cycles *)
  fetch_bytes : Histogram.t;   (** network fetch sizes, bytes *)
  retry_backoff : Histogram.t; (** fault-path retry backoffs, cycles *)
  series : Series.t option;
  trace : Trace.t option;
  mutable cur : Site.key;      (** site of the instruction executing now *)
  mutable ts_base : int;
      (** cycles folded in from clock resets, so trace time is monotone
          across [!bench_begin] *)
  mutable last_sample_at : int;
      (** dedup guard: one counter snapshot per simulated instant *)
}

type t = Nop | Rec of recorder

val nop : t

val recording :
  ?trace:bool ->
  ?trace_limit:int ->
  ?series_interval:int ->
  Memsim.Clock.t ->
  t
(** A live recorder on [clock]. [series_interval] (simulated cycles,
    default 250k; [<= 0] disables the series) installs the clock sampler
    that snapshots counters — call {!detach} before reusing the clock
    with another sink. [trace] (default true) enables the Chrome-trace
    event log. *)

val is_active : t -> bool
val recorder : t -> recorder option
val detach : t -> unit

val timestamp : t -> int
(** Monotone trace timestamp (cycles, reset-corrected); 0 for {!nop}. *)

val final_sample : t -> unit
(** Force one last counter snapshot (call after the run finishes, since
    the end rarely lands on a sampling boundary). *)

val unknown_site : Site.key

val set_site : t -> func:string -> instr:int -> unit
val current_site : t -> Site.key

val note_reset : t -> unit
(** Call immediately {e before} a [Clock.reset] so elapsed cycles fold
    into the trace timestamp base. Also drops the hotspot table and the
    histograms: the reset wipes the clock's counters, and the aggregate
    views must keep matching them (the trace and time-series retain the
    whole run). *)

(** {1 Events} (every one is a no-op on {!nop}) *)

val guard_event :
  t ->
  path:path ->
  write:bool ->
  cycles:int ->
  bytes_in:int ->
  bytes_out:int ->
  unit
(** One guard outcome at the current site: updates the hotspot table,
    records slow/locality latency in the histogram, and emits a trace
    slice for slow paths. [cycles]/[bytes_*] are the deltas the guard
    caused. *)

val fetch_event : t -> bytes:int -> prefetched:bool -> unit

val net_event : t -> Memsim.Net.event -> unit
(** Record a transport fault event: retries feed the [retry_backoff]
    histogram (plus a trace instant at the current site), breaker
    open/close pairs become outage spans on the trace's fault track. *)

val attach_net : t -> Memsim.Net.t -> unit
(** Install this sink as [net]'s event handler ({!Memsim.Net.on_event}),
    so fault events flow in with no per-event plumbing at call sites. *)

val cluster_event : t -> Memsim.Cluster.event -> unit
(** Record a replicated-tier event: node crashes become down-time spans
    on the trace's cluster track, recoveries become instants carrying
    the resync backlog. *)

val attach_cluster : t -> Memsim.Cluster.t -> unit
(** Install this sink as the cluster's event handler
    ({!Memsim.Cluster.set_on_event}). *)

val writeback_event : t -> bytes:int -> unit
val evict_event : t -> unit
val prefetch_event : t -> from:int -> stride:int -> depth:int -> unit

val span : t -> name:string -> ?cat:string -> start:int -> unit -> unit
(** Close a duration slice opened at [start] (a {!timestamp} taken
    earlier) and ending now. *)

val phase_mark : t -> string -> unit
(** Instant marker on the phase track (e.g. ["bench_begin"]). *)
