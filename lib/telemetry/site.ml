type key = { func : string; instr : int }

type stat = {
  mutable fast : int;
  mutable slow : int;
  mutable locality : int;
  mutable custody : int;
  mutable paged : int;
  mutable writes : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable guard_cycles : int;
}

type t = { tbl : (key, stat) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let clear t = Hashtbl.reset t.tbl

let fresh_stat () =
  {
    fast = 0;
    slow = 0;
    locality = 0;
    custody = 0;
    paged = 0;
    writes = 0;
    bytes_in = 0;
    bytes_out = 0;
    guard_cycles = 0;
  }

let stat t key =
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
      let s = fresh_stat () in
      Hashtbl.replace t.tbl key s;
      s

let is_empty t = Hashtbl.length t.tbl = 0
let site_count t = Hashtbl.length t.tbl

let key_to_string k =
  if k.instr < 0 then k.func else Printf.sprintf "%s:%%%d" k.func k.instr

(* Hottest first: a site's heat is how much slow-path work it causes.
   Page faults at routed sites are slow-path work too. *)
let heat s = s.slow + s.locality + s.paged

let rows t =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare (heat b, b.bytes_in) (heat a, a.bytes_in) with
         | 0 -> (
             match compare b.fast a.fast with
             | 0 -> compare ka kb
             | c -> c)
         | c -> c)

let totals t =
  let acc = fresh_stat () in
  Hashtbl.iter
    (fun _ s ->
      acc.fast <- acc.fast + s.fast;
      acc.slow <- acc.slow + s.slow;
      acc.locality <- acc.locality + s.locality;
      acc.custody <- acc.custody + s.custody;
      acc.paged <- acc.paged + s.paged;
      acc.writes <- acc.writes + s.writes;
      acc.bytes_in <- acc.bytes_in + s.bytes_in;
      acc.bytes_out <- acc.bytes_out + s.bytes_out;
      acc.guard_cycles <- acc.guard_cycles + s.guard_cycles)
    t.tbl;
  acc
