type path = [ `Fast | `Slow | `Locality | `Custody ]

let unknown_site = { Site.func = "<unknown>"; instr = -1 }

type recorder = {
  clock : Memsim.Clock.t;
  sites : Site.t;
  guard_cycles : Histogram.t;
  fetch_bytes : Histogram.t;
  retry_backoff : Histogram.t;
  series : Series.t option;
  trace : Trace.t option;
  mutable cur : Site.key;
  mutable ts_base : int;
  mutable last_sample_at : int;
}

type t = Nop | Rec of recorder

let nop = Nop
let is_active = function Nop -> false | Rec _ -> true
let recorder = function Nop -> None | Rec r -> Some r

let now r = r.ts_base + Memsim.Clock.cycles r.clock

let counter_value counters name =
  match List.assoc_opt name counters with Some v -> v | None -> 0

(* The counter tracks surfaced in the trace viewer; the CSV export keeps
   every counter regardless. *)
let trace_counter_groups =
  [
    ("tfm.guards", [ "tfm.fast_guards"; "tfm.slow_guards"; "tfm.locality_guards" ]);
    ("net.bytes", [ "net.bytes_in"; "net.bytes_out" ]);
    ("memory", [ "net.fetches"; "aifm.evictions"; "aifm.writebacks" ]);
  ]

(* Idempotent per simulated instant, so an extra [final_sample] (e.g.
   report printing and then file export) does not duplicate counter
   events in the trace. *)
let take_sample r =
  let at = now r in
  if at = r.last_sample_at then ()
  else begin
  r.last_sample_at <- at;
  let counters = Memsim.Clock.counters r.clock in
  (match r.series with
  | Some s -> Series.record s ~at counters
  | None -> ());
  match r.trace with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (group, names) ->
          let values =
            List.filter_map
              (fun n ->
                match counter_value counters n with
                | 0 -> None
                | v -> Some (n, v))
              names
          in
          if values <> [] then Trace.counter tr ~name:group ~ts:at values)
        trace_counter_groups
  end

let recording ?(trace = true) ?(trace_limit = 1_000_000)
    ?(series_interval = 250_000) clock =
  let r =
    {
      clock;
      sites = Site.create ();
      guard_cycles = Histogram.create ();
      fetch_bytes = Histogram.create ();
      retry_backoff = Histogram.create ();
      series =
        (if series_interval > 0 then Some (Series.create ~interval:series_interval)
         else None);
      trace = (if trace then Some (Trace.create ~limit:trace_limit ()) else None);
      cur = unknown_site;
      ts_base = 0;
      last_sample_at = -1;
    }
  in
  let wants_sampler =
    match (r.series, r.trace) with None, None -> false | _ -> true
  in
  if wants_sampler then
    Memsim.Clock.set_sampler clock
      ~interval:(if series_interval > 0 then series_interval else 250_000)
      (fun _ -> take_sample r);
  Rec r

let timestamp = function Nop -> 0 | Rec r -> now r

let detach = function
  | Nop -> ()
  | Rec r -> Memsim.Clock.clear_sampler r.clock

let final_sample = function Nop -> () | Rec r -> take_sample r

let set_site t ~func ~instr =
  match t with Nop -> () | Rec r -> r.cur <- { Site.func; instr }

let current_site = function Nop -> unknown_site | Rec r -> r.cur

let note_reset = function
  | Nop -> ()
  | Rec r ->
      r.ts_base <- r.ts_base + Memsim.Clock.cycles r.clock;
      (* The clock reset that follows wipes its counters, so the final
         counters cover only the measured region. Drop the aggregates
         too — the hotspot totals must keep matching the clock — while
         the trace and time-series keep the whole run. *)
      Site.clear r.sites;
      Histogram.clear r.guard_cycles;
      Histogram.clear r.fetch_bytes;
      Histogram.clear r.retry_backoff

(* -- events -------------------------------------------------------------- *)

let guard_event t ~path ~write ~cycles ~bytes_in ~bytes_out =
  match t with
  | Nop -> ()
  | Rec r -> (
      let s = Site.stat r.sites r.cur in
      (match path with
      | `Fast -> s.Site.fast <- s.Site.fast + 1
      | `Slow ->
          s.Site.slow <- s.Site.slow + 1;
          Histogram.record r.guard_cycles cycles
      | `Locality ->
          s.Site.locality <- s.Site.locality + 1;
          Histogram.record r.guard_cycles cycles
      | `Custody -> s.Site.custody <- s.Site.custody + 1);
      if write then s.Site.writes <- s.Site.writes + 1;
      s.Site.bytes_in <- s.Site.bytes_in + bytes_in;
      s.Site.bytes_out <- s.Site.bytes_out + bytes_out;
      s.Site.guard_cycles <- s.Site.guard_cycles + cycles;
      match (path, r.trace) with
      | (`Slow | `Locality), Some tr ->
          let name =
            match path with `Slow -> "guard.slow" | _ -> "guard.locality"
          in
          let args =
            [
              ("site", Json.String (Site.key_to_string r.cur));
              ("write", Json.Bool write);
            ]
            @ (if bytes_in > 0 then [ ("bytes_in", Json.Int bytes_in) ] else [])
          in
          Trace.complete tr ~name ~cat:"guard" ~ts:(now r - cycles)
            ~dur:cycles ~args ()
      | _ -> ())

let fetch_event t ~bytes ~prefetched =
  match t with
  | Nop -> ()
  | Rec r -> (
      Histogram.record r.fetch_bytes bytes;
      match r.trace with
      | None -> ()
      | Some tr ->
          Trace.instant tr ~name:"fetch" ~cat:"net" ~ts:(now r)
            ~args:
              [
                ("bytes", Json.Int bytes);
                ("prefetched", Json.Bool prefetched);
                ("site", Json.String (Site.key_to_string r.cur));
              ]
            ())

let writeback_event t ~bytes =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr ->
          Trace.instant tr ~name:"writeback" ~cat:"net" ~ts:(now r)
            ~args:[ ("bytes", Json.Int bytes) ] ())

let evict_event t =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr -> Trace.instant tr ~name:"evict" ~cat:"aifm" ~ts:(now r) ())

let prefetch_event t ~from ~stride ~depth =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr ->
          Trace.instant tr ~name:"prefetch.issue" ~cat:"aifm" ~ts:(now r)
            ~args:
              [
                ("from", Json.Int from);
                ("stride", Json.Int stride);
                ("depth", Json.Int depth);
              ]
            ())

(* Fabric-fault events from the transport (Net installs this bridge via
   its [on_event] hook): retry backoffs feed a histogram, breaker
   open/close pairs become outage spans on the trace's fault track. *)
let net_event t (e : Memsim.Net.event) =
  match t with
  | Nop -> ()
  | Rec r -> (
      match e with
      | Memsim.Net.Retry { attempt; backoff; reason } -> (
          Histogram.record r.retry_backoff backoff;
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.retry" ~cat:"fault" ~ts:(now r)
                ~args:
                  [
                    ("attempt", Json.Int attempt);
                    ("backoff", Json.Int backoff);
                    ( "reason",
                      Json.String
                        (match reason with
                        | `Nack -> "nack"
                        | `Timeout -> "timeout") );
                    ("site", Json.String (Site.key_to_string r.cur));
                  ]
                ())
      | Memsim.Net.Breaker_opened { at; probe_at } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.breaker_open" ~cat:"fault"
                ~ts:(r.ts_base + at)
                ~args:[ ("probe_at", Json.Int (r.ts_base + probe_at)) ]
                ())
      | Memsim.Net.Breaker_closed { opened_at; at } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.complete tr ~name:"net.outage" ~cat:"fault"
                ~ts:(r.ts_base + opened_at)
                ~dur:(max 0 (at - opened_at))
                ())
      | Memsim.Net.Fetch_failed { attempts } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.fetch_failed" ~cat:"fault"
                ~ts:(now r)
                ~args:[ ("attempts", Json.Int attempts) ]
                ())
      | Memsim.Net.Failover { key; primary; replica } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.failover" ~cat:"cluster" ~ts:(now r)
                ~args:
                  [
                    ("key", Json.Int key);
                    ("primary", Json.Int primary);
                    ("replica", Json.Int replica);
                  ]
                ())
      | Memsim.Net.Corruption_detected { key; node } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.corruption" ~cat:"cluster"
                ~ts:(now r)
                ~args:[ ("key", Json.Int key); ("node", Json.Int node) ]
                ())
      | Memsim.Net.Repaired { key; node } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.repair" ~cat:"cluster" ~ts:(now r)
                ~args:[ ("key", Json.Int key); ("node", Json.Int node) ]
                ())
      | Memsim.Net.Object_lost { key } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.object_lost" ~cat:"cluster"
                ~ts:(now r)
                ~args:[ ("key", Json.Int key) ]
                ()))

let attach_net t net = Memsim.Net.on_event net (fun e -> net_event t e)

(* Cluster events carry monotonic timestamps, which coincide with the
   trace timeline ([ts_base] accumulates exactly what [Clock.reset]
   folds away), so [at]/[until] can be used directly. *)
let cluster_event t (e : Memsim.Cluster.event) =
  match t with
  | Nop -> ()
  | Rec r -> (
      match e with
      | Memsim.Cluster.Node_crashed { node; at; until; lost } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.complete tr ~name:"cluster.node_down" ~cat:"cluster"
                ~ts:at
                ~dur:(max 0 (until - at))
                ~args:[ ("node", Json.Int node); ("lost", Json.Int lost) ]
                ())
      | Memsim.Cluster.Node_recovered { node; at; missing } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"cluster.node_recovered" ~cat:"cluster"
                ~ts:at
                ~args:[ ("node", Json.Int node); ("missing", Json.Int missing) ]
                ()))

let attach_cluster t cluster =
  Memsim.Cluster.set_on_event cluster (fun e -> cluster_event t e)

let span t ~name ?(cat = "interp") ~start () =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr ->
          let stop = now r in
          Trace.complete tr ~name ~cat ~ts:start ~dur:(stop - start) ())

let phase_mark t name =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr -> Trace.instant tr ~name ~cat:"phase" ~ts:(now r) ())
