type path = [ `Fast | `Slow | `Locality | `Custody | `Paged ]

let unknown_site = { Site.func = "<unknown>"; instr = -1 }

(* Per-epoch per-site activity deltas (the hybrid selector's data feed);
   slots follow [epoch_fields]. *)
type epoch = { eat : int; erows : (Site.key * int array) list }

let epoch_fields =
  [|
    "fast"; "slow"; "locality"; "custody"; "paged"; "writes"; "bytes_in";
    "bytes_out"; "guard_cycles";
  |]

type recorder = {
  clock : Memsim.Clock.t;
  sites : Site.t;
  guard_cycles : Histogram.t;
  fetch_bytes : Histogram.t;
  retry_backoff : Histogram.t;
  series : Series.t option;
  trace : Trace.t option;
  mutable spans : Span.t option;
  epoch_prev : (Site.key, int array) Hashtbl.t;
  mutable epochs : epoch list; (* newest first *)
  mutable flight : (string * (string * Json.t) list) option;
  mutable flight_dumped : string option;
  mutable cur : Site.key;
  mutable ts_base : int;
  mutable last_sample_at : int;
}

type t = Nop | Rec of recorder

let nop = Nop
let is_active = function Nop -> false | Rec _ -> true
let recorder = function Nop -> None | Rec r -> Some r

let now r = r.ts_base + Memsim.Clock.cycles r.clock

let counter_value counters name =
  match List.assoc_opt name counters with Some v -> v | None -> 0

(* The counter tracks surfaced in the trace viewer; the CSV export keeps
   every counter regardless. *)
let trace_counter_groups =
  [
    ("tfm.guards", [ "tfm.fast_guards"; "tfm.slow_guards"; "tfm.locality_guards" ]);
    ("net.bytes", [ "net.bytes_in"; "net.bytes_out" ]);
    ("memory", [ "net.fetches"; "aifm.evictions"; "aifm.writebacks" ]);
  ]

(* Close one site-profile epoch: the delta of every site's counters
   since the previous sample, sorted by site key so export order never
   depends on hash-table iteration. All-zero rows (and epochs) are
   dropped. *)
let epoch_snap (s : Site.stat) =
  [|
    s.Site.fast; s.Site.slow; s.Site.locality; s.Site.custody; s.Site.paged;
    s.Site.writes; s.Site.bytes_in; s.Site.bytes_out; s.Site.guard_cycles;
  |]

let epoch_sample r ~at =
  let rows =
    List.filter_map
      (fun (k, s) ->
        let cur = epoch_snap s in
        let d =
          match Hashtbl.find_opt r.epoch_prev k with
          | None -> cur
          | Some prev -> Array.mapi (fun i v -> v - prev.(i)) cur
        in
        Hashtbl.replace r.epoch_prev k cur;
        if Array.exists (fun x -> x <> 0) d then Some (k, d) else None)
      (Site.rows r.sites)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if rows <> [] then r.epochs <- { eat = at; erows = rows } :: r.epochs

(* Idempotent per simulated instant, so an extra [final_sample] (e.g.
   report printing and then file export) does not duplicate counter
   events in the trace. *)
let take_sample r =
  let at = now r in
  if at = r.last_sample_at then ()
  else begin
  r.last_sample_at <- at;
  let counters = Memsim.Clock.counters r.clock in
  (match r.series with
  | Some s -> Series.record s ~at counters
  | None -> ());
  if r.spans <> None then epoch_sample r ~at;
  match r.trace with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (group, names) ->
          let values =
            List.filter_map
              (fun n ->
                match counter_value counters n with
                | 0 -> None
                | v -> Some (n, v))
              names
          in
          if values <> [] then Trace.counter tr ~name:group ~ts:at values)
        trace_counter_groups
  end

let recording ?(trace = true) ?(trace_limit = 1_000_000)
    ?(series_interval = 250_000) ?(spans = false) ?(op_classes = [])
    ?(span_ring = 256) ?span_now clock =
  let r =
    {
      clock;
      sites = Site.create ();
      guard_cycles = Histogram.create ();
      fetch_bytes = Histogram.create ();
      retry_backoff = Histogram.create ();
      series =
        (if series_interval > 0 then Some (Series.create ~interval:series_interval)
         else None);
      trace = (if trace then Some (Trace.create ~limit:trace_limit ()) else None);
      spans = None;
      epoch_prev = Hashtbl.create 64;
      epochs = [];
      flight = None;
      flight_dumped = None;
      cur = unknown_site;
      ts_base = 0;
      last_sample_at = -1;
    }
  in
  if spans then begin
    let span_now =
      match span_now with Some f -> f | None -> fun () -> now r
    in
    r.spans <-
      Some (Span.create ~ring:span_ring ~classes:op_classes ~now:span_now ())
  end;
  let wants_sampler =
    match (r.series, r.trace, r.spans) with
    | None, None, None -> false
    | _ -> true
  in
  if wants_sampler then
    Memsim.Clock.set_sampler clock
      ~interval:(if series_interval > 0 then series_interval else 250_000)
      (fun _ -> take_sample r);
  Rec r

let timestamp = function Nop -> 0 | Rec r -> now r

let detach = function
  | Nop -> ()
  | Rec r -> Memsim.Clock.clear_sampler r.clock

let final_sample = function Nop -> () | Rec r -> take_sample r

let set_site t ~func ~instr =
  match t with Nop -> () | Rec r -> r.cur <- { Site.func; instr }

let current_site = function Nop -> unknown_site | Rec r -> r.cur

let note_reset = function
  | Nop -> ()
  | Rec r ->
      r.ts_base <- r.ts_base + Memsim.Clock.cycles r.clock;
      (* The clock reset that follows wipes its counters, so the final
         counters cover only the measured region. Drop the aggregates
         too — the hotspot totals must keep matching the clock — while
         the trace and time-series keep the whole run. *)
      Site.clear r.sites;
      Hashtbl.reset r.epoch_prev;
      Histogram.clear r.guard_cycles;
      Histogram.clear r.fetch_bytes;
      Histogram.clear r.retry_backoff

(* -- spans ---------------------------------------------------------------- *)

let spans = function Nop -> None | Rec r -> r.spans

let with_spans t f =
  match t with
  | Nop -> ()
  | Rec { spans = None; _ } -> ()
  | Rec { spans = Some sp; _ } -> f sp

let op_begin t ~cls = with_spans t (fun sp -> Span.op_begin sp ~cls)
let op_end t = with_spans t (fun sp -> Span.op_end sp)
let cat_enter t cat = with_spans t (fun sp -> Span.enter sp cat)
let cat_exit t = with_spans t (fun sp -> Span.exit sp)
let cat_reclass t cat = with_spans t (fun sp -> Span.reclass sp cat)

(* -- flight recorder ------------------------------------------------------ *)

let set_flight_recorder t ~path ~meta =
  match t with Nop -> () | Rec r -> r.flight <- Some (path, meta)

let flight_dumped = function Nop -> None | Rec r -> r.flight_dumped

(* Dump-once: the ring is serialized at the instant of the first
   trigger, so the file shows the system's state when things first went
   wrong, not at exit. Write failures warn instead of killing the run —
   the recorder must never take down what it is observing. *)
let flight_trigger t ~reason =
  match t with
  | Nop -> ()
  | Rec r -> (
      match (r.flight, r.spans, r.flight_dumped) with
      | Some (path, meta), Some sp, None -> (
          let json = Span.flight_json sp ~reason ~meta in
          try
            let oc = open_out path in
            Json.to_channel oc json;
            output_char oc '\n';
            close_out oc;
            r.flight_dumped <- Some path
          with Sys_error e ->
            Printf.eprintf "warning: flight recorder write failed: %s\n%!" e)
      | _ -> ())

(* Overload-control events from the serving tier. Mirrors the fault
   path: every shed/reject lands in the span event ring, and the first
   one fires the flight recorder — the dump shows what the system looked
   like the moment it first refused work, not at exit. *)
let shed_event t ~kind ~detail =
  let name = "serving." ^ kind in
  with_spans t (fun sp -> Span.note sp ~name ~detail);
  flight_trigger t ~reason:name

(* -- events -------------------------------------------------------------- *)

let guard_event t ~path ~write ~cycles ~bytes_in ~bytes_out =
  match t with
  | Nop -> ()
  | Rec r -> (
      let s = Site.stat r.sites r.cur in
      (match path with
      | `Fast -> s.Site.fast <- s.Site.fast + 1
      | `Slow ->
          s.Site.slow <- s.Site.slow + 1;
          Histogram.record r.guard_cycles cycles
      | `Locality ->
          s.Site.locality <- s.Site.locality + 1;
          Histogram.record r.guard_cycles cycles
      | `Custody -> s.Site.custody <- s.Site.custody + 1
      | `Paged ->
          s.Site.paged <- s.Site.paged + 1;
          Histogram.record r.guard_cycles cycles);
      if write then s.Site.writes <- s.Site.writes + 1;
      s.Site.bytes_in <- s.Site.bytes_in + bytes_in;
      s.Site.bytes_out <- s.Site.bytes_out + bytes_out;
      s.Site.guard_cycles <- s.Site.guard_cycles + cycles;
      match (path, r.trace) with
      | (`Slow | `Locality | `Paged), Some tr ->
          let name =
            match path with
            | `Slow -> "guard.slow"
            | `Paged -> "guard.paged"
            | _ -> "guard.locality"
          in
          let args =
            [
              ("site", Json.String (Site.key_to_string r.cur));
              ("write", Json.Bool write);
            ]
            @ (if bytes_in > 0 then [ ("bytes_in", Json.Int bytes_in) ] else [])
          in
          Trace.complete tr ~name ~cat:"guard" ~ts:(now r - cycles)
            ~dur:cycles ~args ()
      | _ -> ())

let fetch_event t ~bytes ~prefetched =
  match t with
  | Nop -> ()
  | Rec r -> (
      Histogram.record r.fetch_bytes bytes;
      match r.trace with
      | None -> ()
      | Some tr ->
          Trace.instant tr ~name:"fetch" ~cat:"net" ~ts:(now r)
            ~args:
              [
                ("bytes", Json.Int bytes);
                ("prefetched", Json.Bool prefetched);
                ("site", Json.String (Site.key_to_string r.cur));
              ]
            ())

let writeback_event t ~bytes =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr ->
          Trace.instant tr ~name:"writeback" ~cat:"net" ~ts:(now r)
            ~args:[ ("bytes", Json.Int bytes) ] ())

let evict_event t =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr -> Trace.instant tr ~name:"evict" ~cat:"aifm" ~ts:(now r) ())

let prefetch_event t ~from ~stride ~depth =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr ->
          Trace.instant tr ~name:"prefetch.issue" ~cat:"aifm" ~ts:(now r)
            ~args:
              [
                ("from", Json.Int from);
                ("stride", Json.Int stride);
                ("depth", Json.Int depth);
              ]
            ())

(* Fabric-fault events from the transport (Net installs this bridge via
   its [on_event] hook): retry backoffs feed a histogram, breaker
   open/close pairs become outage spans on the trace's fault track. *)
(* Fault events feed the flight recorder twice over: every one lands in
   the span event ring, and the first one that signals real trouble (a
   retry, an exhausted ladder, an opened breaker, data loss) triggers
   the dump. *)
let span_note_net t (e : Memsim.Net.event) =
  match spans t with
  | None -> ()
  | Some sp -> (
      let note name detail = Span.note sp ~name ~detail in
      match e with
      | Memsim.Net.Retry { attempt; backoff; reason } ->
          note "net.retry"
            (Printf.sprintf "attempt=%d backoff=%d reason=%s" attempt backoff
               (match reason with `Nack -> "nack" | `Timeout -> "timeout"));
          flight_trigger t ~reason:"net.retry"
      | Memsim.Net.Breaker_opened { at; probe_at } ->
          note "net.breaker_open"
            (Printf.sprintf "at=%d probe_at=%d" at probe_at);
          flight_trigger t ~reason:"net.breaker_open"
      | Memsim.Net.Breaker_closed { opened_at; at } ->
          note "net.breaker_close"
            (Printf.sprintf "opened_at=%d at=%d" opened_at at)
      | Memsim.Net.Fetch_failed { attempts } ->
          note "net.fetch_failed" (Printf.sprintf "attempts=%d" attempts);
          flight_trigger t ~reason:"net.fetch_failed"
      | Memsim.Net.Failover { key; primary; replica } ->
          note "net.failover"
            (Printf.sprintf "key=%d primary=%d replica=%d" key primary replica)
      | Memsim.Net.Corruption_detected { key; node } ->
          note "net.corruption" (Printf.sprintf "key=%d node=%d" key node);
          flight_trigger t ~reason:"net.corruption"
      | Memsim.Net.Repaired { key; node } ->
          note "net.repair" (Printf.sprintf "key=%d node=%d" key node)
      | Memsim.Net.Object_lost { key } ->
          note "net.object_lost" (Printf.sprintf "key=%d" key);
          flight_trigger t ~reason:"net.object_lost")

let net_event t (e : Memsim.Net.event) =
  span_note_net t e;
  match t with
  | Nop -> ()
  | Rec r -> (
      match e with
      | Memsim.Net.Retry { attempt; backoff; reason } -> (
          Histogram.record r.retry_backoff backoff;
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.retry" ~cat:"fault" ~ts:(now r)
                ~args:
                  [
                    ("attempt", Json.Int attempt);
                    ("backoff", Json.Int backoff);
                    ( "reason",
                      Json.String
                        (match reason with
                        | `Nack -> "nack"
                        | `Timeout -> "timeout") );
                    ("site", Json.String (Site.key_to_string r.cur));
                  ]
                ())
      | Memsim.Net.Breaker_opened { at; probe_at } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.breaker_open" ~cat:"fault"
                ~ts:(r.ts_base + at)
                ~args:[ ("probe_at", Json.Int (r.ts_base + probe_at)) ]
                ())
      | Memsim.Net.Breaker_closed { opened_at; at } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.complete tr ~name:"net.outage" ~cat:"fault"
                ~ts:(r.ts_base + opened_at)
                ~dur:(max 0 (at - opened_at))
                ())
      | Memsim.Net.Fetch_failed { attempts } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.fetch_failed" ~cat:"fault"
                ~ts:(now r)
                ~args:[ ("attempts", Json.Int attempts) ]
                ())
      | Memsim.Net.Failover { key; primary; replica } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.failover" ~cat:"cluster" ~ts:(now r)
                ~args:
                  [
                    ("key", Json.Int key);
                    ("primary", Json.Int primary);
                    ("replica", Json.Int replica);
                  ]
                ())
      | Memsim.Net.Corruption_detected { key; node } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.corruption" ~cat:"cluster"
                ~ts:(now r)
                ~args:[ ("key", Json.Int key); ("node", Json.Int node) ]
                ())
      | Memsim.Net.Repaired { key; node } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.repair" ~cat:"cluster" ~ts:(now r)
                ~args:[ ("key", Json.Int key); ("node", Json.Int node) ]
                ())
      | Memsim.Net.Object_lost { key } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"net.object_lost" ~cat:"cluster"
                ~ts:(now r)
                ~args:[ ("key", Json.Int key) ]
                ()))

let attach_net t net =
  Memsim.Net.on_event net (fun e -> net_event t e);
  (* Fault-path and failover cost windows inside the transport become
     category frames on the open span; with spans disabled the closures
     hit the Nop arm and nothing happens. *)
  Memsim.Net.set_span_scope net
    ~enter:(fun kind ->
      cat_enter t
        (match kind with `Retry -> Span.Retry | `Failover -> Span.Failover))
    ~leave:(fun () -> cat_exit t)

(* Cluster events carry monotonic timestamps, which coincide with the
   trace timeline ([ts_base] accumulates exactly what [Clock.reset]
   folds away), so [at]/[until] can be used directly. *)
let span_note_cluster t (e : Memsim.Cluster.event) =
  match spans t with
  | None -> ()
  | Some sp -> (
      match e with
      | Memsim.Cluster.Node_crashed { node; at; until; lost } ->
          Span.note sp ~name:"cluster.node_crashed"
            ~detail:
              (Printf.sprintf "node=%d at=%d until=%d lost=%d" node at until
                 lost);
          flight_trigger t ~reason:"cluster.node_crashed"
      | Memsim.Cluster.Node_recovered { node; at; missing } ->
          Span.note sp ~name:"cluster.node_recovered"
            ~detail:(Printf.sprintf "node=%d at=%d missing=%d" node at missing))

let cluster_event t (e : Memsim.Cluster.event) =
  span_note_cluster t e;
  match t with
  | Nop -> ()
  | Rec r -> (
      match e with
      | Memsim.Cluster.Node_crashed { node; at; until; lost } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.complete tr ~name:"cluster.node_down" ~cat:"cluster"
                ~ts:at
                ~dur:(max 0 (until - at))
                ~args:[ ("node", Json.Int node); ("lost", Json.Int lost) ]
                ())
      | Memsim.Cluster.Node_recovered { node; at; missing } -> (
          match r.trace with
          | None -> ()
          | Some tr ->
              Trace.instant tr ~name:"cluster.node_recovered" ~cat:"cluster"
                ~ts:at
                ~args:[ ("node", Json.Int node); ("missing", Json.Int missing) ]
                ()))

let attach_cluster t cluster =
  Memsim.Cluster.set_on_event cluster (fun e -> cluster_event t e)

let span t ~name ?(cat = "interp") ~start () =
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr ->
          let stop = now r in
          Trace.complete tr ~name ~cat ~ts:start ~dur:(stop - start) ())

let phase_mark t name =
  with_spans t (fun sp -> Span.note sp ~name ~detail:"");
  match t with
  | Nop -> ()
  | Rec r -> (
      match r.trace with
      | None -> ()
      | Some tr -> Trace.instant tr ~name ~cat:"phase" ~ts:(now r) ())

(* -- attribution export --------------------------------------------------- *)

let epochs_json r =
  Json.List
    (List.rev_map
       (fun e ->
         Json.Obj
           [
             ("at", Json.Int e.eat);
             ( "sites",
               Json.List
                 (List.map
                    (fun (k, d) ->
                      Json.Obj
                        (("site", Json.String (Site.key_to_string k))
                        :: Array.to_list
                             (Array.mapi
                                (fun i name -> (name, Json.Int d.(i)))
                                epoch_fields)))
                    e.erows) );
           ])
       r.epochs)

let epoch_count = function Nop -> 0 | Rec r -> List.length r.epochs

(* The machine-readable summary [run --attribution] writes and
   [report critical-path/slo --from] read back: per-class wall-clock
   percentiles and exact category decomposition, the invariant verdict,
   out-of-span background attribution, and the per-site epoch feed. *)
let attribution_json t ~meta =
  match t with
  | Nop -> None
  | Rec ({ spans = Some sp; _ } as r) ->
      Some
        (Json.Obj
           ([
              ("kind", Json.String "trackfm-attribution");
              ("version", Json.Int 1);
            ]
           @ meta
           @ [
               ("invariant", Span.invariant_json sp);
               ( "categories",
                 Json.List
                   (List.map (fun n -> Json.String n) Span.cat_names) );
               ("classes", Span.classes_json sp);
               ("background", Span.cats_json (Span.background sp));
               ("epochs", epochs_json r);
             ]))
  | Rec _ -> None
