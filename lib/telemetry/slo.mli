(** Declarative latency SLOs over span operation classes.

    A spec is one CLI-friendly string:
    ["lookup:p99<=250k,p50<=40k;get:p999<=2m"] — semicolon-separated
    rules, each a class name and comma-separated [metric<=limit]
    objectives. Metrics are [pNN] (two integer digits then decimals, so
    [p999] is 99.9), [mean], or [max]; limits are cycles with an
    optional [k]/[m]/[g] suffix. *)

type metric = P of float  (** percentile in (0, 100) *) | Mean | Max

type objective = { metric : metric; limit : int }
type rule = { cls : string; objectives : objective list }

type outcome = {
  o_cls : string;
  o_metric : metric;
  o_limit : int;
  o_actual : int option;  (** [None]: the run has no such class *)
  o_pass : bool;
}

val metric_name : metric -> string
val parse : string -> (rule list, string) result

val parse_lines : string list -> (rule list, string) result
(** Multi-line form ([report slo --slo-file]): each line holds one or
    more ';'-joined rules, ['#'] starts a comment, blank lines are
    skipped. On a bad line the error names its 1-based line number. *)

val evaluate :
  rule list -> lookup:(cls:string -> metric -> int option) -> outcome list
(** [lookup] maps a class name and metric to the observed value; a class
    the run never exercised fails its objectives (an SLO on a missing
    operation is a misconfiguration, not a pass). *)

val all_pass : outcome list -> bool
