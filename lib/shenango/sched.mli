(** Shenango-style user-level tasking (discrete-event simulation).

    AIFM sits on Shenango's lightweight green threads: when one task
    blocks on a remote object fetch, the core switches to another in tens
    of nanoseconds, so concurrent requests hide far-memory latency. The
    paper leans on this in two places: AIFM's TCP backend "outperforms
    ... when there is sufficient concurrency" (Section 4.1), and remote
    fetch costs are dwarfed whenever other runnable work exists.

    This module simulates that execution model on a single core with a
    discrete-event scheduler over OCaml effects:

    - {!work} consumes CPU cycles (cores are serial: work from different
      tasks adds up);
    - {!block} releases the core for the duration of an I/O latency
      (blocking overlaps with other tasks' work and with other blocks);
    - {!yield} lets the evacuator-style background tasks interleave.

    The completion time returned by {!run} is therefore
    [max(total work, per-task critical paths)] — exactly the latency
    hiding AIFM exploits. *)

type t

type switch_hooks = {
  save : unit -> int;
  restore : token:int -> queued:int -> unit;
}
(** Context-switch observer (telemetry glue): [save] is called when a
    task leaves the core (block or yield) and returns a token;
    [restore ~token ~queued] is called just before that task resumes,
    with [queued] the cycles it sat runnable waiting for the core. The
    span tracker threads per-request contexts through the scheduler with
    exactly this pair. *)

val create : unit -> t

val set_switch_hooks : t -> switch_hooks option -> unit

val time : t -> int
(** Current core time (also valid outside {!run}, e.g. after it). *)

val spawn : t -> (unit -> unit) -> unit
(** Register a task. Tasks only run inside {!run}. *)

val run : t -> int
(** Execute all tasks to completion; returns the simulated completion
    time in cycles. @raise Failure on a deadlock (never happens with
    work/block/yield only; possible when a {!park}ed task is never
    {!unpark}ed). *)

(** {1 Introspection} — the serving tier's admission controller reads
    these to estimate queueing ahead of a new request. *)

val queue_depth : t -> int
(** Tasks in the run queue (runnable now or sleeping on a block). The
    currently running task is not counted. *)

val runnable_count : t -> int
(** Tasks ready at the current core time but waiting for the core — the
    instantaneous run-queue pressure signal. *)

val parked_count : t -> int
(** Tasks currently parked (idle connection handlers). *)

val unpark : t -> int -> int
(** [unpark t n] wakes up to [n] parked tasks, oldest first; each
    becomes runnable at the current core time. Returns the number
    actually woken. Callable from inside a task or outside the
    scheduler. *)

val unpark_all : t -> int

(** {1 Task-side operations} — must be called from inside a task. *)

val work : int -> unit
(** Consume CPU cycles on the (single) core. *)

val block : int -> unit
(** Block this task for a latency (e.g. a remote fetch): the core is
    released to other runnable tasks. *)

val yield : unit -> unit
(** Cooperative reschedule point (the out-of-scope state AIFM's
    evacuator barrier waits for). *)

val park : unit -> unit
(** Leave the run queue entirely until some other task calls {!unpark}
    (Shenango's thread park): unlike {!block} there is no wake time, so
    thousands of idle connection handlers cost nothing while parked.
    Parked time is {e not} queueing — the switch hooks see [queued = 0]
    plus only the cycles between the unpark and the resume. *)

val try_block : int -> bool
(** {!block} if called from inside a scheduled task, releasing the core
    for the duration; outside any scheduler this is a no-op returning
    [false]. The far-memory transport's stall handler uses this so
    retry backoff and outage waits yield the core instead of spinning
    when tasks are present ({e callable from anywhere}). *)

val now : unit -> int
(** Current simulated time (valid inside a task). *)
