type _ Effect.t +=
  | Work : int -> unit Effect.t
  | Block : int -> unit Effect.t
  | Yield : unit Effect.t
  | Now : int Effect.t
  | Park : unit Effect.t

let work c = Effect.perform (Work c)
let block l = Effect.perform (Block l)
let yield () = Effect.perform Yield
let now () = Effect.perform Now
let park () = Effect.perform Park

(* Block if we are running inside a scheduled task; outside any handler
   (plain single-threaded simulation) report false and do nothing. This
   is what lets the far-memory transport degrade to block-with-yield
   when a scheduler is present without depending on one. *)
let try_block l = try block l; true with Effect.Unhandled _ -> false

(* A runnable continuation becomes ready at [wake_at]; the single core
   executes at [core_time], advancing over Work and jumping forward when
   every task is still blocked. [ctx] is the switch-hook token saved
   when the task left the core. *)
type runnable = {
  wake_at : int;
  seq : int;
  k : (unit, unit) Effect.Deep.continuation option;
  ctx : int option;
}

(* Context-switch hooks (telemetry glue, e.g. span save/restore): [save]
   captures whatever per-task state the observer keeps and returns a
   token; [restore] reinstates it just before the task resumes, with
   [queued] the cycles the task sat runnable waiting for the core. *)
type switch_hooks = {
  save : unit -> int;
  restore : token:int -> queued:int -> unit;
}

(* A parked task left the run queue entirely: it has no wake time and
   only an [unpark] makes it runnable again (Shenango's thread park). *)
type parked = {
  pk : (unit, unit) Effect.Deep.continuation;
  pctx : int option;
}

type t = {
  mutable tasks : (unit -> unit) list;
  mutable queue : runnable list; (* sorted by (wake_at, seq) *)
  mutable parked : parked list; (* FIFO: oldest parker wakes first *)
  mutable core_time : int;
  mutable next_seq : int;
  mutable hooks : switch_hooks option;
}

let create () =
  {
    tasks = [];
    queue = [];
    parked = [];
    core_time = 0;
    next_seq = 0;
    hooks = None;
  }

let set_switch_hooks t h = t.hooks <- h
let time t = t.core_time

let spawn t f = t.tasks <- t.tasks @ [ f ]

let queue_depth t = List.length t.queue
let parked_count t = List.length t.parked

let runnable_count t =
  List.length (List.filter (fun r -> r.wake_at <= t.core_time) t.queue)

let push t r =
  (* insertion keeps (wake_at, seq) order: FIFO among equal wake times *)
  let rec ins = function
    | [] -> [ r ]
    | x :: rest ->
        if (x.wake_at, x.seq) <= (r.wake_at, r.seq) then x :: ins rest
        else r :: x :: rest
  in
  t.queue <- ins t.queue

(* Wake up to [n] parked tasks (oldest first): each becomes runnable at
   the current core time, behind already-runnable tasks with earlier
   sequence numbers. Returns how many were actually woken; callable from
   inside a task (the dispatcher wakes a connection handler per admitted
   request) or outside the scheduler entirely. *)
let unpark t n =
  let rec go woken =
    if woken >= n then woken
    else
      match t.parked with
      | [] -> woken
      | p :: rest ->
          t.parked <- rest;
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          push t
            { wake_at = t.core_time; seq; k = Some p.pk; ctx = p.pctx };
          go (woken + 1)
  in
  go 0

let unpark_all t = unpark t max_int

let run t =
  let open Effect.Deep in
  let enqueue_ready wake_at k =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    (* The task is leaving the core: detach its observer context so the
       next task to run does not inherit its open span/frames. *)
    let ctx = Option.map (fun h -> h.save ()) t.hooks in
    push t { wake_at; seq; k; ctx }
  in
  (* Start a task under the scheduler's handler. *)
  let start f =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Work c ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    t.core_time <- t.core_time + c;
                    continue k ())
            | Block l ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    enqueue_ready (t.core_time + l) (Some k))
            | Yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    enqueue_ready t.core_time (Some k))
            | Park ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let ctx = Option.map (fun h -> h.save ()) t.hooks in
                    t.parked <- t.parked @ [ { pk = k; pctx = ctx } ])
            | Now ->
                Some (fun (k : (a, unit) continuation) -> continue k t.core_time)
            | _ -> None);
      }
  in
  (* Seed: all spawned tasks are ready at time 0, in spawn order. *)
  let pending = ref t.tasks in
  t.tasks <- [];
  List.iter (fun _ -> ()) !pending;
  let rec schedule () =
    match (!pending, t.queue) with
    | f :: rest, _ ->
        pending := rest;
        start f;
        schedule ()
    | [], [] -> ()
    | [], r :: rest ->
        t.queue <- rest;
        if r.wake_at > t.core_time then t.core_time <- r.wake_at;
        (match (t.hooks, r.ctx) with
        | Some h, Some token ->
            (* [queued]: ready at [wake_at] but only scheduled now. *)
            h.restore ~token ~queued:(t.core_time - r.wake_at)
        | _ -> ());
        (match r.k with
        | Some k -> continue k ()
        | None -> ());
        schedule ()
  in
  schedule ();
  (match t.parked with
  | [] -> ()
  | ps ->
      failwith
        (Printf.sprintf
           "Sched.run: deadlock — %d task(s) still parked with no one left \
            to unpark them"
           (List.length ps)));
  t.core_time
