(** Kernel-based far memory baseline (Fastswap, Amaro et al. EuroSys '20).

    The Linux swap subsystem, with pages moved to the memory server by
    one-sided RDMA. Programmer-transparent, but constrained to the
    architected 4 KiB page granularity — the source of the I/O
    amplification the paper measures — and each miss takes the full
    hardware-fault plus kernel path (mapping, cgroups reclaim), which is
    the 34 Kcycle "Fastswap read fault / remote" row of Table 2.

    Faults are synchronous single-page fetches, matching Fastswap's
    design point (its contribution was offloading *reclaim*, not
    readahead); an optional readahead window can be enabled to model
    kernels with swap cluster readahead.

    Pages are tracked for the heap region only: stack and global pages
    are hot in every workload we model and would never be reclaim
    victims. *)

type t

val create :
  ?readahead:int ->
  ?faults:Faults.t ->
  ?cluster:Cluster.t ->
  ?telemetry:Telemetry.Sink.t ->
  Cost_model.t ->
  Clock.t ->
  local_budget:int ->
  t
(** [local_budget] bytes of local DRAM (rounded down to whole pages, with
    a one-page minimum). [readahead] pages are fetched alongside each
    major fault (default 0). [faults] (default {!Faults.disabled})
    attaches a fabric fault injector: page-ins then ride {!Net}'s
    retry/backoff/circuit-breaker machinery — the kernel analogue of a
    swap device that can time out — readahead is suppressed while the
    breaker is open, and reclaim of dirty pages is deferred during
    outages (counter [fastswap.reclaim_deferred]). [cluster] swaps pages
    against the replicated remote tier instead of a single server (keys
    are page base addresses); the reclaim core drives recovery resync.
    [telemetry] receives the transport's retry/outage events. *)

val page_size : int

val net : t -> Net.t
(** The swap device's transport (exposed for tests and telemetry). *)

val access : t -> addr:int -> size:int -> write:bool -> unit
(** Account one program access. Present pages cost nothing beyond the
    program's own access charge; absent pages take a minor fault (first
    touch) or a major fault (swapped out), then LRU-style reclaim runs if
    the budget is exceeded. Accesses spanning a page boundary touch both
    pages. *)

val is_present : t -> addr:int -> bool
val present_pages : t -> int

(** Counters on the shared clock: [fastswap.major_faults],
    [fastswap.minor_faults], [fastswap.evictions],
    [fastswap.writebacks], [fastswap.reclaim_deferred] (fault path
    only). *)
