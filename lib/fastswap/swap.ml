let page_size = Memstore.page_size
let page_bits = 12

(* Per-page state bits. *)
let bit_present = 0x1
let bit_dirty = 0x2
let bit_hot = 0x4
let bit_swapped = 0x8 (* has a remote copy *)

type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  net : Net.t;
  budget_pages : int;
  readahead : int;
  state : (int, int) Hashtbl.t; (* page index -> bits *)
  lru : int Queue.t;
  mutable present : int;
  telemetry : Telemetry.Sink.t;
}

let create ?(readahead = 0) ?(faults = Faults.disabled) ?cluster
    ?(telemetry = Telemetry.Sink.nop) cost clock ~local_budget =
  let net = Net.create ~faults ?cluster cost clock Net.Rdma in
  Telemetry.Sink.attach_net telemetry net;
  (* The kernel swap path has no green threads to yield to, but retry
     backoff and outage waits still release the (simulated) core when a
     scheduler happens to be present. *)
  Net.set_stall_handler net (fun ~cycles ->
      ignore (Shenango.Sched.try_block cycles));
  {
    cost;
    clock;
    net;
    budget_pages = max 1 (local_budget / page_size);
    readahead;
    state = Hashtbl.create 4096;
    lru = Queue.create ();
    present = 0;
    telemetry;
  }

let net t = t.net
let get_state t p = try Hashtbl.find t.state p with Not_found -> 0
let set_state t p s = Hashtbl.replace t.state p s

let is_present t ~addr = get_state t (addr lsr page_bits) land bit_present <> 0
let present_pages t = t.present

(* Second-chance reclaim, the kernel's approximated LRU. With
   [allow_writeback:false] (remote unreachable) dirty pages are skipped:
   their only copy cannot be pushed out, so reclaim degrades to dropping
   clean pages — the same backpressure absorption as the AIFM
   evacuator's. *)
let reclaim_one_with ~allow_writeback t =
  let attempts = ref (2 * Queue.length t.lru) in
  let rec go () =
    if Queue.is_empty t.lru || !attempts = 0 then false
    else begin
      decr attempts;
      let p = Queue.pop t.lru in
      let s = get_state t p in
      if s land bit_present = 0 then go ()
      else if s land bit_hot <> 0 then begin
        set_state t p (s land lnot bit_hot);
        Queue.push p t.lru;
        go ()
      end
      else if (not allow_writeback) && s land bit_dirty <> 0 then begin
        Queue.push p t.lru;
        go ()
      end
      else begin
        if s land bit_dirty <> 0 then begin
          Net.writeback_object t.net ~key:(p lsl page_bits) ~bytes:page_size;
          Clock.count t.clock "fastswap.writebacks" 1
        end;
        set_state t p ((s lor bit_swapped) land lnot (bit_present lor bit_dirty));
        t.present <- t.present - 1;
        Clock.tick t.clock t.cost.Cost_model.evict_page;
        Clock.count t.clock "fastswap.evictions" 1;
        true
      end
    end
  in
  go ()

let reclaim_until_fits t =
  (* Reclaim work is the swap path's eviction stall; transport stalls
     nested inside keep their own retry/failover attribution. *)
  Telemetry.Sink.cat_enter t.telemetry Telemetry.Span.Evict_stall;
  Fun.protect
    ~finally:(fun () -> Telemetry.Sink.cat_exit t.telemetry)
    (fun () ->
      (* The reclaim core doubles as the recovery driver (Fastswap's
         dedicated reclaim CPU): each pass advances re-replication onto
         any recovering remote node. *)
      ignore (Net.resync_step t.net : int);
      let deferred = ref false in
      while (not !deferred) && t.present > t.budget_pages do
        let allow_writeback = Net.remote_available t.net in
        if reclaim_one_with ~allow_writeback t then ()
        else if allow_writeback then
          (* Nothing reclaimable: a kernel would OOM; surface it. *)
          failwith "Fastswap: local memory exhausted with nothing reclaimable"
        else begin
          (* Outage: every reclaimable page is dirty and the writeback
             path is down. Defer — present pages overshoot the budget
             until the remote recovers and the next reclaim drains the
             excess. *)
          Clock.count t.clock "fastswap.reclaim_deferred" 1;
          deferred := true
        end
      done)

(* A write fault maps the PTE dirty immediately (as the kernel does), so
   the map-time reclaim pass already sees the new page as unevictable
   without a writeback. Read faults and readahead map clean. *)
let map_page t p ~hot ~dirty =
  let s = get_state t p in
  set_state t p
    (s lor bit_present
    lor (if hot then bit_hot else 0)
    lor if dirty then bit_dirty else 0);
  t.present <- t.present + 1;
  Queue.push p t.lru;
  reclaim_until_fits t

(* Page faults are the paging analogue of the guard slow path: the
   whole fault (kernel software cost, RDMA read, readahead, map-time
   reclaim) is one slow-path window on the open span. *)
let fault_page t p ~write =
  Telemetry.Sink.cat_enter t.telemetry Telemetry.Span.Guard_slow;
  Fun.protect ~finally:(fun () -> Telemetry.Sink.cat_exit t.telemetry)
  @@ fun () ->
  let s = get_state t p in
  if s land bit_swapped <> 0 then begin
    (* Major fault: kernel software path plus the RDMA page read. *)
    Clock.tick t.clock t.cost.Cost_model.fastswap_fault_base;
    Net.fetch_object t.net ~key:(p lsl page_bits) ~bytes:page_size;
    Clock.count t.clock "fastswap.major_faults" 1;
    map_page t p ~hot:true ~dirty:write;
    (* Optional cluster readahead of subsequent swapped-out pages.
       Suppressed while the breaker is open: speculative traffic is the
       first thing a degraded kernel sheds. *)
    for k = 1 to (if Net.remote_available t.net then t.readahead else 0) do
      let q = p + k in
      let sq = get_state t q in
      if sq land bit_swapped <> 0 && sq land bit_present = 0 then begin
        Net.fetch_object_prefetched t.net ~key:(q lsl page_bits)
          ~bytes:page_size;
        Clock.count t.clock "fastswap.readahead_pages" 1;
        map_page t q ~hot:false ~dirty:false
      end
    done
  end
  else begin
    (* First touch: anonymous page allocation (minor fault). *)
    Clock.tick t.clock t.cost.Cost_model.fastswap_fault_local;
    Clock.count t.clock "fastswap.minor_faults" 1;
    map_page t p ~hot:true ~dirty:write
  end

let touch t p ~write =
  let s = get_state t p in
  if s land bit_present = 0 then fault_page t p ~write;
  let s = get_state t p in
  set_state t p (s lor bit_hot lor if write then bit_dirty else 0)

let access t ~addr ~size ~write =
  let first = addr lsr page_bits in
  let last = (addr + size - 1) lsr page_bits in
  touch t first ~write;
  if last <> first then touch t last ~write
