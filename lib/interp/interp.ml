exception Trap of string

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

type result = { ret : int; cycles : int; instrs_executed : int }

type v = I of int | F of float

let as_int = function I n -> n | F _ -> trap "expected int, got float"
let as_float = function F x -> x | I _ -> trap "expected float, got int"

(* Prepared (array-indexed) function representation for execution speed.
   Call instructions carry a resolution slot: direct calls to defined IR
   functions are bound to their prepared representation once, at prepare
   time, so the hot path never consults the name table again. *)
type pinstr = { pi : Ir.instr; mutable ptarget : pfunc option }

and pblock = {
  plabel : string;
  pinstrs : pinstr array;
  pterm : Ir.terminator;
}

and pfunc = {
  src : Ir.func;
  blocks : pblock array;
  index : (string, int) Hashtbl.t;
}

type state = {
  backend : Backend.t;
  m : Ir.modul;
  prepared : (string, pfunc) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  profile : Profile.t option;
  shadow : Shadow.t option;
      (* when set, a dependent-load depth is threaded beside every value
         and recorded at each access site — the dynamic audit of the
         static shape analysis; None costs one branch per instruction *)
  mutable stack_ptr : int;
  mutable fuel : int;
  mutable instrs : int;
  mutable depth : int;
}

let max_call_depth = 10_000

let global_base = 1 lsl 28
let stack_base = 1 lsl 30

let rec prepare st fname =
  match Hashtbl.find_opt st.prepared fname with
  | Some p -> p
  | None ->
      let f =
        try Ir.find_func st.m fname
        with Not_found -> trap "unknown function %s" fname
      in
      let blocks =
        Array.of_list
          (List.map
             (fun (b : Ir.block) ->
               {
                 plabel = b.label;
                 pinstrs =
                   Array.of_list
                     (List.map (fun i -> { pi = i; ptarget = None }) b.instrs);
                 pterm = b.term;
               })
             f.blocks)
      in
      let index = Hashtbl.create 16 in
      Array.iteri (fun i b -> Hashtbl.replace index b.plabel i) blocks;
      let p = { src = f; blocks; index } in
      (* Publish before resolving call targets so recursion (direct or
         mutual) terminates; each direct callee is prepared at most
         once. *)
      Hashtbl.replace st.prepared fname p;
      Array.iter
        (fun blk ->
          Array.iter
            (fun pin ->
              match pin.pi.Ir.kind with
              | Ir.Call { callee; _ }
                when Intrinsics.classify callee = Intrinsics.Unknown
                     && List.exists
                          (fun (f : Ir.func) -> f.fname = callee)
                          st.m.Ir.funcs ->
                  pin.ptarget <- Some (prepare st callee)
              | _ -> ())
            blk.pinstrs)
        blocks;
      p

let layout_globals st =
  let cursor = ref global_base in
  List.iter
    (fun (name, size) ->
      Hashtbl.replace st.globals name !cursor;
      cursor := !cursor + ((size + 15) land lnot 15))
    (List.rev st.m.Ir.globals)

(* Ticks for non-memory instructions are batched per block for speed. *)

let rec eval st env args = function
  | Ir.Const n -> I n
  | Ir.Constf x -> F x
  | Ir.Reg id -> env.(id)
  | Ir.Arg i -> args.(i)
  | Ir.Sym s -> (
      match Hashtbl.find_opt st.globals s with
      | Some addr -> I addr
      | None -> trap "unknown global %s" s)

and eval_int st env args v = as_int (eval st env args v)
and eval_float st env args v = as_float (eval st env args v)

and exec_binop op a b =
  match (op : Ir.binop) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Sdiv -> if b = 0 then trap "division by zero" else a / b
  | Srem -> if b = 0 then trap "remainder by zero" else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl b
  | Lshr -> a lsr b
  | Ashr -> a asr b

and exec_fbinop op a b =
  match (op : Ir.fbinop) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b

and exec_icmp op a b =
  let c =
    match (op : Ir.cmp) with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if c then 1 else 0

and exec_fcmp op (a : float) (b : float) =
  let c =
    match (op : Ir.cmp) with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if c then 1 else 0

and call_function st ?(dactuals = [||]) fname (actuals : v array) =
  call_prepared st ~dactuals (prepare st fname) actuals

and call_prepared st ?(dactuals = [||]) p (actuals : v array) =
  let f = p.src in
  let fname = f.fname in
  if Array.length actuals <> f.nparams then
    trap "%s expects %d arguments, got %d" fname f.nparams
      (Array.length actuals);
  st.depth <- st.depth + 1;
  if st.depth > max_call_depth then trap "call depth exceeded (recursion?)";
  (* Top-of-stack calls become phase spans in the telemetry trace: the
     entry function and its direct callees are the "interpreter phases"
     (setup, kernels, teardown) without per-helper event blowup. *)
  let tel = st.backend.Backend.telemetry in
  let span_it = st.depth <= 2 && Telemetry.Sink.is_active tel in
  let t0 = if span_it then Telemetry.Sink.timestamp tel else 0 in
  let env = Array.make f.next_id (I 0) in
  let saved_sp = st.stack_ptr in
  let ret = exec_blocks st p env actuals ~dargs:dactuals in
  if span_it then Telemetry.Sink.span tel ~name:fname ~cat:"call" ~start:t0 ();
  st.stack_ptr <- saved_sp;
  st.depth <- st.depth - 1;
  ret

and exec_call st ?(dactuals = [||]) env args callee actual_values =
  (* Non-IR callees produce depth-0 results; an IR callee's returning
     block overwrites this through the shadow's return slot. *)
  (match st.shadow with
  | Some sh -> Shadow.set_ret_depth sh 0
  | None -> ());
  (* libc allocation interface goes through the backend hooks; runtime
     intrinsics through the backend's dispatcher; everything else must be
     an IR function. *)
  let b = st.backend in
  match callee with
  | "malloc" -> I (b.Backend.malloc (as_int actual_values.(0)))
  | "calloc" ->
      I (b.Backend.malloc (as_int actual_values.(0) * as_int actual_values.(1)))
  | "realloc" ->
      I (b.Backend.realloc (as_int actual_values.(0)) (as_int actual_values.(1)))
  | "free" ->
      b.Backend.free (as_int actual_values.(0));
      I 0
  | _ -> begin
      let int_args = Array.map as_int actual_values in
      match b.Backend.intrinsic callee int_args with
      | Some r -> I r
      | None ->
          if String.length callee > 0 && callee.[0] = '!' then
            trap "unknown runtime hook %s" callee
          else begin
            Memsim.Clock.tick b.Backend.clock 5 (* call overhead *);
            call_function st ~dactuals callee actual_values
          end
    end
  [@@warning "-27"]

and exec_blocks st p env args ~dargs =
  let cost = st.backend.Backend.cost in
  let clock = st.backend.Backend.clock in
  let store = st.backend.Backend.store in
  let tel = st.backend.Backend.telemetry in
  let fname = p.src.fname in
  (* Shadow depth environment: one slot per register, mirroring [env].
     Allocated only when the validator is on. *)
  let denv =
    match st.shadow with
    | Some _ -> Array.make p.src.next_id 0
    | None -> [||]
  in
  let dval v =
    match v with
    | Ir.Reg id -> denv.(id)
    | Ir.Arg i -> if i < Array.length dargs then dargs.(i) else 0
    | _ -> 0
  in
  (* Iterative block dispatch: loops run for millions of iterations, so
     branch handling must not grow the OCaml stack. *)
  let ret = ref (I 0) in
  let cur = ref 0 in
  let prev = ref "<entry>" in
  let running = ref true in
  while !running do
    let bidx = !cur in
    let prev_label = !prev in
    let blk = p.blocks.(bidx) in
    (match st.profile with
    | Some prof -> Profile.add_block prof ~func:fname ~block:blk.plabel 1
    | None -> ());
    let n = Array.length blk.pinstrs in
    st.fuel <- st.fuel - (n + 1);
    if st.fuel < 0 then trap "out of fuel (infinite loop?)";
    st.instrs <- st.instrs + n + 1;
    (* Straight-line cost: ALU/branch instructions retire ~4 per cycle on
       the modelled 4-wide core; memory and calls add their own charges
       below. *)
    Memsim.Clock.tick clock ((n + 4) / 4);
    for k = 0 to n - 1 do
      let pin = blk.pinstrs.(k) in
      let i = pin.pi in
      let result =
        match i.kind with
        | Ir.Binop (op, a, b) ->
            I (exec_binop op (eval_int st env args a) (eval_int st env args b))
        | Ir.Fbinop (op, a, b) ->
            F
              (exec_fbinop op (eval_float st env args a)
                 (eval_float st env args b))
        | Ir.Icmp (op, a, b) ->
            I (exec_icmp op (eval_int st env args a) (eval_int st env args b))
        | Ir.Fcmp (op, a, b) ->
            I
              (exec_fcmp op (eval_float st env args a)
                 (eval_float st env args b))
        | Ir.Si_to_fp a -> F (float_of_int (eval_int st env args a))
        | Ir.Fp_to_si a -> I (int_of_float (eval_float st env args a))
        | Ir.Load { ptr; size; is_float } ->
            let addr = eval_int st env args ptr in
            Telemetry.Sink.set_site tel ~func:fname ~instr:i.id;
            st.backend.Backend.on_access ~addr ~size ~write:false;
            Memsim.Clock.tick clock cost.Memsim.Cost_model.local_access;
            if is_float then F (Memsim.Memstore.load_float store ~addr)
            else I (Memsim.Memstore.load store ~addr ~size)
        | Ir.Store { ptr; size; is_float; v } ->
            let addr = eval_int st env args ptr in
            Telemetry.Sink.set_site tel ~func:fname ~instr:i.id;
            st.backend.Backend.on_access ~addr ~size ~write:true;
            Memsim.Clock.tick clock cost.Memsim.Cost_model.local_access;
            (if is_float then
               Memsim.Memstore.store_float store ~addr
                 (eval_float st env args v)
             else
               Memsim.Memstore.store store ~addr ~size
                 (eval_int st env args v));
            I 0
        | Ir.Gep { base; index; scale; offset } ->
            I
              (eval_int st env args base
              + (eval_int st env args index * scale)
              + offset)
        | Ir.Alloca bytes ->
            let addr = st.stack_ptr in
            st.stack_ptr <- st.stack_ptr + ((bytes + 15) land lnot 15);
            I addr
        | Ir.Call { callee; args = call_args } -> (
            let actuals =
              Array.of_list (List.map (eval st env args) call_args)
            in
            (* Guard/chunk intrinsics executed by the runtime are
               attributed to this call site (function + instruction id)
               via the sink — the guard-site hotspot table's key. *)
            Telemetry.Sink.set_site tel ~func:fname ~instr:i.id;
            let dactuals =
              match st.shadow with
              | Some _ -> Array.of_list (List.map dval call_args)
              | None -> [||]
            in
            match pin.ptarget with
            | Some target ->
                (* Direct call to a defined IR function, bound at prepare
                   time: no per-call name-table lookup. *)
                Memsim.Clock.tick clock 5 (* call overhead *);
                call_prepared st ~dactuals target actuals
            | None -> exec_call st ~dactuals env args callee actuals)
        | Ir.Phi incoming -> begin
            match
              List.find_opt (fun (l, _) -> l = prev_label) incoming
            with
            | Some (_, v) -> eval st env args v
            | None -> trap "%s: phi has no arm for predecessor %s" fname
                        prev_label
          end
        | Ir.Select (c, a, b) ->
            if eval_int st env args c <> 0 then eval st env args a
            else eval st env args b
      in
      env.(i.id) <- result;
      (* Shadow depth transfer, mirroring the static chain semantics:
         loads add a hop, gep/add/sub propagate, phi/select take the
         chosen arm, calls carry the callee's return depth. Recorded at
         every access against the address's depth. *)
      match st.shadow with
      | None -> ()
      | Some sh ->
          let d =
            match i.kind with
            | Ir.Load { ptr; is_float; _ } ->
                let pd = dval ptr in
                Shadow.record sh ~func:fname ~instr:i.id ~depth:pd;
                if is_float then 0 else pd + 1
            | Ir.Store { ptr; _ } ->
                Shadow.record sh ~func:fname ~instr:i.id ~depth:(dval ptr);
                0
            | Ir.Gep { base; _ } -> dval base
            | Ir.Binop ((Ir.Add | Ir.Sub), a, b) -> max (dval a) (dval b)
            | Ir.Phi incoming -> (
                match
                  List.find_opt (fun (l, _) -> l = prev_label) incoming
                with
                | Some (_, v) -> dval v
                | None -> 0)
            | Ir.Select (c, a, b) ->
                if eval_int st env args c <> 0 then dval a else dval b
            | Ir.Call _ -> Shadow.ret_depth sh
            | _ -> 0
          in
          denv.(i.id) <- min Shadow.depth_cap d
    done;
    match blk.pterm with
    | Ir.Br l ->
        prev := blk.plabel;
        cur := Hashtbl.find p.index l
    | Ir.Cbr (c, t, e) ->
        let target = if eval_int st env args c <> 0 then t else e in
        prev := blk.plabel;
        cur := Hashtbl.find p.index target
    | Ir.Ret None ->
        (match st.shadow with
        | Some sh -> Shadow.set_ret_depth sh 0
        | None -> ());
        ret := I 0;
        running := false
    | Ir.Ret (Some v) ->
        (match st.shadow with
        | Some sh -> Shadow.set_ret_depth sh (dval v)
        | None -> ());
        ret := eval st env args v;
        running := false
    | Ir.Unreachable -> trap "%s: reached unreachable in %s" fname blk.plabel
  done;
  !ret

let run ?profile ?shadow ?(fuel = 2_000_000_000) ?(args = []) backend m ~entry
    =
  let st =
    {
      backend;
      m;
      prepared = Hashtbl.create 8;
      globals = Hashtbl.create 8;
      profile;
      shadow;
      stack_ptr = stack_base;
      fuel;
      instrs = 0;
      depth = 0;
    }
  in
  layout_globals st;
  let actuals = Array.of_list (List.map (fun n -> I n) args) in
  let ret = call_function st entry actuals in
  {
    ret = as_int ret;
    cycles = Memsim.Clock.cycles backend.Backend.clock;
    instrs_executed = st.instrs;
  }
