(** Dynamic shadow validator for the static shape analysis.

    The interpreter (only — the compiled engine rejects it) threads a
    dependent-load depth next to every value and records, per
    (function, access instruction) site, the execution count and the
    maximum address depth observed, saturated at the shared
    {!Tfm_analysis.Shape.depth_cap}. The transfer rules mirror the
    static chain semantics, so static claims and dynamic observations
    are directly comparable. Shape facts are advice the coverage
    checker never reads; this recorder is what catches a lying shape
    summary — as a misclassification diff, not an unsoundness. *)

val depth_cap : int
(** Equal to {!Tfm_analysis.Shape.depth_cap}. *)

type t

val create : unit -> t

val record : t -> func:string -> instr:int -> depth:int -> unit
(** Called by the interpreter at each Load/Store with the address's
    dynamic chain depth. *)

val stats : t -> func:string -> instr:int -> (int * int) option
(** (execution count, max observed address depth) for a site. *)

type verdict =
  | Confirmed  (** dynamic evidence matches the static claim *)
  | Unchecked
      (** not executed (enough to tell), or the class is unconstrained *)
  | Mismatch of string

val check : t -> func:string -> instr:int -> cls:string -> verdict
(** Compare a site's static class ({!Tfm_analysis.Access_pattern}
    [cls_to_string] name) against the dynamic record: [pointer-chase]
    must have observed depth >= 1 (a single execution is excused — the
    seed hop of a traversal has depth 0), [streaming] must have observed
    depth 0, Mixed/Unknown constrain nothing. *)

val dump : t -> string
(** Deterministic per-site dump (sorted by function, instruction). *)

(**/**)

val ret_depth : t -> int
val set_ret_depth : t -> int -> unit
(** Interpreter internals: depth of the value the innermost returning
    call produced. *)
