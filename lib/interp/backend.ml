type t = {
  name : string;
  store : Memstore.t;
  clock : Clock.t;
  cost : Cost_model.t;
  telemetry : Telemetry.Sink.t;
  malloc : int -> int;
  free : int -> unit;
  realloc : int -> int -> int;
  on_access : addr:int -> size:int -> write:bool -> unit;
  intrinsic : string -> int array -> int option;
}

let heap_base = 1 lsl 44

(* The canonical do-nothing access hook. Backends that charge every
   access at local cost use this shared closure, so engines can detect
   it by physical equality and compile the hook call away entirely. *)
let no_access ~addr:_ ~size:_ ~write:_ = ()

let plain_alloc_cost = 60

let base_intrinsics ?(telemetry = Telemetry.Sink.nop) clock name
    (args : int array) =
  match name with
  | "!tfm_init" -> Some 0 (* runtime already initialized host-side *)
  | "!bench_begin" ->
      (* Start of the measured region: discard setup-phase cycles and
         counters (memory-system state stays warm). The telemetry trace
         timestamp stays monotone across the reset. *)
      Telemetry.Sink.phase_mark telemetry "bench_begin";
      Telemetry.Sink.note_reset telemetry;
      Memsim.Clock.reset clock;
      Some 0
  | "!cpu_work" ->
      (* Fixed CPU-only work (request parsing, protocol handling, ...):
         charged directly rather than interpreted instruction by
         instruction. Never touches remotable memory. *)
      Memsim.Clock.tick clock args.(0);
      Some 0
  | "!op_begin" ->
      (* Span boundary: one operation of class args.(0) starts here.
         Free of simulated cycles — tracing must not perturb timing. *)
      Telemetry.Sink.op_begin telemetry ~cls:args.(0);
      Some 0
  | "!op_end" ->
      Telemetry.Sink.op_end telemetry;
      Some 0
  | _ -> None

let local ?(telemetry = Telemetry.Sink.nop) cost clock store =
  let alloc = Aifm.Region_alloc.create ~base:heap_base in
  {
    name = "local";
    store;
    clock;
    cost;
    telemetry;
    malloc =
      (fun n ->
        Clock.tick clock plain_alloc_cost;
        Aifm.Region_alloc.alloc alloc (max 1 n));
    free =
      (fun p ->
        Clock.tick clock plain_alloc_cost;
        Aifm.Region_alloc.free alloc p);
    realloc =
      (fun p n ->
        if p = 0 then Aifm.Region_alloc.alloc alloc (max 1 n)
        else begin
          let old_req = Aifm.Region_alloc.requested_size_of alloc p in
          let cls = Aifm.Region_alloc.size_of alloc p in
          if n <= cls then p
          else begin
            let fresh = Aifm.Region_alloc.alloc alloc n in
            Memstore.blit store ~src:p ~dst:fresh ~len:(min old_req n);
            Aifm.Region_alloc.free alloc p;
            fresh
          end
        end);
    on_access = no_access;
    intrinsic = (fun name args -> base_intrinsics ~telemetry clock name args);
  }

let fastswap ?readahead ?faults ?cluster ?(telemetry = Telemetry.Sink.nop)
    cost clock store ~local_budget =
  let alloc = Aifm.Region_alloc.create ~base:heap_base in
  let swap =
    Fastswap.Swap.create ?readahead ?faults ?cluster ~telemetry cost clock
      ~local_budget
  in
  {
    name = "fastswap";
    store;
    clock;
    cost;
    telemetry;
    malloc =
      (fun n ->
        Clock.tick clock plain_alloc_cost;
        Aifm.Region_alloc.alloc alloc (max 1 n));
    free =
      (fun p ->
        Clock.tick clock plain_alloc_cost;
        Aifm.Region_alloc.free alloc p);
    realloc =
      (fun p n ->
        if p = 0 then Aifm.Region_alloc.alloc alloc (max 1 n)
        else begin
          let old_req = Aifm.Region_alloc.requested_size_of alloc p in
          let cls = Aifm.Region_alloc.size_of alloc p in
          if n <= cls then p
          else begin
            let fresh = Aifm.Region_alloc.alloc alloc n in
            Memstore.blit store ~src:p ~dst:fresh ~len:(min old_req n);
            Aifm.Region_alloc.free alloc p;
            fresh
          end
        end);
    on_access =
      (fun ~addr ~size ~write ->
        if addr >= heap_base then Fastswap.Swap.access swap ~addr ~size ~write);
    intrinsic = (fun name args -> base_intrinsics ~telemetry clock name args);
  }

let trackfm rt store =
  let module R = Trackfm.Runtime in
  let clock = R.clock rt in
  let untransformed name =
    failwith
      (Printf.sprintf
         "trackfm backend: untransformed libc call %s reached the runtime \
          (libc pass missing?)"
         name)
  in
  (* The runtime-initialization pass must have inserted the !tfm_init hook
     before any TrackFM call executes, exactly as a real binary would
     crash without runtime setup. *)
  let initialized = ref false in
  let require_init name =
    if not !initialized then
      failwith
        (Printf.sprintf
           "trackfm backend: %s before !tfm_init (runtime-initialization \
            pass missing?)"
           name)
  in
  {
    name = "trackfm";
    store;
    clock;
    cost = R.cost rt;
    telemetry = R.telemetry rt;
    malloc = (fun _ -> untransformed "malloc");
    free = (fun _ -> untransformed "free");
    realloc = (fun _ _ -> untransformed "realloc");
    on_access = no_access;
    intrinsic =
      (fun name args ->
        match name with
        | "!tfm_init" ->
            initialized := true;
            Some 0
        | "!bench_begin" | "!cpu_work" | "!op_begin" | "!op_end" ->
            base_intrinsics ~telemetry:(R.telemetry rt) clock name args
        | "tfm_malloc" ->
            require_init name;
            Some (R.tfm_malloc rt args.(0))
        | "tfm_calloc" ->
            require_init name;
            Some (R.tfm_calloc rt args.(0) args.(1))
        | "tfm_realloc" -> Some (R.tfm_realloc rt args.(0) args.(1))
        | "tfm_free" ->
            R.tfm_free rt args.(0);
            Some 0
        | "tfm_guard_read" ->
            R.guard rt ~ptr:args.(0) ~size:args.(1) ~write:false;
            Some args.(0)
        | "tfm_guard_write" ->
            R.guard rt ~ptr:args.(0) ~size:args.(1) ~write:true;
            Some args.(0)
        | "tfm_page_read" ->
            require_init name;
            R.page_access rt ~ptr:args.(0) ~size:args.(1) ~write:false;
            Some args.(0)
        | "tfm_page_write" ->
            require_init name;
            R.page_access rt ~ptr:args.(0) ~size:args.(1) ~write:true;
            Some args.(0)
        | "!tfm_chunk_init" ->
            R.chunk_init rt ~handle:args.(0) ~stride_bytes:args.(1);
            Some 0
        | "tfm_chunk_access_read" ->
            R.chunk_access rt ~handle:args.(0) ~ptr:args.(1) ~size:args.(2)
              ~write:false;
            Some args.(1)
        | "tfm_chunk_access_write" ->
            R.chunk_access rt ~handle:args.(0) ~ptr:args.(1) ~size:args.(2)
              ~write:true;
            Some args.(1)
        | "!tfm_chunk_end" ->
            R.chunk_end rt ~handle:args.(0);
            Some 0
        | _ -> None);
  }
