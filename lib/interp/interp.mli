(** IR interpreter.

    Executes a module against a {!Backend.t}, charging simulated cycles:
    one cycle per ALU/branch instruction, the backend's local-access cost
    per load/store, plus whatever the backend's allocation hooks and
    runtime intrinsics charge (guards, faults, network transfers).

    The interpreter computes real values — stores actually write the
    memstore, so workloads can assert functional results, which is how
    the test suite proves the transformation passes preserve program
    semantics. *)

exception Trap of string
(** Ill-typed operand, unknown callee, division by zero, out-of-fuel. *)

type result = {
  ret : int;               (** [main]'s return value (0 if [ret void]) *)
  cycles : int;            (** final simulated clock *)
  instrs_executed : int;
}

val run :
  ?profile:Profile.t ->
  ?shadow:Shadow.t ->
  ?fuel:int ->
  ?args:int list ->
  Backend.t ->
  Ir.modul ->
  entry:string ->
  result
(** [run backend m ~entry] executes [entry] (typically ["main"]).
    [profile] accumulates block execution counts for the chunking gate.
    [shadow] records per-site dependent-load depths (the shape
    analysis's dynamic audit). [fuel] bounds total executed instructions
    (default 2_000_000_000). *)
