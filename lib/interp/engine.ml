(* Execution-engine selection: the tree-walking interpreter (reference
   semantics, the differential oracle) or the compiled closure engine
   (same observable behaviour, ~an order of magnitude faster dispatch).
   The interpreter stays the default so every existing entry point and
   golden file keeps its meaning; callers opt into [Compiled]. *)

type t = Interp | Compiled

let all = [ Interp; Compiled ]
let to_string = function Interp -> "interp" | Compiled -> "compiled"

let of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | _ -> None

let run ?profile ?fuel ?args ~engine backend m ~entry =
  match engine with
  | Interp -> Interp.run ?profile ?fuel ?args backend m ~entry
  | Compiled -> Compile.run ?profile ?fuel ?args backend m ~entry
