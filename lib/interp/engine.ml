(* Execution-engine selection: the tree-walking interpreter (reference
   semantics, the differential oracle) or the compiled closure engine
   (same observable behaviour, ~an order of magnitude faster dispatch).
   The interpreter stays the default so every existing entry point and
   golden file keeps its meaning; callers opt into [Compiled]. *)

type t = Interp | Compiled

let all = [ Interp; Compiled ]
let to_string = function Interp -> "interp" | Compiled -> "compiled"

let of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | _ -> None

let run ?profile ?shadow ?fuel ?args ~engine backend m ~entry =
  match engine with
  | Interp -> Interp.run ?profile ?shadow ?fuel ?args backend m ~entry
  | Compiled -> (
      match shadow with
      | Some _ ->
          (* The shadow depth plane is a reference-semantics audit; the
             compiled engine deliberately does not carry it. *)
          invalid_arg "Engine.run: the shadow validator requires --engine interp"
      | None -> Compile.run ?profile ?fuel ?args backend m ~entry)
