(* Dynamic shadow validator for the static shape analysis.

   When enabled, the interpreter threads a parallel "depth" value next
   to every integer value: how many dependent loads fed this value's
   computation. The transfer rules deliberately mirror the static chain
   semantics ({!Tfm_analysis.Shape.value_depth} /
   {!Tfm_analysis.Access_pattern}): a non-float load is one hop past its
   address's depth, gep/add/sub propagate, phi/select take the chosen
   arm, calls carry the callee's return depth back — so a static claim
   and a dynamic observation are directly comparable numbers. At every
   Load/Store the address's depth is recorded per (function, instruction
   id) site, saturated at the shared {!Tfm_analysis.Shape.depth_cap}.

   This is the audit half of the shape bargain: shape facts are advice
   the checker never reads, so a lying summary cannot break soundness —
   but it can misroute, and the misroute shows up here as a
   Pointer_chase site whose observed max depth is zero (or a Streaming
   site whose address turns out to chain through loads). CI runs the
   diff under a fixed seed; tests tamper summaries and watch it fire. *)

let depth_cap = Shape.depth_cap

type t = {
  sites : (string * int, int * int) Hashtbl.t;
      (* (func, access instr id) -> (execution count, max addr depth) *)
  mutable ret_depth : int;
      (* depth of the value the innermost returning call produced *)
}

let create () = { sites = Hashtbl.create 64; ret_depth = 0 }

let record t ~func ~instr ~depth =
  let depth = min depth_cap depth in
  match Hashtbl.find_opt t.sites (func, instr) with
  | Some (n, d) -> Hashtbl.replace t.sites (func, instr) (n + 1, max d depth)
  | None -> Hashtbl.replace t.sites (func, instr) (1, depth)

let stats t ~func ~instr = Hashtbl.find_opt t.sites (func, instr)
let ret_depth t = t.ret_depth
let set_ret_depth t d = t.ret_depth <- min depth_cap d

type verdict =
  | Confirmed  (* dynamic evidence matches the static claim *)
  | Unchecked  (* not executed (enough), or the class is unconstrained *)
  | Mismatch of string

(* Compare a site's static class against its dynamic record. Classes are
   the {!Tfm_analysis.Access_pattern.cls_to_string} names so the CLI and
   tests share one comparator without a type dependency cycle.

   A Pointer_chase site executed exactly once gets a pass on depth 0:
   the first step of a phi-merged traversal dereferences the seed
   pointer (depth 0); the chain only becomes observable from the second
   step on. Mixed/Unknown claims constrain nothing. *)
let check t ~func ~instr ~cls =
  match stats t ~func ~instr with
  | None -> Unchecked
  | Some (count, maxd) -> (
      match cls with
      | "pointer-chase" ->
          if maxd >= 1 then Confirmed
          else if count < 2 then Unchecked
          else
            Mismatch
              (Printf.sprintf
                 "static pointer-chase but %d execution(s) all at depth 0"
                 count)
      | "streaming" ->
          if maxd = 0 then Confirmed
          else
            Mismatch
              (Printf.sprintf
                 "static streaming but observed address depth %d" maxd)
      | _ -> Unchecked)

(* Deterministic dump: one line per recorded site, sorted by function
   then instruction id. *)
let dump t =
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sites []
    |> List.sort compare
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "shadow depths: %d site(s), cap %d\n" (List.length rows)
       depth_cap);
  List.iter
    (fun ((func, instr), (n, d)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %%%-4d count=%-8d maxdepth=%d\n" func instr n d))
    rows;
  Buffer.contents buf
