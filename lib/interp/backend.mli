(** Memory-system backends for the interpreter.

    A backend decides what every allocation and memory access costs and
    which runtime intrinsics exist. Three configurations mirror the
    paper's systems:

    - {!local}: everything in local DRAM — the "local-only" baseline the
      application figures normalize against;
    - {!fastswap}: unmodified programs over kernel paging;
    - {!trackfm}: TrackFM-transformed programs — plain accesses are
      local-cost; the injected [tfm_*] intrinsic calls drive the TrackFM
      runtime (and an untransformed libc [malloc] reaching this backend
      is reported as a compiler bug rather than silently tolerated). *)

type t = {
  name : string;
  store : Memstore.t;
  clock : Clock.t;
  cost : Cost_model.t;
  telemetry : Telemetry.Sink.t;
      (** The interpreter tags this sink with the IR site of each
          load/store/call before executing it, and emits phase marks and
          top-level call spans into it. {!Telemetry.Sink.nop} unless the
          caller opted into recording; never affects simulated cycles. *)
  malloc : int -> int;
  free : int -> unit;
  realloc : int -> int -> int;
  on_access : addr:int -> size:int -> write:bool -> unit;
  intrinsic : string -> int array -> int option;
      (** Handle a runtime call; [None] means unknown intrinsic. *)
}

val local :
  ?telemetry:Telemetry.Sink.t -> Cost_model.t -> Clock.t -> Memstore.t -> t

val fastswap :
  ?readahead:int ->
  ?faults:Memsim.Faults.t ->
  ?cluster:Memsim.Cluster.t ->
  ?telemetry:Telemetry.Sink.t ->
  Cost_model.t ->
  Clock.t ->
  Memstore.t ->
  local_budget:int ->
  t
(** [faults] (default {!Memsim.Faults.disabled}) attaches a fabric fault
    injector to the swap transport; page-ins then retry with backoff and
    respect the circuit breaker. [cluster] swaps pages against the
    replicated remote tier. *)

val trackfm : Trackfm.Runtime.t -> Memstore.t -> t
(** Wraps an existing TrackFM runtime (whose clock/cost/telemetry sink
    the result shares). *)

val heap_base : int
(** Base address of the untracked (local/fastswap) heap segment. *)

val no_access : addr:int -> size:int -> write:bool -> unit
(** The canonical do-nothing [on_access] hook, shared by the backends
    that charge every access at local cost ({!local}, {!trackfm}).
    Compiled engines compare against it by physical equality to elide
    the per-access hook call. *)
