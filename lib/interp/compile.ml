(* Compiled closure-based execution engine.

   The tree-walking interpreter ({!Interp}) re-dispatches on instruction
   and operand variants for every executed instruction. This engine does
   all of that dispatch once, at module-compile time: each IR function is
   lowered to OCaml closures with

   - SSA operand slots resolved to unboxed array indices (a per-function
     int/float type assignment splits the register file into an [int
     array] and a [float array], so the hot loop neither allocates nor
     pattern-matches boxed values);
   - binop/cmp/conversion cases selected per site (one specialized
     closure per instruction instead of a [match] per execution);
   - global symbols resolved to their laid-out addresses;
   - callee names resolved per call site: libc allocation hooks, direct
     IR calls (bound to the callee's compiled body), or the backend's
     intrinsic dispatcher — the runtime never re-classifies a name;
   - per-site one-entry page caches for 8-byte loads/stores, skipping
     the memstore hash lookup on page-local streaks.

   Blocks become closures driven by an iterative trampoline (loops must
   not grow the OCaml stack), exactly like the interpreter's iterative
   block dispatch. Everything observable is kept bit-identical to the
   interpreter: the same clock ticks in the same order (straight-line
   batching, local-access charges, call overhead), the same backend
   hooks ([on_access], allocation, intrinsics — hence the same guard,
   fault, Shenango-yield and span behaviour), the same telemetry site
   attribution, the same fuel and instruction accounting. CI and the
   test suite enforce that equivalence differentially, which is why the
   interpreter stays around as the oracle.

   The type assignment is conservative: any slot or operand whose
   static type disagrees with its use compiles to a closure that raises
   the same {!Interp.Trap} the interpreter would raise when that
   instruction executes — well-typed programs never reach those. *)

let trap fmt = Format.kasprintf (fun s -> raise (Interp.Trap s)) fmt

(* Test-only fault injection: when set, [Add] miscompiles (off-by-one).
   The differential oracle in the test suite flips this to prove a
   miscompiled closure cannot survive the interp/compiled diff. *)
let test_miscompile = ref false

let max_call_depth = 10_000
let global_base = 1 lsl 28
let stack_base = 1 lsl 30

type ty = TInt | TFloat

(* Per-call activation record. [prev] is the index of the block that
   branched here (-1 in the entry block) — phi arms are resolved to a
   predecessor-indexed array at compile time. *)
type frame = {
  ienv : int array;
  fenv : float array;
  iargs : int array;
  fargs : float array;
  mutable prev : int;
}

type state = {
  mutable fuel : int;
  mutable instrs : int;
  mutable depth : int;
  mutable stack_ptr : int;
  (* Return-value slots, written by the callee's [Ret] terminator and
     read by the caller immediately after the trampoline exits. *)
  mutable iret : int;
  mutable fret : float;
}

type cblock = {
  cb_label : string;
  cb_step : frame -> int;
      (* the block body fused with its terminator: runs every instruction
         closure, then returns the next block index (-1 = return) *)
  cb_cost : int; (* instruction-count units per execution: n + 1 *)
  cb_tick : int; (* straight-line cycles per execution: (n + 4) / 4 *)
}

type cfunc = {
  cf_src : Ir.func;
  cf_params : ty array; (* mutated during inference, read at compile *)
  mutable cf_ret : ty;
  mutable cf_has_floats : bool; (* any float-typed register slot *)
  mutable cf_blocks : cblock array;
}

type ctx = {
  st : state;
  backend : Backend.t;
  m : Ir.modul;
  globals : (string, int) Hashtbl.t;
  cfuncs : (string, cfunc) Hashtbl.t;
  reg_tys : (string, ty array) Hashtbl.t;
  profile : Profile.t option;
}

let layout_globals ctx =
  let cursor = ref global_base in
  List.iter
    (fun (name, size) ->
      Hashtbl.replace ctx.globals name !cursor;
      cursor := !cursor + ((size + 15) land lnot 15))
    (List.rev ctx.m.Ir.globals)

(* Mirrors the interpreter's callee dispatch: only names the intrinsic
   table knows nothing about resolve to defined IR functions. *)
let is_direct_call ctx callee =
  Intrinsics.classify callee = Intrinsics.Unknown
  && Hashtbl.mem ctx.cfuncs callee

(* -- static int/float type assignment ------------------------------------

   Monotone fixpoint over the module: every slot starts [TInt] and is
   promoted to [TFloat] on evidence (float-producing instructions, float
   phi/select arms, float returns and float actuals flowing into
   parameters). Promotion-only, so it terminates. *)

let value_ty ctx (f : Ir.func) rtys = function
  | Ir.Const _ | Ir.Sym _ -> TInt
  | Ir.Constf _ -> TFloat
  | Ir.Reg id -> rtys.(id)
  | Ir.Arg i ->
      let params = (Hashtbl.find ctx.cfuncs f.Ir.fname).cf_params in
      if i >= 0 && i < Array.length params then params.(i) else TInt

let infer_types ctx =
  let changed = ref true in
  let promote_reg rtys id =
    if rtys.(id) = TInt then begin
      rtys.(id) <- TFloat;
      changed := true
    end
  in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ir.func) ->
        let cf = Hashtbl.find ctx.cfuncs f.fname in
        let rtys = Hashtbl.find ctx.reg_tys f.fname in
        let vt = value_ty ctx f rtys in
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun (i : Ir.instr) ->
                match i.kind with
                | Ir.Fbinop _ | Ir.Si_to_fp _ -> promote_reg rtys i.id
                | Ir.Load { is_float = true; _ } -> promote_reg rtys i.id
                | Ir.Phi incoming ->
                    if List.exists (fun (_, v) -> vt v = TFloat) incoming
                    then promote_reg rtys i.id
                | Ir.Select (_, a, b) ->
                    if vt a = TFloat || vt b = TFloat then
                      promote_reg rtys i.id
                | Ir.Call { callee; args } when is_direct_call ctx callee ->
                    let target = Hashtbl.find ctx.cfuncs callee in
                    List.iteri
                      (fun j a ->
                        if
                          j < Array.length target.cf_params
                          && vt a = TFloat
                          && target.cf_params.(j) = TInt
                        then begin
                          target.cf_params.(j) <- TFloat;
                          changed := true
                        end)
                      args;
                    if target.cf_ret = TFloat then promote_reg rtys i.id
                | _ -> ())
              b.instrs;
            match b.term with
            | Ir.Ret (Some v) ->
                if vt v = TFloat && cf.cf_ret = TInt then begin
                  cf.cf_ret <- TFloat;
                  changed := true
                end
            | _ -> ())
          f.blocks)
      ctx.m.Ir.funcs
  done;
  List.iter
    (fun (f : Ir.func) ->
      let cf = Hashtbl.find ctx.cfuncs f.fname in
      let rtys = Hashtbl.find ctx.reg_tys f.fname in
      cf.cf_has_floats <- Array.exists (fun t -> t = TFloat) rtys)
    ctx.m.Ir.funcs

(* -- operand readers -----------------------------------------------------

   Every operand first compiles to a *shape*. The hot shapes — constant,
   register slot, argument slot — are exposed as data so the instruction
   compilers below can fuse the read straight into the instruction
   closure (a direct array index instead of a nested closure call on the
   execution path). [IFn]/[FFn] is the general fallback and carries the
   type-mismatch traps, unknown globals, and out-of-range argument
   indices; [iread]/[fread] convert any shape back into a plain reader
   for the cold consumers. *)

type ishape =
  | IConst of int
  | ISlot of int (* fr.ienv.(i) *)
  | IArg of int (* fr.iargs.(i) *)
  | IFn of (frame -> int)

type fshape =
  | FConst of float
  | FSlot of int (* fr.fenv.(i) *)
  | FArg of int (* fr.fargs.(i) *)
  | FFn of (frame -> float)

let int_trap : frame -> int = fun _ -> trap "expected int, got float"
let float_trap : frame -> float = fun _ -> trap "expected float, got int"

let ishape ctx (f : Ir.func) rtys v : ishape =
  match v with
  | Ir.Const n -> IConst n
  | Ir.Constf _ -> IFn int_trap
  | Ir.Reg id -> if rtys.(id) = TInt then ISlot id else IFn int_trap
  | Ir.Arg i ->
      let params = (Hashtbl.find ctx.cfuncs f.fname).cf_params in
      if i < 0 || i >= Array.length params then IFn (fun fr -> fr.iargs.(i))
      else if params.(i) = TInt then IArg i
      else IFn int_trap
  | Ir.Sym s -> (
      match Hashtbl.find_opt ctx.globals s with
      | Some addr -> IConst addr
      | None -> IFn (fun _ -> trap "unknown global %s" s))

let fshape ctx (f : Ir.func) rtys v : fshape =
  match v with
  | Ir.Constf x -> FConst x
  | Ir.Const _ | Ir.Sym _ -> FFn float_trap
  | Ir.Reg id -> if rtys.(id) = TFloat then FSlot id else FFn float_trap
  | Ir.Arg i ->
      let params = (Hashtbl.find ctx.cfuncs f.fname).cf_params in
      if i < 0 || i >= Array.length params then FFn (fun fr -> fr.fargs.(i))
      else if params.(i) = TFloat then FArg i
      else FFn float_trap

let iread : ishape -> frame -> int = function
  | IConst n -> fun _ -> n
  | ISlot i -> fun fr -> Array.unsafe_get fr.ienv i
  | IArg i -> fun fr -> Array.unsafe_get fr.iargs i
  | IFn g -> g

let fread : fshape -> frame -> float = function
  | FConst x -> fun _ -> x
  | FSlot i -> fun fr -> Array.unsafe_get fr.fenv i
  | FArg i -> fun fr -> Array.unsafe_get fr.fargs i
  | FFn g -> g

let compile_int ctx f rtys v = iread (ishape ctx f rtys v)
let compile_float ctx f rtys v = fread (fshape ctx f rtys v)

(* -- fused arithmetic and comparison closures ----------------------------

   Without flambda, a generic [lift2 op sa sb] would keep the operator
   an indirect call per executed instruction, so the hot operators are
   monomorphized by hand: for each one, the dominant shape pairs get a
   closure that reads both operands inline (pure loads and ALU ops, no
   nested calls, no float boxing). Rare shapes fall back to reader
   closures — same behaviour, one extra call. The divisions stay on the
   fallback path; they trap on zero divisors anyway. *)

let compile_binop op sa sb id : frame -> unit =
  let gen op2 =
    let a = iread sa and b = iread sb in
    fun fr -> Array.unsafe_set fr.ienv id (op2 (a fr) (b fr))
  in
  match (op, sa, sb) with
  | Ir.Add, _, _ when !test_miscompile ->
      (* Deliberate off-by-one so the differential oracle has something
         to catch; see [test_miscompile]. *)
      gen (fun a b -> a + b + 1)
  | Ir.Add, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i + Array.unsafe_get fr.ienv j)
  | Ir.Add, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i + c)
  | Ir.Add, IConst c, ISlot j ->
      fun fr -> Array.unsafe_set fr.ienv id (c + Array.unsafe_get fr.ienv j)
  | Ir.Add, ISlot i, IArg j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i + Array.unsafe_get fr.iargs j)
  | Ir.Add, _, _ -> gen ( + )
  | Ir.Sub, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i - Array.unsafe_get fr.ienv j)
  | Ir.Sub, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i - c)
  | Ir.Sub, IConst c, ISlot j ->
      fun fr -> Array.unsafe_set fr.ienv id (c - Array.unsafe_get fr.ienv j)
  | Ir.Sub, _, _ -> gen ( - )
  | Ir.Mul, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i * Array.unsafe_get fr.ienv j)
  | Ir.Mul, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i * c)
  | Ir.Mul, IConst c, ISlot j ->
      fun fr -> Array.unsafe_set fr.ienv id (c * Array.unsafe_get fr.ienv j)
  | Ir.Mul, _, _ -> gen ( * )
  | Ir.And, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i land Array.unsafe_get fr.ienv j)
  | Ir.And, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i land c)
  | Ir.And, _, _ -> gen ( land )
  | Ir.Or, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i lor Array.unsafe_get fr.ienv j)
  | Ir.Or, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i lor c)
  | Ir.Or, _, _ -> gen ( lor )
  | Ir.Xor, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i lxor Array.unsafe_get fr.ienv j)
  | Ir.Xor, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i lxor c)
  | Ir.Xor, _, _ -> gen ( lxor )
  | Ir.Shl, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i lsl c)
  | Ir.Shl, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i lsl Array.unsafe_get fr.ienv j)
  | Ir.Shl, _, _ -> gen ( lsl )
  | Ir.Lshr, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i lsr c)
  | Ir.Lshr, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i lsr Array.unsafe_get fr.ienv j)
  | Ir.Lshr, _, _ -> gen ( lsr )
  | Ir.Ashr, ISlot i, IConst c ->
      fun fr -> Array.unsafe_set fr.ienv id (Array.unsafe_get fr.ienv i asr c)
  | Ir.Ashr, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (Array.unsafe_get fr.ienv i asr Array.unsafe_get fr.ienv j)
  | Ir.Ashr, _, _ -> gen ( asr )
  | Ir.Sdiv, _, _ ->
      let a = iread sa and b = iread sb in
      fun fr ->
        let x = a fr and y = b fr in
        if y = 0 then trap "division by zero"
        else Array.unsafe_set fr.ienv id (x / y)
  | Ir.Srem, _, _ ->
      let a = iread sa and b = iread sb in
      fun fr ->
        let x = a fr and y = b fr in
        if y = 0 then trap "remainder by zero"
        else Array.unsafe_set fr.ienv id (x mod y)

let compile_icmp op sa sb id : frame -> unit =
  let gen cmp =
    let a = iread sa and b = iread sb in
    fun fr -> Array.unsafe_set fr.ienv id (if cmp (a fr) (b fr) then 1 else 0)
  in
  match (op, sa, sb) with
  | Ir.Eq, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i = Array.unsafe_get fr.ienv j then 1
           else 0)
  | Ir.Eq, ISlot i, IConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i = c then 1 else 0)
  | Ir.Eq, _, _ -> gen ( = )
  | Ir.Ne, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i <> Array.unsafe_get fr.ienv j then 1
           else 0)
  | Ir.Ne, ISlot i, IConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i <> c then 1 else 0)
  | Ir.Ne, _, _ -> gen ( <> )
  | Ir.Lt, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i < Array.unsafe_get fr.ienv j then 1
           else 0)
  | Ir.Lt, ISlot i, IConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i < c then 1 else 0)
  | Ir.Lt, ISlot i, IArg j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i < Array.unsafe_get fr.iargs j then 1
           else 0)
  | Ir.Lt, _, _ -> gen ( < )
  | Ir.Le, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i <= Array.unsafe_get fr.ienv j then 1
           else 0)
  | Ir.Le, ISlot i, IConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i <= c then 1 else 0)
  | Ir.Le, _, _ -> gen ( <= )
  | Ir.Gt, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i > Array.unsafe_get fr.ienv j then 1
           else 0)
  | Ir.Gt, ISlot i, IConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i > c then 1 else 0)
  | Ir.Gt, _, _ -> gen ( > )
  | Ir.Ge, ISlot i, ISlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i >= Array.unsafe_get fr.ienv j then 1
           else 0)
  | Ir.Ge, ISlot i, IConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.ienv i >= c then 1 else 0)
  | Ir.Ge, _, _ -> gen ( >= )

let compile_fbinop op sa sb id : frame -> unit =
  let gen op2 =
    let a = fread sa and b = fread sb in
    fun fr -> Array.unsafe_set fr.fenv id (op2 (a fr) (b fr))
  in
  match (op, sa, sb) with
  | Ir.Fadd, FSlot i, FSlot j ->
      fun fr ->
        Array.unsafe_set fr.fenv id
          (Array.unsafe_get fr.fenv i +. Array.unsafe_get fr.fenv j)
  | Ir.Fadd, FSlot i, FConst c ->
      fun fr -> Array.unsafe_set fr.fenv id (Array.unsafe_get fr.fenv i +. c)
  | Ir.Fadd, _, _ -> gen ( +. )
  | Ir.Fsub, FSlot i, FSlot j ->
      fun fr ->
        Array.unsafe_set fr.fenv id
          (Array.unsafe_get fr.fenv i -. Array.unsafe_get fr.fenv j)
  | Ir.Fsub, FSlot i, FConst c ->
      fun fr -> Array.unsafe_set fr.fenv id (Array.unsafe_get fr.fenv i -. c)
  | Ir.Fsub, _, _ -> gen ( -. )
  | Ir.Fmul, FSlot i, FSlot j ->
      fun fr ->
        Array.unsafe_set fr.fenv id
          (Array.unsafe_get fr.fenv i *. Array.unsafe_get fr.fenv j)
  | Ir.Fmul, FSlot i, FConst c ->
      fun fr -> Array.unsafe_set fr.fenv id (Array.unsafe_get fr.fenv i *. c)
  | Ir.Fmul, _, _ -> gen ( *. )
  | Ir.Fdiv, FSlot i, FSlot j ->
      fun fr ->
        Array.unsafe_set fr.fenv id
          (Array.unsafe_get fr.fenv i /. Array.unsafe_get fr.fenv j)
  | Ir.Fdiv, FSlot i, FConst c ->
      fun fr -> Array.unsafe_set fr.fenv id (Array.unsafe_get fr.fenv i /. c)
  | Ir.Fdiv, _, _ -> gen ( /. )

let compile_fcmp op sa sb id : frame -> unit =
  let gen cmp =
    let a = fread sa and b = fread sb in
    fun fr -> Array.unsafe_set fr.ienv id (if cmp (a fr) (b fr) then 1 else 0)
  in
  match (op, sa, sb) with
  | Ir.Lt, FSlot i, FSlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.fenv i < Array.unsafe_get fr.fenv j then 1
           else 0)
  | Ir.Lt, FSlot i, FConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.fenv i < c then 1 else 0)
  | Ir.Lt, _, _ -> gen ( < )
  | Ir.Le, _, _ -> gen ( <= )
  | Ir.Gt, FSlot i, FSlot j ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.fenv i > Array.unsafe_get fr.fenv j then 1
           else 0)
  | Ir.Gt, FSlot i, FConst c ->
      fun fr ->
        Array.unsafe_set fr.ienv id
          (if Array.unsafe_get fr.fenv i > c then 1 else 0)
  | Ir.Gt, _, _ -> gen ( > )
  | Ir.Eq, _, _ -> gen ( = )
  | Ir.Ne, _, _ -> gen ( <> )
  | Ir.Ge, _, _ -> gen ( >= )

(* An [Icmp] whose result feeds the block's own [Cbr] compiles into the
   terminator: compare, store the 0/1 result (later blocks may still
   read the slot), and pick the successor — one closure instead of two.
   [fin] is a known local function, so the calls below are direct. *)
let compile_icmp_br op sa sb id bidx kt ke : frame -> int =
  let fin fr v =
    Array.unsafe_set fr.ienv id (if v then 1 else 0);
    fr.prev <- bidx;
    if v then kt else ke
  in
  let gen cmp =
    let a = iread sa and b = iread sb in
    fun fr -> fin fr (cmp (a fr) (b fr))
  in
  match (op, sa, sb) with
  | Ir.Eq, ISlot i, ISlot j ->
      fun fr -> fin fr (Array.unsafe_get fr.ienv i = Array.unsafe_get fr.ienv j)
  | Ir.Eq, ISlot i, IConst c -> fun fr -> fin fr (Array.unsafe_get fr.ienv i = c)
  | Ir.Eq, _, _ -> gen ( = )
  | Ir.Ne, ISlot i, ISlot j ->
      fun fr ->
        fin fr (Array.unsafe_get fr.ienv i <> Array.unsafe_get fr.ienv j)
  | Ir.Ne, ISlot i, IConst c ->
      fun fr -> fin fr (Array.unsafe_get fr.ienv i <> c)
  | Ir.Ne, _, _ -> gen ( <> )
  | Ir.Lt, ISlot i, ISlot j ->
      fun fr -> fin fr (Array.unsafe_get fr.ienv i < Array.unsafe_get fr.ienv j)
  | Ir.Lt, ISlot i, IConst c -> fun fr -> fin fr (Array.unsafe_get fr.ienv i < c)
  | Ir.Lt, ISlot i, IArg j ->
      fun fr ->
        fin fr (Array.unsafe_get fr.ienv i < Array.unsafe_get fr.iargs j)
  | Ir.Lt, _, _ -> gen ( < )
  | Ir.Le, ISlot i, ISlot j ->
      fun fr ->
        fin fr (Array.unsafe_get fr.ienv i <= Array.unsafe_get fr.ienv j)
  | Ir.Le, ISlot i, IConst c ->
      fun fr -> fin fr (Array.unsafe_get fr.ienv i <= c)
  | Ir.Le, _, _ -> gen ( <= )
  | Ir.Gt, ISlot i, ISlot j ->
      fun fr -> fin fr (Array.unsafe_get fr.ienv i > Array.unsafe_get fr.ienv j)
  | Ir.Gt, ISlot i, IConst c -> fun fr -> fin fr (Array.unsafe_get fr.ienv i > c)
  | Ir.Gt, _, _ -> gen ( > )
  | Ir.Ge, ISlot i, ISlot j ->
      fun fr ->
        fin fr (Array.unsafe_get fr.ienv i >= Array.unsafe_get fr.ienv j)
  | Ir.Ge, ISlot i, IConst c ->
      fun fr -> fin fr (Array.unsafe_get fr.ienv i >= c)
  | Ir.Ge, _, _ -> gen ( >= )

(* -- memory access compilation -------------------------------------------

   Loads and stores take their address through an *address mode*: either
   the pointer operand itself ([APlain]), or — when a [Gep] immediately
   feeds the access and nothing executes in between — the fused address
   computation [AGep], which evaluates base + index*scale + offset
   inline, stores it in the gep's own slot (later instructions may reuse
   the pointer), and hands it to the access. One closure replaces the
   gep/access pair. *)

type amode =
  | APlain of ishape
  | AGep of int * ishape * ishape * int * int
      (* dst slot, base, index, scale, offset *)

(* Generic address reader for the cold paths; keeps the AGep side effect
   (writing the gep's slot). *)
let amode_read = function
  | APlain sp -> iread sp
  | AGep (dst, sb, sx, scale, offset) ->
      let bs = iread sb and ix = iread sx in
      fun fr ->
        let addr = bs fr + (ix fr * scale) + offset in
        Array.unsafe_set fr.ienv dst addr;
        addr

let compile_load ctx (i : Ir.instr) ~size ~is_float ~fname amode :
    frame -> unit =
  let b = ctx.backend in
  let clock = b.Backend.clock in
  let store = b.Backend.store in
  let tel = b.Backend.telemetry in
  let on_access = b.Backend.on_access in
  let local_access = b.Backend.cost.Memsim.Cost_model.local_access in
  let id = i.Ir.id in
  (* Both compile-time constants for this run: a Nop sink ignores
     [set_site], and the no-op access hook does nothing — elide the
     calls from the closures entirely. *)
  let site = Telemetry.Sink.is_active tel in
  let hook = not (on_access == Backend.no_access) in
  if is_float then begin
    (* Per-site one-entry page cache; a Memstore page handle is stable
       for the store's lifetime (see Memstore.page_of). [body] is a
       known local function: the address-mode match below fuses the
       address into the closure and the call to [body] compiles to a
       direct jump, not a closure dispatch. *)
    let cache_idx = ref (-1) and cache_page = ref Bytes.empty in
    let body fr addr =
      if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
      if hook then on_access ~addr ~size ~write:false;
      Memsim.Clock.tick clock local_access;
      let off = addr land Memsim.Memstore.page_mask in
      if off + 8 <= Memsim.Memstore.page_size then begin
        let idx = addr lsr Memsim.Memstore.page_bits in
        let pg =
          if idx = !cache_idx then !cache_page
          else begin
            let pg = Memsim.Memstore.page_of store idx in
            cache_idx := idx;
            cache_page := pg;
            pg
          end
        in
        Array.unsafe_set fr.fenv id
          (Int64.float_of_bits (Bytes.get_int64_le pg off))
      end
      else Array.unsafe_set fr.fenv id (Memsim.Memstore.load_float store ~addr)
    in
    match amode with
    | APlain (ISlot p) -> fun fr -> body fr (Array.unsafe_get fr.ienv p)
    | AGep (dst, ISlot bi, ISlot xi, scale, offset) ->
        fun fr ->
          let addr =
            Array.unsafe_get fr.ienv bi
            + (Array.unsafe_get fr.ienv xi * scale)
            + offset
          in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr
    | AGep (dst, ISlot bi, IConst k, scale, offset) ->
        let add = (k * scale) + offset in
        fun fr ->
          let addr = Array.unsafe_get fr.ienv bi + add in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr
    | am ->
        let p = amode_read am in
        fun fr -> body fr (p fr)
  end
  else if size = 8 then begin
    let cache_idx = ref (-1) and cache_page = ref Bytes.empty in
    let body fr addr =
      if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
      if hook then on_access ~addr ~size ~write:false;
      Memsim.Clock.tick clock local_access;
      let off = addr land Memsim.Memstore.page_mask in
      if off + 8 <= Memsim.Memstore.page_size then begin
        let idx = addr lsr Memsim.Memstore.page_bits in
        let pg =
          if idx = !cache_idx then !cache_page
          else begin
            let pg = Memsim.Memstore.page_of store idx in
            cache_idx := idx;
            cache_page := pg;
            pg
          end
        in
        Array.unsafe_set fr.ienv id
          (Int64.to_int (Bytes.get_int64_le pg off) land max_int)
      end
      else Array.unsafe_set fr.ienv id (Memsim.Memstore.load store ~addr ~size:8)
    in
    match amode with
    | APlain (ISlot p) -> fun fr -> body fr (Array.unsafe_get fr.ienv p)
    | AGep (dst, ISlot bi, ISlot xi, scale, offset) ->
        fun fr ->
          let addr =
            Array.unsafe_get fr.ienv bi
            + (Array.unsafe_get fr.ienv xi * scale)
            + offset
          in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr
    | AGep (dst, ISlot bi, IConst k, scale, offset) ->
        let add = (k * scale) + offset in
        fun fr ->
          let addr = Array.unsafe_get fr.ienv bi + add in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr
    | AGep (dst, IArg bi, ISlot xi, scale, offset) ->
        fun fr ->
          let addr =
            Array.unsafe_get fr.iargs bi
            + (Array.unsafe_get fr.ienv xi * scale)
            + offset
          in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr
    | am ->
        let p = amode_read am in
        fun fr -> body fr (p fr)
  end
  else
    let body fr addr =
      if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
      if hook then on_access ~addr ~size ~write:false;
      Memsim.Clock.tick clock local_access;
      Array.unsafe_set fr.ienv id (Memsim.Memstore.load store ~addr ~size)
    in
    match amode with
    | APlain (ISlot p) -> fun fr -> body fr (Array.unsafe_get fr.ienv p)
    | am ->
        let p = amode_read am in
        fun fr -> body fr (p fr)

let compile_store ctx f rtys (i : Ir.instr) ~size ~is_float ~v ~fname amode :
    frame -> unit =
  let b = ctx.backend in
  let clock = b.Backend.clock in
  let store = b.Backend.store in
  let tel = b.Backend.telemetry in
  let on_access = b.Backend.on_access in
  let local_access = b.Backend.cost.Memsim.Cost_model.local_access in
  let id = i.Ir.id in
  let site = Telemetry.Sink.is_active tel in
  let hook = not (on_access == Backend.no_access) in
  if is_float then begin
    let sv = fshape ctx f rtys v in
    let cache_idx = ref (-1) and cache_page = ref Bytes.empty in
    (* The hot arm is written out in full (rather than through a [body]
       with a float parameter) so the value never crosses a call
       boundary — OCaml would box it. *)
    let slow am sv =
      let p = amode_read am and x = fread sv in
      fun fr ->
        let addr = p fr in
        if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
        if hook then on_access ~addr ~size ~write:true;
        Memsim.Clock.tick clock local_access;
        let off = addr land Memsim.Memstore.page_mask in
        (if off + 8 <= Memsim.Memstore.page_size then begin
           let idx = addr lsr Memsim.Memstore.page_bits in
           let pg =
             if idx = !cache_idx then !cache_page
             else begin
               let pg = Memsim.Memstore.page_of store idx in
               cache_idx := idx;
               cache_page := pg;
               pg
             end
           in
           Bytes.set_int64_le pg off (Int64.bits_of_float (x fr))
         end
         else Memsim.Memstore.store_float store ~addr (x fr));
        Array.unsafe_set fr.ienv id 0
    in
    match (amode, sv) with
    | AGep (dst, ISlot bi, ISlot xi, scale, offset), FSlot vi ->
        fun fr ->
          let addr =
            Array.unsafe_get fr.ienv bi
            + (Array.unsafe_get fr.ienv xi * scale)
            + offset
          in
          Array.unsafe_set fr.ienv dst addr;
          if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
          if hook then on_access ~addr ~size ~write:true;
          Memsim.Clock.tick clock local_access;
          let off = addr land Memsim.Memstore.page_mask in
          (if off + 8 <= Memsim.Memstore.page_size then begin
             let idx = addr lsr Memsim.Memstore.page_bits in
             let pg =
               if idx = !cache_idx then !cache_page
               else begin
                 let pg = Memsim.Memstore.page_of store idx in
                 cache_idx := idx;
                 cache_page := pg;
                 pg
               end
             in
             Bytes.set_int64_le pg off
               (Int64.bits_of_float (Array.unsafe_get fr.fenv vi))
           end
           else
             Memsim.Memstore.store_float store ~addr
               (Array.unsafe_get fr.fenv vi));
          Array.unsafe_set fr.ienv id 0
    | APlain (ISlot pi), FSlot vi ->
        fun fr ->
          let addr = Array.unsafe_get fr.ienv pi in
          if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
          if hook then on_access ~addr ~size ~write:true;
          Memsim.Clock.tick clock local_access;
          let off = addr land Memsim.Memstore.page_mask in
          (if off + 8 <= Memsim.Memstore.page_size then begin
             let idx = addr lsr Memsim.Memstore.page_bits in
             let pg =
               if idx = !cache_idx then !cache_page
               else begin
                 let pg = Memsim.Memstore.page_of store idx in
                 cache_idx := idx;
                 cache_page := pg;
                 pg
               end
             in
             Bytes.set_int64_le pg off
               (Int64.bits_of_float (Array.unsafe_get fr.fenv vi))
           end
           else
             Memsim.Memstore.store_float store ~addr
               (Array.unsafe_get fr.fenv vi));
          Array.unsafe_set fr.ienv id 0
    | am, sv -> slow am sv
  end
  else if size = 8 then begin
    let sv = ishape ctx f rtys v in
    let cache_idx = ref (-1) and cache_page = ref Bytes.empty in
    let body fr addr x =
      if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
      if hook then on_access ~addr ~size ~write:true;
      Memsim.Clock.tick clock local_access;
      let off = addr land Memsim.Memstore.page_mask in
      (if off + 8 <= Memsim.Memstore.page_size then begin
         let idx = addr lsr Memsim.Memstore.page_bits in
         let pg =
           if idx = !cache_idx then !cache_page
           else begin
             let pg = Memsim.Memstore.page_of store idx in
             cache_idx := idx;
             cache_page := pg;
             pg
           end
         in
         Bytes.set_int64_le pg off (Int64.of_int x)
       end
       else Memsim.Memstore.store store ~addr ~size:8 x);
      Array.unsafe_set fr.ienv id 0
    in
    match (amode, sv) with
    | AGep (dst, ISlot bi, ISlot xi, scale, offset), ISlot vi ->
        fun fr ->
          let addr =
            Array.unsafe_get fr.ienv bi
            + (Array.unsafe_get fr.ienv xi * scale)
            + offset
          in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr (Array.unsafe_get fr.ienv vi)
    | AGep (dst, ISlot bi, IConst k, scale, offset), ISlot vi ->
        let add = (k * scale) + offset in
        fun fr ->
          let addr = Array.unsafe_get fr.ienv bi + add in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr (Array.unsafe_get fr.ienv vi)
    | AGep (dst, ISlot bi, ISlot xi, scale, offset), IConst c ->
        fun fr ->
          let addr =
            Array.unsafe_get fr.ienv bi
            + (Array.unsafe_get fr.ienv xi * scale)
            + offset
          in
          Array.unsafe_set fr.ienv dst addr;
          body fr addr c
    | APlain (ISlot pi), ISlot vi ->
        fun fr ->
          body fr (Array.unsafe_get fr.ienv pi) (Array.unsafe_get fr.ienv vi)
    | APlain (ISlot pi), IConst c ->
        fun fr -> body fr (Array.unsafe_get fr.ienv pi) c
    | am, sv ->
        let p = amode_read am and x = iread sv in
        fun fr -> body fr (p fr) (x fr)
  end
  else
    let sv = ishape ctx f rtys v in
    let body fr addr x =
      if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
      if hook then on_access ~addr ~size ~write:true;
      Memsim.Clock.tick clock local_access;
      Memsim.Memstore.store store ~addr ~size x;
      Array.unsafe_set fr.ienv id 0
    in
    match (amode, sv) with
    | APlain (ISlot pi), ISlot vi ->
        fun fr ->
          body fr (Array.unsafe_get fr.ienv pi) (Array.unsafe_get fr.ienv vi)
    | am, sv ->
        let p = amode_read am and x = iread sv in
        fun fr -> body fr (p fr) (x fr)

(* -- execution ----------------------------------------------------------- *)

let exec ctx cfn fr =
  let st = ctx.st in
  let clock = ctx.backend.Backend.clock in
  let blocks = cfn.cf_blocks in
  let fname = cfn.cf_src.Ir.fname in
  if Array.length blocks = 0 then invalid_arg "index out of bounds";
  let cur = ref 0 in
  (* The profiled loop is split out so the common (unprofiled) path pays
     no per-block option match. *)
  match ctx.profile with
  | None ->
      while !cur >= 0 do
        let b = Array.unsafe_get blocks !cur in
        st.fuel <- st.fuel - b.cb_cost;
        if st.fuel < 0 then trap "out of fuel (infinite loop?)";
        st.instrs <- st.instrs + b.cb_cost;
        Memsim.Clock.tick clock b.cb_tick;
        cur := b.cb_step fr
      done
  | Some prof ->
      while !cur >= 0 do
        let b = Array.unsafe_get blocks !cur in
        Profile.add_block prof ~func:fname ~block:b.cb_label 1;
        st.fuel <- st.fuel - b.cb_cost;
        if st.fuel < 0 then trap "out of fuel (infinite loop?)";
        st.instrs <- st.instrs + b.cb_cost;
        Memsim.Clock.tick clock b.cb_tick;
        cur := b.cb_step fr
      done

(* Call a compiled function with already-built argument arrays: the
   interpreter's [call_function] — depth and span accounting, stack
   save/restore — with the arity check hoisted to compile time for
   direct calls ([checked_arity]). *)
let invoke ctx cfn ~checked_arity (ia : int array) (fa : float array) =
  let st = ctx.st in
  let f = cfn.cf_src in
  if (not checked_arity) && Array.length ia <> f.Ir.nparams then
    trap "%s expects %d arguments, got %d" f.Ir.fname f.Ir.nparams
      (Array.length ia);
  st.depth <- st.depth + 1;
  if st.depth > max_call_depth then trap "call depth exceeded (recursion?)";
  let tel = ctx.backend.Backend.telemetry in
  let span_it = st.depth <= 2 && Telemetry.Sink.is_active tel in
  let t0 = if span_it then Telemetry.Sink.timestamp tel else 0 in
  let fr =
    {
      ienv = Array.make (max 1 f.Ir.next_id) 0;
      fenv =
        (if cfn.cf_has_floats then Array.make (max 1 f.Ir.next_id) 0.0
         else [||]);
      iargs = ia;
      fargs = fa;
      prev = -1;
    }
  in
  let saved_sp = st.stack_ptr in
  exec ctx cfn fr;
  if span_it then
    Telemetry.Sink.span tel ~name:f.Ir.fname ~cat:"call" ~start:t0 ();
  st.stack_ptr <- saved_sp;
  st.depth <- st.depth - 1

(* -- instruction compilation --------------------------------------------- *)

let compile_call ctx (f : Ir.func) rtys (i : Ir.instr) callee cargs :
    frame -> unit =
  let st = ctx.st in
  let b = ctx.backend in
  let clock = b.Backend.clock in
  let tel = b.Backend.telemetry in
  let fname = f.Ir.fname in
  let id = i.Ir.id in
  (* Compile-time constant for this run: a Nop sink ignores [set_site]. *)
  let site = Telemetry.Sink.is_active tel in
  let ci = compile_int ctx f rtys in
  let cf = compile_float ctx f rtys in
  let oob : frame -> int =
   (* Mirrors the interpreter indexing actuals past the argument list. *)
   fun _ -> invalid_arg "index out of bounds"
  in
  let arg n = match List.nth_opt cargs n with Some v -> ci v | None -> oob in
  match callee with
  | "malloc" ->
      let a0 = arg 0 in
      let malloc = b.Backend.malloc in
      fun fr ->
        if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
        Array.unsafe_set fr.ienv id (malloc (a0 fr))
  | "calloc" ->
      let a0 = arg 0 and a1 = arg 1 in
      let malloc = b.Backend.malloc in
      fun fr ->
        if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
        Array.unsafe_set fr.ienv id (malloc (a0 fr * a1 fr))
  | "realloc" ->
      let a0 = arg 0 and a1 = arg 1 in
      let realloc = b.Backend.realloc in
      fun fr ->
        if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
        Array.unsafe_set fr.ienv id (realloc (a0 fr) (a1 fr))
  | "free" ->
      let a0 = arg 0 in
      let free = b.Backend.free in
      fun fr ->
        if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
        free (a0 fr);
        Array.unsafe_set fr.ienv id 0
  | _ when is_direct_call ctx callee ->
      (* Direct call to a defined IR function: target, arity, and the
         per-parameter marshalling plan are all resolved here, once. *)
      let target = Hashtbl.find ctx.cfuncs callee in
      let nactual = List.length cargs in
      let nparams = target.cf_src.Ir.nparams in
      if nactual <> nparams then (
        fun _ ->
          if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
          Memsim.Clock.tick clock 5;
          trap "%s expects %d arguments, got %d" callee nparams nactual)
      else begin
        let fillers =
          Array.of_list
            (List.mapi
               (fun j v ->
                 if j < Array.length target.cf_params
                    && target.cf_params.(j) = TFloat
                 then begin
                   let r = cf v in
                   fun fr ia fa ->
                     ignore (ia : int array);
                     Array.unsafe_set fa j (r fr)
                 end
                 else begin
                   let r = ci v in
                   fun fr ia fa ->
                     ignore (fa : float array);
                     Array.unsafe_set ia j (r fr)
                 end)
               cargs)
        in
        let ret_float = target.cf_ret = TFloat in
        fun fr ->
          if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
          Memsim.Clock.tick clock 5 (* call overhead *);
          let ia = Array.make nparams 0 in
          let fa =
            if nparams = 0 then [||] else Array.make nparams 0.0
          in
          for j = 0 to nparams - 1 do
            (Array.unsafe_get fillers j) fr ia fa
          done;
          invoke ctx target ~checked_arity:true ia fa;
          if ret_float then Array.unsafe_set fr.fenv id st.fret
          else Array.unsafe_set fr.ienv id st.iret
      end
  | _ ->
      (* Runtime intrinsic (guards, chunk accesses, spans, bookkeeping
         hooks) through the backend's dispatcher, with the interpreter's
         fallbacks for names the backend does not handle. Arguments are
         coerced to ints exactly like the interpreter's [as_int] map. *)
      let readers = Array.of_list (List.map ci cargs) in
      let n = Array.length readers in
      let intrinsic = b.Backend.intrinsic in
      let is_hook = String.length callee > 0 && callee.[0] = '!' in
      fun fr ->
        if site then Telemetry.Sink.set_site tel ~func:fname ~instr:id;
        let a = Array.make n 0 in
        for j = 0 to n - 1 do
          Array.unsafe_set a j ((Array.unsafe_get readers j) fr)
        done;
        match intrinsic callee a with
        | Some r -> Array.unsafe_set fr.ienv id r
        | None ->
            if is_hook then trap "unknown runtime hook %s" callee
            else begin
              Memsim.Clock.tick clock 5 (* call overhead *);
              match Hashtbl.find_opt ctx.cfuncs callee with
              | None -> trap "unknown function %s" callee
              | Some target ->
                  let fa =
                    if n = 0 then [||] else Array.make n 0.0
                  in
                  invoke ctx target ~checked_arity:false a fa;
                  if target.cf_ret = TFloat then
                    (* Inference could not see this dynamically-resolved
                       callee, so the result slot may be int-typed. *)
                    if id < Array.length fr.fenv then fr.fenv.(id) <- st.fret
                    else trap "expected int, got float"
                  else Array.unsafe_set fr.ienv id st.iret
            end

let compile_instr ctx (f : Ir.func) rtys label_index (i : Ir.instr) :
    frame -> unit =
  let st = ctx.st in
  let fname = f.Ir.fname in
  let id = i.Ir.id in
  let seti fr v = Array.unsafe_set fr.ienv id v in
  let setf fr v = Array.unsafe_set fr.fenv id v in
  let si v = ishape ctx f rtys v in
  let sf v = fshape ctx f rtys v in
  match i.Ir.kind with
  | Ir.Binop (op, a, b) -> compile_binop op (si a) (si b) id
  | Ir.Fbinop (op, a, b) -> compile_fbinop op (sf a) (sf b) id
  | Ir.Icmp (op, a, b) -> compile_icmp op (si a) (si b) id
  | Ir.Fcmp (op, a, b) -> compile_fcmp op (sf a) (sf b) id
  | Ir.Si_to_fp a -> (
      match si a with
      | ISlot i ->
          fun fr -> setf fr (float_of_int (Array.unsafe_get fr.ienv i))
      | s ->
          let a = iread s in
          fun fr -> setf fr (float_of_int (a fr)))
  | Ir.Fp_to_si a -> (
      match sf a with
      | FSlot i -> fun fr -> seti fr (int_of_float (Array.unsafe_get fr.fenv i))
      | s ->
          let a = fread s in
          fun fr -> seti fr (int_of_float (a fr)))
  | Ir.Load { ptr; size; is_float } ->
      compile_load ctx i ~size ~is_float ~fname (APlain (si ptr))
  | Ir.Store { ptr; size; is_float; v } ->
      compile_store ctx f rtys i ~size ~is_float ~v ~fname (APlain (si ptr))
  | Ir.Gep { base; index; scale; offset } -> (
      match (si base, si index) with
      | ISlot b, IConst k ->
          let add = (k * scale) + offset in
          fun fr -> seti fr (Array.unsafe_get fr.ienv b + add)
      | ISlot b, ISlot i ->
          fun fr ->
            seti fr
              (Array.unsafe_get fr.ienv b
              + (Array.unsafe_get fr.ienv i * scale)
              + offset)
      | IArg b, ISlot i ->
          fun fr ->
            seti fr
              (Array.unsafe_get fr.iargs b
              + (Array.unsafe_get fr.ienv i * scale)
              + offset)
      | IArg b, IConst k ->
          let add = (k * scale) + offset in
          fun fr -> seti fr (Array.unsafe_get fr.iargs b + add)
      | IConst b, ISlot i ->
          fun fr -> seti fr (b + (Array.unsafe_get fr.ienv i * scale) + offset)
      | sb, IConst k ->
          let bs = iread sb in
          let add = (k * scale) + offset in
          fun fr -> seti fr (bs fr + add)
      | sb, sx ->
          let bs = iread sb and ix = iread sx in
          fun fr -> seti fr (bs fr + (ix fr * scale) + offset))
  | Ir.Alloca bytes ->
      let aligned = (bytes + 15) land lnot 15 in
      fun fr ->
        let addr = st.stack_ptr in
        st.stack_ptr <- addr + aligned;
        seti fr addr
  | Ir.Call { callee; args } -> compile_call ctx f rtys i callee args
  | Ir.Phi incoming ->
      (* Arms stay as shapes: selecting by predecessor index then
         switching on the shape tag is a jump table, not a closure
         call. Missing arms keep a trap closure naming the
         predecessor. *)
      let nblocks = List.length f.Ir.blocks in
      let labels = Array.make nblocks "<?>" in
      List.iteri (fun k (b : Ir.block) -> labels.(k) <- b.label) f.Ir.blocks;
      let miss p =
        if p < 0 then trap "%s: phi has no arm for predecessor <entry>" fname
        else trap "%s: phi has no arm for predecessor %s" fname labels.(p)
      in
      if rtys.(id) = TInt then begin
        let resolved =
          List.filter_map
            (fun (l, v) ->
              match Hashtbl.find_opt label_index l with
              | Some k -> Some (k, si v)
              | None -> None)
            incoming
        in
        match resolved with
        (* The ubiquitous loop-header phi: one entry arm, one latch arm.
           A pair of compare-and-reads beats the arms-array tag switch. *)
        | [ (k0, s0); (k1, s1) ] when k0 <> k1 -> (
            match (s0, s1) with
            | ISlot i0, ISlot i1 ->
                fun fr ->
                  let p = fr.prev in
                  if p = k0 then seti fr (Array.unsafe_get fr.ienv i0)
                  else if p = k1 then seti fr (Array.unsafe_get fr.ienv i1)
                  else miss p
            | IConst c0, ISlot i1 ->
                fun fr ->
                  let p = fr.prev in
                  if p = k0 then seti fr c0
                  else if p = k1 then seti fr (Array.unsafe_get fr.ienv i1)
                  else miss p
            | ISlot i0, IConst c1 ->
                fun fr ->
                  let p = fr.prev in
                  if p = k0 then seti fr (Array.unsafe_get fr.ienv i0)
                  else if p = k1 then seti fr c1
                  else miss p
            | s0, s1 ->
                let g0 = iread s0 and g1 = iread s1 in
                fun fr ->
                  let p = fr.prev in
                  if p = k0 then seti fr (g0 fr)
                  else if p = k1 then seti fr (g1 fr)
                  else miss p)
        | _ ->
            let arms =
              Array.init nblocks (fun k ->
                  IFn
                    (fun _ ->
                      trap "%s: phi has no arm for predecessor %s" fname
                        labels.(k)))
            in
            List.iter
              (fun (l, v) ->
                match Hashtbl.find_opt label_index l with
                | Some k -> arms.(k) <- si v
                | None -> ())
              incoming;
            fun fr ->
              let p = fr.prev in
              if p < 0 then
                trap "%s: phi has no arm for predecessor <entry>" fname
              else
                match Array.unsafe_get arms p with
                | ISlot i -> seti fr (Array.unsafe_get fr.ienv i)
                | IConst c -> seti fr c
                | IArg i -> seti fr (Array.unsafe_get fr.iargs i)
                | IFn g -> seti fr (g fr)
      end
      else begin
        let resolved =
          List.filter_map
            (fun (l, v) ->
              match Hashtbl.find_opt label_index l with
              | Some k -> Some (k, sf v)
              | None -> None)
            incoming
        in
        match resolved with
        | [ (k0, s0); (k1, s1) ] when k0 <> k1 -> (
            match (s0, s1) with
            | FSlot i0, FSlot i1 ->
                fun fr ->
                  let p = fr.prev in
                  if p = k0 then setf fr (Array.unsafe_get fr.fenv i0)
                  else if p = k1 then setf fr (Array.unsafe_get fr.fenv i1)
                  else miss p
            | FConst c0, FSlot i1 ->
                fun fr ->
                  let p = fr.prev in
                  if p = k0 then setf fr c0
                  else if p = k1 then setf fr (Array.unsafe_get fr.fenv i1)
                  else miss p
            | s0, s1 ->
                let g0 = fread s0 and g1 = fread s1 in
                fun fr ->
                  let p = fr.prev in
                  if p = k0 then setf fr (g0 fr)
                  else if p = k1 then setf fr (g1 fr)
                  else miss p)
        | _ ->
            let arms =
              Array.init nblocks (fun k ->
                  FFn
                    (fun _ ->
                      trap "%s: phi has no arm for predecessor %s" fname
                        labels.(k)))
            in
            List.iter
              (fun (l, v) ->
                match Hashtbl.find_opt label_index l with
                | Some k -> arms.(k) <- sf v
                | None -> ())
              incoming;
            fun fr ->
              let p = fr.prev in
              if p < 0 then
                trap "%s: phi has no arm for predecessor <entry>" fname
              else
                match Array.unsafe_get arms p with
                | FSlot i -> setf fr (Array.unsafe_get fr.fenv i)
                | FConst c -> setf fr c
                | FArg i -> setf fr (Array.unsafe_get fr.fargs i)
                | FFn g -> setf fr (g fr)
      end
  | Ir.Select (c, a, b) ->
      if rtys.(id) = TInt then begin
        match (si c, si a, si b) with
        | ISlot k, ISlot ai, ISlot bi ->
            fun fr ->
              seti fr
                (if Array.unsafe_get fr.ienv k <> 0 then
                   Array.unsafe_get fr.ienv ai
                 else Array.unsafe_get fr.ienv bi)
        | sc, sa, sb ->
            let c = iread sc and a = iread sa and b = iread sb in
            fun fr -> seti fr (if c fr <> 0 then a fr else b fr)
      end
      else begin
        match (si c, sf a, sf b) with
        | ISlot k, FSlot ai, FSlot bi ->
            fun fr ->
              setf fr
                (if Array.unsafe_get fr.ienv k <> 0 then
                   Array.unsafe_get fr.fenv ai
                 else Array.unsafe_get fr.fenv bi)
        | sc, sa, sb ->
            let c = iread sc and a = fread sa and b = fread sb in
            fun fr -> setf fr (if c fr <> 0 then a fr else b fr)
      end

let compile_term ctx (f : Ir.func) cfn rtys label_index bidx
    (t : Ir.terminator) : frame -> int =
  let st = ctx.st in
  let ci = compile_int ctx f rtys in
  let cf = compile_float ctx f rtys in
  let target l = Hashtbl.find_opt label_index l in
  match t with
  | Ir.Br l -> (
      match target l with
      | Some k ->
          fun fr ->
            fr.prev <- bidx;
            k
      | None ->
          (* Mirrors the interpreter's [Hashtbl.find]: the unknown label
             only faults if the branch actually executes. *)
          fun _ -> raise Not_found)
  | Ir.Cbr (c, t, e) -> (
      let sc = ishape ctx f rtys c in
      match (target t, target e) with
      | Some kt, Some ke -> (
          match sc with
          | ISlot i ->
              fun fr ->
                fr.prev <- bidx;
                if Array.unsafe_get fr.ienv i <> 0 then kt else ke
          | _ ->
              let c = iread sc in
              fun fr ->
                fr.prev <- bidx;
                if c fr <> 0 then kt else ke)
      | ot, oe -> (
          let c = iread sc in
          fun fr ->
            fr.prev <- bidx;
            match if c fr <> 0 then ot else oe with
            | Some k -> k
            | None -> raise Not_found))
  | Ir.Ret None ->
      if cfn.cf_ret = TFloat then fun _ -> trap "expected float, got int"
      else fun _ ->
        st.iret <- 0;
        -1
  | Ir.Ret (Some v) ->
      if cfn.cf_ret = TFloat then begin
        let r = cf v in
        fun fr ->
          st.fret <- r fr;
          -1
      end
      else begin
        let r = ci v in
        fun fr ->
          st.iret <- r fr;
          -1
      end
  | Ir.Unreachable ->
      let fname = f.Ir.fname in
      let label =
        match List.nth_opt f.Ir.blocks bidx with
        | Some b -> b.Ir.label
        | None -> "<?>"
      in
      fun _ -> trap "%s: reached unreachable in %s" fname label

(* Straight-line chaining: a block's instruction closures become one
   closure calling them in sequence, so the trampoline pays no
   per-instruction loop counter or array bound. *)
let rec chain (code : (frame -> unit) array) lo n : frame -> unit =
  match n with
  | 0 -> fun _ -> ()
  | 1 -> Array.unsafe_get code lo
  | 2 ->
      let a = code.(lo) and b = code.(lo + 1) in
      fun fr ->
        a fr;
        b fr
  | 3 ->
      let a = code.(lo) and b = code.(lo + 1) and c = code.(lo + 2) in
      fun fr ->
        a fr;
        b fr;
        c fr
  | 4 ->
      let a = code.(lo)
      and b = code.(lo + 1)
      and c = code.(lo + 2)
      and d = code.(lo + 3) in
      fun fr ->
        a fr;
        b fr;
        c fr;
        d fr
  | n ->
      let h = n / 2 in
      let a = chain code lo h and b = chain code (lo + h) (n - h) in
      fun fr ->
        a fr;
        b fr

(* Fuse the body chain with the terminator into one step closure, so the
   trampoline pays a single indirect call per block execution. *)
let chain_step (code : (frame -> unit) array) (term : frame -> int) :
    frame -> int =
  match Array.length code with
  | 0 -> term
  | 1 ->
      let a = code.(0) in
      fun fr ->
        a fr;
        term fr
  | 2 ->
      let a = code.(0) and b = code.(1) in
      fun fr ->
        a fr;
        b fr;
        term fr
  | 3 ->
      let a = code.(0) and b = code.(1) and c = code.(2) in
      fun fr ->
        a fr;
        b fr;
        c fr;
        term fr
  | 4 ->
      let a = code.(0) and b = code.(1) and c = code.(2) and d = code.(3) in
      fun fr ->
        a fr;
        b fr;
        c fr;
        d fr;
        term fr
  | n ->
      let body = chain code 0 n in
      fun fr ->
        body fr;
        term fr

let compile_func ctx (f : Ir.func) =
  let cfn = Hashtbl.find ctx.cfuncs f.fname in
  let rtys = Hashtbl.find ctx.reg_tys f.fname in
  let label_index = Hashtbl.create 16 in
  List.iteri
    (fun k (b : Ir.block) -> Hashtbl.replace label_index b.label k)
    f.blocks;
  cfn.cf_blocks <-
    Array.of_list
      (List.mapi
         (fun bidx (b : Ir.block) ->
           (* Cost accounting is over the *source* instruction count —
              fusion below merges closures, never changes what the run
              charges or reports. *)
           let n_ir = List.length b.instrs in
           (* icmp → cbr fusion: when the block's last instruction is
              the compare feeding its own conditional branch, both
              compile into the terminator. *)
           let instrs, fused_term =
             match (b.term, List.rev b.instrs) with
             | ( Ir.Cbr (Ir.Reg cid, tl, el),
                 { Ir.kind = Ir.Icmp (op, x, y); id } :: rest )
               when id = cid && rtys.(cid) = TInt -> (
                 match
                   ( Hashtbl.find_opt label_index tl,
                     Hashtbl.find_opt label_index el )
                 with
                 | Some kt, Some ke ->
                     ( List.rev rest,
                       Some
                         (compile_icmp_br op
                            (ishape ctx f rtys x)
                            (ishape ctx f rtys y)
                            cid bidx kt ke) )
                 | _ -> (b.instrs, None))
             | _ -> (b.instrs, None)
           in
           (* gep → load/store fusion: an address computation consumed
              by the immediately following access folds into it. *)
           let rec build acc = function
             | [] -> List.rev acc
             | (g : Ir.instr) :: rest -> (
                 match (g.Ir.kind, rest) with
                 | ( Ir.Gep { base; index; scale; offset },
                     ({ Ir.kind = Ir.Load { ptr = Ir.Reg pid; size; is_float };
                        _
                      } as li)
                     :: rest2 )
                   when pid = g.Ir.id ->
                     let am =
                       AGep
                         ( g.Ir.id,
                           ishape ctx f rtys base,
                           ishape ctx f rtys index,
                           scale,
                           offset )
                     in
                     build
                       (compile_load ctx li ~size ~is_float ~fname:f.Ir.fname
                          am
                       :: acc)
                       rest2
                 | ( Ir.Gep { base; index; scale; offset },
                     ({ Ir.kind =
                          Ir.Store { ptr = Ir.Reg pid; size; is_float; v };
                        _
                      } as sti)
                     :: rest2 )
                   when pid = g.Ir.id ->
                     let am =
                       AGep
                         ( g.Ir.id,
                           ishape ctx f rtys base,
                           ishape ctx f rtys index,
                           scale,
                           offset )
                     in
                     build
                       (compile_store ctx f rtys sti ~size ~is_float ~v
                          ~fname:f.Ir.fname am
                       :: acc)
                       rest2
                 | _ -> build (compile_instr ctx f rtys label_index g :: acc) rest)
           in
           let code = Array.of_list (build [] instrs) in
           let term =
             match fused_term with
             | Some t -> t
             | None -> compile_term ctx f cfn rtys label_index bidx b.term
           in
           {
             cb_label = b.label;
             cb_step = chain_step code term;
             cb_cost = n_ir + 1;
             cb_tick = (n_ir + 4) / 4;
           })
         f.blocks)

let compile_module ctx =
  (* Phase 1: register shells so recursion and mutual calls resolve. *)
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace ctx.cfuncs f.fname
        {
          cf_src = f;
          cf_params = Array.make f.nparams TInt;
          cf_ret = TInt;
          cf_has_floats = false;
          cf_blocks = [||];
        };
      Hashtbl.replace ctx.reg_tys f.fname (Array.make (max 1 f.next_id) TInt))
    ctx.m.Ir.funcs;
  (* Phase 2: int/float slot assignment (module-wide fixpoint). *)
  infer_types ctx;
  (* Phase 3: lower every body to closures. *)
  List.iter (compile_func ctx) ctx.m.Ir.funcs

let run ?profile ?(fuel = 2_000_000_000) ?(args = []) backend m ~entry =
  let ctx =
    {
      st =
        {
          fuel;
          instrs = 0;
          depth = 0;
          stack_ptr = stack_base;
          iret = 0;
          fret = 0.0;
        };
      backend;
      m;
      globals = Hashtbl.create 8;
      cfuncs = Hashtbl.create 8;
      reg_tys = Hashtbl.create 8;
      profile;
    }
  in
  layout_globals ctx;
  compile_module ctx;
  let cfn =
    match Hashtbl.find_opt ctx.cfuncs entry with
    | Some c -> c
    | None -> trap "unknown function %s" entry
  in
  let ia = Array.of_list args in
  let fa =
    if Array.length ia = 0 then [||] else Array.make (Array.length ia) 0.0
  in
  invoke ctx cfn ~checked_arity:false ia fa;
  if cfn.cf_ret = TFloat then trap "expected int, got float";
  {
    Interp.ret = ctx.st.iret;
    cycles = Memsim.Clock.cycles backend.Backend.clock;
    instrs_executed = ctx.st.instrs;
  }
