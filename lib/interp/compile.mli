(** Compiled closure-based execution engine.

    Lowers each IR function to OCaml closures once per run — operand
    slots resolved to unboxed int/float array indices, binop/cmp cases
    and callees selected per site, globals resolved to addresses, and
    per-site page caches for 8-byte memory traffic — then drives blocks
    through an iterative trampoline. Observable behaviour (return value,
    cycles, instruction counts, every backend hook and telemetry call,
    and hence guard/fault/span/counter output) is bit-identical to
    {!Interp.run}, which stays around as the differential oracle; the
    [engines] CI stage and [test/test_engine.ml] enforce the
    equivalence.

    Known, deliberate divergence: programs that mix int and float types
    in one SSA slot (e.g. a function returning [1] on one path and
    [2.0] on another) trap here at the ill-typed site, possibly earlier
    than the interpreter's lazy per-use coercion would. Well-typed
    programs — everything the front end emits — behave identically. *)

val run :
  ?profile:Profile.t ->
  ?fuel:int ->
  ?args:int list ->
  Backend.t ->
  Ir.modul ->
  entry:string ->
  Interp.result
(** Same contract as {!Interp.run}, including {!Interp.Trap} on runtime
    faults. Compilation happens eagerly at call time. *)

val test_miscompile : bool ref
(** Test-only: when set, [Add] is deliberately miscompiled (off by one)
    so the test suite can prove the differential oracle catches a bad
    closure. Always [false] outside the negative test. *)
