(** Execution-engine selection.

    [Interp] is the tree-walking reference interpreter and the
    differential oracle; [Compiled] is the closure-compiled engine with
    identical observable behaviour ({!Compile}). The interpreter is the
    default everywhere so goldens and existing callers are unaffected. *)

type t = Interp | Compiled

val all : t list
val to_string : t -> string
val of_string : string -> t option

val run :
  ?profile:Profile.t ->
  ?shadow:Shadow.t ->
  ?fuel:int ->
  ?args:int list ->
  engine:t ->
  Backend.t ->
  Ir.modul ->
  entry:string ->
  Interp.result
(** Dispatch to {!Interp.run} or {!Compile.run}. [shadow] (the shape
    analysis's dynamic depth audit) is interpreter-only; passing it with
    [Compiled] raises [Invalid_argument]. *)
