(** Aligned text tables for benchmark output.

    The bench harness prints one table per reproduced paper table/figure;
    this module keeps the rendering in one place so every experiment reports
    in the same format (and can also be dumped as CSV for plotting). *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Rows in insertion order (used by the bench harness's JSON export). *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|'] into
    cells. Convenient for numeric rows. *)

val print : t -> unit
(** Pretty-print with aligned columns to stdout. *)

val to_csv : t -> string
(** CSV rendering (header row first). *)
