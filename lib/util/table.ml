type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }
let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows

let add_row t row =
  assert (List.length row = List.length t.columns);
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Format.kasprintf
    (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim))
    fmt

let widths t =
  let rows = t.columns :: List.rev t.rows in
  let ncols = List.length t.columns in
  let w = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  List.iter measure rows;
  w

let print t =
  let w = widths t in
  let pad i s = s ^ String.make (w.(i) - String.length s) ' ' in
  let line row =
    row |> List.mapi pad |> String.concat "  " |> print_endline
  in
  Printf.printf "== %s ==\n" t.title;
  line t.columns;
  line (List.mapi (fun i _ -> String.make w.(i) '-') t.columns);
  List.iter line (List.rev t.rows);
  print_newline ()

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let row_to_string row =
    String.concat "," (List.map escape_csv row)
  in
  String.concat "\n" (row_to_string t.columns :: List.map row_to_string (List.rev t.rows))
