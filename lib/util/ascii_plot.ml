type series = { label : string; points : (float * float) list }

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "")
    ~title series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then title ^ "\n(no data)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let xmin = List.fold_left min (List.hd xs) xs in
    let xmax = List.fold_left max (List.hd xs) xs in
    let ymin = List.fold_left min (List.hd ys) ys in
    let ymax = List.fold_left max (List.hd ys) ys in
    let ymin = min ymin 0.0 in
    let xspan = if xmax = xmin then 1.0 else xmax -. xmin in
    let yspan = if ymax = ymin then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    let plot_series idx s =
      let marker = markers.(idx mod Array.length markers) in
      (* Draw line segments between consecutive points so sparse series
         still read as curves. *)
      let cell (x, y) =
        let cx =
          int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
        in
        let cy =
          int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
        in
        (max 0 (min (width - 1) cx), max 0 (min (height - 1) cy))
      in
      let draw_segment (x1, y1) (x2, y2) =
        let steps = max (abs (x2 - x1)) (abs (y2 - y1)) in
        for k = 0 to steps do
          let t = if steps = 0 then 0.0 else float_of_int k /. float_of_int steps in
          let cx = x1 + int_of_float (t *. float_of_int (x2 - x1)) in
          let cy = y1 + int_of_float (t *. float_of_int (y2 - y1)) in
          grid.(height - 1 - cy).(cx) <- marker
        done
      in
      let sorted = List.sort compare s.points in
      let rec go = function
        | a :: (b :: _ as rest) ->
            draw_segment (cell a) (cell b);
            go rest
        | [ single ] ->
            let cx, cy = cell single in
            grid.(height - 1 - cy).(cx) <- marker
        | [] -> ()
      in
      go sorted
    in
    List.iteri plot_series series;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (title ^ "\n");
    if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
    Array.iteri
      (fun row line ->
        let y = ymax -. (float_of_int row /. float_of_int (height - 1) *. yspan) in
        Buffer.add_string buf (Printf.sprintf "%10.2f |" y);
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ' ^ "+" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-10.2f%*s%.2f  %s\n" "" xmin (width - 18) ""
         xmax x_label);
    List.iteri
      (fun idx s ->
        Buffer.add_string buf
          (Printf.sprintf "          %c = %s\n" markers.(idx mod Array.length markers)
             s.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ?x_label ?y_label ~title series =
  print_string (render ?width ?height ?x_label ?y_label ~title series);
  print_newline ()

let spark_levels =
  [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 60) values =
  let n = List.length values in
  if n = 0 then ""
  else begin
    let v = Array.of_list values in
    (* Downsample by bucket-max so short spikes survive compression. *)
    let cells = min width n in
    let bucketed =
      Array.init cells (fun c ->
        let lo = c * n / cells and hi = ((c + 1) * n / cells) - 1 in
        let m = ref v.(lo) in
        for k = lo + 1 to max lo hi do
          if v.(k) > !m then m := v.(k)
        done;
        !m)
    in
    let vmin = Array.fold_left min bucketed.(0) bucketed in
    let vmax = Array.fold_left max bucketed.(0) bucketed in
    let span = if vmax = vmin then 1.0 else vmax -. vmin in
    let buf = Buffer.create (cells * 3) in
    Array.iter
      (fun x ->
        let lvl =
          int_of_float ((x -. vmin) /. span *. 7.0 +. 0.5)
        in
        Buffer.add_string buf spark_levels.(max 0 (min 7 lvl)))
      bucketed;
    Buffer.contents buf
  end
