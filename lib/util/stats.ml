let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let geomean a =
  assert (Array.length a > 0);
  let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 a in
  exp (log_sum /. float_of_int (Array.length a))

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  assert (Array.length a > 0);
  let b = sorted a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2)
  else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty sample";
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg (Printf.sprintf "Stats.percentile: p = %g not in [0, 100]" p);
  let b = sorted a in
  let n = Array.length b in
  (* Nearest-rank; the endpoints are pinned so p = 0 is the sample
     minimum (the rank formula alone would also give b.(0), but only via
     the clamp) and p = 100 the maximum. *)
  if p = 0.0 then b.(0)
  else if p = 100.0 then b.(n - 1)
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    b.(idx)

let stddev a =
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)
  in
  sqrt var

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

let pearson xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.pearson: samples differ in length";
  if Array.length xs < 2 then
    invalid_arg "Stats.pearson: need at least two observations";
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let a = x -. mx and b = ys.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    xs;
  if !dx = 0.0 || !dy = 0.0 then
    invalid_arg "Stats.pearson: correlation undefined for a constant sample";
  !num /. sqrt (!dx *. !dy)
