(** Small statistics helpers used by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val geomean : float array -> float
(** Geometric mean. Requires a non-empty array of positive values. *)

val median : float array -> float
(** Median (does not mutate the input). Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0, 100\]], nearest-rank method.
    [p = 0] yields the sample minimum and [p = 100] the maximum; a
    single-element sample returns that element for every [p]. Raises
    [Invalid_argument] on an empty sample or [p] outside the range. *)

val stddev : float array -> float
(** Population standard deviation. Requires a non-empty array. *)

val minimum : float array -> float
val maximum : float array -> float

val pearson : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length samples; used by
    the benches to quantify the paper's "event counts strongly correlate
    with overall performance" claims (Figures 14b/16b). Raises
    [Invalid_argument] on mismatched lengths, fewer than two
    observations, or a constant sample (zero variance leaves the
    coefficient undefined). *)
