type t = { mutable state : int64 }

let create seed =
  if seed = 0 then { state = 0x9E3779B97F4A7C15L }
  else { state = Int64.of_int seed }

let copy t = { state = t.state }

let next t =
  let open Int64 in
  let x = t.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  t.state <- x;
  mul x 0x2545F4914F6CDD1DL

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

(* Inverse-CDF exponential draw; [1.0 -. u] keeps the argument of [log]
   in (0, 1] so the result is finite and non-negative. *)
let exponential t ~mean =
  assert (mean > 0.0);
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
