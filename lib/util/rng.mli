(** Deterministic pseudo-random number generation.

    All simulations in this repository must be reproducible, so every
    component that needs randomness takes an explicit [Rng.t] seeded by the
    caller instead of using the global [Random] state. The generator is
    xorshift64*, which is fast and has good statistical quality for
    simulation workloads. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. A zero seed is remapped to a
    fixed non-zero constant since xorshift has an all-zero fixed point. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> mean:float -> float
(** One exponentially distributed draw with the given mean — the
    inter-arrival time of a Poisson process at rate [1 /. mean]. The
    open-loop traffic generator draws its arrival gaps here. Requires
    [mean > 0.]; the result is finite and non-negative. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
