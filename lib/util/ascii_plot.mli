(** Terminal line charts for the benchmark harness.

    Each reproduced figure prints its data table and, through this module,
    an ASCII rendering of the series so the shape (crossovers, plateaus,
    convergence) is visible without exporting CSV to a plotting tool. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** Render series into a [width] x [height] character grid (defaults
    64 x 16) with axis annotations. Each series is drawn with its own
    marker character; a legend maps markers to labels. Points sharing a
    cell show the later series' marker. *)

val print :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  unit

val sparkline : ?width:int -> float list -> string
(** One-line unicode sparkline (block characters U+2581..U+2588),
    normalised to the series range. Series longer than [width]
    (default 60) are downsampled by bucket maximum so short spikes stay
    visible. Empty input yields the empty string. *)
