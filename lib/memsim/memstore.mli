(** Sparse byte-addressable backing storage.

    Both the "local DRAM" and the "remote server" of the simulated cluster
    store real data here, so workloads compute real results (STREAM sums
    check out, hash lookups return the stored values). Pages materialize
    lazily and read as zero before the first write, like anonymous mmap. *)

type t

val create : unit -> t

val load : t -> addr:int -> size:int -> int
(** Little-endian load of 1, 2, 4 or 8 bytes. 8-byte loads fill the OCaml
    63-bit int; the top byte is truncated to keep values non-negative
    tags intact (all simulated data fits 63 bits). *)

val store : t -> addr:int -> size:int -> int -> unit

val load_float : t -> addr:int -> float
val store_float : t -> addr:int -> float -> unit

val load64 : t -> addr:int -> int64
val store64 : t -> addr:int -> int64 -> unit
(** Exact 64-bit accessors for byte movers that must preserve every bit
    ({!load} with [size:8] truncates to 63 bits and would clear the sign
    bit of stored doubles); used by the replication tier's copies and
    checksums. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Copy a byte range (used by realloc). *)

val page_size : int
(** Granularity of lazy materialization (4096). *)

val page_bits : int
(** [log2 page_size]. *)

val page_mask : int
(** [page_size - 1]. *)

val page_of : t -> int -> Bytes.t
(** [page_of t idx] is the backing bytes of page [idx], materializing a
    zeroed page on first touch. Pages are never dropped or replaced, so
    the handle stays valid (and authoritative) for the lifetime of [t];
    the compiled execution engine caches it per access site to skip the
    hash lookup on page-local streaks. *)
