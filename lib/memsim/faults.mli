(** Seeded, deterministic fault injection for the simulated fabric.

    The paper's fabric (and AIFM's/Fastswap's) is perfectly cooperative:
    every fetch lands after exactly [latency + size/bandwidth] cycles.
    This module makes it adversarial. Four injectors, all driven by the
    simulated clock and a fixed seed so that two runs of the same
    workload produce byte-identical metrics:

    - {b transient drops} (NACKs): an attempt fails after one round trip
      and must be retried;
    - {b timeouts}: an attempt silently disappears and the sender only
      learns after its attempt timeout fires;
    - {b latency spikes}: an attempt is delivered but pays extra cycles
      drawn from a Pareto-style tail distribution;
    - {b outage windows}: the remote memory server is unreachable for a
      fixed-length window roughly once per configured period. Windows
      are a pure function of (seed, index), so [in_outage] needs no
      mutable scanning state and tolerates the clock reset at
      [!bench_begin].

    Per-attempt randomness comes from a private xorshift stream
    ({!Tfm_util.Rng}); attempts are made in deterministic order by the
    single-threaded simulation, so the whole fault schedule is
    reproducible from [(config, seed)]. *)

type config = {
  drop : float;  (** P(attempt is NACKed), [0 <= p], [drop + timeout < 1] *)
  timeout : float;  (** P(attempt times out) *)
  spike : float;  (** P(delivered attempt pays a latency spike) *)
  spike_cycles : int;  (** Pareto scale of the spike tail, cycles *)
  spike_alpha : float;  (** Pareto tail exponent (smaller = heavier) *)
  outage_period : int;  (** approx cycles between outages; 0 disables *)
  outage_len : int;  (** outage window length, cycles *)
  crash_period : int;
      (** approx cycles between node crashes (per cluster node, on the
          monotonic clock); 0 disables. Consumed by {!Cluster}, not by
          the per-attempt injector. *)
  crash_downtime : int;  (** how long a crashed node stays down, cycles *)
  corrupt : float;
      (** P(a fetched payload arrives with a flipped bit), [0 <= p < 1].
          Corruption is transit-only: the stored copy stays intact, so a
          re-fetch (from the same or another replica) can repair it. *)
}

val off : config
(** All rates zero: no faults. *)

type t

val disabled : t
(** The no-faults injector; {!enabled} is [false] and every attempt is
    delivered with no extra latency. The fabric takes the exact pre-fault
    code path, so disabled runs reproduce fault-free counters bit for
    bit. *)

val create : ?seed:int -> config -> t
(** [create ~seed cfg] is {!disabled} when [cfg] = {!off}, otherwise a
    live injector. @raise Invalid_argument on out-of-range rates or
    [outage_len >= outage_period]. *)

val enabled : t -> bool
val config : t -> config
val seed : t -> int

type verdict =
  | Deliver of int  (** delivered; the payload is the extra spike cycles *)
  | Nack  (** transient drop: the remote refused, retry after backoff *)
  | Timeout  (** the attempt vanished; sender pays its attempt timeout *)

val attempt : t -> verdict
(** Fate of one network attempt. Consumes the injector's random stream;
    [Deliver 0] always when disabled. *)

val in_outage : t -> now:int -> bool
(** Is the remote server inside an outage window at simulated time
    [now]? Pure in [now] (no stream consumed). *)

val outage_end : t -> now:int -> int option
(** End cycle of the outage window covering [now], if any. *)

val outage_window : t -> int -> (int * int) option
(** [outage_window t i] is the [i]-th (0-based) outage window as
    [(start, stop)]; [None] when outages are disabled. Exposed for tests
    and the CI fault matrix. *)

val parse : string -> (config, string) result
(** Parse a [--faults] spec. Grammar:

    {v
    SPEC    ::= "none" | "light" | "medium" | "heavy" | FIELDS
    FIELDS  ::= FIELD ("," FIELD)*
    FIELD   ::= "drop=" FLOAT
              | "timeout=" FLOAT
              | "spike=" FLOAT ":" CYCLES [":" ALPHA]
              | "outage=" PERIOD ":" LEN
              | "crash=" PERIOD ":" DOWNTIME
              | "corrupt=" FLOAT
    v}

    e.g. ["drop=0.02,timeout=0.01,spike=0.05:40000:1.5,outage=2000000:150000"]
    or ["crash=1500000:250000,corrupt=0.001"]. Errors name the offending
    token: a known key with the wrong shape gets that key's usage (e.g.
    ["\"drop=0.1:5\": drop needs drop=PROB"]), an unknown key (a typo
    like [timout=]) gets the list of valid keys. *)

val to_string : config -> string
(** Canonical spec string ([parse (to_string c) = Ok c] for valid [c]). *)
