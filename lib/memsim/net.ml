type backend = Tcp | Rdma

type retry_policy = {
  max_attempts : int;
  attempt_timeout : int;
  op_deadline : int;
  backoff_base : int;
  backoff_cap : int;
  fail_fast_cycles : int;
  probe_interval : int;
}

(* Scaled off the ~32 Kcycle wire round trip: a 4-RTT attempt timeout,
   1-RTT base backoff capped at 16 RTT, and a 64-RTT per-op deadline. *)
let default_policy =
  {
    max_attempts = 5;
    attempt_timeout = 128_000;
    op_deadline = 2_048_000;
    backoff_base = 32_000;
    backoff_cap = 512_000;
    fail_fast_cycles = 40;
    probe_interval = 1_024_000;
  }

type error =
  | Unreachable of { probe_at : int }
  | Budget_exhausted of { attempts : int }

type event =
  | Retry of { attempt : int; backoff : int; reason : [ `Nack | `Timeout ] }
  | Breaker_opened of { at : int; probe_at : int }
  | Breaker_closed of { opened_at : int; at : int }
  | Fetch_failed of { attempts : int }
  | Failover of { key : int; primary : int; replica : int }
  | Corruption_detected of { key : int; node : int }
  | Repaired of { key : int; node : int }
  | Object_lost of { key : int }

type breaker = Closed | Open of { opened_at : int; probe_at : int }

type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  latency : int;
  faults : Faults.t;
  cluster : Cluster.t option;
  policy : retry_policy;
  jitter : Tfm_util.Rng.t;
  mutable breaker : breaker;
  mutable stall_handler : cycles:int -> unit;
  mutable on_event : event -> unit;
  (* Causal-attribution scope hooks (installed by the telemetry sink):
     cycles charged between [span_enter k] and [span_leave ()] belong to
     fault-path retries or to replica failover, not to the fetch itself.
     Default no-ops; the fault-free fetch path never calls them. *)
  mutable span_enter : [ `Retry | `Failover ] -> unit;
  mutable span_leave : unit -> unit;
}

let create ?(faults = Faults.disabled) ?cluster ?(policy = default_policy)
    cost clock backend =
  let latency =
    match backend with
    | Tcp -> cost.Cost_model.tcp_latency
    | Rdma -> cost.Cost_model.rdma_latency
  in
  {
    cost;
    clock;
    latency;
    faults;
    cluster;
    policy;
    (* Jitter draws come from a stream independent of the fault verdicts
       so policy tweaks do not shift which attempts fail. *)
    jitter = Tfm_util.Rng.create (Faults.seed faults + 0x5bd1e995);
    breaker = Closed;
    stall_handler = (fun ~cycles:_ -> ());
    on_event = (fun _ -> ());
    span_enter = (fun _ -> ());
    span_leave = (fun () -> ());
  }

let faults t = t.faults
let cluster t = t.cluster
let set_stall_handler t f = t.stall_handler <- f
let on_event t f = t.on_event <- f

let set_span_scope t ~enter ~leave =
  t.span_enter <- enter;
  t.span_leave <- leave

(* Run [f] inside an attribution scope, even across exceptions (none of
   the fault paths raise today, but the hook contract must not depend on
   that). *)
let in_scope t kind f =
  t.span_enter kind;
  Fun.protect ~finally:t.span_leave f
let remote_available t = t.breaker = Closed

(* Sleeping (backoff, waiting out an open breaker) charges the simulated
   clock here; the handler only adds scheduler integration on top. *)
let stall t cycles =
  if cycles > 0 then begin
    Clock.tick t.clock cycles;
    Clock.count t.clock "net.stall_cycles" cycles;
    t.stall_handler ~cycles
  end

(* Success-side accounting shared by demand and prefetched fetches. *)
let account_success t ~bytes ~prefetched =
  Clock.count t.clock "net.bytes_in" bytes;
  Clock.count t.clock "net.fetches" 1;
  if prefetched then Clock.count t.clock "net.prefetched_fetches" 1

(* -- fault-free path (bit-identical to the pre-fault model) -------------- *)

let plain_fetch t ~bytes ~latency ~prefetched =
  Clock.tick t.clock (Cost_model.transfer_cycles t.cost ~latency ~bytes);
  account_success t ~bytes ~prefetched

(* -- fault path ---------------------------------------------------------- *)

let open_breaker t =
  let now = Clock.cycles t.clock in
  let probe_at = now + t.policy.probe_interval in
  (match t.breaker with
  | Open _ -> ()
  | Closed ->
      Clock.count t.clock "net.breaker_opens" 1;
      t.on_event (Breaker_opened { at = now; probe_at }));
  (match t.breaker with
  | Open { opened_at; _ } -> t.breaker <- Open { opened_at; probe_at }
  | Closed -> t.breaker <- Open { opened_at = now; probe_at })

let close_breaker t =
  match t.breaker with
  | Closed -> ()
  | Open { opened_at; _ } ->
      t.breaker <- Closed;
      t.on_event (Breaker_closed { opened_at; at = Clock.cycles t.clock })

(* One wire attempt: charges its own cost and reports the outcome. An
   attempt made inside an outage window never arrives — the sender only
   learns via its attempt timeout. Failed "prefetched" attempts lost
   their overlap, so every failure costs wire-level cycles. *)
let wire_attempt t ~bytes ~success_latency ~prefetched =
  let now = Clock.cycles t.clock in
  if Faults.in_outage t.faults ~now then
    in_scope t `Retry (fun () ->
        Clock.tick t.clock t.policy.attempt_timeout;
        Clock.count t.clock "net.timeouts" 1;
        `Failed `Timeout)
  else
    match Faults.attempt t.faults with
    | Faults.Deliver extra ->
        Clock.tick t.clock
          (Cost_model.transfer_cycles t.cost ~latency:success_latency ~bytes
          + extra);
        if extra > 0 then begin
          Clock.count t.clock "net.latency_spikes" 1;
          Clock.count t.clock "net.spike_cycles" extra
        end;
        account_success t ~bytes ~prefetched;
        `Delivered
    | Faults.Nack ->
        (* The remote answered with a refusal: one round trip burned. *)
        in_scope t `Retry (fun () ->
            Clock.tick t.clock t.latency;
            Clock.count t.clock "net.nacks" 1;
            `Failed `Nack)
    | Faults.Timeout ->
        in_scope t `Retry (fun () ->
            Clock.tick t.clock t.policy.attempt_timeout;
            Clock.count t.clock "net.timeouts" 1;
            `Failed `Timeout)

(* Exponential backoff with deterministic decorrelating jitter: sleep in
   [backoff/2, backoff], doubling per retry up to the cap. *)
let backoff_cycles t ~attempt =
  let base =
    min t.policy.backoff_cap (t.policy.backoff_base lsl min 20 (attempt - 1))
  in
  let half = max 1 (base / 2) in
  half + Tfm_util.Rng.int t.jitter half

let try_fetch_faulted t ~bytes ~success_latency ~prefetched =
  let now = Clock.cycles t.clock in
  match t.breaker with
  | Open { probe_at; _ } when now < probe_at ->
      (* Fail fast: no wire traffic while the breaker is open. *)
      in_scope t `Retry (fun () ->
          Clock.tick t.clock t.policy.fail_fast_cycles);
      Clock.count t.clock "net.fail_fast" 1;
      Error (Unreachable { probe_at })
  | Open _ -> (
      (* Half-open: one probe attempt, no retry ladder. *)
      Clock.count t.clock "net.breaker_probes" 1;
      match wire_attempt t ~bytes ~success_latency ~prefetched with
      | `Delivered ->
          close_breaker t;
          Ok ()
      | `Failed _ ->
          open_breaker t;
          let probe_at =
            match t.breaker with
            | Open { probe_at; _ } -> probe_at
            | Closed -> assert false
          in
          Error (Unreachable { probe_at }))
  | Closed ->
      let start = Clock.cycles t.clock in
      let rec attempt_loop attempt =
        match wire_attempt t ~bytes ~success_latency ~prefetched with
        | `Delivered -> Ok ()
        | `Failed reason ->
            let spent = Clock.cycles t.clock - start in
            if attempt >= t.policy.max_attempts
               || spent >= t.policy.op_deadline
            then begin
              Clock.count t.clock "net.fetch_failures" 1;
              t.on_event (Fetch_failed { attempts = attempt });
              (* A fully exhausted ladder is the breaker's trip signal:
                 flip to fail-fast and probe for recovery. *)
              open_breaker t;
              let probe_at =
                match t.breaker with
                | Open { probe_at; _ } -> probe_at
                | Closed -> assert false
              in
              if Faults.in_outage t.faults ~now:(Clock.cycles t.clock) then
                Error (Unreachable { probe_at })
              else Error (Budget_exhausted { attempts = attempt })
            end
            else begin
              let backoff = backoff_cycles t ~attempt in
              Clock.count t.clock "net.retries" 1;
              Clock.count t.clock "net.backoff_cycles" backoff;
              t.on_event (Retry { attempt; backoff; reason });
              in_scope t `Retry (fun () -> stall t backoff);
              attempt_loop (attempt + 1)
            end
      in
      attempt_loop 1

let try_fetch_with t ~bytes ~success_latency ~prefetched =
  if not (Faults.enabled t.faults) then begin
    plain_fetch t ~bytes ~latency:success_latency ~prefetched;
    Ok ()
  end
  else try_fetch_faulted t ~bytes ~success_latency ~prefetched

let try_fetch t ~bytes =
  try_fetch_with t ~bytes ~success_latency:t.latency ~prefetched:false

(* Blocking fetch: the application cannot make progress without the
   data, so ride out failures — stall to the breaker's probe time (or
   one backoff cap after an exhausted ladder) and go again. Every cycle
   lands on the simulated clock, so finite outage windows always end. *)
let rec fetch_blocking t ~bytes ~success_latency ~prefetched =
  match try_fetch_with t ~bytes ~success_latency ~prefetched with
  | Ok () -> ()
  | Error e ->
      in_scope t `Retry (fun () ->
          match e with
          | Unreachable { probe_at } ->
              stall t (probe_at - Clock.cycles t.clock)
          | Budget_exhausted _ -> stall t t.policy.backoff_cap);
      (* After the first failed op the overlap window is long gone. *)
      fetch_blocking t ~bytes ~success_latency:t.latency ~prefetched

let fetch t ~bytes =
  fetch_blocking t ~bytes ~success_latency:t.latency ~prefetched:false

let fetch_prefetched t ~bytes =
  (* Same cost/counter path as [fetch]; the hidden latency shows up as
     the residual [prefetch_hit] charge on success. *)
  fetch_blocking t ~bytes ~success_latency:t.cost.Cost_model.prefetch_hit
    ~prefetched:true

(* Dirty data is pushed back by the asynchronous reclaim path (Fastswap's
   dedicated reclaim core, AIFM's evacuator threads), so the application
   only pays a small enqueue cost; the volume still counts toward the
   transfer totals the I/O-amplification figures report. *)
let writeback_enqueue_cycles = 250

let writeback t ~bytes =
  Clock.tick t.clock writeback_enqueue_cycles;
  Clock.count t.clock "net.bytes_out" bytes;
  Clock.count t.clock "net.writebacks" 1

(* -- replicated tier ------------------------------------------------------

   Object-granular entry points used by the runtimes. With no cluster
   attached they delegate to the exact single-server paths above, so a
   [--replicas 1] run with no crash/corrupt faults stays bit-identical
   to the pre-replication model. With a cluster, a fetch walks the
   replica ladder primary-first: each candidate read pays the normal
   wire cost (including the fault/retry/breaker machinery), corrupted
   payloads are detected against the checksum envelope and repaired by
   re-fetching, and when no replica holds the object the loss is
   declared and the workload observes zeroes. *)

let replicated_fetch t c ~key ~bytes ~success_latency ~prefetched =
  let primary = Cluster.primary c ~key in
  let failed_over = ref false in
  let corrupted = ref false in
  let rec go ~excluded ~success_latency =
    let all = Cluster.read_candidates c ~key in
    let filtered = List.filter (fun n -> not (List.mem n excluded)) all in
    (* If corruption excluded every holder, forgive and retry them:
       corruption is transit-only, a re-read can come back clean. *)
    let candidates, excluded =
      if filtered = [] && all <> [] then (all, []) else (filtered, excluded)
    in
    match candidates with
    | [] -> (
        match Cluster.earliest_pending c ~key with
        | Some at ->
            (* Every visible copy is down, but a lagged replica write is
               in flight: wait for it to apply, then retry. *)
            in_scope t `Failover (fun () ->
                stall t (max 1 (at - Clock.monotonic t.clock)));
            go ~excluded ~success_latency:t.latency
        | None ->
            (* No copy anywhere, none coming: the object is gone. One
               round trip to learn it; the workload reads zeroes. *)
            in_scope t `Failover (fun () -> Clock.tick t.clock t.latency);
            (match Cluster.declare_lost c ~key with
            | `Lost ->
                Clock.count t.clock "net.lost_objects" 1;
                t.on_event (Object_lost { key })
            | `Stale ->
                (* Only a stale shadow of a freed/rewritten range was
                   wiped; the live bytes are in main. *)
                Clock.count t.clock "net.stale_drops" 1))
    | node :: _ -> (
        if node <> primary && not !failed_over then begin
          failed_over := true;
          Clock.count t.clock "net.failovers" 1;
          t.on_event (Failover { key; primary; replica = node })
        end;
        match try_fetch_with t ~bytes ~success_latency ~prefetched with
        | Error (Unreachable { probe_at }) ->
            in_scope t `Failover (fun () ->
                stall t (probe_at - Clock.cycles t.clock));
            go ~excluded ~success_latency:t.latency
        | Error (Budget_exhausted _) ->
            in_scope t `Failover (fun () -> stall t t.policy.backoff_cap);
            go ~excluded ~success_latency:t.latency
        | Ok () ->
            if Cluster.corrupt_draw c ~node then begin
              (* Checksum mismatch on the delivered payload: count the
                 detection, drop this replica for the moment and re-fetch
                 (the wire cost of the bad read is already charged). *)
              Clock.count t.clock "net.corruptions_detected" 1;
              t.on_event (Corruption_detected { key; node });
              corrupted := true;
              go ~excluded:(node :: excluded) ~success_latency:t.latency
            end
            else begin
              if !corrupted then begin
                Clock.count t.clock "net.repairs" 1;
                t.on_event (Repaired { key; node })
              end;
              match Cluster.deliver c ~key ~node with
              | `Delivered -> ()
              | `Stale -> Clock.count t.clock "net.stale_drops" 1
              | `Lost ->
                  (* Lost mid-fetch: the stall that got us to this node
                     crossed a crash window that took the last copy. The
                     loss is already counted and main zeroed. *)
                  Clock.count t.clock "net.lost_reads" 1
            end)
  in
  go ~excluded:[] ~success_latency

let fetch_object t ~key ~bytes =
  match t.cluster with
  | None -> fetch t ~bytes
  | Some c ->
      if Cluster.has_object c ~key then
        replicated_fetch t c ~key ~bytes ~success_latency:t.latency
          ~prefetched:false
      else
        (* Never written back: nothing replicated (or lost and already
           zeroed) — the single-server path applies. *)
        fetch t ~bytes

let fetch_object_prefetched t ~key ~bytes =
  match t.cluster with
  | None -> fetch_prefetched t ~bytes
  | Some c ->
      if Cluster.has_object c ~key then
        replicated_fetch t c ~key ~bytes
          ~success_latency:t.cost.Cost_model.prefetch_hit ~prefetched:true
      else fetch_prefetched t ~bytes

let writeback_object t ~key ~bytes =
  match t.cluster with
  | None -> writeback t ~bytes
  | Some c ->
      Clock.tick t.clock writeback_enqueue_cycles;
      Clock.count t.clock "net.writebacks" 1;
      let r = Cluster.writeback c ~key ~size:bytes in
      (* The async reclaim path ships one copy per replica written. *)
      Clock.count t.clock "net.bytes_out" (bytes * r.Cluster.written);
      if r.Cluster.lagged > 0 then
        Clock.count t.clock "net.replica_lag" r.Cluster.lagged;
      if r.Cluster.skipped > 0 then
        Clock.count t.clock "net.replica_skips" r.Cluster.skipped

let resync_batch = 512
let resync_orchestration_cycles = 120

let resync_step t =
  match t.cluster with
  | None -> 0
  | Some c ->
      let moved = Cluster.resync_step c ~budget:resync_batch in
      if moved > 0 then begin
        (* Replica-to-replica traffic: the compute node only pays the
           orchestration cost and yields while the copies stream. *)
        Clock.tick t.clock resync_orchestration_cycles;
        Clock.count t.clock "net.resync_objects" moved;
        t.stall_handler ~cycles:resync_orchestration_cycles
      end;
      moved

let bytes_in t = Clock.get t.clock "net.bytes_in"
let bytes_out t = Clock.get t.clock "net.bytes_out"
let fetches t = Clock.get t.clock "net.fetches"
