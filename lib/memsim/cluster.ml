(* N-node replicated remote-memory tier.

   Each node shadows a slice of the authoritative [Memstore.t] (the
   "main" store workloads compute against): a writeback copies the
   object's bytes into the replica set's node stores, a localization
   copies them back. Data loss therefore becomes *observable*: when a
   crash schedule wipes every replica of an object, the fetch zeroes the
   object's bytes in the main store and the workload's checksum comes
   out wrong — exactly what the durability experiment asserts.

   All time is {!Clock.monotonic}: [!bench_begin] resets [Clock.cycles]
   to isolate the measured region, and the crash schedule and
   replication timestamps must not jump backward across that boundary.

   Determinism: crash windows are a pure function of (seed, node,
   index); corruption draws are a pure function of (seed, node, the
   node's fetch sequence number). No wall clock, no global RNG. *)

type copy = {
  version : int;
  written_at : int;  (* when the bytes landed on the node (monotonic) *)
  applied_at : int;  (* visible for reads from this time on; > written_at
                        for lagged (beyond-ack) replicas *)
}

type entry = {
  mutable version : int;
  mutable checksum : int;
  mutable size : int;
}

type node = {
  store : Memstore.t;
  copies : (int, copy) Hashtbl.t;
  (* Index of the newest crash window already processed (wiped) /
     already recovered from; -1 initially. *)
  mutable crash_seen : int;
  mutable recovery_seen : int;
  mutable recovering : bool;
  mutable pending : int list;  (* keys awaiting re-replication *)
  mutable fetch_seq : int;  (* corruption-draw sequence number *)
}

type event =
  | Node_crashed of { node : int; at : int; until : int; lost : int }
  | Node_recovered of { node : int; at : int; missing : int }

type wb = { written : int; lagged : int; skipped : int }

type t = {
  clock : Clock.t;
  main : Memstore.t;
  nodes : node array;
  ack : int;
  seed : int;
  crash_period : int;
  crash_downtime : int;
  corrupt : float;
  directory : (int, entry) Hashtbl.t;
  mutable on_event : event -> unit;
}

let replica_lag_cycles = 64_000

let fresh_node () =
  {
    store = Memstore.create ();
    copies = Hashtbl.create 64;
    crash_seen = -1;
    recovery_seen = -1;
    recovering = false;
    pending = [];
    fetch_seq = 0;
  }

let create ?(seed = 1) ~clock ~store ~replicas ~ack ~crash_period
    ~crash_downtime ~corrupt () =
  if replicas < 1 || replicas > 8 then
    invalid_arg "Cluster.create: replicas must be in 1..8";
  if ack < 1 || ack > replicas then
    invalid_arg "Cluster.create: ack must be in 1..replicas";
  if crash_period < 0 || crash_downtime < 0 then
    invalid_arg "Cluster.create: negative crash parameter";
  if crash_period > 0 && crash_downtime <= 0 then
    invalid_arg "Cluster.create: crash downtime must be > 0";
  if crash_period > 0 && crash_downtime >= crash_period then
    invalid_arg "Cluster.create: crash downtime must be < crash period";
  if corrupt < 0.0 || corrupt >= 1.0 then
    invalid_arg "Cluster.create: corrupt rate must be in [0, 1)";
  {
    clock;
    main = store;
    nodes = Array.init replicas (fun _ -> fresh_node ());
    ack;
    seed = max 1 seed;
    crash_period;
    crash_downtime;
    corrupt;
    directory = Hashtbl.create 256;
    on_event = (fun _ -> ());
  }

let create_opt ?seed ~clock ~store ~replicas ~ack ~(faults : Faults.config) ()
    =
  (* The zero-cost guarantee: a single node with no crash/corrupt faults
     is exactly the pre-replication model, so no cluster is built at all
     and every op takes the original code path bit for bit. *)
  if replicas = 1 && faults.Faults.crash_period = 0 && faults.corrupt = 0.0
  then None
  else
    Some
      (create ?seed ~clock ~store ~replicas ~ack
         ~crash_period:faults.crash_period
         ~crash_downtime:faults.crash_downtime ~corrupt:faults.corrupt ())

let set_on_event t f = t.on_event <- f
let replicas t = Array.length t.nodes
let ack t = t.ack
let now t = Clock.monotonic t.clock
let has_object t ~key = Hashtbl.mem t.directory key
let directory_size t = Hashtbl.length t.directory

(* splitmix64-style finalizer (63-bit), same shape as Faults.hash2 *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0xBF58476D land max_int in
  let x = x lxor (x lsr 27) in
  let x = x * 0x94D049BB land max_int in
  x lxor (x lsr 31)

let hash3 seed n i =
  mix ((seed * 0x9E3779B9) + (n * 0xC2B2AE35) + (i * 0x85EBCA6B) + 0x94D049BB)

let primary t ~key = mix key mod Array.length t.nodes

(* -- byte movement -------------------------------------------------------

   Objects are 8-byte aligned in every backend (object sizes and the
   page size are multiples of 8), but keep a byte tail for safety. *)

(* All movement uses the exact 64-bit accessors: [Memstore.load ~size:8]
   truncates to 63 bits and would clear the top bit of every copied word
   (the sign bit of negative doubles). *)

let copy_range ~src ~dst ~addr ~len =
  let words = len / 8 in
  for k = 0 to words - 1 do
    Memstore.store64 dst ~addr:(addr + (8 * k))
      (Memstore.load64 src ~addr:(addr + (8 * k)))
  done;
  for k = 8 * words to len - 1 do
    Memstore.store dst ~addr:(addr + k) ~size:1
      (Memstore.load src ~addr:(addr + k) ~size:1)
  done

let zero_range store ~addr ~len =
  let words = len / 8 in
  for k = 0 to words - 1 do
    Memstore.store64 store ~addr:(addr + (8 * k)) 0L
  done;
  for k = 8 * words to len - 1 do
    Memstore.store store ~addr:(addr + k) ~size:1 0
  done

let checksum_range store ~addr ~len =
  (* FNV-1a-flavoured fold over 8-byte words, truncated to 63 bits at
     the end. *)
  let h = ref 0x15051505L in
  let words = len / 8 in
  for k = 0 to words - 1 do
    let w = Memstore.load64 store ~addr:(addr + (8 * k)) in
    h := Int64.mul (Int64.logxor !h w) 0x100000001B3L
  done;
  for k = 8 * words to len - 1 do
    let b = Memstore.load store ~addr:(addr + k) ~size:1 in
    h := Int64.mul (Int64.logxor !h (Int64.of_int b)) 0x100000001B3L
  done;
  Int64.to_int !h land max_int

let object_checksum t ~key =
  Option.map (fun e -> e.checksum) (Hashtbl.find_opt t.directory key)

(* -- crash schedule ------------------------------------------------------

   Window [i] of node [n] is anchored at [(i+1)*period] plus a per-node
   phase stagger ([n*period/N], so an N-node cluster never loses all
   replicas to one synchronized blast) and a deterministic jitter of up
   to +/- period/32 hashed from (seed, n, i). Pure in (seed, n, i): no
   mutable cursor to desynchronize. *)

let window t n i =
  let p = t.crash_period in
  let phase = n * p / Array.length t.nodes in
  let span = max 1 (p / 16) in
  let jitter = (hash3 t.seed n i mod span) - (span / 2) in
  let start = ((i + 1) * p) + phase + jitter in
  (start, start + t.crash_downtime)

let crash_window t ~node i =
  if t.crash_period <= 0 || i < 0 then None else Some (window t node i)

(* Newest window index whose start is <= now; -1 if none has started.
   Starts are strictly increasing in i (jitter << period), so scanning
   down from now/period finds it within a few probes. *)
let newest_started t n ~now =
  if t.crash_period <= 0 then -1
  else begin
    let rec find i =
      if i < 0 then -1
      else
        let start, _ = window t n i in
        if start <= now then i else find (i - 1)
    in
    find (now / t.crash_period)
  end

let up_after_process t n ~now =
  t.crash_period <= 0
  ||
  let node = t.nodes.(n) in
  node.crash_seen < 0
  ||
  let _, stop = window t n node.crash_seen in
  now >= stop

(* Lazy processing: bring node [n]'s crash bookkeeping up to [now].
   Wiping with cutoff [written_at < stop] of the newest started window
   is exact: no copy can be written while the node is down, so every
   copy written before [stop] was written before [start] of some
   unprocessed window and died with the node; copies written at or
   after [stop] postdate the recovery and survive. *)
let process_node t n ~now =
  if t.crash_period > 0 then begin
    let node = t.nodes.(n) in
    let newest = newest_started t n ~now in
    if newest > node.crash_seen then begin
      let _, stop = window t n newest in
      let doomed =
        Hashtbl.fold
          (fun k c acc -> if c.written_at < stop then k :: acc else acc)
          node.copies []
      in
      List.iter (Hashtbl.remove node.copies) doomed;
      for i = node.crash_seen + 1 to newest do
        let start, stop = window t n i in
        Clock.count t.clock "cluster.crashes" 1;
        t.on_event
          (Node_crashed
             {
               node = n;
               at = start;
               until = stop;
               lost = (if i = newest then List.length doomed else 0);
             })
      done;
      node.crash_seen <- newest
    end;
    if node.crash_seen >= 0 && node.recovery_seen < node.crash_seen then begin
      let _, stop = window t n node.crash_seen in
      if now >= stop then begin
        node.recovery_seen <- node.crash_seen;
        (* A single-node "cluster" has no peer to resync from. *)
        let missing =
          if Array.length t.nodes = 1 then []
          else
            Hashtbl.fold
              (fun k e acc ->
                match Hashtbl.find_opt node.copies k with
                | Some c when c.version = e.version -> acc
                | _ -> k :: acc)
              t.directory []
            |> List.sort compare
        in
        node.pending <- missing;
        node.recovering <- missing <> [];
        Clock.count t.clock "cluster.recoveries" 1;
        t.on_event
          (Node_recovered { node = n; at = stop; missing = List.length missing })
      end
    end
  end

let sync t ~now =
  for n = 0 to Array.length t.nodes - 1 do
    process_node t n ~now
  done

let node_state t n =
  let now = now t in
  sync t ~now;
  if not (up_after_process t n ~now) then `Down
  else if t.nodes.(n).recovering then `Recovering
  else `Up

(* -- replica-aware writeback -------------------------------------------- *)

let writeback t ~key ~size =
  let now = now t in
  sync t ~now;
  let e =
    match Hashtbl.find_opt t.directory key with
    | Some e ->
        e.version <- e.version + 1;
        e.size <- size;
        e
    | None ->
        let e = { version = 1; checksum = 0; size } in
        Hashtbl.replace t.directory key e;
        e
  in
  e.checksum <- checksum_range t.main ~addr:key ~len:size;
  let p = primary t ~key in
  let nn = Array.length t.nodes in
  let written = ref 0 and lagged = ref 0 and skipped = ref 0 in
  for j = 0 to nn - 1 do
    let n = (p + j) mod nn in
    if up_after_process t n ~now then begin
      let node = t.nodes.(n) in
      copy_range ~src:t.main ~dst:node.store ~addr:key ~len:size;
      (* The first [ack] healthy replicas are synchronous; the rest lag
         by a couple of round trips and are invisible to reads until
         applied. A node crash inside that lag window loses the copy. *)
      let applied_at =
        if !written < t.ack then now else now + replica_lag_cycles
      in
      Hashtbl.replace node.copies key
        { version = e.version; written_at = now; applied_at };
      incr written;
      if applied_at > now then incr lagged
    end
    else incr skipped
  done;
  { written = !written; lagged = !lagged; skipped = !skipped }

(* -- reads, failover sources, loss --------------------------------------- *)

let read_candidates t ~key =
  let now = now t in
  sync t ~now;
  match Hashtbl.find_opt t.directory key with
  | None -> []
  | Some e ->
      let p = primary t ~key in
      let nn = Array.length t.nodes in
      let acc = ref [] in
      for j = nn - 1 downto 0 do
        let n = (p + j) mod nn in
        if up_after_process t n ~now then
          match Hashtbl.find_opt t.nodes.(n).copies key with
          | Some c when c.version = e.version && c.applied_at <= now ->
              acc := n :: !acc
          | _ -> ()
      done;
      !acc

let earliest_pending t ~key =
  let now = now t in
  sync t ~now;
  match Hashtbl.find_opt t.directory key with
  | None -> None
  | Some e ->
      let best = ref None in
      Array.iteri
        (fun n node ->
          if up_after_process t n ~now then
            match Hashtbl.find_opt node.copies key with
            | Some c when c.version = e.version && c.applied_at > now ->
                best :=
                  Some
                    (match !best with
                    | None -> c.applied_at
                    | Some b -> min b c.applied_at)
            | _ -> ())
        t.nodes;
      !best

(* While an object is remote every tracked access faults first, so the
   main store still holds exactly the bytes of the last writeback and
   [e.checksum] matches. A mismatch means the range was rewritten behind
   the memory system's back (allocator reuse after free, realloc's
   direct blit, blob loads): the replicas are stale for the new logical
   object and must be invalidated, never served. *)
let main_matches t e ~key =
  checksum_range t.main ~addr:key ~len:e.size = e.checksum

let invalidate t ~key =
  Hashtbl.remove t.directory key;
  Array.iter (fun node -> Hashtbl.remove node.copies key) t.nodes

let deliver t ~key ~node =
  match Hashtbl.find_opt t.directory key with
  | None ->
      (* The object vanished between the caller's [has_object] check and
         now: a crash window crossed mid-fetch (retry stalls advance the
         clock) lost the last copy. The loss was already declared and
         the main-store bytes zeroed; nothing to copy. *)
      `Lost
  | Some e ->
      if main_matches t e ~key then begin
        copy_range ~src:t.nodes.(node).store ~dst:t.main ~addr:key ~len:e.size;
        `Delivered
      end
      else begin
        invalidate t ~key;
        `Stale
      end

let declare_lost t ~key =
  match Hashtbl.find_opt t.directory key with
  | None -> `Stale
  | Some e ->
      if main_matches t e ~key then begin
        (* The object is gone from every replica: make the loss visible
           to the workload by zeroing its bytes in the main store. *)
        zero_range t.main ~addr:key ~len:e.size;
        invalidate t ~key;
        `Lost
      end
      else begin
        (* Only a stale shadow of a freed/rewritten range died; the
           current bytes live in main and nothing was lost. *)
        invalidate t ~key;
        `Stale
      end

let corrupt_draw t ~node =
  if t.corrupt <= 0.0 then false
  else begin
    let nd = t.nodes.(node) in
    nd.fetch_seq <- nd.fetch_seq + 1;
    let h = hash3 (t.seed lxor 0x3243F6A8) node nd.fetch_seq in
    float_of_int (h land 0xFFFFFF) /. 16777216.0 < t.corrupt
  end

(* -- recovery resync ------------------------------------------------------ *)

let find_holder t ~key ~version ~not_node ~now =
  let nn = Array.length t.nodes in
  let rec go j =
    if j >= nn then None
    else if j <> not_node && up_after_process t j ~now then
      match Hashtbl.find_opt t.nodes.(j).copies key with
      | Some c when c.version = version && c.applied_at <= now -> Some j
      | _ -> go (j + 1)
    else go (j + 1)
  in
  go 0

let resync_step t ~budget =
  let now = now t in
  sync t ~now;
  let moved = ref 0 in
  Array.iteri
    (fun n node ->
      if node.recovering && up_after_process t n ~now then begin
        let rec drain () =
          if !moved < budget then
            match node.pending with
            | [] -> ()
            | key :: rest -> (
                node.pending <- rest;
                match Hashtbl.find_opt t.directory key with
                | None -> drain () (* object lost or freed meanwhile *)
                | Some e -> (
                    match Hashtbl.find_opt node.copies key with
                    | Some c when c.version = e.version ->
                        drain () (* re-written since; already current *)
                    | _ -> (
                        match
                          find_holder t ~key ~version:e.version ~not_node:n
                            ~now
                        with
                        | Some h ->
                            copy_range ~src:t.nodes.(h).store ~dst:node.store
                              ~addr:key ~len:e.size;
                            Hashtbl.replace node.copies key
                              {
                                version = e.version;
                                written_at = now;
                                applied_at = now;
                              };
                            incr moved;
                            drain ()
                        | None ->
                            (* no healthy source right now: requeue and
                               let a later step retry *)
                            node.pending <- key :: node.pending)))
        in
        drain ();
        if node.pending = [] then node.recovering <- false
      end)
    t.nodes;
  !moved

let resync_backlog t =
  Array.fold_left (fun acc node -> acc + List.length node.pending) 0 t.nodes
