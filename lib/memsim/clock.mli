(** Simulated cycle clock and event counters.

    Every runtime component charges its costs here; experiments read the
    final cycle count as "execution time" and the named counters as the
    event series the paper plots (guard counts, fault counts, bytes
    transferred). *)

type t

val create : unit -> t

val tick : t -> int -> unit
(** Advance the clock by a number of cycles. *)

val cycles : t -> int

val monotonic : t -> int
(** Cycles since clock creation, {e including} everything folded away by
    {!reset}s. [!bench_begin] zeroes {!cycles} so experiments measure only
    the timed region; components whose state machines must stay coherent
    across that boundary (the replicated cluster's crash schedule and
    replication timestamps) key off this monotone timeline instead. *)

val count : t -> string -> int -> unit
(** Add to a named counter, creating it at zero on first use. *)

val get : t -> string -> int
(** Value of a named counter (0 if never counted). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit
(** Zero the clock and all counters. An installed sampler stays
    installed; its next firing is one interval after the reset. *)

val set_sampler : t -> interval:int -> (t -> unit) -> unit
(** Install a periodic hook: [f] is called from inside {!tick} every
    [interval] simulated cycles (a tick that crosses several interval
    boundaries fires once per boundary). The telemetry layer uses this to
    snapshot counters into a time-series; with no sampler installed the
    per-tick cost is a single integer compare. The hook must not tick the
    clock. *)

val clear_sampler : t -> unit
