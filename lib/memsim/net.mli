(** Network transfer model between the compute node and the memory server.

    Two backends mirror the paper's setups: AIFM/TrackFM move objects over
    Shenango's TCP stack, Fastswap moves pages with one-sided RDMA. A
    fetch or writeback charges [latency + size/bandwidth] cycles to the
    clock and maintains the transfer counters the I/O-amplification
    figures report. Prefetched fetches overlap their latency with
    application progress and charge only the residual cost.

    With a {!Faults} injector attached the fabric turns adversarial and
    the transport grows the recovery machinery of a real far-memory
    stack:

    - a {b retry ladder} with exponential backoff and deterministic
      jitter (budgeted attempts, per-op deadline, every cost ticked on
      the simulated clock);
    - a {b circuit breaker}: after an op exhausts its retry budget the
      breaker opens and subsequent ops fail fast at a few cycles each,
      with periodic half-open probes until the remote answers again.

    All fault-path costs and counters are strictly additive: with
    {!Faults.disabled} (the default) the code path, cycle charges and
    counters are bit-identical to the fault-free model. *)

type backend = Tcp | Rdma

type t

type retry_policy = {
  max_attempts : int;  (** attempts per op before giving up, >= 1 *)
  attempt_timeout : int;  (** cycles burned by a timed-out attempt *)
  op_deadline : int;  (** cycle budget for one op, incl. backoff *)
  backoff_base : int;  (** backoff before the first retry *)
  backoff_cap : int;  (** backoff ceiling *)
  fail_fast_cycles : int;  (** cost of a breaker-rejected op *)
  probe_interval : int;  (** open-breaker probe cadence *)
}

val default_policy : retry_policy
(** Tuned relative to the wire round trip (~32 Kcycles): 5 attempts,
    4-RTT attempt timeout, 1-RTT base backoff capped at 16 RTT, 64-RTT
    op deadline, 32-RTT probe interval. *)

type error =
  | Unreachable of { probe_at : int }
      (** breaker open: op failed fast; retry no earlier than [probe_at] *)
  | Budget_exhausted of { attempts : int }
      (** every attempt failed (or the op deadline passed) with the
          breaker still closed *)

type event =
  | Retry of { attempt : int; backoff : int; reason : [ `Nack | `Timeout ] }
      (** attempt [attempt] failed; retrying after [backoff] cycles *)
  | Breaker_opened of { at : int; probe_at : int }
  | Breaker_closed of { opened_at : int; at : int }
      (** recovery: [opened_at .. at] is the observed outage span *)
  | Fetch_failed of { attempts : int }  (** an op gave up *)
  | Failover of { key : int; primary : int; replica : int }
      (** a fetch of [key] was served by [replica] because [primary]
          had no healthy, visible copy *)
  | Corruption_detected of { key : int; node : int }
      (** payload from [node] failed its checksum envelope *)
  | Repaired of { key : int; node : int }
      (** a corrupted fetch was repaired by a clean re-read from [node] *)
  | Object_lost of { key : int }
      (** no replica holds [key]: its bytes were zeroed (data loss) *)

val create : ?faults:Faults.t -> ?cluster:Cluster.t -> ?policy:retry_policy ->
  Cost_model.t -> Clock.t -> backend -> t
(** [faults] defaults to {!Faults.disabled}; [policy] to
    {!default_policy}. With [cluster] attached the object-granular
    entry points ({!fetch_object}, {!writeback_object}, {!resync_step})
    run against the replicated tier; without it they delegate to the
    single-server paths bit for bit. *)

val faults : t -> Faults.t

val cluster : t -> Cluster.t option

val fetch : t -> bytes:int -> unit
(** Demand fetch: blocks the application for the full transfer cost.
    Under faults this retries — and, when the breaker is open, stalls
    until the next probe — until the transfer succeeds, charging every
    retry, backoff and stall cycle to the simulated clock. *)

val fetch_prefetched : t -> bytes:int -> unit
(** Fetch whose latency was hidden by an earlier asynchronous prefetch:
    charges only the residual overlap cost on success. Routed through
    the same cost/counter/fault path as {!fetch} (a faulted "prefetched"
    fetch lost its overlap and retries at full wire latency). *)

val try_fetch : t -> bytes:int -> (unit, error) result
(** One bounded fetch op: at most [policy.max_attempts] attempts within
    [policy.op_deadline] cycles, then an error. This is the primitive
    {!fetch} loops over; runtimes that can degrade (defer eviction,
    fail-fast a request) use it directly. *)

val remote_available : t -> bool
(** [false] while the circuit breaker is open (fail-fast regime). Always
    [true] without faults. *)

val writeback : t -> bytes:int -> unit
(** Dirty data pushed to the remote node by the asynchronous reclaim path
    (Fastswap's dedicated reclaim core, AIFM's evacuator threads): the
    application is charged only a small enqueue cost, but the bytes count
    toward the transfer totals. *)

(** {2 Replicated tier}

    Object-granular entry points: [key] is the object's base address in
    the main store (globally unique across backends) and doubles as its
    identity in the cluster directory. With no cluster attached each
    delegates to its single-server counterpart above — same code path,
    same cycles, same counters. *)

val fetch_object : t -> key:int -> bytes:int -> unit
(** Demand-fetch one object through the replica ladder: candidates are
    tried primary-first (a non-primary read counts [net.failovers]),
    each read pays the normal wire/fault cost, corrupted payloads
    ([corrupt=RATE]) are detected against the checksum envelope
    ([net.corruptions_detected]) and repaired by re-fetching
    ([net.repairs]). When no replica holds the object and no lagged
    write is in flight, the loss is declared ([net.lost_objects]): the
    object's bytes read as zero from then on. Objects never written
    back take the plain {!fetch} path. *)

val fetch_object_prefetched : t -> key:int -> bytes:int -> unit
(** {!fetch_object} at the prefetched residual cost (see
    {!fetch_prefetched}). *)

val writeback_object : t -> key:int -> bytes:int -> unit
(** Replica-aware writeback: one enqueue charge, then the cluster
    replicates the object's bytes — [bytes * copies] toward
    [net.bytes_out], lagged (beyond-[ack]) copies counted in
    [net.replica_lag], down replicas in [net.replica_skips]. *)

val resync_step : t -> int
(** Drive background re-replication onto recovering nodes (bounded
    batch per call; intended to be called from the evacuator/reclaim
    loops). Returns objects moved; charges only a small orchestration
    cost ([net.resync_objects]) and yields via the stall handler —
    replica-to-replica traffic does not cross the compute node's wire.
    No-op without a cluster. *)

val set_stall_handler : t -> (cycles:int -> unit) -> unit
(** Hook invoked {e in addition to} the clock charge whenever the
    transport sleeps (backoff between retries, waiting out an open
    breaker). Runtimes running under the Shenango scheduler install a
    handler that blocks the current task so the core is released —
    block-with-yield instead of spinning. The default does nothing
    extra. *)

val on_event : t -> (event -> unit) -> unit
(** Observe fault-path events (telemetry bridge). One handler; the last
    installed wins. *)

val set_span_scope :
  t -> enter:([ `Retry | `Failover ] -> unit) -> leave:(unit -> unit) -> unit
(** Causal-attribution hooks (installed by the telemetry sink): cycles
    the transport charges between [enter kind] and the matching [leave]
    belong to fault-path retries/backoff/breaker waits ([`Retry]) or to
    replica-ladder walks, lag waits and loss declaration ([`Failover])
    rather than to the fetch itself. Scopes nest; the fault-free fetch
    path never calls them. Defaults are no-ops. *)

val bytes_in : t -> int
val bytes_out : t -> int
val fetches : t -> int

(** Counter names used on the shared clock: fault-free — [net.bytes_in],
    [net.bytes_out], [net.fetches], [net.writebacks],
    [net.prefetched_fetches]; fault path only — [net.retries],
    [net.nacks], [net.timeouts], [net.backoff_cycles],
    [net.latency_spikes], [net.spike_cycles], [net.stall_cycles],
    [net.fail_fast], [net.breaker_opens], [net.breaker_probes],
    [net.fetch_failures]; replicated tier only — [net.failovers],
    [net.corruptions_detected], [net.repairs], [net.replica_lag],
    [net.replica_skips], [net.lost_objects], [net.resync_objects]. *)
