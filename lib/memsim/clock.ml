type t = {
  mutable cycles : int;
  (* Cycles folded in from [reset]s, so [monotonic] never jumps backward
     across the !bench_begin boundary (crash schedules and replication
     timestamps must live on one continuous timeline). *)
  mutable folded : int;
  table : (string, int ref) Hashtbl.t;
  (* Sampling hook: [sampler] fires every [sample_interval] cycles (from
     the moment it is installed). [next_sample] is [max_int] when no
     sampler is installed, so the common-case cost in [tick] is a single
     integer compare. *)
  mutable sample_interval : int;
  mutable next_sample : int;
  mutable sampler : (t -> unit) option;
}

let create () =
  {
    cycles = 0;
    folded = 0;
    table = Hashtbl.create 16;
    sample_interval = 0;
    next_sample = max_int;
    sampler = None;
  }

let rec fire t =
  match t.sampler with
  | None -> t.next_sample <- max_int
  | Some f ->
      f t;
      t.next_sample <- t.next_sample + t.sample_interval;
      if t.cycles >= t.next_sample then fire t

(* [@inline] so the add-and-compare lands inside the interpreter and
   compiled-engine hot loops instead of costing a call per charge. *)
let[@inline] tick t n =
  assert (n >= 0);
  t.cycles <- t.cycles + n;
  if t.cycles >= t.next_sample then fire t

let cycles t = t.cycles
let monotonic t = t.folded + t.cycles

let count t name n =
  match Hashtbl.find_opt t.table name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.table name (ref n)

let get t name =
  match Hashtbl.find_opt t.table name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.table []
  |> List.sort compare

let set_sampler t ~interval f =
  if interval <= 0 then invalid_arg "Clock.set_sampler: interval must be > 0";
  t.sample_interval <- interval;
  t.next_sample <- t.cycles + interval;
  t.sampler <- Some f

let clear_sampler t =
  t.sampler <- None;
  t.sample_interval <- 0;
  t.next_sample <- max_int

let reset t =
  t.folded <- t.folded + t.cycles;
  t.cycles <- 0;
  Hashtbl.reset t.table;
  match t.sampler with
  | Some _ -> t.next_sample <- t.sample_interval
  | None -> t.next_sample <- max_int
