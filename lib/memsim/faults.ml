type config = {
  drop : float;
  timeout : float;
  spike : float;
  spike_cycles : int;
  spike_alpha : float;
  outage_period : int;
  outage_len : int;
  crash_period : int;
  crash_downtime : int;
  corrupt : float;
}

let off =
  {
    drop = 0.0;
    timeout = 0.0;
    spike = 0.0;
    spike_cycles = 0;
    spike_alpha = 1.5;
    outage_period = 0;
    outage_len = 0;
    crash_period = 0;
    crash_downtime = 0;
    corrupt = 0.0;
  }

type live = { cfg : config; rng : Tfm_util.Rng.t; seed : int }
type t = Disabled | On of live

let disabled = Disabled

let validate cfg =
  if cfg.drop < 0.0 || cfg.timeout < 0.0 || cfg.spike < 0.0 then
    invalid_arg "Faults.create: negative rate";
  if cfg.drop +. cfg.timeout >= 1.0 then
    invalid_arg "Faults.create: drop + timeout must be < 1 (ops must be able \
                 to complete)";
  if cfg.spike > 1.0 then invalid_arg "Faults.create: spike rate > 1";
  if cfg.spike > 0.0 && cfg.spike_cycles <= 0 then
    invalid_arg "Faults.create: spike_cycles must be > 0";
  if cfg.spike > 0.0 && cfg.spike_alpha <= 0.0 then
    invalid_arg "Faults.create: spike_alpha must be > 0";
  if cfg.outage_period < 0 || cfg.outage_len < 0 then
    invalid_arg "Faults.create: negative outage parameter";
  if cfg.outage_period > 0 && cfg.outage_len >= cfg.outage_period then
    invalid_arg "Faults.create: outage_len must be < outage_period";
  if cfg.crash_period < 0 || cfg.crash_downtime < 0 then
    invalid_arg "Faults.create: negative crash parameter";
  if cfg.crash_period > 0 && cfg.crash_downtime >= cfg.crash_period then
    invalid_arg "Faults.create: crash downtime must be < crash period";
  if cfg.crash_period > 0 && cfg.crash_downtime <= 0 then
    invalid_arg "Faults.create: crash downtime must be > 0";
  if cfg.corrupt < 0.0 || cfg.corrupt >= 1.0 then
    invalid_arg
      "Faults.create: corrupt rate must be in [0, 1) (a fetch must be able \
       to deliver a clean payload)"

let create ?(seed = 1) cfg =
  validate cfg;
  if cfg = off then Disabled
  else On { cfg; rng = Tfm_util.Rng.create (max 1 seed); seed = max 1 seed }

let enabled = function Disabled -> false | On _ -> true
let config = function Disabled -> off | On l -> l.cfg
let seed = function Disabled -> 0 | On l -> l.seed

type verdict = Deliver of int | Nack | Timeout

(* Pareto-style spike: scale * ((1-u)^(-1/alpha) - 1), capped at 64x the
   scale so a single unlucky draw cannot dwarf a whole run. *)
let spike_cycles l =
  let u = Tfm_util.Rng.float l.rng 1.0 in
  let x =
    float_of_int l.cfg.spike_cycles
    *. (((1.0 -. u) ** (-1.0 /. l.cfg.spike_alpha)) -. 1.0)
  in
  let cap = 64 * l.cfg.spike_cycles in
  max 1 (min cap (int_of_float x))

let attempt = function
  | Disabled -> Deliver 0
  | On l ->
      let u = Tfm_util.Rng.float l.rng 1.0 in
      if u < l.cfg.drop then Nack
      else if u < l.cfg.drop +. l.cfg.timeout then Timeout
      else if l.cfg.spike > 0.0 && Tfm_util.Rng.float l.rng 1.0 < l.cfg.spike
      then Deliver (spike_cycles l)
      else Deliver 0

(* -- outage windows ------------------------------------------------------

   Window i is anchored at (i+1) * period with a deterministic jitter of
   up to +/- period/8 derived by hashing (seed, i), so windows are a pure
   function of the configuration: no mutable cursor that a clock reset
   (!bench_begin) could desynchronize. *)

(* splitmix64-style finalizer over the 63-bit native int *)
let hash2 seed i =
  let x = (seed * 0x9E3779B9) + (i * 0x85EBCA6B) + 0x94D049BB in
  let x = x lxor (x lsr 30) in
  let x = x * 0xBF58476D land max_int in
  let x = x lxor (x lsr 27) in
  let x = x * 0x94D049BB land max_int in
  x lxor (x lsr 31)

let window l i =
  let p = l.cfg.outage_period in
  let jitter_span = max 1 (p / 4) in
  let jitter = (hash2 l.seed i mod jitter_span) - (jitter_span / 2) in
  let start = ((i + 1) * p) + jitter in
  (start, start + l.cfg.outage_len)

let outage_window t i =
  match t with
  | Disabled -> None
  | On l when l.cfg.outage_period <= 0 || l.cfg.outage_len <= 0 -> None
  | On l -> Some (window l i)

let find_window l ~now =
  if l.cfg.outage_period <= 0 || l.cfg.outage_len <= 0 then None
  else begin
    (* [now] can only fall inside a window anchored within one period of
       it; check the two candidates. *)
    let i = now / l.cfg.outage_period in
    let check i =
      if i < 0 then None
      else
        let start, stop = window l i in
        if now >= start && now < stop then Some (start, stop) else None
    in
    match check (i - 1) with Some w -> Some w | None -> check i
  end

let in_outage t ~now =
  match t with Disabled -> false | On l -> find_window l ~now <> None

let outage_end t ~now =
  match t with
  | Disabled -> None
  | On l -> Option.map snd (find_window l ~now)

(* -- spec grammar -------------------------------------------------------- *)

let presets =
  [
    ("none", off);
    ( "light",
      {
        off with
        drop = 0.005;
        timeout = 0.002;
        spike = 0.01;
        spike_cycles = 20_000;
        spike_alpha = 1.5;
      } );
    ( "medium",
      {
        off with
        drop = 0.02;
        timeout = 0.01;
        spike = 0.05;
        spike_cycles = 40_000;
        spike_alpha = 1.5;
        outage_period = 8_000_000;
        outage_len = 400_000;
      } );
    ( "heavy",
      {
        off with
        drop = 0.05;
        timeout = 0.03;
        spike = 0.10;
        spike_cycles = 80_000;
        spike_alpha = 1.2;
        outage_period = 3_000_000;
        outage_len = 600_000;
      } );
  ]

let known_keys = "drop, timeout, spike, outage, crash, corrupt"

(* Match the key first, then the arity: a known key with the wrong shape
   must get a usage error for THAT key, not the unknown-key catch-all
   (previously `drop=0.1:5` reported "unknown fault field \"drop\""). *)
let parse_field cfg field =
  match String.index_opt field '=' with
  | None ->
      Error
        (Printf.sprintf "fault field %S is not key=value (valid keys: %s)"
           field known_keys)
  | Some eq -> (
      let key = String.sub field 0 eq in
      let v = String.sub field (eq + 1) (String.length field - eq - 1) in
      let parts = String.split_on_char ':' v in
      let floatv s =
        match float_of_string_opt s with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad float %S in %s" s key)
      in
      let intv s =
        match int_of_string_opt s with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad integer %S in %s" s key)
      in
      let ( let* ) = Result.bind in
      match key with
      | "drop" -> (
          match parts with
          | [ p ] ->
              let* p = floatv p in
              Ok { cfg with drop = p }
          | _ -> Error (Printf.sprintf "%S: drop needs drop=PROB" field))
      | "timeout" -> (
          match parts with
          | [ p ] ->
              let* p = floatv p in
              Ok { cfg with timeout = p }
          | _ -> Error (Printf.sprintf "%S: timeout needs timeout=PROB" field))
      | "spike" -> (
          match parts with
          | [ p; cyc ] ->
              let* p = floatv p in
              let* cyc = intv cyc in
              Ok { cfg with spike = p; spike_cycles = cyc }
          | [ p; cyc; a ] ->
              let* p = floatv p in
              let* cyc = intv cyc in
              let* a = floatv a in
              Ok { cfg with spike = p; spike_cycles = cyc; spike_alpha = a }
          | _ ->
              Error
                (Printf.sprintf "%S: spike needs spike=PROB:CYCLES[:ALPHA]"
                   field))
      | "outage" -> (
          match parts with
          | [ period; len ] ->
              let* p = intv period in
              let* l = intv len in
              Ok { cfg with outage_period = p; outage_len = l }
          | _ -> Error (Printf.sprintf "%S: outage needs outage=PERIOD:LEN" field)
          )
      | "crash" -> (
          match parts with
          | [ period; down ] ->
              let* p = intv period in
              let* d = intv down in
              Ok { cfg with crash_period = p; crash_downtime = d }
          | _ ->
              Error
                (Printf.sprintf "%S: crash needs crash=PERIOD:DOWNTIME" field))
      | "corrupt" -> (
          match parts with
          | [ r ] ->
              let* r = floatv r in
              Ok { cfg with corrupt = r }
          | _ -> Error (Printf.sprintf "%S: corrupt needs corrupt=RATE" field))
      | k ->
          Error
            (Printf.sprintf "unknown fault field %S (valid keys: %s)" k
               known_keys))

let parse spec =
  let spec = String.trim spec in
  match List.assoc_opt spec presets with
  | Some cfg -> Ok cfg
  | None -> (
      let rec go cfg = function
        | [] -> Ok cfg
        | f :: rest -> (
            match parse_field cfg (String.trim f) with
            | Ok cfg -> go cfg rest
            | Error _ as e -> e)
      in
      match go off (String.split_on_char ',' spec) with
      | Error _ as e -> e
      | Ok cfg -> (
          match validate cfg with
          | () -> Ok cfg
          | exception Invalid_argument m -> Error m))

let to_string cfg =
  if cfg = off then "none"
  else begin
    let fields = ref [] in
    if cfg.corrupt > 0.0 then
      fields := Printf.sprintf "corrupt=%g" cfg.corrupt :: !fields;
    if cfg.crash_period > 0 then
      fields :=
        Printf.sprintf "crash=%d:%d" cfg.crash_period cfg.crash_downtime
        :: !fields;
    if cfg.outage_period > 0 then
      fields :=
        Printf.sprintf "outage=%d:%d" cfg.outage_period cfg.outage_len
        :: !fields;
    if cfg.spike > 0.0 then
      fields :=
        Printf.sprintf "spike=%g:%d:%g" cfg.spike cfg.spike_cycles
          cfg.spike_alpha
        :: !fields;
    if cfg.timeout > 0.0 then
      fields := Printf.sprintf "timeout=%g" cfg.timeout :: !fields;
    if cfg.drop > 0.0 then fields := Printf.sprintf "drop=%g" cfg.drop :: !fields;
    String.concat "," !fields
  end
