let page_size = 4096
let page_bits = 12
let page_mask = page_size - 1

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 1024 }

let page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace t.pages idx p;
      p

(* Pages are only ever created, never dropped or replaced, so a handle
   returned here stays the backing store of its index for the lifetime of
   [t] — the compiled engine's per-site page caches rely on that. *)
let page_of t idx = page t idx

let rec load t ~addr ~size =
  let off = addr land page_mask in
  if off + size <= page_size then begin
    let p = page t (addr lsr page_bits) in
    match size with
    | 1 -> Char.code (Bytes.get p off)
    | 2 -> Bytes.get_uint16_le p off
    | 4 -> Int32.to_int (Bytes.get_int32_le p off) land 0xFFFFFFFF
    | 8 ->
        (* Truncate to 63 bits so the result stays a valid OCaml int. *)
        Int64.to_int (Bytes.get_int64_le p off) land max_int
    | _ -> invalid_arg "Memstore.load: size"
  end
  else begin
    (* Access spans a page boundary: assemble byte by byte. *)
    let v = ref 0 in
    for k = size - 1 downto 0 do
      v := (!v lsl 8) lor load t ~addr:(addr + k) ~size:1
    done;
    !v
  end

let rec store t ~addr ~size v =
  let off = addr land page_mask in
  if off + size <= page_size then begin
    let p = page t (addr lsr page_bits) in
    match size with
    | 1 -> Bytes.set p off (Char.chr (v land 0xFF))
    | 2 -> Bytes.set_uint16_le p off (v land 0xFFFF)
    | 4 -> Bytes.set_int32_le p off (Int32.of_int v)
    | 8 -> Bytes.set_int64_le p off (Int64.of_int v)
    | _ -> invalid_arg "Memstore.store: size"
  end
  else
    for k = 0 to size - 1 do
      store t ~addr:(addr + k) ~size:1 ((v lsr (k * 8)) land 0xFF)
    done

let load_float t ~addr =
  let off = addr land page_mask in
  if off + 8 <= page_size then
    Int64.float_of_bits (Bytes.get_int64_le (page t (addr lsr page_bits)) off)
  else begin
    let bits = ref 0L in
    for k = 7 downto 0 do
      bits :=
        Int64.logor
          (Int64.shift_left !bits 8)
          (Int64.of_int (load t ~addr:(addr + k) ~size:1))
    done;
    Int64.float_of_bits !bits
  end

let store_float t ~addr x =
  let off = addr land page_mask in
  if off + 8 <= page_size then
    Bytes.set_int64_le (page t (addr lsr page_bits)) off (Int64.bits_of_float x)
  else begin
    let bits = Int64.bits_of_float x in
    for k = 0 to 7 do
      store t ~addr:(addr + k) ~size:1
        (Int64.to_int (Int64.shift_right_logical bits (k * 8)) land 0xFF)
    done
  end

(* Full-fidelity 64-bit accessors for byte movers (replication,
   checksums): [load ~size:8] truncates to OCaml's 63-bit int, which
   would silently clear the top bit of every word copied through it —
   e.g. the sign bit of negative doubles. *)
let load64 t ~addr =
  let off = addr land page_mask in
  if off + 8 <= page_size then
    Bytes.get_int64_le (page t (addr lsr page_bits)) off
  else begin
    let v = ref 0L in
    for k = 7 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (load t ~addr:(addr + k) ~size:1))
    done;
    !v
  end

let store64 t ~addr v =
  let off = addr land page_mask in
  if off + 8 <= page_size then
    Bytes.set_int64_le (page t (addr lsr page_bits)) off v
  else
    for k = 0 to 7 do
      store t ~addr:(addr + k) ~size:1
        (Int64.to_int (Int64.shift_right_logical v (k * 8)) land 0xFF)
    done

let blit t ~src ~dst ~len =
  (* Conservative byte copy; realloc volumes are small in the workloads. *)
  for k = 0 to len - 1 do
    store t ~addr:(dst + k) ~size:1 (load t ~addr:(src + k) ~size:1)
  done
