(** Replicated remote-memory tier: N nodes, crash faults, recovery.

    The single immortal memory server becomes a cluster of [replicas]
    nodes. An object's replica set is the whole ring starting at its
    primary ([hash key mod N]); a writeback lands synchronously on the
    first [ack] healthy replicas and with a short lag on the rest; reads
    are served primary-first and fail over to the next healthy replica.
    Per-node crash schedules ([crash=PERIOD:DOWNTIME] in the fault spec)
    wipe a node's copies; [corrupt=RATE] flips bits on fetched payloads
    in transit, detected via the per-object checksum envelope and
    repaired by re-fetching.

    Data loss is {e observable}: when no replica (current or lagged)
    holds an object, {!declare_lost} zeroes its bytes in the main store
    so the workload's own checksum comes out wrong — the durability
    experiment's assertion. A single-node cluster under a crash schedule
    loses exactly this way; [replicas >= 2] survives provided recovery
    resync ({!resync_step}, driven from the evacuator loops) keeps up.

    Everything is deterministic: crash windows are pure functions of
    (seed, node, index), corruption draws of (seed, node, per-node fetch
    sequence), all on {!Clock.monotonic} so the [!bench_begin] clock
    reset cannot desynchronize them.

    This module moves bytes and tracks replica state only; wire costs,
    retries and the [net.*] counters live in {!Net}, which orchestrates
    it. Counters charged here: [cluster.crashes], [cluster.recoveries]. *)

type t

type event =
  | Node_crashed of { node : int; at : int; until : int; lost : int }
      (** node [node] was down during [at .. until] (monotonic cycles)
          and lost [lost] object copies (attributed to the newest window
          when several are processed in one lazy batch) *)
  | Node_recovered of { node : int; at : int; missing : int }
      (** node [node] came back at [at] with [missing] objects to
          re-replicate; it serves reads again immediately, the copies
          stream back via {!resync_step} *)

val create :
  ?seed:int ->
  clock:Clock.t ->
  store:Memstore.t ->
  replicas:int ->
  ack:int ->
  crash_period:int ->
  crash_downtime:int ->
  corrupt:float ->
  unit ->
  t
(** [store] is the authoritative main store the workloads compute
    against. @raise Invalid_argument unless [1 <= ack <= replicas <= 8],
    [0 < crash_downtime < crash_period] (when [crash_period > 0]) and
    [0 <= corrupt < 1]. *)

val create_opt :
  ?seed:int ->
  clock:Clock.t ->
  store:Memstore.t ->
  replicas:int ->
  ack:int ->
  faults:Faults.config ->
  unit ->
  t option
(** [None] when [replicas = 1] and the fault config has no crash or
    corrupt component: the pre-replication model applies and callers
    must take the original code path (the zero-cost guarantee the CI
    golden diff enforces). *)

val set_on_event : t -> (event -> unit) -> unit
(** Observe crash/recovery events (telemetry bridge). One handler; the
    last installed wins. *)

val replicas : t -> int
val ack : t -> int

val primary : t -> key:int -> int
(** The object's primary node ([hash key mod replicas]). *)

val has_object : t -> key:int -> bool
(** Has [key] ever been written back (directory membership)? Objects
    never written back take the unreplicated fetch path: the remote tier
    holds nothing to lose for them. *)

val directory_size : t -> int

(** {2 Data plane (driven by {!Net})} *)

type wb = { written : int; lagged : int; skipped : int }

val writeback : t -> key:int -> size:int -> wb
(** Replicate [size] bytes at main-store address [key] (the key {e is}
    the object's base address) across the replica set: bytes are copied
    into each healthy node's store, the directory entry gets a fresh
    version and checksum. [written] copies landed ([ack] of them
    synchronous, [lagged] of them visible only after the replication
    lag), [skipped] replicas were down. *)

val read_candidates : t -> key:int -> int list
(** Healthy nodes holding a current, visible copy of [key],
    primary-first — the failover ladder for a fetch. Empty when the
    object is unknown or no such copy exists. *)

val earliest_pending : t -> key:int -> int option
(** Earliest monotonic time at which some lagged copy of [key] on a
    healthy node becomes visible; [None] if no copy is in flight. A
    fetch with no candidates waits for this before declaring loss. *)

val deliver : t -> key:int -> node:int -> [ `Delivered | `Stale | `Lost ]
(** Copy the object's bytes from [node]'s store back into the main
    store: the localization payload. [`Stale] when the main-store range
    no longer matches the object's last-writeback checksum — the range
    was rewritten behind the memory system's back (allocator reuse after
    free, realloc's direct blit), so the replicas shadow a dead logical
    object; the entry is invalidated and main is left untouched.
    [`Lost] when the object vanished from the directory after the caller
    chose [node] (a crash window crossed mid-fetch and took the last
    copy): the loss was already declared, main already zeroed. *)

val declare_lost : t -> key:int -> [ `Lost | `Stale ]
(** No replica holds [key] and none is in flight. If main still matches
    the last writeback ([`Lost]): zero the object's bytes in the main
    store (the workload now observes the loss) and drop it from the
    directory. If main has diverged ([`Stale]): only a stale shadow
    died — drop the entry, nothing is zeroed, no data was lost.
    Idempotent. *)

val corrupt_draw : t -> node:int -> bool
(** Did this fetch from [node] arrive corrupted? Consumes the node's
    fetch sequence number; pure in (seed, node, sequence). Corruption
    is transit-only — the stored copy is intact, so a re-fetch can
    repair. Always [false] when [corrupt = 0]. *)

(** {2 Recovery} *)

val resync_step : t -> budget:int -> int
(** Advance background re-replication: copy up to [budget] missing
    objects from healthy holders onto recovering nodes, returning the
    number moved. Driven from the evacuator/reclaim loops so recovery
    makes progress while the application runs; replica-to-replica
    traffic costs the compute node only the orchestration cycles {!Net}
    charges. *)

val resync_backlog : t -> int
(** Objects still awaiting re-replication across all recovering nodes. *)

(** {2 Introspection (tests, telemetry)} *)

val node_state : t -> int -> [ `Up | `Down | `Recovering ]

val crash_window : t -> node:int -> int -> (int * int) option
(** [crash_window t ~node i] is node [node]'s [i]-th (0-based) crash
    window as [(start, stop)] on the monotonic clock; [None] when crash
    faults are disabled. Pure — exposed for tests and the CI matrix. *)

val object_checksum : t -> key:int -> int option
(** Current directory checksum of [key] (the envelope a fetch verifies
    against). *)
