(* The guard-coverage verifier: a sanitizer for transformed IR.

   For every load/store the alias analysis classifies may-heap, prove it
   is covered by **exactly one** protection mechanism: either an
   available custody fact — a guard (or chunk access) on the same bytes
   dominates it with no intervening clobber — or an adjacent page-path
   call (the hybrid data plane's fault-in, which covers exactly the one
   access it precedes). No mechanism is a gap; both at once is double
   protection (the route pass failed to retire the guard, or a guard
   from elsewhere still reaches a paged site). Either way the pipeline
   raises, CI goes red, and the offending site is named in guard-site
   attribution form so it can be cross-referenced against the telemetry
   hotspot table. *)

type flaw =
  | Gap  (** covered by no mechanism at all *)
  | Double of int
      (** custody-covered AND paged; carries the page call's id *)

type violation = {
  func : string;
  block : string;
  instr : int;  (* the offending access *)
  is_store : bool;
  flaw : flaw;
  killer : int option;
      (* id of the closest preceding custody clobber in the block, when
         one exists — the call that ate the guard, if there was one *)
}

let violation_site v = { Telemetry.Site.func = v.func; instr = v.instr }

(* Every fragment names its enclosing function: multi-function modules
   put the same instruction ids in several functions, so an unqualified
   "%12" is ambiguous exactly when you need it. *)
let violation_to_string v =
  match v.flaw with
  | Gap ->
      Printf.sprintf
        "%s/%s: may-heap %s at %s not covered by any guard or page call%s"
        v.func v.block
        (if v.is_store then "store" else "load")
        (Telemetry.Site.key_to_string (violation_site v))
        (match v.killer with
        | None -> ""
        | Some k -> Printf.sprintf " (custody killed by call %s:%%%d)" v.func k)
  | Double page ->
      Printf.sprintf
        "%s/%s: may-heap %s at %s is double-protected: paged by %%%d while a \
         custody fact still covers it"
        v.func v.block
        (if v.is_store then "store" else "load")
        (Telemetry.Site.key_to_string (violation_site v))
        page

(* The page call covering an access must be the textually previous
   instruction on the exact same pointer value (the shape the route pass
   produces by rewriting the access's private guard in place): page
   coverage is deliberately not a dataflow fact, so it can never leak to
   a second access. A write-flavored page covers both a load and a
   store; a read-flavored one covers only a load. *)
let page_covers pending ~ptr ~size ~is_store =
  match pending with
  | Some (pid, pptr, psz, pwrite)
    when pptr = ptr && psz >= size && ((not is_store) || pwrite) ->
      Some pid
  | _ -> None

let check_func ?summaries (f : Ir.func) =
  let t = Facts.analyze ?summaries f in
  let alias = Alias.analyze ?summaries f in
  let violations = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      let state = ref (Facts.in_state t b.label) in
      let last_clobber = ref None in
      let pending_page = ref None in
      List.iter
        (fun (i : Ir.instr) ->
          let check ~ptr ~size ~is_store =
            let custody =
              Facts.query t !state ~block:b.label ptr ~size ~write:is_store
              <> None
            in
            let paged = page_covers !pending_page ~ptr ~size ~is_store in
            match (custody, paged) with
            | true, None | false, Some _ -> ()
            | true, Some pid ->
                violations :=
                  {
                    func = f.fname;
                    block = b.label;
                    instr = i.id;
                    is_store;
                    flaw = Double pid;
                    killer = None;
                  }
                  :: !violations
            | false, None ->
                violations :=
                  {
                    func = f.fname;
                    block = b.label;
                    instr = i.id;
                    is_store;
                    flaw = Gap;
                    killer = !last_clobber;
                  }
                  :: !violations
          in
          begin
            match i.kind with
            | Ir.Call { callee; _ }
              when Summary.call_clobbers ?env:summaries callee ->
                last_clobber := Some i.id
            | Ir.Load { ptr; size; _ } when Alias.needs_guard alias ptr ->
                check ~ptr ~size ~is_store:false
            | Ir.Store { ptr; size; _ } when Alias.needs_guard alias ptr ->
                check ~ptr ~size ~is_store:true
            | _ -> ()
          end;
          state := Facts.apply_instr t !state i;
          pending_page :=
            (match i.kind with
            | Ir.Call { callee; args = [ ptr; Ir.Const sz ] }
              when Intrinsics.is_page callee -> (
                match Intrinsics.classify callee with
                | Intrinsics.Page { write } -> Some (i.id, ptr, sz, write)
                | _ -> None)
            | _ -> None))
        b.instrs)
    f.blocks;
  List.rev !violations

(* The checker computes its own summaries from the module text — never
   reusing the pipeline's environment — so a corrupted producer summary
   shows up as uncovered accesses instead of vouching for itself. *)
let check_module ?(summaries = true) (m : Ir.modul) =
  let env = if summaries then Some (Summary.compute m) else None in
  List.concat_map (fun f -> check_func ?summaries:env f) m.funcs

exception Unsound of string list

let enforce ?summaries m =
  match check_module ?summaries m with
  | [] -> ()
  | vs -> raise (Unsound (List.map violation_to_string vs))

(* Independent custody re-derivation for the witness checker: a direct
   reachability pass over the module, sharing no code with
   {!Summary.compute}. A defined callee clobbers custody if its call
   tree can reach a store, an allocation/free, a chunk release, or a
   write guard/chunk access, or if it escapes the module. Cycles are
   resolved by dirty-propagation to a fixpoint: a recursive clique is
   clean unless some member actually contains a clobbering
   instruction. *)
let module_call_clobbers (m : Ir.modul) =
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.fname f) m.funcs;
  let dirty = Hashtbl.create 16 in
  let callers = Hashtbl.create 16 in
  let locally_dirty (f : Ir.func) =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Store _ -> true
            | Ir.Call { callee; _ } -> begin
                match Intrinsics.classify callee with
                | Intrinsics.Alloc | Intrinsics.Free | Intrinsics.Chunk_end ->
                    true
                | Intrinsics.Guard { write }
                | Intrinsics.Chunk_access { write }
                | Intrinsics.Page { write } ->
                    write
                | Intrinsics.Neutral -> false
                | Intrinsics.Unknown -> not (Hashtbl.mem defined callee)
              end
            | _ -> false)
          b.instrs)
      f.blocks
  in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.kind with
              | Ir.Call { callee; _ }
                when Intrinsics.classify callee = Intrinsics.Unknown
                     && Hashtbl.mem defined callee ->
                  Hashtbl.add callers callee f.Ir.fname
              | _ -> ())
            b.instrs)
        f.blocks)
    m.funcs;
  let worklist = Queue.create () in
  List.iter
    (fun (f : Ir.func) ->
      if locally_dirty f then begin
        Hashtbl.replace dirty f.Ir.fname ();
        Queue.push f.Ir.fname worklist
      end)
    m.funcs;
  while not (Queue.is_empty worklist) do
    let name = Queue.pop worklist in
    List.iter
      (fun caller ->
        if not (Hashtbl.mem dirty caller) then begin
          Hashtbl.replace dirty caller ();
          Queue.push caller worklist
        end)
      (Hashtbl.find_all callers name)
  done;
  fun callee ->
    match Intrinsics.classify callee with
    | Intrinsics.Unknown ->
        if Hashtbl.mem defined callee then Hashtbl.mem dirty callee else true
    | _ -> Intrinsics.clobbers_custody callee

(* -- elision witnesses -------------------------------------------------- *)

(* Every guard the elision pass removes leaves a witness record: which
   access lost its private guard, under which rule, justified by which
   surviving guard sites. The verifier re-checks these records through
   the dominator tree and loop structure — machinery independent of the
   dataflow fixpoint that licensed the elision — so a bug in the
   optimizer's lattice cannot silently vouch for itself. *)

type rule = Same | Congruent | Range | Hoist

type elision = { access : int; rule : rule; witness_ids : int list }

let rule_to_string = function
  | Same -> "same-pointer"
  | Congruent -> "congruent-slot"
  | Range -> "loop-range"
  | Hoist -> "hoisted"

let check_witnesses_func ~call_clobbers (f : Ir.func) (els : elision list) =
  let errors = ref [] in
  let err access fmt =
    Format.kasprintf
      (fun s ->
        errors :=
          Printf.sprintf "%s: bad elision witness for access %s: %s" f.fname
            (Telemetry.Site.key_to_string
               { Telemetry.Site.func = f.fname; instr = access })
            s
          :: !errors)
      fmt
  in
  let where = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iteri
        (fun pos (i : Ir.instr) -> Hashtbl.replace where i.id (b.label, pos, i))
        b.instrs)
    f.blocks;
  let cfg = Cfg.build f in
  let dom = Dominators.compute cfg in
  let loop_info = Loops.analyze f in
  let du = Defuse.build f in
  let clobbers_between ~from_block ~from_pos ~to_block ~to_pos =
    (* Scan the dominator chain from the access up to the witness: the
       tail of the witness block, all chain blocks strictly between, and
       the access block's prefix. Any custody clobber breaks the
       justification. *)
    let block_clobbers lbl lo hi =
      let b = Ir.find_block f lbl in
      List.exists
        (fun (idx, (i : Ir.instr)) ->
          idx > lo && idx < hi
          &&
          match i.kind with
          | Ir.Call { callee; _ } -> call_clobbers callee
          | _ -> false)
        (List.mapi (fun idx i -> (idx, i)) b.instrs)
    in
    if from_block = to_block then block_clobbers from_block from_pos to_pos
    else begin
      let rec chain lbl acc =
        if lbl = from_block then Some acc
        else
          match Dominators.idom dom lbl with
          | Some up -> chain up (lbl :: acc)
          | None -> None
      in
      match chain to_block [] with
      | None -> true (* witness does not even dominate: reject *)
      | Some between ->
          block_clobbers from_block from_pos max_int
          || block_clobbers to_block (-1) to_pos
          || List.exists
               (fun lbl ->
                 lbl <> to_block && block_clobbers lbl (-1) max_int)
               between
    end
  in
  List.iter
    (fun e ->
      match Hashtbl.find_opt where e.access with
      | None -> err e.access "access instruction no longer exists"
      | Some (ablock, apos, ai) -> begin
          (match ai.kind with
          | Ir.Load _ | Ir.Store _ -> ()
          | _ -> err e.access "witnessed instruction is not a load/store");
          if e.witness_ids = [] then err e.access "empty witness set";
          List.iter
            (fun wid ->
              match Hashtbl.find_opt where wid with
              | None -> err e.access "witness call %%%d no longer exists" wid
              | Some (wblock, wpos, wi) -> begin
                  match wi.kind with
                  | Ir.Call { callee; _ }
                    when Intrinsics.is_custody_source callee -> begin
                      match e.rule with
                      | Same | Congruent | Hoist ->
                          if
                            not
                              (Dominators.dominates dom wblock ablock
                              && (wblock <> ablock || wpos < apos))
                          then
                            err e.access
                              "witness %%%d (%s) does not dominate the access"
                              wid (rule_to_string e.rule)
                          else if
                            clobbers_between ~from_block:wblock
                              ~from_pos:wpos ~to_block:ablock ~to_pos:apos
                          then
                            err e.access
                              "custody clobbered between witness %%%d and \
                               the access"
                              wid
                      | Range -> begin
                          (* The witness guards a counted loop that runs
                             all its iterations before the access's block
                             is reachable: its header must dominate the
                             access, the body must be clobber-free, and
                             the trip count must be provably positive. *)
                          match Loops.loop_of_block loop_info wblock with
                          | None ->
                              err e.access
                                "range witness %%%d is not inside a loop" wid
                          | Some loop ->
                              if
                                not
                                  (Dominators.dominates dom loop.header
                                     ablock)
                              then
                                err e.access
                                  "range witness %%%d's loop does not \
                                   dominate the access"
                                  wid
                              else begin
                                let body_clobbers =
                                  List.exists
                                    (fun lbl ->
                                      let b = Ir.find_block f lbl in
                                      List.exists
                                        (fun (i : Ir.instr) ->
                                          match i.kind with
                                          | Ir.Call { callee; _ } ->
                                              call_clobbers callee
                                          | _ -> false)
                                        b.instrs)
                                    loop.body
                                in
                                if body_clobbers then
                                  err e.access
                                    "range witness %%%d's loop body clobbers \
                                     custody"
                                    wid;
                                let positive_trip =
                                  List.exists
                                    (fun (iv : Induction.iv) ->
                                      match
                                        ( Induction.const_of du iv.init,
                                          iv.bound )
                                      with
                                      | Some i0, Some b -> begin
                                          match Induction.const_of du b with
                                          | Some bnd ->
                                              iv.step > 0 && i0 < bnd
                                          | None -> false
                                        end
                                      | _ -> false)
                                    (Induction.ivs_of_loop
                                       (Induction.analyze f) loop)
                                in
                                if not positive_trip then
                                  err e.access
                                    "range witness %%%d's loop has no \
                                     provably positive trip count"
                                    wid
                              end
                        end
                    end
                  | _ ->
                      err e.access "witness %%%d is not a guard/chunk call"
                        wid
                end)
            e.witness_ids
        end)
    els;
  List.rev !errors

(* [call_clobbers] defaults to the module-derived reachability predicate
   above — an independent path from the summaries that licensed the
   elisions, so a summary bug cannot self-certify. Tests (and the elide
   pass's pre-validation, which deliberately trusts its own analysis)
   can substitute their own predicate. *)
let check_witnesses ?call_clobbers (m : Ir.modul) (els : (string * elision) list)
    =
  let call_clobbers =
    match call_clobbers with Some p -> p | None -> module_call_clobbers m
  in
  List.concat_map
    (fun (f : Ir.func) ->
      let mine = List.filter_map
          (fun (fname, e) -> if fname = f.fname then Some e else None)
          els
      in
      if mine = [] then [] else check_witnesses_func ~call_clobbers f mine)
    m.funcs

let enforce_witnesses m els =
  match check_witnesses m els with [] -> () | errs -> raise (Unsound errs)

(* -- routing witnesses -------------------------------------------------- *)

(* Every access the route pass moves onto the page path leaves a witness:
   which access was re-routed, through which page call, and the static
   class that justified it (attribution only — the re-proof below never
   re-runs the classifier). The verifier re-checks each record purely
   structurally: the page call must exist, be page-flavored, sit
   immediately before its access in the same block, name the same
   pointer with a large-enough constant size and a write flavor at
   least as strong as the access. Conversely every page call in the
   module must be claimed by exactly one witness, so a transform cannot
   smuggle in (or duplicate) a page call the witness list does not own —
   the same tamper-resistance discipline as elision witnesses. *)

type routing = { routed_access : int; page_call : int; cls : string }

let check_routing_func (f : Ir.func) (routes : routing list) =
  let errors = ref [] in
  let err access fmt =
    Format.kasprintf
      (fun s ->
        errors :=
          Printf.sprintf "%s: bad routing witness for access %s: %s" f.fname
            (Telemetry.Site.key_to_string
               { Telemetry.Site.func = f.fname; instr = access })
            s
          :: !errors)
      fmt
  in
  let where = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iteri
        (fun pos (i : Ir.instr) -> Hashtbl.replace where i.id (b.label, pos, i))
        b.instrs)
    f.blocks;
  List.iter
    (fun r ->
      match (Hashtbl.find_opt where r.routed_access,
             Hashtbl.find_opt where r.page_call) with
      | None, _ -> err r.routed_access "access instruction no longer exists"
      | _, None ->
          err r.routed_access "page call %%%d no longer exists" r.page_call
      | Some (ablock, apos, ai), Some (pblock, ppos, pi) -> begin
          let aptr =
            match ai.kind with
            | Ir.Load { ptr; size; _ } -> Some (ptr, size, false)
            | Ir.Store { ptr; size; _ } -> Some (ptr, size, true)
            | _ ->
                err r.routed_access
                  "witnessed instruction is not a load/store";
                None
          in
          match (aptr, pi.kind) with
          | None, _ -> ()
          | Some _, Ir.Call { callee; _ } when not (Intrinsics.is_page callee)
            ->
              err r.routed_access "witness %%%d is not a page call" r.page_call
          | Some (ptr, size, is_store), Ir.Call { callee; args } -> begin
              if not (pblock = ablock && ppos + 1 = apos) then
                err r.routed_access
                  "page call %%%d is not immediately before the access"
                  r.page_call;
              match args with
              | [ pptr; Ir.Const psz ] ->
                  if pptr <> ptr then
                    err r.routed_access
                      "page call %%%d names a different pointer" r.page_call;
                  if psz < size then
                    err r.routed_access
                      "page call %%%d covers %d bytes but the access touches \
                       %d"
                      r.page_call psz size;
                  let pwrite =
                    match Intrinsics.classify callee with
                    | Intrinsics.Page { write } -> write
                    | _ -> false
                  in
                  if is_store && not pwrite then
                    err r.routed_access
                      "read-flavored page call %%%d cannot cover a store"
                      r.page_call
              | _ ->
                  err r.routed_access "page call %%%d is malformed" r.page_call
            end
          | Some _, _ ->
              err r.routed_access "witness %%%d is not a call" r.page_call
        end)
    routes;
  (* Exactly-once ownership: collect every page call in the function and
     require a bijection with the witness list. *)
  let claimed = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem claimed r.page_call then
        err r.routed_access "page call %%%d claimed by two routing witnesses"
          r.page_call
      else Hashtbl.replace claimed r.page_call ())
    routes;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Call { callee; _ }
            when Intrinsics.is_page callee && not (Hashtbl.mem claimed i.id)
            ->
              errors :=
                Printf.sprintf
                  "%s: stray page call %s not owned by any routing witness"
                  f.fname
                  (Telemetry.Site.key_to_string
                     { Telemetry.Site.func = f.fname; instr = i.id })
                :: !errors
          | _ -> ())
        b.instrs)
    f.blocks;
  List.rev !errors

(* Functions with no witnesses still get scanned: a page call in a
   witness-free function is exactly the smuggling case. *)
let check_routing (m : Ir.modul) (routes : (string * routing) list) =
  List.concat_map
    (fun (f : Ir.func) ->
      let mine =
        List.filter_map
          (fun (fname, r) -> if fname = f.fname then Some r else None)
          routes
      in
      check_routing_func f mine)
    m.funcs

let enforce_routing m routes =
  match check_routing m routes with [] -> () | errs -> raise (Unsound errs)
