(** Guard-coverage verifier (sanitizer for transformed IR).

    Proves every may-heap load/store is covered by **exactly one**
    protection mechanism: available custody — a guard or chunk access on
    the same bytes dominates it along every path with no intervening
    clobber ({!Facts}) — or an immediately-preceding page-path call (the
    hybrid data plane). A gap (neither) and double protection (both) are
    each violations carrying the offending instruction in guard-site
    attribution form ({!Telemetry.Site}); the pipeline raises {!Unsound}
    on any, so a transform bug fails compilation instead of becoming a
    silent far-memory crash. *)

type flaw =
  | Gap  (** covered by no mechanism at all *)
  | Double of int
      (** custody-covered AND paged; carries the page call's id *)

type violation = {
  func : string;
  block : string;
  instr : int;  (** the offending access *)
  is_store : bool;
  flaw : flaw;
  killer : int option;
      (** closest preceding custody clobber in the same block, if any *)
}

val violation_site : violation -> Telemetry.Site.key
val violation_to_string : violation -> string

val check_func : ?summaries:Summary.env -> Ir.func -> violation list

val check_module : ?summaries:bool -> Ir.modul -> violation list
(** [summaries] (default [true]) lets the checker compute its own
    interprocedural summaries from the module text — never reusing the
    pipeline's environment — so custody survives provably-safe calls
    while a corrupted producer summary still surfaces as uncovered
    accesses. Pass [false] for the strict intraprocedural check. *)

exception Unsound of string list

val enforce : ?summaries:bool -> Ir.modul -> unit
(** Raises {!Unsound} with formatted violations when the module has
    any uncovered may-heap access. *)

val module_call_clobbers : Ir.modul -> string -> bool
(** Independent custody re-derivation: does a call to this callee
    possibly disturb the caller's custody facts? Computed by direct
    reachability over the module (dirty-propagation through defined
    callees; anything escaping the module clobbers), sharing no code
    with {!Summary.compute}. *)

(** {1 Elision witnesses}

    Every guard the elision pass deletes leaves a record naming the
    access that lost its private guard, the rule used, and the surviving
    witness guard sites. These are re-checked through dominators and
    loop structure — independent machinery from the dataflow fixpoint
    that licensed the deletion. *)

type rule =
  | Same  (** dominating guard on the same SSA pointer *)
  | Congruent  (** widened guard on the same (base, index, scale) slot *)
  | Range  (** counted loop already guarded the whole interval *)
  | Hoist  (** guard moved to the loop preheader *)

type elision = { access : int; rule : rule; witness_ids : int list }

val rule_to_string : rule -> string

val check_witnesses :
  ?call_clobbers:(string -> bool) ->
  Ir.modul ->
  (string * elision) list ->
  string list
(** Returns human-readable errors for witness records that no longer
    justify their elision; empty means all records check out.
    [call_clobbers] defaults to {!module_call_clobbers} of the module —
    an independent re-derivation, so a bug in the summaries that
    licensed an elision cannot vouch for itself. *)

val enforce_witnesses : Ir.modul -> (string * elision) list -> unit
(** Raises {!Unsound} when any witness record fails re-checking. *)

(** {1 Routing witnesses}

    Every access the route pass moves onto the page path leaves a record
    naming the access, the page call that replaced its private guard,
    and the static class that justified the move ([cls] is attribution
    only — re-checking is purely structural and never re-runs the
    classifier). *)

type routing = {
  routed_access : int;  (** the load/store now covered by the page path *)
  page_call : int;  (** the page call immediately before it *)
  cls : string;  (** classifier evidence, e.g. "pointer-chase" *)
}

val check_routing_func : Ir.func -> routing list -> string list

val check_routing : Ir.modul -> (string * routing) list -> string list
(** Returns human-readable errors: a witness whose page call is missing,
    misplaced, on the wrong pointer/size/flavor, or claimed twice — plus
    any page call in the module not owned by exactly one witness (the
    smuggled-call case). Empty means all records check out. *)

val enforce_routing : Ir.modul -> (string * routing) list -> unit
(** Raises {!Unsound} when any routing record fails re-checking. *)
