(** Guard-coverage verifier (sanitizer for transformed IR).

    Proves every may-heap load/store is covered by available custody: a
    guard or chunk access on the same bytes dominates it along every
    path with no intervening clobber ({!Facts}). Violations carry the
    offending instruction in guard-site attribution form
    ({!Telemetry.Site}); the pipeline raises {!Unsound} on any, so a
    transform bug fails compilation instead of becoming a silent
    far-memory crash. *)

type violation = {
  func : string;
  block : string;
  instr : int;  (** the unguarded access *)
  is_store : bool;
  killer : int option;
      (** closest preceding custody clobber in the same block, if any *)
}

val violation_site : violation -> Telemetry.Site.key
val violation_to_string : violation -> string

val check_func : ?summaries:Summary.env -> Ir.func -> violation list

val check_module : ?summaries:bool -> Ir.modul -> violation list
(** [summaries] (default [true]) lets the checker compute its own
    interprocedural summaries from the module text — never reusing the
    pipeline's environment — so custody survives provably-safe calls
    while a corrupted producer summary still surfaces as uncovered
    accesses. Pass [false] for the strict intraprocedural check. *)

exception Unsound of string list

val enforce : ?summaries:bool -> Ir.modul -> unit
(** Raises {!Unsound} with formatted violations when the module has
    any uncovered may-heap access. *)

val module_call_clobbers : Ir.modul -> string -> bool
(** Independent custody re-derivation: does a call to this callee
    possibly disturb the caller's custody facts? Computed by direct
    reachability over the module (dirty-propagation through defined
    callees; anything escaping the module clobbers), sharing no code
    with {!Summary.compute}. *)

(** {1 Elision witnesses}

    Every guard the elision pass deletes leaves a record naming the
    access that lost its private guard, the rule used, and the surviving
    witness guard sites. These are re-checked through dominators and
    loop structure — independent machinery from the dataflow fixpoint
    that licensed the deletion. *)

type rule =
  | Same  (** dominating guard on the same SSA pointer *)
  | Congruent  (** widened guard on the same (base, index, scale) slot *)
  | Range  (** counted loop already guarded the whole interval *)
  | Hoist  (** guard moved to the loop preheader *)

type elision = { access : int; rule : rule; witness_ids : int list }

val rule_to_string : rule -> string

val check_witnesses :
  ?call_clobbers:(string -> bool) ->
  Ir.modul ->
  (string * elision) list ->
  string list
(** Returns human-readable errors for witness records that no longer
    justify their elision; empty means all records check out.
    [call_clobbers] defaults to {!module_call_clobbers} of the module —
    an independent re-derivation, so a bug in the summaries that
    licensed an elision cannot vouch for itself. *)

val enforce_witnesses : Ir.modul -> (string * elision) list -> unit
(** Raises {!Unsound} when any witness record fails re-checking. *)
