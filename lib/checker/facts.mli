(** Forward must-available dataflow over custody facts.

    Computes, at every program point, which byte intervals are provably
    in custody: a guard or chunk access on every path already checked
    and localized them, and no call that may evict or free (allocation,
    free, opaque calls — see {!Ir.Intrinsics.clobbers_custody}) has
    intervened. The guard-coverage verifier asks it whether an access is
    covered; the elision pass asks it whether a guard is redundant. *)

module Int_set : Set.S with type elt = int

(** Facts are byte intervals relative to an anchor. [Val v] anchors at an
    SSA value; [Slot (base, index, scale)] anchors at [base + index*scale]
    so geps differing only in constant offset share facts. *)
type anchor = Val of Ir.value | Slot of Ir.value * Ir.value * int

type fact = {
  lo : int;
  hi : int;  (** byte interval [lo, hi) relative to the anchor *)
  write : bool;  (** write custody; covers read queries too *)
  chunk : bool;  (** chunk-protocol provenance: released at chunk_end *)
  witnesses : Int_set.t;  (** ids of the establishing calls *)
}

type state
type t

val analyze : ?summaries:Summary.env -> Ir.func -> t
(** Run the fixpoint (rebuilds def-use, CFG, dominators, loops and
    induction info for the function snapshot). With [summaries], calls
    whose interprocedural summary proves custody preservation no longer
    clobber the fact state, so custody survives across helper calls. *)

val in_state : t -> string -> state
(** Facts available on entry to the labelled block. *)

val apply_instr : t -> state -> Ir.instr -> state
(** One-instruction transfer: guards/chunk accesses add facts, release
    points remove them, clobbers empty the state. *)

val anchors_of : t -> Ir.value -> (anchor * int) list
(** Anchor decompositions of a pointer: (anchor, byte delta) pairs at
    which an access through the pointer lands. *)

val facts_at : state -> anchor -> fact list

type hit = {
  covering : fact;
  anchor : anchor;
  delta_lo : int;
  delta_hi : int;  (** the queried interval at that anchor *)
}

val query :
  ?alive:(int -> bool) ->
  t ->
  state ->
  block:string ->
  Ir.value ->
  size:int ->
  write:bool ->
  hit option
(** Is an access of [size] bytes through the pointer covered at this
    point? [alive] filters facts whose witnesses were deleted by an
    in-progress transform. Tries the pointer's own anchors first, then
    the induction-range interval when the pointer strides a counted
    loop. *)

val dominators : t -> Dominators.t
val loop_info : t -> Loops.t
val induction : t -> Induction.t
val du : t -> Defuse.t
val func : t -> Ir.func
