(* Forward must-available dataflow over custody facts.

   A fact says: the bytes [lo, hi) relative to an anchor are in custody —
   some guard or chunk access on this path already performed the check
   and localized the object(s), and nothing since could have evicted or
   freed them. The custody contract mirrors the AIFM dereference-scope
   semantics the runtime implements (lib/aifm/scope.mli): between a
   guard's safety check and a release point the guarded object stays
   resident, so a second check on the same bytes is pure overhead. The
   release points are exactly the calls {!Intrinsics.clobbers_custody}
   flags — allocation (may evict to make room), free, and any opaque
   call — plus [!tfm_chunk_end] for facts established by the chunk
   protocol's pinned streams.

   Facts are anchored three ways so that equivalence is more than
   SSA-value identity:

   - [Val v]: bytes relative to the run-time value of [v] itself — the
     plain "same SSA pointer" case, plus [gep base, Const i] folded into
     its base.
   - [Slot (base, index, scale)]: bytes relative to [base + index*scale]
     for a non-constant [index] — two geps off the same base and index
     register that differ only in the constant field offset land on the
     same anchor, which is what licenses merging a struct's field guards.
   - Loop ranges: a counted loop whose body guards a dense affine stride
     of an invariant base and provably runs all its iterations
     contributes, on its unique exit edge, a [Val base] fact covering
     the whole scanned interval.

   The lattice join is must-style: at a control-flow merge only facts
   provable along every predecessor survive, as the pairwise
   intersections of their byte intervals; strength (write custody covers
   reads, not vice versa) degrades to the weaker side. *)

module Int_set = Set.Make (Int)

type anchor =
  | Val of Ir.value
  | Slot of Ir.value * Ir.value * int  (* base, index, scale *)

module Anchor_map = Map.Make (struct
  type t = anchor

  let compare = compare
end)

type fact = {
  lo : int;
  hi : int;  (* byte interval [lo, hi) relative to the anchor *)
  write : bool;  (* write custody (covers reads too) *)
  chunk : bool;  (* established by the chunk protocol: dies at chunk_end *)
  witnesses : Int_set.t;  (* ids of the establishing calls *)
}

type state = fact list Anchor_map.t

type t = {
  func : Ir.func;
  du : Defuse.t;
  cfg : Cfg.t;
  dom : Dominators.t;
  loop_info : Loops.t;
  ind : Induction.t;
  edge_gen : (string * string, (anchor * fact) list) Hashtbl.t;
  in_states : (string, state) Hashtbl.t;
  summaries : Summary.env option;
      (* when present, calls whose summary proves custody preservation
         stop clobbering the fact state *)
}

let func t = t.func
let du t = t.du
let dominators t = t.dom
let loop_info t = t.loop_info
let induction t = t.ind

(* -- fact-set algebra --------------------------------------------------- *)

let fact_equal a b =
  a.lo = b.lo && a.hi = b.hi && a.write = b.write && a.chunk = b.chunk
  && Int_set.equal a.witnesses b.witnesses

(* [g] proves everything [f] does: wider interval, at least as strong,
   and no more fragile (a non-chunk fact survives chunk_end). *)
let subsumes g f =
  g.lo <= f.lo && g.hi >= f.hi
  && (g.write || not f.write)
  && ((not g.chunk) || f.chunk)

let normalize facts =
  (* Merge identical intervals (witness union), drop subsumed facts, keep
     a deterministic order and a small bound on the list. *)
  let merged =
    List.fold_left
      (fun acc f ->
        let same, rest =
          List.partition
            (fun g ->
              g.lo = f.lo && g.hi = f.hi && g.write = f.write
              && g.chunk = f.chunk)
            acc
        in
        match same with
        | [] -> f :: rest
        | g :: _ ->
            { f with witnesses = Int_set.union f.witnesses g.witnesses }
            :: rest)
      [] facts
  in
  let kept =
    List.filter
      (fun f ->
        not
          (List.exists
             (fun g -> (not (fact_equal g f)) && subsumes g f)
             merged))
      merged
  in
  let sorted =
    List.sort
      (fun a b ->
        compare (a.lo, a.hi, a.write, a.chunk) (b.lo, b.hi, b.write, b.chunk))
      kept
  in
  (* Cap per-anchor fact counts; prefer the widest intervals. Dropping a
     fact only loses optimization/coverage opportunities, never
     soundness. *)
  if List.length sorted <= 8 then sorted
  else
    List.sort (fun a b -> compare (b.hi - b.lo) (a.hi - a.lo)) sorted
    |> List.filteri (fun i _ -> i < 8)
    |> List.sort (fun a b -> compare (a.lo, a.hi) (b.lo, b.hi))

let state_equal (a : state) (b : state) =
  Anchor_map.equal
    (fun fa fb ->
      List.length fa = List.length fb && List.for_all2 fact_equal fa fb)
    a b

let join_states (a : state) (b : state) : state =
  Anchor_map.merge
    (fun _ fa fb ->
      match (fa, fb) with
      | Some fa, Some fb ->
          let inter =
            List.concat_map
              (fun x ->
                List.filter_map
                  (fun y ->
                    let lo = max x.lo y.lo and hi = min x.hi y.hi in
                    if lo >= hi then None
                    else
                      Some
                        {
                          lo;
                          hi;
                          write = x.write && y.write;
                          chunk = x.chunk || y.chunk;
                          witnesses = Int_set.union x.witnesses y.witnesses;
                        })
                  fb)
              fa
          in
          (match normalize inter with [] -> None | l -> Some l)
      | _ -> None)
    a b

(* -- anchoring ---------------------------------------------------------- *)

(* Where a pointer value's bytes land: always relative to the value
   itself, and — when it is a gep — also relative to its base (constant
   index) or its (base, index, scale) slot (symbolic index). *)
let anchors_of t (v : Ir.value) : (anchor * int) list =
  let direct = [ (Val v, 0) ] in
  match v with
  | Ir.Reg id -> begin
      match Defuse.def t.du id with
      | Some { kind = Ir.Gep { base; index; scale; offset }; _ } -> begin
          match Induction.const_of t.du index with
          | Some c -> ((Val base, (c * scale) + offset) : anchor * int) :: direct
          | None -> (Slot (base, index, scale), offset) :: direct
        end
      | _ -> direct
    end
  | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> direct

(* -- per-instruction transfer ------------------------------------------- *)

let add_fact state anchor f =
  Anchor_map.update anchor
    (function None -> Some [ f ] | Some l -> Some (normalize (f :: l)))
    state

let call_size args si =
  match List.nth_opt args si with
  | Some (Ir.Const n) when n > 0 -> n
  | _ -> 1

let apply_instr t (state : state) (i : Ir.instr) : state =
  match i.kind with
  | Ir.Call { callee; args } -> begin
      match Intrinsics.classify callee with
      | Intrinsics.Guard { write } | Intrinsics.Chunk_access { write } -> begin
          let chunk =
            match Intrinsics.classify callee with
            | Intrinsics.Chunk_access _ -> true
            | _ -> false
          in
          match Intrinsics.custody_args callee with
          | Some (pi, si) -> begin
              match List.nth_opt args pi with
              | Some ptr ->
                  let sz = call_size args si in
                  List.fold_left
                    (fun st (anchor, delta) ->
                      add_fact st anchor
                        {
                          lo = delta;
                          hi = delta + sz;
                          write;
                          chunk;
                          witnesses = Int_set.singleton i.id;
                        })
                    state (anchors_of t ptr)
              | None -> state
            end
          | None -> state
        end
      | Intrinsics.Chunk_end ->
          Anchor_map.filter_map
            (fun _ l ->
              match List.filter (fun f -> not f.chunk) l with
              | [] -> None
              | l -> Some l)
            state
      | Intrinsics.Alloc | Intrinsics.Free -> Anchor_map.empty
      | Intrinsics.Unknown ->
          if Summary.call_clobbers ?env:t.summaries callee then
            Anchor_map.empty
          else state
      | Intrinsics.Page _ ->
          (* Page-path accesses neither establish custody (nothing pins
             the faulted page) nor clobber it (the swap's budget is
             separate from the object pool's pins). *)
          state
      | Intrinsics.Neutral -> state
    end
  | _ -> state

(* -- loop-range facts --------------------------------------------------- *)

(* The loop-governing comparison with its exact operator (Lt vs Le
   changes the last index value, which must-coverage cares about). *)
let governing_cmp t (loop : Loops.loop) phi_id =
  let header = Ir.find_block t.func loop.header in
  match header.term with
  | Ir.Cbr (Ir.Reg cid, _, _) -> begin
      match Defuse.def t.du cid with
      | Some { kind = Ir.Icmp (((Ir.Lt | Ir.Le) as op), Ir.Reg l, bound); _ }
        when l = phi_id ->
          Option.map (fun b -> (op, b)) (Induction.const_of t.du bound)
      | _ -> None
    end
  | Ir.Br _ | Ir.Cbr _ | Ir.Ret _ | Ir.Unreachable -> None

(* A counted loop that provably runs all iterations from a constant range
   and whose body is clobber-free leaves, on its unique exit edge, range
   custody over every dense affine stride its guards walked. *)
let loop_range_facts t (loop : Loops.loop) =
  let body_blocks = List.map (Ir.find_block t.func) loop.body in
  let exits_only_from_header =
    List.for_all
      (fun blk ->
        blk = loop.header
        || List.for_all
             (fun s -> Loops.contains loop s)
             (Cfg.successors t.cfg blk))
      loop.body
  in
  let clobber_free =
    List.for_all
      (fun (b : Ir.block) ->
        List.for_all
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; _ } ->
                (not (Summary.call_clobbers ?env:t.summaries callee))
                && Intrinsics.classify callee <> Intrinsics.Chunk_end
            | _ -> true)
          b.instrs)
      body_blocks
  in
  if not (exits_only_from_header && clobber_free) then []
  else
    let dominates_latches blk =
      List.for_all (fun l -> Dominators.dominates t.dom blk l) loop.latches
    in
    List.concat_map
      (fun (iv : Induction.iv) ->
        match (Induction.const_of t.du iv.init, governing_cmp t loop iv.phi_id)
        with
        | Some i0, Some (op, bnd) when iv.step > 0 ->
            let upper = match op with Ir.Le -> bnd | _ -> bnd - 1 in
            if i0 > upper then []
            else
              let last = i0 + ((upper - i0) / iv.step * iv.step) in
              List.concat_map
                (fun (b : Ir.block) ->
                  if not (dominates_latches b.label) then []
                  else
                    List.filter_map
                      (fun (i : Ir.instr) ->
                        match i.kind with
                        | Ir.Call { callee; args }
                          when Intrinsics.is_custody_source callee -> begin
                            match Intrinsics.custody_args callee with
                            | Some (pi, si) -> begin
                                match List.nth_opt args pi with
                                | Some (Ir.Reg pid) -> begin
                                    match Defuse.def t.du pid with
                                    | Some
                                        {
                                          kind =
                                            Ir.Gep
                                              { base; index; scale; offset };
                                          _;
                                        }
                                      when scale > 0
                                           && Induction.is_loop_invariant
                                                t.ind loop base -> begin
                                        match
                                          Induction.increment_of t.du
                                            iv.phi_id index
                                        with
                                        | Some k
                                          when scale * iv.step
                                               <= call_size args si ->
                                            let sz = call_size args si in
                                            let write, chunk =
                                              match
                                                Intrinsics.classify callee
                                              with
                                              | Intrinsics.Guard { write } ->
                                                  (write, false)
                                              | Intrinsics.Chunk_access
                                                  { write } ->
                                                  (write, true)
                                              | _ -> (false, false)
                                            in
                                            Some
                                              ( Val base,
                                                {
                                                  lo =
                                                    (scale * (i0 + k))
                                                    + offset;
                                                  hi =
                                                    (scale * (last + k))
                                                    + offset + sz;
                                                  write;
                                                  chunk;
                                                  witnesses =
                                                    Int_set.singleton i.id;
                                                } )
                                        | _ -> None
                                      end
                                    | _ -> None
                                  end
                                | _ -> None
                              end
                            | None -> None
                          end
                        | _ -> None)
                      b.instrs)
                body_blocks
        | _ -> [])
      (Induction.ivs_of_loop t.ind loop)

let compute_edge_gen t =
  List.iter
    (fun (loop : Loops.loop) ->
      match loop_range_facts t loop with
      | [] -> ()
      | facts ->
          List.iter
            (fun s ->
              if not (Loops.contains loop s) then begin
                let key = (loop.header, s) in
                let cur =
                  Option.value ~default:[] (Hashtbl.find_opt t.edge_gen key)
                in
                Hashtbl.replace t.edge_gen key (facts @ cur)
              end)
            (Cfg.successors t.cfg loop.header))
    (Loops.loops t.loop_info)

(* -- the fixpoint ------------------------------------------------------- *)

let transfer_block t state (b : Ir.block) =
  List.fold_left (fun st i -> apply_instr t st i) state b.instrs

let along_edge t ~src ~dst out_state =
  match Hashtbl.find_opt t.edge_gen (src, dst) with
  | None -> out_state
  | Some facts ->
      List.fold_left (fun st (a, f) -> add_fact st a f) out_state facts

let analyze ?summaries (f : Ir.func) : t =
  let du = Defuse.build f in
  let cfg = Cfg.build f in
  let dom = Dominators.compute cfg in
  let loop_info = Loops.analyze f in
  let ind = Induction.analyze f in
  let t =
    {
      func = f;
      du;
      cfg;
      dom;
      loop_info;
      ind;
      edge_gen = Hashtbl.create 8;
      in_states = Hashtbl.create 16;
      summaries;
    }
  in
  compute_edge_gen t;
  let entry = (Ir.entry f).label in
  let rpo = Cfg.reachable cfg in
  let out_states : (string, state) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    changed := false;
    incr iters;
    if !iters > 200 then
      failwith ("Facts.analyze: fixpoint did not converge in " ^ f.fname);
    List.iter
      (fun lbl ->
        let in_state =
          if lbl = entry then Anchor_map.empty
          else
            (* Predecessors not yet visited contribute top (all facts):
               standard optimistic initialization for a must-problem;
               the loop iterates until the states stabilize. *)
            let pred_outs =
              List.filter_map
                (fun p ->
                  Option.map
                    (fun o -> along_edge t ~src:p ~dst:lbl o)
                    (Hashtbl.find_opt out_states p))
                (Cfg.predecessors t.cfg lbl)
            in
            match pred_outs with
            | [] -> Anchor_map.empty
            | s :: rest -> List.fold_left join_states s rest
        in
        let old_in = Hashtbl.find_opt t.in_states lbl in
        if old_in = None || not (state_equal (Option.get old_in) in_state)
        then begin
          Hashtbl.replace t.in_states lbl in_state;
          changed := true
        end;
        let out = transfer_block t in_state (Ir.find_block f lbl) in
        match Hashtbl.find_opt out_states lbl with
        | Some o when state_equal o out -> ()
        | _ ->
            Hashtbl.replace out_states lbl out;
            changed := true)
      rpo
  done;
  t

let in_state t lbl =
  Option.value ~default:Anchor_map.empty (Hashtbl.find_opt t.in_states lbl)

(* -- coverage queries --------------------------------------------------- *)

type hit = { covering : fact; anchor : anchor; delta_lo : int; delta_hi : int }

let facts_at (state : state) anchor =
  Option.value ~default:[] (Anchor_map.find_opt anchor state)

let fact_covers ~lo ~hi ~write f =
  f.lo <= lo && f.hi >= hi && (f.write || not write)

(* The byte interval the access can touch relative to [Val base], when
   the pointer strides an induction variable with constant range: lets
   range facts from an earlier loop cover a later loop's accesses. *)
let induction_interval t ~block (v : Ir.value) ~size =
  match v with
  | Ir.Reg id -> begin
      match Defuse.def t.du id with
      | Some { kind = Ir.Gep { base; index; scale; offset }; _ }
        when scale > 0 -> begin
          match Loops.loop_of_block t.loop_info block with
          | None -> None
          | Some loop ->
              if not (Induction.is_loop_invariant t.ind loop base) then None
              else
                List.find_map
                  (fun (iv : Induction.iv) ->
                    match
                      ( Induction.increment_of t.du iv.phi_id index,
                        Induction.const_of t.du iv.init,
                        governing_cmp t loop iv.phi_id )
                    with
                    | Some k, Some i0, Some (op, bnd) when iv.step > 0 ->
                        (* Conservative superset of the values the index
                           takes: [i0 .. upper]. *)
                        let upper =
                          match op with Ir.Le -> bnd | _ -> bnd - 1
                        in
                        if i0 > upper then None
                        else
                          Some
                            ( Val base,
                              (scale * (i0 + k)) + offset,
                              (scale * (upper + k)) + offset + size )
                    | _ -> None)
                  (Induction.ivs_of_loop t.ind loop)
        end
      | _ -> None
    end
  | _ -> None

let query ?(alive = fun _ -> true) t (state : state) ~block (v : Ir.value)
    ~size ~write : hit option =
  let at anchor lo hi =
    List.find_map
      (fun f ->
        if fact_covers ~lo ~hi ~write f && Int_set.for_all alive f.witnesses
        then Some { covering = f; anchor; delta_lo = lo; delta_hi = hi }
        else None)
      (facts_at state anchor)
  in
  let direct =
    List.find_map
      (fun ((anchor : anchor), delta) -> at anchor delta (delta + size))
      (anchors_of t v)
  in
  match direct with
  | Some _ as hit -> hit
  | None -> begin
      match induction_interval t ~block v ~size with
      | Some (anchor, lo, hi) -> at anchor lo hi
      | None -> None
    end
