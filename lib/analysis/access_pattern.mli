(** Static access-pattern classification for the hybrid data plane.

    Classifies every may-heap access site of a function as streaming
    (affine stride over an invariant base in a counted loop — the shape
    chunking and prefetching reward, so guards keep it), pointer-chasing
    (the address chains through loaded pointers — dependent misses the
    guard fast path only taxes, so the page-fault path should own it),
    mixed (both kinds of evidence), or unknown (neither). Each site also
    carries a density/reuse estimate and a one-line rationale.

    Advice, not proof: the route pass consumes this table, and the
    coverage checker re-proves the resulting guards-vs-paging split
    structurally without ever consulting it. *)

type cls = Streaming | Pointer_chase | Mixed | Unknown

val cls_to_string : cls -> string

type site = {
  instr_id : int;
  block : string;
  is_store : bool;
  size : int;  (** bytes per access *)
  cls : cls;
  stride : int option;  (** byte stride when streaming evidence exists *)
  chain_depth : int;  (** loaded-pointer hops in the address chain *)
  shape : string option;
      (** structure kind at the accessed allocation site, when the shape
          analysis resolved one (list/tree/graph/scalar) *)
  density : float;
      (** estimated useful fraction of a fetched line/page at this site *)
  rationale : string;  (** deterministic one-line evidence summary *)
}

type t

val analyze : ?summaries:Summary.env -> ?shapes:Shape.env -> Ir.func -> t
(** With [summaries], pass-through helpers ([From_arg] return
    provenance) keep dereference chains alive across calls, and the
    may-heap site set inherits the summary-aware alias precision. With
    [shapes], chains additionally survive *loaded* hops hidden inside
    helpers ([ret_hops]) and arguments inherit their callers' chain
    depths (calling contexts), so helper-hidden traversals classify
    [Pointer_chase] instead of [Unknown]; sites also gain the structure
    kind of the allocation site they touch. Shape facts only ever add
    chain evidence — a [Streaming] verdict cannot be manufactured by
    them. *)

val sites : t -> site list
(** Ascending instruction id. *)

val site_of : t -> int -> site option

val dump : t -> string
(** Deterministic per-function dump (one line per site, ascending id);
    the [classify] CLI subcommand prints this and CI byte-compares two
    runs. *)
