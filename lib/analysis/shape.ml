(* Interprocedural shape analysis: recursive-structure detection that
   sees pointer chases through helper calls.

   The access-pattern classifier's blind spot (ROADMAP item 3's
   "remaining headroom") is a dereference chain hidden behind helpers:
   summaries keep chains alive only for pass-through ([From_arg])
   callees, so a `node_next`-style accessor — whose body *is* the load —
   collapses the caller's chain to zero and the site stays on the taxed
   guard path. This module computes, alongside the {!Summary} fixpoint
   and over the same {!Callgraph} SCCs, the three facts that close the
   gap:

   - per allocation site: whether the allocated objects form a recursive
     linked structure (self-referential field stores — list, tree, or
     DAG-ish graph) and which field offsets are the link fields;
   - per function (bottom-up): [ret_hops] — the return value is
     parameter [i] after [d] loaded hops (generalizing [From_arg], which
     is the [d = 0] case) — and [chases] — the "chase-through" bit: the
     maximum dependent-load depth the function performs on addresses
     derived from each parameter, composed transitively through callees;
   - per function (top-down, callers first): a calling context [ctx] —
     the maximum chain depth and the allocation-site provenance flowing
     into each parameter across all call chains — so the access *inside*
     the helper classifies with the caller's chain, not as Unknown.

   Everything here is advice with a dynamic audit, never proof: the
   route pass consumes these facts to pick a mechanism, the coverage
   checker re-proves the resulting split structurally without ever
   consulting them, and the interpreter's shadow recorder
   ({!Tfm_interp.Shadow}) cross-checks the claimed depths against
   observed per-site deref-chain depths in CI. A lying shape summary can
   misroute a site (still sound — both mechanisms protect) but cannot
   survive the shadow diff. *)

(* Chain depths saturate here, both statically and in the interpreter's
   shadow recorder (`Tfm_interp.Shadow.depth_cap` mirrors this value;
   the interp library cannot depend on this one). Saturation is what
   makes the recursive-SCC fixpoint finite: `subtree_sum`-style
   self-composition grows the chase depth by one per round until the
   cap. *)
let depth_cap = 9

type struct_kind = Scalar | List | Tree | Graph

let kind_to_string = function
  | Scalar -> "scalar"
  | List -> "list"
  | Tree -> "tree"
  | Graph -> "graph"

let kind_is_recursive = function
  | List | Tree | Graph -> true
  | Scalar -> false

type alloc_site = {
  alloc_id : int;
  alloc_block : string;
  kind : struct_kind;
  link_offsets : int list;  (* sorted distinct known link-field offsets *)
  unknown_link : bool;  (* a self-link whose field offset we can't name *)
}

type fshape = {
  ret_hops : (int * int) option;
      (* return value = parameter i after d loaded hops (d = 0 is the
         pass-through case [Summary.From_arg] already covers) *)
  chases : int array;
      (* per parameter: max dependent-load depth performed on addresses
         derived from it, through callees; > 0 is the chase-through bit *)
  links : (int * int * int option) list;
      (* stores parameter src into a field of parameter dst: constructor
         helpers surface their caller's self-links this way *)
  allocs : alloc_site list;  (* ascending alloc_id *)
}

(* Allocation-site provenance, module-global ("which structure is this
   pointer into?"). *)
type gprov = Gbot | Gsite of string * int | Gtop

type ctx = { arg_depth : int array; arg_struct : gprov array }

type env = {
  shapes : (string, fshape) Hashtbl.t;
  ctxs : (string, ctx) Hashtbl.t;
  sites : (string * int, alloc_site) Hashtbl.t;
}

let no_facts ~nparams =
  { ret_hops = None; chases = Array.make nparams 0; links = []; allocs = [] }

let empty_ctx ~nparams =
  { arg_depth = Array.make nparams 0; arg_struct = Array.make nparams Gbot }

let summary (env : env) name = Hashtbl.find_opt env.shapes name
let context (env : env) name = Hashtbl.find_opt env.ctxs name
let site_of (env : env) key = Hashtbl.find_opt env.sites key

(* Tamper hooks: tests inject lying facts and watch the shadow validator
   (not the checker, which never reads these) catch the misroute. *)
let set (env : env) name s = Hashtbl.replace env.shapes name s
let set_context (env : env) name c = Hashtbl.replace env.ctxs name c

(* ------------------------------------------------------------------ *)
(* Bottom-up: hops-from-argument lattice.                              *)
(* ------------------------------------------------------------------ *)

(* Hbot: no information yet (optimistic fixpoint seed / non-pointer).
   Harg (i, d): derived from parameter i through d loaded hops.
   Hnone: definitely not a plain arg-derived chain. *)
type hops = Hbot | Harg of int * int | Hnone

(* Control-flow join (phi/select): claiming "arg i after d hops" is only
   honest if every arm agrees on the parameter; mixing with a non-arg
   value degrades to Hnone so ret_hops never overstates. *)
let hops_join a b =
  match (a, b) with
  | Hbot, x | x, Hbot -> x
  | Harg (i, d), Harg (i', d') when i = i' -> Harg (i, max d d')
  | _ -> Hnone

(* Arithmetic combine (add/sub): a constant/unknown-integer side is an
   address offset, not a merge — keep the single arg-derived side, the
   same shape {!Access_pattern.chain_depth_of} accepts. *)
let hops_offset a b =
  match (a, b) with
  | Hbot, x | x, Hbot -> x
  | (Harg _ as h), Hnone | Hnone, (Harg _ as h) -> h
  | Harg (i, d), Harg (i', d') when i = i' -> Harg (i, max d d')
  | _ -> Hnone

let defs_of (f : Ir.func) =
  let t = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun (i : Ir.instr) -> Hashtbl.replace t i.Ir.id (b, i)) b.instrs)
    f.Ir.blocks;
  t

(* Per-function hops fixpoint: for every value-defining instruction, is
   it parameter i after d loaded hops? *)
let hops_fixpoint (env : env) (f : Ir.func) =
  let tbl = Hashtbl.create 64 in
  let value_hops = function
    | Ir.Const _ | Ir.Constf _ | Ir.Sym _ -> Hnone
    | Ir.Arg i -> Harg (i, 0)
    | Ir.Reg id -> ( try Hashtbl.find tbl id with Not_found -> Hbot)
  in
  let transfer (i : Ir.instr) =
    match i.Ir.kind with
    | Ir.Gep { base; _ } -> value_hops base
    | Ir.Load { ptr; is_float = false; _ } -> (
        match value_hops ptr with
        | Harg (i, d) -> Harg (i, min depth_cap (d + 1))
        | h -> h)
    | Ir.Phi incoming ->
        List.fold_left (fun acc (_, v) -> hops_join acc (value_hops v)) Hbot
          incoming
    | Ir.Select (_, a, b) -> hops_join (value_hops a) (value_hops b)
    | Ir.Binop ((Ir.Add | Ir.Sub), a, b) ->
        hops_offset (value_hops a) (value_hops b)
    | Ir.Call { callee; args } -> (
        match
          Option.bind (Hashtbl.find_opt env.shapes callee) (fun s ->
              s.ret_hops)
        with
        | Some (j, d) -> (
            match Option.map value_hops (List.nth_opt args j) with
            | Some (Harg (i, d0)) -> Harg (i, min depth_cap (d0 + d))
            | Some h -> h
            | None -> Hnone)
        | None -> Hnone)
    | _ -> Hnone
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if Ir.defines_value i.Ir.kind then begin
              let old = try Hashtbl.find tbl i.Ir.id with Not_found -> Hbot in
              let nu = hops_join old (transfer i) in
              if nu <> old then begin
                Hashtbl.replace tbl i.Ir.id nu;
                changed := true
              end
            end)
          b.Ir.instrs)
      f.Ir.blocks
  done;
  fun v ->
    match v with
    | Ir.Const _ | Ir.Constf _ | Ir.Sym _ -> Hnone
    | Ir.Arg i -> Harg (i, 0)
    | Ir.Reg id -> ( try Hashtbl.find tbl id with Not_found -> Hbot)

(* ------------------------------------------------------------------ *)
(* Bottom-up: self-link detection (local allocation-site provenance).  *)
(* ------------------------------------------------------------------ *)

type aprov = Abot | Asite of int | Aarg of int | Atop

let aprov_join a b =
  match (a, b) with
  | Abot, x | x, Abot -> x
  | _ when a = b -> a
  | _ -> Atop

(* Static field offset of a pointer expression relative to its object:
   the sum of accumulated gep/add constant displacements. The
   index*scale element-selection part is deliberately ignored — links
   between *elements* of one arena are exactly the self-references we
   are looking for, and the field offset within an element is the
   constant part. *)
let field_of defs v =
  let rec go visited v =
    match v with
    | Ir.Arg _ -> Some 0
    | Ir.Reg id -> (
        if List.mem id visited then None
        else
          match Hashtbl.find_opt defs id with
          | None -> None
          | Some (_, (i : Ir.instr)) -> (
              match i.Ir.kind with
              | Ir.Gep { base; offset; _ } ->
                  Option.map (fun o -> o + offset) (go (id :: visited) base)
              | Ir.Call { callee; _ }
                when Intrinsics.classify callee = Intrinsics.Alloc ->
                  Some 0
              | Ir.Binop (Ir.Add, a, Ir.Const c)
              | Ir.Binop (Ir.Add, Ir.Const c, a) ->
                  Option.map (fun o -> o + c) (go (id :: visited) a)
              | Ir.Binop (Ir.Sub, a, Ir.Const c) ->
                  Option.map (fun o -> o - c) (go (id :: visited) a)
              | _ -> None))
    | _ -> None
  in
  go [] v

module IntSet = Set.Make (Int)

(* One aprov pass over [f] given an existing per-site link map (for the
   load-closure rule: loading a link field of a recursive structure
   yields a pointer into the same structure). Returns the links found.
   The caller re-runs this with the grown link map until stable — the
   closure rule is not monotone under a single in-place fixpoint (Atop
   cannot be refined back to Asite), so each round recomputes from
   scratch against a frozen link map. *)
let link_round (env : env) f defs ~linked =
  let tbl = Hashtbl.create 64 in
  let value_aprov = function
    | Ir.Const _ | Ir.Constf _ -> Abot
    | Ir.Sym _ -> Atop
    | Ir.Arg i -> Aarg i
    | Ir.Reg id -> ( try Hashtbl.find tbl id with Not_found -> Abot)
  in
  let transfer (i : Ir.instr) =
    match i.Ir.kind with
    | Ir.Call { callee; args } -> (
        match Intrinsics.classify callee with
        | Intrinsics.Alloc -> Asite i.Ir.id
        | Intrinsics.Unknown -> (
            match
              Option.bind (Hashtbl.find_opt env.shapes callee) (fun s ->
                  s.ret_hops)
            with
            | Some (j, 0) ->
                Option.value ~default:Atop
                  (Option.map value_aprov (List.nth_opt args j))
            | Some (j, _) -> (
                (* Loaded hops inside the callee: the result points into
                   the same structure only if that structure is linked. *)
                match Option.map value_aprov (List.nth_opt args j) with
                | Some (Asite s as a) when Hashtbl.mem linked s -> a
                | Some (Aarg _ as a) -> a
                | Some Abot -> Abot
                | _ -> Atop)
            | None -> Atop)
        | _ -> Abot)
    | Ir.Gep { base; _ } -> value_aprov base
    | Ir.Binop ((Ir.Add | Ir.Sub), a, b) -> (
        match (value_aprov a, value_aprov b) with
        | x, Abot | Abot, x -> x
        | x, y -> aprov_join x y)
    | Ir.Phi incoming ->
        List.fold_left
          (fun acc (_, v) -> aprov_join acc (value_aprov v))
          Abot incoming
    | Ir.Select (_, a, b) -> aprov_join (value_aprov a) (value_aprov b)
    | Ir.Load { ptr; is_float = false; _ } -> (
        match value_aprov ptr with
        | Asite s as a when Hashtbl.mem linked s -> a
        | Aarg _ as a -> a (* closure decided by the caller's structure *)
        | Abot -> Abot
        | _ -> Atop)
    | _ -> Abot
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if Ir.defines_value i.Ir.kind then begin
              let old = try Hashtbl.find tbl i.Ir.id with Not_found -> Abot in
              let nu = aprov_join old (transfer i) in
              if nu <> old then begin
                Hashtbl.replace tbl i.Ir.id nu;
                changed := true
              end
            end)
          b.Ir.instrs)
      f.Ir.blocks
  done;
  (* Harvest self-links from stores and from callee link summaries. *)
  let self_links = ref [] (* (site id, field offset option) *) in
  let arg_links = ref [] (* (src param, dst param, field) *) in
  let record_pair src dst fld =
    match (src, dst) with
    | Asite s, Asite s' when s = s' -> self_links := (s, fld) :: !self_links
    | Aarg i, Aarg j -> arg_links := (i, j, fld) :: !arg_links
    | _ -> ()
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Store { ptr; v; is_float = false; _ } ->
              record_pair (value_aprov v) (value_aprov ptr) (field_of defs ptr)
          | Ir.Call { callee; args } -> (
              match Hashtbl.find_opt env.shapes callee with
              | Some s ->
                  List.iter
                    (fun (src, dst, fld) ->
                      match
                        (List.nth_opt args src, List.nth_opt args dst)
                      with
                      | Some a, Some b ->
                          record_pair (value_aprov a) (value_aprov b) fld
                      | _ -> ())
                    s.links
              | None -> ())
          | _ -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  (!self_links, !arg_links)

(* ------------------------------------------------------------------ *)
(* Bottom-up per-function summary.                                     *)
(* ------------------------------------------------------------------ *)

let summarize (env : env) (f : Ir.func) : fshape =
  let defs = defs_of f in
  let hops = hops_fixpoint env f in
  (* Link discovery to a fixpoint over the closure rule; the link set
     only grows and is bounded by the store sites, so this terminates
     fast (one extra round in practice). *)
  let linked = Hashtbl.create 8 in
  let self_links = ref [] and arg_links = ref [] in
  let rec refine round =
    let sl, al = link_round env f defs ~linked in
    self_links := sl;
    arg_links := al;
    let grew = ref false in
    List.iter
      (fun (s, _) ->
        if not (Hashtbl.mem linked s) then begin
          Hashtbl.replace linked s ();
          grew := true
        end)
      sl;
    if !grew && round < 8 then refine (round + 1)
  in
  refine 0;
  (* Allocation sites in block order, with their link verdicts. *)
  let allocs = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Call { callee; _ }
            when Intrinsics.classify callee = Intrinsics.Alloc ->
              let known, unknown =
                List.fold_left
                  (fun (ks, unk) (s, fld) ->
                    if s <> i.Ir.id then (ks, unk)
                    else
                      match fld with
                      | Some o -> (IntSet.add o ks, unk)
                      | None -> (ks, true))
                  (IntSet.empty, false) !self_links
              in
              let n = IntSet.cardinal known in
              let kind =
                if unknown then Graph
                else if n = 0 then Scalar
                else if n = 1 then List
                else if n = 2 then Tree
                else Graph
              in
              allocs :=
                {
                  alloc_id = i.Ir.id;
                  alloc_block = b.Ir.label;
                  kind;
                  link_offsets = IntSet.elements known;
                  unknown_link = unknown;
                }
                :: !allocs
          | _ -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  (* Chase-through bits: dependent-load depth per parameter, from direct
     accesses and composed through callees. *)
  let chases = Array.make f.Ir.nparams 0 in
  let bump i d =
    if i < f.Ir.nparams then chases.(i) <- max chases.(i) (min depth_cap d)
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Load { ptr; _ } | Ir.Store { ptr; _ } -> (
              match hops ptr with Harg (i, d) -> bump i (d + 1) | _ -> ())
          | Ir.Call { callee; args } -> (
              match Intrinsics.classify callee with
              | Intrinsics.Guard _ | Intrinsics.Chunk_access _
              | Intrinsics.Page _ -> (
                  match args with
                  | ptr :: _ -> (
                      match hops ptr with
                      | Harg (i, d) -> bump i (d + 1)
                      | _ -> ())
                  | [] -> ())
              | Intrinsics.Unknown -> (
                  match Hashtbl.find_opt env.shapes callee with
                  | Some s ->
                      List.iteri
                        (fun k a ->
                          if
                            k < Array.length s.chases
                            && s.chases.(k) > 0
                          then
                            match hops a with
                            | Harg (i, d) -> bump i (d + s.chases.(k))
                            | _ -> ())
                        args
                  | None -> ())
              | _ -> ())
          | _ -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  (* Return hops: joined over all returns. *)
  let ret = ref Hbot in
  List.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Ret (Some v) -> ret := hops_join !ret (hops v)
      | _ -> ())
    f.Ir.blocks;
  let ret_hops = match !ret with Harg (i, d) -> Some (i, d) | _ -> None in
  (* Deterministic, deduplicated arg links. *)
  let links =
    List.sort_uniq compare !arg_links
  in
  { ret_hops; chases; links; allocs = List.rev !allocs }

(* ------------------------------------------------------------------ *)
(* Absolute (context-aware) depth and structure of a value.            *)
(* ------------------------------------------------------------------ *)

(* These two walkers are the product clients actually consume: given a
   def lookup for the function's body, the value's chain depth and
   structure with the calling context folded in. Also used internally by
   the top-down pass to evaluate call arguments. *)

let value_depth (env : env) ~fname (def : int -> Ir.instr option) v =
  let ctx = context env fname in
  let arg_depth i =
    match ctx with
    | Some c when i < Array.length c.arg_depth -> c.arg_depth.(i)
    | _ -> 0
  in
  let rec go visited v =
    match v with
    | Ir.Const _ | Ir.Constf _ | Ir.Sym _ -> 0
    | Ir.Arg i -> arg_depth i
    | Ir.Reg id -> (
        if List.mem id visited then 0
        else
          let visited = id :: visited in
          match def id with
          | None -> 0
          | Some i -> (
              match i.Ir.kind with
              | Ir.Gep { base; _ } -> go visited base
              | Ir.Load { ptr; is_float = false; _ } ->
                  min depth_cap (1 + go visited ptr)
              | Ir.Phi incoming ->
                  List.fold_left
                    (fun acc (_, v) -> max acc (go visited v))
                    0 incoming
              | Ir.Select (_, a, b) -> max (go visited a) (go visited b)
              | Ir.Binop ((Ir.Add | Ir.Sub), a, b) ->
                  max (go visited a) (go visited b)
              | Ir.Call { callee; args } -> (
                  match
                    Option.bind (summary env callee) (fun s -> s.ret_hops)
                  with
                  | Some (j, d) -> (
                      match List.nth_opt args j with
                      | Some a -> min depth_cap (d + go visited a)
                      | None -> 0)
                  | None -> 0)
              | _ -> 0))
  in
  go [] v

let gprov_join a b =
  match (a, b) with
  | Gbot, x | x, Gbot -> x
  | _ when a = b -> a
  | _ -> Gtop

let value_gprov (env : env) ~fname (def : int -> Ir.instr option) v =
  let ctx = context env fname in
  let arg_struct i =
    match ctx with
    | Some c when i < Array.length c.arg_struct -> c.arg_struct.(i)
    | _ -> Gbot
  in
  let recursive_site key =
    match site_of env key with
    | Some s -> kind_is_recursive s.kind
    | None -> false
  in
  let rec go visited v =
    match v with
    | Ir.Const _ | Ir.Constf _ -> Gbot
    | Ir.Sym _ -> Gtop
    | Ir.Arg i -> arg_struct i
    | Ir.Reg id -> (
        if List.mem id visited then Gbot
        else
          let visited = id :: visited in
          match def id with
          | None -> Gbot
          | Some i -> (
              match i.Ir.kind with
              | Ir.Call { callee; args } -> (
                  match Intrinsics.classify callee with
                  | Intrinsics.Alloc -> Gsite (fname, i.Ir.id)
                  | Intrinsics.Unknown -> (
                      match
                        Option.bind (summary env callee) (fun s ->
                            s.ret_hops)
                      with
                      | Some (j, d) -> (
                          match
                            Option.map (go visited) (List.nth_opt args j)
                          with
                          | Some (Gsite (gf, gid)) ->
                              if d = 0 || recursive_site (gf, gid) then
                                Gsite (gf, gid)
                              else Gtop
                          | Some g -> g
                          | None -> Gtop)
                      | None -> Gtop)
                  | _ -> Gbot)
              | Ir.Gep { base; _ } -> go visited base
              | Ir.Load { ptr; is_float = false; _ } -> (
                  match go visited ptr with
                  | Gsite (gf, gid) when recursive_site (gf, gid) ->
                      Gsite (gf, gid)
                  | Gbot -> Gbot
                  | _ -> Gtop)
              | Ir.Phi incoming ->
                  List.fold_left
                    (fun acc (_, v) -> gprov_join acc (go visited v))
                    Gbot incoming
              | Ir.Select (_, a, b) ->
                  gprov_join (go visited a) (go visited b)
              | Ir.Binop ((Ir.Add | Ir.Sub), a, b) -> (
                  match (go visited a, go visited b) with
                  | x, Gbot | Gbot, x -> x
                  | x, y -> gprov_join x y)
              | _ -> Gbot))
  in
  go [] v

let value_struct env ~fname def v =
  match value_gprov env ~fname def v with
  | Gsite (f, id) -> Some (f, id)
  | Gbot | Gtop -> None

let value_kind env ~fname def v =
  Option.bind (value_struct env ~fname def v) (fun key ->
      Option.map (fun s -> s.kind) (site_of env key))

(* ------------------------------------------------------------------ *)
(* Module analysis: bottom-up summaries, then top-down contexts.       *)
(* ------------------------------------------------------------------ *)

let max_rounds = 50

let analyze (m : Ir.modul) : env =
  let cg = Callgraph.build m in
  let env =
    {
      shapes = Hashtbl.create 16;
      ctxs = Hashtbl.create 16;
      sites = Hashtbl.create 16;
    }
  in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.fname f) m.funcs;
  (* Phase 1: bottom-up fshapes over the same SCC order the Summary
     fixpoint uses. Recursive SCCs iterate from the optimistic empty
     summary; depths saturate at [depth_cap] so the lattice is finite.
     Tripping the round cap drops the SCC back to no-facts — the sound
     default (no routing upgrade), never a wrong claim. *)
  List.iter
    (fun scc ->
      let members = List.filter_map (Hashtbl.find_opt funcs) scc in
      let recursive =
        match scc with
        | [ only ] -> Callgraph.is_recursive cg only
        | _ -> true
      in
      if not recursive then
        List.iter
          (fun f -> Hashtbl.replace env.shapes f.Ir.fname (summarize env f))
          members
      else begin
        List.iter
          (fun f ->
            Hashtbl.replace env.shapes f.Ir.fname
              (no_facts ~nparams:f.Ir.nparams))
          members;
        let rounds = ref 0 and stable = ref false in
        while (not !stable) && !rounds < max_rounds do
          incr rounds;
          stable := true;
          List.iter
            (fun f ->
              let nu = summarize env f in
              if nu <> Hashtbl.find env.shapes f.Ir.fname then begin
                Hashtbl.replace env.shapes f.Ir.fname nu;
                stable := false
              end)
            members
        done;
        if not !stable then
          List.iter
            (fun f ->
              Hashtbl.replace env.shapes f.Ir.fname
                (no_facts ~nparams:f.Ir.nparams))
            members
      end)
    (Callgraph.sccs cg);
  (* Global allocation-site table. *)
  List.iter
    (fun (f : Ir.func) ->
      match Hashtbl.find_opt env.shapes f.Ir.fname with
      | Some s ->
          List.iter
            (fun a -> Hashtbl.replace env.sites (f.Ir.fname, a.alloc_id) a)
            s.allocs
      | None -> ())
    m.funcs;
  (* Phase 2: top-down calling contexts, callers first (the bottom-up
     SCC order reversed). Each call site joins its argument depths and
     structure provenance into the callee's context; recursive SCCs
     iterate until the capped depths stabilize. *)
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace env.ctxs f.Ir.fname (empty_ctx ~nparams:f.Ir.nparams))
    m.funcs;
  let def_tbls = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      let defs = defs_of f in
      Hashtbl.replace def_tbls f.Ir.fname (fun id ->
          Option.map snd (Hashtbl.find_opt defs id)))
    m.funcs;
  let propagate_from (f : Ir.func) =
    let def = Hashtbl.find def_tbls f.Ir.fname in
    let changed = ref false in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.Ir.kind with
            | Ir.Call { callee; args }
              when Intrinsics.classify callee = Intrinsics.Unknown
                   && Hashtbl.mem funcs callee -> (
                match Hashtbl.find_opt env.ctxs callee with
                | None -> ()
                | Some c ->
                    List.iteri
                      (fun k a ->
                        if k < Array.length c.arg_depth then begin
                          let d =
                            min depth_cap
                              (value_depth env ~fname:f.Ir.fname def a)
                          in
                          if d > c.arg_depth.(k) then begin
                            c.arg_depth.(k) <- d;
                            changed := true
                          end;
                          let g = value_gprov env ~fname:f.Ir.fname def a in
                          let nu = gprov_join c.arg_struct.(k) g in
                          if nu <> c.arg_struct.(k) then begin
                            c.arg_struct.(k) <- nu;
                            changed := true
                          end
                        end)
                      args)
            | _ -> ())
          b.Ir.instrs)
      f.Ir.blocks;
    !changed
  in
  List.iter
    (fun scc ->
      let members = List.filter_map (Hashtbl.find_opt funcs) scc in
      let recursive =
        match scc with
        | [ only ] -> Callgraph.is_recursive cg only
        | _ -> true
      in
      if not recursive then
        List.iter (fun f -> ignore (propagate_from f)) members
      else begin
        let rounds = ref 0 and stable = ref false in
        while (not !stable) && !rounds < max_rounds do
          incr rounds;
          stable := true;
          List.iter
            (fun f -> if propagate_from f then stable := false)
            members
        done;
        if not !stable then
          (* Tripwire: drop this SCC's depth claims (advice-safe), keep
             structure provenance at top. *)
          List.iter
            (fun f ->
              let c = Hashtbl.find env.ctxs f.Ir.fname in
              Array.fill c.arg_depth 0 (Array.length c.arg_depth) 0;
              Array.fill c.arg_struct 0 (Array.length c.arg_struct) Gtop)
            members
      end)
    (List.rev (Callgraph.sccs cg));
  env

(* ------------------------------------------------------------------ *)
(* Deterministic dump.                                                 *)
(* ------------------------------------------------------------------ *)

let gprov_to_string = function
  | Gbot -> "-"
  | Gtop -> "top"
  | Gsite (f, id) -> Printf.sprintf "%s:%%%d" f id

let fshape_to_string (s : fshape) =
  let ret =
    match s.ret_hops with
    | None -> "-"
    | Some (i, d) -> Printf.sprintf "arg%d+%dhop" i d
  in
  let chases =
    if Array.length s.chases = 0 then "-"
    else
      "["
      ^ String.concat ","
          (Array.to_list (Array.map string_of_int s.chases))
      ^ "]"
  in
  let links =
    if s.links = [] then "-"
    else
      String.concat ","
        (List.map
           (fun (src, dst, fld) ->
             Printf.sprintf "arg%d->arg%d%s" src dst
               (match fld with
               | Some o -> Printf.sprintf "@%d" o
               | None -> "@?"))
           s.links)
  in
  Printf.sprintf "ret=%s chases=%s links=%s" ret chases links

let dump (env : env) (m : Ir.modul) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "shape analysis: %d function(s), depth cap %d\n"
       (List.length m.Ir.funcs) depth_cap);
  List.iter
    (fun (f : Ir.func) ->
      Buffer.add_string buf
        (Printf.sprintf "fn %s/%d:\n" f.Ir.fname f.Ir.nparams);
      (match summary env f.Ir.fname with
      | None -> Buffer.add_string buf "  (no summary)\n"
      | Some s ->
          List.iter
            (fun a ->
              Buffer.add_string buf
                (Printf.sprintf "  alloc %%%-4d @%-12s kind=%-6s links=[%s]%s\n"
                   a.alloc_id a.alloc_block (kind_to_string a.kind)
                   (String.concat ","
                      (List.map string_of_int a.link_offsets))
                   (if a.unknown_link then " +unknown-offset" else "")))
            s.allocs;
          Buffer.add_string buf
            (Printf.sprintf "  summary: %s\n" (fshape_to_string s)));
      match context env f.Ir.fname with
      | None -> ()
      | Some c ->
          if Array.length c.arg_depth > 0 then
            Buffer.add_string buf
              (Printf.sprintf "  ctx: depth=[%s] struct=[%s]\n"
                 (String.concat ","
                    (Array.to_list
                       (Array.map string_of_int c.arg_depth)))
                 (String.concat ","
                    (Array.to_list (Array.map gprov_to_string c.arg_struct)))))
    m.Ir.funcs;
  Buffer.contents buf
